(* Fine-grained scheduling determinism (DESIGN.md §"Parallel
   execution"): with stage sub-jobs (per-candidate, per-shard) stealable
   across domains, the determinism contract must hold at every jobs
   setting — not just the jobs=4 exercised elsewhere. These tests push
   to jobs=8 (heavier oversubscription than the pool has lanes for on
   most hosts), add a chaos-seeded run, and add a skewed corpus where
   one suffix holds ~80% of all hostnames, the shape that makes
   coarse-grained (suffix-only) scheduling degenerate to sequential. *)

module Chaos = Hoiho_netsim.Chaos
module Generate = Hoiho_netsim.Generate
module Presets = Hoiho_netsim.Presets
module Truth = Hoiho_netsim.Truth
module Pipeline = Hoiho.Pipeline
module Obs = Hoiho_obs.Obs

let tc = Helpers.tc

let degraded_set (p : Pipeline.t) =
  List.filter_map
    (fun (r : Pipeline.suffix_result) ->
      match r.Pipeline.degraded with
      | Some d -> Some (r.Pipeline.suffix, d.Pipeline.stage, d.Pipeline.error)
      | None -> None)
    p.Pipeline.results

let work_counters (s : Obs.snapshot) =
  List.filter
    (fun (name, _) -> not (String.length name >= 5 && String.sub name 0 5 = "pool."))
    s.Obs.counters

let check_identical label (seq : Pipeline.t) (par : Pipeline.t) =
  Alcotest.(check bool) (label ^ ": results identical") true
    (seq.Pipeline.results = par.Pipeline.results);
  Alcotest.(check (list (triple string string string)))
    (label ^ ": degraded sets identical")
    (degraded_set seq) (degraded_set par);
  Alcotest.(check (list (pair string int)))
    (label ^ ": work counters identical")
    (work_counters seq.Pipeline.metrics)
    (work_counters par.Pipeline.metrics)

let test_jobs8_identity () =
  let ds, truth = Generate.generate (Presets.tiny ~seed:2468 ()) in
  let db = Truth.db truth in
  Obs.reset ();
  let seq = Pipeline.run ~db ~jobs:1 ds in
  Obs.reset ();
  let par = Pipeline.run ~db ~jobs:8 ds in
  Alcotest.(check bool) "several suffixes exercised" true
    (List.length seq.Pipeline.results > 1);
  check_identical "jobs=8" seq par

let test_chaos_jobs8_identity () =
  (* chaos-mangled inputs at heavy oversubscription: reuses the chaos
     suite's fixture so the faulty corpus is the one the fault matrix
     already pins at jobs=4 *)
  let seq = Test_chaos.run_chaos ~classes:Chaos.all_classes ~jobs:1 () in
  let par = Test_chaos.run_chaos ~classes:Chaos.all_classes ~jobs:8 () in
  check_identical "chaos jobs=8" seq par

(* one dominant suffix (~80% of hostnames) plus two small ones: with
   only whole-suffix jobs this corpus serializes on the big group, so it
   is exactly where candidate- and shard-level sub-jobs must still give
   byte-identical output *)
let skewed_dataset () =
  let vps = Helpers.std_vps () in
  let id = ref 0 in
  let mk ~suffix sites =
    List.concat_map
      (fun (c, code, n_routers) ->
        List.init n_routers (fun r ->
            let hostnames =
              List.init 2 (fun h ->
                  Printf.sprintf "ae%d.cr%d.%s%d.%s" h
                    ((r mod 3) + 1)
                    code (r + 1) suffix)
            in
            let rid = !id in
            incr id;
            Helpers.router ~id:rid ~at:c ~vps ~hostnames ()))
      sites
  in
  let lhr = Helpers.city "london" "gb"
  and fra = Helpers.city "frankfurt" "de"
  and sea = Helpers.city_st "seattle" "us" "wa"
  and ord = Helpers.city_st "chicago" "us" "il" in
  let big =
    mk ~suffix:"bignet.net"
      [ (lhr, "lhr", 8); (fra, "fra", 8); (sea, "sea", 8); (ord, "ord", 8) ]
  in
  let alpha = mk ~suffix:"alpha.net" [ (lhr, "lhr", 2); (fra, "fra", 2) ] in
  let beta = mk ~suffix:"beta.net" [ (sea, "sea", 2); (ord, "ord", 2) ] in
  Helpers.dataset ~label:"skewed" (big @ alpha @ beta) vps

let test_skewed_corpus_identity () =
  let ds = skewed_dataset () in
  let db = Helpers.db in
  Obs.reset ();
  let seq = Pipeline.run ~db ~jobs:1 ds in
  Obs.reset ();
  let par = Pipeline.run ~db ~jobs:8 ds in
  (* the skew premise holds: three groups, the largest ~80% of samples *)
  Alcotest.(check int) "three suffix groups" 3
    (List.length seq.Pipeline.results);
  let samples =
    List.map (fun (r : Pipeline.suffix_result) -> r.Pipeline.n_samples)
      seq.Pipeline.results
  in
  let total = List.fold_left ( + ) 0 samples in
  let biggest = List.fold_left max 0 samples in
  Alcotest.(check bool)
    (Printf.sprintf "dominant suffix holds >= 3/4 of hostnames (%d/%d)"
       biggest total)
    true
    (float_of_int biggest >= 0.75 *. float_of_int total);
  (* the dominant group actually learned something, so sub-job fan-out
     ran for real work, not an empty group *)
  Alcotest.(check bool) "some suffix usable" true
    (List.exists Pipeline.usable seq.Pipeline.results);
  check_identical "skewed jobs=8" seq par

let suites =
  [
    ( "granularity",
      [
        tc "jobs=1 equals jobs=8" test_jobs8_identity;
        tc "chaos-seeded jobs=8 identity" test_chaos_jobs8_identity;
        tc "skewed corpus jobs=8 identity" test_skewed_corpus_identity;
      ] );
  ]
