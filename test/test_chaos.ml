(* Fault matrix for the chaos layer (DESIGN.md §8): every chaos class,
   injected alone, must leave the pipeline deterministic — identical
   results (including the degraded-suffix set) and identical work
   counters at jobs=1 and jobs=4 — and must never escape as an
   exception. Extends the PR 2 determinism contract to faulty inputs. *)

module Chaos = Hoiho_netsim.Chaos
module Generate = Hoiho_netsim.Generate
module Presets = Hoiho_netsim.Presets
module Truth = Hoiho_netsim.Truth
module Pipeline = Hoiho.Pipeline
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Obs = Hoiho_obs.Obs

let tc = Helpers.tc

let base_inputs =
  (* computed once: generation is deterministic, and every test mutates
     via Chaos.apply which never touches its inputs *)
  lazy
    (let ds, truth = Generate.generate (Presets.tiny ~seed:987 ()) in
     (ds, Truth.db truth))

(* chaos application and the pipeline run under one Obs.reset scope, so
   snapshots from two invocations are directly comparable *)
let run_chaos ?(level = 3) ?(cseed = 1234) ~classes ~jobs () =
  let ds, db = Lazy.force base_inputs in
  Obs.reset ();
  let db, ds = Chaos.apply (Chaos.config ~level ~classes cseed) db ds in
  Pipeline.run ~db ~jobs ds

let degraded_set (p : Pipeline.t) =
  List.filter_map
    (fun (r : Pipeline.suffix_result) ->
      match r.Pipeline.degraded with
      | Some d -> Some (r.Pipeline.suffix, d.Pipeline.stage, d.Pipeline.error)
      | None -> None)
    p.Pipeline.results

let work_counters (s : Obs.snapshot) =
  List.filter
    (fun (name, _) -> not (String.length name >= 5 && String.sub name 0 5 = "pool."))
    s.Obs.counters

(* one matrix cell: a single class at jobs=1 vs jobs=4 *)
let test_class_determinism cls () =
  let seq = run_chaos ~classes:[ cls ] ~jobs:1 () in
  let par = run_chaos ~classes:[ cls ] ~jobs:4 () in
  Alcotest.(check bool)
    (Chaos.class_name cls ^ ": results identical across jobs")
    true
    (seq.Pipeline.results = par.Pipeline.results);
  Alcotest.(check (list (triple string string string)))
    (Chaos.class_name cls ^ ": degraded sets identical")
    (degraded_set seq) (degraded_set par);
  Alcotest.(check (list (pair string int)))
    (Chaos.class_name cls ^ ": work counters identical")
    (work_counters seq.Pipeline.metrics)
    (work_counters par.Pipeline.metrics)

let test_all_classes_determinism () =
  let seq = run_chaos ~classes:Chaos.all_classes ~jobs:1 () in
  let par = run_chaos ~classes:Chaos.all_classes ~jobs:4 () in
  Alcotest.(check bool) "all classes: results identical" true
    (seq.Pipeline.results = par.Pipeline.results);
  Alcotest.(check (list (pair string int)))
    "all classes: work counters identical"
    (work_counters seq.Pipeline.metrics)
    (work_counters par.Pipeline.metrics)

let test_apply_deterministic () =
  let ds, db = Lazy.force base_inputs in
  let cfg = Chaos.config ~level:2 ~classes:Chaos.all_classes 55 in
  let _, ds1 = Chaos.apply cfg db ds in
  let _, ds2 = Chaos.apply cfg db ds in
  Alcotest.(check bool) "same config, same mutated routers" true
    (ds1.Dataset.routers = ds2.Dataset.routers);
  (* and the inputs were not touched: a re-application starts from the
     same clean state *)
  let mutated =
    Array.exists2
      (fun (a : Router.t) (b : Router.t) -> a.Router.hostnames <> b.Router.hostnames)
      ds.Dataset.routers ds1.Dataset.routers
  in
  Alcotest.(check bool) "injection actually fired" true mutated

let test_alias_error_degrades () =
  (* dangling VP ids must surface as degraded suffix results — counted
     in pipeline.suffix_degraded — while the run completes *)
  let p = run_chaos ~level:4 ~classes:[ Chaos.Alias_error ] ~jobs:4 () in
  let degraded = degraded_set p in
  Alcotest.(check bool) "at least one suffix degraded" true (degraded <> []);
  Alcotest.(check bool) "not every suffix degraded" true
    (List.length degraded < List.length p.Pipeline.results);
  Alcotest.(check (option int))
    "pipeline.suffix_degraded counts them"
    (Some (List.length degraded))
    (Obs.find_counter p.Pipeline.metrics "pipeline.suffix_degraded");
  List.iter
    (fun (_, stage, error) ->
      Alcotest.(check bool)
        (Printf.sprintf "stage %S is a pipeline stage" stage)
        true
        (List.mem stage [ "apparent"; "regen"; "ncsel"; "learn"; "reselect"; "suffix" ]);
      Alcotest.(check bool) "error names the dangling VP" true
        (String.length error > 0))
    degraded

let test_chaos_off_parity () =
  (* chaos-off replay parity: two clean runs are byte-identical, no
     suffix degraded, and the chaos counters stay zero *)
  let ds, db = Lazy.force base_inputs in
  Obs.reset ();
  let a = Pipeline.run ~db ~jobs:4 ds in
  Obs.reset ();
  let b = Pipeline.run ~db ~jobs:4 ds in
  Alcotest.(check bool) "replay identical" true (a.Pipeline.results = b.Pipeline.results);
  Alcotest.(check (list (triple string string string))) "nothing degraded" []
    (degraded_set a);
  Alcotest.(check (option int)) "suffix_degraded is zero" (Some 0)
    (Obs.find_counter a.Pipeline.metrics "pipeline.suffix_degraded");
  List.iter
    (fun cls ->
      let name =
        match cls with
        | Chaos.Hostname_mangle -> "chaos.hostnames_mangled"
        | Chaos.Dict_dropout -> "chaos.dict_entries_dropped"
        | Chaos.Rtt_loss -> "chaos.rtts_dropped"
        | Chaos.Rtt_outlier -> "chaos.rtt_outliers"
        | Chaos.Rtt_negative -> "chaos.rtts_negated"
        | Chaos.Alias_error -> "chaos.alias_errors"
      in
      Alcotest.(check (option int)) (name ^ " zero when off") (Some 0)
        (Obs.find_counter a.Pipeline.metrics name))
    Chaos.all_classes

let test_never_raises_across_seeds () =
  (* any seed, full fault cocktail, high level: the run must complete
     and geolocate must answer (or decline) on every surviving
     hostname without raising *)
  List.iter
    (fun cseed ->
      let p = run_chaos ~level:5 ~cseed ~classes:Chaos.all_classes ~jobs:2 () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: run completed" cseed)
        true
        (p.Pipeline.results <> []);
      Array.iter
        (fun (r : Router.t) ->
          List.iter
            (fun h -> ignore (Pipeline.geolocate p h))
            r.Router.hostnames)
        p.Pipeline.dataset.Dataset.routers)
    [ 1; 2; 3; 4; 5 ]

let suites =
  [
    ( "chaos",
      [
        tc "hostname_mangle matrix" (test_class_determinism Chaos.Hostname_mangle);
        tc "dict_dropout matrix" (test_class_determinism Chaos.Dict_dropout);
        tc "rtt_loss matrix" (test_class_determinism Chaos.Rtt_loss);
        tc "rtt_outlier matrix" (test_class_determinism Chaos.Rtt_outlier);
        tc "rtt_negative matrix" (test_class_determinism Chaos.Rtt_negative);
        tc "alias_error matrix" (test_class_determinism Chaos.Alias_error);
        tc "all classes together" test_all_classes_determinism;
        tc "apply is deterministic and pure" test_apply_deterministic;
        tc "alias errors degrade, not abort" test_alias_error_degrades;
        tc "chaos-off replay parity" test_chaos_off_parity;
        tc "never raises across seeds" test_never_raises_across_seeds;
      ] );
  ]
