let () =
  Alcotest.run "hoiho"
    (Test_util.suites @ Test_obs.suites @ Test_pool.suites @ Test_ast.suites @ Test_rx.suites @ Test_geo.suites @ Test_geodb.suites
   @ Test_psl.suites @ Test_itdk.suites @ Test_netsim.suites
   @ Test_core_units.suites @ Test_apparent.suites @ Test_regen.suites @ Test_evalx.suites
   @ Test_learn.suites @ Test_pipeline.suites @ Test_cbg.suites
   @ Test_stale.suites @ Test_asnconv.suites @ Test_rname.suites @ Test_tbg.suites @ Test_vpfilter.suites @ Test_baselines.suites
   @ Test_validate.suites @ Test_webreport.suites @ Test_chaos.suites
   @ Test_props.suites @ Test_learned_io.suites @ Test_serve.suites
   @ Test_granularity.suites
   @ Test_delta.suites
   @ Test_golden.suites @ Test_trace.suites @ Test_health.suites
   @ Test_net.suites
   @ Test_confidence.suites @ Test_calibration.suites)
