(* Golden-corpus regression suite.

   test/golden/corpus.tsv pins the geolocation answers for a
   deterministic slice of the tiny preset (seed 42): per registered
   suffix, up to two hostnames with the geohint the pipeline extracts
   ("-" when there is none). Any behavior change in normalization,
   suffix classification, regex inference, decode plans or dictionary
   resolution shows up here as a readable per-hostname diff.

   The corpus regenerates deterministically. After an *intended*
   behavior change, refresh it with

     HOIHO_UPDATE_GOLDEN=$PWD/test/golden/corpus.tsv dune runtest

   (the variable names the destination file; the test then rewrites it
   and the next plain run must pass).

   The suite also pins the model lifecycle: the snapshot of the same
   run, pushed through encode/decode and served via Hoiho_serve, must
   answer byte-identically to in-process Pipeline.geolocate on every
   corpus hostname, at jobs=1 and jobs=4. *)

module Pipeline = Hoiho.Pipeline
module Learned_io = Hoiho.Learned_io
module Delta = Hoiho.Delta
module Model_diff = Hoiho.Model_diff
module Json = Hoiho_util.Json
module Serve = Hoiho_serve.Serve
module City = Hoiho_geodb.City
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Psl = Hoiho_psl.Psl
module Evolve = Hoiho_netsim.Evolve
module Truth = Hoiho_netsim.Truth
module Calibration = Hoiho_validate.Calibration

let corpus_path = "golden/corpus.tsv"
let max_per_suffix = 2

let fixture =
  lazy
    (let ds, _truth =
       Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:42 ())
     in
     (ds, Pipeline.run ds))

let describe = function Some c -> City.describe c | None -> "-"

(* one corpus cell: "GEOHINT\tCONF" with the confidence to three
   decimals — the same two-column answer shape the server speaks, so a
   corpus "expected" string (everything after the first tab) is exactly
   a /geolocate response body *)
let render_conf p h =
  let city, conf = Pipeline.geolocate_conf p h in
  Printf.sprintf "%s\t%.3f" (describe city) conf

(* the corpus slice: per suffix in sorted order, the first
   [max_per_suffix] hostnames in sorted order — a pure function of the
   dataset, so regeneration is reproducible *)
let select_hostnames ds =
  Dataset.by_suffix ds
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (suffix, routers) ->
         let hostnames =
           routers
           |> List.concat_map (fun (r : Router.t) -> r.Router.hostnames)
           |> List.filter (fun h -> Psl.registered_suffix h = Some suffix)
           |> List.sort_uniq compare
         in
         (suffix, List.filteri (fun i _ -> i < max_per_suffix) hostnames))

let render ds p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# Golden corpus: tiny preset, seed 42. \
     hostname<TAB>expected geohint<TAB>confidence.\n";
  Buffer.add_string buf "# Regenerate: see test/test_golden.ml.\n";
  List.iter
    (fun (suffix, hostnames) ->
      if hostnames <> [] then begin
        Buffer.add_string buf (Printf.sprintf "# %s\n" suffix);
        List.iter
          (fun h ->
            Buffer.add_string buf (Printf.sprintf "%s\t%s\n" h (render_conf p h)))
          hostnames
      end)
    (select_hostnames ds);
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_lines () =
  read_file corpus_path |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun line ->
         match String.index_opt line '\t' with
         | Some i ->
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
         | None -> Alcotest.failf "golden corpus: malformed line %S" line)

(* Where to write a regenerated golden file named [canonical].
   HOIHO_UPDATE_GOLDEN may be "1" (in place, when running from the
   source tree), a directory (every golden file lands there under its
   canonical name), or a file path (that file for its own canonical
   name; siblings land next to it) — so the documented
   HOIHO_UPDATE_GOLDEN=$PWD/test/golden/corpus.tsv refreshes the whole
   set. *)
let golden_dest canonical =
  match Sys.getenv_opt "HOIHO_UPDATE_GOLDEN" with
  | Some dest when dest <> "" ->
      if dest = "1" then Some (Filename.concat "golden" canonical)
      else if Sys.file_exists dest && Sys.is_directory dest then
        Some (Filename.concat dest canonical)
      else if Filename.basename dest = canonical then Some dest
      else Some (Filename.concat (Filename.dirname dest) canonical)
  | _ -> None

let write_golden dest contents =
  let oc = open_out_bin dest in
  output_string oc contents;
  close_out oc;
  Printf.printf "golden file regenerated to %s\n" dest

let test_corpus () =
  match golden_dest "corpus.tsv" with
  | Some dest ->
      let ds, p = Lazy.force fixture in
      write_golden dest (render ds p)
  | None ->
      let ds, p = Lazy.force fixture in
      let pinned = corpus_lines () in
      Alcotest.(check bool) "corpus is non-trivial" true (List.length pinned >= 40);
      (* answer drift: every pinned hostname must still geolocate to the
         pinned geohint *)
      let drift =
        List.filter_map
          (fun (h, expected) ->
            let got = render_conf p h in
            if got = expected then None
            else Some (Printf.sprintf "  %-44s pinned %-28s got %s" h expected got))
          pinned
      in
      if drift <> [] then
        Alcotest.failf
          "golden corpus drift (%d of %d hostnames; if intended, regenerate \
           with HOIHO_UPDATE_GOLDEN — see test/test_golden.ml):\n%s"
          (List.length drift) (List.length pinned)
          (String.concat "\n" drift);
      (* selection drift: the deterministic slice itself must still match
         the file, or the corpus silently stops covering what it claims *)
      let regenerated = render ds p in
      if regenerated <> read_file corpus_path then
        Alcotest.fail
          "golden corpus selection drift: answers match but the regenerated \
           file differs (hostname selection or formatting changed); \
           regenerate with HOIHO_UPDATE_GOLDEN — see test/test_golden.ml"

(* the corpus must exercise both outcomes, or a regression that turns
   every answer into "-" (or resolves garbage everywhere) could pass *)
let test_corpus_covers_both_outcomes () =
  let pinned = corpus_lines () in
  (* "expected" is now "GEOHINT\tCONF"; negative rows are "-\t0.000" *)
  let is_negative e = String.length e >= 2 && String.sub e 0 2 = "-\t" in
  let geo, nogeo = List.partition (fun (_, e) -> not (is_negative e)) pinned in
  Alcotest.(check bool) "has geolocated hostnames" true (List.length geo >= 10);
  Alcotest.(check bool) "has non-geolocated hostnames" true (List.length nogeo >= 5)

let test_snapshot_serves_identically () =
  let _, p = Lazy.force fixture in
  let model =
    match Learned_io.decode (Learned_io.encode (Learned_io.of_pipeline p)) with
    | Ok m -> m
    | Error e ->
        Alcotest.failf "snapshot did not round-trip: %s"
          (Learned_io.error_to_string e)
  in
  let hostnames = List.map fst (corpus_lines ()) in
  let serve jobs =
    Serve.apply_batch ~jobs (Serve.create model) hostnames
  in
  let seq = serve 1 and par = serve 4 in
  Alcotest.(check bool) "jobs=1 and jobs=4 identical" true (seq = par);
  List.iter
    (fun (h, (answer : Serve.answer)) ->
      let expect_city, expect_conf = Pipeline.geolocate_conf p h in
      if answer.Serve.city <> expect_city then
        Alcotest.failf "served answer diverges on %s: served %s, in-process %s" h
          (describe answer.Serve.city) (describe expect_city);
      (* confidences must be byte-identical, not merely close: the serve
         path recomputes the same formula from snapshot-carried stats *)
      if answer.Serve.confidence <> expect_conf then
        Alcotest.failf "served confidence diverges on %s: served %.17g, in-process %.17g"
          h answer.Serve.confidence expect_conf)
    seq

(* --- the drift corpus: one Evolve epoch over the golden fixture ---

   Two pinned artifacts regenerate deterministically from (tiny seed
   42, Evolve seed 1337): golden/drift_events.json — the Delta wire
   stream turning epoch 1 into epoch 2 — and golden/drift.txt — the
   rendered model diff between the two epochs' learned models. Any
   change to the generator, the evolver, the wire codec, the pipeline,
   or the diff renderer shows up as a readable diff against these
   files; refresh them with HOIHO_UPDATE_GOLDEN like the corpus. *)

let drift_events_path = "golden/drift_events.json"
let drift_diff_path = "golden/drift.txt"

let drift_fixture =
  lazy
    (let ds1, truth1 =
       Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:42 ())
     in
     let ds2, truth2 = Evolve.epoch (Evolve.default ~seed:1337) (ds1, truth1) in
     (ds1, ds2, truth2))

let normalize m = { m with Learned_io.metrics = Json.Obj [] }

let test_drift_events () =
  let ds1, ds2, _ = Lazy.force drift_fixture in
  let rendered = Delta.events_to_string (Delta.events_between ds1 ds2) in
  match golden_dest "drift_events.json" with
  | Some dest -> write_golden dest rendered
  | None ->
      let pinned = read_file drift_events_path in
      if rendered <> pinned then
        Alcotest.fail
          "drift event stream drifted from golden/drift_events.json (if \
           intended, regenerate with HOIHO_UPDATE_GOLDEN — see \
           test/test_golden.ml)";
      (* the pinned wire stream must replay: decode, apply, and land
         exactly on epoch 2 *)
      let events =
        match Delta.events_of_string pinned with
        | Ok e -> e
        | Error msg -> Alcotest.failf "pinned drift events do not decode: %s" msg
      in
      Alcotest.(check bool) "drift is non-trivial" true (List.length events >= 10);
      (* the wire is lossy in ground truth only (Delta doc): compare the
         observable projection *)
      let observable ds =
        {
          ds with
          Dataset.routers =
            Array.map
              (fun (r : Router.t) -> { r with Router.truth = None })
              ds.Dataset.routers;
        }
      in
      (match Delta.apply ds1 events with
      | Ok (replayed, dirty) ->
          Alcotest.(check bool)
            "replaying the pinned events reproduces epoch 2 observables" true
            (observable replayed = observable ds2);
          Alcotest.(check bool) "drift dirties some suffixes" true (dirty <> [])
      | Error e ->
          Alcotest.failf "pinned drift events do not apply: %s"
            (Delta.error_to_string e));
      (* and the incremental relearn across the epoch matches batch *)
      let _, p1 = Lazy.force fixture in
      (match Delta.relearn ~jobs:4 ~prior:p1 events with
      | Ok (incr, _) ->
          let batch = Pipeline.run ~jobs:4 ds2 in
          Alcotest.(check string)
            "incremental relearn across the drift epoch ≡ batch"
            (Learned_io.encode (normalize (Learned_io.of_pipeline batch)))
            (Learned_io.encode (normalize (Learned_io.of_pipeline incr)))
      | Error e ->
          Alcotest.failf "incremental relearn across the epoch failed: %s"
            (Delta.error_to_string e))

let test_drift_model_diff () =
  let ds1, ds2, _ = Lazy.force drift_fixture in
  let _, p1 = Lazy.force fixture in
  ignore ds1;
  let m1 = Learned_io.of_pipeline p1 in
  let m2 = Learned_io.of_pipeline (Pipeline.run ~jobs:4 ds2) in
  let rendered = Model_diff.render_text (Model_diff.diff m1 m2) in
  match golden_dest "drift.txt" with
  | Some dest -> write_golden dest rendered
  | None ->
      let pinned = read_file drift_diff_path in
      if rendered <> pinned then
        Alcotest.failf
          "model diff drifted from golden/drift.txt (if intended, regenerate \
           with HOIHO_UPDATE_GOLDEN — see test/test_golden.ml); got:\n%s"
          rendered;
      (* the machine form stays in lockstep with the text form *)
      let d = Model_diff.diff m1 m2 in
      Alcotest.(check bool) "drift changes the model" true
        (List.length d.Model_diff.diffs > 0);
      Alcotest.(check bool) "diff JSON encodes" true
        (String.length (Model_diff.encode d) > 2)

(* Calibration under drift: the reliability table of the epoch-2 model
   against epoch-2 ground truth is pinned — a readable early warning
   when confidence scores decalibrate as the simulated world shifts —
   and the drifted epoch must still clear the acceptance gates the
   fresh model is held to. *)

let calibration_drift_path = "golden/calibration_drift.txt"

let test_drift_calibration () =
  let _, ds2, truth2 = Lazy.force drift_fixture in
  let p2 = Pipeline.run ~db:(Truth.db truth2) ds2 in
  let report =
    Calibration.of_pipeline p2 ~suffixes:(Truth.geo_suffixes truth2)
  in
  let rendered = Calibration.render_text report in
  match golden_dest "calibration_drift.txt" with
  | Some dest -> write_golden dest rendered
  | None ->
      let pinned = read_file calibration_drift_path in
      if rendered <> pinned then
        Alcotest.failf
          "drift-epoch calibration drifted from \
           golden/calibration_drift.txt (if intended, regenerate with \
           HOIHO_UPDATE_GOLDEN — see test/test_golden.ml); got:\n%s"
          rendered;
      Alcotest.(check bool) "ECE within 0.15 after drift" true
        (report.Calibration.ece <= 0.15);
      Alcotest.(check bool) "decile accuracy monotone after drift" true
        (Calibration.monotone report)

let suites =
  [
    ( "golden",
      [
        Helpers.tc "corpus answers are pinned" test_corpus;
        Helpers.tc "corpus covers both outcomes" test_corpus_covers_both_outcomes;
        Helpers.tc "snapshot serves byte-identically" test_snapshot_serves_identically;
        Helpers.tc "drift event stream is pinned and replays" test_drift_events;
        Helpers.tc "drift model diff is pinned" test_drift_model_diff;
        Helpers.tc "drift-epoch calibration is pinned" test_drift_calibration;
      ] );
  ]
