(* Golden-corpus regression suite.

   test/golden/corpus.tsv pins the geolocation answers for a
   deterministic slice of the tiny preset (seed 42): per registered
   suffix, up to two hostnames with the geohint the pipeline extracts
   ("-" when there is none). Any behavior change in normalization,
   suffix classification, regex inference, decode plans or dictionary
   resolution shows up here as a readable per-hostname diff.

   The corpus regenerates deterministically. After an *intended*
   behavior change, refresh it with

     HOIHO_UPDATE_GOLDEN=$PWD/test/golden/corpus.tsv dune runtest

   (the variable names the destination file; the test then rewrites it
   and the next plain run must pass).

   The suite also pins the model lifecycle: the snapshot of the same
   run, pushed through encode/decode and served via Hoiho_serve, must
   answer byte-identically to in-process Pipeline.geolocate on every
   corpus hostname, at jobs=1 and jobs=4. *)

module Pipeline = Hoiho.Pipeline
module Learned_io = Hoiho.Learned_io
module Serve = Hoiho_serve.Serve
module City = Hoiho_geodb.City
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Psl = Hoiho_psl.Psl

let corpus_path = "golden/corpus.tsv"
let max_per_suffix = 2

let fixture =
  lazy
    (let ds, _truth =
       Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:42 ())
     in
     (ds, Pipeline.run ds))

let describe = function Some c -> City.describe c | None -> "-"

(* the corpus slice: per suffix in sorted order, the first
   [max_per_suffix] hostnames in sorted order — a pure function of the
   dataset, so regeneration is reproducible *)
let select_hostnames ds =
  Dataset.by_suffix ds
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (suffix, routers) ->
         let hostnames =
           routers
           |> List.concat_map (fun (r : Router.t) -> r.Router.hostnames)
           |> List.filter (fun h -> Psl.registered_suffix h = Some suffix)
           |> List.sort_uniq compare
         in
         (suffix, List.filteri (fun i _ -> i < max_per_suffix) hostnames))

let render ds p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# Golden corpus: tiny preset, seed 42. hostname<TAB>expected geohint.\n";
  Buffer.add_string buf "# Regenerate: see test/test_golden.ml.\n";
  List.iter
    (fun (suffix, hostnames) ->
      if hostnames <> [] then begin
        Buffer.add_string buf (Printf.sprintf "# %s\n" suffix);
        List.iter
          (fun h ->
            Buffer.add_string buf
              (Printf.sprintf "%s\t%s\n" h (describe (Pipeline.geolocate p h))))
          hostnames
      end)
    (select_hostnames ds);
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_lines () =
  read_file corpus_path |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun line ->
         match String.index_opt line '\t' with
         | Some i ->
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
         | None -> Alcotest.failf "golden corpus: malformed line %S" line)

let test_corpus () =
  match Sys.getenv_opt "HOIHO_UPDATE_GOLDEN" with
  | Some dest when dest <> "" ->
      let ds, p = Lazy.force fixture in
      let dest = if dest = "1" then corpus_path else dest in
      let oc = open_out_bin dest in
      output_string oc (render ds p);
      close_out oc;
      Printf.printf "golden corpus regenerated to %s\n" dest
  | _ ->
      let ds, p = Lazy.force fixture in
      let pinned = corpus_lines () in
      Alcotest.(check bool) "corpus is non-trivial" true (List.length pinned >= 40);
      (* answer drift: every pinned hostname must still geolocate to the
         pinned geohint *)
      let drift =
        List.filter_map
          (fun (h, expected) ->
            let got = describe (Pipeline.geolocate p h) in
            if got = expected then None
            else Some (Printf.sprintf "  %-44s pinned %-28s got %s" h expected got))
          pinned
      in
      if drift <> [] then
        Alcotest.failf
          "golden corpus drift (%d of %d hostnames; if intended, regenerate \
           with HOIHO_UPDATE_GOLDEN — see test/test_golden.ml):\n%s"
          (List.length drift) (List.length pinned)
          (String.concat "\n" drift);
      (* selection drift: the deterministic slice itself must still match
         the file, or the corpus silently stops covering what it claims *)
      let regenerated = render ds p in
      if regenerated <> read_file corpus_path then
        Alcotest.fail
          "golden corpus selection drift: answers match but the regenerated \
           file differs (hostname selection or formatting changed); \
           regenerate with HOIHO_UPDATE_GOLDEN — see test/test_golden.ml"

(* the corpus must exercise both outcomes, or a regression that turns
   every answer into "-" (or resolves garbage everywhere) could pass *)
let test_corpus_covers_both_outcomes () =
  let pinned = corpus_lines () in
  let geo, nogeo = List.partition (fun (_, e) -> e <> "-") pinned in
  Alcotest.(check bool) "has geolocated hostnames" true (List.length geo >= 10);
  Alcotest.(check bool) "has non-geolocated hostnames" true (List.length nogeo >= 5)

let test_snapshot_serves_identically () =
  let _, p = Lazy.force fixture in
  let model =
    match Learned_io.decode (Learned_io.encode (Learned_io.of_pipeline p)) with
    | Ok m -> m
    | Error e ->
        Alcotest.failf "snapshot did not round-trip: %s"
          (Learned_io.error_to_string e)
  in
  let hostnames = List.map fst (corpus_lines ()) in
  let serve jobs =
    Serve.apply_batch ~jobs (Serve.create model) hostnames
  in
  let seq = serve 1 and par = serve 4 in
  Alcotest.(check bool) "jobs=1 and jobs=4 identical" true (seq = par);
  List.iter
    (fun (h, answer) ->
      let expect = Pipeline.geolocate p h in
      if answer <> expect then
        Alcotest.failf "served answer diverges on %s: served %s, in-process %s" h
          (describe answer) (describe expect))
    seq

let suites =
  [
    ( "golden",
      [
        Helpers.tc "corpus answers are pinned" test_corpus;
        Helpers.tc "corpus covers both outcomes" test_corpus_covers_both_outcomes;
        Helpers.tc "snapshot serves byte-identically" test_snapshot_serves_identically;
      ] );
  ]
