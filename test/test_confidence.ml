(* Confidence scoring: table-driven units pinning the score formula at
   its signal extremes, plus the determinism contract as properties —
   the confidence of an answer is byte-identical between jobs=1 and
   jobs=4 serving, between serving and in-process pipeline application,
   and across a real socket. *)

module Confidence = Hoiho.Confidence
module Learned = Hoiho.Learned
module Plan = Hoiho.Plan
module Evalx = Hoiho.Evalx
module Pipeline = Hoiho.Pipeline
module Serve = Hoiho_serve.Serve
module Server = Hoiho_net.Server
module Http = Hoiho_net.Http
module City = Hoiho_geodb.City

let tc = Helpers.tc

let q ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let feq = Alcotest.(check (float 1e-12))

(* --- building blocks --- *)

let stats ?(tp = 0) ?(fp = 0) ?(fn = 0) ?(unk = 0) ?(agreement = 1.0) () =
  { Confidence.tp; fp; fn; unk; rtt_agreement = agreement }

let signals ?(stats = Confidence.no_stats) ?(collisions = 0)
    ?(provenance = Evalx.Dictionary) ?overlay () =
  { Confidence.stats; collisions; provenance; overlay }

let entry ?(tp = 0) ?(fp = 0) ?(collides = false) hint =
  {
    Learned.hint;
    hint_type = Plan.Iata;
    city = Helpers.city "london" "gb";
    tp;
    fp;
    collides;
  }

(* --- the formula at its extremes --- *)

let test_prior () =
  (* no evidence at all: the Laplace prior, undiluted *)
  feq "no evidence scores the 0.5 prior" 0.5
    (Confidence.score (signals ()))

let test_strong_evidence () =
  let high = Confidence.score (signals ~stats:(stats ~tp:1000 ()) ()) in
  Alcotest.(check bool) "overwhelming clean evidence scores high" true
    (high > 0.95 && high <= 1.0);
  let low = Confidence.score (signals ~stats:(stats ~fp:1000 ()) ()) in
  Alcotest.(check bool) "overwhelming dirty evidence scores low" true
    (low < 0.05 && low >= 0.0)

let test_support_shrinkage () =
  (* 4 clean samples move the score n/(n+8) = 1/3 of the way from the
     prior to the smoothed PPV: 0.5 + (1/3)(5/6 - 0.5) *)
  feq "small support cannot claim certainty"
    (0.5 +. (1.0 /. 3.0 *. (5.0 /. 6.0 -. 0.5)))
    (Confidence.score (signals ~stats:(stats ~tp:4 ()) ()));
  (* more clean evidence never scores lower *)
  let prev = ref 0.0 in
  List.iter
    (fun tp ->
      let s = Confidence.score (signals ~stats:(stats ~tp ()) ()) in
      Alcotest.(check bool)
        (Printf.sprintf "monotone in support at tp=%d" tp)
        true (s >= !prev);
      prev := s)
    [ 0; 1; 2; 4; 8; 16; 64; 1000 ]

let test_agreement_extremes () =
  let base = Confidence.score (signals ~stats:(stats ~tp:100 ()) ()) in
  let vetoed =
    Confidence.score (signals ~stats:(stats ~tp:100 ~agreement:0.0 ()) ())
  in
  (* full cross-channel disagreement costs exactly 15% of the score *)
  feq "agreement=0 is the 0.85 haircut" (0.85 *. base) vetoed;
  (* out-of-range agreement is clamped, not amplified *)
  feq "agreement above 1 clamps"
    (Confidence.score (signals ~stats:(stats ~tp:100 ~agreement:1.0 ()) ()))
    (Confidence.score (signals ~stats:(stats ~tp:100 ~agreement:7.0 ()) ()))

let test_collision_dilution () =
  let at n =
    Confidence.score (signals ~stats:(stats ~tp:100 ()) ~collisions:n ())
  in
  (* strictly decreasing in the number of losers... *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "loser %d dilutes" (n + 1))
        true
        (at (n + 1) < at n))
    [ 0; 1; 2; 3 ];
  (* ...with the documented 1/(1+0.25*losers) shape: 4 losers halve *)
  feq "four losers exactly halve" (at 0 /. 2.0) (at 4);
  (* a negative count cannot inflate *)
  feq "negative collisions are zero collisions" (at 0)
    (Confidence.score (signals ~stats:(stats ~tp:100 ()) ~collisions:(-3) ()))

let test_overlay_purity () =
  let base ?overlay () =
    Confidence.score
      (signals ~stats:(stats ~tp:100 ()) ~provenance:Evalx.Overlay ?overlay ())
  in
  (* an fp-free learned hint costs nothing, whatever its support *)
  feq "pure overlay hint is free" (base ())
    (base ~overlay:(entry ~tp:5 "lhr") ());
  feq "pure overlay hint is free at tp=1" (base ())
    (base ~overlay:(entry ~tp:1 "lhr") ());
  (* an impure hint pays its purity relative to a clean record of the
     same size: smoothed(5,5)/smoothed(10,0) = (6/12)/(11/12) = 6/11 *)
  feq "impure overlay pays the purity ratio"
    (base () *. (6.0 /. 11.0))
    (base ~overlay:(entry ~tp:5 ~fp:5 "lhr") ());
  (* a dictionary-colliding hint keeps the flat 0.9 haircut *)
  feq "dictionary collision haircut"
    (base () *. 0.9)
    (base ~overlay:(entry ~tp:5 ~collides:true "lhr") ())

let test_of_resolution () =
  let learned = Learned.empty () in
  let ex =
    { Plan.hint = "lhr"; hint_type = Plan.Iata; cc = None; state = None }
  in
  let city = Helpers.city "london" "gb" in
  let st = stats ~tp:100 () in
  feq "unresolvable extraction scores 0.0" 0.0
    (Confidence.of_resolution ~stats:st ~learned ex ([], Evalx.Dictionary));
  feq "losers count as collisions"
    (Confidence.score (signals ~stats:st ~collisions:2 ()))
    (Confidence.of_resolution ~stats:st ~learned ex
       ([ city; city; city ], Evalx.Dictionary));
  (* overlay provenance looks the hint up in the learned overlay *)
  let e = entry ~tp:3 ~fp:1 "lhr" in
  Learned.add learned e;
  feq "overlay provenance consults the learned entry"
    (Confidence.score
       (signals ~stats:st ~provenance:Evalx.Overlay ~overlay:e ()))
    (Confidence.of_resolution ~stats:st ~learned ex ([ city ], Evalx.Overlay));
  (* ...but only for the matching hint *)
  let ex' = { ex with Plan.hint = "fra" } in
  feq "unknown overlay hint carries no overlay factor"
    (Confidence.score (signals ~stats:st ~provenance:Evalx.Overlay ()))
    (Confidence.of_resolution ~stats:st ~learned ex' ([ city ], Evalx.Overlay))

let test_describe_loser () =
  let best = { (Helpers.city "london" "gb") with City.population = 900 } in
  let loser = { (Helpers.city "tokyo" "jp") with City.population = 250 } in
  Alcotest.(check string) "loser line shows the support margin"
    (Printf.sprintf "%s (support 250, -650 vs winner)" (City.describe loser))
    (Confidence.describe_loser ~best loser)

(* --- properties: the score is a total, clamped function --- *)

let gen_signals =
  QCheck.Gen.(
    let* tp = int_bound 10_000 in
    let* fp = int_bound 10_000 in
    let* agreement = float_bound_inclusive 2.0 in
    let* collisions = int_range (-2) 50 in
    let* overlay =
      oneof
        [
          return None;
          (let* otp = int_bound 100 in
           let* ofp = int_bound 100 in
           let* collides = bool in
           return (Some (entry ~tp:otp ~fp:ofp ~collides "lhr")));
        ]
    in
    return
      (signals
         ~stats:(stats ~tp ~fp ~agreement ())
         ~collisions ~provenance:Evalx.Overlay ?overlay ()))

let arb_signals =
  QCheck.make
    ~print:(fun (s : Confidence.signals) ->
      Printf.sprintf "tp=%d fp=%d agree=%f coll=%d overlay=%b"
        s.Confidence.stats.Confidence.tp s.Confidence.stats.Confidence.fp
        s.Confidence.stats.Confidence.rtt_agreement s.Confidence.collisions
        (s.Confidence.overlay <> None))
    gen_signals

let prop_clamped =
  q "score lands in [0,1] for any signal combination" arb_signals (fun s ->
      let v = Confidence.score s in
      v >= 0.0 && v <= 1.0 && Float.is_finite v)

(* --- properties: determinism across serving configurations --- *)

(* random probes over the fixture world: corpus hostnames under
   benign decorations the boundary must absorb, plus misses *)
let gen_probe =
  let corpus = lazy (List.map fst (Test_net.corpus_lines ())) in
  QCheck.Gen.(
    let* base =
      oneof
        [
          (let* l = oneofl (Lazy.force corpus) in
           return l);
          return "unknown-host.example";
          return "xyz123.no-such-suffix.test";
        ]
    in
    let* decorate =
      oneofl
        [
          Fun.id;
          String.uppercase_ascii;
          String.capitalize_ascii;
          (fun s -> s ^ ".");
        ]
    in
    return (decorate base))

let arb_probe = QCheck.make ~print:Fun.id gen_probe

let prop_jobs_determinism =
  (* one warm server per jobs setting; every probe must answer with the
     exact same confidence float through either, and both must equal
     the in-process pipeline score *)
  let servers =
    lazy
      (let p, model, _ = Lazy.force Test_net.fixture in
       (p, Serve.create model, Serve.create model))
  in
  q "confidence is byte-identical at jobs=1 and jobs=4" arb_probe (fun h ->
      let p, s1, s4 = Lazy.force servers in
      let a1 =
        match Serve.apply_batch ~jobs:1 s1 [ h ] with
        | [ (_, a) ] -> a
        | _ -> QCheck.Test.fail_report "jobs=1 batch shape"
      in
      let a4 =
        match Serve.apply_batch ~jobs:4 s4 [ h ] with
        | [ (_, a) ] -> a
        | _ -> QCheck.Test.fail_report "jobs=4 batch shape"
      in
      let city, conf = Pipeline.geolocate_conf p h in
      if a1 <> a4 then
        QCheck.Test.fail_reportf "jobs=1 %.17g <> jobs=4 %.17g for %S"
          a1.Serve.confidence a4.Serve.confidence h;
      if a1.Serve.city <> city || a1.Serve.confidence <> conf then
        QCheck.Test.fail_reportf "serve %.17g <> in-process %.17g for %S"
          a1.Serve.confidence conf h;
      true)

let test_socket_matches_inproc () =
  (* the same probe distribution over a real socket: a /batch of
     generated hostnames must render exactly the in-process scores *)
  let p, model, _ = Lazy.force Test_net.fixture in
  let rand = Random.State.make [| 0x5eed |] in
  let probes =
    List.init 200 (fun _ -> QCheck.Gen.generate1 ~rand gen_probe)
  in
  let expected =
    probes
    |> List.map (fun h ->
           let city, conf = Pipeline.geolocate_conf p h in
           Printf.sprintf "%s\t%s\t%.3f\n" h
             (match city with Some c -> City.describe c | None -> "-")
             conf)
    |> String.concat ""
  in
  Test_net.with_server ~config:Test_net.small_config model (fun _ port ->
      let status, body, _ =
        Test_net.request ~meth:"POST"
          ~body:(String.concat "\n" probes)
          port "/batch"
      in
      Alcotest.(check int) "batch status" 200 status;
      Alcotest.(check string) "socket scores = in-process scores" expected
        body)

let suites =
  [
    ( "confidence",
      [
        tc "prior" test_prior;
        tc "evidence extremes" test_strong_evidence;
        tc "support shrinkage" test_support_shrinkage;
        tc "agreement extremes" test_agreement_extremes;
        tc "collision dilution" test_collision_dilution;
        tc "overlay purity" test_overlay_purity;
        tc "of_resolution" test_of_resolution;
        tc "describe_loser" test_describe_loser;
        prop_clamped;
        prop_jobs_determinism;
        tc "socket scores match in-process" test_socket_matches_inproc;
      ] );
  ]
