(* The serving health subsystem: sliding windows (rotation edges,
   jobs-invariance under an injected clock), the burn-rate evaluator,
   calibration drift, the access-log line format, and SLO file
   parsing. Everything clock-injected — no sleeps, no daemon. *)

module Window = Hoiho_obs.Window
module Health = Hoiho_obs.Health
module Access_log = Hoiho_net.Access_log
module Slo = Hoiho_net.Slo

let tc = Helpers.tc

(* --- Window --- *)

let test_window_basic_stats () =
  let w = Window.create ~bucket_ms:100.0 ~nbuckets:10 () in
  Alcotest.(check (float 1e-9)) "span" 1000.0 (Window.span_ms w);
  Alcotest.(check int) "nbuckets" 10 (Window.nbuckets w);
  List.iter
    (fun v -> Window.record w ~now_ms:50.0 (float_of_int v))
    [ 5; 1; 2; 3; 4 ];
  let s = Window.stats w ~now_ms:50.0 in
  Alcotest.(check int) "n" 5 s.Window.n;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Window.p50;
  Alcotest.(check (float 1e-9)) "p99" 5.0 s.Window.p99;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Window.max;
  Alcotest.(check (float 1e-9)) "sum" 15.0 s.Window.sum;
  Alcotest.(check (float 1e-9)) "rate = n / span_s" 5.0 s.Window.rate_per_s

let test_window_empty () =
  let w = Window.create ~bucket_ms:100.0 ~nbuckets:4 () in
  let s = Window.stats w ~now_ms:0.0 in
  Alcotest.(check int) "n" 0 s.Window.n;
  Alcotest.(check (float 1e-9)) "p50" 0.0 s.Window.p50;
  Alcotest.(check (float 1e-9)) "max" 0.0 s.Window.max;
  Alcotest.(check int) "no samples" 0
    (Array.length (Window.samples w ~now_ms:0.0))

let test_window_bucket_boundary () =
  (* a sample stamped exactly at a bucket boundary belongs to the NEW
     epoch: floor(200/100) = epoch 2, not epoch 1 *)
  let w = Window.create ~bucket_ms:100.0 ~nbuckets:2 () in
  Window.record w ~now_ms:199.999 1.0;
  Window.record w ~now_ms:200.0 2.0;
  (* at now=200 the span covers epochs {1, 2}: both visible *)
  Alcotest.(check int) "boundary: both epochs in-window" 2
    (Window.stats w ~now_ms:200.0).Window.n;
  (* at now=300 (epoch 3) the span covers {2, 3}: the 199.999 sample
     aged out, the 200.0 sample survives *)
  let s = Window.stats w ~now_ms:300.0 in
  Alcotest.(check int) "old epoch aged out" 1 s.Window.n;
  Alcotest.(check (float 1e-9)) "survivor is the boundary sample" 2.0
    s.Window.max

let test_window_idle_gap () =
  (* an idle gap longer than the whole span: no sweeper runs, yet the
     snapshot is empty because every stored epoch fails the span
     filter; the next record reuses the slots cleanly *)
  let w = Window.create ~bucket_ms:100.0 ~nbuckets:4 () in
  List.iter (fun t -> Window.record w ~now_ms:t 1.0) [ 10.0; 110.0; 210.0 ];
  Alcotest.(check int) "filled" 3 (Window.stats w ~now_ms:210.0).Window.n;
  (* jump far past the span (4 buckets x 100 ms) without recording *)
  Alcotest.(check int) "all aged out after idle gap" 0
    (Window.stats w ~now_ms:5000.0).Window.n;
  (* slot reuse after the gap: epoch 50 maps to the same slot as epoch
     2 (50 mod 4 = 2) and must reset it rather than mix samples *)
  Window.record w ~now_ms:5010.0 9.0;
  let s = Window.stats w ~now_ms:5010.0 in
  Alcotest.(check int) "fresh epoch only" 1 s.Window.n;
  Alcotest.(check (float 1e-9)) "fresh value" 9.0 s.Window.max

let test_window_rollover_evicts_oldest () =
  let w = Window.create ~bucket_ms:100.0 ~nbuckets:3 () in
  (* one sample per epoch 0..2 fills the ring *)
  Window.record w ~now_ms:0.0 10.0;
  Window.record w ~now_ms:100.0 20.0;
  Window.record w ~now_ms:200.0 30.0;
  Alcotest.(check int) "full ring" 3 (Window.stats w ~now_ms:200.0).Window.n;
  (* writing epoch 3 reuses epoch 0's slot *)
  Window.record w ~now_ms:300.0 40.0;
  let samples = Window.samples w ~now_ms:300.0 in
  Alcotest.(check (array (float 1e-9))) "oldest evicted, rest sorted"
    [| 20.0; 30.0; 40.0 |] samples

let test_window_invalid_args () =
  Alcotest.check_raises "bucket_ms <= 0"
    (Invalid_argument "Window.create: bucket_ms <= 0") (fun () ->
      ignore (Window.create ~bucket_ms:0.0 ~nbuckets:4 ()));
  Alcotest.check_raises "nbuckets < 1"
    (Invalid_argument "Window.create: nbuckets < 1") (fun () ->
      ignore (Window.create ~bucket_ms:10.0 ~nbuckets:0 ()))

(* the determinism the access-log/window replay contract rests on:
   the same (value, now_ms) multiset recorded from 1 domain or 4
   domains — in any interleaving, any shard assignment — yields a
   byte-identical sorted snapshot *)
let test_window_jobs_invariant () =
  let entries =
    List.init 400 (fun i ->
        (float_of_int ((i * 7919) mod 1000) /. 10.0, float_of_int (i mod 950)))
  in
  let record_all w items =
    List.iter (fun (v, t) -> Window.record w ~now_ms:t v) items
  in
  let w1 = Window.create ~bucket_ms:100.0 ~nbuckets:10 () in
  record_all w1 entries;
  let w4 = Window.create ~bucket_ms:100.0 ~nbuckets:10 () in
  let parts = Array.make 4 [] in
  List.iteri (fun i e -> parts.(i mod 4) <- e :: parts.(i mod 4)) entries;
  let domains =
    Array.map (fun part -> Domain.spawn (fun () -> record_all w4 part)) parts
  in
  Array.iter Domain.join domains;
  let now = 949.0 in
  Alcotest.(check (array (float 1e-12))) "jobs=1 = jobs=4 snapshots"
    (Window.samples w1 ~now_ms:now)
    (Window.samples w4 ~now_ms:now);
  let s1 = Window.stats w1 ~now_ms:now and s4 = Window.stats w4 ~now_ms:now in
  Alcotest.(check int) "same n" s1.Window.n s4.Window.n;
  Alcotest.(check (float 1e-12)) "same p99" s1.Window.p99 s4.Window.p99

(* --- Health evaluator --- *)

let obj metric max_value fail_ratio = { Health.metric; max_value; fail_ratio }

let test_evaluate_states () =
  let objectives = [ obj "latency_p99_ms" 100.0 3.0 ] in
  Alcotest.(check int) "within budget -> Ok" 0
    (Health.state_to_int
       (Health.evaluate ~objectives ~measurements:[ ("latency_p99_ms", 80.0) ]));
  (match Health.evaluate ~objectives ~measurements:[ ("latency_p99_ms", 150.0) ]
  with
  | Health.Degraded [ r ] ->
      Alcotest.(check bool) "reason names the metric" true
        (String.length r > 0 && String.sub r 0 14 = "latency_p99_ms")
  | s -> Alcotest.failf "expected Degraded, got %s" (Health.state_label s));
  (match Health.evaluate ~objectives ~measurements:[ ("latency_p99_ms", 300.0) ]
  with
  | Health.Failing [ _ ] -> ()
  | s -> Alcotest.failf "expected Failing, got %s" (Health.state_label s));
  (* a missing measurement is skipped, not failed *)
  Alcotest.(check int) "missing measurement -> Ok" 0
    (Health.state_to_int (Health.evaluate ~objectives ~measurements:[]))

let test_evaluate_failing_dominates () =
  let objectives =
    [ obj "error_rate" 0.1 2.0; obj "latency_p99_ms" 100.0 2.0 ]
  in
  match
    Health.evaluate ~objectives
      ~measurements:[ ("error_rate", 0.5); ("latency_p99_ms", 150.0) ]
  with
  | Health.Failing reasons ->
      (* the failing objective leads; the merely-degraded one rides along *)
      Alcotest.(check int) "both reasons carried" 2 (List.length reasons);
      Alcotest.(check bool) "failing reason first" true
        (String.sub (List.hd reasons) 0 10 = "error_rate")
  | s -> Alcotest.failf "expected Failing, got %s" (Health.state_label s)

let test_render () =
  Alcotest.(check string) "ok" "ok" (Health.render Health.Ok);
  Alcotest.(check string) "degraded" "degraded: a; b"
    (Health.render (Health.Degraded [ "a"; "b" ]));
  Alcotest.(check string) "failing" "failing: x"
    (Health.render (Health.Failing [ "x" ]))

let test_default_objectives_clean_server_ok () =
  (* a fresh monitor with zero traffic must evaluate Ok: /healthz's
     "ok" body on a clean daemon is pinned by test_net and serve_check *)
  let m = Health.create_monitor () in
  Alcotest.(check int) "clean monitor Ok" 0
    (Health.state_to_int (Health.evaluate_monitor m ~now_ms:0.0))

let test_decile_histogram_and_drift () =
  let h = Health.decile_histogram [| 0.05; 0.05; 0.95; 1.0 |] in
  Alcotest.(check (float 1e-9)) "bottom decile mass" 0.5 h.(0);
  Alcotest.(check (float 1e-9)) "1.0 clamps into top decile" 0.5 h.(9);
  Alcotest.(check (float 1e-9)) "normalized" 1.0 (Array.fold_left ( +. ) 0.0 h);
  Alcotest.(check (float 1e-9)) "empty input is all-zero" 0.0
    (Array.fold_left ( +. ) 0.0 (Health.decile_histogram [||]));
  Alcotest.(check (float 1e-9)) "identical -> drift 0" 0.0
    (Health.drift ~expected:h ~observed:h);
  let lo = Health.decile_histogram [| 0.05 |] in
  let hi = Health.decile_histogram [| 0.95 |] in
  Alcotest.(check (float 1e-9)) "disjoint -> drift 1" 1.0
    (Health.drift ~expected:lo ~observed:hi)

let test_monitor_measurements () =
  let m = Health.create_monitor ~bucket_ms:100.0 ~nbuckets:10 () in
  for i = 0 to 9 do
    Health.record_request m
      ~now_ms:(float_of_int (i * 50))
      ~latency_ms:(float_of_int (10 + i))
      ~status:(if i < 2 then 500 else 200)
      ~shed:(i = 0)
  done;
  let meas = Health.measurements m ~now_ms:480.0 in
  let get k = List.assoc k meas in
  Alcotest.(check (float 1e-9)) "error rate = 2/10" 0.2 (get "error_rate");
  Alcotest.(check (float 1e-9)) "shed rate = 1/10" 0.1 (get "shed_rate");
  Alcotest.(check (float 1e-9)) "p99 latency" 19.0 (get "latency_p99_ms");
  Alcotest.(check bool) "no drift without a profile" true
    (not (List.mem_assoc "calibration_drift" meas))

let test_monitor_drift_gating_and_degraded () =
  let m =
    Health.create_monitor
      ~objectives:[ obj "calibration_drift" 0.2 2.5 ]
      ~bucket_ms:100.0 ~nbuckets:10 ()
  in
  (* expected: everything in the top decile; observed: bottom decile *)
  let expected = Health.decile_histogram [| 0.95 |] in
  Health.set_expected_profile m (Some expected);
  let below = Health.drift_min_samples - 1 in
  for i = 1 to below do
    Health.record_confidence m ~now_ms:(float_of_int i) 0.05
  done;
  Alcotest.(check bool) "below min samples: drift unmeasured" true
    (not (List.mem_assoc "calibration_drift" (Health.measurements m ~now_ms:50.0)));
  Health.record_confidence m ~now_ms:60.0 0.05;
  let meas = Health.measurements m ~now_ms:60.0 in
  Alcotest.(check (float 1e-9)) "fully shifted distribution drifts 1.0" 1.0
    (List.assoc "calibration_drift" meas);
  (match Health.evaluate_monitor m ~now_ms:60.0 with
  | Health.Failing _ -> ()
  | s -> Alcotest.failf "burn 5 >= 2.5: expected Failing, got %s"
           (Health.state_label s));
  (* None disables the measurement entirely *)
  Health.set_expected_profile m None;
  Alcotest.(check int) "no profile -> Ok" 0
    (Health.state_to_int (Health.evaluate_monitor m ~now_ms:60.0))

let test_monitor_recovery () =
  (* the windowed state machine recovers on its own: bad requests age
     out of the span and the evaluator returns to Ok with no resets *)
  let m =
    Health.create_monitor
      ~objectives:[ obj "error_rate" 0.1 2.0 ]
      ~bucket_ms:100.0 ~nbuckets:4 ()
  in
  for i = 0 to 9 do
    Health.record_request m ~now_ms:(float_of_int (i * 10)) ~latency_ms:1.0
      ~status:500 ~shed:false
  done;
  (match Health.evaluate_monitor m ~now_ms:90.0 with
  | Health.Failing _ -> ()
  | s -> Alcotest.failf "all-errors: expected Failing, got %s"
           (Health.state_label s));
  Alcotest.(check int) "errors aged out -> Ok" 0
    (Health.state_to_int (Health.evaluate_monitor m ~now_ms:5000.0))

(* --- Access log --- *)

let test_access_log_line_bytes () =
  let entry =
    {
      Access_log.request_id = "hoiho-1-2";
      endpoint = "GET /geolocate";
      status = 200;
      latency_us = 1234;
      batch = 1;
      cache_hit = true;
      confidence = Some 0.875;
      shed = false;
      degraded = false;
    }
  in
  Alcotest.(check string) "line bytes pinned"
    "{\"request_id\":\"hoiho-1-2\",\"endpoint\":\"GET /geolocate\",\
     \"status\":200,\"latency_us\":1234,\"batch\":1,\"cache_hit\":true,\
     \"confidence\":0.875,\"shed\":false,\"degraded\":false}"
    (Access_log.line_of_entry entry);
  Alcotest.(check string) "absent confidence renders null"
    "{\"request_id\":\"r\",\"endpoint\":\"-\",\"status\":400,\
     \"latency_us\":10,\"batch\":0,\"cache_hit\":false,\"confidence\":null,\
     \"shed\":true,\"degraded\":true}"
    (Access_log.line_of_entry
       {
         Access_log.request_id = "r";
         endpoint = "-";
         status = 400;
         latency_us = 10;
         batch = 0;
         cache_hit = false;
         confidence = None;
         shed = true;
         degraded = true;
       });
  (* each line is one strict-JSON object *)
  match Hoiho_util.Json.parse (Access_log.line_of_entry entry) with
  | Ok (Hoiho_util.Json.Obj fields) ->
      Alcotest.(check int) "nine fields" 9 (List.length fields)
  | Ok _ -> Alcotest.fail "line is not a JSON object"
  | Error e -> Alcotest.failf "line does not parse: %s" e

let entry_for i =
  {
    Access_log.request_id = Printf.sprintf "req-%04d" i;
    endpoint = "GET /geolocate";
    status = 200;
    latency_us = i;
    batch = 1;
    cache_hit = false;
    confidence = None;
    shed = false;
    degraded = false;
  }

let test_access_log_write_and_rotate () =
  let path = Filename.temp_file "hoiho_access" ".log" in
  let read_all p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Access_log.create ~max_bytes:1024 path with
  | Error e -> Alcotest.failf "create: %s" e
  | Ok log ->
      let line_len =
        String.length (Access_log.line_of_entry (entry_for 0)) + 1
      in
      let n = (1024 / line_len) + 3 in
      for i = 0 to n - 1 do
        Access_log.log log (entry_for i)
      done;
      Access_log.close log;
      let live = read_all path and rolled = read_all (path ^ ".1") in
      Alcotest.(check bool) "live file under the budget" true
        (String.length live <= 1024);
      Alcotest.(check bool) "rotation happened" true (String.length rolled > 0);
      (* no line lost or torn across the rotation *)
      let lines =
        List.concat_map
          (fun s -> String.split_on_char '\n' (String.trim s))
          [ rolled; live ]
      in
      Alcotest.(check int) "every line survives rotation" n (List.length lines);
      List.iteri
        (fun i line ->
          Alcotest.(check string) "line order preserved"
            (Access_log.line_of_entry (entry_for i))
            line)
        lines);
  Sys.remove path;
  (try Sys.remove (path ^ ".1") with Sys_error _ -> ())

let test_access_log_unwritable () =
  match Access_log.create "/nonexistent-dir/x/access.log" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error for an unwritable path"

(* --- SLO files --- *)

let test_slo_parse_ok () =
  match
    Slo.parse
      {|{"window_s": 10, "buckets": 5,
         "objectives": [
           {"metric": "latency_p99_ms", "max": 250},
           {"metric": "error_rate", "max": 0.05, "fail_ratio": 3.0}]}|}
  with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok t ->
      Alcotest.(check (float 1e-9)) "bucket_ms = 10s/5" 2000.0 t.Slo.bucket_ms;
      Alcotest.(check int) "buckets" 5 t.Slo.nbuckets;
      Alcotest.(check int) "two objectives" 2 (List.length t.Slo.objectives);
      let o = List.nth t.Slo.objectives 1 in
      Alcotest.(check string) "metric" "error_rate" o.Health.metric;
      Alcotest.(check (float 1e-9)) "max" 0.05 o.Health.max_value;
      Alcotest.(check (float 1e-9)) "fail_ratio" 3.0 o.Health.fail_ratio;
      let d = List.hd t.Slo.objectives in
      Alcotest.(check (float 1e-9)) "fail_ratio defaults to 2" 2.0
        d.Health.fail_ratio

let expect_error name s =
  match Slo.parse s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected parse error" name

let test_slo_parse_errors () =
  expect_error "not json" "nope";
  expect_error "objectives missing" {|{"window_s": 60}|};
  expect_error "unknown metric"
    {|{"objectives": [{"metric": "cpu", "max": 1}]}|};
  expect_error "max missing" {|{"objectives": [{"metric": "error_rate"}]}|};
  expect_error "max not positive"
    {|{"objectives": [{"metric": "error_rate", "max": 0}]}|};
  expect_error "fail_ratio <= 1"
    {|{"objectives": [{"metric": "error_rate", "max": 1, "fail_ratio": 1.0}]}|};
  expect_error "bad window" {|{"window_s": -5, "objectives": []}|};
  expect_error "bad buckets" {|{"buckets": 0, "objectives": []}|};
  (* error text names the offending path *)
  match Slo.parse {|{"objectives": [{"metric": "error_rate", "max": -1}]}|} with
  | Error e ->
      Alcotest.(check bool) "error names the path" true
        (String.length e >= 16 && String.sub e 0 16 = "$.objectives[0].")
  | Ok _ -> Alcotest.fail "expected error"

let suites =
  [
    ( "health-window",
      [
        tc "basic stats" test_window_basic_stats;
        tc "empty window" test_window_empty;
        tc "bucket-boundary timestamps" test_window_bucket_boundary;
        tc "idle gap longer than span" test_window_idle_gap;
        tc "rollover evicts oldest" test_window_rollover_evicts_oldest;
        tc "invalid args" test_window_invalid_args;
        tc "jobs=1 = jobs=4 snapshots" test_window_jobs_invariant;
      ] );
    ( "health-evaluator",
      [
        tc "ok/degraded/failing thresholds" test_evaluate_states;
        tc "failing dominates degraded" test_evaluate_failing_dominates;
        tc "render" test_render;
        tc "clean monitor is Ok on defaults"
          test_default_objectives_clean_server_ok;
        tc "decile histogram and drift" test_decile_histogram_and_drift;
        tc "monitor measurements" test_monitor_measurements;
        tc "drift gating and degraded" test_monitor_drift_gating_and_degraded;
        tc "windowed recovery" test_monitor_recovery;
      ] );
    ( "access-log",
      [
        tc "line bytes pinned" test_access_log_line_bytes;
        tc "write and rotate" test_access_log_write_and_rotate;
        tc "unwritable path is Error" test_access_log_unwritable;
      ] );
    ( "slo",
      [
        tc "parse ok" test_slo_parse_ok;
        tc "parse errors name paths" test_slo_parse_errors;
      ] );
  ]
