module Pipeline = Hoiho.Pipeline
module Ncsel = Hoiho.Ncsel
module Consist = Hoiho.Consist
module Learned = Hoiho.Learned

let tc = Helpers.tc
let db = Helpers.db

let run_fixture sites =
  let ds, routers, _ = Helpers.suffix_fixture sites in
  let consist = Consist.create ds in
  Pipeline.run_suffix consist db ~suffix:"example.net" routers

let good_sites =
  [
    (Helpers.city "london" "gb", "lhr", 3);
    (Helpers.city "frankfurt" "de", "fra", 3);
    (Helpers.city_st "seattle" "us" "wa", "sea", 3);
    (Helpers.city_st "chicago" "us" "il", "ord", 3);
  ]

let test_good_classification () =
  let r = run_fixture good_sites in
  Alcotest.(check bool) "classified" true (r.Pipeline.classification = Some Ncsel.Good);
  Alcotest.(check bool) "usable" true (Pipeline.usable r);
  match r.Pipeline.nc with
  | Some nc ->
      Alcotest.(check bool) "unique hints >= 3" true (nc.Ncsel.unique_hints >= 3);
      Alcotest.(check bool) "high ppv" true (Hoiho.Evalx.ppv nc.Ncsel.counts >= 0.9)
  | None -> Alcotest.fail "no NC"

let test_poor_single_site () =
  let r = run_fixture [ (Helpers.city "london" "gb", "lhr", 3) ] in
  Alcotest.(check bool) "poor (one unique hint)" true
    (r.Pipeline.classification = Some Ncsel.Poor);
  Alcotest.(check bool) "not usable" false (Pipeline.usable r)

let test_no_geohints () =
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let routers =
    [ Helpers.router ~id:0 ~at:lon ~vps ~hostnames:[ "stcq1.vpnx.example.net" ] () ]
  in
  let consist = Consist.create (Helpers.dataset routers vps) in
  let r = Pipeline.run_suffix consist db ~suffix:"example.net" routers in
  Alcotest.(check int) "nothing tagged" 0 r.Pipeline.n_tagged;
  Alcotest.(check bool) "no NC" true (r.Pipeline.nc = None);
  Alcotest.(check bool) "no classification" true (r.Pipeline.classification = None)

let test_counters () =
  let r = run_fixture good_sites in
  Alcotest.(check int) "routers" 12 r.Pipeline.n_routers;
  Alcotest.(check int) "hostnames (2 per router)" 24 r.Pipeline.n_samples;
  Alcotest.(check int) "all tagged" 24 r.Pipeline.n_tagged;
  Alcotest.(check int) "tagged routers" 12 r.Pipeline.n_tagged_routers

let test_full_run_and_geolocate () =
  let ds, routers, vps = Helpers.suffix_fixture good_sites in
  ignore routers;
  ignore vps;
  let p = Pipeline.run ds in
  Alcotest.(check int) "one suffix" 1 (List.length p.Pipeline.results);
  (match Pipeline.geolocate p "te9-9.cr2.lhr7.example.net" with
  | Some city -> Alcotest.(check string) "london" "london" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "geolocate failed");
  (* regression: DNS is case-insensitive, so an uppercase answer must
     geolocate exactly like its lowercase form (the suffix lookup used
     to lowercase while the regexes ran on the raw string) *)
  (match Pipeline.geolocate p "TE9-9.CR2.LHR7.EXAMPLE.NET" with
  | Some city ->
      Alcotest.(check string) "mixed case" "london" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "mixed-case geolocate failed");
  (* regression: uppercase AND trailing root dot AND embedded
     whitespace at once — normalization must land on the canonical
     form before both the suffix lookup and the regex run *)
  (match Pipeline.geolocate p " TE9-9.CR2. LHR7.Example.Net.\t" with
  | Some city ->
      Alcotest.(check string) "dirty PTR form" "london" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "dirty-form geolocate failed");
  (* malformed inputs decline, never raise *)
  List.iter
    (fun h ->
      Alcotest.(check bool) (String.escaped h ^ " declines") true
        (Pipeline.geolocate p h = None))
    [ ""; "."; "..."; "\x00\x01.example.net"; String.make 2000 'a' ^ ".example.net" ];
  Alcotest.(check bool) "unknown suffix" true
    (Pipeline.geolocate p "r1.lhr1.unknown.org" = None)

let test_geolocated_routers () =
  let ds, _, _ = Helpers.suffix_fixture good_sites in
  let p = Pipeline.run ds in
  match p.Pipeline.results with
  | [ r ] ->
      Alcotest.(check int) "all routers geolocated" 12 (Pipeline.geolocated_routers p r)
  | _ -> Alcotest.fail "expected one suffix"

let test_learning_toggle () =
  (* with a custom code, learning on vs off changes the learned table *)
  let sites = good_sites @ [ (Helpers.city_st "ashburn" "us" "va", "ash", 4) ] in
  let ds, routers, _ = Helpers.suffix_fixture sites in
  let consist = Consist.create ds in
  let on = Pipeline.run_suffix consist db ~suffix:"example.net" routers in
  let off =
    Pipeline.run_suffix consist db ~learn_geohints:false ~suffix:"example.net" routers
  in
  Alcotest.(check bool) "learning on learns ash" true
    (Learned.find on.Pipeline.learned Hoiho.Plan.Iata "ash" <> None);
  Alcotest.(check int) "learning off learns nothing" 0 (Learned.size off.Pipeline.learned);
  (* and the NC with learning has at least as many TPs *)
  match (on.Pipeline.nc, off.Pipeline.nc) with
  | Some nc_on, Some nc_off ->
      Alcotest.(check bool) "learning does not lose TPs" true
        (nc_on.Ncsel.counts.Hoiho.Evalx.tp >= nc_off.Ncsel.counts.Hoiho.Evalx.tp)
  | _ -> Alcotest.fail "expected NCs in both runs"

let test_min_samples_filter () =
  let ds, _, _ = Helpers.suffix_fixture [ (Helpers.city "london" "gb", "lhr", 1) ] in
  let p = Pipeline.run ~min_samples:10 ds in
  match p.Pipeline.results with
  | [ r ] -> Alcotest.(check bool) "filtered out" true (r.Pipeline.nc = None)
  | _ -> Alcotest.fail "expected one suffix"

let test_find () =
  let ds, _, _ = Helpers.suffix_fixture good_sites in
  let p = Pipeline.run ds in
  Alcotest.(check bool) "find hit" true (Pipeline.find p "example.net" <> None);
  Alcotest.(check bool) "find miss" true (Pipeline.find p "other.net" = None)

module Obs = Hoiho_obs.Obs

let work_counters (s : Obs.snapshot) =
  (* pool.* counters are scheduling-dependent (a jobs=1 run never
     touches the pool); everything else counts work and must be
     identical across jobs settings *)
  List.filter
    (fun (name, _) -> not (String.length name >= 5 && String.sub name 0 5 = "pool."))
    s.Obs.counters

let test_metrics_determinism () =
  let config = Hoiho_netsim.Presets.tiny ~seed:777 () in
  let ds, truth = Hoiho_netsim.Generate.generate config in
  let gdb = Hoiho_netsim.Truth.db truth in
  Obs.reset ();
  let seq = Pipeline.run ~db:gdb ~jobs:1 ds in
  Obs.reset ();
  let par = Pipeline.run ~db:gdb ~jobs:4 ds in
  Alcotest.(check (list (pair string int)))
    "work counters identical for jobs=1 and jobs=4"
    (work_counters seq.Pipeline.metrics)
    (work_counters par.Pipeline.metrics);
  (* the snapshot carried by the run is non-trivial *)
  let nonzero name =
    match Obs.find_counter par.Pipeline.metrics name with
    | Some n when n > 0 -> ()
    | other ->
        Alcotest.failf "expected nonzero %s, got %s" name
          (match other with Some n -> string_of_int n | None -> "<absent>")
  in
  nonzero "rx.exec_calls";
  nonzero "pipeline.suffix_groups";
  nonzero "ncsel.candidates_evaluated";
  (match Obs.find_histogram par.Pipeline.metrics "pipeline.suffix_ms" with
  | Some h ->
      let groups =
        Option.value ~default:0
          (Obs.find_counter par.Pipeline.metrics "pipeline.suffix_groups")
      in
      Alcotest.(check int) "one span per suffix group" groups h.Obs.n
  | None -> Alcotest.fail "pipeline.suffix_ms histogram missing")

let test_clean_run_not_degraded () =
  (* the degraded channel is strictly additive: a clean run marks no
     suffix degraded and counts zero in pipeline.suffix_degraded *)
  Obs.reset ();
  let r = run_fixture good_sites in
  Alcotest.(check bool) "degraded is None" true (r.Pipeline.degraded = None);
  Alcotest.(check int) "counter zero" 0
    (Option.value ~default:(-1)
       (Obs.find_counter (Obs.snapshot ()) "pipeline.suffix_degraded"))

let test_parallel_determinism () =
  (* the full pipeline over a many-suffix dataset must produce the same
     results bit-for-bit whether run sequentially or on a domain pool *)
  let config = Hoiho_netsim.Presets.tiny ~seed:4242 () in
  let ds, truth = Hoiho_netsim.Generate.generate config in
  let gdb = Hoiho_netsim.Truth.db truth in
  let seq = Pipeline.run ~db:gdb ~jobs:1 ds in
  let par = Pipeline.run ~db:gdb ~jobs:4 ds in
  Alcotest.(check bool) "several suffixes exercised" true
    (List.length seq.Pipeline.results > 1);
  Alcotest.(check bool) "jobs=1 and jobs=4 results identical" true
    (seq.Pipeline.results = par.Pipeline.results)

let suites =
  [
    ( "pipeline",
      [
        tc "good classification" test_good_classification;
        tc "poor single site" test_poor_single_site;
        tc "no geohints" test_no_geohints;
        tc "counters" test_counters;
        tc "full run and geolocate" test_full_run_and_geolocate;
        tc "geolocated routers" test_geolocated_routers;
        tc "learning toggle" test_learning_toggle;
        tc "min samples filter" test_min_samples_filter;
        tc "find" test_find;
        tc "parallel determinism" test_parallel_determinism;
        tc "metrics determinism" test_metrics_determinism;
        tc "clean run not degraded" test_clean_run_not_degraded;
      ] );
  ]
