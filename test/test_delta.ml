(* Incremental relearn (Hoiho.Delta) and model diffs (Hoiho.Model_diff).

   The load-bearing property is the jobs-invariant equivalence
   guarantee (DESIGN.md §12): for any event stream, relearning only
   the dirty suffix groups over the prior run produces a model whose
   metrics-normalized Learned_io encoding is byte-identical to a
   from-scratch batch learn of the final corpus — at jobs 1 and at
   jobs 4, with identical degraded sets and identical stats. A 500-case
   qcheck property holds this over seeded random event streams; the
   table-driven cases pin the conservative dirty-set contract, corpus
   order preservation, the wire codec, and the serving-side
   negative-cache invalidation that makes the incremental swap sound. *)

module Delta = Hoiho.Delta
module Pipeline = Hoiho.Pipeline
module Learned_io = Hoiho.Learned_io
module Model_diff = Hoiho.Model_diff
module Serve = Hoiho_serve.Serve
module Json = Hoiho_util.Json
module Prng = Hoiho_util.Prng
module Obs = Hoiho_obs.Obs
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Generate = Hoiho_netsim.Generate
module Truth = Hoiho_netsim.Truth

(* --- fixture: a small but multi-operator synthetic corpus --- *)

let small_config =
  {
    Generate.label = "delta";
    seed = 4242;
    n_geo_consistent = 3;
    n_geo_small = 1;
    n_geo_mixed = 1;
    n_multikind = 0;
    n_compound = 0;
    n_nogeo = 2;
    n_extra_towns = 0;
    n_spoofing_vps = 0;
    include_validation = false;
    n_vps = 8;
    hostname_fraction = 0.9;
    p_responsive_unnamed = 0.8;
  }

let fixture =
  lazy
    (let ds, truth = Generate.generate small_config in
     let db = Truth.db truth in
     (ds, db, Pipeline.run ~db ~jobs:1 ds))

let normalize m = { m with Learned_io.metrics = Json.Obj [] }
let enc p = Learned_io.encode (normalize (Learned_io.of_pipeline p))

let degraded_set (p : Pipeline.t) =
  List.filter_map
    (fun (r : Pipeline.suffix_result) ->
      Option.map (fun d -> (r.Pipeline.suffix, d)) r.Pipeline.degraded)
    p.Pipeline.results

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "relearn failed: %s" (Delta.error_to_string e)

(* --- the property: incremental ≡ batch, at jobs 1 and 4 --- *)

(* A seeded random event stream over the fixture corpus. Ids are
   tracked through the stream so every non-Upsert event names a router
   that is still alive when it is replayed; everything else — cross-
   suffix renames, duplicate adds, RTT refreshes, churn — is fair
   game. *)
let gen_stream seed ds =
  let rng = Prng.create seed in
  let by_id = Hashtbl.create 64 in
  Array.iter
    (fun (r : Router.t) -> Hashtbl.replace by_id r.Router.id r)
    ds.Dataset.routers;
  let live =
    ref
      (Array.to_list
         (Array.map (fun (r : Router.t) -> r.Router.id) ds.Dataset.routers))
  in
  let next_id =
    ref
      (1
      + Array.fold_left
          (fun a (r : Router.t) -> max a r.Router.id)
          0 ds.Dataset.routers)
  in
  let suffixes = Array.of_list (List.map fst (Dataset.by_suffix ds)) in
  let fresh_hostname () =
    Printf.sprintf "probe%d.cr%d.%s" (Prng.int rng 100) (1 + Prng.int rng 3)
      (Prng.pick rng suffixes)
  in
  let upsert_new template =
    let nid = !next_id in
    incr next_id;
    let nr =
      Router.make nid
        ~hostnames:[ fresh_hostname () ]
        ~ping_rtts:template.Router.ping_rtts
        ~trace_rtts:template.Router.trace_rtts
    in
    live := !live @ [ nid ];
    Hashtbl.replace by_id nid nr;
    Delta.Upsert nr
  in
  let n = 1 + Prng.int rng 8 in
  List.init n (fun _ ->
      let id = Prng.pick_list rng !live in
      let r = Hashtbl.find by_id id in
      match Prng.int rng 6 with
      | 0 -> Delta.Add_hostname { router = id; hostname = fresh_hostname () }
      | 1 -> (
          match r.Router.hostnames with
          | [] -> Delta.Add_hostname { router = id; hostname = fresh_hostname () }
          | hs -> Delta.Remove_hostname { router = id; hostname = Prng.pick_list rng hs })
      | 2 ->
          Delta.Set_hostnames
            { router = id; hostnames = [ fresh_hostname (); fresh_hostname () ] }
      | 3 ->
          Delta.Set_rtts
            {
              router = id;
              ping =
                List.map
                  (fun (v, ms) -> (v, ms +. Prng.float rng 2.0))
                  r.Router.ping_rtts;
              trace = r.Router.trace_rtts;
            }
      | 4 when List.length !live > 1 ->
          live := List.filter (fun x -> x <> id) !live;
          Delta.Remove id
      | _ -> upsert_new r)

let prop_incremental_equals_batch seed =
  let _ds, db, prior = Lazy.force fixture in
  let events = gen_stream seed prior.Pipeline.dataset in
  (* the wire codec must be the identity on observable events *)
  let events =
    match Delta.events_of_string (Delta.events_to_string events) with
    | Ok decoded ->
        if decoded <> events then
          QCheck.Test.fail_report "wire round-trip changed the events";
        decoded
    | Error msg -> QCheck.Test.fail_reportf "wire decode failed: %s" msg
  in
  let run jobs =
    match Delta.relearn ~jobs ~prior events with
    | Ok pair -> pair
    | Error e ->
        QCheck.Test.fail_reportf "relearn failed: %s" (Delta.error_to_string e)
  in
  let p1, s1 = run 1 in
  let p4, s4 = run 4 in
  if s1 <> s4 then QCheck.Test.fail_report "stats differ between jobs 1 and 4";
  let batch = Pipeline.run ~db ~jobs:1 p1.Pipeline.dataset in
  if degraded_set p1 <> degraded_set batch then
    QCheck.Test.fail_report "degraded sets diverge from batch";
  let e1 = enc p1 and e4 = enc p4 and eb = enc batch in
  if e1 <> eb then
    QCheck.Test.fail_reportf "incremental (jobs 1) diverges from batch\nevents: %s"
      (Delta.events_to_string events);
  if e4 <> eb then
    QCheck.Test.fail_reportf "incremental (jobs 4) diverges from batch\nevents: %s"
      (Delta.events_to_string events);
  true

let qcheck_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"incremental relearn ≡ batch (jobs 1 and 4)"
       QCheck.small_nat prop_incremental_equals_batch)

(* --- table-driven dirty-set cases --- *)

let apply_ok ds events =
  match Delta.apply ds events with
  | Ok pair -> pair
  | Error e -> Alcotest.failf "apply failed: %s" (Delta.error_to_string e)

let test_dirty_sets () =
  let ds, routers, _vps = Helpers.iata_fixture () in
  let r0 = List.hd routers in
  let h0 = List.hd r0.Router.hostnames in
  let cases =
    [
      ( "add under the same suffix",
        [ Delta.Add_hostname { router = r0.Router.id; hostname = "x.cr9.lhr9.example.net" } ],
        [ "example.net" ] );
      ( "add under a foreign suffix dirties both",
        [ Delta.Add_hostname { router = r0.Router.id; hostname = "x.cr9.lhr9.other.net" } ],
        [ "example.net"; "other.net" ] );
      ( "remove a router",
        [ Delta.Remove r0.Router.id ],
        [ "example.net" ] );
      ( "rename across suffixes dirties both",
        [ Delta.Set_hostnames { router = r0.Router.id; hostnames = [ "a.cr1.fra1.other.net" ] } ],
        [ "example.net"; "other.net" ] );
      ( "upsert of a new router",
        [ Delta.Upsert (Router.make 9001 ~hostnames:[ "a.cr1.lhr1.fresh.net" ]
                          ~ping_rtts:r0.Router.ping_rtts) ],
        [ "fresh.net" ] );
      ( "duplicate add is a structural no-op",
        [ Delta.Add_hostname { router = r0.Router.id; hostname = h0 } ],
        [] );
      ( "absent remove is a structural no-op",
        [ Delta.Remove_hostname { router = r0.Router.id; hostname = "no.such.name.example.net" } ],
        [] );
      ( "identical rename is a structural no-op",
        [ Delta.Set_hostnames { router = r0.Router.id; hostnames = r0.Router.hostnames } ],
        [] );
      ( "identical rtts are a structural no-op",
        [ Delta.Set_rtts { router = r0.Router.id; ping = r0.Router.ping_rtts;
                           trace = r0.Router.trace_rtts } ],
        [] );
      ( "structurally equal upsert is a no-op",
        [ Delta.Upsert r0 ],
        [] );
    ]
  in
  List.iter
    (fun (name, events, expected) ->
      let _, dirty = apply_ok ds events in
      Alcotest.(check (list string)) name expected dirty)
    cases

let test_unknown_router () =
  let ds, routers, _ = Helpers.iata_fixture () in
  let r0 = List.hd routers in
  match
    Delta.apply ds
      [
        Delta.Add_hostname { router = r0.Router.id; hostname = "x.example.net" };
        Delta.Remove 77777;
      ]
  with
  | Ok _ -> Alcotest.fail "unknown router accepted"
  | Error (Delta.Unknown_router { event; id }) ->
      Alcotest.(check int) "offending event index" 1 event;
      Alcotest.(check int) "offending id" 77777 id;
      Alcotest.(check bool) "error text names the id" true
        (let s = Delta.error_to_string (Delta.Unknown_router { event; id }) in
         String.length s > 0)

let test_corpus_order_preserved () =
  let ds, routers, _ = Helpers.iata_fixture () in
  let ids = List.map (fun (r : Router.t) -> r.Router.id) routers in
  let mid = List.nth ids (List.length ids / 2) in
  let r0 = List.hd routers in
  let fresh =
    Router.make 9001 ~hostnames:[ "a.cr1.lhr1.fresh.net" ]
      ~ping_rtts:r0.Router.ping_rtts
  in
  let ds', _ =
    apply_ok ds
      [
        Delta.Remove mid;
        Delta.Upsert fresh;
        Delta.Set_hostnames { router = r0.Router.id; hostnames = [ "b.cr1.lhr1.example.net" ] };
      ]
  in
  let ids' =
    Array.to_list (Array.map (fun (r : Router.t) -> r.Router.id) ds'.Dataset.routers)
  in
  let expected = List.filter (fun i -> i <> mid) ids @ [ 9001 ] in
  Alcotest.(check (list int))
    "removals filter in place, upserts replace in place, new routers append"
    expected ids'

let test_events_between_roundtrip () =
  let ds, routers, _ = Helpers.iata_fixture () in
  let r0 = List.hd routers and r1 = List.nth routers 1 and r2 = List.nth routers 2 in
  let events =
    [
      Delta.Remove r1.Router.id;
      Delta.Set_hostnames { router = r0.Router.id; hostnames = [ "re.cr1.lhr1.example.net" ] };
      Delta.Set_rtts
        { router = r2.Router.id;
          ping = List.map (fun (v, ms) -> (v, ms +. 0.25)) r2.Router.ping_rtts;
          trace = r2.Router.trace_rtts };
      Delta.Upsert (Router.make 9001 ~hostnames:[ "new.cr1.fra1.example.net" ]
                      ~ping_rtts:r0.Router.ping_rtts);
    ]
  in
  let ds', _ = apply_ok ds events in
  let replayed = Delta.events_between ds ds' in
  (* the inferred stream is minimal: one event per touched router *)
  Alcotest.(check int) "minimal stream" 4 (List.length replayed);
  let ds'', _ = apply_ok ds replayed in
  Alcotest.(check bool) "apply (events_between a b) a reproduces b exactly" true
    (ds' = ds'');
  Alcotest.(check (list Alcotest.string)) "no-op stream between equal corpora"
    [] (List.map (fun _ -> "event") (Delta.events_between ds ds))

let test_wire_rejects_malformed () =
  let expect name input =
    match Delta.events_of_string input with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error msg ->
        Alcotest.(check bool)
          (name ^ ": error names an event or the parse") true
          (String.length msg > 0)
  in
  expect "not json" "nope";
  expect "not a list" "{}";
  expect "unknown op" {|[{"op":"bogus"}]|};
  expect "missing field" {|[{"op":"remove"}]|};
  expect "mistyped field" {|[{"op":"add_hostname","router":"x","hostname":"h"}]|};
  expect "mistyped rtts" {|[{"op":"set_rtts","router":1,"ping":[[1,"fast"]],"trace":[]}]|};
  (* the index in the message points at the offending event *)
  match
    Delta.events_of_string {|[{"op":"remove","id":1},{"op":"bogus"}]|}
  with
  | Ok _ -> Alcotest.fail "second malformed event accepted"
  | Error msg ->
      Alcotest.(check bool) "error names event 1" true
        (let needle = "event 1" in
         let rec contains i =
           i + String.length needle <= String.length msg
           && (String.sub msg i (String.length needle) = needle || contains (i + 1))
         in
         contains 0)

(* --- relearn stats and counters --- *)

let test_relearn_stats_and_counters () =
  let _ds, _db, prior = Lazy.force fixture in
  let r0 = prior.Pipeline.dataset.Dataset.routers.(0) in
  let suffix =
    match Hoiho_psl.Psl.registered_suffix (List.hd r0.Router.hostnames) with
    | Some s -> s
    | None -> Alcotest.fail "fixture router 0 has no registered suffix"
  in
  let events =
    [ Delta.Add_hostname
        { router = r0.Router.id; hostname = "probe0.cr1." ^ suffix } ]
  in
  Obs.reset ();
  let p', stats = ok_or_fail (Delta.relearn ~jobs:1 ~prior events) in
  let n_groups = List.length prior.Pipeline.results in
  Alcotest.(check int) "events counted" 1 stats.Delta.events;
  Alcotest.(check (list string)) "dirty set" [ suffix ] stats.Delta.dirty;
  Alcotest.(check int) "one group relearned" 1 stats.Delta.groups_relearned;
  Alcotest.(check int) "the rest reused" (n_groups - 1) stats.Delta.groups_reused;
  Alcotest.(check int) "result count unchanged" n_groups
    (List.length p'.Pipeline.results);
  let snap = Obs.snapshot () in
  let counter name =
    match Obs.find_counter snap name with
    | Some v -> v
    | None -> Alcotest.failf "counter %s not registered" name
  in
  Alcotest.(check int) "relearn.events" 1 (counter "relearn.events");
  Alcotest.(check int) "relearn.dirty_suffixes" 1 (counter "relearn.dirty_suffixes");
  Alcotest.(check int) "relearn.groups_relearned" 1 (counter "relearn.groups_relearned");
  Alcotest.(check int) "relearn.groups_reused" (n_groups - 1)
    (counter "relearn.groups_reused")

let test_relearn_model_matches_batch () =
  let _ds, db, prior = Lazy.force fixture in
  let model = Learned_io.of_pipeline prior in
  let events = gen_stream 7 prior.Pipeline.dataset in
  let model', corpus', stats =
    ok_or_fail
      (Delta.relearn_model ~jobs:1 ~model ~corpus:prior.Pipeline.dataset events)
  in
  Alcotest.(check bool) "something was dirty" true (stats.Delta.dirty <> []);
  let batch = Learned_io.of_pipeline (Pipeline.run ~db ~jobs:1 corpus') in
  Alcotest.(check string) "snapshot-level incremental ≡ batch"
    (Learned_io.encode (normalize batch))
    (Learned_io.encode (normalize model'))

(* --- satellite 4: negative-cache invalidation on incremental swap --- *)

let test_serve_negative_cache_invalidation () =
  (* epoch 1: only example.net exists; epoch 2 brings newcorp.net *)
  let ds1, _, _ = Helpers.iata_fixture () in
  let ds_new, new_routers, _ =
    Helpers.suffix_fixture ~suffix:"newcorp.net"
      [
        (Helpers.city "london" "gb", "lhr", 3);
        (Helpers.city "frankfurt" "de", "fra", 3);
        (Helpers.city_st "seattle" "us" "wa", "sea", 3);
        (Helpers.city_st "chicago" "us" "il", "ord", 3);
      ]
  in
  ignore ds_new;
  let events =
    List.map
      (fun (r : Router.t) ->
        Delta.Upsert
          (Router.make (r.Router.id + 1000) ~hostnames:r.Router.hostnames
             ~ping_rtts:r.Router.ping_rtts ~trace_rtts:r.Router.trace_rtts
             ?truth:r.Router.truth))
      new_routers
  in
  let p1 = Pipeline.run ~jobs:1 ds1 in
  let m1 = Learned_io.of_pipeline p1 in
  let known =
    (List.hd (List.filter (fun (r : Router.t) -> r.Router.hostnames <> [])
                (Array.to_list ds1.Dataset.routers))).Router.hostnames
    |> List.hd
  in
  let newcorp_host = List.hd (List.hd new_routers).Router.hostnames in
  let t1 = Serve.create m1 in
  (* prime the cache: the epoch-2 name is cached as a miss *)
  Alcotest.(check bool) "epoch-2 hostname unknown under epoch-1 model" true
    (Serve.geolocate t1 newcorp_host = None);
  let known_answer = Serve.geolocate t1 known in
  Alcotest.(check bool) "epoch-1 hostname answers" true (known_answer <> None);
  let m2, _corpus2, stats =
    ok_or_fail (Delta.relearn_model ~jobs:1 ~model:m1 ~corpus:ds1 events)
  in
  Alcotest.(check bool) "newcorp.net is dirty" true
    (List.mem "newcorp.net" stats.Delta.dirty);
  Obs.reset ();
  let t2 = Serve.rebuild ~dirty:stats.Delta.dirty t1 m2 in
  Alcotest.(check bool) "stale negative entry evicted" true
    (match Obs.find_counter (Obs.snapshot ()) "serve.cache_invalidated" with
    | Some n -> n >= 1
    | None -> false);
  (* the regression: without invalidation this served the cached None *)
  let served = Serve.geolocate t2 newcorp_host in
  Alcotest.(check bool) "epoch-2 hostname now answers through the cache" true
    (served <> None && served = Serve.geolocate_uncached t2 newcorp_host);
  Alcotest.(check bool) "clean suffix still answers identically" true
    (Serve.geolocate t2 known = known_answer)

let suites =
  [
    ( "delta",
      [
        Helpers.tc "conservative dirty sets" test_dirty_sets;
        Helpers.tc "unknown router is a typed error" test_unknown_router;
        Helpers.tc "corpus order is preserved" test_corpus_order_preserved;
        Helpers.tc "events_between round-trips" test_events_between_roundtrip;
        Helpers.tc "wire rejects malformed input" test_wire_rejects_malformed;
        Helpers.tc "relearn stats and counters" test_relearn_stats_and_counters;
        Helpers.tc "relearn_model matches batch" test_relearn_model_matches_batch;
        Helpers.tc "negative cache invalidated on incremental swap"
          test_serve_negative_cache_invalidation;
        qcheck_equivalence;
      ] );
  ]
