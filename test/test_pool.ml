module Pool = Hoiho_util.Pool

let tc = Helpers.tc

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_map_preserves_order () =
  with_pool 4 @@ fun pool ->
  let input = List.init 1000 Fun.id in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) input)
    (Pool.parallel_map pool (fun x -> x * x) input)

let test_map_matches_sequential () =
  let input = List.init 257 (fun i -> Printf.sprintf "host%d.example.net" i) in
  let f s = String.uppercase_ascii s ^ "!" in
  let seq = with_pool 1 (fun p -> Pool.parallel_map p f input) in
  let par = with_pool 4 (fun p -> Pool.parallel_map p f input) in
  Alcotest.(check (list string)) "jobs=1 and jobs=4 agree" seq par

let test_map_array () =
  with_pool 3 @@ fun pool ->
  let input = Array.init 100 Fun.id in
  Alcotest.(check (array int))
    "array map in order"
    (Array.map (fun x -> x + 1) input)
    (Pool.parallel_map_array pool (fun x -> x + 1) input)

let test_empty_and_singleton () =
  with_pool 4 @@ fun pool ->
  Alcotest.(check (list int)) "empty" [] (Pool.parallel_map pool Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Pool.parallel_map pool (fun x -> x + 1) [ 6 ])

let test_exception_propagates () =
  with_pool 4 @@ fun pool ->
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.parallel_map pool
           (fun x -> if x = 57 then failwith "boom" else x)
           (List.init 200 Fun.id)));
  (* the pool survives a failed batch *)
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 3 ]
    (Pool.parallel_map pool (fun x -> x + 1) [ 1; 2 ])

let test_pool_reuse () =
  with_pool 4 @@ fun pool ->
  for round = 1 to 5 do
    let input = List.init 100 (fun i -> (round * 1000) + i) in
    Alcotest.(check (list int))
      (Printf.sprintf "batch %d" round)
      (List.map (fun x -> x * 2) input)
      (Pool.parallel_map pool (fun x -> x * 2) input)
  done

let test_shared_pool_is_shared () =
  Alcotest.(check bool) "Pool.get returns the same pool per size" true
    (Pool.get 2 == Pool.get 2);
  Alcotest.(check int) "requested size" 2 (Pool.jobs (Pool.get 2))

let test_jobs1_fallback () =
  (* jobs=1 must behave as a plain sequential map/iter, including
     left-to-right evaluation order *)
  with_pool 1 @@ fun pool ->
  let order = ref [] in
  let out =
    Pool.parallel_map pool
      (fun x ->
        order := x :: !order;
        x * 3)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "results" [ 3; 6; 9; 12 ] out;
  Alcotest.(check (list int)) "applied left to right" [ 1; 2; 3; 4 ]
    (List.rev !order);
  let seen = ref [] in
  Pool.parallel_iter pool (fun x -> seen := x :: !seen) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "iter in order" [ 1; 2; 3 ] (List.rev !seen)

let test_nested_map () =
  (* a task submitting to the pool it runs on must not deadlock: the
     submitter helps drain the queue while it waits *)
  with_pool 3 @@ fun pool ->
  let out =
    Pool.parallel_map pool
      (fun i -> Pool.parallel_map pool (fun j -> (i * 10) + j) [ 0; 1; 2 ])
      (List.init 20 Fun.id)
  in
  let expected =
    List.init 20 (fun i -> List.map (fun j -> (i * 10) + j) [ 0; 1; 2 ])
  in
  Alcotest.(check (list (list int))) "nested results" expected out

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* project a map_results output into a comparable shape *)
let verdicts results =
  List.map
    (function
      | Ok v -> Printf.sprintf "ok:%d" v
      | Error (Pool.Exn (e, _)) -> "exn:" ^ Printexc.to_string e
      | Error Pool.Timed_out -> "timeout")
    results

let test_map_results_captures () =
  (* one bad item must not abort the batch: every other item completes
     and the failure is reported in place, in input order *)
  with_pool 4 @@ fun pool ->
  let f x = if x mod 10 = 3 then failwith "bad" else x * 2 in
  let results = Pool.map_results pool f (List.init 40 Fun.id) in
  Alcotest.(check int) "every item has a verdict" 40 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          Alcotest.(check bool) "clean items succeed" true (i mod 10 <> 3 && v = i * 2)
      | Error (Pool.Exn (Failure m, _)) ->
          Alcotest.(check bool) "failures land on the bad items" true
            (i mod 10 = 3 && m = "bad")
      | Error _ -> Alcotest.fail "unexpected verdict")
    results;
  (* the pool survives and the captured error re-raises faithfully *)
  Alcotest.check_raises "raise_job_error rethrows" (Failure "bad") (fun () ->
      List.iter (function Error e -> Pool.raise_job_error e | Ok _ -> ()) results)

let test_map_results_jobs_agnostic () =
  (* the verdict list — including which items failed and with what —
     is identical at jobs=1 and jobs=4 *)
  let input = List.init 100 Fun.id in
  let f x = if x mod 7 = 0 then invalid_arg (string_of_int x) else x + 1 in
  let seq = with_pool 1 (fun p -> verdicts (Pool.map_results p f input)) in
  let par = with_pool 4 (fun p -> verdicts (Pool.map_results p f input)) in
  Alcotest.(check (list string)) "verdicts identical across jobs" seq par

let spin_ms ms =
  let t0 = Hoiho_obs.Obs.now_ms () in
  while Hoiho_obs.Obs.now_ms () -. t0 < ms do
    ignore (Sys.opaque_identity 0)
  done

let test_map_results_timeout () =
  (* the deadline is cooperative: items already running finish, items
     not yet started once it passes are skipped as Timed_out. With 2
     lanes, 8 jobs of ~30 ms and a 15 ms budget, the first wave starts
     in time and the tail cannot. *)
  with_pool 2 @@ fun pool ->
  let results =
    Pool.map_results pool ~timeout_ms:15.0
      (fun x ->
        spin_ms 30.0;
        x)
      (List.init 8 Fun.id)
  in
  let ok = List.length (List.filter Result.is_ok results) in
  let timed_out =
    List.length (List.filter (function Error Pool.Timed_out -> true | _ -> false) results)
  in
  Alcotest.(check int) "every job has a verdict" 8 (ok + timed_out);
  Alcotest.(check bool) "work admitted before the deadline" true (ok >= 1);
  Alcotest.(check bool) "tail timed out" true (timed_out >= 1);
  Alcotest.check_raises "timeout rethrows as Job_timeout" Pool.Job_timeout (fun () ->
      List.iter (function Error e -> Pool.raise_job_error e | Ok _ -> ()) results)

let test_parallel_for_covers () =
  (* every index runs exactly once, at any chunking *)
  with_pool 4 @@ fun pool ->
  List.iter
    (fun chunk ->
      let n = 257 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for pool ?chunk n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i a ->
          Alcotest.(check int)
            (Printf.sprintf "index %d ran once (chunk=%s)" i
               (match chunk with Some c -> string_of_int c | None -> "auto"))
            1 (Atomic.get a))
        hits)
    [ None; Some 1; Some 7; Some 1000 ]

let test_parallel_for_jobs1_ascending () =
  (* the sequential fallback is a plain ascending for loop *)
  with_pool 1 @@ fun pool ->
  let seen = ref [] in
  Pool.parallel_for pool 10 (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "ascending" (List.init 10 Fun.id) (List.rev !seen)

let test_chunk_never_changes_results () =
  (* the documented contract: [chunk] is a scheduling knob only *)
  with_pool 4 @@ fun pool ->
  let input = List.init 300 Fun.id in
  let expect = List.map (fun x -> x * x) input in
  List.iter
    (fun chunk ->
      Alcotest.(check (list int))
        "map result independent of chunk" expect
        (Pool.parallel_map pool ?chunk (fun x -> x * x) input))
    [ None; Some 1; Some 3; Some 512 ]

let test_submit_await () =
  (* thunks write to disjoint slots; await is the completion barrier *)
  with_pool 4 @@ fun pool ->
  let n = 64 in
  let out = Array.make n (-1) in
  let batch =
    Pool.submit pool (Array.init n (fun i () -> out.(i) <- i * 10))
  in
  Pool.await pool batch;
  Alcotest.(check (array int))
    "all thunks completed"
    (Array.init n (fun i -> i * 10))
    out;
  (* two in-flight batches settle independently *)
  let a = Array.make 8 0 and b = Array.make 8 0 in
  let ba = Pool.submit pool (Array.init 8 (fun i () -> a.(i) <- 1)) in
  let bb = Pool.submit pool (Array.init 8 (fun i () -> b.(i) <- 2)) in
  Pool.await pool bb;
  Pool.await pool ba;
  Alcotest.(check int) "batch a done" 8 (Array.fold_left ( + ) 0 a);
  Alcotest.(check int) "batch b done" 16 (Array.fold_left ( + ) 0 b)

let test_await_reraises () =
  with_pool 4 @@ fun pool ->
  let batch =
    Pool.submit pool
      (Array.init 16 (fun i () -> if i = 11 then failwith "thunk boom"))
  in
  Alcotest.check_raises "await re-raises the thunk's exception"
    (Failure "thunk boom")
    (fun () -> Pool.await pool batch);
  (* the pool survives the failed batch *)
  Alcotest.(check (list int)) "pool usable after failure" [ 4; 5 ]
    (Pool.parallel_map pool (fun x -> x + 1) [ 3; 4 ])

let test_submit_await_nested () =
  (* awaiting from inside a pool task must help drain, not deadlock *)
  with_pool 2 @@ fun pool ->
  let out =
    Pool.parallel_map pool ~chunk:1
      (fun i ->
        let acc = Array.make 4 0 in
        let batch =
          Pool.submit pool (Array.init 4 (fun j () -> acc.(j) <- (i * 10) + j))
        in
        Pool.await pool batch;
        Array.fold_left ( + ) 0 acc)
      (List.init 12 Fun.id)
  in
  Alcotest.(check (list int))
    "nested submit/await results"
    (List.init 12 (fun i -> (i * 40) + 6))
    out

let test_map_results_no_timeout_by_default () =
  with_pool 2 @@ fun pool ->
  let results = Pool.map_results pool (fun x -> x * x) (List.init 50 Fun.id) in
  Alcotest.(check (list string))
    "no deadline, all Ok, in order"
    (List.init 50 (fun i -> Printf.sprintf "ok:%d" (i * i)))
    (verdicts results)

let suites =
  [
    ( "util.pool",
      [
        tc "map preserves order" test_map_preserves_order;
        tc "jobs=1 equals jobs=4" test_map_matches_sequential;
        tc "array map" test_map_array;
        tc "empty and singleton" test_empty_and_singleton;
        tc "exception propagates" test_exception_propagates;
        tc "pool reuse across batches" test_pool_reuse;
        tc "shared pool" test_shared_pool_is_shared;
        tc "jobs=1 sequential fallback" test_jobs1_fallback;
        tc "nested map no deadlock" test_nested_map;
        tc "default jobs positive" test_default_jobs_positive;
        tc "parallel_for covers every index" test_parallel_for_covers;
        tc "parallel_for jobs=1 ascending" test_parallel_for_jobs1_ascending;
        tc "chunk never changes results" test_chunk_never_changes_results;
        tc "submit and await" test_submit_await;
        tc "await re-raises" test_await_reraises;
        tc "nested submit/await no deadlock" test_submit_await_nested;
        tc "map_results captures per job" test_map_results_captures;
        tc "map_results jobs-agnostic verdicts" test_map_results_jobs_agnostic;
        tc "map_results cooperative timeout" test_map_results_timeout;
        tc "map_results no default deadline" test_map_results_no_timeout_by_default;
      ] );
  ]
