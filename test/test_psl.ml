module Psl = Hoiho_psl.Psl

let tc = Helpers.tc

let test_is_public_suffix () =
  Alcotest.(check bool) "net" true (Psl.is_public_suffix "net");
  Alcotest.(check bool) "net.au" true (Psl.is_public_suffix "net.au");
  Alcotest.(check bool) "co.uk" true (Psl.is_public_suffix "co.uk");
  Alcotest.(check bool) "he.net" false (Psl.is_public_suffix "he.net");
  Alcotest.(check bool) "case" true (Psl.is_public_suffix "NET")

let check_suffix hostname expected () =
  Alcotest.(check (option string)) hostname expected (Psl.registered_suffix hostname)

let test_simple = check_suffix "core1.ash1.he.net" (Some "he.net")
let test_two_label_tld = check_suffix "r1.ccnw.net.au" (Some "ccnw.net.au")
let test_couk = check_suffix "gw.example.co.uk" (Some "example.co.uk")
let test_deep = check_suffix "a.b.c.d.zayo.com" (Some "zayo.com")
let test_exact_registration = check_suffix "he.net" (Some "he.net")
let test_bare_tld = check_suffix "net" None
let test_bare_etld2 = check_suffix "net.au" None
let test_bare_multilabel = check_suffix "com.au" None
let test_trailing_dot = check_suffix "he.net." (Some "he.net")
let test_single_label = check_suffix "localhost" None
let test_unknown_tld = check_suffix "router.example.zzz" None
let test_uppercase = check_suffix "CORE1.ASH1.HE.NET" (Some "he.net")

let test_prefix_of () =
  Alcotest.(check (option string)) "prefix" (Some "core1.ash1")
    (Psl.prefix_of "core1.ash1.he.net");
  Alcotest.(check (option string)) "no prefix" None (Psl.prefix_of "he.net");
  Alcotest.(check (option string)) "unknown" None (Psl.prefix_of "x.zzz")

let test_longest_suffix_wins () =
  (* net.au must be preferred over au *)
  Alcotest.(check (option string)) "longest" (Some "foo.net.au")
    (Psl.registered_suffix "bar.foo.net.au")

(* table-driven edge cases for dirty PTR data: uppercase, trailing root
   dot, and embedded whitespace — alone and combined — must normalize
   to the same answer as the clean form, and malformed names must
   decline rather than raise (companions to the PR 2 cases above) *)
let edge_cases =
  [
    ("CORE1.ASH1.HE.NET.", Some "he.net");
    (" core1.ash1.he.net", Some "he.net");
    ("core1.ash1.he.net ", Some "he.net");
    ("core1.ash1 .he.net", Some "he.net");
    ("CORE1. ASH1.He.Net.", Some "he.net");
    ("\tCORE1.ASH1.HE.NET.\t", Some "he.net");
    ("Core 1.Ash 1.HE.NET.", Some "he.net");
    ("HE.NET. ", Some "he.net");  (* normalizes to the bare registration *)
    ("  \t ", None);
    ("...", None);
    ("core1..he.net", Some "he.net");
    (".he.net.", Some "he.net");
    ("r1.CCNW.Net.AU. ", Some "ccnw.net.au");
  ]

let test_edge_cases () =
  List.iter
    (fun (hostname, expected) ->
      Alcotest.(check (option string))
        (String.escaped hostname) expected
        (Psl.registered_suffix hostname))
    edge_cases

let test_prefix_of_normalizes () =
  Alcotest.(check (option string)) "uppercase + dot + whitespace"
    (Some "core1.ash1")
    (Psl.prefix_of " CORE1.ASH1.He.Net. ")

let suites =
  [
    ( "psl",
      [
        tc "is_public_suffix" test_is_public_suffix;
        tc "simple" test_simple;
        tc "two-label tld" test_two_label_tld;
        tc "co.uk" test_couk;
        tc "deep" test_deep;
        tc "exact registration" test_exact_registration;
        tc "bare tld" test_bare_tld;
        tc "bare 2-label tld" test_bare_etld2;
        tc "bare multi-label suffix" test_bare_multilabel;
        tc "trailing dot" test_trailing_dot;
        tc "single label" test_single_label;
        tc "unknown tld" test_unknown_tld;
        tc "uppercase" test_uppercase;
        tc "prefix_of" test_prefix_of;
        tc "longest suffix wins" test_longest_suffix_wins;
        tc "dirty-hostname edge table" test_edge_cases;
        tc "prefix_of normalizes" test_prefix_of_normalizes;
      ] );
  ]
