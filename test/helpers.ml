(* Shared fixtures for the test suites: a miniature world, hand-built
   datasets with exactly-controlled RTTs, and small conveniences. *)

module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Vp = Hoiho_itdk.Vp
module Dataset = Hoiho_itdk.Dataset

let db = Db.default ()

let city name cc =
  match
    List.filter
      (fun c -> c.City.cc = cc)
      (Db.lookup_city_name db (String.concat "" (String.split_on_char ' ' name)))
  with
  | c :: _ -> c
  | [] -> Alcotest.failf "fixture city %s/%s missing from Db.default" name cc

let city_st name cc st =
  match
    List.filter
      (fun c -> c.City.cc = cc && c.City.state = Some st)
      (Db.lookup_city_name db (String.concat "" (String.split_on_char ' ' name)))
  with
  | c :: _ -> c
  | [] -> Alcotest.failf "fixture city %s/%s/%s missing" name cc st

(* a VP colocated with a city *)
let vp id c =
  Vp.make ~id
    ~name:(Printf.sprintf "vp%d-%s" id c.City.cc)
    ~city_key:(City.key c) ~coord:c.City.coord

(* a realistic sound RTT: best-case from the VP to the router's true
   location, inflated *)
let rtt_from (v : Vp.t) (loc : Coord.t) =
  (Lightrtt.min_rtt_ms v.Vp.coord loc *. 1.3) +. 1.0

let router ~id ~at ~vps ?(hostnames = []) () =
  let ping_rtts =
    List.map (fun (v : Vp.t) -> (v.Vp.id, rtt_from v at.City.coord)) vps
  in
  Router.make id ~hostnames ~ping_rtts
    ~truth:
      {
        Router.city_key = City.key at;
        coord = at.City.coord;
        intended_hint = None;
        stale = false;
        hostname_hints = List.map (fun h -> (h, None)) hostnames;
      }

let dataset ?(label = "test") ?(links = []) routers vps =
  Dataset.make ~label
    ~links:(Array.of_list links)
    ~routers:(Array.of_list routers)
    ~vps:(Array.of_list vps) ()

(* the standard small VP constellation used across suites: one VP near
   each region we place routers in *)
let std_vps () =
  [
    vp 0 (city_st "washington" "us" "dc");
    vp 1 (city_st "chicago" "us" "il");
    vp 2 (city_st "los angeles" "us" "ca");
    vp 3 (city "london" "gb");
    vp 4 (city "frankfurt" "de");
    vp 5 (city "tokyo" "jp");
    vp 6 (city "sydney" "au");
    vp 7 (city "sao paulo" "br");
  ]

let check_city = Alcotest.testable City.pp City.same_place

let tc name f = Alcotest.test_case name `Quick f

(* A controlled training group under "example.net": [sites] is a list of
   (city, code, n_routers); each router gets [per_router] hostnames of
   the shape "<iface>.cr<k>.<code><n>.example.net". *)
let suffix_fixture ?(suffix = "example.net") ?(per_router = 2) sites =
  let vps = std_vps () in
  let id = ref 0 in
  let iface = [| "ae1"; "xe-0-0"; "ge-1-2"; "et-3-0"; "so-1-1-0" |] in
  let routers =
    List.concat_map
      (fun (c, code, n_routers) ->
        List.init n_routers (fun r ->
            let hostnames =
              List.init per_router (fun h ->
                  Printf.sprintf "%s.cr%d.%s%d.%s"
                    iface.((r + h) mod Array.length iface)
                    ((r mod 3) + 1) code (r + 1) suffix)
            in
            let rid = !id in
            incr id;
            router ~id:rid ~at:c ~vps ~hostnames ()))
      sites
  in
  (dataset routers vps, routers, vps)

(* standard multi-city IATA fixture: enough distinct real codes for a
   confident NC, plus optional extra (city, code, n_routers) sites *)
let iata_fixture ?(extra = []) () =
  suffix_fixture
    ([
       (city "london" "gb", "lhr", 3);
       (city "frankfurt" "de", "fra", 3);
       (city_st "seattle" "us" "wa", "sea", 3);
       (city_st "chicago" "us" "il", "ord", 3);
     ]
    @ extra)

(* substring test, for asserting over rendered reports *)
let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0
