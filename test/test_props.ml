(* Property-based tests (qcheck) on the core data structures and
   invariants, registered as alcotest cases. *)

module Ast = Hoiho_rx.Ast
module Parse = Hoiho_rx.Parse
module Engine = Hoiho_rx.Engine
module Strutil = Hoiho_util.Strutil
module Prng = Hoiho_util.Prng
module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- generators --- *)

let gen_lower = QCheck.Gen.char_range 'a' 'z'

let gen_token =
  QCheck.Gen.(map (fun l -> String.concat "" (List.map (String.make 1) l))
                (list_size (int_range 1 8) gen_lower))

let gen_hostname_string =
  QCheck.Gen.(
    map
      (fun (labels, digits) ->
        String.concat "."
          (List.map2
             (fun l d -> if d then l ^ "1" else l)
             labels
             (List.filteri (fun i _ -> i < List.length labels) digits)))
      (pair
         (list_size (int_range 1 5) gen_token)
         (list_size (int_range 5 5) bool)))

(* random regex ASTs of bounded size *)
let gen_cls =
  QCheck.Gen.oneofl
    [ Ast.lower; Ast.digit; Ast.not_char '.'; Ast.not_char '-';
      { Ast.neg = false; ranges = [ ('a', 'z'); ('0', '9') ] } ]

let gen_atom =
  QCheck.Gen.(
    oneof
      [
        map (fun c -> Ast.Lit c) gen_lower;
        return (Ast.Lit '.');
        map (fun c -> Ast.Cls c) gen_cls;
        return Ast.Any;
      ])

let gen_node =
  QCheck.Gen.(
    gen_atom >>= fun atom ->
    oneof
      [
        return atom;
        map
          (fun (min, extra) -> Ast.Rep (atom, min, Some (min + extra), Ast.Greedy))
          (pair (int_range 0 3) (int_range 0 3));
        map (fun min -> Ast.Rep (atom, min, None, Ast.Greedy)) (int_range 0 2);
        return (Ast.Rep (atom, 1, None, Ast.Possessive));
      ])

let gen_ast =
  QCheck.Gen.(
    list_size (int_range 1 6) gen_node >>= fun body ->
    oneof
      [
        return body;
        return ((Ast.Bol :: body) @ [ Ast.Eol ]);
        map (fun inner -> [ Ast.Grp inner ] @ body) (list_size (int_range 1 3) gen_node);
      ])

let arb_ast = QCheck.make ~print:Ast.to_string gen_ast

(* capture-heavy variant: repetitions (possessive included) wrapped
   around capture groups, and nested groups — the shapes where capture
   bookkeeping, not just the match decision, can go wrong *)
let gen_caps_node =
  QCheck.Gen.(
    gen_atom >>= fun atom ->
    oneof
      [
        return atom;
        map (fun inner -> Ast.Grp inner) (list_size (int_range 1 2) gen_node);
        return (Ast.Rep (Ast.Grp [ atom ], 1, None, Ast.Possessive));
        map
          (fun (min, extra) ->
            Ast.Rep (Ast.Grp [ atom ], min, Some (min + extra), Ast.Possessive))
          (pair (int_range 0 2) (int_range 1 3));
        map
          (fun (min, extra) ->
            Ast.Rep (Ast.Grp [ atom ], min, Some (min + extra), Ast.Greedy))
          (pair (int_range 0 2) (int_range 1 3));
        map (fun inner -> Ast.Grp [ Ast.Grp inner ]) (list_size (int_range 1 2) gen_node);
      ])

let gen_ast_caps =
  QCheck.Gen.(
    list_size (int_range 1 4) gen_caps_node >>= fun body ->
    oneofl [ body; (Ast.Bol :: body) @ [ Ast.Eol ] ])

(* greedy-only variant for differential testing against the NFA engine,
   which cannot express possessive quantifiers *)
let rec degreed_node = function
  | Ast.Rep (n, min, max, _) -> Ast.Rep (degreed_node n, min, max, Ast.Greedy)
  | Ast.Grp inner -> Ast.Grp (List.map degreed_node inner)
  | Ast.Alt alts -> Ast.Alt (List.map (List.map degreed_node) alts)
  | atom -> atom

let gen_greedy_ast = QCheck.Gen.map (List.map degreed_node) gen_ast

let gen_input =
  QCheck.Gen.(
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 0 12)
         (oneofl [ 'a'; 'b'; 'c'; 'z'; '0'; '1'; '9'; '.'; '-' ])))

let arb_diff =
  QCheck.make
    ~print:(fun (ast, s) -> Printf.sprintf "%s on %S" (Ast.to_string ast) s)
    QCheck.Gen.(pair gen_greedy_ast gen_input)

(* --- rx properties --- *)

let prop_roundtrip ast =
  let printed = Ast.to_string ast in
  match Parse.parse printed with
  | Error msg -> QCheck.Test.fail_reportf "unparseable %S: %s" printed msg
  | Ok ast2 -> Ast.to_string ast2 = printed

let prop_literal_self_match token =
  (* an anchored literal matches exactly itself *)
  let ast = (Ast.Bol :: List.init (String.length token) (fun i -> Ast.Lit token.[i])) @ [ Ast.Eol ] in
  let t = Engine.compile ast in
  Engine.matches t token && not (Engine.matches t (token ^ "x"))

let prop_fixed_width_class k =
  let k = 1 + (abs k mod 6) in
  let t = Engine.compile [ Ast.Bol; Ast.Rep (Ast.Cls Ast.lower, k, Some k, Ast.Greedy); Ast.Eol ] in
  Engine.matches t (String.make k 'a')
  && (not (Engine.matches t (String.make (k + 1) 'a')))
  && not (Engine.matches t (String.make (max 0 (k - 1)) 'a'))

let prop_possessive_subset s =
  (* a possessive match implies the greedy variant also matches *)
  let poss =
    Engine.compile
      [ Ast.Bol; Ast.Rep (Ast.Cls Ast.lower, 1, None, Ast.Possessive); Ast.Eol ]
  in
  let greedy =
    Engine.compile [ Ast.Bol; Ast.Rep (Ast.Cls Ast.lower, 1, None, Ast.Greedy); Ast.Eol ]
  in
  (not (Engine.matches poss s)) || Engine.matches greedy s

(* the two engines must agree on match existence *)
let prop_engines_agree (ast, input) =
  let backtracker = Engine.compile ast in
  let nfa = Hoiho_rx.Nfavm.compile ast in
  let a = Engine.matches backtracker input in
  let b = Hoiho_rx.Nfavm.matches nfa input in
  if a = b then true
  else
    QCheck.Test.fail_reportf "engine=%b nfa=%b for %s on %S" a b
      (Ast.to_string ast) input

(* --- strutil properties --- *)

let prop_chunks_concat s =
  let chunks = Strutil.chunks_of_classes s in
  String.concat ""
    (List.map (function `Alpha x | `Digit x | `Other x -> x) chunks)
  = s

let prop_split_punct_alnum s =
  List.for_all (String.for_all Strutil.is_alnum) (Strutil.split_punct s)

let prop_subsequence_reflexive s = Strutil.is_subsequence s s

let prop_strip_digits_prefix s =
  let stripped = Strutil.strip_trailing_digits s in
  Strutil.has_prefix ~prefix:stripped s

(* --- prng properties --- *)

let prop_int_in_bounds (seed, bound) =
  let bound = 1 + abs bound mod 1000 in
  let rng = Prng.create seed in
  let v = Prng.int rng bound in
  v >= 0 && v < bound

let prop_same_seed_same_draws seed =
  let a = Prng.create seed and b = Prng.create seed in
  List.init 20 (fun _ -> Prng.bits64 a) = List.init 20 (fun _ -> Prng.bits64 b)

(* --- geo properties --- *)

let gen_coord =
  QCheck.Gen.(
    map2
      (fun lat lon -> Coord.make ~lat ~lon)
      (float_range (-89.0) 89.0)
      (float_range (-179.0) 179.0))

let arb_coord = QCheck.make ~print:(Format.asprintf "%a" Coord.pp) gen_coord

let prop_distance_symmetric (a, b) =
  abs_float (Coord.distance_km a b -. Coord.distance_km b a) < 1e-6

let prop_distance_bounds (a, b) =
  let d = Coord.distance_km a b in
  d >= 0.0 && d <= 20100.0

let prop_rtt_consistent_at_best_case (a, b) =
  Lightrtt.consistent ~vp:a ~candidate:b (Lightrtt.min_rtt_ms a b)

(* --- learn.abbrev properties --- *)

let prop_prefix_always_matches token =
  String.length token < 2
  ||
  let hint = String.sub token 0 (1 + (String.length token / 2)) in
  Hoiho.Learn.abbrev_matches ~hint ~name:token

let prop_first_char_anchor (hint, name) =
  (String.length hint = 0 || String.length name = 0)
  || hint.[0] = name.[0]
  || not (Hoiho.Learn.abbrev_matches ~hint ~name)

(* --- netsim invariants over random seeds --- *)

let small_config seed =
  {
    Hoiho_netsim.Generate.label = "prop";
    seed;
    n_geo_consistent = 2;
    n_geo_small = 1;
    n_geo_mixed = 1;
    n_multikind = 1;
    n_compound = 1;
    n_nogeo = 2;
    n_extra_towns = 30;
    n_spoofing_vps = 0;
    include_validation = false;
    n_vps = 12;
    hostname_fraction = 0.6;
    p_responsive_unnamed = 0.8;
  }

let prop_rtt_soundness seed =
  let ds, _ = Hoiho_netsim.Generate.generate (small_config seed) in
  let vp id = Hoiho_itdk.Dataset.vp ds id in
  Array.for_all
    (fun (r : Hoiho_itdk.Router.t) ->
      match r.Hoiho_itdk.Router.truth with
      | None -> true
      | Some t ->
          List.for_all
            (fun (vp_id, rtt) ->
              rtt +. 1e-6
              >= Lightrtt.min_rtt_ms (vp vp_id).Hoiho_itdk.Vp.coord
                   t.Hoiho_itdk.Router.coord)
            (r.Hoiho_itdk.Router.ping_rtts @ r.Hoiho_itdk.Router.trace_rtts))
    ds.Hoiho_itdk.Dataset.routers

let prop_io_roundtrip seed =
  let ds, _ = Hoiho_netsim.Generate.generate (small_config seed) in
  let text = Hoiho_itdk.Io.to_string ds in
  Hoiho_itdk.Io.to_string (Hoiho_itdk.Io.of_string text) = text

let small_int = QCheck.small_int
let string_arb = QCheck.string
let lower_token = QCheck.make ~print:Fun.id gen_token

(* --- never-raise under adversarial hostnames (DESIGN.md §8) ---

   PTR records are attacker- and typo-controlled input: any byte
   sequence must come back as a location or a miss, never an
   exception, with every capture in-bounds. *)

let gen_adversarial =
  QCheck.Gen.(
    let any_byte = map Char.chr (int_range 0 255) in
    map2
      (fun junk tail -> junk ^ tail)
      (string_size ~gen:any_byte (int_range 0 300))
      (* half the cases steer into the learned suffix so the regex
         path, not just the PSL bail-out, sees the junk *)
      (oneofl [ ""; ""; "."; ".."; ".example.net"; ".example.net."; ".EXAMPLE.NET" ]))

let adversarial = QCheck.make ~print:String.escaped gen_adversarial

let adversarial_pipeline =
  lazy
    (let ds, _, _ = Helpers.iata_fixture () in
     Hoiho.Pipeline.run ds)

let adversarial_regexes =
  lazy
    (List.map Engine.compile_exn
       [
         {|^.+\.([a-z]{3})\d+\.example\.net$|};
         {|^([a-z]+)-?\d*\.cr\d\.([a-z]{3})\d+\.example\.net$|};
         {|([a-z]{3})\d+|};
       ])

let prop_geolocate_never_raises h =
  let p = Lazy.force adversarial_pipeline in
  match Hoiho.Pipeline.geolocate p h with Some _ | None -> true

let prop_exec_never_raises h =
  List.for_all
    (fun re ->
      let filtered = Engine.exec re h in
      let caps_in_bounds =
        match filtered with
        | None -> true
        | Some caps ->
            Array.length caps = Engine.group_count re
            && Array.for_all
                 (function
                   | None -> true | Some s -> String.length s <= String.length h)
                 caps
      in
      caps_in_bounds && filtered = Engine.exec_unfiltered re h)
    (Lazy.force adversarial_regexes)

let suites =
  [
    ( "props.rx",
      [
        q "print/parse roundtrip" arb_ast prop_roundtrip;
        q "anchored literal self-match" lower_token prop_literal_self_match;
        q "fixed-width class" small_int prop_fixed_width_class;
        q "possessive implies greedy" lower_token prop_possessive_subset;
        q ~count:800 "backtracker and NFA agree" arb_diff prop_engines_agree;
      ] );
    ( "props.strutil",
      [
        q "chunks concat to input" string_arb prop_chunks_concat;
        q "split_punct yields alnum" string_arb prop_split_punct_alnum;
        q "subsequence reflexive" string_arb prop_subsequence_reflexive;
        q "strip digits is prefix" string_arb prop_strip_digits_prefix;
      ] );
    ( "props.prng",
      [
        q "int in bounds" QCheck.(pair small_int small_int) prop_int_in_bounds;
        q "same seed same draws" small_int prop_same_seed_same_draws;
      ] );
    ( "props.geo",
      [
        q "distance symmetric" (QCheck.pair arb_coord arb_coord) prop_distance_symmetric;
        q "distance bounds" (QCheck.pair arb_coord arb_coord) prop_distance_bounds;
        q "best case is consistent" (QCheck.pair arb_coord arb_coord)
          prop_rtt_consistent_at_best_case;
      ] );
    ( "props.learn",
      [
        q "prefix abbreviation matches" lower_token prop_prefix_always_matches;
        q "first char anchors" (QCheck.pair lower_token lower_token) prop_first_char_anchor;
      ] );
    ( "props.netsim",
      [
        q ~count:8 "rtt soundness" small_int prop_rtt_soundness;
        q ~count:8 "io roundtrip" small_int prop_io_roundtrip;
      ] );
    ( "props.adversarial",
      [
        q ~count:5000 "geolocate never raises" adversarial prop_geolocate_never_raises;
        q ~count:5000 "exec never raises, captures in-bounds" adversarial
          prop_exec_never_raises;
      ] );
  ]
