module Drop = Hoiho_baselines.Drop
module Hloc = Hoiho_baselines.Hloc
module Undns = Hoiho_baselines.Undns
module Router = Hoiho_itdk.Router

let tc = Helpers.tc
let db = Helpers.db

let fixture_ds () =
  let sites =
    [
      (Helpers.city "london" "gb", "lhr", 3);
      (Helpers.city "frankfurt" "de", "fra", 3);
      (Helpers.city_st "seattle" "us" "wa", "sea", 3);
    ]
  in
  let ds, routers, vps = Helpers.suffix_fixture sites in
  ignore vps;
  (ds, routers)

(* --- DRoP --- *)

let test_drop_learns_rule () =
  let ds, _ = fixture_ds () in
  let rules = Drop.learn db ds in
  match Drop.find_rule rules "example.net" with
  | Some rule ->
      Alcotest.(check int) "three labels" 3 rule.Drop.n_labels;
      Alcotest.(check int) "geo adjacent to suffix" 0 rule.Drop.pos_from_end;
      Alcotest.(check bool) "digit shape" true rule.Drop.digits_after
  | None -> Alcotest.fail "no rule learned"

let test_drop_infer () =
  let ds, _ = fixture_ds () in
  let rules = Drop.learn db ds in
  (match Drop.infer rules db "po1.cr9.lhr4.example.net" with
  | Some city -> Alcotest.(check string) "london" "london" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "should infer");
  (* shape rigidity: a 4-label hostname does not match the 3-label rule *)
  Alcotest.(check bool) "wrong shape" true
    (Drop.infer rules db "x.po1.cr9.lhr4.example.net" = None);
  (* digit rigidity: the rule was built from digit-suffixed geo labels *)
  Alcotest.(check bool) "missing digits" true
    (Drop.infer rules db "po1.cr9.lhr.example.net" = None)

let test_drop_dictionary_verbatim () =
  (* DRoP interprets "ash" as Nashua — no custom-hint learning *)
  let sites =
    [
      (Helpers.city "london" "gb", "lhr", 3);
      (Helpers.city "frankfurt" "de", "fra", 3);
      (Helpers.city_st "ashburn" "us" "va", "ash", 3);
    ]
  in
  let ds, _, _ = Helpers.suffix_fixture sites in
  let rules = Drop.learn db ds in
  match Drop.infer rules db "ae1.cr1.ash2.example.net" with
  | Some city -> Alcotest.(check string) "misread as nashua" "nashua" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "drop should still interpret via the dictionary"

let test_drop_staleness () =
  let ds, _ = fixture_ds () in
  let fresh = Drop.learn db ds in
  let stale = Drop.learn ~staleness:1.0 db ds in
  Alcotest.(check bool) "fresh has rules" true (Drop.rules fresh <> []);
  Alcotest.(check (list string)) "fully stale has none" []
    (List.map (fun (r : Drop.rule) -> r.Drop.suffix) (Drop.rules stale))

let test_drop_unknown_suffix () =
  let ds, _ = fixture_ds () in
  let rules = Drop.learn db ds in
  Alcotest.(check bool) "no rule, no inference" true
    (Drop.infer rules db "ae1.cr1.lhr1.other.org" = None)

(* --- HLOC --- *)

let test_hloc_basic () =
  let ds, routers = fixture_ds () in
  let r = List.hd routers in
  let h = List.hd r.Router.hostnames in
  match Hloc.infer db ds r h with
  | Some city -> Alcotest.(check string) "london" "london" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "hloc should infer for a pingable router"

let test_hloc_needs_ping () =
  let ds, _ = fixture_ds () in
  let vps = Helpers.std_vps () in
  let silent =
    Hoiho_itdk.Router.make 99 ~hostnames:[ "ae1.cr1.lhr1.example.net" ]
      ~trace_rtts:[ (0, 80.0) ]
  in
  ignore vps;
  Alcotest.(check bool) "no ping, no inference" true
    (Hloc.infer db ds silent "ae1.cr1.lhr1.example.net" = None)

let test_hloc_blocklist () =
  let ds, routers = fixture_ds () in
  let r = List.hd routers in
  (* "gig" is in HLOC's blocklist, so the only token is ignored *)
  Alcotest.(check bool) "blocklisted token ignored" true
    (Hloc.infer db ds r "gig.cr0x.example.net" = None);
  Alcotest.(check bool) "gig is in the published blocklist" true
    (List.mem "gig" Hloc.blocklist)

let test_hloc_confirmation_bias () =
  (* a custom code it cannot interpret ("ash" meaning Ashburn) resolves
     via the dictionary to Nashua; with only candidate-nearest VPs
     consulted, HLOC can accept geographically wrong hints that Hoiho's
     all-VP test rejects *)
  let sites = [ (Helpers.city_st "ashburn" "us" "va", "ash", 1) ] in
  let ds, routers, _ = Helpers.suffix_fixture sites in
  let r = List.hd routers in
  let h = List.hd r.Router.hostnames in
  match Hloc.infer db ds r h with
  | Some city ->
      (* whichever way the bias falls, it must not invent Ashburn: the
         dictionary has no "ash" -> Ashburn entry *)
      Alcotest.(check bool) "never the custom meaning" true
        (city.Hoiho_geodb.City.name <> "ashburn")
  | None -> ()

(* --- undns --- *)

let undns_table () =
  [
    ( "example.net",
      [ ("lhr", Helpers.city "london" "gb"); ("fra", Helpers.city "frankfurt" "de") ] );
  ]

let test_undns_full_coverage () =
  let u = Undns.make ~coverage:1.0 ~seed:1 (undns_table ()) in
  Alcotest.(check int) "two entries" 2 (Undns.n_entries u);
  (match Undns.infer u "ae1.cr1.lhr15.example.net" with
  | Some city -> Alcotest.(check string) "london" "london" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "should infer");
  Alcotest.(check bool) "unknown code" true
    (Undns.infer u "ae1.cr1.sea2.example.net" = None);
  Alcotest.(check bool) "unknown suffix" true
    (Undns.infer u "ae1.cr1.lhr15.other.org" = None)

let test_undns_zero_coverage () =
  let u = Undns.make ~coverage:0.0 ~seed:1 (undns_table ()) in
  Alcotest.(check int) "empty" 0 (Undns.n_entries u)

let test_undns_deterministic () =
  let n1 = Undns.n_entries (Undns.make ~coverage:0.5 ~seed:7 (undns_table ())) in
  let n2 = Undns.n_entries (Undns.make ~coverage:0.5 ~seed:7 (undns_table ())) in
  Alcotest.(check int) "same subset size" n1 n2

(* --- degraded input: all three baselines must skip, not misgeolocate,
   malformed hostnames (empty labels, missing suffix) --- *)

let test_drop_degraded_input () =
  let ds, _ = fixture_ds () in
  let rules = Drop.learn db ds in
  (* known-bug repro: "..lhr4" split into labels ["";"";"lhr4"] used to
     satisfy the learned 3-label rule and answer London for a name that
     is not a well-formed hostname at all *)
  Alcotest.(check bool) "empty labels skipped" true
    (Drop.infer rules db "..lhr4.example.net" = None);
  Alcotest.(check bool) "leading dot skipped" true
    (Drop.infer rules db ".cr9.lhr4.example.net" = None);
  Alcotest.(check bool) "missing suffix skipped" true
    (Drop.infer rules db "po1.cr9.lhr4" = None);
  (* and a clean hostname still infers after the guard *)
  Alcotest.(check bool) "clean input still works" true
    (Drop.infer rules db "po1.cr9.lhr4.example.net" <> None)

let test_hloc_degraded_input () =
  let ds, routers = fixture_ds () in
  let r = List.hd routers in
  (* known-bug repro: dropping the suffix of "lhr4..example.net" leaves
     prefix "lhr4.", whose tokens still contain "lhr" — keyword search
     used to misgeolocate the malformed name to London *)
  Alcotest.(check bool) "empty label skipped" true
    (Hloc.infer db ds r "lhr4..example.net" = None);
  Alcotest.(check bool) "missing suffix skipped" true
    (Hloc.infer db ds r "po1.cr9.lhr4" = None);
  Alcotest.(check bool) "bare suffix skipped" true
    (Hloc.infer db ds r "example.net" = None);
  Alcotest.(check bool) "clean input still works" true
    (Hloc.infer db ds r "po1.cr9.lhr4.example.net" <> None)

let test_undns_degraded_input () =
  let u = Undns.make ~coverage:1.0 ~seed:1 (undns_table ()) in
  (* known-bug repro: prefix "lhr." of "lhr..example.net" tokenizes to
     ["lhr"], which used to hit the codebook and answer London *)
  Alcotest.(check bool) "empty label skipped" true
    (Undns.infer u "lhr..example.net" = None);
  Alcotest.(check bool) "missing suffix skipped" true
    (Undns.infer u "ae1.cr1.lhr15" = None);
  Alcotest.(check bool) "bare suffix skipped" true
    (Undns.infer u "example.net" = None);
  Alcotest.(check bool) "clean input still works" true
    (Undns.infer u "ae1.cr1.lhr15.example.net" <> None)

let suites =
  [
    ( "baselines.drop",
      [
        tc "learns rule" test_drop_learns_rule;
        tc "infer" test_drop_infer;
        tc "dictionary verbatim" test_drop_dictionary_verbatim;
        tc "staleness" test_drop_staleness;
        tc "unknown suffix" test_drop_unknown_suffix;
        tc "degraded input skipped" test_drop_degraded_input;
      ] );
    ( "baselines.hloc",
      [
        tc "basic" test_hloc_basic;
        tc "needs ping" test_hloc_needs_ping;
        tc "blocklist" test_hloc_blocklist;
        tc "confirmation bias" test_hloc_confirmation_bias;
        tc "degraded input skipped" test_hloc_degraded_input;
      ] );
    ( "baselines.undns",
      [
        tc "full coverage" test_undns_full_coverage;
        tc "zero coverage" test_undns_zero_coverage;
        tc "deterministic" test_undns_deterministic;
        tc "degraded input skipped" test_undns_degraded_input;
      ] );
  ]
