(* The calibration harness: hand-computed Brier/ECE/bucket arithmetic
   on synthetic samples, the monotonicity predicate's tolerance
   semantics, and the headline end-to-end gate — the tiny-preset
   pipeline's confidence scores must calibrate against generator
   ground truth within the acceptance thresholds (ECE <= 0.15,
   monotone decile accuracy at tolerance 0.05). *)

module Calibration = Hoiho_validate.Calibration
module Truth = Hoiho_netsim.Truth
module Pipeline = Hoiho.Pipeline

let tc = Helpers.tc
let feq = Alcotest.(check (float 1e-12))
let sample confidence correct = { Calibration.confidence; correct }

let test_empty () =
  let r = Calibration.of_samples [] in
  Alcotest.(check int) "no samples" 0 r.Calibration.total;
  feq "brier of nothing" 0.0 r.Calibration.brier;
  feq "ece of nothing" 0.0 r.Calibration.ece;
  Alcotest.(check int) "ten deciles always" 10
    (List.length r.Calibration.buckets);
  Alcotest.(check bool) "vacuously monotone" true (Calibration.monotone r)

let test_bucket_edges () =
  (* decile membership is [lo, hi), except the last which includes 1.0 *)
  let r =
    Calibration.of_samples
      [ sample 0.0 false; sample 0.1 true; sample 0.999 true; sample 1.0 true ]
  in
  let n i = (List.nth r.Calibration.buckets i).Calibration.n in
  Alcotest.(check int) "0.0 lands in [0.0,0.1)" 1 (n 0);
  Alcotest.(check int) "0.1 lands in [0.1,0.2), not below" 1 (n 1);
  Alcotest.(check int) "0.999 and 1.0 land in [0.9,1.0]" 2 (n 9)

let test_hand_computed_summaries () =
  (* two in [0.8,0.9): one right, one wrong -> accuracy 0.5, mean 0.8
     one in [0.2,0.3): wrong -> accuracy 0, mean 0.2 *)
  let samples = [ sample 0.8 true; sample 0.8 false; sample 0.2 false ] in
  let r = Calibration.of_samples samples in
  let b8 = List.nth r.Calibration.buckets 8 in
  feq "bucket mean confidence" 0.8 b8.Calibration.mean_confidence;
  feq "bucket accuracy" 0.5 b8.Calibration.accuracy;
  (* brier = ((0.8-1)^2 + (0.8-0)^2 + (0.2-0)^2) / 3 *)
  feq "brier" ((0.04 +. 0.64 +. 0.04) /. 3.0) r.Calibration.brier;
  (* ece = 2/3*|0.5-0.8| + 1/3*|0-0.2| *)
  feq "ece"
    ((2.0 /. 3.0 *. 0.3) +. (1.0 /. 3.0 *. 0.2))
    r.Calibration.ece

let test_perfect_calibration () =
  (* a bucket whose accuracy equals its mean confidence contributes
     zero ECE: 10 samples at 0.7, exactly 7 correct *)
  let samples =
    List.init 10 (fun i -> sample 0.7 (i < 7))
  in
  let r = Calibration.of_samples samples in
  feq "diagonal bucket has zero ece" 0.0 r.Calibration.ece;
  (* brier = (7*(0.3)^2 + 3*(0.7)^2) / 10 *)
  feq "brier at the diagonal"
    (((7.0 *. 0.09) +. (3.0 *. 0.49)) /. 10.0)
    r.Calibration.brier

let test_monotone_tolerance () =
  (* dips within tolerance pass, beyond it fail; empty buckets are
     skipped, not treated as zero-accuracy *)
  let pair lo_acc hi_acc =
    (* two populated deciles: [0.1,0.2) at lo_acc, [0.8,0.9) at hi_acc,
       eight samples each so accuracies are exact eighths *)
    List.init 8 (fun i -> sample 0.15 (float_of_int i /. 8.0 < lo_acc))
    @ List.init 8 (fun i -> sample 0.85 (float_of_int i /. 8.0 < hi_acc))
  in
  Alcotest.(check bool) "rising accuracy passes" true
    (Calibration.monotone (Calibration.of_samples (pair 0.25 0.75)));
  Alcotest.(check bool) "flat accuracy passes" true
    (Calibration.monotone (Calibration.of_samples (pair 0.5 0.5)));
  Alcotest.(check bool) "a large dip fails" false
    (Calibration.monotone (Calibration.of_samples (pair 0.75 0.25)));
  Alcotest.(check bool) "a dip within tolerance passes" true
    (Calibration.monotone ~tolerance:0.51
       (Calibration.of_samples (pair 0.75 0.25)));
  Alcotest.(check bool) "tolerance zero rejects any dip" false
    (Calibration.monotone ~tolerance:0.0
       (Calibration.of_samples (pair 0.625 0.5)))

let test_answered_accounting () =
  let r =
    Calibration.of_samples ~answered:2
      [ sample 0.9 true; sample 0.6 true; sample 0.0 false ]
  in
  Alcotest.(check int) "total counts abstentions" 3 r.Calibration.total;
  Alcotest.(check int) "answered excludes them" 2 r.Calibration.answered

let test_render_text () =
  let r = Calibration.of_samples [ sample 0.85 true; sample 0.85 true ] in
  let text = Calibration.render_text r in
  Alcotest.(check bool) "renders the populated decile" true
    (Helpers.contains text "[0.8,0.9)");
  Alcotest.(check bool) "skips empty deciles" false
    (Helpers.contains text "[0.1,0.2)");
  Alcotest.(check bool) "summary line present" true
    (Helpers.contains text "Brier")

(* --- the headline gate: tiny preset, seed 42, generator truth --- *)

let test_pipeline_gate () =
  let ds, truth =
    Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:42 ())
  in
  let p = Pipeline.run ~db:(Truth.db truth) ds in
  let report =
    Calibration.of_pipeline p ~suffixes:(Truth.geo_suffixes truth)
  in
  Alcotest.(check bool) "ground truth is nontrivial" true
    (report.Calibration.total > 500);
  Alcotest.(check bool) "most hostnames answered" true
    (report.Calibration.answered * 2 > report.Calibration.total);
  Alcotest.(check bool)
    (Printf.sprintf "ECE %.4f within the 0.15 acceptance limit"
       report.Calibration.ece)
    true
    (report.Calibration.ece <= 0.15);
  Alcotest.(check bool) "decile accuracy is monotone at tolerance 0.05" true
    (Calibration.monotone report);
  (* abstentions enter as (0.0, false): total strictly exceeds
     answered on this preset, and the first decile is populated *)
  Alcotest.(check bool) "abstentions included" true
    (report.Calibration.total > report.Calibration.answered);
  let b0 = List.hd report.Calibration.buckets in
  Alcotest.(check bool) "zero-confidence decile populated" true
    (b0.Calibration.n >= report.Calibration.total - report.Calibration.answered)

let suites =
  [
    ( "calibration",
      [
        tc "empty input" test_empty;
        tc "bucket edges" test_bucket_edges;
        tc "hand-computed brier and ece" test_hand_computed_summaries;
        tc "perfectly calibrated bucket" test_perfect_calibration;
        tc "monotone tolerance semantics" test_monotone_tolerance;
        tc "answered accounting" test_answered_accounting;
        tc "render_text" test_render_text;
        tc "tiny-preset calibration gate" test_pipeline_gate;
      ] );
  ]
