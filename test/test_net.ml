(* The serving daemon, end to end: HTTP parser units, batcher units,
   and a live multi-domain server on an ephemeral loopback port — the
   72-hostname golden corpus queried over a real socket (including a
   pass that straddles a hot reload), the single-normalization parity
   proof, deterministic 503 shedding, reload failure semantics, and
   the chaos net-fault plans from Hoiho_netsim.Chaos driven against a
   short-deadline server.

   Contract under test (DESIGN.md §11): a served answer is
   byte-identical to in-process application of the same snapshot; the
   server answers, sheds, or closes — it never crashes and never wedges
   a connection past its deadline. *)

module Http = Hoiho_net.Http
module Batcher = Hoiho_net.Batcher
module Server = Hoiho_net.Server
module Chaos = Hoiho_netsim.Chaos
module Pipeline = Hoiho.Pipeline
module Learned_io = Hoiho.Learned_io
module Delta = Hoiho.Delta
module Serve = Hoiho_serve.Serve
module City = Hoiho_geodb.City
module Obs = Hoiho_obs.Obs
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Io = Hoiho_itdk.Io
module Psl = Hoiho_psl.Psl

let describe = function Some c -> City.describe c | None -> "-"

(* corpus "expected" strings are "GEOHINT\tCONF" — exactly a /geolocate
   response body minus the newline. Negative rows are "-\t0.000". *)
let is_negative e = String.length e >= 2 && String.sub e 0 2 = "-\t"

let render_conf city conf = Printf.sprintf "%s\t%.3f" (describe city) conf

(* --- fixture: the golden-corpus run, its snapshot, and a saved copy --- *)

let fixture =
  lazy
    (let ds, _truth =
       Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:42 ())
     in
     let p = Pipeline.run ds in
     let model =
       match Learned_io.decode (Learned_io.encode (Learned_io.of_pipeline p)) with
       | Ok m -> m
       | Error e ->
           Alcotest.failf "fixture snapshot did not round-trip: %s"
             (Learned_io.error_to_string e)
     in
     let path = Filename.temp_file "hoiho_net_model" ".hoiho.json" in
     Learned_io.save path model;
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     (p, model, path))

let corpus_path = "golden/corpus.tsv"

let corpus_lines () =
  let ic = open_in_bin corpus_path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  String.split_on_char '\n' raw
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun line ->
         match String.index_opt line '\t' with
         | Some i ->
             ( String.sub line 0 i,
               String.sub line (i + 1) (String.length line - i - 1) )
         | None -> Alcotest.failf "golden corpus: malformed line %S" line)

(* --- a small test HTTP client --- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let connect port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

let read_to_eof fd =
  let buf = Bytes.create 4096 and b = Buffer.create 1024 in
  let rec go () =
    match Unix.read fd buf 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b buf 0 n;
        go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception
        Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET), _, _)
      ->
        ()
  in
  go ();
  Buffer.contents b

let find_crlfcrlf s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let parse_status raw =
  if String.length raw >= 12 && String.sub raw 0 9 = "HTTP/1.1 " then
    Option.value ~default:0 (int_of_string_opt (String.sub raw 9 3))
  else 0

let split_response raw =
  let body =
    match find_crlfcrlf raw with
    | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
    | None -> ""
  in
  (parse_status raw, body)

(* one-shot request on its own connection *)
let request ?(meth = "GET") ?(body = "") port target =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      let payload =
        if meth = "GET" then
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            target
        else
          Printf.sprintf
            "%s %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: %d\r\n\r\n%s"
            meth target (String.length body) body
      in
      (try write_all fd payload with Unix.Unix_error _ -> ());
      let raw = read_to_eof fd in
      let status, body = split_response raw in
      (status, body, raw))

(* keep-alive client: many requests down one connection, responses
   framed by Content-Length *)
type kc = { fd : Unix.file_descr; mutable pending : string }

let kc_connect port = { fd = connect port; pending = "" }
let kc_close c = try Unix.close c.fd with _ -> ()

let kc_fill c =
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 4096 with
  | 0 -> Alcotest.fail "keep-alive connection closed mid-response"
  | n -> c.pending <- c.pending ^ Bytes.sub_string buf 0 n
  | exception Unix.Unix_error (EINTR, _, _) -> ()

let content_length head =
  let low = String.lowercase_ascii head in
  let key = "content-length:" in
  let rec find i =
    match String.index_from_opt low i 'c' with
    | None -> Alcotest.fail "response without content-length"
    | Some j ->
        if
          j + String.length key <= String.length low
          && String.sub low j (String.length key) = key
        then begin
          let rest = String.sub low (j + String.length key)
              (String.length low - j - String.length key) in
          let line =
            match String.index_opt rest '\r' with
            | Some e -> String.sub rest 0 e
            | None -> rest
          in
          match int_of_string_opt (String.trim line) with
          | Some n -> n
          | None -> Alcotest.fail "malformed content-length in response"
        end
        else find (j + 1)
  in
  find 0

let kc_read_response c =
  let rec header_end () =
    match find_crlfcrlf c.pending with
    | Some i -> i
    | None ->
        kc_fill c;
        header_end ()
  in
  let he = header_end () in
  let head = String.sub c.pending 0 he in
  let clen = content_length head in
  let total = he + 4 + clen in
  while String.length c.pending < total do
    kc_fill c
  done;
  let body = String.sub c.pending (he + 4) clen in
  c.pending <-
    String.sub c.pending total (String.length c.pending - total);
  (parse_status head, body)

let kc_request c target =
  write_all c.fd (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" target);
  kc_read_response c

(* keep-alive POST: body framed by Content-Length, connection stays up *)
let kc_post c target body =
  write_all c.fd
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s" target
       (String.length body) body);
  kc_read_response c

let with_server ?(config = Server.default_config) model f =
  let t = Server.start ~config model in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t (Server.port t))

(* --- HTTP parser units --- *)

let parse_str ?limits s = Http.read_request ?limits (Http.reader_of_string s)

let test_http_parse_get () =
  match parse_str "GET /geolocate?h=a.b%2Ec&x=1 HTTP/1.1\r\nHost: h\r\n\r\n" with
  | Error _ -> Alcotest.fail "valid GET rejected"
  | Ok req ->
      Alcotest.(check string) "meth" "GET" req.Http.meth;
      Alcotest.(check string) "path" "/geolocate" req.Http.path;
      Alcotest.(check (option string)) "decoded param" (Some "a.b.c")
        (Http.query_param req "h");
      Alcotest.(check (option string)) "second param" (Some "1")
        (Http.query_param req "x");
      Alcotest.(check bool) "1.1 defaults to keep-alive" true
        (Http.keep_alive req)

let test_http_keep_alive_rules () =
  let ka s =
    match parse_str s with
    | Ok req -> Http.keep_alive req
    | Error _ -> Alcotest.fail "request rejected"
  in
  Alcotest.(check bool) "1.1 + close" false
    (ka "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  Alcotest.(check bool) "1.0 default" false (ka "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 + keep-alive" true
    (ka "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")

let test_http_rejects () =
  let expect name input check =
    match parse_str input with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error e ->
        if not (check e) then Alcotest.failf "%s: wrong error" name
  in
  let is_bad = function Http.Bad_request _ -> true | _ -> false in
  let is_large = function Http.Too_large _ -> true | _ -> false in
  expect "control byte in request line" "GET /a\x01b HTTP/1.1\r\n\r\n" is_bad;
  expect "unknown version" "GET / HTTP/2.0\r\n\r\n" is_bad;
  expect "malformed request line" "GET /\r\n\r\n" is_bad;
  expect "transfer-encoding" "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    is_bad;
  expect "negative content-length" "POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n"
    is_bad;
  expect "malformed content-length" "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
    is_bad;
  expect "malformed header" "GET / HTTP/1.1\r\nno colon here\r\n\r\n" is_bad;
  expect "clean EOF is Closed" "" (function Http.Closed -> true | _ -> false);
  let tiny = { Http.default_limits with Http.max_line = 16 } in
  (match parse_str ~limits:tiny ("GET /" ^ String.make 64 'a' ^ " HTTP/1.1\r\n\r\n")
   with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "over-long line accepted");
  let few = { Http.default_limits with Http.max_headers = 2 } in
  (match
     parse_str ~limits:few
       "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\nD: 4\r\n\r\n"
   with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "too many headers accepted");
  let small = { Http.default_limits with Http.max_body = 8 } in
  (match
     parse_str ~limits:small "POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n"
   with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "oversized body accepted");
  ignore is_large

let test_http_body_and_pipelining () =
  let r =
    Http.reader_of_string
      ("POST /batch HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde"
     ^ "GET /healthz HTTP/1.1\r\n\r\n")
  in
  (match Http.read_request r with
  | Ok req -> Alcotest.(check string) "body" "abcde" req.Http.body
  | Error _ -> Alcotest.fail "POST with body rejected");
  (match Http.read_request r with
  | Ok req -> Alcotest.(check string) "second request" "/healthz" req.Http.path
  | Error _ -> Alcotest.fail "pipelined request rejected");
  match Http.read_request r with
  | Error Http.Closed -> ()
  | _ -> Alcotest.fail "expected Closed at end of stream"

let test_pct_codec () =
  Alcotest.(check (option string)) "decode" (Some "a /b")
    (Http.pct_decode "a+%2Fb");
  Alcotest.(check (option string)) "malformed escape" None (Http.pct_decode "%g1");
  Alcotest.(check (option string)) "truncated escape" None (Http.pct_decode "ab%2");
  let raw = " FOO.Example.COM. " in
  Alcotest.(check (option string)) "encode o decode = id" (Some raw)
    (Http.pct_decode (Http.pct_encode raw))

(* --- batcher units --- *)

let test_batcher_basic () =
  let b = Batcher.create ~apply:(List.map String.uppercase_ascii) () in
  Fun.protect
    ~finally:(fun () -> Batcher.stop b)
    (fun () ->
      (match Batcher.submit b [ "a"; "b"; "c" ] with
      | Ok answers ->
          Alcotest.(check (list string)) "in order" [ "A"; "B"; "C" ] answers
      | Error _ -> Alcotest.fail "submit failed");
      match Batcher.submit b [] with
      | Ok [] -> ()
      | _ -> Alcotest.fail "empty submit should be Ok []")

let test_batcher_concurrent () =
  let b = Batcher.create ~max_batch:8 ~max_wait_ms:2.0 ~apply:(List.map String.uppercase_ascii) () in
  Fun.protect
    ~finally:(fun () -> Batcher.stop b)
    (fun () ->
      let workers =
        List.init 8 (fun i ->
            Domain.spawn (fun () ->
                let key = Printf.sprintf "host%d" i in
                match Batcher.submit b [ key ] with
                | Ok [ a ] -> a = String.uppercase_ascii key
                | _ -> false))
      in
      let oks = List.map Domain.join workers in
      Alcotest.(check bool) "all concurrent submits answered correctly" true
        (List.for_all Fun.id oks))

let test_batcher_shed () =
  let b = Batcher.create ~max_pending:4 ~apply:(List.map Fun.id) () in
  Fun.protect
    ~finally:(fun () -> Batcher.stop b)
    (fun () ->
      let keys = List.init 20 (fun i -> string_of_int i) in
      match Batcher.submit b keys with
      | Error `Overloaded -> ()
      | Ok _ -> Alcotest.fail "20 keys admitted past max_pending=4"
      | Error _ -> Alcotest.fail "wrong rejection")

let test_batcher_failed_apply_recovers () =
  let b =
    Batcher.create
      ~apply:(fun keys ->
        if List.mem "boom" keys then failwith "apply exploded"
        else List.map String.uppercase_ascii keys)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Batcher.stop b)
    (fun () ->
      (match Batcher.submit b [ "boom" ] with
      | Error `Failed -> ()
      | _ -> Alcotest.fail "raising apply must fail its waiters");
      match Batcher.submit b [ "ok" ] with
      | Ok [ "OK" ] -> ()
      | _ -> Alcotest.fail "batcher did not survive a failed apply")

let test_batcher_stopped () =
  let b = Batcher.create ~apply:(List.map Fun.id) () in
  Batcher.stop b;
  Batcher.stop b;
  match Batcher.submit b [ "x" ] with
  | Error `Stopped -> ()
  | _ -> Alcotest.fail "submit after stop must be `Stopped"

(* --- serve-layer regression: duplicate suffix must raise --- *)

let test_serve_create_rejects_duplicate () =
  let _, model, _ = Lazy.force fixture in
  match model.Learned_io.suffixes with
  | [] -> Alcotest.fail "fixture model has no suffixes"
  | sm :: _ -> (
      let dup =
        { model with Learned_io.suffixes = model.Learned_io.suffixes @ [ sm ] }
      in
      match Serve.create dup with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "Serve.create accepted a duplicate suffix")

(* --- the daemon over a real socket --- *)

let small_config =
  { Server.default_config with Server.jobs = 2; max_wait_ms = 0.5 }

let test_server_basics () =
  let _, model, model_path = Lazy.force fixture in
  with_server
    ~config:{ small_config with Server.model_path = Some model_path }
    model
    (fun t port ->
      Alcotest.(check bool) "ephemeral port bound" true (port > 0);
      let status, body, _ = request port "/healthz" in
      Alcotest.(check int) "healthz status" 200 status;
      Alcotest.(check string) "healthz body" "ok\n" body;
      let status, _, _ = request port "/nosuch" in
      Alcotest.(check int) "404" 404 status;
      let status, _, _ = request ~meth:"DELETE" port "/healthz" in
      Alcotest.(check int) "405" 405 status;
      let status, _, _ = request port "/geolocate" in
      Alcotest.(check int) "missing h is 400" 400 status;
      let status, _, _ = request port "/geolocate?h=%20%20" in
      Alcotest.(check int) "whitespace-only hostname is 400" 400 status;
      let oversized = String.make 1500 'a' in
      let status, _, _ = request port ("/geolocate?h=" ^ oversized) in
      Alcotest.(check int) "oversized hostname is 400" 400 status;
      (* double stop via Fun.protect + explicit: idempotent *)
      ignore t)

(* the single-normalization parity contract (DESIGN.md §11): what the
   daemon serves for decorated raw input is byte-identical to what
   in-process Pipeline.geolocate answers for the same raw string *)
let test_boundary_parity () =
  let p, model, _ = Lazy.force fixture in
  let some_host =
    match List.find_opt (fun (_, e) -> not (is_negative e)) (corpus_lines ()) with
    | Some (h, _) -> h
    | None -> Alcotest.fail "corpus has no geolocated hostname"
  in
  let decorated =
    [
      " FOO.Example.COM. ";
      " " ^ String.uppercase_ascii some_host ^ ". ";
      String.uppercase_ascii some_host;
      "\t" ^ some_host ^ " \t";
    ]
  in
  with_server ~config:small_config model (fun _ port ->
      List.iter
        (fun raw ->
          let city, conf = Pipeline.geolocate_conf p raw in
          let expected = render_conf city conf ^ "\n" in
          let status, body, _ =
            request port ("/geolocate?h=" ^ Http.pct_encode raw)
          in
          Alcotest.(check int) ("status for " ^ raw) 200 status;
          Alcotest.(check string) ("served = in-process for " ^ raw) expected
            body)
        decorated)

(* the golden corpus over a real socket, one keep-alive connection,
   straddling a hot reload: the same snapshot swapped in mid-pass must
   not change a single answer (and the swap must not error) *)
let test_corpus_over_socket_with_reload () =
  let _, model, model_path = Lazy.force fixture in
  let pinned = corpus_lines () in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length pinned >= 40);
  with_server
    ~config:{ small_config with Server.model_path = Some model_path }
    model
    (fun _ port ->
      let c = kc_connect port in
      Fun.protect
        ~finally:(fun () -> kc_close c)
        (fun () ->
          let half = List.length pinned / 2 in
          List.iteri
            (fun i (h, expected) ->
              if i = half then begin
                (* hot reload mid-pass, same snapshot: on a separate
                   connection, like a real operator would *)
                let status, body, _ = request ~meth:"POST" port "/reload" in
                if status <> 200 then
                  Alcotest.failf "mid-pass reload failed (%d): %s" status body
              end;
              let status, body =
                kc_request c ("/geolocate?h=" ^ Http.pct_encode h)
              in
              Alcotest.(check int) ("status for " ^ h) 200 status;
              Alcotest.(check string) ("served answer for " ^ h)
                (expected ^ "\n") body)
            pinned))

(* POST /batch: line-aligned answers, !invalid slots, and parity with
   the pinned corpus *)
let test_batch_endpoint () =
  let _, model, _ = Lazy.force fixture in
  let pinned = corpus_lines () in
  let hosts = List.filteri (fun i _ -> i < 10) pinned in
  with_server ~config:small_config model (fun _ port ->
      let body =
        String.concat "\n"
          (List.map fst hosts @ [ "bad..name"; "" ])
        ^ "\n"
      in
      let status, resp, _ = request ~meth:"POST" ~body port "/batch" in
      Alcotest.(check int) "batch status" 200 status;
      let expected =
        String.concat ""
          (List.map (fun (h, e) -> Printf.sprintf "%s\t%s\n" h e) hosts)
        ^ "bad..name\t!invalid\t0.000\n"
      in
      Alcotest.(check string) "line-aligned batch answers" expected resp;
      let status, _, _ = request ~meth:"POST" ~body:"\n\n" port "/batch" in
      Alcotest.(check int) "empty batch is 400" 400 status)

(* ?min_conf=: the confidence floor is a server-side outcome, not a
   client-side filter — a below-floor answer renders as the distinct
   !low-confidence outcome with its score still shown, and a malformed
   floor is a 400 (distinguishable from any served answer) *)
let test_min_conf () =
  let _, model, _ = Lazy.force fixture in
  let h, expected =
    match List.find_opt (fun (_, e) -> not (is_negative e)) (corpus_lines ()) with
    | Some he -> he
    | None -> Alcotest.fail "corpus has no geolocated hostname"
  in
  let conf_str =
    match String.rindex_opt expected '\t' with
    | Some i -> String.sub expected (i + 1) (String.length expected - i - 1)
    | None -> Alcotest.failf "pinned %S has no confidence column" expected
  in
  with_server ~config:small_config model (fun _ port ->
      let status, body, _ =
        request port ("/geolocate?h=" ^ Http.pct_encode h ^ "&min_conf=0")
      in
      Alcotest.(check int) "min_conf=0 status" 200 status;
      Alcotest.(check string) "min_conf=0 keeps the answer" (expected ^ "\n")
        body;
      (* scores are strictly < 1 (Laplace smoothing), so a floor of 1.0
         trips every answer *)
      let status, body, _ =
        request port ("/geolocate?h=" ^ Http.pct_encode h ^ "&min_conf=1.0")
      in
      Alcotest.(check int) "min_conf=1 status" 200 status;
      Alcotest.(check string) "below-floor answer is !low-confidence"
        ("!low-confidence\t" ^ conf_str ^ "\n") body;
      let status, resp, _ =
        request ~meth:"POST" ~body:(h ^ "\n") port "/batch?min_conf=1.0"
      in
      Alcotest.(check int) "batch min_conf status" 200 status;
      Alcotest.(check string) "batch row below floor"
        (h ^ "\t!low-confidence\t" ^ conf_str ^ "\n") resp;
      (* a negative answer is not a claim, so the floor leaves it "-":
         no-geolocation stays distinguishable from low-confidence *)
      let status, body, _ =
        request port "/geolocate?h=nosuch.example.invalid&min_conf=0.5"
      in
      Alcotest.(check int) "negative under floor status" 200 status;
      Alcotest.(check string) "negative answer stays -" "-\t0.000\n" body;
      List.iter
        (fun bad ->
          let status, _, _ =
            request port
              ("/geolocate?h=" ^ Http.pct_encode h ^ "&min_conf=" ^ bad)
          in
          Alcotest.(check int) ("min_conf=" ^ bad ^ " is 400") 400 status)
        [ "nan"; "2.0"; "-0.5"; "abc"; "" ])

(* deterministic shedding at the socket level: a batch bigger than the
   admission bound must be refused with 503 + Retry-After, and the
   server must keep serving afterwards *)
let test_socket_shed_503 () =
  let _, model, _ = Lazy.force fixture in
  let pinned = corpus_lines () in
  with_server
    ~config:{ small_config with Server.max_pending = 4 }
    model
    (fun _ port ->
      let body =
        String.concat "\n" (List.map fst (List.filteri (fun i _ -> i < 40) pinned))
      in
      let status, _, raw = request ~meth:"POST" ~body port "/batch" in
      Alcotest.(check int) "oversized batch is shed with 503" 503 status;
      Alcotest.(check bool) "Retry-After advertised" true
        (let low = String.lowercase_ascii raw in
         let rec contains i =
           i + 11 <= String.length low
           && (String.sub low i 11 = "retry-after" || contains (i + 1))
         in
         contains 0);
      (* a request inside the bound still works *)
      let h, expected = List.hd pinned in
      let status, body, _ = request port ("/geolocate?h=" ^ Http.pct_encode h) in
      Alcotest.(check int) "still serving" 200 status;
      Alcotest.(check string) "still correct" (expected ^ "\n") body)

let test_reload_semantics () =
  let _, model, model_path = Lazy.force fixture in
  let pinned = corpus_lines () in
  let h, expected = List.hd pinned in
  with_server
    ~config:{ small_config with Server.model_path = Some model_path }
    model
    (fun _ port ->
      (* a bad path must fail loudly and keep the old model serving *)
      let status, _, _ =
        request ~meth:"POST" port "/reload?model=/no/such/model.json"
      in
      Alcotest.(check int) "reload of missing file is 500" 500 status;
      let status, body, _ = request port ("/geolocate?h=" ^ Http.pct_encode h) in
      Alcotest.(check int) "old model still serving" 200 status;
      Alcotest.(check string) "old model still correct" (expected ^ "\n") body;
      (* the configured path reloads fine *)
      let status, _, _ = request ~meth:"POST" port "/reload" in
      Alcotest.(check int) "configured reload is 200" 200 status);
  (* no model path configured anywhere: reload is a 400 *)
  with_server ~config:small_config model (fun _ port ->
      let status, _, _ = request ~meth:"POST" port "/reload" in
      Alcotest.(check int) "unconfigured reload is 400" 400 status)

let test_metrics_and_explain () =
  let _, model, _ = Lazy.force fixture in
  let pinned = corpus_lines () in
  let h, expected =
    match List.find_opt (fun (_, e) -> not (is_negative e)) pinned with
    | Some he -> he
    | None -> Alcotest.fail "corpus has no geolocated hostname"
  in
  with_server ~config:small_config model (fun _ port ->
      let status, _, _ = request port ("/geolocate?h=" ^ Http.pct_encode h) in
      Alcotest.(check int) "warm-up request" 200 status;
      let status, body, _ = request port "/metrics" in
      Alcotest.(check int) "metrics status" 200 status;
      Alcotest.(check bool) "exposes net counters" true
        (let needle = "hoiho_net_requests_total" in
         let rec contains i =
           i + String.length needle <= String.length body
           && (String.sub body i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0);
      Alcotest.(check bool) "ends with # EOF" true
        (String.length body >= 6
        && String.sub body (String.length body - 6) 6 = "# EOF\n");
      let status, body, _ = request port ("/explain?h=" ^ Http.pct_encode h) in
      Alcotest.(check int) "explain status" 200 status;
      Alcotest.(check bool) "explain carries the answer" true
        (let prefix = Printf.sprintf "%s\t%s\n" h expected in
         String.length body >= String.length prefix
         && String.sub body 0 (String.length prefix) = prefix);
      Alcotest.(check bool) "explain carries the decision trace" true
        (let needle = "serve.apply" in
         let rec contains i =
           i + String.length needle <= String.length body
           && (String.sub body i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0))

(* --- POST /observe: incremental relearn over the wire --- *)

(* Epoch-2 events: clone an entire learned suffix group of the fixture
   corpus under the brand-new suffix "newcorp.net" — same router
   locations, same RTTs, same embedded geohint codes, so the relearn
   must learn the clone convention and start answering names nothing in
   the epoch-1 model could. *)
let observe_fixture () =
  let p, model, _ = Lazy.force fixture in
  let ds = p.Pipeline.dataset in
  let source_suffix, probe_host, probe_expected =
    match
      List.find_opt
        (fun (h, e) -> (not (is_negative e)) && Psl.registered_suffix h <> None)
        (corpus_lines ())
    with
    | Some (h, e) -> (Option.get (Psl.registered_suffix h), h, e)
    | None -> Alcotest.fail "corpus has no geolocated hostname"
  in
  let swap h =
    (* "...code1.<source_suffix>" -> "...code1.newcorp.net" *)
    String.sub h 0 (String.length h - String.length source_suffix)
    ^ "newcorp.net"
  in
  let clones =
    ds.Dataset.routers |> Array.to_list
    |> List.filter (fun (r : Router.t) ->
           List.exists
             (fun h -> Psl.registered_suffix h = Some source_suffix)
             r.Router.hostnames)
    |> List.map (fun (r : Router.t) ->
           Router.make (r.Router.id + 100000)
             ~hostnames:(List.map swap r.Router.hostnames)
             ~ping_rtts:r.Router.ping_rtts ~trace_rtts:r.Router.trace_rtts)
  in
  Alcotest.(check bool) "source group is non-trivial" true
    (List.length clones >= 3);
  let events = List.map (fun r -> Delta.Upsert r) clones in
  (* the in-process ground truth for what the daemon must serve after
     the observe: incremental relearn of the same events *)
  let model', _, _ =
    match Delta.relearn_model ~jobs:1 ~model ~corpus:ds events with
    | Ok v -> v
    | Error e -> Alcotest.failf "relearn_model: %s" (Delta.error_to_string e)
  in
  let expected_after =
    let a = Serve.geolocate_uncached_conf (Serve.create model') (swap probe_host) in
    render_conf a.Serve.city a.Serve.confidence
  in
  (* compare the geohint field only: the clone group's confidence is
     recomputed from its own relearned stats, which the corpus entry
     for the source suffix does not pin *)
  let geohint e =
    match String.index_opt e '\t' with Some i -> String.sub e 0 i | None -> e
  in
  Alcotest.(check string)
    "clone convention learned (clone of a geolocated hostname geolocates)"
    (geohint probe_expected) (geohint expected_after);
  (swap probe_host, expected_after, Delta.events_to_string events)

let with_corpus_file ds f =
  let path = Filename.temp_file "hoiho_net_corpus" ".itdk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Io.save path ds;
      f path)

let test_observe_relearn_mid_stream () =
  let p, model, _ = Lazy.force fixture in
  let probe, expected_after, events_json = observe_fixture () in
  let pinned_h, pinned_e = List.hd (corpus_lines ()) in
  with_corpus_file p.Pipeline.dataset (fun corpus_file ->
      with_server
        ~config:{ small_config with Server.corpus_path = Some corpus_file }
        model
        (fun _ port ->
          let c = kc_connect port in
          Fun.protect
            ~finally:(fun () -> kc_close c)
            (fun () ->
              (* before: the epoch-2 name is unknown — and now cached *)
              let status, body =
                kc_request c ("/geolocate?h=" ^ Http.pct_encode probe)
              in
              Alcotest.(check int) "pre-observe status" 200 status;
              Alcotest.(check string) "epoch-2 name unknown before observe"
                "-\t0.000\n" body;
              (* malformed bodies: typed 400s, connection survives *)
              let status, _ = kc_post c "/observe" "not json" in
              Alcotest.(check int) "malformed body is 400" 400 status;
              let status, body =
                kc_post c "/observe" {|[{"op":"remove","id":123456789}]|}
              in
              Alcotest.(check int) "unknown router is 400" 400 status;
              Alcotest.(check bool) "400 names the router id" true
                (let needle = "123456789" in
                 let rec contains i =
                   i + String.length needle <= String.length body
                   && (String.sub body i (String.length needle) = needle
                      || contains (i + 1))
                 in
                 contains 0);
              (* the real observe, same connection *)
              let status, body = kc_post c "/observe" events_json in
              if status <> 200 then
                Alcotest.failf "observe failed (%d): %s" status body;
              Alcotest.(check bool) "observe reports relearn stats" true
                (String.length body >= 9 && String.sub body 0 9 = "relearned");
              (* after, still the same connection: the swap answered the
                 cached-negative name (the serving-boundary bugfix) *)
              let status, body =
                kc_request c ("/geolocate?h=" ^ Http.pct_encode probe)
              in
              Alcotest.(check int) "post-observe status" 200 status;
              Alcotest.(check string) "epoch-2 name answers after observe"
                (expected_after ^ "\n") body;
              (* clean suffixes kept serving identically *)
              let status, body =
                kc_request c ("/geolocate?h=" ^ Http.pct_encode pinned_h)
              in
              Alcotest.(check int) "clean suffix status" 200 status;
              Alcotest.(check string) "clean suffix unchanged"
                (pinned_e ^ "\n") body)))

let test_observe_unconfigured () =
  let _, model, _ = Lazy.force fixture in
  with_server ~config:small_config model (fun _ port ->
      let status, body, _ =
        request ~meth:"POST" ~body:"[]" port "/observe"
      in
      Alcotest.(check int) "observe without a corpus is 400" 400 status;
      Alcotest.(check bool) "400 explains the missing corpus" true
        (let needle = "corpus" in
         let low = String.lowercase_ascii body in
         let rec contains i =
           i + String.length needle <= String.length low
           && (String.sub low i (String.length needle) = needle
              || contains (i + 1))
         in
         contains 0))

(* --- chaos: hostile clients against a short-deadline server --- *)

let run_plan port (plan : Chaos.net_plan) =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 3.0
       with Unix.Unix_error _ -> ());
      let n = String.length plan.Chaos.payload in
      let rec send off =
        if off < n then
          let len = min plan.Chaos.chunk (n - off) in
          match Unix.write_substring fd plan.Chaos.payload off len with
          | w ->
              if plan.Chaos.pause_s > 0.0 then Unix.sleepf plan.Chaos.pause_s;
              send (off + w)
          | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
              (* the server already gave up on us — that is an allowed
                 outcome for every fault class *)
              ()
          | exception Unix.Unix_error (EINTR, _, _) -> send off
      in
      send 0;
      if plan.Chaos.expect_response then begin
        let raw = read_to_eof fd in
        let status = parse_status raw in
        match plan.Chaos.fault with
        | Chaos.Oversized_hostname | Chaos.Control_bytes ->
            Alcotest.(check int)
              (Chaos.net_fault_name plan.Chaos.fault ^ " is rejected with 400")
              400 status
        | Chaos.Slow_loris ->
            (* fast enough to finish inside the deadline → 200; too
               slow → 408 or a silent close. Never a hang, never a 5xx. *)
            if raw <> "" && status <> 200 && status <> 408 then
              Alcotest.failf "slow_loris: unexpected status %d" status
        | _ -> ()
      end)

let test_chaos_clients () =
  let _, model, model_path = Lazy.force fixture in
  let pinned = corpus_lines () in
  let h, expected = List.hd pinned in
  let config =
    {
      small_config with
      Server.model_path = Some model_path;
      request_timeout_s = 0.4;
    }
  in
  with_server ~config model (fun _ port ->
      let plans = Chaos.net_plans ~n:25 7 in
      Alcotest.(check bool) "every fault class planned" true
        (List.for_all
           (fun f -> List.exists (fun p -> p.Chaos.fault = f) plans)
           Chaos.all_net_faults);
      List.iteri
        (fun i plan ->
          (* mid-reload traffic: swap the model while hostile clients
             are mid-connection *)
          if i mod 7 = 3 then begin
            let status, _, _ = request ~meth:"POST" port "/reload" in
            Alcotest.(check int) "reload under fire" 200 status
          end;
          run_plan port plan)
        plans;
      (* determinism of the plan stream itself *)
      Alcotest.(check bool) "plans are deterministic" true
        (Chaos.net_plans ~n:25 7 = plans);
      (* after all that, the server still answers, correctly *)
      let status, body, _ = request port ("/geolocate?h=" ^ Http.pct_encode h) in
      Alcotest.(check int) "alive after chaos" 200 status;
      Alcotest.(check string) "still correct after chaos" (expected ^ "\n") body)

(* --- health, request ids, debug endpoints, access log --- *)

module Health = Hoiho_obs.Health
module Json = Hoiho_util.Json

let contains haystack needle =
  let nn = String.length needle and hn = String.length haystack in
  let rec go i =
    i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* the value of [name] in a raw response's header block, lowercased name *)
let header_value raw name =
  let head =
    match find_crlfcrlf raw with Some i -> String.sub raw 0 i | None -> raw
  in
  let lines = String.split_on_char '\n' head in
  let key = String.lowercase_ascii name ^ ":" in
  List.find_map
    (fun line ->
      let line = String.trim line in
      if
        String.length line > String.length key
        && String.lowercase_ascii (String.sub line 0 (String.length key)) = key
      then
        Some
          (String.trim
             (String.sub line (String.length key)
                (String.length line - String.length key)))
      else None)
    lines

(* one-shot GET with extra request headers *)
let request_h port target headers =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      let extra =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
      in
      (try
         write_all fd
           (Printf.sprintf
              "GET %s HTTP/1.1\r\nHost: t\r\n%sConnection: close\r\n\r\n"
              target extra)
       with Unix.Unix_error _ -> ());
      let raw = read_to_eof fd in
      let status, body = split_response raw in
      (status, body, raw))

(* satellite: the OpenMetrics exposition advertises its version *)
let test_metrics_content_type () =
  let _, model, _ = Lazy.force fixture in
  with_server ~config:small_config model (fun _ port ->
      let status, _, raw = request port "/metrics" in
      Alcotest.(check int) "metrics status" 200 status;
      Alcotest.(check (option string)) "openmetrics content type"
        (Some "text/plain; version=0.0.4; charset=utf-8")
        (header_value raw "content-type"))

let test_request_id () =
  let _, model, _ = Lazy.force fixture in
  with_server ~config:small_config model (fun _ port ->
      (* a sane client id is echoed verbatim *)
      let _, _, raw = request_h port "/healthz" [ ("X-Request-Id", "abc-123") ] in
      Alcotest.(check (option string)) "client id echoed" (Some "abc-123")
        (header_value raw "x-request-id");
      (* no client id: the daemon mints one *)
      let _, _, raw = request port "/healthz" in
      (match header_value raw "x-request-id" with
      | Some rid ->
          Alcotest.(check bool) "generated id is hoiho-*" true
            (String.length rid > 6 && String.sub rid 0 6 = "hoiho-")
      | None -> Alcotest.fail "response without X-Request-Id");
      (* an insane id (control bytes / oversized) is replaced, not echoed *)
      let _, _, raw =
        request_h port "/healthz" [ ("X-Request-Id", String.make 300 'x') ]
      in
      (match header_value raw "x-request-id" with
      | Some rid ->
          Alcotest.(check bool) "oversized client id replaced" true
            (String.sub rid 0 6 = "hoiho-")
      | None -> Alcotest.fail "response without X-Request-Id");
      (* errors carry the id too *)
      let _, _, raw = request_h port "/nosuch" [ ("X-Request-Id", "err-7") ] in
      Alcotest.(check (option string)) "404 still carries the id" (Some "err-7")
        (header_value raw "x-request-id"))

(* the chaos-driven health state machine over a live socket:
   ok -> degraded -> failing (503 naming the burned objective) -> ok
   again once the bad samples age out of the window *)
let test_healthz_transitions () =
  let _, model, _ = Lazy.force fixture in
  let config =
    {
      small_config with
      Server.objectives =
        Some
          [ { Health.metric = "latency_p99_ms"; max_value = 50.0; fail_ratio = 3.0 } ];
      health_bucket_ms = 100.0;
      health_nbuckets = 10;
    }
  in
  with_server ~config model (fun t port ->
      let status, body, _ = request port "/healthz" in
      Alcotest.(check int) "clean server is healthy" 200 status;
      Alcotest.(check string) "clean body" "ok\n" body;
      (* inject latency inside the budget's degraded band: burn 1.5 *)
      let m = Server.monitor t in
      let inject latency =
        for _ = 1 to 40 do
          Health.record_request m ~now_ms:(Obs.now_ms ()) ~latency_ms:latency
            ~status:200 ~shed:false
        done
      in
      inject 75.0;
      let status, body, _ = request port "/healthz" in
      Alcotest.(check int) "degraded is still 200" 200 status;
      Alcotest.(check bool) "degraded body" true (contains body "degraded:");
      Alcotest.(check bool) "degraded names the objective" true
        (contains body "latency_p99_ms");
      (* now burn far past fail_ratio *)
      inject 1000.0;
      let status, body, _ = request port "/healthz" in
      Alcotest.(check int) "failing is 503" 503 status;
      Alcotest.(check bool) "failing body" true (contains body "failing:");
      Alcotest.(check bool) "failing names the objective" true
        (contains body "latency_p99_ms");
      (* /debug/slo agrees while failing *)
      let status, body, _ = request port "/debug/slo" in
      Alcotest.(check int) "debug/slo status" 200 status;
      Alcotest.(check bool) "debug/slo reports failing" true
        (contains body "\"state\":\"failing\"");
      (* recovery: the bad samples age out of the 1 s span on their own *)
      Unix.sleepf 1.35;
      let status, body, _ = request port "/healthz" in
      Alcotest.(check int) "recovered" 200 status;
      Alcotest.(check string) "recovered body" "ok\n" body)

let test_debug_endpoints_strict_json () =
  let _, model, _ = Lazy.force fixture in
  let pinned = corpus_lines () in
  let h, _ = List.hd pinned in
  with_server ~config:small_config model (fun _ port ->
      let status, _, _ = request port ("/geolocate?h=" ^ Http.pct_encode h) in
      Alcotest.(check int) "warm-up request" 200 status;
      let check_json target keys =
        let status, body, raw = request port target in
        Alcotest.(check int) (target ^ " status") 200 status;
        Alcotest.(check (option string)) (target ^ " content type")
          (Some "application/json")
          (header_value raw "content-type");
        match Json.parse body with
        | Error e -> Alcotest.failf "%s is not strict JSON: %s" target e
        | Ok json ->
            List.iter
              (fun k ->
                if Json.member k json = None then
                  Alcotest.failf "%s lacks %S" target k)
              keys;
            json
      in
      let slo =
        check_json "/debug/slo" [ "state"; "reasons"; "objectives"; "measurements" ]
      in
      (match Json.member "state" slo with
      | Some (Json.String "ok") -> ()
      | _ -> Alcotest.fail "idle server's /debug/slo state is not ok");
      (* every default objective row carries metric/max/fail_ratio *)
      (match Json.member "objectives" slo with
      | Some (Json.List (_ :: _ as rows)) ->
          List.iter
            (fun row ->
              List.iter
                (fun k ->
                  if Json.member k row = None then
                    Alcotest.failf "objective row lacks %S" k)
                [ "metric"; "max"; "fail_ratio"; "value"; "burn" ])
            rows
      | _ -> Alcotest.fail "/debug/slo objectives missing or empty");
      let windows =
        check_json "/debug/windows"
          [
            "bucket_ms"; "nbuckets"; "windows"; "expected_calibration";
            "observed_calibration";
          ]
      in
      (* the served request above is visible in the latency window *)
      match Json.member "windows" windows with
      | Some w -> (
          match Json.member "latency_ms" w with
          | Some lat -> (
              match Json.member "n" lat with
              | Some (Json.Int n) ->
                  Alcotest.(check bool) "latency window saw traffic" true (n > 0)
              | _ -> Alcotest.fail "latency window lacks n")
          | None -> Alcotest.fail "windows lacks latency_ms")
      | None -> Alcotest.fail "windows section missing")

(* the model ships a calibration profile (format v3), so the live
   daemon's drift plumbing is armed end to end *)
let test_expected_calibration_served () =
  let _, model, _ = Lazy.force fixture in
  Alcotest.(check bool) "fixture model carries a calibration profile" true
    (model.Learned_io.calibration <> None);
  with_server ~config:small_config model (fun _ port ->
      let _, body, _ = request port "/debug/windows" in
      Alcotest.(check bool) "expected profile exposed, not null" true
        (not (contains body "\"expected_calibration\":null")))

let test_access_log_over_the_wire () =
  let _, model, _ = Lazy.force fixture in
  let pinned = corpus_lines () in
  let h, _ = List.hd pinned in
  let path = Filename.temp_file "hoiho_net_access" ".log" in
  let config = { small_config with Server.access_log = Some path } in
  with_server ~config model (fun _ port ->
      let status, _, _ = request port ("/geolocate?h=" ^ Http.pct_encode h) in
      Alcotest.(check int) "geolocate" 200 status;
      let status, _, _ = request port "/healthz" in
      Alcotest.(check int) "healthz" 200 status;
      let status, _, _ = request port "/nosuch" in
      Alcotest.(check int) "404" 404 status);
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' raw)
  in
  Alcotest.(check int) "one line per request" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "access-log line not strict JSON: %s" e
      | Ok json ->
          List.iter
            (fun k ->
              if Json.member k json = None then
                Alcotest.failf "access-log line lacks %S" k)
            [
              "request_id"; "endpoint"; "status"; "latency_us"; "batch";
              "cache_hit"; "confidence"; "shed"; "degraded";
            ])
    lines;
  Alcotest.(check bool) "geolocate line present" true
    (contains raw "\"endpoint\":\"GET /geolocate\"");
  Alcotest.(check bool) "404 recorded" true (contains raw "\"status\":404");
  (* an unwritable access log fails startup loudly, not silently *)
  let bad =
    { small_config with Server.access_log = Some "/nonexistent-dir/x/a.log" }
  in
  match Server.start ~config:bad model with
  | exception Failure _ -> ()
  | t ->
      Server.stop t;
      Alcotest.fail "unwritable access log did not fail startup"

let suites =
  [
    ( "net.http",
      [
        Helpers.tc "parses a GET with query" test_http_parse_get;
        Helpers.tc "keep-alive rules" test_http_keep_alive_rules;
        Helpers.tc "rejects malformed and oversized input" test_http_rejects;
        Helpers.tc "bodies and pipelining" test_http_body_and_pipelining;
        Helpers.tc "percent codec" test_pct_codec;
      ] );
    ( "net.batcher",
      [
        Helpers.tc "answers in order" test_batcher_basic;
        Helpers.tc "concurrent submitters" test_batcher_concurrent;
        Helpers.tc "sheds past the admission bound" test_batcher_shed;
        Helpers.tc "survives a failing apply" test_batcher_failed_apply_recovers;
        Helpers.tc "stop is terminal and idempotent" test_batcher_stopped;
      ] );
    ( "net.server",
      [
        Helpers.tc "duplicate suffix model is rejected"
          test_serve_create_rejects_duplicate;
        Helpers.tc "basics: healthz, 404, 405, boundary 400s"
          test_server_basics;
        Helpers.tc "single-normalization parity" test_boundary_parity;
        Helpers.tc "golden corpus over a socket, straddling a reload"
          test_corpus_over_socket_with_reload;
        Helpers.tc "batch endpoint" test_batch_endpoint;
        Helpers.tc "min_conf floor over the wire" test_min_conf;
        Helpers.tc "deterministic 503 shedding" test_socket_shed_503;
        Helpers.tc "reload semantics" test_reload_semantics;
        Helpers.tc "metrics and explain over the wire"
          test_metrics_and_explain;
        Helpers.tc "observe relearns mid-stream on a keep-alive connection"
          test_observe_relearn_mid_stream;
        Helpers.tc "observe without a corpus" test_observe_unconfigured;
        Helpers.tc "chaos clients" test_chaos_clients;
        Helpers.tc "metrics content type" test_metrics_content_type;
        Helpers.tc "request ids echoed and generated" test_request_id;
        Helpers.tc "healthz transitions ok->degraded->failing->ok"
          test_healthz_transitions;
        Helpers.tc "debug endpoints are strict JSON"
          test_debug_endpoints_strict_json;
        Helpers.tc "expected calibration profile served"
          test_expected_calibration_served;
        Helpers.tc "access log over the wire" test_access_log_over_the_wire;
      ] );
  ]
