(* Serving layer: LRU unit tests (capacity, eviction order, negative
   entries, shard determinism) and the apply_batch determinism contract
   — identical answers AND identical serve.* work counters at jobs=1
   and jobs=4. *)

module Lru = Hoiho_serve.Lru
module Serve = Hoiho_serve.Serve
module Learned_io = Hoiho.Learned_io
module Pipeline = Hoiho.Pipeline
module Obs = Hoiho_obs.Obs

let tc = Helpers.tc

(* --- Lru --- *)

let test_capacity_eviction () =
  let t = Lru.create ~shards:1 ~capacity:3 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "c" 3;
  Alcotest.(check int) "full" 3 (Lru.length t);
  (* touch "a" so "b" is now least-recent *)
  Alcotest.(check (option int)) "a cached" (Some 1) (Lru.find t "a");
  Lru.add t "d" 4;
  Alcotest.(check int) "still at capacity" 3 (Lru.length t);
  Alcotest.(check (option int)) "b evicted (was LRU)" None (Lru.find t "b");
  Alcotest.(check (option int)) "a survived (promoted)" (Some 1) (Lru.find t "a");
  Alcotest.(check (option int)) "c survived" (Some 3) (Lru.find t "c");
  Alcotest.(check (option int)) "d cached" (Some 4) (Lru.find t "d")

let test_eviction_is_lru_order () =
  let t = Lru.create ~shards:1 ~capacity:2 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "c" 3;
  (* a was least-recent *)
  Alcotest.(check (option int)) "a evicted" None (Lru.find t "a");
  Lru.add t "d" 4;
  (* b was inserted before c and never touched *)
  Alcotest.(check (option int)) "b evicted" None (Lru.find t "b");
  Alcotest.(check (option int)) "c survived" (Some 3) (Lru.find t "c")

let test_update_in_place () =
  let t = Lru.create ~shards:1 ~capacity:2 () in
  Lru.add t "k" 1;
  Lru.add t "k" 2;
  Alcotest.(check int) "no duplicate entry" 1 (Lru.length t);
  Alcotest.(check (option int)) "latest value" (Some 2) (Lru.find t "k");
  (* overwriting also refreshes recency: re-adding "a" makes "b" the
     least-recent entry, so the next insert evicts "b", not "a" *)
  let t = Lru.create ~shards:1 ~capacity:2 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.add t "a" 9;
  Lru.add t "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find t "b");
  Alcotest.(check (option int)) "a survived overwrite" (Some 9) (Lru.find t "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Lru.find t "c")

let test_negative_values () =
  (* 'v may be an option: a cached None is a hit, distinct from absent *)
  let t = Lru.create ~shards:1 ~capacity:4 () in
  Lru.add t "nowhere" None;
  Lru.add t "somewhere" (Some 7);
  Alcotest.(check bool) "negative entry is a hit" true
    (Lru.find t "nowhere" = Some None);
  Alcotest.(check bool) "absent is a miss" true (Lru.find t "other" = None);
  Alcotest.(check bool) "positive entry" true
    (Lru.find t "somewhere" = Some (Some 7))

let test_eviction_counter () =
  Obs.reset ();
  let t = Lru.create ~shards:1 ~capacity:2 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Alcotest.(check int) "no evictions yet" 0
    (Obs.count (Obs.counter "serve.cache_evictions"));
  Lru.add t "c" 3;
  Lru.add t "d" 4;
  Alcotest.(check int) "two evictions" 2
    (Obs.count (Obs.counter "serve.cache_evictions"))

let test_shard_determinism () =
  let t = Lru.create ~shards:4 ~capacity:64 () in
  let t' = Lru.create ~shards:4 ~capacity:64 () in
  let keys = List.init 200 (Printf.sprintf "host%d.example.net") in
  List.iter
    (fun k ->
      let s = Lru.shard_of t k in
      Alcotest.(check bool) "in range" true (s >= 0 && s < Lru.shards t);
      Alcotest.(check int) "stable across calls" s (Lru.shard_of t k);
      Alcotest.(check int) "same for equal-config caches" s (Lru.shard_of t' k))
    keys;
  (* the hash must actually spread: 200 keys never land on one shard *)
  let used =
    List.sort_uniq compare (List.map (Lru.shard_of t) keys)
  in
  Alcotest.(check bool) "multiple shards used" true (List.length used > 1)

let test_sharded_capacity () =
  (* capacity is a total budget: 4 shards x 1 entry each *)
  let t = Lru.create ~shards:4 ~capacity:4 () in
  let keys = List.init 100 (Printf.sprintf "k%d") in
  List.iter (fun k -> Lru.add t k 0) keys;
  Alcotest.(check bool) "bounded by capacity" true (Lru.length t <= 4)

let test_clear () =
  let t = Lru.create ~shards:2 ~capacity:8 () in
  Lru.add t "a" 1;
  Lru.add t "b" 2;
  Lru.clear t;
  Alcotest.(check int) "empty" 0 (Lru.length t);
  Alcotest.(check (option int)) "gone" None (Lru.find t "a");
  (* usable after clear *)
  Lru.add t "a" 5;
  Alcotest.(check (option int)) "re-add works" (Some 5) (Lru.find t "a")

(* --- Serve --- *)

(* one learned pipeline + its snapshot model, shared across the cases
   below (learning the fixture once keeps the suite fast) *)
let fixture =
  lazy
    (let ds, _, _ = Helpers.iata_fixture () in
     let p = Pipeline.run ds in
     (p, Learned_io.of_pipeline p))

let known_hostnames =
  [
    "ae1.cr1.lhr1.example.net";
    "xe-0-0.cr2.fra2.example.net";
    "ge-1-2.cr3.sea3.example.net";
    "et-3-0.cr1.ord1.example.net";
  ]

let batch =
  known_hostnames
  @ [
      "ae1.cr1.lhr1.example.net" (* duplicate *);
      "AE1.CR1.LHR1.Example.NET." (* same key after normalization *);
      "nosuch.hostname.invalid";
      "unrelated.example.org";
    ]

let serve_counters () =
  ( Obs.count (Obs.counter "serve.cache_hits"),
    Obs.count (Obs.counter "serve.cache_misses"),
    Obs.count (Obs.counter "serve.cache_evictions"),
    Obs.count (Obs.counter "serve.applied") )

let test_matches_pipeline () =
  let p, model = Lazy.force fixture in
  let s = Serve.create model in
  List.iter
    (fun h ->
      let expect = Pipeline.geolocate p h in
      Alcotest.(check bool)
        (Printf.sprintf "%s served = in-process" h)
        true
        (Serve.geolocate s h = expect && Serve.geolocate_uncached s h = expect))
    batch;
  (* at least one fixture hostname must actually geolocate, or this
     test would vacuously compare None with None *)
  Alcotest.(check bool) "fixture geolocates" true
    (List.exists (fun h -> Serve.geolocate s h <> None) known_hostnames)

let test_negative_entry_cached () =
  Obs.reset ();
  let _, model = Lazy.force fixture in
  let s = Serve.create model in
  Alcotest.(check bool) "no answer" true
    (Serve.geolocate s "nosuch.hostname.invalid" = None);
  let hits_before = Obs.count (Obs.counter "serve.cache_hits") in
  Alcotest.(check bool) "still no answer" true
    (Serve.geolocate s "nosuch.hostname.invalid" = None);
  Alcotest.(check int) "second probe hit the negative entry"
    (hits_before + 1)
    (Obs.count (Obs.counter "serve.cache_hits"));
  Alcotest.(check int) "negative entry occupies the cache" 1 (Serve.cache_length s);
  (* satellite contract: cached negatives carry an explicit 0.0 score *)
  Alcotest.(check (float 0.0))
    "negative answer confidence is exactly 0.0" 0.0
    (Serve.geolocate_conf s "nosuch.hostname.invalid").Serve.confidence

let test_warm_cache_hits () =
  Obs.reset ();
  let _, model = Lazy.force fixture in
  let s = Serve.create model in
  ignore (Serve.apply_batch ~jobs:1 s batch);
  let hits_cold, misses_cold, _, _ = serve_counters () in
  (* the batch holds 6 distinct normalized keys: 4 known + 2 unknown;
     duplicate spellings of lhr1 are probed once *)
  Alcotest.(check int) "cold misses = distinct keys" 6 misses_cold;
  Alcotest.(check int) "cold hits" 0 hits_cold;
  ignore (Serve.apply_batch ~jobs:1 s batch);
  let hits_warm, misses_warm, _, _ = serve_counters () in
  Alcotest.(check int) "warm probes all hit" 6 (hits_warm - hits_cold);
  Alcotest.(check int) "no new misses when warm" misses_cold misses_warm

(* a served answer matches in-process on BOTH fields: the city and the
   (byte-identical) confidence score *)
let check_matches_inproc p h (answer : Serve.answer) =
  let city, confidence = Pipeline.geolocate_conf p h in
  Alcotest.(check bool) h true
    (answer.Serve.city = city && answer.Serve.confidence = confidence)

let test_batch_order_and_duplicates () =
  let p, model = Lazy.force fixture in
  let s = Serve.create model in
  let r = Serve.apply_batch ~jobs:1 s batch in
  Alcotest.(check (list string)) "input order preserved" batch (List.map fst r);
  List.iter (fun (h, answer) -> check_matches_inproc p h answer) r

let test_jobs_determinism () =
  let _, model = Lazy.force fixture in
  let run jobs =
    Obs.reset ();
    let s = Serve.create model in
    let cold = Serve.apply_batch ~jobs s batch in
    let warm = Serve.apply_batch ~jobs s batch in
    (cold, warm, serve_counters ())
  in
  let cold1, warm1, counters1 = run 1 in
  let cold4, warm4, counters4 = run 4 in
  Alcotest.(check bool) "cold results identical" true (cold1 = cold4);
  Alcotest.(check bool) "warm results identical" true (warm1 = warm4);
  let pp (h, m, e, a) = Printf.sprintf "hits=%d misses=%d evict=%d applied=%d" h m e a in
  Alcotest.(check string) "serve.* counters identical" (pp counters1) (pp counters4)

let test_tiny_cache_still_correct () =
  (* capacity 2 over the 8-hostname batch: constant eviction churn must
     never change answers, only counters *)
  let p, model = Lazy.force fixture in
  let s = Serve.create ~cache_capacity:2 ~cache_shards:1 model in
  for _ = 1 to 3 do
    List.iter
      (fun (h, answer) -> check_matches_inproc p h answer)
      (Serve.apply_batch ~jobs:2 s batch)
  done;
  Alcotest.(check bool) "cache stayed bounded" true (Serve.cache_length s <= 2)

let suites =
  [
    ( "serve-lru",
      [
        tc "capacity and eviction" test_capacity_eviction;
        tc "eviction follows recency order" test_eviction_is_lru_order;
        tc "overwrite updates in place" test_update_in_place;
        tc "negative values are hits" test_negative_values;
        tc "eviction counter" test_eviction_counter;
        tc "shard assignment is deterministic" test_shard_determinism;
        tc "capacity is a total budget" test_sharded_capacity;
        tc "clear" test_clear;
      ] );
    ( "serve",
      [
        tc "served = in-process geolocate" test_matches_pipeline;
        tc "negative entries are cached" test_negative_entry_cached;
        tc "warm cache hits" test_warm_cache_hits;
        tc "batch keeps order, dedupes work" test_batch_order_and_duplicates;
        tc "jobs=1 and jobs=4 identical" test_jobs_determinism;
        tc "tiny cache never changes answers" test_tiny_cache_still_correct;
      ] );
  ]
