module Obs = Hoiho_obs.Obs
module Pool = Hoiho_util.Pool

let tc = Helpers.tc

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_counter_basics () =
  let c = Obs.counter "test.obs.counter_basics" in
  Obs.set_counter c 0;
  Obs.incr c;
  Obs.add c 4;
  Alcotest.(check int) "incr + add" 5 (Obs.count c);
  (* registration is idempotent: the same name is the same cell *)
  Obs.incr (Obs.counter "test.obs.counter_basics");
  Alcotest.(check int) "same name same cell" 6 (Obs.count c)

let test_counter_parallel () =
  (* counters must be exact under the domain pool, not approximately
     right: 8 lanes x 4000 bumps, no lost updates *)
  let c = Obs.counter "test.obs.counter_parallel" in
  Obs.set_counter c 0;
  let pool = Pool.get 8 in
  Pool.parallel_iter pool
    (fun _ ->
      for _ = 1 to 1000 do
        Obs.incr c
      done)
    (List.init 32 Fun.id);
  Alcotest.(check int) "no lost updates" 32_000 (Obs.count c)

let test_gauge_high_water () =
  let g = Obs.gauge "test.obs.gauge" in
  Obs.observe_gauge g 3;
  Obs.observe_gauge g 9;
  Obs.observe_gauge g 5;
  Alcotest.(check int) "keeps the max" 9 (Obs.gauge_value g)

let test_histogram_stats () =
  let h = Obs.histogram "test.obs.histogram" in
  List.iter (Obs.observe h) (List.map float_of_int [ 5; 1; 2; 3; 4 ]);
  let snap = Obs.snapshot () in
  match Obs.find_histogram snap "test.obs.histogram" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
      Alcotest.(check int) "count" 5 s.Obs.n;
      Alcotest.(check (float 1e-9)) "p50" 3.0 s.Obs.p50;
      Alcotest.(check (float 1e-9)) "p95" 5.0 s.Obs.p95;
      Alcotest.(check (float 1e-9)) "p99" 5.0 s.Obs.p99;
      Alcotest.(check (float 1e-9)) "max" 5.0 s.Obs.max;
      Alcotest.(check (float 1e-9)) "total" 15.0 s.Obs.total

let test_time_span () =
  let h = Obs.histogram "test.obs.time_span" in
  let v = Obs.time h (fun () -> 42) in
  Alcotest.(check int) "returns the thunk's value" 42 v;
  (* a raising thunk still records its span *)
  (try Obs.time h (fun () -> failwith "boom") with Failure _ -> ());
  let snap = Obs.snapshot () in
  match Obs.find_histogram snap "test.obs.time_span" with
  | Some s ->
      Alcotest.(check int) "both spans recorded" 2 s.Obs.n;
      Alcotest.(check bool) "durations non-negative" true (s.Obs.p50 >= 0.0)
  | None -> Alcotest.fail "histogram missing"

let test_snapshot_sorted_and_json () =
  let _ = Obs.counter "test.obs.json_b" and _ = Obs.counter "test.obs.json_a" in
  let snap = Obs.snapshot () in
  let names = List.map fst snap.Obs.counters in
  Alcotest.(check bool) "counters sorted by name" true
    (names = List.sort compare names);
  let json = Obs.to_json snap in
  Alcotest.(check bool) "json has counters section" true
    (contains json "\"counters\"");
  Alcotest.(check bool) "json has histograms section" true
    (contains json "\"histograms\"");
  Alcotest.(check bool) "json names quoted" true
    (contains json "\"test.obs.json_a\"")

let test_find_counter () =
  let c = Obs.counter "test.obs.find" in
  Obs.set_counter c 7;
  let snap = Obs.snapshot () in
  Alcotest.(check (option int)) "present" (Some 7)
    (Obs.find_counter snap "test.obs.find");
  Alcotest.(check (option int)) "absent" None
    (Obs.find_counter snap "test.obs.nonexistent")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* the serving-boundary bugfix for periodic exposition: stop_emitter
   joins the emitter domain BEFORE the final write, and both the
   periodic and the end-of-run paths go through the same atomic
   write_openmetrics — so the final file is identical whether an
   emitter ran or not, and always carries the run's closing values *)
let test_emitter_final_write () =
  let c = Obs.counter "test.obs.emitter_final" in
  Obs.set_counter c 0;
  let with_om = Filename.temp_file "hoiho_obs" ".om" in
  let without_om = Filename.temp_file "hoiho_obs" ".om" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ with_om; without_om ])
    (fun () ->
      (* emitter path: bump the counter after the last periodic write
         could possibly have seen it, then stop — the final write must
         still capture the closing value *)
      let e = Obs.start_emitter ~period_s:0.05 ~path:with_om () in
      Unix.sleepf 0.12;
      Obs.add c 41;
      Obs.incr c;
      Obs.stop_emitter e;
      (* no-emitter path: the same single writer, called once *)
      Obs.write_openmetrics without_om;
      let a = read_file with_om and b = read_file without_om in
      Alcotest.(check string) "same final file with and without emitter" b a;
      Alcotest.(check bool) "file is complete (# EOF)" true
        (String.length a >= 6
        && String.sub a (String.length a - 6) 6 = "# EOF\n");
      Alcotest.(check bool) "closing counter value present" true
        (contains a "hoiho_test_obs_emitter_final_total 42"))

let suites =
  [
    ( "obs",
      [
        tc "counter basics" test_counter_basics;
        tc "counter exact under pool" test_counter_parallel;
        tc "gauge high-water" test_gauge_high_water;
        tc "histogram stats" test_histogram_stats;
        tc "time span" test_time_span;
        tc "snapshot sorted + json" test_snapshot_sorted_and_json;
        tc "find counter" test_find_counter;
        tc "emitter final write is the shared atomic writer"
          test_emitter_final_write;
      ] );
  ]
