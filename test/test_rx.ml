module Ast = Hoiho_rx.Ast
module Parse = Hoiho_rx.Parse
module Engine = Hoiho_rx.Engine

let tc = Helpers.tc

let exec_str re s =
  let t = Engine.compile_exn re in
  match Engine.exec t s with
  | None -> None
  | Some arr ->
      Some
        (String.concat ","
           (Array.to_list arr |> List.map (function None -> "_" | Some x -> x)))

let check_match re s expected () =
  Alcotest.(check (option string)) (re ^ " on " ^ s) expected (exec_str re s)

(* --- parser --- *)

let test_parse_errors () =
  let bad = [ "a{2,1}"; "("; ")"; "[abc"; "*a"; "a{"; "\\"; "a|*" ] in
  List.iter
    (fun re ->
      match Parse.parse re with
      | Ok _ -> Alcotest.failf "expected parse error for %S" re
      | Error _ -> ())
    bad

let test_parse_roundtrip () =
  let res =
    [
      {|^.+\.([a-z]{3})\d+\.([a-z]{2})\.[a-z]{3}\.zayo\.com$|};
      {|^[^\.]+\.([a-z]+)\d*\.([a-z]{2})\.alter\.net$|};
      {|^\d+\.[a-z]+\d+\.([a-z]{6})[a-z\d]++\.alter\.net$|};
      {|^(a|bb|ccc)x?$|};
      {|[a-z]{2,4}|};
      {|(?:ab|cd)+|};
    ]
  in
  List.iter
    (fun re ->
      let ast = Parse.parse_exn re in
      let printed = Ast.to_string ast in
      let ast2 = Parse.parse_exn printed in
      Alcotest.(check bool) (re ^ " roundtrip") true (Ast.equal ast ast2))
    res

let test_group_count () =
  let count re = Engine.group_count (Engine.compile_exn re) in
  Alcotest.(check int) "none" 0 (count "abc");
  Alcotest.(check int) "two" 2 (count {|(a)(b)|});
  Alcotest.(check int) "nested" 2 (count {|((a)b)|});
  Alcotest.(check int) "in alternation" 2 (count {|(a)|(b)|})

(* --- matching semantics --- *)

let test_literal = check_match "abc" "xabcy" (Some "")
let test_literal_fail = check_match "abc" "abd" None
let test_anchors_pin = check_match "^abc$" "abc" (Some "")
let test_anchor_start_fail = check_match "^bc$" "abc" None
let test_anchor_end_fail = check_match "^ab$" "abc" None
let test_dot = check_match "^a.c$" "axc" (Some "")
let test_dot_no_empty = check_match "^a.c$" "ac" None
let test_class = check_match "^[a-c]+$" "abcba" (Some "")
let test_class_fail = check_match "^[a-c]+$" "abd" None
let test_neg_class = check_match {|^[^\.]+$|} "ab-c" (Some "")
let test_neg_class_fail = check_match {|^[^\.]+$|} "a.c" None
let test_digit_escape = check_match {|^\d{3}$|} "123" (Some "")
let test_digit_escape_fail = check_match {|^\d{3}$|} "12x" None
let test_question = check_match {|^ab?c$|} "ac" (Some "")
let test_question2 = check_match {|^ab?c$|} "abc" (Some "")
let test_star_empty = check_match {|^a*$|} "" (Some "")
let test_plus_needs_one = check_match {|^a+$|} "" None
let test_bounded_rep = check_match {|^a{2,3}$|} "aa" (Some "")
let test_bounded_rep2 = check_match {|^a{2,3}$|} "aaaa" None
let test_open_rep = check_match {|^a{2,}$|} "aaaaa" (Some "")
let test_exact_rep_fail = check_match {|^[a-z]{3}$|} "ab" None

let test_alternation = check_match {|^(cat|dog)$|} "dog" (Some "dog")
let test_alternation_order = check_match {|^(a|ab)c$|} "abc" (Some "ab")
let test_nested_groups = check_match {|^((a+)(b+))$|} "aabb" (Some "aabb,aa,bb")
let test_unused_branch_group = check_match {|^(a)|(b)$|} "a" (Some "a,_")

let test_backtracking = check_match {|^(.+)\.([a-z]+)$|} "a.b.c" (Some "a.b,c")
let test_greedy = check_match {|^([a-z]+)([a-z])$|} "abcd" (Some "abc,d")

let test_possessive_blocks_backtrack = check_match {|^[a-z]++z$|} "abcz" None
let test_possessive_ok = check_match {|^[a-z]++\d$|} "abc1" (Some "")
let test_possessive_star = check_match {|^a*+b$|} "aaab" (Some "")

(* regression: a possessive repetition over a capture group must not
   take the group-stripping fast path — the group records the last
   consumed char (possessiveness degrades to greedy, captures intact) *)
let test_possessive_group_captures = check_match {|^([a-z])++$|} "abc" (Some "c")
let test_possessive_group_captures2 = check_match {|^([a-z])++\d$|} "abc1" (Some "c")

let test_possessive_nested_group_captures =
  check_match {|^(([a-z])([a-z]))++$|} "abcd" (Some "cd,c,d")

let test_unanchored_search = check_match {|b+|} "aabbaa" (Some "")
let test_empty_pattern = check_match "" "anything" (Some "")

(* the paper's published regexes (figure 7) *)
let paper_cases =
  [
    ( {|^.+\.([a-z]{3})\d+\.([a-z]{2})\.[a-z]{3}\.zayo\.com$|},
      "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com", Some "lhr,uk" );
    ( {|^.+\.([a-z]+)\d*\.level3\.net$|},
      "ae-2-52.edge1.brussels1.level3.net", Some "brussels" );
    ( {|^.+\.([a-z]{6})\d+\.([a-z]{2})\.[a-z]{2}\.gin\.ntt\.net$|},
      "xe-0-0-28-0.a02.snjsca04.us.ce.gin.ntt.net", Some "snjsca,us" );
    ( {|^.+\.([a-z]{4})\d+-([a-z]{2})\.([a-z]{2})\.windstream\.net$|},
      "ae4-0.agr01.ashb1-va.va.windstream.net", Some "ashb,va,va" );
    ( {|^[^\.]+\.(\d+[a-z]+)\.([a-z]{2})\.[a-z]+\.comcast\.net$|},
      "be-107-pe12.111eighthave.ny.ibone.comcast.net", Some "111eighthave,ny" );
    ( {|^[^\.]+\.[^\.]+\.([a-z]{6})[a-z\d]+-[a-z]+\d+-[^\.]+\.alter\.net$|},
      "0.af0.rcmdva83-mse01-a-ie1.alter.net", Some "rcmdva" );
  ]

let test_paper_regexes () =
  List.iter
    (fun (re, s, expected) ->
      Alcotest.(check (option string)) (re ^ " on " ^ s) expected (exec_str re s))
    paper_cases

let test_paper_negative () =
  (* DRoP's simplistic 360.net rule (figure 2) should not match deeper names *)
  let re = {|^([a-z]+)-[0-9]+\.360\.net$|} in
  Alcotest.(check (option string)) "no match" None
    (exec_str re "ae0.380.xiamen-5.360.net")

let test_compile_string_error () =
  match Engine.compile_string "a{" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_source_roundtrip () =
  let t = Engine.compile_exn {|^([a-z]{3})\d+$|} in
  let t2 = Engine.compile_exn (Engine.source t) in
  Alcotest.(check (option string)) "same behavior" (Engine.exec_groups t "abc12" |> Option.map (String.concat ","))
    (Engine.exec_groups t2 "abc12" |> Option.map (String.concat ","))

(* --- prefilter --- *)

module Prefilter = Hoiho_rx.Prefilter

let pf re = Engine.prefilter (Engine.compile_exn re)

let test_prefilter_analysis () =
  let check name re (anchored, required, offset) =
    let p = pf re in
    Alcotest.(check (triple bool string (option int)))
      name (anchored, required, offset)
      (p.Prefilter.anchored, p.Prefilter.required, p.Prefilter.offset)
  in
  check "anchored literal" {|^abc$|} (true, "abc", Some 0);
  check "unanchored literal" {|abc|} (false, "abc", Some 0);
  check "longest run wins"
    {|^.+\.([a-z]{3})\d+\.([a-z]{2})\.[a-z]{3}\.zayo\.com$|}
    (true, ".zayo.com", None);
  check "fixed rep unrolled" {|^a{3}b$|} (true, "aaab", Some 0);
  check "offset after fixed-width atoms" {|^[a-z]{2}-ix$|} (true, "-ix", Some 2);
  check "length tie prefers leftmost" {|^ab(c|d)ef$|} (true, "ab", Some 0);
  check "no required literal" {|^([a-z]{3})\d+$|} (true, "", None)

let test_prefilter_shapes () =
  (* alternation: "core" is common to both branches and must survive as
     a scannable literal (required or extra) *)
  let p = pf {|^ae\d\.(core1|core2)\.example\.com$|} in
  let lits = p.Prefilter.required :: p.Prefilter.extras in
  Alcotest.(check bool) "alt common literal extracted" true
    (List.exists (fun l -> Prefilter.contains ~needle:"core" l) lits);
  (* needs_digit: set by a mandatory digit-only atom, not an optional one *)
  Alcotest.(check bool) "mandatory digit flagged" true
    (pf {|^[a-z]+\d{2}\.example$|}).Prefilter.needs_digit;
  Alcotest.(check bool) "optional digit not flagged" false
    (pf {|^[a-z]+\d*$|}).Prefilter.needs_digit;
  Alcotest.(check bool) "digit in every alt branch flagged" true
    (pf {|^(xe\d|ge\d\d)\.example$|}).Prefilter.needs_digit;
  (* tail: a $-terminated pattern pins its last literal at a fixed
     distance from the subject end *)
  Alcotest.(check (option (pair string int)))
    "tail at end"
    (Some (".zayo.com", 0))
    (pf {|^.+\.zayo\.com$|}).Prefilter.tail;
  Alcotest.(check (option (pair string int)))
    "tail before fixed-width atoms"
    (Some ("-ge", 2))
    (pf {|^.+-ge[a-z]{2}$|}).Prefilter.tail;
  (* no $ means no tail pin *)
  Alcotest.(check (option (pair string int)))
    "unanchored end has no tail" None
    (pf {|^.+\.zayo\.com|}).Prefilter.tail

let test_prefilter_find () =
  Alcotest.(check int) "found" 2 (Prefilter.find ~needle:"cd" "abcdcd" 0);
  Alcotest.(check int) "from start offset" 4 (Prefilter.find ~needle:"cd" "abcdcd" 3);
  Alcotest.(check int) "missing" (-1) (Prefilter.find ~needle:"xy" "abcd" 0);
  Alcotest.(check int) "at end" 2 (Prefilter.find ~needle:"cd" "abcd" 0);
  Alcotest.(check bool) "contains" true
    (Prefilter.contains ~needle:"zayo" "a.zayo.com");
  Alcotest.(check bool) "matches_at hit" true
    (Prefilter.matches_at ~needle:"zayo" "a.zayo.com" 2);
  Alcotest.(check bool) "matches_at miss" false
    (Prefilter.matches_at ~needle:"zayo" "a.zayo.com" 3);
  Alcotest.(check bool) "matches_at overrun" false
    (Prefilter.matches_at ~needle:"zayo" "a.zay" 2)

(* the prefiltered search must be indistinguishable from the exhaustive
   one: same match decision, same match position, same captures *)
let prop_prefilter_equiv (ast, input) =
  let t = Engine.compile ast in
  let a = Engine.exec t input in
  let b = Engine.exec_unfiltered t input in
  if a = b then true
  else
    QCheck.Test.fail_reportf "prefiltered and unfiltered disagree: %s on %S"
      (Ast.to_string ast) input

let arb_pf =
  QCheck.make
    ~print:(fun (ast, s) -> Printf.sprintf "%s on %S" (Ast.to_string ast) s)
    QCheck.Gen.(pair Test_props.gen_ast Test_props.gen_input)

(* embed each pattern's own required literal in the input so the
   occurrence-seeded scan path is exercised, not just the early bail *)
let arb_pf_seeded =
  QCheck.make
    ~print:(fun (ast, (s1, s2)) ->
      Printf.sprintf "%s on %S ^ required ^ %S" (Ast.to_string ast) s1 s2)
    QCheck.Gen.(pair Test_props.gen_ast (pair Test_props.gen_input Test_props.gen_input))

let prop_prefilter_equiv_seeded (ast, (s1, s2)) =
  let t = Engine.compile ast in
  let input = s1 ^ (Engine.prefilter t).Prefilter.required ^ s2 in
  prop_prefilter_equiv (ast, input)

(* capture agreement, group by group — not just the match decision —
   over patterns heavy in possessive repetitions and nested groups (the
   match/no-match equivalence alone would not notice a capture silently
   dropped to None on one path) *)
let show_caps = function
  | None -> "<no match>"
  | Some arr ->
      String.concat ","
        (Array.to_list arr |> List.map (function None -> "_" | Some x -> x))

let prop_capture_equiv (ast, (s1, s2)) =
  let t = Engine.compile ast in
  let input = s1 ^ (Engine.prefilter t).Prefilter.required ^ s2 in
  let a = Engine.exec t input in
  let b = Engine.exec_unfiltered t input in
  if a = b then true
  else
    QCheck.Test.fail_reportf
      "captures disagree: %s on %S\n  prefiltered: %s\n  unfiltered:  %s"
      (Ast.to_string ast) input (show_caps a) (show_caps b)

let arb_caps =
  QCheck.make
    ~print:(fun (ast, (s1, s2)) ->
      Printf.sprintf "%s on %S ^ required ^ %S" (Ast.to_string ast) s1 s2)
    QCheck.Gen.(
      pair Test_props.gen_ast_caps (pair Test_props.gen_input Test_props.gen_input))

(* --- Nfavm --- *)

module Nfavm = Hoiho_rx.Nfavm

let nfa_matches re s =
  Nfavm.matches (Nfavm.compile (Parse.parse_exn re)) s

let test_nfa_basics () =
  Alcotest.(check bool) "literal" true (nfa_matches "abc" "xabcy");
  Alcotest.(check bool) "literal fail" false (nfa_matches "abc" "abx");
  Alcotest.(check bool) "anchored" true (nfa_matches "^ab$" "ab");
  Alcotest.(check bool) "anchored fail" false (nfa_matches "^ab$" "xab");
  Alcotest.(check bool) "class rep" true (nfa_matches {|^[a-z]{3}\d+$|} "lhr15");
  Alcotest.(check bool) "alternation" true (nfa_matches "^(cat|dog)$" "dog");
  Alcotest.(check bool) "star empty" true (nfa_matches "^a*$" "");
  Alcotest.(check bool) "bounded" false (nfa_matches "^a{2,3}$" "aaaa")

let test_nfa_paper_regex () =
  Alcotest.(check bool) "zayo regex" true
    (nfa_matches {|^.+\.([a-z]{3})\d+\.([a-z]{2})\.[a-z]{3}\.zayo\.com$|}
       "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com")

let test_nfa_rejects_possessive () =
  Alcotest.(check bool) "unsupported" false
    (Nfavm.supported (Parse.parse_exn {|^[a-z]++$|}));
  Alcotest.check_raises "compile raises"
    (Invalid_argument "Nfavm.compile: possessive quantifiers are unsupported")
    (fun () -> ignore (Nfavm.compile (Parse.parse_exn {|^[a-z]++$|})))

let test_nfa_no_blowup () =
  (* the classic backtracking bomb runs in linear time on the NFA *)
  let re = Parse.parse_exn "^(a|a)(a|a)(a|a)(a|a)(a|a)(a|a)(a|a)(a|a)(a|a)(a|a)b$" in
  let t = Nfavm.compile re in
  Alcotest.(check bool) "mismatch detected quickly" false
    (Nfavm.matches t "aaaaaaaaaac");
  Alcotest.(check bool) "program compiled" true (Nfavm.program_size t > 10)

let suites =
  [
    ( "rx.nfavm",
      [
        tc "basics" test_nfa_basics;
        tc "paper regex" test_nfa_paper_regex;
        tc "rejects possessive" test_nfa_rejects_possessive;
        tc "no blowup" test_nfa_no_blowup;
      ] );
    ( "rx.parse",
      [
        tc "errors" test_parse_errors;
        tc "roundtrip" test_parse_roundtrip;
        tc "group count" test_group_count;
        tc "compile_string error" test_compile_string_error;
        tc "source roundtrip" test_source_roundtrip;
      ] );
    ( "rx.match",
      [
        tc "literal" test_literal;
        tc "literal fail" test_literal_fail;
        tc "anchors pin" test_anchors_pin;
        tc "anchor start fail" test_anchor_start_fail;
        tc "anchor end fail" test_anchor_end_fail;
        tc "dot" test_dot;
        tc "dot needs char" test_dot_no_empty;
        tc "class" test_class;
        tc "class fail" test_class_fail;
        tc "negated class" test_neg_class;
        tc "negated class fail" test_neg_class_fail;
        tc "digit escape" test_digit_escape;
        tc "digit escape fail" test_digit_escape_fail;
        tc "optional absent" test_question;
        tc "optional present" test_question2;
        tc "star matches empty" test_star_empty;
        tc "plus needs one" test_plus_needs_one;
        tc "bounded rep min" test_bounded_rep;
        tc "bounded rep max" test_bounded_rep2;
        tc "open rep" test_open_rep;
        tc "exact rep fail" test_exact_rep_fail;
        tc "alternation" test_alternation;
        tc "alternation order" test_alternation_order;
        tc "nested groups" test_nested_groups;
        tc "unused branch group" test_unused_branch_group;
        tc "backtracking" test_backtracking;
        tc "greedy" test_greedy;
        tc "possessive blocks backtrack" test_possessive_blocks_backtrack;
        tc "possessive ok" test_possessive_ok;
        tc "possessive star" test_possessive_star;
        tc "possessive group captures" test_possessive_group_captures;
        tc "possessive group captures before tail" test_possessive_group_captures2;
        tc "possessive nested group captures" test_possessive_nested_group_captures;
        tc "unanchored search" test_unanchored_search;
        tc "empty pattern" test_empty_pattern;
      ] );
    ( "rx.paper",
      [ tc "figure 7 regexes" test_paper_regexes; tc "figure 2 negative" test_paper_negative ] );
    ( "rx.prefilter",
      [
        tc "literal analysis" test_prefilter_analysis;
        tc "plan shapes" test_prefilter_shapes;
        tc "substring scan" test_prefilter_find;
        Test_props.q ~count:1200 "prefiltered exec = unfiltered exec" arb_pf
          prop_prefilter_equiv;
        Test_props.q ~count:600 "equivalence with embedded literal" arb_pf_seeded
          prop_prefilter_equiv_seeded;
        Test_props.q ~count:1000 "captures agree (possessive + nested groups)"
          arb_caps prop_capture_equiv;
      ] );
  ]
