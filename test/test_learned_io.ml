(* Snapshot codec: QCheck round-trip (encode ∘ decode = id over
   generated models carrying generated Learned.t overlays) and
   table-driven strict-decode failures — truncation, unknown version,
   wrong field types must each yield a typed error, never an
   exception. *)

module Learned_io = Hoiho.Learned_io
module Learned = Hoiho.Learned
module Plan = Hoiho.Plan
module Ncsel = Hoiho.Ncsel
module City = Hoiho_geodb.City
module Json = Hoiho_util.Json

open QCheck

(* --- generators --- *)

let gen_lower n = Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.return n)
let gen_word = Gen.(int_range 3 8 >>= gen_lower)

let gen_city =
  Gen.(
    map
      (fun ((name, cc, state, lat, lon), (pop, iata, icao, locode, clli, fac)) ->
        {
          City.name;
          cc;
          state;
          coord = Hoiho_geo.Coord.make ~lat ~lon;
          population = pop;
          iata;
          icao;
          locode;
          clli;
          facilities = fac;
        })
      (tup2
         (tup5
            (map (String.concat " ") (list_size (int_range 1 2) gen_word))
            (gen_lower 2)
            (opt (gen_lower 2))
            (float_range (-89.0) 89.0)
            (float_range (-179.0) 179.0))
         (tup6 nat
            (list_size (int_range 0 2) (gen_lower 3))
            (list_size (int_range 0 2) (gen_lower 4))
            (opt (gen_lower 3))
            (opt (gen_lower 6))
            (list_size (int_range 0 2) (tup2 gen_word gen_word)))))

let gen_hint_type =
  Gen.oneofl
    [ Plan.Iata; Plan.Icao; Plan.Locode; Plan.Clli; Plan.CityName; Plan.FacilityAddr ]

let gen_entry =
  Gen.(
    map (fun (hint, hint_type, city, tp, fp, collides) ->
        { Learned.hint; hint_type; city; tp; fp; collides })
      (tup6 gen_word gen_hint_type gen_city (int_bound 50) (int_bound 50) bool))

let gen_learned =
  Gen.(
    map (fun entries ->
        let t = Learned.empty () in
        List.iter (Learned.add t) entries;
        t)
      (list_size (int_range 0 8) gen_entry))

let gen_elem =
  Gen.oneofl
    [ Plan.Hint Plan.Iata; Plan.Hint Plan.CityName; Plan.Hint Plan.Clli;
      Plan.ClliA; Plan.ClliB; Plan.Cc; Plan.State ]

(* a compilable source whose capture-group count matches the plan *)
let gen_cand =
  Gen.(
    map2 (fun plan suffix ->
        let caps =
          String.concat {|\-|} (List.map (fun _ -> {|([a-z]+)|}) plan)
        in
        let source =
          Printf.sprintf {|^%s%s\.%s\.net$|} (if plan = [] then "r" else "") caps
            suffix
        in
        {
          Learned_io.source;
          plan;
          regex = Hoiho_rx.Engine.compile_exn source;
        })
      (list_size (int_range 0 3) gen_elem)
      gen_word)

let gen_stats =
  Gen.(
    map (fun (tp, fp, fn, unk, agreement) ->
        {
          Hoiho.Confidence.tp;
          fp;
          fn;
          unk;
          (* a representable-in-JSON fraction, like the real computation
             produces (agree/both) *)
          rtt_agreement = float_of_int agreement /. 16.0;
        })
      (tup5 (int_bound 500) (int_bound 100) (int_bound 100) (int_bound 100)
         (int_bound 16)))

let gen_suffix_model =
  Gen.(
    map (fun (suffix, classification, cands, learned, stats) ->
        { Learned_io.suffix; classification; cands; learned; stats })
      (tup5
         (map2 (Printf.sprintf "%s.%s") gen_word (oneofl [ "net"; "com"; "org" ]))
         (oneofl [ Ncsel.Good; Ncsel.Promising; Ncsel.Poor ])
         (list_size (int_range 0 3) gen_cand)
         gen_learned gen_stats))

let gen_model =
  Gen.(
    map (fun (dict_cities, suffixes, metric_counts) ->
        (* decode rejects duplicate suffixes (a corrupt snapshot), so a
           valid generated model must carry each suffix once *)
        let suffixes =
          let seen = Hashtbl.create 8 in
          List.filter
            (fun (sm : Learned_io.suffix_model) ->
              if Hashtbl.mem seen sm.Learned_io.suffix then false
              else begin
                Hashtbl.add seen sm.Learned_io.suffix ();
                true
              end)
            suffixes
        in
        {
          Learned_io.dictionary =
            (match dict_cities with
            | None -> Learned_io.Default
            | Some cities -> Learned_io.Embedded cities);
          suffixes;
          (* what save-model stores: the profile derived from the
             suffixes' stats (and half the time None, like a pre-v3
             snapshot), so round-trips cover both arms of the option *)
          calibration =
            (if List.length metric_counts mod 2 = 0 then
               Some
                 (Hoiho.Confidence.expected_profile
                    (List.map
                       (fun (sm : Learned_io.suffix_model) ->
                         sm.Learned_io.stats)
                       suffixes))
             else None);
          metrics =
            Json.Obj
              [
                ( "counters",
                  Json.Obj
                    (List.mapi
                       (fun i n -> (Printf.sprintf "c%d" i, Json.Int n))
                       metric_counts) );
              ];
        })
      (tup3
         (opt (list_size (int_range 0 4) gen_city))
         (list_size (int_range 0 3) gen_suffix_model)
         (list_size (int_range 0 3) nat)))

let arb_model = make ~print:(fun m -> Learned_io.encode m) gen_model

(* --- properties --- *)

let roundtrip =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:1000 ~name:"encode o decode = id" arb_model (fun m ->
         match Learned_io.decode (Learned_io.encode m) with
         | Ok m' -> Learned_io.equal m m'
         | Error e -> Test.fail_report (Learned_io.error_to_string e)))

let encode_stable =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:200 ~name:"encode is stable through a round-trip" arb_model
       (fun m ->
         match Learned_io.decode (Learned_io.encode m) with
         | Ok m' -> String.equal (Learned_io.encode m) (Learned_io.encode m')
         | Error e -> Test.fail_report (Learned_io.error_to_string e)))

(* --- strict decode failures --- *)

let sample_model () =
  {
    Learned_io.dictionary = Learned_io.Default;
    suffixes =
      [
        {
          Learned_io.suffix = "example.net";
          classification = Ncsel.Good;
          cands =
            [
              {
                Learned_io.source = {|^([a-z]+)\.example\.net$|};
                plan = [ Plan.Hint Plan.Iata ];
                regex = Hoiho_rx.Engine.compile_exn {|^([a-z]+)\.example\.net$|};
              };
            ];
          learned = Learned.empty ();
          stats =
            {
              Hoiho.Confidence.tp = 12;
              fp = 1;
              fn = 0;
              unk = 2;
              rtt_agreement = 0.75;
            };
        };
      ];
    calibration = None;
    metrics = Json.Obj [];
  }

let is_syntax = function Error (Learned_io.Syntax _) -> true | _ -> false
let is_schema = function Error (Learned_io.Schema _) -> true | _ -> false

let set_field name v = function
  | Json.Obj fields ->
      Json.Obj (List.map (fun (k, x) -> if k = name then (k, v) else (k, x)) fields)
  | j -> j

let reencode patch =
  let enc = Learned_io.encode (sample_model ()) in
  match Json.parse enc with
  | Error m -> Alcotest.failf "sample did not reparse: %s" m
  | Ok j -> Json.to_string (patch j)

let decode_failures () =
  let enc = Learned_io.encode (sample_model ()) in
  (* sanity: the sample decodes *)
  (match Learned_io.decode enc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sample must decode: %s" (Learned_io.error_to_string e));
  let cases =
    [
      ("empty input", "", is_syntax);
      ("truncated file", String.sub enc 0 (String.length enc / 2), is_syntax);
      ("truncated mid-token", String.sub enc 0 3, is_syntax);
      ("trailing garbage", enc ^ "xx", is_syntax);
      ("not json at all", "not a model", is_syntax);
      ( "unknown format version",
        reencode (set_field "format_version" (Json.Int 999)),
        function
        | Error (Learned_io.Unknown_version 999) -> true
        | _ -> false );
      ( "version of wrong type",
        reencode (set_field "format_version" (Json.String "one")),
        is_schema );
      ("missing version", {|{"suffixes":[]}|}, is_schema);
      ("suffixes of wrong type", reencode (set_field "suffixes" (Json.Int 3)), is_schema);
      ( "dictionary of wrong type",
        reencode (set_field "dictionary" (Json.List [])),
        is_schema );
      ( "bad provenance",
        reencode
          (set_field "dictionary"
             (Json.Obj [ ("provenance", Json.String "martian") ])),
        is_schema );
      ("document is a list", "[1,2,3]", is_schema);
      ("document is a string", {|"hoiho"|}, is_schema);
    ]
  in
  List.iter
    (fun (name, input, ok) ->
      let result = Learned_io.decode input in
      if not (ok result) then
        Alcotest.failf "%s: expected a matching typed error, got %s" name
          (match result with
          | Ok _ -> "Ok _"
          | Error e -> Learned_io.error_to_string e))
    cases

let patch_suffix patch json =
  match Json.member "suffixes" json with
  | Some (Json.List [ sm ]) -> set_field "suffixes" (Json.List [ patch sm ]) json
  | _ -> Alcotest.fail "sample shape changed"

let patch_suffix_list patch json =
  match Json.member "suffixes" json with
  | Some (Json.List sms) -> set_field "suffixes" (Json.List (patch sms)) json
  | _ -> Alcotest.fail "sample shape changed"

let nested_failures () =
  let cases =
    [
      ( "uncompilable regex source",
        patch_suffix (fun sm ->
            set_field "cands"
              (Json.List
                 [
                   Json.Obj
                     [
                       ("source", Json.String "^([a-z]+");
                       ("plan", Json.List [ Json.String "iata" ]);
                     ];
                 ])
              sm) );
      ( "plan/group-count mismatch",
        patch_suffix (fun sm ->
            set_field "cands"
              (Json.List
                 [
                   Json.Obj
                     [
                       ("source", Json.String {|^([a-z]+)\.x\.net$|});
                       ("plan", Json.List []);
                     ];
                 ])
              sm) );
      ( "unknown plan element",
        patch_suffix (fun sm ->
            set_field "cands"
              (Json.List
                 [
                   Json.Obj
                     [
                       ("source", Json.String {|^([a-z]+)\.x\.net$|});
                       ("plan", Json.List [ Json.String "postcode" ]);
                     ];
                 ])
              sm) );
      ( "unknown classification",
        patch_suffix (set_field "classification" (Json.String "stellar")) );
      ( "learned entry of wrong type",
        patch_suffix (set_field "learned" (Json.List [ Json.Int 5 ])) );
      ("suffix of wrong type", patch_suffix (set_field "suffix" (Json.Int 5))) ;
      ("stats of wrong type", patch_suffix (set_field "stats" (Json.Int 5)));
      ( "rtt_agreement out of range",
        patch_suffix (fun sm ->
            set_field "stats"
              (Json.Obj
                 [
                   ("tp", Json.Int 1);
                   ("fp", Json.Int 0);
                   ("fn", Json.Int 0);
                   ("unk", Json.Int 0);
                   ("rtt_agreement", Json.Float 1.5);
                 ])
              sm) );
    ]
  in
  List.iter
    (fun (name, patch) ->
      match Learned_io.decode (reencode patch) with
      | Error (Learned_io.Schema _) -> ()
      | Error e ->
          Alcotest.failf "%s: expected Schema error, got %s" name
            (Learned_io.error_to_string e)
      | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" name)
    cases

(* the serving-boundary bugfix: a snapshot carrying the same suffix
   twice used to decode fine and then be silently first-wins-indexed by
   Serve.create; it must now be rejected at decode with a typed Schema
   error naming the duplicate slot *)
let duplicate_suffix_rejected () =
  let input =
    reencode
      (patch_suffix_list (function
        | [ sm ] -> [ sm; sm ]
        | _ -> Alcotest.fail "sample shape changed"))
  in
  match Learned_io.decode input with
  | Error (Learned_io.Schema { path; expected; got }) ->
      Alcotest.(check string) "path names the slot" "$.suffixes[1].suffix" path;
      Alcotest.(check string) "expected" "unique suffix" expected;
      Alcotest.(check bool) "got names the suffix" true
        (got = Printf.sprintf "duplicate %S" "example.net")
  | Error e ->
      Alcotest.failf "expected Schema, got %s" (Learned_io.error_to_string e)
  | Ok _ -> Alcotest.fail "duplicate suffix decoded successfully"

(* format evolution: a v1 snapshot (no stats block) must still decode,
   landing on the neutral stats — old saved models keep serving after
   the v2 bump *)
let v1_decodes_with_neutral_stats () =
  let drop_field name = function
    | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> name) fields)
    | j -> j
  in
  let input =
    reencode (fun j ->
        set_field "format_version" (Json.Int 1) j
        |> patch_suffix (drop_field "stats"))
  in
  match Learned_io.decode input with
  | Ok m -> (
      match m.Learned_io.suffixes with
      | [ sm ] ->
          Alcotest.(check bool)
            "v1 suffix model carries the neutral stats" true
            (sm.Learned_io.stats = Hoiho.Confidence.no_stats)
      | _ -> Alcotest.fail "sample shape changed")
  | Error e ->
      Alcotest.failf "v1 snapshot must decode: %s"
        (Learned_io.error_to_string e)

(* ...and a v2 snapshot missing its stats block must NOT decode: the
   field is required at the current version *)
let v2_requires_stats () =
  let drop_field name = function
    | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> name) fields)
    | j -> j
  in
  match Learned_io.decode (reencode (patch_suffix (drop_field "stats"))) with
  | Error (Learned_io.Schema _) -> ()
  | Error e ->
      Alcotest.failf "expected Schema, got %s" (Learned_io.error_to_string e)
  | Ok _ -> Alcotest.fail "v2 snapshot without stats decoded"

let load_missing () =
  match Learned_io.load "no/such/model.hoiho.json" with
  | Error (Learned_io.Syntax _) -> ()
  | Error e -> Alcotest.failf "expected Syntax, got %s" (Learned_io.error_to_string e)
  | Ok _ -> Alcotest.fail "load of a missing file succeeded"

let save_load_roundtrip () =
  let m = sample_model () in
  let path = Filename.temp_file "hoiho_model" ".hoiho.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Learned_io.save path m;
      match Learned_io.load path with
      | Ok m' -> Alcotest.(check bool) "equal" true (Learned_io.equal m m')
      | Error e -> Alcotest.failf "load failed: %s" (Learned_io.error_to_string e))

(* --- json primitive round-trip (the codec's foundation) --- *)

let gen_json =
  let open Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
               map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 12));
             ]
         else
           oneof
             [
               map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun kvs ->
                   Json.Obj
                     (List.mapi (fun i (k, v) -> (Printf.sprintf "%d%s" i k, v)) kvs))
                 (list_size (int_bound 4)
                    (tup2 (string_size ~gen:printable (int_bound 6)) (self (n / 2))));
             ])

let json_roundtrip =
  QCheck_alcotest.to_alcotest
    (Test.make ~count:1000 ~name:"json parse o to_string = id"
       (make ~print:Json.to_string gen_json)
       (fun j ->
         match Json.parse (Json.to_string j) with
         | Ok j' -> Json.equal j j'
         | Error m -> Test.fail_report m))

let suites =
  [
    ( "learned_io",
      [
        Alcotest.test_case "decode failures are typed" `Quick decode_failures;
        Alcotest.test_case "nested schema failures" `Quick nested_failures;
        Alcotest.test_case "duplicate suffix rejected" `Quick
          duplicate_suffix_rejected;
        Alcotest.test_case "v1 decodes with neutral stats" `Quick
          v1_decodes_with_neutral_stats;
        Alcotest.test_case "v2 requires the stats block" `Quick
          v2_requires_stats;
        Alcotest.test_case "load of missing file" `Quick load_missing;
        Alcotest.test_case "save/load round-trip" `Quick save_load_roundtrip;
        roundtrip;
        encode_stable;
        json_roundtrip;
      ] );
  ]
