(* Span tracing (DESIGN.md §10): nesting and attribute mechanics, the
   drop-newest ring contract, both export formats (Chrome trace-event
   JSON validated by the repo's own strict parser; OpenMetrics text),
   the cross-jobs determinism contract — canonical span trees identical
   at jobs=1 and jobs=4 — and never-raise with tracing ENABLED under
   the same adversarial hostname generator the chaos/props suites use. *)

module Trace = Hoiho_obs.Trace
module Obs = Hoiho_obs.Obs
module Json = Hoiho_util.Json
module Pipeline = Hoiho.Pipeline
module Learned_io = Hoiho.Learned_io
module Serve = Hoiho_serve.Serve

let tc = Helpers.tc

let q ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* scope the process-wide collector to one test case: fresh (optionally
   resized) collector in, disabled and emptied out — tracing must never
   leak into the other suites *)
let with_tracing ?shards ?capacity f =
  Trace.set_enabled false;
  Trace.configure ?shards ?capacity ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.configure ())
    f

let find_span name spans =
  match List.find_opt (fun (s : Trace.span) -> s.Trace.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

(* --- mechanics --- *)

let test_nesting_and_attrs () =
  with_tracing (fun () ->
      let v =
        Trace.with_span "outer" ~attrs:[ ("k", "v") ] (fun () ->
            Trace.with_span "inner" (fun () ->
                Trace.add_attr "x" "1";
                42))
      in
      Alcotest.(check int) "with_span is transparent" 42 v;
      let spans = Trace.spans () in
      Alcotest.(check int) "two spans" 2 (List.length spans);
      let outer = find_span "outer" spans and inner = find_span "inner" spans in
      Alcotest.(check (option int)) "outer is a root" None outer.Trace.parent;
      Alcotest.(check (option int))
        "inner nests under outer" (Some outer.Trace.id) inner.Trace.parent;
      Alcotest.(check (list (pair string string)))
        "outer attrs" [ ("k", "v") ] outer.Trace.attrs;
      Alcotest.(check (list (pair string string)))
        "add_attr lands on innermost" [ ("x", "1") ] inner.Trace.attrs;
      List.iter
        (fun (s : Trace.span) ->
          Alcotest.(check bool)
            "monotonic interval" true
            (Int64.compare s.Trace.t_end_ns s.Trace.t_start_ns >= 0))
        spans)

let test_disabled_records_nothing () =
  Trace.set_enabled false;
  Trace.configure ();
  let v = Trace.with_span "ghost" (fun () -> Trace.add_attr "a" "b"; 7) in
  Alcotest.(check int) "still transparent" 7 v;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.spans ()))

let test_span_survives_raise () =
  with_tracing (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      let _ = find_span "boom" (Trace.spans ()) in
      ())

let test_explicit_parent () =
  with_tracing (fun () ->
      let parent = ref Trace.Root in
      Trace.with_span "root" (fun () -> parent := Trace.fanout_parent ());
      (* simulate a pool domain: no live stack, explicit parent *)
      Trace.with_span ~parent:!parent "child" (fun () -> ());
      let spans = Trace.spans () in
      let root = find_span "root" spans and child = find_span "child" spans in
      Alcotest.(check (option int))
        "fanout parent wires the tree" (Some root.Trace.id) child.Trace.parent)

let test_ring_drops_newest () =
  with_tracing ~shards:1 ~capacity:4 (fun () ->
      for i = 1 to 10 do
        Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      let spans = Trace.spans () in
      Alcotest.(check int) "ring holds capacity" 4 (List.length spans);
      Alcotest.(check int) "rest counted as dropped" 6 (Trace.dropped ());
      (* drop-newest: the FIRST completed spans survive, so parents
         (which complete after their children) are the ones at risk —
         and the determinism contract requires dropped = 0 *)
      Alcotest.(check string) "oldest survive" "s1" (find_span "s1" spans).Trace.name)

let test_sampling_is_deterministic () =
  let subjects = List.init 1000 (Printf.sprintf "host%d.example.net") in
  let a = List.map Trace.sampled subjects in
  let b = List.map Trace.sampled subjects in
  Alcotest.(check (list bool)) "same subjects, same picks" a b;
  let picked = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "1-in-64 ballpark (picked %d/1000)" picked)
    true
    (picked > 0 && picked < 100)

(* --- exporters --- *)

let test_chrome_json_parses () =
  with_tracing (fun () ->
      Trace.with_span "outer" ~attrs:[ ("quote", {|a"b|}); ("ctl", "x\ny\t\xc3\xa9") ]
        (fun () -> Trace.with_span "inner" (fun () -> ()));
      let doc = Trace.to_chrome_json ~epoch_ms:0.0 (Trace.spans ()) in
      match Json.parse doc with
      | Error e -> Alcotest.failf "chrome json does not parse: %s" e
      | Ok json ->
          let events =
            match Json.member "traceEvents" json with
            | Some (Json.List evs) -> evs
            | _ -> Alcotest.fail "missing traceEvents list"
          in
          Alcotest.(check int) "one event per span" 2 (List.length events);
          List.iter
            (fun ev ->
              (match Json.member "ph" ev with
              | Some (Json.String "X") -> ()
              | _ -> Alcotest.fail "events must be complete-duration (ph=X)");
              match (Json.member "ts" ev, Json.member "dur" ev) with
              | Some (Json.Float _ | Json.Int _), Some (Json.Float _ | Json.Int _)
                -> ()
              | _ -> Alcotest.fail "ts/dur must be numeric")
            events;
          (match Json.member "otherData" json with
          | Some (Json.Obj _) -> ()
          | _ -> Alcotest.fail "missing otherData"))

let test_openmetrics_shape () =
  Obs.reset ();
  Obs.add (Obs.counter "trace_test.events") 3;
  Obs.observe (Obs.histogram "trace_test.lat_ms") 1.5;
  let text = Obs.to_openmetrics (Obs.snapshot ()) in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter exposed with _total" true
    (has "hoiho_trace_test_events_total 3");
  Alcotest.(check bool) "histogram count" true (has "hoiho_trace_test_lat_ms_count 1");
  Alcotest.(check bool) "quantile samples" true (has "quantile=\"0.95\"");
  Alcotest.(check bool) "p99 quantile row" true (has "quantile=\"0.99\"");
  Alcotest.(check bool) "terminated" true
    (let tl = String.length text in
     tl >= 6 && String.sub text (tl - 6) 6 = "# EOF\n");
  Obs.reset ()

(* --- cross-jobs determinism (the contract in trace.mli) --- *)

let test_canonical_tree_jobs_invariant () =
  let run jobs =
    with_tracing (fun () ->
        let ds, truth =
          Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:7 ())
        in
        ignore (Pipeline.run ~db:(Hoiho_netsim.Truth.db truth) ~jobs ds);
        Trace.set_enabled false;
        let dropped = Trace.dropped () in
        (Trace.canonical (Trace.spans ()), dropped))
  in
  let c1, d1 = run 1 in
  let c4, d4 = run 4 in
  Alcotest.(check int) "no drops at jobs=1" 0 d1;
  Alcotest.(check int) "no drops at jobs=4" 0 d4;
  Alcotest.(check bool) "tree is non-trivial" true (String.length c1 > 1000);
  if c1 <> c4 then
    Alcotest.failf "canonical span trees differ between jobs=1 and jobs=4:\n%s"
      (Printf.sprintf "jobs=1: %d bytes, jobs=4: %d bytes" (String.length c1)
         (String.length c4));
  (* the sched exemption is real: pool.batch spans exist at jobs=4 *)
  Alcotest.(check string) "identical canonical trees" c1 c4

(* --- never-raise with tracing enabled (explain path) --- *)

(* same adversarial shape as props.adversarial: arbitrary bytes,
   half steered into a learned suffix so the traced regex/resolve
   path — not just the PSL bail-out — sees the junk *)
let gen_adversarial =
  QCheck.Gen.(
    map2
      (fun junk tail -> junk ^ tail)
      (string_size
         ~gen:(map Char.chr (int_range 0 255))
         (int_range 0 300))
      (oneofl [ ""; ""; "."; ".."; ".example.net"; ".example.net."; ".EXAMPLE.NET" ]))

let adversarial = QCheck.make ~print:String.escaped gen_adversarial

let explain_fixture =
  lazy
    (let ds, _, _ = Helpers.iata_fixture () in
     Serve.create (Learned_io.of_pipeline (Pipeline.run ds)))

let prop_explain_never_raises h =
  let serve = Lazy.force explain_fixture in
  with_tracing (fun () ->
      match Serve.geolocate serve h with
      | Some _ | None ->
          (* the full explain path: geolocate, then render the trace *)
          Trace.set_enabled false;
          let spans = Trace.spans () in
          String.length (Trace.render_text spans) >= 0
          && String.length (Trace.to_chrome_json ~epoch_ms:0.0 spans) > 0)

let suites =
  [
    ( "trace",
      [
        tc "nesting and attrs" test_nesting_and_attrs;
        tc "disabled records nothing" test_disabled_records_nothing;
        tc "span recorded when f raises" test_span_survives_raise;
        tc "explicit fan-out parent" test_explicit_parent;
        tc "ring drops newest, counts drops" test_ring_drops_newest;
        tc "subject sampling is deterministic" test_sampling_is_deterministic;
        tc "chrome export parses strictly" test_chrome_json_parses;
        tc "openmetrics exposition shape" test_openmetrics_shape;
        tc "jobs=1 and jobs=4 identical span trees"
          test_canonical_tree_jobs_invariant;
      ] );
    ( "trace.adversarial",
      [ q ~count:300 "explain never raises" adversarial prop_explain_never_raises ] );
  ]
