lib/baselines/undns.ml: Hashtbl Hoiho_geodb Hoiho_psl Hoiho_util List
