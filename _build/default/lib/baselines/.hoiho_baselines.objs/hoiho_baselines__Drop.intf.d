lib/baselines/drop.mli: Hoiho Hoiho_geodb Hoiho_itdk
