lib/baselines/hloc.ml: Float Hoiho Hoiho_geo Hoiho_geodb Hoiho_itdk Hoiho_psl Hoiho_util List String
