lib/baselines/undns.mli: Hoiho_geodb
