lib/baselines/drop.ml: Array Hashtbl Hoiho Hoiho_geo Hoiho_geodb Hoiho_itdk Hoiho_psl Hoiho_util List Option String
