lib/baselines/hloc.mli: Hoiho_geodb Hoiho_itdk
