(** DRoP baseline (Huffaker et al., 2014), reimplemented with the design
    trade-offs the paper identifies (§3.3, figure 2):

    - one rule per suffix, geohint at a fixed position relative to the
      end of the hostname, with a fixed label count taken from the modal
      hostname shape — hostnames with different shapes do not match;
    - the rule emits a single sequence: it is built from the modal
      example, so a geohint label with trailing digits only matches
      hostnames that also have trailing digits (and vice versa);
    - acceptance requires only a majority (>50%) of extractions to be
      delay-consistent, using the traceroute-observed RTTs only (no
      follow-up pings), which constrain locations weakly;
    - dictionaries are used verbatim: no custom geohints are learned. *)

type rule = {
  suffix : string;
  n_labels : int;  (** exact label count of the hostname prefix *)
  pos_from_end : int;  (** 0 = label adjacent to the suffix *)
  digits_after : bool;  (** modal geo label had trailing digits *)
  hint_type : Hoiho.Plan.hint_type;
}

type t

val learn :
  ?staleness:float -> ?seed:int -> Hoiho_geodb.Db.t -> Hoiho_itdk.Dataset.t -> t
(** Learn one rule per suffix from the dataset. [staleness] (default 0)
    deterministically discards that fraction of the learned rules,
    emulating DRoP's published ruleset being years out of date — the
    paper attributes most of DRoP's false negatives to its 2013-era
    rules (§6.1). *)

val rules : t -> rule list

val find_rule : t -> string -> rule option

val infer :
  t -> Hoiho_geodb.Db.t -> string -> Hoiho_geodb.City.t option
(** Apply the suffix's rule to a hostname; interpret the extraction with
    the reference dictionary, choosing the highest-population
    candidate. *)
