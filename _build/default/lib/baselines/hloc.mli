(** HLOC baseline (Scheitle et al., 2017), reimplemented with the design
    trade-offs the paper identifies (§3.2, §6.1):

    - no learned structure: every token of a hostname is looked up in
      the geohint dictionaries at run time, filtered by a manually-
      assembled blocklist of strings known not to be geohints;
    - verification uses only the vantage points *nearest the candidate
      location* that can ping the router — a confirmation-biased test
      that cannot rule a hint out using far-away VPs;
    - routers that cannot be pinged yield no measurement and hence no
      inference;
    - operators' custom geohints are not in the dictionary and are
      missed. *)

val blocklist : string list
(** Strings never considered as geohints (their dictionary had 468). *)

val vps_consulted : int
(** How many nearest VPs verify a candidate (per HLOC's probe budget). *)

val infer :
  Hoiho_geodb.Db.t ->
  Hoiho_itdk.Dataset.t ->
  Hoiho_itdk.Router.t ->
  string ->
  Hoiho_geodb.City.t option
(** Run-time inference for one hostname of a router. *)
