(** undns baseline (Spring et al., 2002): a manually-assembled ruleset
    with per-suffix geohint→location tables.

    The real undns database was hand-curated by experts: its
    interpretations are nearly always right, but the tables cover only a
    subset of the codes an operator uses and have not been updated since
    2014 (§3.2, §6.1). We emulate this by constructing the baseline from
    a *partial* codebook: the caller supplies each suffix's true
    code→city table (which a human expert would have transcribed
    correctly) and the fraction that made it into the frozen database. *)

type t

val make :
  coverage:float ->
  seed:int ->
  (string * (string * Hoiho_geodb.City.t) list) list ->
  t
(** [make ~coverage ~seed tables]: keep a deterministic [coverage]
    fraction of each suffix's (code, city) entries. *)

val n_entries : t -> int

val infer : t -> string -> Hoiho_geodb.City.t option
(** A hostname token (digits stripped) equal to a known code of its
    suffix yields that code's city. *)
