(** Validation against generator ground truth, replaying the paper's §6
    protocol: a geolocation is correct when it lands within 40 km of the
    router's true location (the threshold used by DRoP and figure 9). *)

val threshold_km : float

val correct : Hoiho_geodb.City.t -> Hoiho_geo.Coord.t -> bool
(** Inferred city within {!threshold_km} of the true coordinate. *)

type scores = { tp : int; fp : int; fn : int }
(** Per-method tallies over a set of ground-truth hostnames. *)

val total : scores -> int
val tp_pct : scores -> float
val fp_pct : scores -> float
val fn_pct : scores -> float
val ppv : scores -> float

type gt_hostname = {
  hostname : string;
  router : Hoiho_itdk.Router.t;
  true_coord : Hoiho_geo.Coord.t;
  code : string;  (** the geohint the operator embedded *)
}

val ground_truth_hostnames :
  Hoiho_itdk.Dataset.t -> suffix:string -> gt_hostname list
(** Hostnames of a suffix that are known (from generator truth — the
    stand-in for operator feedback) to contain a geohint. *)

val score :
  (gt_hostname -> Hoiho_geodb.City.t option) -> gt_hostname list -> scores
(** Evaluate one inference method over a ground-truth set. *)

type comparison = {
  suffix : string;
  n : int;  (** ground-truth hostnames *)
  hoiho : scores;
  hloc : scores;
  drop : scores;
  undns : scores;
}

val compare_methods :
  Hoiho.Pipeline.t ->
  Hoiho_netsim.Truth.t ->
  suffixes:string list ->
  comparison list
(** Figure 9: run Hoiho, HLOC, DRoP and undns over each suffix's
    ground-truth hostnames. DRoP rules are learned from the same
    dataset; the undns ruleset is built from the true codebooks at 60%
    coverage (emulating its stale, partial hand-built database). *)

type learned_check = {
  suffix : string;
  hint : string;
  learned_city : Hoiho_geodb.City.t;
  true_city_key : string option;
  ok : bool;
}

val check_learned :
  Hoiho.Pipeline.t -> Hoiho_netsim.Truth.t -> suffixes:string list -> learned_check list
(** Table 6: is each learned geohint the city the operator meant? *)
