lib/validate/analysis.ml: Array Float Hashtbl Hoiho Hoiho_baselines Hoiho_geo Hoiho_geodb Hoiho_itdk Hoiho_psl Hoiho_util List Option String Validate
