lib/validate/analysis.mli: Hoiho Hoiho_geodb Hoiho_itdk Hoiho_netsim Validate
