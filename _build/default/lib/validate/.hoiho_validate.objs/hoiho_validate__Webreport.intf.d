lib/validate/webreport.mli: Hoiho
