lib/validate/validate.mli: Hoiho Hoiho_geo Hoiho_geodb Hoiho_itdk Hoiho_netsim
