lib/validate/webreport.ml: Buffer Filename Format Hoiho Hoiho_geodb List Printf String Sys
