lib/validate/validate.ml: Array Hoiho Hoiho_baselines Hoiho_geo Hoiho_geodb Hoiho_itdk Hoiho_netsim Hoiho_psl List Option
