(** Computations behind every table and figure of the paper's
    evaluation (§6). The bench harness formats what these return;
    keeping the logic here lets the test suite cover it. *)

(** {1 Table 1 / Table 2} *)

type coverage = {
  label : string;
  total : int;
  with_hostname : int;
  responsive : int;  (** table 1 "w/ RTT" *)
  n_vps : int;
  with_apparent : int;  (** routers with an apparent geohint (table 2) *)
  geolocated : int;  (** routers geolocated by usable NCs (table 2) *)
}

val coverage : Hoiho.Pipeline.t -> coverage

(** {1 Table 3} *)

type class_counts = { good : int; promising : int; poor : int }

val classifications : Hoiho.Pipeline.t -> class_counts

(** {1 Table 4} *)

type annot = A_none | A_state | A_country | A_both

type type_breakdown = {
  hint_type : Hoiho.Plan.hint_type;
  annot : annot;
  n_good : int;
  n_promising : int;
}

val table4 : Hoiho.Pipeline.t -> type_breakdown list * int
(** Breakdown rows plus the count of mixed-type NCs. An NC's type is its
    first regex's geohint type; its annotation reflects any regex that
    also captures a state or country code. *)

(** {1 Figure 5} *)

val fig5a : Hoiho_itdk.Dataset.t -> (float * float * float) list
(** Per RTT threshold (ms): (threshold, CDF of min ping RTT,
    CDF of min traceroute RTT) over routers with both kinds of sample. *)

val fig5b : Hoiho_itdk.Dataset.t -> (int * float * float) list
(** Per VP-count threshold: (k, CDF of #VPs seeing the router in
    traceroute, CDF of #VPs with ping RTT) over responsive routers. *)

(** {1 Table 5} *)

type learned_freq = {
  hint : string;
  n_suffixes : int;
  city : Hoiho_geodb.City.t;
  in_iata_dict : bool;  (** an airport holds this code (⊗ in the paper) *)
  alternatives : (string * int) list;
      (** the city's dictionary IATA codes and how many suffixes' NCs
          extracted them as TPs *)
}

val table5 : ?top:int -> Hoiho.Pipeline.t -> learned_freq list
(** Most frequently learned geohints across suffixes (default top 6),
    restricted to 3-letter (IATA-plan) hints as in the paper. *)

(** {1 Figures 10 and 11} *)

val vp_proximity_ms : Hoiho.Pipeline.t -> Hoiho_geodb.City.t -> float
(** Best-case RTT from the closest VP to a location. *)

val fig10a : Hoiho.Pipeline.t -> float list
(** Per learned geohint: best-case RTT (ms) from the closest VP to the
    learned location. *)

val fig10b : Hoiho.Pipeline.t -> float list
(** Per learned geohint whose string is also an IATA code: distance (km)
    from the learned location to the airport city holding that code. *)

val fig11 :
  Hoiho.Pipeline.t -> Hoiho_netsim.Truth.t -> suffixes:string list -> (float * bool) list
(** Per validated learned geohint: (closest-VP proximity in ms, correct?). *)

val accuracy_at : float -> (float * bool) list -> float
(** Fraction correct among entries with proximity ≤ threshold ms. *)

(** {1 CBG feasibility (Cai 2015's critique of DRoP, §3.3)} *)

type feasibility = {
  n_drop : int;  (** distinct (suffix, location) pairs DRoP inferred *)
  drop_infeasible : float;  (** Cai measured 46% for DRoP *)
  n_hoiho : int;
  hoiho_infeasible : float;
}

val cai_feasibility : Hoiho.Pipeline.t -> suffixes:string list -> feasibility
(** Fraction of each method's distinct inferred (suffix, location) pairs
    that violate the CBG-feasible region of the routers they were
    inferred for, over every hostname of the dataset (Cai probed DRoP's
    full published dataset). DRoP rules are learned fresh (no
    staleness), so the check measures interpretation quality, not
    coverage. [suffixes] is kept for API symmetry and ignored. *)

(** {1 Stale-hostname detection (§7)} *)

val stale_accuracy : Hoiho.Pipeline.t -> Hoiho.Stale.accuracy
(** Run {!Hoiho.Stale.detect} over every usable NC and score the flags
    against generator ground truth. *)

(** {1 Ablation (§6.1: value of learned geohints)} *)

type ablation = {
  with_learning : Validate.scores;
  without_learning : Validate.scores;
}

val ablation :
  ?db:Hoiho_geodb.Db.t ->
  Hoiho_itdk.Dataset.t ->
  suffixes:string list ->
  ablation
(** Run the pipeline twice — stage 4 enabled and disabled — and score
    both against ground truth over the given suffixes. *)
