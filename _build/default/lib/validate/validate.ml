module Coord = Hoiho_geo.Coord
module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Psl = Hoiho_psl.Psl
module Truth = Hoiho_netsim.Truth

let threshold_km = 40.0

let correct (city : City.t) true_coord =
  Coord.distance_km city.City.coord true_coord <= threshold_km

type scores = { tp : int; fp : int; fn : int }

let total s = s.tp + s.fp + s.fn
let pct n d = if d = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d
let tp_pct s = pct s.tp (total s)
let fp_pct s = pct s.fp (total s)
let fn_pct s = pct s.fn (total s)
let ppv s = if s.tp + s.fp = 0 then 0.0 else pct s.tp (s.tp + s.fp) /. 100.0

type gt_hostname = {
  hostname : string;
  router : Router.t;
  true_coord : Coord.t;
  code : string;
}

let ground_truth_hostnames dataset ~suffix =
  Array.to_list dataset.Dataset.routers
  |> List.concat_map (fun (r : Router.t) ->
         match r.Router.truth with
         | None -> []
         | Some truth ->
             List.filter_map
               (fun (hostname, hint) ->
                 match hint with
                 | Some code when Psl.registered_suffix hostname = Some suffix ->
                     Some { hostname; router = r; true_coord = truth.Router.coord; code }
                 | _ -> None)
               truth.Router.hostname_hints)

let score infer gts =
  List.fold_left
    (fun acc gt ->
      match infer gt with
      | Some city ->
          if correct city gt.true_coord then { acc with tp = acc.tp + 1 }
          else { acc with fp = acc.fp + 1 }
      | None -> { acc with fn = acc.fn + 1 })
    { tp = 0; fp = 0; fn = 0 }
    gts

type comparison = {
  suffix : string;
  n : int;
  hoiho : scores;
  hloc : scores;
  drop : scores;
  undns : scores;
}

let undns_coverage = 0.6
let undns_seed = 2014

(* DRoP's published rules predate the evaluation data by 7+ years; a
   large share of the suffixes it once covered no longer match *)
let drop_staleness = 0.45

let undns_tables db truth suffixes =
  List.filter_map
    (fun suffix ->
      match Truth.find truth suffix with
      | None -> None
      | Some op ->
          let codes =
            List.filter_map
              (fun (code, city_key) ->
                Option.map (fun c -> (code, c)) (Db.find_city db ~key:city_key))
              (Hoiho_netsim.Oper.codebook op)
          in
          Some (suffix, codes))
    suffixes

let compare_methods (pipeline : Hoiho.Pipeline.t) truth ~suffixes =
  let db = pipeline.Hoiho.Pipeline.db in
  let dataset = pipeline.Hoiho.Pipeline.dataset in
  let drop_rules = Hoiho_baselines.Drop.learn ~staleness:drop_staleness db dataset in
  let undns =
    Hoiho_baselines.Undns.make ~coverage:undns_coverage ~seed:undns_seed
      (undns_tables db truth suffixes)
  in
  List.map
    (fun suffix ->
      let gts = ground_truth_hostnames dataset ~suffix in
      {
        suffix;
        n = List.length gts;
        hoiho = score (fun gt -> Hoiho.Pipeline.geolocate pipeline gt.hostname) gts;
        hloc =
          score (fun gt -> Hoiho_baselines.Hloc.infer db dataset gt.router gt.hostname) gts;
        drop = score (fun gt -> Hoiho_baselines.Drop.infer drop_rules db gt.hostname) gts;
        undns = score (fun gt -> Hoiho_baselines.Undns.infer undns gt.hostname) gts;
      })
    suffixes

type learned_check = {
  suffix : string;
  hint : string;
  learned_city : City.t;
  true_city_key : string option;
  ok : bool;
}

let check_learned (pipeline : Hoiho.Pipeline.t) truth ~suffixes =
  let db = pipeline.Hoiho.Pipeline.db in
  List.concat_map
    (fun suffix ->
      match Hoiho.Pipeline.find pipeline suffix with
      | None -> []
      | Some result ->
          List.map
            (fun (e : Hoiho.Learned.entry) ->
              let true_city_key = Truth.code_city truth ~suffix e.Hoiho.Learned.hint in
              let ok =
                match true_city_key with
                | None -> false
                | Some key -> (
                    key = City.key e.Hoiho.Learned.city
                    ||
                    match Db.find_city db ~key with
                    | Some true_city ->
                        Coord.distance_km true_city.City.coord
                          e.Hoiho.Learned.city.City.coord
                        <= threshold_km
                    | None -> false)
              in
              {
                suffix;
                hint = e.Hoiho.Learned.hint;
                learned_city = e.Hoiho.Learned.city;
                true_city_key;
                ok;
              })
            (Hoiho.Learned.entries result.Hoiho.Pipeline.learned))
    suffixes
