module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Vp = Hoiho_itdk.Vp
module Pipeline = Hoiho.Pipeline
module Plan = Hoiho.Plan
module Ncsel = Hoiho.Ncsel
module Evalx = Hoiho.Evalx
module Learned = Hoiho.Learned
module Cand = Hoiho.Cand

(* --- tables 1 and 2 --- *)

type coverage = {
  label : string;
  total : int;
  with_hostname : int;
  responsive : int;
  n_vps : int;
  with_apparent : int;
  geolocated : int;
}

let coverage (p : Pipeline.t) =
  let ds = p.Pipeline.dataset in
  (* a router "has an apparent geohint" when stage 2 tagged one of its
     hostnames, or when the suffix's NC extracts an interpretable hint
     from it (a custom code is only interpretable after stage 4, but it
     was still an apparent geohint the operator embedded) *)
  let with_apparent =
    List.fold_left
      (fun acc (r : Pipeline.suffix_result) ->
        acc + max r.Pipeline.n_tagged_routers (Pipeline.geolocated_routers p r))
      0 p.Pipeline.results
  in
  let geolocated =
    List.fold_left
      (fun acc (r : Pipeline.suffix_result) ->
        if Pipeline.usable r then acc + Pipeline.geolocated_routers p r else acc)
      0 p.Pipeline.results
  in
  {
    label = ds.Dataset.label;
    total = Dataset.n_routers ds;
    with_hostname = Dataset.n_with_hostname ds;
    responsive = Dataset.n_responsive ds;
    n_vps = Array.length ds.Dataset.vps;
    with_apparent;
    geolocated;
  }

(* --- table 3 --- *)

type class_counts = { good : int; promising : int; poor : int }

let classifications (p : Pipeline.t) =
  List.fold_left
    (fun acc (r : Pipeline.suffix_result) ->
      match r.Pipeline.classification with
      | Some Ncsel.Good -> { acc with good = acc.good + 1 }
      | Some Ncsel.Promising -> { acc with promising = acc.promising + 1 }
      | Some Ncsel.Poor -> { acc with poor = acc.poor + 1 }
      | None -> acc)
    { good = 0; promising = 0; poor = 0 }
    p.Pipeline.results

(* --- table 4 --- *)

type annot = A_none | A_state | A_country | A_both

type type_breakdown = {
  hint_type : Plan.hint_type;
  annot : annot;
  n_good : int;
  n_promising : int;
}

let nc_hint_type (nc : Ncsel.t) =
  let types =
    List.filter_map (fun (c : Cand.t) -> Plan.hint_type_of c.Cand.plan) nc.Ncsel.cands
    |> List.sort_uniq compare
  in
  match types with [ single ] -> Some (single, false) | t :: _ -> Some (t, true) | [] -> None

let nc_annot (nc : Ncsel.t) =
  let has elem =
    List.exists
      (fun (c : Cand.t) -> List.exists (fun e -> e = elem) c.Cand.plan)
      nc.Ncsel.cands
  in
  match (has Plan.State, has Plan.Cc) with
  | true, true -> A_both
  | true, false -> A_state
  | false, true -> A_country
  | false, false -> A_none

let table4 (p : Pipeline.t) =
  let tbl : (Plan.hint_type * annot, int * int) Hashtbl.t = Hashtbl.create 32 in
  let mixed = ref 0 in
  List.iter
    (fun (r : Pipeline.suffix_result) ->
      match (r.Pipeline.classification, r.Pipeline.nc) with
      | Some cls, Some nc when cls <> Ncsel.Poor -> (
          match nc_hint_type nc with
          | None -> ()
          | Some (ht, is_mixed) ->
              if is_mixed then incr mixed;
              let key = (ht, nc_annot nc) in
              let g, pr = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0) in
              let g, pr =
                if cls = Ncsel.Good then (g + 1, pr) else (g, pr + 1)
              in
              Hashtbl.replace tbl key (g, pr))
      | _ -> ())
    p.Pipeline.results;
  let rows =
    Hashtbl.fold
      (fun (hint_type, annot) (n_good, n_promising) acc ->
        { hint_type; annot; n_good; n_promising } :: acc)
      tbl []
  in
  (rows, !mixed)

(* --- figure 5 --- *)

let min_rtt = function
  | [] -> None
  | (_, r) :: rest -> Some (List.fold_left (fun m (_, r') -> Float.min m r') r rest)

let fig5a ds =
  let pairs =
    Array.to_list ds.Dataset.routers
    |> List.filter_map (fun (r : Router.t) ->
           match (min_rtt r.Router.ping_rtts, min_rtt r.Router.trace_rtts) with
           | Some p, Some t -> Some (p, t)
           | _ -> None)
  in
  let thresholds = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ] in
  List.map
    (fun th ->
      let frac get = Hoiho_util.Stat.fraction (fun x -> get x <= th) pairs in
      (th, frac fst, frac snd))
    thresholds

let fig5b ds =
  let rows =
    Array.to_list ds.Dataset.routers
    |> List.filter_map (fun (r : Router.t) ->
           if r.Router.ping_rtts = [] then None
           else Some (List.length r.Router.trace_rtts, List.length r.Router.ping_rtts))
  in
  let ks = [ 1; 2; 3; 5; 10; 20; 40; 80; 110 ] in
  List.map
    (fun k ->
      let frac get = Hoiho_util.Stat.fraction (fun x -> get x <= k) rows in
      (k, frac fst, frac snd))
    ks

(* --- table 5 --- *)

type learned_freq = {
  hint : string;
  n_suffixes : int;
  city : City.t;
  in_iata_dict : bool;
  alternatives : (string * int) list;
}

(* how many suffixes' NCs extracted each code as a TP *)
let tp_code_suffix_counts (p : Pipeline.t) =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r : Pipeline.suffix_result) ->
      match r.Pipeline.nc with
      | None -> ()
      | Some nc ->
          let codes = Evalx.unique_tp_hints nc.Ncsel.hits in
          List.iter
            (fun code ->
              Hashtbl.replace tbl code
                (1 + Option.value (Hashtbl.find_opt tbl code) ~default:0))
            codes)
    p.Pipeline.results;
  tbl

let table5 ?(top = 6) (p : Pipeline.t) =
  let db = p.Pipeline.db in
  let counts : (string, int * City.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Pipeline.suffix_result) ->
      List.iter
        (fun (e : Learned.entry) ->
          if String.length e.Learned.hint = 3 then begin
            let n, city =
              Option.value
                (Hashtbl.find_opt counts e.Learned.hint)
                ~default:(0, e.Learned.city)
            in
            Hashtbl.replace counts e.Learned.hint (n + 1, city)
          end)
        (Learned.entries r.Pipeline.learned))
    p.Pipeline.results;
  let code_counts = tp_code_suffix_counts p in
  Hashtbl.fold
    (fun hint (n_suffixes, city) acc ->
      let alternatives =
        List.filter_map
          (fun code ->
            match Hashtbl.find_opt code_counts code with
            | Some n when code <> hint -> Some (code, n)
            | _ -> None)
          city.City.iata
      in
      {
        hint;
        n_suffixes;
        city;
        in_iata_dict = Db.lookup_iata db hint <> [];
        alternatives;
      }
      :: acc)
    counts []
  |> List.sort (fun a b -> compare b.n_suffixes a.n_suffixes)
  |> List.filteri (fun i _ -> i < top)

(* --- figures 10 and 11 --- *)

let vp_proximity_ms (p : Pipeline.t) (city : City.t) =
  Array.fold_left
    (fun acc (vp : Vp.t) ->
      Float.min acc (Lightrtt.min_rtt_ms vp.Vp.coord city.City.coord))
    infinity p.Pipeline.dataset.Dataset.vps

let all_learned (p : Pipeline.t) =
  List.concat_map
    (fun (r : Pipeline.suffix_result) -> Learned.entries r.Pipeline.learned)
    p.Pipeline.results

let fig10a (p : Pipeline.t) =
  List.map (fun (e : Learned.entry) -> vp_proximity_ms p e.Learned.city) (all_learned p)

let fig10b (p : Pipeline.t) =
  let db = p.Pipeline.db in
  List.filter_map
    (fun (e : Learned.entry) ->
      match Db.lookup_iata db e.Learned.hint with
      | airport_city :: _ ->
          Some
            (Coord.distance_km airport_city.City.coord e.Learned.city.City.coord)
      | [] -> None)
    (all_learned p)

let fig11 (p : Pipeline.t) truth ~suffixes =
  Validate.check_learned p truth ~suffixes
  |> List.map (fun (c : Validate.learned_check) ->
         (vp_proximity_ms p c.Validate.learned_city, c.Validate.ok))

let accuracy_at threshold entries =
  let within = List.filter (fun (prox, _) -> prox <= threshold) entries in
  Hoiho_util.Stat.fraction snd within

(* --- CBG feasibility (Cai 2015) --- *)

type feasibility = {
  n_drop : int;
  drop_infeasible : float;
  n_hoiho : int;
  hoiho_infeasible : float;
}

(* Cai probed *distinct locations* that DRoP inferred (4,638 of them),
   not individual hostnames: a suffix's one misread custom code counts
   the same as its hundreds of correctly-read hostnames. We group each
   method's inferences by (suffix, location) and call a location
   infeasible when no router it was inferred for admits it. *)
let cai_feasibility (p : Pipeline.t) ~suffixes =
  ignore suffixes;
  let db = p.Pipeline.db in
  let consist = p.Pipeline.consist in
  let drop_rules = Hoiho_baselines.Drop.learn db p.Pipeline.dataset in
  (* every hostname of every suffix, as in the published DRoP dataset
     Cai probed — including suffixes whose rules latched onto strings
     that are not geohints at all *)
  let distinct_locations infer =
    let groups : (string * string, (Router.t * City.t) list) Hashtbl.t =
      Hashtbl.create 256
    in
    Array.iter
      (fun (r : Router.t) ->
        List.iter
          (fun hostname ->
            match Hoiho_psl.Psl.registered_suffix hostname with
            | None -> ()
            | Some suffix -> (
                match infer r hostname with
                | Some (city : City.t) ->
                    let key = (suffix, City.key city) in
                    Hashtbl.replace groups key
                      ((r, city)
                      :: Option.value (Hashtbl.find_opt groups key) ~default:[])
                | None -> ()))
          r.Router.hostnames)
      p.Pipeline.dataset.Dataset.routers;
    Hashtbl.fold (fun _ pairs acc -> pairs :: acc) groups []
  in
  let score groups =
    (* CBG probing needs ping-responsive routers; traceroute-only
       observations constrain almost nothing *)
    let probeable =
      List.filter_map
        (fun pairs ->
          match
            List.filter (fun ((r : Router.t), _) -> r.Router.ping_rtts <> []) pairs
          with
          | [] -> None
          | ping_pairs -> Some ping_pairs)
        groups
    in
    let infeasible =
      List.filter
        (fun pairs ->
          not
            (List.exists
               (fun (router, (city : City.t)) ->
                 Hoiho.Cbg.feasible consist router city.City.coord)
               pairs))
        probeable
    in
    ( List.length probeable,
      if probeable = [] then 0.0
      else float_of_int (List.length infeasible) /. float_of_int (List.length probeable) )
  in
  let n_drop, drop_infeasible =
    score
      (distinct_locations (fun _ hostname ->
           Hoiho_baselines.Drop.infer drop_rules db hostname))
  in
  let n_hoiho, hoiho_infeasible =
    score (distinct_locations (fun _ hostname -> Pipeline.geolocate p hostname))
  in
  { n_drop; drop_infeasible; n_hoiho; hoiho_infeasible }

(* --- stale-hostname detection --- *)

let hostname_is_stale (r : Router.t) hostname =
  match r.Router.truth with
  | None -> false
  | Some t -> (
      match List.assoc_opt hostname t.Router.hostname_hints with
      | Some (Some code) -> t.Router.intended_hint <> Some code
      | _ -> false)

let stale_accuracy (p : Pipeline.t) =
  List.fold_left
    (fun (acc : Hoiho.Stale.accuracy) (r : Pipeline.suffix_result) ->
      match r.Pipeline.nc with
      | Some nc when Pipeline.usable r ->
          let flags = Hoiho.Stale.detect nc in
          let true_stale =
            List.length
              (List.filter
                 (fun (f : Hoiho.Stale.flag) ->
                   hostname_is_stale f.Hoiho.Stale.router f.Hoiho.Stale.hostname)
                 flags)
          in
          let actual =
            List.length
              (List.filter
                 (fun (h : Evalx.hit) ->
                   hostname_is_stale h.Evalx.sample.Hoiho.Apparent.router
                     h.Evalx.sample.Hoiho.Apparent.hostname)
                 nc.Ncsel.hits)
          in
          {
            Hoiho.Stale.flagged = acc.Hoiho.Stale.flagged + List.length flags;
            true_stale = acc.Hoiho.Stale.true_stale + true_stale;
            actual_stale = acc.Hoiho.Stale.actual_stale + actual;
          }
      | _ -> acc)
    { Hoiho.Stale.flagged = 0; true_stale = 0; actual_stale = 0 }
    p.Pipeline.results

(* --- ablation --- *)

type ablation = {
  with_learning : Validate.scores;
  without_learning : Validate.scores;
}

let score_pipeline (p : Pipeline.t) ~suffixes =
  let scores =
    List.map
      (fun suffix ->
        let gts = Validate.ground_truth_hostnames p.Pipeline.dataset ~suffix in
        Validate.score
          (fun (gt : Validate.gt_hostname) -> Pipeline.geolocate p gt.Validate.hostname)
          gts)
      suffixes
  in
  List.fold_left
    (fun (acc : Validate.scores) (s : Validate.scores) ->
      {
        Validate.tp = acc.Validate.tp + s.Validate.tp;
        fp = acc.Validate.fp + s.Validate.fp;
        fn = acc.Validate.fn + s.Validate.fn;
      })
    { Validate.tp = 0; fp = 0; fn = 0 }
    scores

let ablation ?db ds ~suffixes =
  let with_l = Pipeline.run ?db ds in
  let without_l = Pipeline.run ?db ~learn_geohints:false ds in
  {
    with_learning = score_pipeline with_l ~suffixes;
    without_learning = score_pipeline without_l ~suffixes;
  }
