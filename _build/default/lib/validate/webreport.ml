module Pipeline = Hoiho.Pipeline
module Ncsel = Hoiho.Ncsel
module Evalx = Hoiho.Evalx
module Plan = Hoiho.Plan
module Cand = Hoiho.Cand
module Learned = Hoiho.Learned
module City = Hoiho_geodb.City

let page_filename suffix =
  String.map (fun c -> if c = '.' then '_' else c) suffix ^ ".md"

let classification_name = function
  | Some Ncsel.Good -> "good"
  | Some Ncsel.Promising -> "promising"
  | Some Ncsel.Poor -> "poor"
  | None -> "(none)"

let suffix_page (p : Pipeline.t) (r : Pipeline.suffix_result) =
  ignore p;
  let buf = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# %s\n\n" r.Pipeline.suffix;
  pr "- hostnames: %d (%d with an apparent geohint)\n" r.Pipeline.n_samples
    r.Pipeline.n_tagged;
  pr "- routers: %d\n" r.Pipeline.n_routers;
  pr "- classification: **%s**\n\n" (classification_name r.Pipeline.classification);
  (match r.Pipeline.nc with
  | None -> pr "No naming convention was inferred for this suffix.\n"
  | Some nc ->
      pr "## Naming convention\n\n";
      pr "| regex | decodes |\n|---|---|\n";
      List.iter
        (fun (c : Cand.t) ->
          pr "| `%s` | %s |\n" c.Cand.source
            (Format.asprintf "%a" Plan.pp c.Cand.plan))
        nc.Ncsel.cands;
      pr "\nEvaluation against RTT constraints: %d TP, %d FP, %d FN, %d unknown\n"
        nc.Ncsel.counts.Evalx.tp nc.Ncsel.counts.Evalx.fp nc.Ncsel.counts.Evalx.fn
        nc.Ncsel.counts.Evalx.unk;
      pr "(PPV %.1f%%, %d distinct geohints).\n\n"
        (100.0 *. Evalx.ppv nc.Ncsel.counts)
        nc.Ncsel.unique_hints;
      let learned = Learned.entries r.Pipeline.learned in
      if learned <> [] then begin
        pr "## Learned geohints\n\n";
        pr "Codes this operator uses that differ from the reference dictionaries.\n";
        pr "Please tell us if any of these are wrong!\n\n";
        pr "| code | we believe it means | routers agreeing | disagreeing |\n";
        pr "|---|---|---|---|\n";
        List.iter
          (fun (e : Learned.entry) ->
            pr "| `%s` | %s%s | %d | %d |\n" e.Learned.hint
              (City.describe e.Learned.city)
              (if e.Learned.collides then " (overrides a dictionary code)" else "")
              e.Learned.tp e.Learned.fp)
          (List.sort (fun (a : Learned.entry) b -> compare a.Learned.hint b.Learned.hint)
             learned)
      end;
      pr "\n## Example extractions\n\n";
      let shown = ref 0 in
      List.iter
        (fun (h : Evalx.hit) ->
          if !shown < 8 then
            match (h.Evalx.outcome, h.Evalx.extraction, h.Evalx.location) with
            | Evalx.TP, Some ex, Some city ->
                incr shown;
                pr "- `%s` -> `%s` -> %s\n" h.Evalx.sample.Hoiho.Apparent.hostname
                  ex.Plan.hint (City.describe city)
            | _ -> ())
        nc.Ncsel.hits);
  Buffer.contents buf

let index_page (p : Pipeline.t) =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# Inferred geographic naming conventions\n\n";
  pr "| suffix | hostnames | tagged | classification | learned codes |\n";
  pr "|---|---|---|---|---|\n";
  let interesting =
    List.filter (fun (r : Pipeline.suffix_result) -> r.Pipeline.n_tagged > 0)
      p.Pipeline.results
  in
  List.iter
    (fun (r : Pipeline.suffix_result) ->
      pr "| [%s](%s) | %d | %d | %s | %d |\n" r.Pipeline.suffix
        (page_filename r.Pipeline.suffix)
        r.Pipeline.n_samples r.Pipeline.n_tagged
        (classification_name r.Pipeline.classification)
        (Learned.size r.Pipeline.learned))
    (List.sort
       (fun (a : Pipeline.suffix_result) b -> compare a.Pipeline.suffix b.Pipeline.suffix)
       interesting);
  Buffer.contents buf

let write (p : Pipeline.t) ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let save name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  save "index.md" (index_page p);
  List.fold_left
    (fun n (r : Pipeline.suffix_result) ->
      if r.Pipeline.nc <> None then begin
        save (page_filename r.Pipeline.suffix) (suffix_page p r);
        n + 1
      end
      else n)
    0 p.Pipeline.results
