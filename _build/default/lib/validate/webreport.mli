(** The public artifact: per-suffix pages of inferred naming conventions.

    The paper releases its regexes on a website whose per-suffix pages
    "served as a conduit to facilitate ground truth validation from
    operators" (§8). This module renders the same content as a directory
    of Markdown pages: an index of all suffixes with their
    classifications, and a page per suffix showing the convention's
    regexes and decode plans, evaluation counts, learned custom geohints
    with their evidence, and example extractions — everything an
    operator needs to confirm or correct an inference. *)

val suffix_page : Hoiho.Pipeline.t -> Hoiho.Pipeline.suffix_result -> string
(** Markdown for one suffix. *)

val index_page : Hoiho.Pipeline.t -> string
(** Markdown index over every suffix with an apparent geohint. *)

val write : Hoiho.Pipeline.t -> dir:string -> int
(** Write [index.md] plus one page per suffix with a naming convention
    into [dir] (created if missing); returns the number of suffix pages
    written. *)

val page_filename : string -> string
(** Filesystem-safe page name for a suffix ("he.net" becomes
    "he_net.md"). *)
