lib/util/stat.mli:
