lib/util/strutil.mli:
