lib/util/prng.mli:
