(** Deterministic pseudo-random number generation.

    All randomized components of this repository (the synthetic topology
    generator in particular) draw from this SplitMix64 generator so that
    every experiment is reproducible from a single integer seed, and so
    that results do not depend on the state of [Stdlib.Random]. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with
    the same seed produce the same stream. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use to give each sub-component its own stream so that adding draws in
    one component does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in \[lo, hi\] inclusive. Requires [lo <= hi]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> ('a * float) array -> 'a
(** [weighted t items] picks an element with probability proportional to
    its weight. Requires at least one strictly positive weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] returns [k] distinct elements chosen uniformly
    without replacement. Requires [k <= Array.length arr]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box-Muller. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)
