(** Small statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val median : float list -> float
(** Median; 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in \[0,100\], nearest-rank on the sorted
    list; 0 on the empty list. *)

val cdf_points : float list -> float list -> (float * float) list
(** [cdf_points thresholds xs] returns, for each threshold [t], the pair
    [(t, fraction of xs <= t)]. *)

val fraction : ('a -> bool) -> 'a list -> float
(** Fraction of elements satisfying the predicate; 0 on the empty list. *)

val pct : int -> int -> float
(** [pct num denom] is [100 * num / denom] as a float; 0 when [denom = 0]. *)
