type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value stays non-negative in a native 63-bit int *)
  let r = Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled to [0,1) then to [0,bound) *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let pick t arr = arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let weighted t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. Float.max w 0.0) 0.0 items in
  if total <= 0.0 then invalid_arg "Prng.weighted: no positive weight";
  let target = float t total in
  let n = Array.length items in
  let rec go i acc =
    if i = n - 1 then fst items.(i)
    else
      let acc = acc +. Float.max (snd items.(i)) 0.0 in
      if target < acc then fst items.(i) else go (i + 1) acc
  in
  go 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  assert (k <= Array.length arr);
  let copy = Array.copy arr in
  shuffle t copy;
  Array.sub copy 0 k

let gaussian t ~mean ~stddev =
  let u1 = Float.max (float t 1.0) 1e-12 in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let exponential t ~mean =
  let u = Float.max (float t 1.0) 1e-12 in
  -.mean *. log u
