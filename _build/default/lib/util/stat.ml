let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
      let n = List.length s in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      List.nth s (rank - 1)

let median xs = percentile 50.0 xs

let cdf_points thresholds xs =
  let n = List.length xs in
  List.map
    (fun t ->
      let c = List.length (List.filter (fun x -> x <= t) xs) in
      (t, if n = 0 then 0.0 else float_of_int c /. float_of_int n))
    thresholds

let fraction pred xs =
  match xs with
  | [] -> 0.0
  | _ ->
      float_of_int (List.length (List.filter pred xs))
      /. float_of_int (List.length xs)

let pct num denom =
  if denom = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int denom
