type t = {
  name : string;
  cc : string;
  state : string option;
  coord : Hoiho_geo.Coord.t;
  population : int;
  iata : string list;
  icao : string list;
  locode : string option;
  clli : string option;
  facilities : (string * string) list;
}

let make ?state ?(pop = 0) ?(iata = []) ?(icao = []) ?locode ?clli ?(fac = [])
    name cc lat lon =
  {
    name;
    cc;
    state;
    coord = Hoiho_geo.Coord.make ~lat ~lon;
    population = pop;
    iata;
    icao;
    locode;
    clli;
    facilities = fac;
  }

let squashed t =
  String.concat "" (String.split_on_char ' ' t.name)

let key t =
  Printf.sprintf "%s|%s|%s" (squashed t) t.cc (Option.value t.state ~default:"")

let clli_region t =
  match (t.cc, t.state) with
  | ("us" | "ca"), Some st -> st
  | "gb", _ -> "en"
  | cc, _ -> cc

let derived_locode t =
  match t.iata with
  | code :: _ -> code
  | [] ->
      let s = squashed t in
      if String.length s >= 3 then String.sub s 0 3 else s

let derived_clli t =
  let s = squashed t in
  let four =
    if String.length s >= 4 then String.sub s 0 4
    else s ^ String.make (4 - String.length s) 'x'
  in
  four ^ clli_region t

let same_place a b = key a = key b

let describe t =
  let cap s = String.capitalize_ascii s in
  let name = String.concat " " (List.map cap (String.split_on_char ' ' t.name)) in
  match t.state with
  | Some st ->
      Printf.sprintf "%s, %s, %s" name (String.uppercase_ascii st)
        (String.uppercase_ascii t.cc)
  | None -> Printf.sprintf "%s, %s" name (String.uppercase_ascii t.cc)

let pp fmt t = Format.pp_print_string fmt (describe t)
