lib/geodb/world_data.ml: City
