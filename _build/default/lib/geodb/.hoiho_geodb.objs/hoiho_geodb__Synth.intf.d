lib/geodb/synth.mli: City Hoiho_util
