lib/geodb/city.ml: Format Hoiho_geo List Option Printf String
