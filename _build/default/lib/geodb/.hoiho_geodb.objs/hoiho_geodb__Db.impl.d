lib/geodb/db.ml: City Hashtbl List Option World_data
