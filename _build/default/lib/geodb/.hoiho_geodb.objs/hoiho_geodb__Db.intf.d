lib/geodb/db.mli: City
