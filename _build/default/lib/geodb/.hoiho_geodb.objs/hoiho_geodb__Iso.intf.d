lib/geodb/iso.mli:
