lib/geodb/synth.ml: Array Buffer City Float Hashtbl Hoiho_geo Hoiho_util List
