lib/geodb/city.mli: Format Hoiho_geo
