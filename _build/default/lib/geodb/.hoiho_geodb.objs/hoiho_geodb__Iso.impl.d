lib/geodb/iso.ml: List Option String
