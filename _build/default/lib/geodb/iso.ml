let countries =
  [
    ("ad", "andorra"); ("ae", "united arab emirates"); ("ar", "argentina");
    ("at", "austria"); ("au", "australia"); ("be", "belgium");
    ("bg", "bulgaria"); ("bh", "bahrain"); ("br", "brazil");
    ("ca", "canada"); ("ch", "switzerland"); ("cl", "chile");
    ("cn", "china"); ("co", "colombia"); ("cr", "costa rica");
    ("cz", "czechia"); ("de", "germany"); ("dk", "denmark");
    ("ec", "ecuador"); ("ee", "estonia"); ("eg", "egypt");
    ("es", "spain"); ("fi", "finland"); ("fr", "france");
    ("gb", "united kingdom"); ("gr", "greece"); ("hk", "hong kong");
    ("hr", "croatia"); ("hu", "hungary"); ("id", "indonesia");
    ("ie", "ireland"); ("il", "israel"); ("in", "india");
    ("is", "iceland"); ("it", "italy"); ("jp", "japan");
    ("ke", "kenya"); ("kr", "south korea"); ("lt", "lithuania");
    ("lu", "luxembourg"); ("lv", "latvia"); ("ma", "morocco");
    ("mx", "mexico"); ("my", "malaysia"); ("ng", "nigeria");
    ("nl", "netherlands"); ("no", "norway"); ("np", "nepal");
    ("nz", "new zealand"); ("pa", "panama"); ("pe", "peru");
    ("pg", "papua new guinea"); ("ph", "philippines"); ("pl", "poland");
    ("pt", "portugal"); ("ro", "romania"); ("rs", "serbia");
    ("ru", "russia"); ("sa", "saudi arabia"); ("se", "sweden");
    ("sg", "singapore"); ("si", "slovenia"); ("sk", "slovakia");
    ("th", "thailand"); ("tr", "turkey"); ("tw", "taiwan");
    ("bo", "bolivia"); ("do", "dominican republic"); ("fj", "fiji");
    ("gt", "guatemala"); ("hn", "honduras"); ("jm", "jamaica");
    ("ni", "nicaragua"); ("pr", "puerto rico"); ("py", "paraguay");
    ("sv", "el salvador"); ("kz", "kazakhstan"); ("uz", "uzbekistan");
    ("ge", "georgia"); ("am", "armenia"); ("az", "azerbaijan");
    ("lk", "sri lanka"); ("bd", "bangladesh"); ("pk", "pakistan");
    ("mm", "myanmar"); ("kh", "cambodia"); ("la", "laos");
    ("mn", "mongolia"); ("et", "ethiopia"); ("tz", "tanzania");
    ("ug", "uganda"); ("gh", "ghana"); ("ci", "ivory coast");
    ("sn", "senegal"); ("cm", "cameroon"); ("zm", "zambia");
    ("zw", "zimbabwe"); ("bw", "botswana"); ("na", "namibia");
    ("mz", "mozambique"); ("mu", "mauritius"); ("dz", "algeria");
    ("tn", "tunisia"); ("jo", "jordan"); ("lb", "lebanon");
    ("kw", "kuwait"); ("qa", "qatar"); ("om", "oman");
    ("mt", "malta"); ("cy", "cyprus"); ("mk", "north macedonia");
    ("al", "albania"); ("ba", "bosnia and herzegovina");
    ("md", "moldova"); ("by", "belarus");
    ("ua", "ukraine"); ("us", "united states"); ("uy", "uruguay");
    ("ve", "venezuela"); ("vn", "vietnam"); ("za", "south africa");
  ]

let us_states =
  [
    ("al", "alabama"); ("ak", "alaska"); ("az", "arizona");
    ("ar", "arkansas"); ("ca", "california"); ("co", "colorado");
    ("ct", "connecticut"); ("de", "delaware"); ("dc", "district of columbia");
    ("fl", "florida"); ("ga", "georgia"); ("hi", "hawaii");
    ("id", "idaho"); ("il", "illinois"); ("in", "indiana");
    ("ia", "iowa"); ("ks", "kansas"); ("ky", "kentucky");
    ("la", "louisiana"); ("me", "maine"); ("md", "maryland");
    ("ma", "massachusetts"); ("mi", "michigan"); ("mn", "minnesota");
    ("ms", "mississippi"); ("mo", "missouri"); ("mt", "montana");
    ("ne", "nebraska"); ("nv", "nevada"); ("nh", "new hampshire");
    ("nj", "new jersey"); ("nm", "new mexico"); ("ny", "new york");
    ("nc", "north carolina"); ("nd", "north dakota"); ("oh", "ohio");
    ("ok", "oklahoma"); ("or", "oregon"); ("pa", "pennsylvania");
    ("ri", "rhode island"); ("sc", "south carolina"); ("sd", "south dakota");
    ("tn", "tennessee"); ("tx", "texas"); ("ut", "utah");
    ("vt", "vermont"); ("va", "virginia"); ("wa", "washington");
    ("wv", "west virginia"); ("wi", "wisconsin"); ("wy", "wyoming");
  ]

let ca_provinces =
  [
    ("ab", "alberta"); ("bc", "british columbia"); ("mb", "manitoba");
    ("nb", "new brunswick"); ("nl", "newfoundland and labrador");
    ("ns", "nova scotia"); ("on", "ontario"); ("pe", "prince edward island");
    ("qc", "quebec"); ("sk", "saskatchewan");
  ]

let au_states =
  [
    ("nsw", "new south wales"); ("qld", "queensland");
    ("sa", "south australia"); ("tas", "tasmania"); ("vic", "victoria");
    ("wa", "western australia"); ("act", "australian capital territory");
    ("nt", "northern territory");
  ]

let gb_regions =
  [ ("en", "england"); ("sc", "scotland"); ("wl", "wales"); ("ni", "northern ireland") ]

let canonical_country cc =
  let cc = String.lowercase_ascii cc in
  if cc = "uk" then Some "gb"
  else if List.mem_assoc cc countries then Some cc
  else None

let country_name cc =
  Option.bind (canonical_country cc) (fun c -> List.assoc_opt c countries)

let is_country cc = canonical_country cc <> None

let country_equiv a b =
  match (canonical_country a, canonical_country b) with
  | Some x, Some y -> x = y
  | _ -> false

let states_of = function
  | "us" -> us_states
  | "ca" -> ca_provinces
  | "au" -> au_states
  | "gb" | "uk" -> gb_regions
  | _ -> []

let state_name ~cc code =
  List.assoc_opt (String.lowercase_ascii code) (states_of (String.lowercase_ascii cc))

let is_state ~cc code = state_name ~cc code <> None

let all_countries = countries

let all_states =
  List.concat_map
    (fun cc -> List.map (fun (code, name) -> (cc, code, name)) (states_of cc))
    [ "us"; "ca"; "au"; "gb" ]

let is_any_state code =
  List.exists (fun (_, c, _) -> c = String.lowercase_ascii code) all_states
