(** A city/town record — the unit of geolocation in this system.

    One record gathers every code that can denote the city: IATA and ICAO
    airport codes of airports serving it, its UN/LOCODE location part, its
    CLLI prefix, and colocation facilities located in it. The reference
    dictionaries in {!Db} are all derived from these records, mirroring
    how the paper joins OurAirports, GeoNames, UN/LOCODE, iconectiv and
    PeeringDB data on city names (§5.1.1). *)

type t = {
  name : string;  (** lowercase, words separated by single spaces *)
  cc : string;  (** ISO-3166 alpha-2, lowercase *)
  state : string option;  (** subdivision code where applicable *)
  coord : Hoiho_geo.Coord.t;
  population : int;
  iata : string list;  (** airport codes serving the city, primary first *)
  icao : string list;
  locode : string option;  (** 3-letter location part; full code is cc ^ part *)
  clli : string option;  (** 6-letter CLLI prefix *)
  facilities : (string * string) list;
      (** (facility name token, street-address token), both hostname-safe *)
}

val make :
  ?state:string ->
  ?pop:int ->
  ?iata:string list ->
  ?icao:string list ->
  ?locode:string ->
  ?clli:string ->
  ?fac:(string * string) list ->
  string ->
  string ->
  float ->
  float ->
  t
(** [make name cc lat lon] builds a record; optional codes default to
    derived values when the database is assembled. *)

val squashed : t -> string
(** City name with spaces removed — the form embedded in hostnames
    ("new york" becomes "newyork"). *)

val key : t -> string
(** Unique identity "name|cc|state" used for ground-truth comparison. *)

val clli_region : t -> string
(** Two-letter region used in the city's CLLI prefix: the state for US
    and Canadian cities, a home-nation code for the UK, otherwise the
    country code. *)

val derived_locode : t -> string
(** Default LOCODE location part: the primary IATA code when one exists,
    else the first three letters of the squashed name. *)

val derived_clli : t -> string
(** Default CLLI prefix: first four letters of the squashed name padded
    with 'x', followed by {!clli_region}. *)

val same_place : t -> t -> bool
(** Equality on {!key}. *)

val pp : Format.formatter -> t -> unit
(** Prints "Ashburn, VA, US" style. *)

val describe : t -> string
