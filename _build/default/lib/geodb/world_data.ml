(* Embedded reference dataset: ~230 real cities with the codes that serve
   them. This substitutes for the paper's OurAirports + GeoNames +
   UN/LOCODE + iconectiv + PeeringDB joins (DESIGN.md §1). Coordinates
   and populations are approximate; only relative magnitude matters
   (population breaks ties when ranking learned geohints, §5.4).

   The set deliberately contains every collision class the paper
   discusses: IATA codes that double as network jargon (gig, eth, cpe),
   custom-hint collisions (ash=Nashua vs Ashburn; tok; ldn), ambiguous
   city names (many Washingtons, two Ashburns), CLLI/city-name overlaps
   (London UK vs London ON), and lossy-abbreviation neighbours
   (Haarlem / Helmond / Hilversum, Kuala Lumpur / Kuala Selangor). *)

let c = City.make

let cities =
  [
    (* --- United States: major hubs --- *)
    c "new york" "us" 40.71 (-74.01) ~state:"ny" ~pop:8336817
      ~iata:[ "nyc"; "jfk"; "lga" ] ~icao:[ "kjfk"; "klga" ] ~clli:"nycmny"
      ~fac:[ ("telehouse", "1118thave"); ("datacenter60h", "60hudson") ];
    c "newark" "us" 40.74 (-74.17) ~state:"nj" ~pop:311549 ~iata:[ "ewr" ]
      ~icao:[ "kewr" ] ~clli:"nwrknj" ~fac:[ ("equinix", "165halsey") ];
    c "washington" "us" 38.91 (-77.04) ~state:"dc" ~pop:705749
      ~iata:[ "was"; "dca"; "iad" ] ~icao:[ "kdca"; "kiad" ] ~clli:"washdc";
    c "ashburn" "us" 39.04 (-77.49) ~state:"va" ~pop:43511 ~clli:"asbnva"
      ~locode:"qas" ~fac:[ ("equinix", "21715filigree") ];
    c "chicago" "us" 41.88 (-87.63) ~state:"il" ~pop:2693976
      ~iata:[ "chi"; "ord"; "mdw" ] ~icao:[ "kord"; "kmdw" ] ~clli:"chcgil"
      ~fac:[ ("equinix", "350cermak") ];
    c "los angeles" "us" 34.05 (-118.24) ~state:"ca" ~pop:3979576
      ~iata:[ "lax" ] ~icao:[ "klax" ] ~clli:"lsanca"
      ~fac:[ ("coresite", "1wilshire") ];
    c "san francisco" "us" 37.77 (-122.42) ~state:"ca" ~pop:881549
      ~iata:[ "sfo" ] ~icao:[ "ksfo" ] ~clli:"snfcca"
      ~fac:[ ("digitalrealty", "365main") ];
    c "san jose" "us" 37.34 (-121.89) ~state:"ca" ~pop:1021795
      ~iata:[ "sjc" ] ~icao:[ "ksjc" ] ~clli:"snjsca"
      ~fac:[ ("equinix", "11greatoaks") ];
    c "palo alto" "us" 37.44 (-122.14) ~state:"ca" ~pop:65364 ~iata:[ "pao" ]
      ~fac:[ ("paix", "529bryant") ];
    c "seattle" "us" 47.61 (-122.33) ~state:"wa" ~pop:753675 ~iata:[ "sea" ]
      ~icao:[ "ksea" ] ~clli:"sttlwa" ~fac:[ ("westin", "2001sixth") ];
    c "dallas" "us" 32.78 (-96.80) ~state:"tx" ~pop:1343573
      ~iata:[ "dfw"; "dal" ] ~icao:[ "kdfw"; "kdal" ] ~clli:"dllstx"
      ~fac:[ ("equinix", "1950stemmons") ];
    c "houston" "us" 29.76 (-95.37) ~state:"tx" ~pop:2320268
      ~iata:[ "iah"; "hou" ] ~icao:[ "kiah" ] ~clli:"hstntx";
    c "atlanta" "us" 33.75 (-84.39) ~state:"ga" ~pop:506811 ~iata:[ "atl" ]
      ~icao:[ "katl" ] ~clli:"atlnga" ~fac:[ ("telx", "56marietta") ];
    c "miami" "us" 25.76 (-80.19) ~state:"fl" ~pop:467963 ~iata:[ "mia" ]
      ~icao:[ "kmia" ] ~clli:"miamfl" ~fac:[ ("equinix", "50ne9th") ];
    c "denver" "us" 39.74 (-104.99) ~state:"co" ~pop:727211 ~iata:[ "den" ]
      ~icao:[ "kden" ] ~clli:"dnvrco";
    c "boston" "us" 42.36 (-71.06) ~state:"ma" ~pop:692600 ~iata:[ "bos" ]
      ~icao:[ "kbos" ] ~clli:"bstnma";
    c "philadelphia" "us" 39.95 (-75.17) ~state:"pa" ~pop:1584064
      ~iata:[ "phl" ] ~icao:[ "kphl" ] ~clli:"phlapa";
    c "phoenix" "us" 33.45 (-112.07) ~state:"az" ~pop:1680992 ~iata:[ "phx" ]
      ~icao:[ "kphx" ] ~clli:"phnxaz";
    c "las vegas" "us" 36.17 (-115.14) ~state:"nv" ~pop:651319
      ~iata:[ "las"; "lvs" ] ~icao:[ "klas" ] ~clli:"lsvgnv";
    c "san diego" "us" 32.72 (-117.16) ~state:"ca" ~pop:1423851
      ~iata:[ "san" ] ~icao:[ "ksan" ] ~clli:"sndgca";
    c "portland" "us" 45.52 (-122.68) ~state:"or" ~pop:654741 ~iata:[ "pdx" ]
      ~icao:[ "kpdx" ] ~clli:"ptldor";
    c "minneapolis" "us" 44.98 (-93.27) ~state:"mn" ~pop:429606
      ~iata:[ "msp" ] ~icao:[ "kmsp" ] ~clli:"mplsmn";
    c "detroit" "us" 42.33 (-83.05) ~state:"mi" ~pop:670031 ~iata:[ "dtw" ]
      ~icao:[ "kdtw" ] ~clli:"dtrtmi";
    c "st louis" "us" 38.63 (-90.20) ~state:"mo" ~pop:300576 ~iata:[ "stl" ]
      ~icao:[ "kstl" ] ~clli:"stlsmo";
    c "kansas city" "us" 39.10 (-94.58) ~state:"mo" ~pop:495327
      ~iata:[ "mci" ] ~icao:[ "kmci" ] ~clli:"kscymo";
    c "salt lake city" "us" 40.76 (-111.89) ~state:"ut" ~pop:200567
      ~iata:[ "slc" ] ~icao:[ "kslc" ] ~clli:"slkcut";
    c "austin" "us" 30.27 (-97.74) ~state:"tx" ~pop:978908 ~iata:[ "aus" ]
      ~icao:[ "kaus" ] ~clli:"astntx";
    c "san antonio" "us" 29.42 (-98.49) ~state:"tx" ~pop:1547253
      ~iata:[ "sat" ] ~icao:[ "ksat" ] ~clli:"snantx";
    c "nashville" "us" 36.16 (-86.78) ~state:"tn" ~pop:670820
      ~iata:[ "bna" ] ~icao:[ "kbna" ] ~clli:"nsvltn";
    c "charlotte" "us" 35.23 (-80.84) ~state:"nc" ~pop:885708
      ~iata:[ "clt" ] ~icao:[ "kclt" ] ~clli:"chrlnc";
    c "raleigh" "us" 35.78 (-78.64) ~state:"nc" ~pop:474069 ~iata:[ "rdu" ]
      ~icao:[ "krdu" ] ~clli:"ralgnc";
    c "pittsburgh" "us" 40.44 (-79.99) ~state:"pa" ~pop:300286
      ~iata:[ "pit" ] ~icao:[ "kpit" ] ~clli:"ptbgpa";
    c "cleveland" "us" 41.50 (-81.69) ~state:"oh" ~pop:381009
      ~iata:[ "cle" ] ~icao:[ "kcle" ] ~clli:"clevoh";
    c "columbus" "us" 39.96 (-83.00) ~state:"oh" ~pop:898553 ~iata:[ "cmh" ]
      ~icao:[ "kcmh" ] ~clli:"clmboh";
    c "cincinnati" "us" 39.10 (-84.51) ~state:"oh" ~pop:303940
      ~iata:[ "cvg" ] ~icao:[ "kcvg" ] ~clli:"cncnoh";
    c "indianapolis" "us" 39.77 (-86.16) ~state:"in" ~pop:876384
      ~iata:[ "ind" ] ~icao:[ "kind" ] ~clli:"iplsin";
    c "milwaukee" "us" 43.04 (-87.91) ~state:"wi" ~pop:590157
      ~iata:[ "mke" ] ~icao:[ "kmke" ] ~clli:"mlwkwi";
    c "baltimore" "us" 39.29 (-76.61) ~state:"md" ~pop:593490
      ~iata:[ "bwi" ] ~icao:[ "kbwi" ] ~clli:"bltmmd";
    c "tampa" "us" 27.95 (-82.46) ~state:"fl" ~pop:399700 ~iata:[ "tpa" ]
      ~icao:[ "ktpa" ] ~clli:"tampfl";
    c "orlando" "us" 28.54 (-81.38) ~state:"fl" ~pop:287442 ~iata:[ "mco" ]
      ~icao:[ "kmco" ] ~clli:"orlnfl";
    c "jacksonville" "us" 30.33 (-81.66) ~state:"fl" ~pop:911507
      ~iata:[ "jax" ] ~icao:[ "kjax" ] ~clli:"jcvlfl";
    c "new orleans" "us" 29.95 (-90.07) ~state:"la" ~pop:390144
      ~iata:[ "msy" ] ~icao:[ "kmsy" ] ~clli:"nworla";
    c "memphis" "us" 35.15 (-90.05) ~state:"tn" ~pop:651073 ~iata:[ "mem" ]
      ~icao:[ "kmem" ] ~clli:"mmphtn";
    c "oklahoma city" "us" 35.47 (-97.52) ~state:"ok" ~pop:655057
      ~iata:[ "okc" ] ~icao:[ "kokc" ] ~clli:"okcyok";
    c "albuquerque" "us" 35.08 (-106.65) ~state:"nm" ~pop:560513
      ~iata:[ "abq" ] ~icao:[ "kabq" ] ~clli:"albqnm";
    c "tucson" "us" 32.22 (-110.97) ~state:"az" ~pop:548073 ~iata:[ "tus" ]
      ~icao:[ "ktus" ] ~clli:"tcsnaz";
    c "sacramento" "us" 38.58 (-121.49) ~state:"ca" ~pop:513624
      ~iata:[ "smf" ] ~icao:[ "ksmf" ] ~clli:"scrmca";
    c "fresno" "us" 36.75 (-119.77) ~state:"ca" ~pop:531576 ~iata:[ "fat" ]
      ~icao:[ "kfat" ] ~clli:"frsnca";
    c "honolulu" "us" 21.31 (-157.86) ~state:"hi" ~pop:345064
      ~iata:[ "hnl" ] ~icao:[ "phnl" ] ~clli:"hnluhi";
    c "anchorage" "us" 61.22 (-149.90) ~state:"ak" ~pop:291247
      ~iata:[ "anc" ] ~icao:[ "panc" ] ~clli:"anchak";
    c "buffalo" "us" 42.89 (-78.88) ~state:"ny" ~pop:255284 ~iata:[ "buf" ]
      ~icao:[ "kbuf" ] ~clli:"bfflny";
    c "albany" "us" 42.65 (-73.76) ~state:"ny" ~pop:96460 ~iata:[ "alb" ]
      ~icao:[ "kalb" ] ~clli:"albyny";
    c "syracuse" "us" 43.05 (-76.15) ~state:"ny" ~pop:142327 ~iata:[ "syr" ]
      ~icao:[ "ksyr" ] ~clli:"syrcny";
    c "rochester" "us" 43.16 (-77.61) ~state:"ny" ~pop:205695
      ~iata:[ "roc" ] ~icao:[ "kroc" ] ~clli:"rchsny";
    c "richmond" "us" 37.54 (-77.44) ~state:"va" ~pop:230436 ~iata:[ "ric" ]
      ~icao:[ "kric" ] ~clli:"rcmdva";
    c "norfolk" "us" 36.85 (-76.29) ~state:"va" ~pop:242742 ~iata:[ "orf" ]
      ~icao:[ "korf" ] ~clli:"nrflva";
    c "eugene" "us" 44.05 (-123.09) ~state:"or" ~pop:172622 ~iata:[ "eug" ]
      ~icao:[ "keug" ] ~clli:"eugnor";
    c "boise" "us" 43.62 (-116.21) ~state:"id" ~pop:228959 ~iata:[ "boi" ]
      ~icao:[ "kboi" ] ~clli:"boisid";
    c "omaha" "us" 41.26 (-95.93) ~state:"ne" ~pop:478192 ~iata:[ "oma" ]
      ~icao:[ "koma" ] ~clli:"omahne";
    c "des moines" "us" 41.59 (-93.62) ~state:"ia" ~pop:214237
      ~iata:[ "dsm" ] ~icao:[ "kdsm" ] ~clli:"dsmnia";
    c "louisville" "us" 38.25 (-85.76) ~state:"ky" ~pop:617638
      ~iata:[ "sdf" ] ~icao:[ "ksdf" ] ~clli:"lsvlky";
    c "birmingham" "us" 33.52 (-86.80) ~state:"al" ~pop:200733
      ~iata:[ "bhm" ] ~icao:[ "kbhm" ] ~clli:"bhamal";
    c "el paso" "us" 31.76 (-106.49) ~state:"tx" ~pop:681728
      ~iata:[ "elp" ] ~icao:[ "kelp" ] ~clli:"elpstx";
    c "billings" "us" 45.78 (-108.50) ~state:"mt" ~pop:109577
      ~iata:[ "bil" ] ~icao:[ "kbil" ] ~clli:"blngmt";
    c "fort collins" "us" 40.59 (-105.08) ~state:"co" ~pop:170243
      ~clli:"ftcoco";
    c "richardson" "us" 32.95 (-96.73) ~state:"tx" ~pop:121323
      ~clli:"rcsntx";
    c "brecksville" "us" 41.32 (-81.63) ~state:"oh" ~pop:13635
      ~clli:"brkvoh";
    c "college park" "us" 38.98 (-76.94) ~state:"md" ~pop:32303;
    c "herndon" "us" 38.97 (-77.39) ~state:"va" ~pop:24655 ~clli:"hrndva";
    c "reston" "us" 38.96 (-77.36) ~state:"va" ~pop:63226 ~clli:"rstnva";
    c "santa clara" "us" 37.35 (-121.95) ~state:"ca" ~pop:130365
      ~clli:"sntcca" ~fac:[ ("coresite", "2901coronado") ];
    c "waco" "us" 31.55 (-97.15) ~state:"tx" ~pop:139236 ~iata:[ "act" ]
      ~icao:[ "kact" ] ~clli:"wacotx";
    (* --- US: ambiguity / collision towns --- *)
    c "nashua" "us" 42.77 (-71.46) ~state:"nh" ~pop:89355 ~iata:[ "ash" ]
      ~icao:[ "kash" ] ~clli:"nshanh";
    c "manchester" "us" 42.99 (-71.46) ~state:"nh" ~pop:112673
      ~iata:[ "mht" ] ~icao:[ "kmht" ] ~clli:"mnchnh";
    c "ashland" "us" 37.76 (-77.48) ~state:"va" ~pop:7503 ~clli:"ashlva";
    c "ashland" "us" 39.87 (-75.00) ~state:"nj" ~pop:8202;
    c "ashburn" "us" 31.71 (-83.65) ~state:"ga" ~pop:4397;
    c "chico" "us" 39.73 (-121.84) ~state:"ca" ~pop:94776 ~iata:[ "cic" ]
      ~icao:[ "kcic" ] ~clli:"chcoca";
    c "torrington" "us" 42.06 (-104.18) ~state:"wy" ~pop:6501
      ~iata:[ "tor" ];
    c "washington" "us" 40.17 (-80.25) ~state:"pa" ~pop:13176;
    c "washington" "us" 38.66 (-87.17) ~state:"in" ~pop:11972;
    c "washington" "us" 38.56 (-91.01) ~state:"mo" ~pop:14061;
    c "washington" "us" 35.55 (-77.05) ~state:"nc" ~pop:9744;
    c "washington" "us" 37.13 (-113.51) ~state:"ut" ~pop:27993;
    c "arlington" "us" 38.88 (-77.10) ~state:"va" ~pop:236842;
    c "springfield" "us" 39.80 (-89.64) ~state:"il" ~pop:114394
      ~iata:[ "spi" ] ~clli:"spfdil";
    c "springfield" "us" 42.10 (-72.59) ~state:"ma" ~pop:153606
      ~clli:"spfdma";
    c "columbia" "us" 34.00 (-81.03) ~state:"sc" ~pop:131674
      ~iata:[ "cae" ] ~clli:"clmasc";
    (* --- Canada --- *)
    c "toronto" "ca" 43.65 (-79.38) ~state:"on" ~pop:2930000
      ~iata:[ "yto"; "yyz"; "ytz" ] ~icao:[ "cyyz" ] ~clli:"torton"
      ~fac:[ ("151front", "151front") ];
    c "vancouver" "ca" 49.28 (-123.12) ~state:"bc" ~pop:631486
      ~iata:[ "yvr" ] ~icao:[ "cyvr" ] ~clli:"vancbc";
    c "montreal" "ca" 45.50 (-73.57) ~state:"qc" ~pop:1704694
      ~iata:[ "yul" ] ~icao:[ "cyul" ] ~clli:"mtrlqc";
    c "calgary" "ca" 51.05 (-114.07) ~state:"ab" ~pop:1239220
      ~iata:[ "yyc" ] ~icao:[ "cyyc" ] ~clli:"clgyab";
    c "edmonton" "ca" 53.55 (-113.49) ~state:"ab" ~pop:932546
      ~iata:[ "yeg" ] ~icao:[ "cyeg" ] ~clli:"edtnab";
    c "ottawa" "ca" 45.42 (-75.70) ~state:"on" ~pop:934243 ~iata:[ "yow" ]
      ~icao:[ "cyow" ] ~clli:"ottwon";
    c "winnipeg" "ca" 49.90 (-97.14) ~state:"mb" ~pop:705244
      ~iata:[ "ywg" ] ~icao:[ "cywg" ] ~clli:"wnpgmb";
    c "halifax" "ca" 44.65 (-63.58) ~state:"ns" ~pop:403131 ~iata:[ "yhz" ]
      ~icao:[ "cyhz" ] ~clli:"hlfxns";
    c "quebec city" "ca" 46.81 (-71.21) ~state:"qc" ~pop:531902
      ~iata:[ "yqb" ] ~icao:[ "cyqb" ] ~clli:"qbecqc";
    c "london" "ca" 42.98 (-81.25) ~state:"on" ~pop:383822 ~iata:[ "yxu" ]
      ~icao:[ "cyxu" ] ~clli:"lndnon";
    c "saskatoon" "ca" 52.13 (-106.67) ~state:"sk" ~pop:273010
      ~iata:[ "yxe" ] ~clli:"ssktsk";
    (* --- Europe --- *)
    c "london" "gb" 51.51 (-0.13) ~pop:8982000
      ~iata:[ "lon"; "lhr"; "lgw"; "lcy"; "ltn"; "stn" ]
      ~icao:[ "egll"; "egkk"; "eglc" ] ~clli:"londen"
      ~fac:[ ("telehouse", "docklands") ];
    c "manchester" "gb" 53.48 (-2.24) ~pop:547627 ~iata:[ "man" ]
      ~icao:[ "egcc" ] ~clli:"mnchen";
    c "birmingham" "gb" 52.48 (-1.90) ~pop:1141816 ~iata:[ "bhx" ]
      ~icao:[ "egbb" ] ~clli:"bmhmen";
    c "leeds" "gb" 53.80 (-1.55) ~pop:789194 ~iata:[ "lba" ] ~clli:"leeden";
    c "edinburgh" "gb" 55.95 (-3.19) ~pop:524930 ~iata:[ "edi" ]
      ~icao:[ "egph" ] ~clli:"edbgen";
    c "glasgow" "gb" 55.86 (-4.25) ~pop:633120 ~iata:[ "gla" ]
      ~icao:[ "egpf" ] ~clli:"glgwen";
    c "bristol" "gb" 51.45 (-2.59) ~pop:463400 ~iata:[ "brs" ]
      ~clli:"brsten";
    c "cambridge" "gb" 52.21 0.12 ~pop:123867 ~iata:[ "cbg" ];
    c "washington" "gb" 54.90 (-1.52) ~pop:67085;
    c "slough" "gb" 51.51 (-0.59) ~pop:164000 ~fac:[ ("equinix", "ld4") ];
    c "edge" "gb" 53.22 (-2.30) ~pop:4500;
    c "dublin" "ie" 53.35 (-6.26) ~pop:554554 ~iata:[ "dub" ]
      ~icao:[ "eidw" ] ~fac:[ ("interxion", "dub1") ];
    c "paris" "fr" 48.86 2.35 ~pop:2148271 ~iata:[ "par"; "cdg"; "ory" ]
      ~icao:[ "lfpg"; "lfpo" ] ~clli:"parsfr"
      ~fac:[ ("telehouse", "voltaire") ];
    c "marseille" "fr" 43.30 5.37 ~pop:861635 ~iata:[ "mrs" ]
      ~icao:[ "lfml" ];
    c "lyon" "fr" 45.76 4.84 ~pop:513275 ~iata:[ "lys" ] ~icao:[ "lfll" ];
    c "toulouse" "fr" 43.60 1.44 ~pop:471941 ~iata:[ "tls" ];
    c "bordeaux" "fr" 44.84 (-0.58) ~pop:249712 ~iata:[ "bod" ];
    c "nice" "fr" 43.70 7.27 ~pop:342522 ~iata:[ "nce" ];
    c "strasbourg" "fr" 48.57 7.75 ~pop:280966 ~iata:[ "sxb" ];
    c "amsterdam" "nl" 52.37 4.90 ~pop:821752 ~iata:[ "ams" ]
      ~icao:[ "eham" ] ~clli:"amstnl"
      ~fac:[ ("nikhef", "sciencepark"); ("equinix", "am3") ];
    c "rotterdam" "nl" 51.92 4.48 ~pop:623652 ~iata:[ "rtm" ];
    c "the hague" "nl" 52.08 4.31 ~pop:514861;
    c "haarlem" "nl" 52.38 4.64 ~pop:161265;
    c "helmond" "nl" 51.48 5.66 ~pop:92627;
    c "hilversum" "nl" 52.22 5.17 ~pop:90831;
    c "eindhoven" "nl" 51.44 5.47 ~pop:234456 ~iata:[ "ein" ];
    c "groningen" "nl" 53.22 6.57 ~pop:232826 ~iata:[ "grq" ];
    c "brussels" "be" 50.85 4.35 ~pop:1208542 ~iata:[ "bru" ]
      ~icao:[ "ebbr" ] ~clli:"brslbe";
    c "antwerp" "be" 51.22 4.40 ~pop:523248 ~iata:[ "anr" ];
    c "luxembourg" "lu" 49.61 6.13 ~pop:124509 ~iata:[ "lux" ];
    c "frankfurt" "de" 50.11 8.68 ~pop:753056 ~iata:[ "fra" ]
      ~icao:[ "eddf" ] ~clli:"frnkde"
      ~fac:[ ("equinix", "fr5"); ("interxion", "hanauer") ];
    c "berlin" "de" 52.52 13.40 ~pop:3644826 ~iata:[ "ber"; "txl" ]
      ~icao:[ "eddb" ] ~clli:"brlnde";
    c "munich" "de" 48.14 11.58 ~pop:1471508 ~iata:[ "muc" ]
      ~icao:[ "eddm" ] ~clli:"mnchde";
    c "hamburg" "de" 53.55 9.99 ~pop:1841179 ~iata:[ "ham" ]
      ~icao:[ "eddh" ] ~clli:"hmbgde";
    c "dusseldorf" "de" 51.23 6.77 ~pop:619294 ~iata:[ "dus" ]
      ~icao:[ "eddl" ] ~clli:"dsldde";
    c "stuttgart" "de" 48.78 9.18 ~pop:634830 ~iata:[ "str" ]
      ~icao:[ "edds" ] ~clli:"sttgde";
    c "cologne" "de" 50.94 6.96 ~pop:1085664 ~iata:[ "cgn" ]
      ~icao:[ "eddk" ] ~clli:"clgnde";
    c "dresden" "de" 51.05 13.74 ~pop:554649 ~iata:[ "drs" ] ~clli:"drsdde";
    c "leipzig" "de" 51.34 12.37 ~pop:587857 ~iata:[ "lej" ];
    c "nuremberg" "de" 49.45 11.08 ~pop:518365 ~iata:[ "nue" ];
    c "hanover" "de" 52.38 9.73 ~pop:538068 ~iata:[ "haj" ];
    c "zurich" "ch" 47.37 8.54 ~pop:402762 ~iata:[ "zrh" ] ~icao:[ "lszh" ]
      ~clli:"zrchch" ~fac:[ ("interxion", "zur1") ];
    c "geneva" "ch" 46.20 6.14 ~pop:201818 ~iata:[ "gva" ] ~icao:[ "lsgg" ];
    c "basel" "ch" 47.56 7.59 ~pop:177654 ~iata:[ "bsl" ];
    c "vienna" "at" 48.21 16.37 ~pop:1897491 ~iata:[ "vie" ]
      ~icao:[ "loww" ] ~clli:"viennat";
    c "prague" "cz" 50.08 14.44 ~pop:1301132 ~iata:[ "prg" ]
      ~icao:[ "lkpr" ] ~clli:"pragcz";
    c "warsaw" "pl" 52.23 21.01 ~pop:1790658 ~iata:[ "waw" ]
      ~icao:[ "epwa" ] ~clli:"wrswpl";
    c "krakow" "pl" 50.06 19.94 ~pop:779115 ~iata:[ "krk" ];
    c "budapest" "hu" 47.50 19.04 ~pop:1752286 ~iata:[ "bud" ]
      ~icao:[ "lhbp" ];
    c "bucharest" "ro" 44.43 26.10 ~pop:1883425 ~iata:[ "buh"; "otp" ]
      ~icao:[ "lrop" ];
    c "sofia" "bg" 42.70 23.32 ~pop:1241675 ~iata:[ "sof" ];
    c "belgrade" "rs" 44.79 20.45 ~pop:1166763 ~iata:[ "beg" ];
    c "zagreb" "hr" 45.82 15.98 ~pop:790017 ~iata:[ "zag" ];
    c "ljubljana" "si" 46.06 14.51 ~pop:279631 ~iata:[ "lju" ];
    c "bratislava" "sk" 48.15 17.11 ~pop:432864 ~iata:[ "bts" ];
    c "athens" "gr" 37.98 23.73 ~pop:664046 ~iata:[ "ath" ] ~icao:[ "lgav" ]
      ~clli:"athngr";
    c "madrid" "es" 40.42 (-3.70) ~pop:3223334 ~iata:[ "mad" ]
      ~icao:[ "lemd" ] ~clli:"mdrdes";
    c "barcelona" "es" 41.39 2.17 ~pop:1620343 ~iata:[ "bcn" ]
      ~icao:[ "lebl" ];
    c "valencia" "es" 39.47 (-0.38) ~pop:791413 ~iata:[ "vlc" ];
    c "lisbon" "pt" 38.72 (-9.14) ~pop:504718 ~iata:[ "lis" ]
      ~icao:[ "lppt" ];
    c "porto" "pt" 41.15 (-8.61) ~pop:237591 ~iata:[ "opo" ];
    c "rome" "it" 41.90 12.50 ~pop:2872800 ~iata:[ "rom"; "fco" ]
      ~icao:[ "lirf" ] ~clli:"romeit";
    c "milan" "it" 45.46 9.19 ~pop:1396059 ~iata:[ "mil"; "mxp"; "lin" ]
      ~icao:[ "limc"; "liml" ] ~clli:"milnit"
      ~fac:[ ("mix", "caldera") ];
    c "turin" "it" 45.07 7.69 ~pop:870952 ~iata:[ "trn" ];
    c "naples" "it" 40.85 14.27 ~pop:959470 ~iata:[ "nap" ];
    c "palermo" "it" 38.12 13.36 ~pop:663401 ~iata:[ "pmo" ];
    c "bologna" "it" 44.49 11.34 ~pop:388367 ~iata:[ "blq" ];
    c "montesilvano marina" "it" 42.51 14.15 ~pop:45991;
    c "stockholm" "se" 59.33 18.07 ~pop:975551 ~iata:[ "sto"; "arn" ]
      ~icao:[ "essa" ] ~clli:"sthmse";
    c "gothenburg" "se" 57.71 11.97 ~pop:583056 ~iata:[ "got" ];
    c "oslo" "no" 59.91 10.75 ~pop:693494 ~iata:[ "osl" ] ~icao:[ "engm" ];
    c "copenhagen" "dk" 55.68 12.57 ~pop:794128 ~iata:[ "cph" ]
      ~icao:[ "ekch" ];
    c "helsinki" "fi" 60.17 24.94 ~pop:655281 ~iata:[ "hel" ]
      ~icao:[ "efhk" ];
    c "reykjavik" "is" 64.15 (-21.94) ~pop:131136 ~iata:[ "rkv"; "kef" ];
    c "tallinn" "ee" 59.44 24.75 ~pop:437619 ~iata:[ "tll" ];
    c "riga" "lv" 56.95 24.11 ~pop:632614 ~iata:[ "rix" ];
    c "vilnius" "lt" 54.69 25.28 ~pop:588412 ~iata:[ "vno" ];
    c "kyiv" "ua" 50.45 30.52 ~pop:2967360 ~iata:[ "iev"; "kbp" ];
    c "moscow" "ru" 55.76 37.62 ~pop:12506468 ~iata:[ "mow"; "svo"; "dme" ]
      ~icao:[ "uuee" ];
    c "st petersburg" "ru" 59.93 30.34 ~pop:5351935 ~iata:[ "led" ];
    c "istanbul" "tr" 41.01 28.98 ~pop:15462452 ~iata:[ "ist"; "saw" ]
      ~icao:[ "ltfm" ];
    c "ankara" "tr" 39.93 32.86 ~pop:5503985 ~iata:[ "esb" ];
    (* --- Middle East & Africa --- *)
    c "tel aviv" "il" 32.09 34.78 ~pop:460613 ~iata:[ "tlv" ]
      ~icao:[ "llbg" ];
    c "eilat" "il" 29.56 34.95 ~pop:52299 ~iata:[ "eth" ];
    c "dubai" "ae" 25.20 55.27 ~pop:3331420 ~iata:[ "dxb" ]
      ~icao:[ "omdb" ];
    c "manama" "bh" 26.23 50.59 ~pop:157474 ~iata:[ "bah" ];
    c "riyadh" "sa" 24.71 46.68 ~pop:7676654 ~iata:[ "ruh" ];
    c "cairo" "eg" 30.04 31.24 ~pop:9539673 ~iata:[ "cai" ]
      ~icao:[ "heca" ];
    c "casablanca" "ma" 33.57 (-7.59) ~pop:3359818 ~iata:[ "cmn"; "cas" ];
    c "lagos" "ng" 6.52 3.38 ~pop:14862000 ~iata:[ "los" ];
    c "nairobi" "ke" (-1.29) 36.82 ~pop:4397073 ~iata:[ "nbo" ];
    c "johannesburg" "za" (-26.20) 28.05 ~pop:5635127 ~iata:[ "jnb" ]
      ~icao:[ "faor" ] ~fac:[ ("teraco", "isando") ];
    c "cape town" "za" (-33.92) 18.42 ~pop:4618000 ~iata:[ "cpt" ]
      ~icao:[ "fact" ];
    c "durban" "za" (-29.86) 31.03 ~pop:3442361 ~iata:[ "dur" ];
    (* --- Asia --- *)
    c "tokyo" "jp" 35.68 139.69 ~pop:13960000 ~iata:[ "tyo"; "nrt"; "hnd" ]
      ~icao:[ "rjtt"; "rjaa" ] ~clli:"tokyjp"
      ~fac:[ ("equinix", "ty4"); ("atbpc", "otemachi") ];
    c "tokuyama" "jp" 34.05 131.81 ~pop:140000 ~locode:"tky";
    c "osaka" "jp" 34.69 135.50 ~pop:2691185 ~iata:[ "osa"; "kix"; "itm" ]
      ~icao:[ "rjbb" ] ~clli:"osakjp";
    c "nagoya" "jp" 35.18 136.91 ~pop:2295638 ~iata:[ "ngo" ];
    c "fukuoka" "jp" 33.59 130.40 ~pop:1612392 ~iata:[ "fuk" ];
    c "sapporo" "jp" 43.06 141.35 ~pop:1952356 ~iata:[ "spk"; "cts" ];
    c "seoul" "kr" 37.57 126.98 ~pop:9776000 ~iata:[ "sel"; "icn"; "gmp" ]
      ~icao:[ "rksi" ] ~clli:"seolkr";
    c "busan" "kr" 35.18 129.08 ~pop:3448737 ~iata:[ "pus" ];
    c "beijing" "cn" 39.90 116.41 ~pop:21542000 ~iata:[ "bjs"; "pek" ]
      ~icao:[ "zbaa" ];
    c "shanghai" "cn" 31.23 121.47 ~pop:24870895 ~iata:[ "sha"; "pvg" ]
      ~icao:[ "zspd" ];
    c "shenzhen" "cn" 22.54 114.06 ~pop:12528300 ~iata:[ "szx" ];
    c "guangzhou" "cn" 23.13 113.26 ~pop:14904400 ~iata:[ "can" ];
    c "hong kong" "hk" 22.32 114.17 ~pop:7482500 ~iata:[ "hkg" ]
      ~icao:[ "vhhh" ] ~clli:"hkcnhk"
      ~fac:[ ("mega-i", "chaiwan") ];
    c "taipei" "tw" 25.03 121.57 ~pop:2646204 ~iata:[ "tpe"; "tsa" ]
      ~icao:[ "rctp" ];
    c "singapore" "sg" 1.35 103.82 ~pop:5685800 ~iata:[ "sin" ]
      ~icao:[ "wsss" ] ~clli:"singsg"
      ~fac:[ ("equinix", "sg1") ];
    c "kuala lumpur" "my" 3.14 101.69 ~pop:1790000 ~iata:[ "kul" ]
      ~icao:[ "wmkk" ] ~clli:"klprmy";
    c "kuala selangor" "my" 3.34 101.25 ~pop:225000;
    c "bangkok" "th" 13.76 100.50 ~pop:10539000 ~iata:[ "bkk"; "dmk" ]
      ~icao:[ "vtbs" ];
    c "jakarta" "id" (-6.21) 106.85 ~pop:10562088 ~iata:[ "jkt"; "cgk" ]
      ~icao:[ "wiii" ];
    c "manila" "ph" 14.60 120.98 ~pop:1780148 ~iata:[ "mnl" ]
      ~icao:[ "rpll" ];
    c "hanoi" "vn" 21.03 105.85 ~pop:8053663 ~iata:[ "han" ];
    c "ho chi minh city" "vn" 10.82 106.63 ~pop:8993082 ~iata:[ "sgn" ];
    c "mumbai" "in" 19.08 72.88 ~pop:12442373 ~iata:[ "bom" ]
      ~icao:[ "vabb" ] ~fac:[ ("gpx", "andheri") ];
    c "delhi" "in" 28.70 77.10 ~pop:16787941 ~iata:[ "del" ]
      ~icao:[ "vidp" ];
    c "chennai" "in" 13.08 80.27 ~pop:7088000 ~iata:[ "maa" ];
    c "bangalore" "in" 12.97 77.59 ~pop:8443675 ~iata:[ "blr" ];
    c "hyderabad" "in" 17.39 78.49 ~pop:6809970 ~iata:[ "hyd" ];
    c "kolkata" "in" 22.57 88.36 ~pop:4496694 ~iata:[ "ccu" ];
    c "lamidanda" "np" 27.25 86.67 ~pop:4500 ~iata:[ "ldn" ];
    c "kathmandu" "np" 27.72 85.32 ~pop:975453 ~iata:[ "ktm" ];
    (* --- Oceania --- *)
    c "sydney" "au" (-33.87) 151.21 ~state:"nsw" ~pop:5312163
      ~iata:[ "syd" ] ~icao:[ "yssy" ] ~clli:"sydnau"
      ~fac:[ ("equinix", "sy3") ];
    c "melbourne" "au" (-37.81) 144.96 ~state:"vic" ~pop:5078193
      ~iata:[ "mel" ] ~icao:[ "ymml" ] ~clli:"melbau";
    c "brisbane" "au" (-27.47) 153.03 ~state:"qld" ~pop:2560720
      ~iata:[ "bne" ] ~icao:[ "ybbn" ] ~clli:"brisau";
    c "perth" "au" (-31.95) 115.86 ~state:"wa" ~pop:2059484 ~iata:[ "per" ]
      ~icao:[ "ypph" ] ~clli:"pertau";
    c "adelaide" "au" (-34.93) 138.60 ~state:"sa" ~pop:1345777
      ~iata:[ "adl" ] ~clli:"adelau";
    c "canberra" "au" (-35.28) 149.13 ~state:"act" ~pop:426704
      ~iata:[ "cbr" ];
    c "auckland" "nz" (-36.85) 174.76 ~pop:1657200 ~iata:[ "akl" ]
      ~icao:[ "nzaa" ];
    c "wellington" "nz" (-41.29) 174.78 ~pop:212700 ~iata:[ "wlg" ];
    c "christchurch" "nz" (-43.53) 172.64 ~pop:377200 ~iata:[ "chc" ];
    c "hamilton" "nz" (-37.79) 175.28 ~pop:176500 ~iata:[ "hlz" ];
    c "torokina" "pg" (-6.20) 155.06 ~pop:2000 ~iata:[ "tok" ];
    c "port moresby" "pg" (-9.44) 147.18 ~pop:364145 ~iata:[ "pom" ];
    (* --- Latin America --- *)
    c "mexico city" "mx" 19.43 (-99.13) ~pop:9209944 ~iata:[ "mex" ]
      ~icao:[ "mmmx" ];
    c "campeche" "mx" 19.83 (-90.53) ~pop:220389 ~iata:[ "cpe" ];
    c "guadalajara" "mx" 20.66 (-103.35) ~pop:1495182 ~iata:[ "gdl" ];
    c "monterrey" "mx" 25.69 (-100.32) ~pop:1142194 ~iata:[ "mty" ];
    c "queretaro" "mx" 20.59 (-100.39) ~pop:878931 ~iata:[ "qro" ];
    c "panama city" "pa" 8.98 (-79.52) ~pop:880691 ~iata:[ "pty" ];
    c "san jose" "cr" 9.93 (-84.08) ~pop:342188 ~iata:[ "sjo" ];
    c "bogota" "co" 4.71 (-74.07) ~pop:7412566 ~iata:[ "bog" ]
      ~icao:[ "skbo" ];
    c "medellin" "co" 6.25 (-75.56) ~pop:2529403 ~iata:[ "mde" ];
    c "quito" "ec" (-0.18) (-78.47) ~pop:2011388 ~iata:[ "uio" ];
    c "lima" "pe" (-12.05) (-77.04) ~pop:9751717 ~iata:[ "lim" ]
      ~icao:[ "spjc" ];
    c "chiclayo" "pe" (-6.77) (-79.84) ~pop:552508 ~iata:[ "cix" ];
    c "santiago" "cl" (-33.45) (-70.67) ~pop:6257516 ~iata:[ "scl" ]
      ~icao:[ "scel" ];
    c "buenos aires" "ar" (-34.60) (-58.38) ~pop:2890151
      ~iata:[ "bue"; "eze"; "aep" ] ~icao:[ "saez" ];
    c "montevideo" "uy" (-34.90) (-56.16) ~pop:1319108 ~iata:[ "mvd" ];
    c "caracas" "ve" 10.48 (-66.90) ~pop:1943901 ~iata:[ "ccs" ];
    c "sao paulo" "br" (-23.55) (-46.63) ~pop:12252023
      ~iata:[ "sao"; "gru"; "cgh" ] ~icao:[ "sbgr" ]
      ~fac:[ ("equinix", "sp2") ];
    c "rio de janeiro" "br" (-22.91) (-43.17) ~pop:6718903
      ~iata:[ "rio"; "gig"; "sdu" ] ~icao:[ "sbgl" ];
    c "brasilia" "br" (-15.79) (-47.88) ~pop:3055149 ~iata:[ "bsb" ];
    c "fortaleza" "br" (-3.73) (-38.53) ~pop:2686612 ~iata:[ "for" ];
    c "porto alegre" "br" (-30.03) (-51.22) ~pop:1483771 ~iata:[ "poa" ];
    c "curitiba" "br" (-25.43) (-49.27) ~pop:1948626 ~iata:[ "cwb" ];
    c "salvador" "br" (-12.97) (-38.50) ~pop:2886698 ~iata:[ "ssa" ];
    c "recife" "br" (-8.05) (-34.88) ~pop:1653461 ~iata:[ "rec" ];
    c "belo horizonte" "br" (-19.92) (-43.94) ~pop:2521564 ~iata:[ "cnf" ];
    c "manaus" "br" (-3.12) (-60.02) ~pop:2219580 ~iata:[ "mao" ];
    (* --- United States: secondary markets --- *)
    c "hartford" "us" 41.76 (-72.67) ~state:"ct" ~pop:122105 ~iata:[ "bdl" ]
      ~icao:[ "kbdl" ] ~clli:"hrfrct";
    c "providence" "us" 41.82 (-71.41) ~state:"ri" ~pop:179883
      ~iata:[ "pvd" ] ~icao:[ "kpvd" ] ~clli:"prvdri";
    c "portland" "us" 43.66 (-70.26) ~state:"me" ~pop:66215 ~iata:[ "pwm" ]
      ~icao:[ "kpwm" ] ~clli:"ptldme";
    c "burlington" "us" 44.48 (-73.21) ~state:"vt" ~pop:42819
      ~iata:[ "btv" ] ~clli:"brlnvt";
    c "charleston" "us" 32.78 (-79.93) ~state:"sc" ~pop:137566
      ~iata:[ "chs" ] ~clli:"chrssc";
    c "charleston" "us" 38.35 (-81.63) ~state:"wv" ~pop:46536
      ~iata:[ "crw" ] ~clli:"chrswv";
    c "savannah" "us" 32.08 (-81.09) ~state:"ga" ~pop:145862
      ~iata:[ "sav" ];
    c "knoxville" "us" 35.96 (-83.92) ~state:"tn" ~pop:187500
      ~iata:[ "tys" ] ~clli:"knvltn";
    c "chattanooga" "us" 35.05 (-85.31) ~state:"tn" ~pop:181099
      ~iata:[ "cha" ];
    c "lexington" "us" 38.04 (-84.50) ~state:"ky" ~pop:323152
      ~iata:[ "lex" ] ~clli:"lxtnky";
    c "dayton" "us" 39.76 (-84.19) ~state:"oh" ~pop:140407 ~iata:[ "day" ]
      ~clli:"daytoh";
    c "toledo" "us" 41.65 (-83.54) ~state:"oh" ~pop:270871 ~iata:[ "tol" ];
    c "akron" "us" 41.08 (-81.52) ~state:"oh" ~pop:197597 ~iata:[ "cak" ];
    c "grand rapids" "us" 42.96 (-85.66) ~state:"mi" ~pop:201013
      ~iata:[ "grr" ] ~clli:"grrpmi";
    c "madison" "us" 43.07 (-89.40) ~state:"wi" ~pop:259680 ~iata:[ "msn" ]
      ~clli:"mdsnwi";
    c "green bay" "us" 44.51 (-88.01) ~state:"wi" ~pop:104779
      ~iata:[ "grb" ];
    c "fargo" "us" 46.88 (-96.79) ~state:"nd" ~pop:124662 ~iata:[ "far" ]
      ~clli:"fargnd";
    c "sioux falls" "us" 43.54 (-96.73) ~state:"sd" ~pop:183793
      ~iata:[ "fsd" ];
    c "wichita" "us" 37.69 (-97.34) ~state:"ks" ~pop:389938 ~iata:[ "ict" ]
      ~clli:"wchtks";
    c "tulsa" "us" 36.15 (-95.99) ~state:"ok" ~pop:401190 ~iata:[ "tul" ]
      ~clli:"tulsok";
    c "little rock" "us" 34.75 (-92.29) ~state:"ar" ~pop:197312
      ~iata:[ "lit" ] ~clli:"ltrkar";
    c "jackson" "us" 32.30 (-90.18) ~state:"ms" ~pop:160628 ~iata:[ "jan" ];
    c "baton rouge" "us" 30.45 (-91.15) ~state:"la" ~pop:220236
      ~iata:[ "btr" ] ~clli:"btrgla";
    c "shreveport" "us" 32.53 (-93.75) ~state:"la" ~pop:187593
      ~iata:[ "shv" ];
    c "mobile" "us" 30.70 (-88.04) ~state:"al" ~pop:187041 ~iata:[ "mob" ];
    c "huntsville" "us" 34.73 (-86.59) ~state:"al" ~pop:215006
      ~iata:[ "hsv" ];
    c "pensacola" "us" 30.42 (-87.22) ~state:"fl" ~pop:54312
      ~iata:[ "pns" ];
    c "tallahassee" "us" 30.44 (-84.28) ~state:"fl" ~pop:196169
      ~iata:[ "tlh" ];
    c "fort myers" "us" 26.64 (-81.87) ~state:"fl" ~pop:92245
      ~iata:[ "rsw" ];
    c "sarasota" "us" 27.34 (-82.53) ~state:"fl" ~pop:58285 ~iata:[ "srq" ];
    c "amarillo" "us" 35.19 (-101.83) ~state:"tx" ~pop:200393
      ~iata:[ "ama" ];
    c "lubbock" "us" 33.58 (-101.86) ~state:"tx" ~pop:258862
      ~iata:[ "lbb" ];
    c "corpus christi" "us" 27.80 (-97.40) ~state:"tx" ~pop:326586
      ~iata:[ "crp" ];
    c "mcallen" "us" 26.20 (-98.23) ~state:"tx" ~pop:143268 ~iata:[ "mfe" ];
    c "colorado springs" "us" 38.83 (-104.82) ~state:"co" ~pop:478221
      ~iata:[ "cos" ] ~clli:"cspgco";
    c "cheyenne" "us" 41.14 (-104.82) ~state:"wy" ~pop:65132
      ~iata:[ "cys" ] ~clli:"chynwy";
    c "missoula" "us" 46.87 (-113.99) ~state:"mt" ~pop:75516
      ~iata:[ "mso" ];
    c "spokane" "us" 47.66 (-117.43) ~state:"wa" ~pop:228989
      ~iata:[ "geg" ] ~clli:"spknwa";
    c "tacoma" "us" 47.25 (-122.44) ~state:"wa" ~pop:219346;
    c "bellingham" "us" 48.75 (-122.48) ~state:"wa" ~pop:92314
      ~iata:[ "bli" ];
    c "salem" "us" 44.94 (-123.04) ~state:"or" ~pop:177723 ~iata:[ "sle" ];
    c "bend" "us" 44.06 (-121.31) ~state:"or" ~pop:99178;
    c "medford" "us" 42.33 (-122.88) ~state:"or" ~pop:85824
      ~iata:[ "mfr" ];
    c "reno" "us" 39.53 (-119.81) ~state:"nv" ~pop:264165 ~iata:[ "rno" ]
      ~clli:"renonv";
    c "bakersfield" "us" 35.37 (-119.02) ~state:"ca" ~pop:403455
      ~iata:[ "bfl" ];
    c "santa barbara" "us" 34.42 (-119.70) ~state:"ca" ~pop:91364
      ~iata:[ "sba" ];
    c "monterey" "us" 36.60 (-121.89) ~state:"ca" ~pop:28454
      ~iata:[ "mry" ];
    c "santa rosa" "us" 38.44 (-122.71) ~state:"ca" ~pop:178127
      ~iata:[ "sts" ];
    c "eureka" "us" 40.80 (-124.16) ~state:"ca" ~pop:26512 ~iata:[ "acv" ];
    c "flagstaff" "us" 35.20 (-111.65) ~state:"az" ~pop:76831
      ~iata:[ "flg" ];
    c "yuma" "us" 32.69 (-114.63) ~state:"az" ~pop:97428 ~iata:[ "yum" ];
    c "santa fe" "us" 35.69 (-105.94) ~state:"nm" ~pop:84683
      ~iata:[ "saf" ];
    c "provo" "us" 40.23 (-111.66) ~state:"ut" ~pop:116618 ~iata:[ "pvu" ];
    c "ogden" "us" 41.22 (-111.97) ~state:"ut" ~pop:87321 ~iata:[ "ogd" ];
    c "idaho falls" "us" 43.49 (-112.04) ~state:"id" ~pop:64818
      ~iata:[ "ida" ];
    c "lincoln" "us" 40.81 (-96.68) ~state:"ne" ~pop:289102 ~iata:[ "lnk" ]
      ~clli:"lncnne";
    c "cedar rapids" "us" 41.98 (-91.67) ~state:"ia" ~pop:133562
      ~iata:[ "cid" ];
    c "davenport" "us" 41.52 (-90.58) ~state:"ia" ~pop:101724;
    c "peoria" "us" 40.69 (-89.59) ~state:"il" ~pop:113150 ~iata:[ "pia" ];
    c "rockford" "us" 42.27 (-89.09) ~state:"il" ~pop:148655
      ~iata:[ "rfd" ];
    c "fort wayne" "us" 41.08 (-85.14) ~state:"in" ~pop:270402
      ~iata:[ "fwa" ];
    c "evansville" "us" 37.97 (-87.56) ~state:"in" ~pop:117979
      ~iata:[ "evv" ];
    c "erie" "us" 42.13 (-80.09) ~state:"pa" ~pop:94831 ~iata:[ "eri" ];
    c "allentown" "us" 40.61 (-75.49) ~state:"pa" ~pop:125845
      ~iata:[ "abe" ];
    c "harrisburg" "us" 40.27 (-76.88) ~state:"pa" ~pop:49528
      ~iata:[ "mdt" ] ~clli:"hrbgpa";
    c "scranton" "us" 41.41 (-75.66) ~state:"pa" ~pop:76328 ~iata:[ "avp" ];
    c "trenton" "us" 40.22 (-74.76) ~state:"nj" ~pop:83203 ~iata:[ "ttn" ];
    c "atlantic city" "us" 39.36 (-74.42) ~state:"nj" ~pop:37743
      ~iata:[ "acy" ];
    c "wilmington" "us" 39.75 (-75.55) ~state:"de" ~pop:70655
      ~iata:[ "ilg" ] ~clli:"wlmgde";
    c "dover" "us" 39.16 (-75.52) ~state:"de" ~pop:38079;
    c "annapolis" "us" 38.98 (-76.49) ~state:"md" ~pop:39223;
    c "roanoke" "us" 37.27 (-79.94) ~state:"va" ~pop:100011
      ~iata:[ "roa" ];
    c "charlottesville" "us" 38.03 (-78.48) ~state:"va" ~pop:47266
      ~iata:[ "cho" ];
    c "greensboro" "us" 36.07 (-79.79) ~state:"nc" ~pop:296710
      ~iata:[ "gso" ] ~clli:"grbonc";
    c "asheville" "us" 35.60 (-82.55) ~state:"nc" ~pop:94589
      ~iata:[ "avl" ];
    c "columbia" "us" 38.95 (-92.33) ~state:"mo" ~pop:126254
      ~iata:[ "cou" ];
    c "springfield" "us" 37.21 (-93.29) ~state:"mo" ~pop:169176
      ~iata:[ "sgf" ];
    c "montgomery" "us" 32.37 (-86.30) ~state:"al" ~pop:200022
      ~iata:[ "mgm" ];
    c "augusta" "us" 33.47 (-81.97) ~state:"ga" ~pop:202081 ~iata:[ "ags" ];
    c "macon" "us" 32.84 (-83.63) ~state:"ga" ~pop:153159 ~iata:[ "mcn" ];
    (* --- Canada: secondary --- *)
    c "victoria" "ca" 48.43 (-123.37) ~state:"bc" ~pop:92141
      ~iata:[ "yyj" ] ~clli:"vctrbc";
    c "kelowna" "ca" 49.89 (-119.50) ~state:"bc" ~pop:132084
      ~iata:[ "ylw" ];
    c "regina" "ca" 50.45 (-104.62) ~state:"sk" ~pop:215106
      ~iata:[ "yqr" ] ~clli:"regnsk";
    c "hamilton" "ca" 43.26 (-79.87) ~state:"on" ~pop:536917
      ~iata:[ "yhm" ];
    c "kitchener" "ca" 43.45 (-80.49) ~state:"on" ~pop:233222
      ~iata:[ "ykf" ];
    c "windsor" "ca" 42.30 (-83.02) ~state:"on" ~pop:217188
      ~iata:[ "yqg" ];
    c "moncton" "ca" 46.09 (-64.77) ~state:"nb" ~pop:71889 ~iata:[ "yqm" ];
    c "st johns" "ca" 47.56 (-52.71) ~state:"nl" ~pop:108860
      ~iata:[ "yyt" ];
    (* --- Europe: secondary --- *)
    c "liverpool" "gb" 53.41 (-2.98) ~pop:498042 ~iata:[ "lpl" ]
      ~clli:"lvplen";
    c "newcastle" "gb" 54.98 (-1.61) ~pop:300196 ~iata:[ "ncl" ];
    c "sheffield" "gb" 53.38 (-1.47) ~pop:584853;
    c "nottingham" "gb" 52.95 (-1.15) ~pop:321500;
    c "southampton" "gb" 50.90 (-1.40) ~pop:253651 ~iata:[ "sou" ];
    c "cardiff" "gb" 51.48 (-3.18) ~pop:362756 ~iata:[ "cwl" ];
    c "belfast" "gb" 54.60 (-5.93) ~pop:343542 ~iata:[ "bfs"; "bhd" ];
    c "aberdeen" "gb" 57.15 (-2.09) ~pop:198590 ~iata:[ "abz" ];
    c "cork" "ie" 51.90 (-8.47) ~pop:210000 ~iata:[ "ork" ];
    c "galway" "ie" 53.27 (-9.06) ~pop:79934;
    c "lille" "fr" 50.63 3.07 ~pop:232787 ~iata:[ "lil" ];
    c "nantes" "fr" 47.22 (-1.55) ~pop:309346 ~iata:[ "nte" ];
    c "rennes" "fr" 48.11 (-1.68) ~pop:216815 ~iata:[ "rns" ];
    c "montpellier" "fr" 43.61 3.88 ~pop:285121 ~iata:[ "mpl" ];
    c "grenoble" "fr" 45.19 5.72 ~pop:158454 ~iata:[ "gnb" ];
    c "dijon" "fr" 47.32 5.04 ~pop:156920 ~iata:[ "dij" ];
    c "utrecht" "nl" 52.09 5.12 ~pop:357179;
    c "tilburg" "nl" 51.56 5.09 ~pop:217595;
    c "nijmegen" "nl" 51.84 5.86 ~pop:176731;
    c "maastricht" "nl" 50.85 5.69 ~pop:121565 ~iata:[ "mst" ];
    c "ghent" "be" 51.05 3.73 ~pop:263927;
    c "liege" "be" 50.63 5.57 ~pop:197355 ~iata:[ "lgg" ];
    c "charleroi" "be" 50.41 4.44 ~pop:201816 ~iata:[ "crl" ];
    c "bremen" "de" 53.08 8.81 ~pop:569352 ~iata:[ "bre" ];
    c "essen" "de" 51.46 7.01 ~pop:583109 ~iata:[ "ess" ];
    c "dortmund" "de" 51.51 7.47 ~pop:587010 ~iata:[ "dtm" ];
    c "mannheim" "de" 49.49 8.47 ~pop:309370;
    c "karlsruhe" "de" 49.01 8.40 ~pop:313092 ~iata:[ "fkb" ];
    c "bonn" "de" 50.74 7.10 ~pop:327258;
    c "wiesbaden" "de" 50.08 8.24 ~pop:278342;
    c "bielefeld" "de" 52.03 8.53 ~pop:333786;
    c "rostock" "de" 54.09 12.14 ~pop:208886 ~iata:[ "rlg" ];
    c "kiel" "de" 54.32 10.14 ~pop:247548 ~iata:[ "kel" ];
    c "magdeburg" "de" 52.13 11.62 ~pop:238697;
    c "erfurt" "de" 50.98 11.03 ~pop:213699 ~iata:[ "erf" ];
    c "bern" "ch" 46.95 7.45 ~pop:133883 ~iata:[ "brn" ];
    c "lausanne" "ch" 46.52 6.63 ~pop:139111;
    c "lugano" "ch" 46.01 8.96 ~pop:62315 ~iata:[ "lug" ];
    c "graz" "at" 47.07 15.44 ~pop:289440 ~iata:[ "grz" ];
    c "linz" "at" 48.31 14.29 ~pop:204846 ~iata:[ "lnz" ];
    c "innsbruck" "at" 47.27 11.39 ~pop:132493 ~iata:[ "inn" ];
    c "salzburg" "at" 47.81 13.06 ~pop:155021 ~iata:[ "szg" ];
    c "brno" "cz" 49.20 16.61 ~pop:379526 ~iata:[ "brq" ];
    c "ostrava" "cz" 49.84 18.28 ~pop:287968 ~iata:[ "osr" ];
    c "gdansk" "pl" 54.35 18.65 ~pop:470907 ~iata:[ "gdn" ];
    c "wroclaw" "pl" 51.11 17.04 ~pop:641607 ~iata:[ "wro" ];
    c "poznan" "pl" 52.41 16.93 ~pop:534813 ~iata:[ "poz" ];
    c "katowice" "pl" 50.26 19.02 ~pop:294510 ~iata:[ "ktw" ];
    c "lodz" "pl" 51.76 19.46 ~pop:679941 ~iata:[ "lcj" ];
    c "szczecin" "pl" 53.43 14.55 ~pop:403883 ~iata:[ "szz" ];
    c "debrecen" "hu" 47.53 21.64 ~pop:201981 ~iata:[ "deb" ];
    c "cluj napoca" "ro" 46.77 23.59 ~pop:324576 ~iata:[ "clj" ];
    c "timisoara" "ro" 45.76 21.23 ~pop:319279 ~iata:[ "tsr" ];
    c "iasi" "ro" 47.16 27.59 ~pop:290422 ~iata:[ "ias" ];
    c "plovdiv" "bg" 42.14 24.75 ~pop:346893 ~iata:[ "pdv" ];
    c "varna" "bg" 43.21 27.92 ~pop:335177 ~iata:[ "var" ];
    c "thessaloniki" "gr" 40.64 22.94 ~pop:325182 ~iata:[ "skg" ];
    c "seville" "es" 37.39 (-5.98) ~pop:688711 ~iata:[ "svq" ];
    c "bilbao" "es" 43.26 (-2.93) ~pop:345821 ~iata:[ "bio" ];
    c "zaragoza" "es" 41.65 (-0.89) ~pop:674997 ~iata:[ "zaz" ];
    c "malaga" "es" 36.72 (-4.42) ~pop:574654 ~iata:[ "agp" ];
    c "palma" "es" 39.57 2.65 ~pop:416065 ~iata:[ "pmi" ];
    c "coimbra" "pt" 40.21 (-8.43) ~pop:143396;
    c "braga" "pt" 41.55 (-8.43) ~pop:192494;
    c "florence" "it" 43.77 11.26 ~pop:382258 ~iata:[ "flr" ];
    c "venice" "it" 45.44 12.32 ~pop:261905 ~iata:[ "vce" ];
    c "genoa" "it" 44.41 8.93 ~pop:583601 ~iata:[ "goa" ];
    c "verona" "it" 45.44 10.99 ~pop:257275 ~iata:[ "vrn" ];
    c "bari" "it" 41.13 16.87 ~pop:325052 ~iata:[ "bri" ];
    c "catania" "it" 37.50 15.09 ~pop:311584 ~iata:[ "cta" ];
    c "cagliari" "it" 39.22 9.11 ~pop:154460 ~iata:[ "cag" ];
    c "malmo" "se" 55.60 13.00 ~pop:316588 ~iata:[ "mmx" ];
    c "uppsala" "se" 59.86 17.64 ~pop:177074;
    c "bergen" "no" 60.39 5.32 ~pop:283929 ~iata:[ "bgo" ];
    c "trondheim" "no" 63.43 10.40 ~pop:205163 ~iata:[ "trd" ];
    c "stavanger" "no" 58.97 5.73 ~pop:144699 ~iata:[ "svg" ];
    c "aarhus" "dk" 56.16 10.20 ~pop:285273 ~iata:[ "aar" ];
    c "aalborg" "dk" 57.05 9.92 ~pop:217075 ~iata:[ "aal" ];
    c "odense" "dk" 55.40 10.40 ~pop:180760 ~iata:[ "ode" ];
    c "tampere" "fi" 61.50 23.76 ~pop:244029 ~iata:[ "tmp" ];
    c "oulu" "fi" 65.01 25.47 ~pop:208939 ~iata:[ "oul" ];
    c "turku" "fi" 60.45 22.27 ~pop:194244 ~iata:[ "tku" ];
    c "tartu" "ee" 58.38 26.72 ~pop:93865 ~iata:[ "tay" ];
    c "kaunas" "lt" 54.90 23.89 ~pop:295269 ~iata:[ "kun" ];
    c "lviv" "ua" 49.84 24.03 ~pop:724713 ~iata:[ "lwo" ];
    c "odesa" "ua" 46.48 30.73 ~pop:1017699 ~iata:[ "ods" ];
    c "kharkiv" "ua" 49.99 36.23 ~pop:1443207 ~iata:[ "hrk" ];
    c "novosibirsk" "ru" 55.01 82.93 ~pop:1625631 ~iata:[ "ovb" ];
    c "yekaterinburg" "ru" 56.84 60.65 ~pop:1493749 ~iata:[ "svx" ];
    c "kazan" "ru" 55.80 49.11 ~pop:1257391 ~iata:[ "kzn" ];
    c "izmir" "tr" 38.42 27.14 ~pop:2937343 ~iata:[ "adb" ];
    c "antalya" "tr" 36.90 30.70 ~pop:1512539 ~iata:[ "ayt" ];
    c "bursa" "tr" 40.19 29.06 ~pop:1965000 ~iata:[ "yei" ];
    (* --- Asia & Middle East: secondary --- *)
    c "kyoto" "jp" 35.01 135.77 ~pop:1474570;
    c "kobe" "jp" 34.69 135.20 ~pop:1522944 ~iata:[ "ukb" ];
    c "yokohama" "jp" 35.44 139.64 ~pop:3757630;
    c "hiroshima" "jp" 34.39 132.46 ~pop:1199391 ~iata:[ "hij" ];
    c "sendai" "jp" 38.27 140.87 ~pop:1096704 ~iata:[ "sdj" ];
    c "naha" "jp" 26.21 127.68 ~pop:317405 ~iata:[ "oka" ];
    c "incheon" "kr" 37.46 126.71 ~pop:2954955;
    c "daegu" "kr" 35.87 128.60 ~pop:2461769 ~iata:[ "tae" ];
    c "daejeon" "kr" 36.35 127.38 ~pop:1475221;
    c "gwangju" "kr" 35.16 126.85 ~pop:1469214 ~iata:[ "kwj" ];
    c "tianjin" "cn" 39.34 117.36 ~pop:13866009 ~iata:[ "tsn" ];
    c "chengdu" "cn" 30.57 104.07 ~pop:16311600 ~iata:[ "ctu" ];
    c "chongqing" "cn" 29.43 106.91 ~pop:30484300 ~iata:[ "ckg" ];
    c "wuhan" "cn" 30.59 114.31 ~pop:11081000 ~iata:[ "wuh" ];
    c "xian" "cn" 34.34 108.94 ~pop:12005600 ~iata:[ "xiy" ];
    c "hangzhou" "cn" 30.27 120.16 ~pop:10360000 ~iata:[ "hgh" ];
    c "nanjing" "cn" 32.06 118.80 ~pop:8505500 ~iata:[ "nkg" ];
    c "xiamen" "cn" 24.48 118.09 ~pop:4290000 ~iata:[ "xmn" ];
    c "qingdao" "cn" 36.07 120.38 ~pop:9046200 ~iata:[ "tao" ];
    c "kaohsiung" "tw" 22.62 120.31 ~pop:2773533 ~iata:[ "khh" ];
    c "taichung" "tw" 24.15 120.67 ~pop:2816667 ~iata:[ "rmq" ];
    c "cebu" "ph" 10.32 123.89 ~pop:922611 ~iata:[ "ceb" ];
    c "davao" "ph" 7.07 125.61 ~pop:1632991 ~iata:[ "dvo" ];
    c "surabaya" "id" (-7.26) 112.75 ~pop:2874314 ~iata:[ "sub" ];
    c "bandung" "id" (-6.92) 107.61 ~pop:2444160 ~iata:[ "bdo" ];
    c "medan" "id" 3.59 98.67 ~pop:2210624 ~iata:[ "kno" ];
    c "penang" "my" 5.41 100.33 ~pop:708127 ~iata:[ "pen" ];
    c "johor bahru" "my" 1.49 103.74 ~pop:497097 ~iata:[ "jhb" ];
    c "chiang mai" "th" 18.79 98.98 ~pop:127240 ~iata:[ "cnx" ];
    c "phuket" "th" 7.88 98.39 ~pop:79308 ~iata:[ "hkt" ];
    c "da nang" "vn" 16.05 108.22 ~pop:1134310 ~iata:[ "dad" ];
    c "pune" "in" 18.52 73.86 ~pop:3124458 ~iata:[ "pnq" ];
    c "ahmedabad" "in" 23.02 72.57 ~pop:5570585 ~iata:[ "amd" ];
    c "jaipur" "in" 26.91 75.79 ~pop:3046163 ~iata:[ "jai" ];
    c "kochi" "in" 9.93 76.26 ~pop:677381 ~iata:[ "cok" ];
    c "lucknow" "in" 26.85 80.95 ~pop:2815601 ~iata:[ "lko" ];
    c "nagpur" "in" 21.15 79.09 ~pop:2405665 ~iata:[ "nag" ];
    c "abu dhabi" "ae" 24.45 54.38 ~pop:1482816 ~iata:[ "auh" ];
    c "sharjah" "ae" 25.35 55.42 ~pop:1274749 ~iata:[ "shj" ];
    c "jeddah" "sa" 21.49 39.19 ~pop:3976000 ~iata:[ "jed" ];
    c "dammam" "sa" 26.43 50.10 ~pop:903312 ~iata:[ "dmm" ];
    c "haifa" "il" 32.79 34.99 ~pop:285316 ~iata:[ "hfa" ];
    c "jerusalem" "il" 31.77 35.21 ~pop:936425;
    c "alexandria" "eg" 31.20 29.92 ~pop:5200000 ~iata:[ "hbe" ];
    c "giza" "eg" 30.01 31.21 ~pop:4367343;
    c "rabat" "ma" 34.02 (-6.84) ~pop:577827 ~iata:[ "rba" ];
    c "marrakesh" "ma" 31.63 (-8.01) ~pop:928850 ~iata:[ "rak" ];
    c "abuja" "ng" 9.07 7.40 ~pop:1235880 ~iata:[ "abv" ];
    c "ibadan" "ng" 7.38 3.95 ~pop:3565108;
    c "mombasa" "ke" (-4.04) 39.67 ~pop:1208333 ~iata:[ "mba" ];
    c "pretoria" "za" (-25.75) 28.19 ~pop:741651;
    c "port elizabeth" "za" (-33.96) 25.60 ~pop:967677 ~iata:[ "plz" ];
    c "bloemfontein" "za" (-29.09) 26.16 ~pop:556000 ~iata:[ "bfn" ];
    (* --- Oceania & Latin America: secondary --- *)
    c "gold coast" "au" (-28.02) 153.40 ~state:"qld" ~pop:679127
      ~iata:[ "ool" ];
    c "newcastle" "au" (-32.93) 151.78 ~state:"nsw" ~pop:322278
      ~iata:[ "ntl" ];
    c "hobart" "au" (-42.88) 147.33 ~state:"tas" ~pop:240342
      ~iata:[ "hba" ];
    c "darwin" "au" (-12.46) 130.84 ~state:"nt" ~pop:147255
      ~iata:[ "drw" ];
    c "cairns" "au" (-16.92) 145.77 ~state:"qld" ~pop:153952
      ~iata:[ "cns" ];
    c "townsville" "au" (-19.26) 146.82 ~state:"qld" ~pop:180820
      ~iata:[ "tsv" ];
    c "wollongong" "au" (-34.42) 150.89 ~state:"nsw" ~pop:302739;
    c "geelong" "au" (-38.15) 144.36 ~state:"vic" ~pop:268277;
    c "dunedin" "nz" (-45.87) 170.50 ~pop:126255 ~iata:[ "dud" ];
    c "tauranga" "nz" (-37.69) 176.17 ~pop:151300 ~iata:[ "trg" ];
    c "suva" "fj" (-18.14) 178.44 ~pop:93870 ~iata:[ "suv" ];
    c "tijuana" "mx" 32.51 (-117.04) ~pop:1810645 ~iata:[ "tij" ];
    c "cancun" "mx" 21.16 (-86.85) ~pop:888797 ~iata:[ "cun" ];
    c "merida" "mx" 20.97 (-89.62) ~pop:892363 ~iata:[ "mid" ];
    c "puebla" "mx" 19.04 (-98.20) ~pop:1576259 ~iata:[ "pbc" ];
    c "leon" "mx" 21.12 (-101.68) ~pop:1579803 ~iata:[ "bjx" ];
    c "guatemala city" "gt" 14.63 (-90.51) ~pop:995393 ~iata:[ "gua" ];
    c "san salvador" "sv" 13.69 (-89.22) ~pop:567698 ~iata:[ "sal" ];
    c "managua" "ni" 12.11 (-86.24) ~pop:1055247 ~iata:[ "mga" ];
    c "tegucigalpa" "hn" 14.07 (-87.19) ~pop:1190230 ~iata:[ "tgu" ];
    c "kingston" "jm" 17.97 (-76.79) ~pop:662426 ~iata:[ "kin" ];
    c "santo domingo" "do" 18.49 (-69.93) ~pop:1029110 ~iata:[ "sdq" ];
    c "san juan" "pr" 18.47 (-66.11) ~pop:342259 ~iata:[ "sju" ];
    c "cali" "co" 3.45 (-76.53) ~pop:2227642 ~iata:[ "clo" ];
    c "barranquilla" "co" 10.97 (-74.80) ~pop:1206946 ~iata:[ "baq" ];
    c "guayaquil" "ec" (-2.19) (-79.89) ~pop:2650288 ~iata:[ "gye" ];
    c "arequipa" "pe" (-16.41) (-71.54) ~pop:1008290 ~iata:[ "aqp" ];
    c "trujillo" "pe" (-8.11) (-79.03) ~pop:919899 ~iata:[ "tru" ];
    c "valparaiso" "cl" (-33.05) (-71.62) ~pop:296655;
    c "concepcion" "cl" (-36.83) (-73.05) ~pop:223574 ~iata:[ "ccp" ];
    c "cordoba" "ar" (-31.42) (-64.18) ~pop:1391000 ~iata:[ "cor" ];
    c "rosario" "ar" (-32.94) (-60.65) ~pop:1193605 ~iata:[ "ros" ];
    c "mendoza" "ar" (-32.89) (-68.83) ~pop:115041 ~iata:[ "mdz" ];
    c "asuncion" "py" (-25.26) (-57.58) ~pop:525252 ~iata:[ "asu" ];
    c "la paz" "bo" (-16.50) (-68.15) ~pop:766468 ~iata:[ "lpb" ];
    (* --- central Asia, Caucasus, south Asia --- *)
    c "almaty" "kz" 43.24 76.95 ~pop:1977011 ~iata:[ "ala" ];
    c "astana" "kz" 51.17 71.45 ~pop:1136008 ~iata:[ "nqz" ];
    c "tashkent" "uz" 41.30 69.24 ~pop:2571668 ~iata:[ "tas" ];
    c "tbilisi" "ge" 41.72 44.79 ~pop:1118035 ~iata:[ "tbs" ];
    c "yerevan" "am" 40.18 44.51 ~pop:1075800 ~iata:[ "evn" ];
    c "baku" "az" 40.41 49.87 ~pop:2293100 ~iata:[ "gyd" ];
    c "colombo" "lk" 6.93 79.85 ~pop:752993 ~iata:[ "cmb" ];
    c "dhaka" "bd" 23.81 90.41 ~pop:8906039 ~iata:[ "dac" ];
    c "chittagong" "bd" 22.36 91.78 ~pop:2592439 ~iata:[ "cgp" ];
    c "karachi" "pk" 24.86 67.01 ~pop:14910352 ~iata:[ "khi" ];
    c "lahore" "pk" 31.55 74.34 ~pop:11126285 ~iata:[ "lhe" ];
    c "islamabad" "pk" 33.68 73.05 ~pop:1014825 ~iata:[ "isb" ];
    c "yangon" "mm" 16.87 96.20 ~pop:5214000 ~iata:[ "rgn" ];
    c "phnom penh" "kh" 11.56 104.92 ~pop:2129371 ~iata:[ "pnh" ];
    c "vientiane" "la" 17.97 102.60 ~pop:820000 ~iata:[ "vte" ];
    c "ulaanbaatar" "mn" 47.89 106.91 ~pop:1466125 ~iata:[ "uln" ];
    (* --- Africa --- *)
    c "addis ababa" "et" 9.03 38.74 ~pop:3352000 ~iata:[ "add" ];
    c "dar es salaam" "tz" (-6.79) 39.21 ~pop:4364541 ~iata:[ "dar" ];
    c "kampala" "ug" 0.35 32.58 ~pop:1507080 ~iata:[ "ebb" ];
    c "accra" "gh" 5.60 (-0.19) ~pop:2291352 ~iata:[ "acc" ];
    c "abidjan" "ci" 5.36 (-4.01) ~pop:4395243 ~iata:[ "abj" ];
    c "dakar" "sn" 14.72 (-17.47) ~pop:1146053 ~iata:[ "dss" ];
    c "douala" "cm" 4.05 9.70 ~pop:2768400 ~iata:[ "dla" ];
    c "lusaka" "zm" (-15.39) 28.32 ~pop:1747152 ~iata:[ "lun" ];
    c "harare" "zw" (-17.83) 31.05 ~pop:1485231 ~iata:[ "hre" ];
    c "gaborone" "bw" (-24.65) 25.91 ~pop:231592 ~iata:[ "gbe" ];
    c "windhoek" "na" (-22.56) 17.08 ~pop:325858 ~iata:[ "whk" ];
    c "maputo" "mz" (-25.97) 32.57 ~pop:1101170 ~iata:[ "mpm" ];
    c "port louis" "mu" (-20.16) 57.50 ~pop:149194 ~iata:[ "mru" ];
    c "algiers" "dz" 36.75 3.06 ~pop:2364230 ~iata:[ "alg" ];
    c "tunis" "tn" 36.81 10.18 ~pop:638845 ~iata:[ "tun" ];
    c "kano" "ng" 12.00 8.52 ~pop:2828861 ~iata:[ "kan" ];
    c "kisumu" "ke" (-0.09) 34.77 ~pop:409928 ~iata:[ "kis" ];
    (* --- Middle East & Mediterranean --- *)
    c "amman" "jo" 31.95 35.93 ~pop:4007526 ~iata:[ "amm" ];
    c "beirut" "lb" 33.89 35.50 ~pop:361366 ~iata:[ "bey" ];
    c "kuwait city" "kw" 29.38 47.99 ~pop:637411 ~iata:[ "kwi" ];
    c "doha" "qa" 25.29 51.53 ~pop:1450000 ~iata:[ "doh" ];
    c "muscat" "om" 23.59 58.41 ~pop:797000 ~iata:[ "mct" ];
    c "valletta" "mt" 35.90 14.51 ~pop:394230 ~iata:[ "mla" ];
    c "nicosia" "cy" 35.19 33.38 ~pop:116392 ~iata:[ "lca" ];
    c "skopje" "mk" 42.00 21.43 ~pop:506926 ~iata:[ "skp" ];
    c "tirana" "al" 41.33 19.82 ~pop:418495 ~iata:[ "tia" ];
    c "sarajevo" "ba" 43.86 18.41 ~pop:275524 ~iata:[ "sjj" ];
    c "chisinau" "md" 47.01 28.86 ~pop:532513 ~iata:[ "rmo" ];
    c "minsk" "by" 53.90 27.57 ~pop:1992685 ~iata:[ "msq" ];
    (* --- more collision-prone town names --- *)
    c "richmond" "us" 37.94 (-122.35) ~state:"ca" ~pop:110567;
    c "springfield" "us" 44.05 (-123.02) ~state:"or" ~pop:62979;
    c "manchester" "us" 41.78 (-72.52) ~state:"ct" ~pop:59713;
    c "dublin" "us" 37.70 (-121.94) ~state:"ca" ~pop:72589;
    c "athens" "us" 33.96 (-83.38) ~state:"ga" ~pop:127315 ~iata:[ "ahn" ];
    c "rome" "us" 34.26 (-85.16) ~state:"ga" ~pop:37713 ~iata:[ "rmg" ];
    c "paris" "us" 33.66 (-95.56) ~state:"tx" ~pop:24839;
    c "berlin" "us" 43.97 (-88.94) ~state:"wi" ~pop:5420;
    c "moscow" "us" 46.73 (-117.00) ~state:"id" ~pop:25435;
    c "naples" "us" 26.14 (-81.79) ~state:"fl" ~pop:21812 ~iata:[ "apf" ];
    c "toledo" "es" 39.86 (-4.03) ~pop:84282;
    c "valencia" "ve" 10.16 (-68.00) ~pop:1385083 ~iata:[ "vln" ];
    c "cordoba" "es" 37.89 (-4.78) ~pop:325701 ~iata:[ "odb" ];
  ]
