module Prng = Hoiho_util.Prng

let consonants = [| 'b'; 'c'; 'd'; 'f'; 'g'; 'h'; 'k'; 'l'; 'm'; 'n'; 'p'; 'r'; 's'; 't'; 'v'; 'w' |]
let vowels = [| 'a'; 'e'; 'i'; 'o'; 'u' |]

let town_name rng =
  let syllables = Prng.range rng 3 5 in
  let buf = Buffer.create 12 in
  for _ = 1 to syllables do
    Buffer.add_char buf (Prng.pick rng consonants);
    Buffer.add_char buf (Prng.pick rng vowels)
  done;
  Buffer.contents buf

let expand rng n base =
  let names = Hashtbl.create (List.length base + n) in
  List.iter (fun c -> Hashtbl.replace names (City.squashed c) ()) base;
  let anchors = Array.of_list base in
  let rec fresh_name tries =
    let name = town_name rng in
    if Hashtbl.mem names name && tries < 100 then fresh_name (tries + 1)
    else begin
      Hashtbl.replace names name ();
      name
    end
  in
  let towns = ref [] in
  for _ = 1 to n do
    let anchor = Prng.pick rng anchors in
    let name = fresh_name 0 in
    let lat =
      Float.max (-89.0)
        (Float.min 89.0 (anchor.City.coord.Hoiho_geo.Coord.lat +. Prng.gaussian rng ~mean:0.0 ~stddev:10.0))
    in
    let lon =
      let l = anchor.City.coord.Hoiho_geo.Coord.lon +. Prng.gaussian rng ~mean:0.0 ~stddev:10.0 in
      if l > 180.0 then l -. 360.0 else if l < -180.0 then l +. 360.0 else l
    in
    let pop = int_of_float (exp (Prng.float rng 6.0 +. 7.0)) in
    let town =
      City.make name anchor.City.cc lat lon ?state:anchor.City.state ~pop
    in
    towns := town :: !towns
  done;
  base @ List.rev !towns
