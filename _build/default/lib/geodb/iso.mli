(** ISO-3166 country codes and first-level subdivisions (states and
    provinces), as used for the state/country annotations that operators
    attach to geohints (e.g. the "uk" in "lhr15.uk" or the "va" in
    "ashbva"). *)

val country_name : string -> string option
(** [country_name "us"] is [Some "united states"]. Codes are lowercase
    alpha-2. Recognizes the common non-ISO alias "uk" for "gb". *)

val is_country : string -> bool

val canonical_country : string -> string option
(** Maps aliases to the canonical ISO code: ["uk"] becomes ["gb"]. *)

val country_equiv : string -> string -> bool
(** True when the two codes denote the same country ("uk" ≡ "gb"). *)

val state_name : cc:string -> string -> string option
(** [state_name ~cc:"us" "va"] is [Some "virginia"]. Covers US states,
    Canadian provinces and Australian states/territories. *)

val is_state : cc:string -> string -> bool

val is_any_state : string -> bool
(** True if the code is a subdivision of any covered country. *)

val all_countries : (string * string) list
(** (code, name) pairs. *)

val all_states : (string * string * string) list
(** (country, code, name) triples. *)
