type t = {
  cities : City.t list;
  by_iata : (string, City.t list) Hashtbl.t;
  by_icao : (string, City.t list) Hashtbl.t;
  by_locode : (string, City.t list) Hashtbl.t;
  by_clli : (string, City.t list) Hashtbl.t;
  by_name : (string, City.t list) Hashtbl.t;
  by_fac : (string, (string * City.t) list) Hashtbl.t;
  locode_assigned : (string, string) Hashtbl.t; (* city key -> full locode *)
  clli_assigned : (string, string) Hashtbl.t;
  by_key : (string, City.t) Hashtbl.t;
}

let push tbl k v =
  Hashtbl.replace tbl k (match Hashtbl.find_opt tbl k with None -> [ v ] | Some l -> l @ [ v ])

let of_cities cities =
  let t =
    {
      cities;
      by_iata = Hashtbl.create 512;
      by_icao = Hashtbl.create 512;
      by_locode = Hashtbl.create 512;
      by_clli = Hashtbl.create 512;
      by_name = Hashtbl.create 512;
      by_fac = Hashtbl.create 128;
      locode_assigned = Hashtbl.create 512;
      clli_assigned = Hashtbl.create 512;
      by_key = Hashtbl.create 512;
    }
  in
  List.iter
    (fun city ->
      Hashtbl.replace t.by_key (City.key city) city;
      List.iter (fun code -> push t.by_iata code city) city.City.iata;
      List.iter (fun code -> push t.by_icao code city) city.City.icao;
      push t.by_name (City.squashed city) city;
      List.iter
        (fun (name, addr) ->
          push t.by_fac addr (name, city);
          if name <> addr then push t.by_fac name (name, city))
        city.City.facilities)
    cities;
  (* unique-code tables: explicit codes claim their slot first, then
     derived codes fill remaining slots by descending population *)
  let by_pop =
    List.stable_sort (fun a b -> compare b.City.population a.City.population) cities
  in
  let assign tbl assigned code city =
    if not (Hashtbl.mem tbl code) then begin
      Hashtbl.replace tbl code [ city ];
      Hashtbl.replace assigned (City.key city) code
    end
  in
  List.iter
    (fun city ->
      match city.City.locode with
      | Some part -> assign t.by_locode t.locode_assigned (city.City.cc ^ part) city
      | None -> ())
    by_pop;
  List.iter
    (fun city ->
      match city.City.clli with
      | Some prefix -> assign t.by_clli t.clli_assigned prefix city
      | None -> ())
    by_pop;
  List.iter
    (fun city ->
      if not (Hashtbl.mem t.locode_assigned (City.key city)) then
        assign t.by_locode t.locode_assigned
          (city.City.cc ^ City.derived_locode city)
          city)
    by_pop;
  List.iter
    (fun city ->
      if not (Hashtbl.mem t.clli_assigned (City.key city)) then
        assign t.by_clli t.clli_assigned (City.derived_clli city) city)
    by_pop;
  t

let default_db = ref None

let default () =
  match !default_db with
  | Some db -> db
  | None ->
      let db = of_cities World_data.cities in
      default_db := Some db;
      db

let cities t = t.cities
let size t = List.length t.cities

let find tbl code = Option.value (Hashtbl.find_opt tbl code) ~default:[]

let lookup_iata t code = find t.by_iata code
let lookup_icao t code = find t.by_icao code
let lookup_locode t code = find t.by_locode code
let lookup_clli t code = find t.by_clli code
let lookup_city_name t name = find t.by_name name
let lookup_facility t token = find t.by_fac token

let locode_of_city t city = Hashtbl.find_opt t.locode_assigned (City.key city)
let clli_of_city t city = Hashtbl.find_opt t.clli_assigned (City.key city)

let iata_cities t =
  Hashtbl.fold
    (fun code cities acc -> List.map (fun c -> (code, c)) cities @ acc)
    t.by_iata []

let fold_cities f t init = List.fold_left (fun acc c -> f c acc) init t.cities

let find_city t ~key = Hashtbl.find_opt t.by_key key
