(** The assembled reference location dictionary (§5.1.1).

    Built from {!City.t} records; exposes the per-code lookup tables the
    geolocation method consults: IATA, ICAO, LOCODE (full 5-letter code),
    CLLI prefix (6 letters), squashed city name, and facility name /
    street-address tokens.

    Codes that a record does not specify explicitly are derived with the
    documented defaults ({!City.derived_locode}, {!City.derived_clli});
    when two cities derive the same code, the higher-population city
    keeps it — mirroring the fact that real dictionaries map each code to
    exactly one location, while city names may be ambiguous. *)

type t

val of_cities : City.t list -> t

val default : unit -> t
(** The embedded world dataset; memoized. *)

val cities : t -> City.t list

val size : t -> int

val lookup_iata : t -> string -> City.t list
val lookup_icao : t -> string -> City.t list

val lookup_locode : t -> string -> City.t list
(** Full 5-letter code, e.g. ["usqas"]. *)

val lookup_clli : t -> string -> City.t list
(** 6-letter CLLI prefix, e.g. ["asbnva"]. *)

val lookup_city_name : t -> string -> City.t list
(** Squashed lowercase name, e.g. ["newyork"]. *)

val lookup_facility : t -> string -> (string * City.t) list
(** Token matched against facility street-address and name tokens;
    returns (facility name, city) pairs. *)

val locode_of_city : t -> City.t -> string option
(** The full LOCODE this database assigned to the city. *)

val clli_of_city : t -> City.t -> string option

val iata_cities : t -> (string * City.t) list
(** All (code, city) pairs in the IATA table — used for nearest-airport
    analyses (figure 10b). *)

val fold_cities : (City.t -> 'a -> 'a) -> t -> 'a -> 'a

val find_city : t -> key:string -> City.t option
(** Lookup by {!City.key}. *)
