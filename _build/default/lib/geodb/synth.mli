(** Deterministic synthetic expansion of the city dataset.

    For scale experiments we can grow the dictionary with plausible
    fictitious towns: pronounceable names, coordinates near a real
    anchor city, log-uniform populations, and derived codes that do not
    collide with existing entries. The expansion is a pure function of
    the PRNG seed. *)

val expand : Hoiho_util.Prng.t -> int -> City.t list -> City.t list
(** [expand rng n base] returns [base] plus [n] synthetic towns. *)

val town_name : Hoiho_util.Prng.t -> string
(** A pronounceable lowercase name of 5-10 letters. *)
