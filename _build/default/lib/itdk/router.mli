(** A router inferred by alias resolution, with the observations the
    geolocation method consumes: interface hostnames and minimum RTTs
    from vantage points (ping-based, and the sparser traceroute-observed
    RTTs that DRoP-style methods were limited to).

    [truth] carries the generator's ground truth for synthetic datasets.
    The learning pipeline never reads it; only validation and the
    experiment harness do — mirroring the paper's use of operator
    feedback that is unavailable at training time (§4 challenge 2). *)

type truth = {
  city_key : string;  (** where the router actually is *)
  coord : Hoiho_geo.Coord.t;
  intended_hint : string option;
      (** the geohint string the operator meant to embed, if any *)
  stale : bool;  (** hostname kept from a previous deployment (§4.3) *)
  hostname_hints : (string * string option) list;
      (** per hostname: the geohint code it embeds, [None] when the
          hostname carries no geohint *)
}

type t = {
  id : int;
  hostnames : string list;  (** may be empty (no PTR record) *)
  asn : int option;
      (** the AS that operates the router, from BGP-derived IP2AS data —
          an observable input (like RTTs), used to train ASN-extraction
          conventions (§3.4) *)
  ping_rtts : (int * float) list;
      (** (vp id, min RTT ms) from followup ping measurements *)
  trace_rtts : (int * float) list;
      (** (vp id, min RTT ms) observed in traceroute only *)
  truth : truth option;
}

val make :
  ?hostnames:string list ->
  ?asn:int ->
  ?ping_rtts:(int * float) list ->
  ?trace_rtts:(int * float) list ->
  ?truth:truth ->
  int ->
  t

val has_hostname : t -> bool

val has_rtt : t -> bool
(** True when any RTT sample (ping or traceroute) exists. *)

val min_ping_rtt : t -> (int * float) option
(** The (vp, rtt) pair with the smallest ping RTT. *)

val min_trace_rtt : t -> (int * float) option

val suffixes : t -> string list
(** Distinct registered suffixes of this router's hostnames. *)
