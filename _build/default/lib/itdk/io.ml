(* Format (one record per line, fields separated by single spaces):
     itdk <label...>
     vp <id> <name> <lat> <lon> <city_key>
     link <id> <id>
     router <id>
     asn <asn>
     host <hostname>
     ping <vp_id> <rtt_ms>
     trace <vp_id> <rtt_ms>
     truth <lat> <lon> <stale:0|1> <city_key>
     hint <intended_hint>
     hosthint <hostname> <code|->
   A hostname never contains spaces; city keys contain '|' but no
   spaces; labels may contain spaces and run to end of line. *)

module Coord = Hoiho_geo.Coord

let emit put (ds : Dataset.t) =
  let pr fmt = Printf.ksprintf put fmt in
  pr "itdk %s\n" ds.Dataset.label;
  Array.iter
    (fun (vp : Vp.t) ->
      pr "vp %d %s %.6f %.6f %s\n" vp.Vp.id vp.Vp.name
        vp.Vp.coord.Coord.lat vp.Vp.coord.Coord.lon vp.Vp.city_key)
    ds.Dataset.vps;
  Array.iter (fun (a, b) -> pr "link %d %d\n" a b) ds.Dataset.links;
  Array.iter
    (fun (r : Router.t) ->
      pr "router %d\n" r.Router.id;
      (match r.Router.asn with
      | Some asn -> pr "asn %d\n" asn
      | None -> ());
      List.iter (fun h -> pr "host %s\n" h) r.Router.hostnames;
      List.iter
        (fun (vp, rtt) -> pr "ping %d %.4f\n" vp rtt)
        r.Router.ping_rtts;
      List.iter
        (fun (vp, rtt) -> pr "trace %d %.4f\n" vp rtt)
        r.Router.trace_rtts;
      match r.Router.truth with
      | None -> ()
      | Some t ->
          pr "truth %.6f %.6f %d %s\n" t.Router.coord.Coord.lat
            t.Router.coord.Coord.lon
            (if t.Router.stale then 1 else 0)
            t.Router.city_key;
          (match t.Router.intended_hint with
          | Some hint -> pr "hint %s\n" hint
          | None -> ());
          List.iter
            (fun (h, code) ->
              pr "hosthint %s %s\n" h (Option.value code ~default:"-"))
            t.Router.hostname_hints)
    ds.Dataset.routers

let write oc ds = emit (output_string oc) ds

let to_string ds =
  let buf = Buffer.create 65536 in
  emit (Buffer.add_string buf) ds;
  Buffer.contents buf

(* mutable router under construction *)
type partial = {
  id : int;
  mutable hostnames : string list;
  mutable asn : int option;
  mutable ping : (int * float) list;
  mutable trace : (int * float) list;
  mutable truth : Router.truth option;
}

let finish p =
  Router.make p.id ~hostnames:(List.rev p.hostnames) ?asn:p.asn
    ~ping_rtts:(List.rev p.ping) ~trace_rtts:(List.rev p.trace)
    ?truth:p.truth

let read ic =
  let label = ref "dataset" in
  let vps = ref [] in
  let links = ref [] in
  let routers = ref [] in
  let current : partial option ref = ref None in
  let flush () =
    match !current with
    | Some p ->
        routers := finish p :: !routers;
        current := None
    | None -> ()
  in
  let lineno = ref 0 in
  let fail msg = failwith (Printf.sprintf "Itdk.Io.read: line %d: %s" !lineno msg) in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if line <> "" then begin
         let fields = String.split_on_char ' ' line in
         match fields with
         | "itdk" :: rest -> label := String.concat " " rest
         | [ "vp"; id; name; lat; lon; city_key ] ->
             vps :=
               Vp.make ~id:(int_of_string id) ~name ~city_key
                 ~coord:
                   (Coord.make ~lat:(float_of_string lat) ~lon:(float_of_string lon))
               :: !vps
         | [ "link"; a; b ] ->
             links := (int_of_string a, int_of_string b) :: !links
         | [ "router"; id ] ->
             flush ();
             current :=
               Some
                 { id = int_of_string id; hostnames = []; asn = None; ping = [];
                   trace = []; truth = None }
         | [ "asn"; asn ] -> (
             match !current with
             | Some p -> p.asn <- Some (int_of_string asn)
             | None -> fail "asn outside router")
         | [ "host"; h ] -> (
             match !current with
             | Some p -> p.hostnames <- h :: p.hostnames
             | None -> fail "host outside router")
         | [ "ping"; vp; rtt ] -> (
             match !current with
             | Some p -> p.ping <- (int_of_string vp, float_of_string rtt) :: p.ping
             | None -> fail "ping outside router")
         | [ "trace"; vp; rtt ] -> (
             match !current with
             | Some p -> p.trace <- (int_of_string vp, float_of_string rtt) :: p.trace
             | None -> fail "trace outside router")
         | [ "truth"; lat; lon; stale; city_key ] -> (
             match !current with
             | Some p ->
                 p.truth <-
                   Some
                     {
                       Router.city_key;
                       coord =
                         Coord.make ~lat:(float_of_string lat) ~lon:(float_of_string lon);
                       intended_hint = None;
                       stale = stale = "1";
                       hostname_hints = [];
                     }
             | None -> fail "truth outside router")
         | [ "hint"; hint ] -> (
             match !current with
             | Some ({ truth = Some t; _ } as p) ->
                 p.truth <- Some { t with Router.intended_hint = Some hint }
             | _ -> fail "hint outside truth")
         | [ "hosthint"; h; code ] -> (
             match !current with
             | Some ({ truth = Some t; _ } as p) ->
                 let code = if code = "-" then None else Some code in
                 p.truth <-
                   Some
                     {
                       t with
                       Router.hostname_hints = t.Router.hostname_hints @ [ (h, code) ];
                     }
             | _ -> fail "hosthint outside truth")
         | tag :: _ -> fail ("unknown record " ^ tag)
         | [] -> ()
       end
     done
   with End_of_file -> ());
  flush ();
  Dataset.make ~label:!label
    ~links:(Array.of_list (List.rev !links))
    ~routers:(Array.of_list (List.rev !routers))
    ~vps:(Array.of_list (List.rev !vps))
    ()

(* read from a list of lines; the channel reader delegates here *)
let of_string s =
  let tmp = Filename.temp_file "hoiho_itdk" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let ch = open_out tmp in
      output_string ch s;
      close_out ch;
      let ic = open_in tmp in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic))

let save path ds =
  let oc = open_out path in
  write oc ds;
  close_out oc

let load path =
  let ic = open_in path in
  let ds = read ic in
  close_in ic;
  ds
