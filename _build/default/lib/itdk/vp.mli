(** A vantage point (VP): a measurement host with a known location, in
    the style of CAIDA Ark monitors (§5.1.4). VP names follow Ark's
    convention of IATA code + country, e.g. "sjc-us". *)

type t = {
  id : int;
  name : string;
  city_key : string;  (** {!Hoiho_geodb.City.key} of the hosting city *)
  coord : Hoiho_geo.Coord.t;
}

val make : id:int -> name:string -> city_key:string -> coord:Hoiho_geo.Coord.t -> t

val pp : Format.formatter -> t -> unit
