(** A router-level topology dataset in the style of a CAIDA ITDK
    (§5.1.3): routers with hostnames and RTT observations, plus the
    vantage points the RTTs were measured from. *)

type t = {
  label : string;  (** e.g. "Aug '20 IPv4" *)
  routers : Router.t array;
  vps : Vp.t array;
  links : (int * int) array;
      (** router adjacencies observed in traceroute, by router id —
          the topological constraints TBG-style methods use (§3.1) *)
}

val make :
  ?links:(int * int) array ->
  label:string ->
  routers:Router.t array ->
  vps:Vp.t array ->
  unit ->
  t

val neighbors : t -> int -> int list
(** Router ids adjacent to the given router id. *)

val vp : t -> int -> Vp.t
(** Lookup by VP id. Raises [Not_found] for an unknown id. *)

val n_routers : t -> int
val n_with_hostname : t -> int
val n_with_rtt : t -> int

val n_responsive : t -> int
(** Routers with ping RTT samples (the "w/ RTT" row of table 1;
    traceroute-only observations do not count). *)

val by_suffix : t -> (string * Router.t list) list
(** Routers grouped by the registered suffix of their hostnames; a
    router with hostnames under several suffixes appears in each group.
    Sorted by descending group size. *)

val summary : t -> string
(** Table 1-style one-line summary. *)
