type t = {
  id : int;
  name : string;
  city_key : string;
  coord : Hoiho_geo.Coord.t;
}

let make ~id ~name ~city_key ~coord = { id; name; city_key; coord }

let pp fmt t = Format.fprintf fmt "%s" t.name
