(** Text serialization of datasets, in the spirit of the ITDK release
    format: a line-oriented, diff-friendly encoding that round-trips
    everything the learning method consumes (and the generator's ground
    truth, so experiments can be re-run from a saved file). *)

val write : out_channel -> Dataset.t -> unit

val to_string : Dataset.t -> string

val read : in_channel -> Dataset.t
(** Raises [Failure] with a line number on malformed input. *)

val of_string : string -> Dataset.t

val save : string -> Dataset.t -> unit
(** Write to a file path. *)

val load : string -> Dataset.t
