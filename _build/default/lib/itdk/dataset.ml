type t = {
  label : string;
  routers : Router.t array;
  vps : Vp.t array;
  links : (int * int) array;
}

let make ?(links = [||]) ~label ~routers ~vps () =
  { label; routers; vps; links }

let neighbors t id =
  Array.fold_left
    (fun acc (a, b) ->
      if a = id then b :: acc else if b = id then a :: acc else acc)
    [] t.links

let vp t id =
  match Array.find_opt (fun (v : Vp.t) -> v.id = id) t.vps with
  | Some v -> v
  | None -> raise Not_found

let n_routers t = Array.length t.routers
let n_with_hostname t =
  Array.fold_left (fun acc r -> if Router.has_hostname r then acc + 1 else acc) 0 t.routers
let n_with_rtt t =
  Array.fold_left (fun acc r -> if Router.has_rtt r then acc + 1 else acc) 0 t.routers

let n_responsive t =
  Array.fold_left
    (fun acc r -> if r.Router.ping_rtts <> [] then acc + 1 else acc)
    0 t.routers

let by_suffix t =
  let tbl : (string, Router.t list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      List.iter
        (fun suffix ->
          let cur = Option.value (Hashtbl.find_opt tbl suffix) ~default:[] in
          Hashtbl.replace tbl suffix (r :: cur))
        (Router.suffixes r))
    t.routers;
  Hashtbl.fold (fun suffix routers acc -> (suffix, List.rev routers) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare (List.length b) (List.length a))

let summary t =
  Printf.sprintf "%s: %d routers, %d (%.1f%%) w/ hostnames, %d (%.1f%%) w/ RTT, %d VPs"
    t.label (n_routers t) (n_with_hostname t)
    (Hoiho_util.Stat.pct (n_with_hostname t) (n_routers t))
    (n_with_rtt t)
    (Hoiho_util.Stat.pct (n_with_rtt t) (n_routers t))
    (Array.length t.vps)
