lib/itdk/vp.mli: Format Hoiho_geo
