lib/itdk/router.mli: Hoiho_geo
