lib/itdk/dataset.ml: Array Hashtbl Hoiho_util List Option Printf Router Vp
