lib/itdk/router.ml: Hoiho_geo Hoiho_psl List
