lib/itdk/vp.ml: Format Hoiho_geo
