lib/itdk/io.mli: Dataset
