lib/itdk/dataset.mli: Router Vp
