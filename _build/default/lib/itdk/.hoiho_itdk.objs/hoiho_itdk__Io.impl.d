lib/itdk/io.ml: Array Buffer Dataset Filename Fun Hoiho_geo List Option Printf Router String Sys Vp
