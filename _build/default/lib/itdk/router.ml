type truth = {
  city_key : string;
  coord : Hoiho_geo.Coord.t;
  intended_hint : string option;
  stale : bool;
  hostname_hints : (string * string option) list;
}

type t = {
  id : int;
  hostnames : string list;
  asn : int option;
  ping_rtts : (int * float) list;
  trace_rtts : (int * float) list;
  truth : truth option;
}

let make ?(hostnames = []) ?asn ?(ping_rtts = []) ?(trace_rtts = []) ?truth id =
  { id; hostnames; asn; ping_rtts; trace_rtts; truth }

let has_hostname t = t.hostnames <> []
let has_rtt t = t.ping_rtts <> [] || t.trace_rtts <> []

let min_pair = function
  | [] -> None
  | (v, r) :: rest ->
      Some
        (List.fold_left
           (fun (bv, br) (v', r') -> if r' < br then (v', r') else (bv, br))
           (v, r) rest)

let min_ping_rtt t = min_pair t.ping_rtts
let min_trace_rtt t = min_pair t.trace_rtts

let suffixes t =
  List.filter_map Hoiho_psl.Psl.registered_suffix t.hostnames
  |> List.sort_uniq compare
