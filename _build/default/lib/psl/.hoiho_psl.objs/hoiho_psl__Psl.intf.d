lib/psl/psl.mli:
