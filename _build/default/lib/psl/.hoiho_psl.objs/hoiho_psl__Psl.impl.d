lib/psl/psl.ml: Hashtbl Hoiho_util List
