type entry = {
  hint : string;
  hint_type : Plan.hint_type;
  city : Hoiho_geodb.City.t;
  tp : int;
  fp : int;
  collides : bool;
}

type t = (Plan.hint_type * string, entry) Hashtbl.t

let empty () : t = Hashtbl.create 16
let add t e = Hashtbl.replace t (e.hint_type, e.hint) e
let find t ht hint = Hashtbl.find_opt t (ht, hint)
let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t []
let size t = Hashtbl.length t
let is_empty t = Hashtbl.length t = 0
