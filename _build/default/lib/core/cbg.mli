(** Constraint-based geolocation (CBG, Gueye et al. 2004/2006) and the
    Shortest Ping heuristic (Katz-Bassett et al. 2006), as referenced in
    §3.1. Each RTT sample from a vantage point bounds the router inside
    a disc of radius {!Hoiho_geo.Lightrtt.max_distance_km}; CBG reports
    a point in the intersection of the discs with an error estimate.

    Two uses in this repository: checking whether a hostname-derived
    location falls inside the CBG-feasible region (the test Cai 2015 and
    HLOC applied to DRoP's inferences, §3.3), and providing a delay-only
    baseline that works without hostnames at all. *)

type estimate = {
  center : Hoiho_geo.Coord.t;
      (** approximate feasible-region point: the disc-weighted centroid
          of the vantage points, pulled toward tight constraints *)
  error_km : float;
      (** radius of the tightest disc — the scale of the region the
          constraints confine the router to *)
  n_constraints : int;
}

val estimate : Consist.t -> Hoiho_itdk.Router.t -> estimate option
(** [None] when the router has no RTT samples. *)

val shortest_ping : Consist.t -> Hoiho_itdk.Router.t -> Hoiho_itdk.Vp.t option
(** The VP with the smallest ping RTT — Shortest Ping geolocates the
    router to that VP's location. *)

val feasible : Consist.t -> Hoiho_itdk.Router.t -> Hoiho_geo.Coord.t -> bool
(** Is a proposed location inside every RTT disc? Identical to the
    stage-2 consistency test; exposed here under the CBG vocabulary. *)

val infeasible_fraction :
  Consist.t ->
  (Hoiho_itdk.Router.t * Hoiho_geo.Coord.t) list ->
  float
(** Fraction of (router, inferred location) pairs outside the feasible
    region — Cai 2015 measured 46% for DRoP's inferences. *)
