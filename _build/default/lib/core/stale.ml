module Router = Hoiho_itdk.Router

type flag = {
  hostname : string;
  router : Router.t;
  extraction : Plan.extraction;
  believed : Hoiho_geodb.City.t option;
}

let detect (nc : Ncsel.t) =
  (* group the NC's hits by router *)
  let by_router : (int, Evalx.hit list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (h : Evalx.hit) ->
      let id = h.Evalx.sample.Apparent.router.Router.id in
      Hashtbl.replace by_router id
        (h :: Option.value (Hashtbl.find_opt by_router id) ~default:[]))
    nc.Ncsel.hits;
  Hashtbl.fold
    (fun _ hits acc ->
      let tps = List.filter (fun (h : Evalx.hit) -> h.Evalx.outcome = Evalx.TP) hits in
      let fps = List.filter (fun (h : Evalx.hit) -> h.Evalx.outcome = Evalx.FP) hits in
      if tps = [] || fps = [] then acc
      else begin
        let believed =
          match tps with
          | { Evalx.location = Some city; _ } :: _ -> Some city
          | _ -> None
        in
        List.fold_left
          (fun acc (h : Evalx.hit) ->
            match h.Evalx.extraction with
            | Some extraction ->
                {
                  hostname = h.Evalx.sample.Apparent.hostname;
                  router = h.Evalx.sample.Apparent.router;
                  extraction;
                  believed;
                }
                :: acc
            | None -> acc)
          acc fps
      end)
    by_router []

type accuracy = { flagged : int; true_stale : int; actual_stale : int }

let precision a = if a.flagged = 0 then 0.0 else float_of_int a.true_stale /. float_of_int a.flagged
let recall a = if a.actual_stale = 0 then 0.0 else float_of_int a.true_stale /. float_of_int a.actual_stale
