(** Dictionary access for the learning method: lookup of hint strings by
    type, and country/state code matching with the GB≡UK equivalence. *)

val lookup :
  Hoiho_geodb.Db.t -> Plan.hint_type -> string -> Hoiho_geodb.City.t list
(** Candidate locations for a hint string under a given interpretation.
    CLLI lookups accept strings of 6-11 letters (only the 6-letter
    prefix is consulted). Facility lookups match street-address or
    facility-name tokens. *)

val cc_matches : Hoiho_geodb.City.t -> string -> bool
(** Does the token denote the city's country ("uk" matches a "gb" city)? *)

val state_matches : Hoiho_geodb.City.t -> string -> bool

val region_matches : Hoiho_geodb.City.t -> string -> bool
(** Either of the above. *)
