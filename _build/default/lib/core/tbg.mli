(** Topology-based geolocation (TBG; Katz-Bassett et al. 2006, §3.1),
    seeded with naming-convention anchors.

    The paper positions its learned conventions as anchors for TBG:
    routers that hostname conventions geolocate confidently constrain
    the location of adjacent routers that have no usable hostname, since
    most traceroute-observed links connect routers in the same PoP or
    between nearby cities. This module implements the simplest sound
    variant: a router inherits a candidate location from its anchored
    neighbors when that location also satisfies the router's own RTT
    constraints.

    The conclusion calls synthesizing these capabilities "perhaps the
    most promising next step"; the `tbg` bench experiment measures the
    coverage it adds. *)

type anchor = { router_id : int; city : Hoiho_geodb.City.t }

type inference = {
  router_id : int;
  city : Hoiho_geodb.City.t;  (** the anchored neighbor's location *)
  via : int;  (** the anchor's router id *)
  n_anchor_neighbors : int;
}

val anchors_of_pipeline : Pipeline.t -> anchor list
(** One anchor per router that a usable NC geolocates (TP hostnames). *)

val infer :
  Consist.t -> Hoiho_itdk.Dataset.t -> anchor list -> inference list
(** For every router without an anchor: collect anchored neighbors,
    keep the neighbor locations consistent with the router's own RTTs,
    and pick the location shared by the most anchored neighbors. *)

val coverage_gain : Pipeline.t -> inference list * int
(** Convenience: anchors from the pipeline, inferences over its dataset,
    and the number of anchors used. *)
