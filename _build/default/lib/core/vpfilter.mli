(** Automatic detection of vantage points with spoofed responses.

    §5.1.4: seven Ark VPs sat behind access routers that spoofed TCP
    resets, reporting 1-2 ms RTTs to every target; the authors discarded
    them by hand and suggested, as future work, "identifying highly
    connected components of VPs whose RTT-feasible locations are
    consistent, and discarding the remainder". This module implements
    that idea.

    Two honest VPs' RTT discs for the same router always intersect; a
    spoofer's tiny disc around itself is disjoint from the discs of
    honest far-away VPs. Each VP is scored by how often its disc
    intersects other VPs' discs across sampled routers; VPs
    incompatible with the majority are flagged. *)

val compatibility : Hoiho_itdk.Dataset.t -> ?sample:int -> int -> float
(** [compatibility ds vp_id] in \[0,1\]: the mean, over up to [sample]
    (default 500) routers this VP measured, of the fraction of other
    VPs whose RTT disc intersects this VP's. *)

val detect : ?threshold:float -> ?sample:int -> Hoiho_itdk.Dataset.t -> int list
(** VP ids whose compatibility falls below [threshold] (default 0.8). *)

val strip : Hoiho_itdk.Dataset.t -> int list -> Hoiho_itdk.Dataset.t
(** Remove the given VPs' RTT samples from every router (the VPs remain
    listed; their measurements are simply discarded, as the paper did). *)
