(** Stage 3 regex generation (§5.3, appendix A), phases 1-3.

    Phase 1 builds base regexes from each tagged hostname: the label
    holding the geohint becomes a chunk-accurate pattern with the hint
    captured, other labels become [^\.]+ fillers, and a variant
    collapses the labels before the first capture into a single .+.
    Phase 2 merges regexes that differ only by a digit run, replacing
    \d+ with \d*. Phase 3 specializes fillers to the character-class
    sequences (or literal) they actually matched. Phase 4 — assembling
    regexes into naming conventions — lives in {!Ncsel}. *)

val phase1 : suffix:string -> Apparent.sample list -> Cand.t list

val phase2 : Cand.t list -> Cand.t list
(** Newly created merged candidates (not including the inputs). *)

val phase3 : Apparent.sample list -> Cand.t list -> Cand.t list
(** Newly created specialized candidates (not including the inputs). *)

val candidates : suffix:string -> Apparent.sample list -> Cand.t list
(** All phases, deduplicated: phase1 ∪ phase2 ∪ phase3 output. *)

val max_candidates : int
(** Safety cap on the candidate pool per suffix. *)
