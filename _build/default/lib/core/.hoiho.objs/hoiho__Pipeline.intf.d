lib/core/pipeline.mli: Consist Hoiho_geodb Hoiho_itdk Learned Ncsel
