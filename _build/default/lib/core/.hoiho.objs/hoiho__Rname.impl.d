lib/core/rname.ml: Fun Hashtbl Hoiho_itdk Hoiho_psl Hoiho_rx Hoiho_util List Option String
