lib/core/learned.mli: Hoiho_geodb Plan
