lib/core/ncsel.mli: Apparent Cand Consist Evalx Hoiho_geodb Learned
