lib/core/rname.mli: Hoiho_itdk Hoiho_rx
