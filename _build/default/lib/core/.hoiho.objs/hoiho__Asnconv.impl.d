lib/core/asnconv.ml: Array Hashtbl Hoiho_itdk Hoiho_psl Hoiho_rx Hoiho_util List String
