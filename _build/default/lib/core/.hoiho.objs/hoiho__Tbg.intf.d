lib/core/tbg.mli: Consist Hoiho_geodb Hoiho_itdk Pipeline
