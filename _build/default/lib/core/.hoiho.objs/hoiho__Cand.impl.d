lib/core/cand.ml: Format Hashtbl Hoiho_rx List Plan String
