lib/core/apparent.ml: Array Consist Dicts Hoiho_geodb Hoiho_itdk Hoiho_psl Hoiho_util List Plan String
