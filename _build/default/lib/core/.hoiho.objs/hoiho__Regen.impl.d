lib/core/regen.ml: Apparent Array Cand Hashtbl Hoiho_rx Hoiho_util List Option Plan Printf String
