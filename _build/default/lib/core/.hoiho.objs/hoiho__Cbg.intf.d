lib/core/cbg.mli: Consist Hoiho_geo Hoiho_itdk
