lib/core/stale.mli: Hoiho_geodb Hoiho_itdk Ncsel Plan
