lib/core/evalx.mli: Apparent Cand Consist Hoiho_geodb Learned Plan
