lib/core/asnconv.mli: Hoiho_itdk Hoiho_rx
