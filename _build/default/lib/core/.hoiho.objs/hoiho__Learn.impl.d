lib/core/learn.ml: Apparent Consist Dicts Evalx Hashtbl Hoiho_geodb Hoiho_itdk Hoiho_util Learned List Ncsel Plan Printf String
