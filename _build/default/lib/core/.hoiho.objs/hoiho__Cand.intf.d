lib/core/cand.mli: Format Hoiho_rx Plan
