lib/core/pipeline.ml: Apparent Cand Consist Evalx Hoiho_geodb Hoiho_itdk Hoiho_psl Hoiho_rx Learn Learned List Ncsel Plan Regen
