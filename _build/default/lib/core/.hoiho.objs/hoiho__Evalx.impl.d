lib/core/evalx.ml: Apparent Cand Consist Dicts Hoiho_geodb Hoiho_rx Learned List Plan
