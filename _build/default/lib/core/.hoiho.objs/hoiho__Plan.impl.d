lib/core/plan.ml: Array Buffer Format List String
