lib/core/learn.mli: Consist Hoiho_geodb Learned Ncsel
