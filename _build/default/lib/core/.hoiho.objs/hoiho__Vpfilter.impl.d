lib/core/vpfilter.ml: Array Hashtbl Hoiho_geo Hoiho_itdk Hoiho_util List
