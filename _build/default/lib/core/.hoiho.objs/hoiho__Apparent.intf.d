lib/core/apparent.mli: Consist Hoiho_geodb Hoiho_itdk Plan
