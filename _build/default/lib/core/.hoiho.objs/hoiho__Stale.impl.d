lib/core/stale.ml: Apparent Evalx Hashtbl Hoiho_geodb Hoiho_itdk List Ncsel Option Plan
