lib/core/vpfilter.mli: Hoiho_itdk
