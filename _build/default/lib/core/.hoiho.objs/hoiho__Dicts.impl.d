lib/core/dicts.ml: Hoiho_geodb List Plan String
