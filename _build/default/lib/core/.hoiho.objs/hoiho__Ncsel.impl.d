lib/core/ncsel.ml: Apparent Array Cand Evalx Hashtbl List Plan
