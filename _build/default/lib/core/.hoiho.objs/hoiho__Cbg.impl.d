lib/core/cbg.ml: Consist Float Hoiho_geo Hoiho_itdk Hoiho_util List Option
