lib/core/consist.mli: Hoiho_geo Hoiho_geodb Hoiho_itdk
