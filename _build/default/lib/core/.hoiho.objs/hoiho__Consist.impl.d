lib/core/consist.ml: Array Hashtbl Hoiho_geo Hoiho_geodb Hoiho_itdk List
