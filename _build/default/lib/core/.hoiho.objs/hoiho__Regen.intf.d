lib/core/regen.mli: Apparent Cand
