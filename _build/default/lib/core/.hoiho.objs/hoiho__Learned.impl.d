lib/core/learned.ml: Hashtbl Hoiho_geodb Plan
