lib/core/dicts.mli: Hoiho_geodb Plan
