lib/core/tbg.ml: Apparent Array Consist Evalx Hashtbl Hoiho_geodb Hoiho_itdk List Ncsel Option Pipeline
