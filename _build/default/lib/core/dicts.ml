module Db = Hoiho_geodb.Db
module City = Hoiho_geodb.City
module Iso = Hoiho_geodb.Iso

let lookup db (ht : Plan.hint_type) s =
  match ht with
  | Plan.Iata -> if String.length s = 3 then Db.lookup_iata db s else []
  | Plan.Icao -> if String.length s = 4 then Db.lookup_icao db s else []
  | Plan.Locode -> if String.length s = 5 then Db.lookup_locode db s else []
  | Plan.Clli ->
      let n = String.length s in
      if n >= 6 && n <= 11 then Db.lookup_clli db (String.sub s 0 6) else []
  | Plan.CityName -> Db.lookup_city_name db s
  | Plan.FacilityAddr -> List.map snd (Db.lookup_facility db s)

let cc_matches (city : City.t) token = Iso.country_equiv city.City.cc token

let state_matches (city : City.t) token =
  match city.City.state with
  | Some st -> String.lowercase_ascii token = st
  | None -> false

let region_matches city token = cc_matches city token || state_matches city token
