type hint_type = Iata | Icao | Locode | Clli | CityName | FacilityAddr

type elem = Hint of hint_type | ClliA | ClliB | Cc | State

type t = elem list

type extraction = {
  hint : string;
  hint_type : hint_type;
  cc : string option;
  state : string option;
}

let hint_type_of plan =
  let rec go = function
    | [] -> None
    | Hint ht :: _ -> Some ht
    | ClliA :: _ -> Some Clli
    | (ClliB | Cc | State) :: rest -> go rest
  in
  go plan

let decode plan groups =
  if List.length plan <> Array.length groups then None
  else begin
    let hint = Buffer.create 8 in
    let hint_type = ref None in
    let cc = ref None in
    let state = ref None in
    let ok = ref true in
    List.iteri
      (fun i elem ->
        match (elem, groups.(i)) with
        | _, None -> ok := false
        | Hint ht, Some s ->
            Buffer.add_string hint s;
            hint_type := Some ht
        | ClliA, Some s ->
            Buffer.add_string hint s;
            hint_type := Some Clli
        | ClliB, Some s -> Buffer.add_string hint s
        | Cc, Some s -> cc := Some s
        | State, Some s -> state := Some s)
      plan;
    match (!ok, !hint_type) with
    | true, Some ht ->
        Some { hint = Buffer.contents hint; hint_type = ht; cc = !cc; state = !state }
    | _ -> None
  end

let capture_len = function
  | Iata -> Some 3
  | Icao -> Some 4
  | Locode -> Some 5
  | Clli -> Some 6
  | CityName | FacilityAddr -> None

let hint_type_name = function
  | Iata -> "IATA"
  | Icao -> "ICAO"
  | Locode -> "LOCODE"
  | Clli -> "CLLI"
  | CityName -> "City"
  | FacilityAddr -> "Facility"

let elem_name = function
  | Hint ht -> hint_type_name ht
  | ClliA -> "CLLI[0:4]"
  | ClliB -> "CLLI[4:6]"
  | Cc -> "CC"
  | State -> "ST"

let pp fmt plan =
  Format.pp_print_string fmt (String.concat ", " (List.map elem_name plan))
