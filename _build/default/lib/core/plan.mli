(** Decode plans: what each capture group of a learned regex means.

    Every naming-convention regex is annotated with a plan so that an
    extraction can be interpreted (figure 13's "PLAN" column): which
    dictionary decodes the geohint capture, and which captures carry
    country or state codes. *)

type hint_type = Iata | Icao | Locode | Clli | CityName | FacilityAddr

type elem =
  | Hint of hint_type  (** the geohint capture *)
  | ClliA  (** first four letters of a split CLLI prefix (figure 6e) *)
  | ClliB  (** last two letters of a split CLLI prefix *)
  | Cc  (** country-code capture *)
  | State  (** state-code capture *)

type t = elem list
(** One element per capture group, in group order. A valid plan contains
    exactly one geohint: either one [Hint _] or the pair [ClliA]+[ClliB]. *)

type extraction = {
  hint : string;  (** geohint string; split CLLI parts concatenated *)
  hint_type : hint_type;
  cc : string option;
  state : string option;
}

val hint_type_of : t -> hint_type option
(** The geohint type the plan decodes ([Clli] for split plans). *)

val decode : t -> string option array -> extraction option
(** [decode plan groups] interprets the capture groups of a successful
    match. [None] if a required capture did not participate. *)

val capture_len : hint_type -> int option
(** Fixed capture width per type: 3 for IATA, 4 for ICAO, 5 for LOCODE,
    6 for CLLI; [None] for variable-width types. *)

val hint_type_name : hint_type -> string

val pp : Format.formatter -> t -> unit
