module City = Hoiho_geodb.City
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router

type anchor = { router_id : int; city : City.t }

type inference = {
  router_id : int;
  city : City.t;
  via : int;
  n_anchor_neighbors : int;
}

let anchors_of_pipeline (p : Pipeline.t) =
  let anchors : (int, City.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r : Pipeline.suffix_result) ->
      match r.Pipeline.nc with
      | Some nc when Pipeline.usable r ->
          List.iter
            (fun (h : Evalx.hit) ->
              match (h.Evalx.outcome, h.Evalx.location) with
              | Evalx.TP, Some city ->
                  Hashtbl.replace anchors h.Evalx.sample.Apparent.router.Router.id city
              | _ -> ())
            nc.Ncsel.hits
      | _ -> ())
    p.Pipeline.results;
  Hashtbl.fold (fun router_id city acc -> { router_id; city } :: acc) anchors []

let infer consist dataset (anchors : anchor list) =
  let anchored : (int, City.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun (a : anchor) -> Hashtbl.replace anchored a.router_id a.city) anchors;
  let routers : (int, Router.t) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter (fun (r : Router.t) -> Hashtbl.replace routers r.Router.id r) dataset.Dataset.routers;
  Array.to_list dataset.Dataset.routers
  |> List.filter_map (fun (r : Router.t) ->
         if Hashtbl.mem anchored r.Router.id then None
         else begin
           (* anchored neighbors whose location this router's own RTTs
              admit *)
           let candidates =
             Dataset.neighbors dataset r.Router.id
             |> List.filter_map (fun nid ->
                    match Hashtbl.find_opt anchored nid with
                    | Some city when Consist.city_consistent consist r city ->
                        Some (nid, city)
                    | _ -> None)
           in
           match candidates with
           | [] -> None
           | (via, first) :: _ ->
               (* majority location among anchored neighbors *)
               let counts = Hashtbl.create 4 in
               List.iter
                 (fun (_, (c : City.t)) ->
                   let k = City.key c in
                   Hashtbl.replace counts k
                     (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
                 candidates;
               let best_key, _ =
                 Hashtbl.fold
                   (fun k n (bk, bn) -> if n > bn then (k, n) else (bk, bn))
                   counts ("", 0)
               in
               let city, via =
                 match
                   List.find_opt (fun (_, c) -> City.key c = best_key) candidates
                 with
                 | Some (v, c) -> (c, v)
                 | None -> (first, via)
               in
               Some
                 {
                   router_id = r.Router.id;
                   city;
                   via;
                   n_anchor_neighbors = List.length candidates;
                 }
         end)

let coverage_gain (p : Pipeline.t) =
  let anchors = anchors_of_pipeline p in
  (infer p.Pipeline.consist p.Pipeline.dataset anchors, List.length anchors)
