(** Stale-hostname detection (§7; Zhang et al. 2006).

    A hostname can outlive the assignment that named it: figure 3a shows
    a router whose interfaces mostly say "ash1" (Ashburn) while one says
    "lvs1" (Las Vegas). Once a usable naming convention exists, such
    staleness is detectable: the router has extractions that are
    RTT-consistent alongside extractions that are not. This module flags
    the inconsistent ones so downstream users can discard or down-weight
    them, mitigating the distortion Zhang et al. measured. *)

type flag = {
  hostname : string;
  router : Hoiho_itdk.Router.t;
  extraction : Plan.extraction;
  believed : Hoiho_geodb.City.t option;
      (** where the router's consistent hostnames place it *)
}

val detect : Ncsel.t -> flag list
(** Flag FP hostnames of routers that also have TP hostnames under the
    same naming convention. Routers whose extractions are uniformly
    inconsistent are not flagged — with no trusted sibling there is no
    evidence of staleness rather than, say, a provider-edge name
    (figure 3b). *)

type accuracy = { flagged : int; true_stale : int; actual_stale : int }
(** Precision/recall inputs against generator ground truth:
    [flagged] hostnames reported, of which [true_stale] really were
    stale, out of [actual_stale] stale hostnames present in routers
    covered by the NC. *)

val precision : accuracy -> float
val recall : accuracy -> float
