module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Strutil = Hoiho_util.Strutil
module Router = Hoiho_itdk.Router

let min_contiguous_for_city_plans = 4

let abbrev_matches ~hint ~name =
  let words = String.split_on_char ' ' name |> List.filter (fun w -> w <> "") in
  match words with
  | [] -> false
  | first :: _ when String.length first = 0 || String.length hint = 0 -> false
  | first :: rest_words ->
      if hint.[0] <> first.[0] then false
      else begin
        let hl = String.length hint in
        (* inside a word: subsequence matching; moving to a later word
           requires matching its first letter (or skipping it wholly) *)
        let rec in_word i w wi words =
          if i = hl then true
          else if wi < String.length w then
            (w.[wi] = hint.[i] && in_word (i + 1) w (wi + 1) words)
            || in_word i w (wi + 1) words
          else next_word i words
        and next_word i words =
          if i = hl then true
          else
            match words with
            | [] -> false
            | w :: ws ->
                (String.length w > 0 && w.[0] = hint.[i]
                && in_word (i + 1) w 1 ws)
                || next_word i ws
        in
        in_word 1 first 1 rest_words
      end

let eligible (nc : Ncsel.t) =
  nc.Ncsel.unique_hints >= 3 && Evalx.ppv nc.Ncsel.counts > 0.4

(* group FP/UNK extractions: hint -> routers and region codes observed *)
type pending = {
  hint : string;
  hint_type : Plan.hint_type;
  cc : string option;
  state : string option;
  mutable routers : Router.t list;
}

let pending_of_hits hits =
  let tbl : (string, pending) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (h : Evalx.hit) ->
      match (h.Evalx.outcome, h.Evalx.extraction) with
      | (Evalx.FP | Evalx.UNK), Some ex ->
          let key =
            Printf.sprintf "%s/%s" (Plan.hint_type_name ex.Plan.hint_type) ex.Plan.hint
          in
          let p =
            match Hashtbl.find_opt tbl key with
            | Some p -> p
            | None ->
                let p =
                  {
                    hint = ex.Plan.hint;
                    hint_type = ex.Plan.hint_type;
                    cc = ex.Plan.cc;
                    state = ex.Plan.state;
                    routers = [];
                  }
                in
                Hashtbl.replace tbl key p;
                p
          in
          let router = h.Evalx.sample.Apparent.router in
          if not (List.exists (fun r -> r.Router.id = router.Router.id) p.routers)
          then p.routers <- router :: p.routers
      | _ -> ())
    hits;
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl []

(* for CLLI-style hints the trailing region code is part of the string:
   "mlanit" = "mlan" + "it"; match the city part against the name and the
   region part against the city's country/state *)
let candidate_cities db (p : pending) =
  let by_name match_name =
    Db.fold_cities (fun city acc -> if match_name city then city :: acc else acc) db []
  in
  let filter_region cities =
    List.filter
      (fun c ->
        (match p.cc with Some code -> Dicts.cc_matches c code | None -> true)
        && match p.state with Some code -> Dicts.state_matches c code | None -> true)
      cities
  in
  match p.hint_type with
  | Plan.Clli when String.length p.hint >= 6 ->
      let cityp = String.sub p.hint 0 4 in
      let region = String.sub p.hint 4 2 in
      by_name (fun city ->
          abbrev_matches ~hint:cityp ~name:city.City.name
          && (Dicts.region_matches city region || City.clli_region city = region))
      |> filter_region
  | Plan.Locode when String.length p.hint = 5 ->
      let country = String.sub p.hint 0 2 in
      let loc = String.sub p.hint 2 3 in
      by_name (fun city ->
          Dicts.cc_matches city country && abbrev_matches ~hint:loc ~name:city.City.name)
      |> filter_region
  | Plan.CityName ->
      by_name (fun city ->
          abbrev_matches ~hint:p.hint ~name:city.City.name
          && Strutil.longest_common_run p.hint (City.squashed city)
             >= min min_contiguous_for_city_plans (String.length p.hint))
      |> filter_region
  | Plan.Iata | Plan.Icao | Plan.FacilityAddr | Plan.Clli | Plan.Locode ->
      by_name (fun city -> abbrev_matches ~hint:p.hint ~name:city.City.name)
      |> filter_region

let count_consistency consist routers (city : City.t) =
  List.fold_left
    (fun (tp, fp) r ->
      if Consist.city_consistent consist r city then (tp + 1, fp) else (tp, fp + 1))
    (0, 0) routers

(* how many of these routers the existing dictionary interpretation can
   explain (§5.4: "an existing geohint might be correct") *)
let existing_tp consist db (p : pending) =
  let cities = Dicts.lookup db p.hint_type p.hint in
  List.fold_left
    (fun acc r ->
      if List.exists (Consist.city_consistent consist r) cities then acc + 1 else acc)
    0 p.routers

let learn consist db (nc : Ncsel.t) =
  let learned = Learned.empty () in
  if not (eligible nc) then learned
  else begin
    let pendings = pending_of_hits nc.Ncsel.hits in
    List.iter
      (fun p ->
        let required = if p.cc <> None || p.state <> None then 1 else 3 in
        let candidates = candidate_cities db p in
        let scored =
          List.map (fun city -> (city, count_consistency consist p.routers city)) candidates
        in
        let ranked =
          List.sort
            (fun (ca, (tpa, _)) (cb, (tpb, _)) ->
              let fa = ca.City.facilities <> [] and fb = cb.City.facilities <> [] in
              if fa <> fb then compare fb fa
              else if ca.City.population <> cb.City.population then
                compare cb.City.population ca.City.population
              else compare tpb tpa)
            scored
        in
        match ranked with
        | [] -> ()
        | (city, (tp, fp)) :: _ ->
            let ppv =
              if tp + fp = 0 then 0.0 else float_of_int tp /. float_of_int (tp + fp)
            in
            let existing = existing_tp consist db p in
            if ppv >= 0.8 && tp > existing + 1 && tp >= required then
              Learned.add learned
                {
                  Learned.hint = p.hint;
                  hint_type = p.hint_type;
                  city;
                  tp;
                  fp;
                  collides = Dicts.lookup db p.hint_type p.hint <> [];
                })
      pendings;
    learned
  end
