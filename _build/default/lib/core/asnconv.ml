module Ast = Hoiho_rx.Ast
module Engine = Hoiho_rx.Engine
module Strutil = Hoiho_util.Strutil
module Router = Hoiho_itdk.Router
module Psl = Hoiho_psl.Psl

type sample = { hostname : string; router_asn : int option }

type counts = { tp : int; fp : int; fn : int }

type t = {
  regex : Engine.t;
  source : string;
  counts : counts;
  distinct_asns : int;
}

let atp c = c.tp - (c.fp + c.fn)
let ppv c = if c.tp + c.fp = 0 then 0.0 else float_of_int c.tp /. float_of_int (c.tp + c.fp)

(* does the hostname embed the router's known ASN? *)
let apparent s =
  match s.router_asn with
  | None -> None
  | Some asn ->
      let needle = string_of_int asn in
      let tokens =
        match Psl.registered_suffix s.hostname with
        | Some suffix -> (
            match Strutil.drop_suffix ~suffix s.hostname with
            | Some prefix -> Strutil.split_punct prefix
            | None -> [])
        | None -> []
      in
      if
        List.exists
          (fun tok -> tok = needle || tok = "as" ^ needle || Strutil.strip_leading_digits tok = "" && tok = needle)
          tokens
      then Some asn
      else None

let lit s = List.init (String.length s) (fun i -> Ast.Lit s.[i])
let fill_label = Ast.Rep (Ast.Cls (Ast.not_char '.'), 1, None, Ast.Greedy)
let any_plus = Ast.Rep (Ast.Any, 1, None, Ast.Greedy)
let digits_plus = Ast.Rep (Ast.Cls Ast.digit, 1, None, Ast.Greedy)
let alpha_plus = Ast.Rep (Ast.Cls Ast.lower, 1, None, Ast.Greedy)

(* the pattern for the label carrying the ASN: chunk-accurate, with the
   ASN digits captured; an "as" prefix chunk stays literal *)
let asn_label_pattern label needle =
  let chunks = Strutil.chunks_of_classes label in
  let found = ref false in
  let nodes =
    List.concat_map
      (fun chunk ->
        match chunk with
        | `Digit d when d = needle && not !found ->
            found := true;
            [ Ast.Grp [ digits_plus ] ]
        | `Digit _ -> [ digits_plus ]
        | `Alpha a when Strutil.lowercase a = "as" -> lit "as"
        | `Alpha _ -> [ alpha_plus ]
        | `Other o -> lit o)
      chunks
  in
  if !found then Some nodes else None

let candidates_of_sample ~suffix s =
  match apparent s with
  | None -> []
  | Some asn ->
      let needle = string_of_int asn in
      let prefix =
        match Strutil.drop_suffix ~suffix s.hostname with
        | Some p -> p
        | None -> ""
      in
      let labels = Array.of_list (String.split_on_char '.' prefix) in
      let n = Array.length labels in
      let builds = ref [] in
      Array.iteri
        (fun i label ->
          match asn_label_pattern label needle with
          | None -> ()
          | Some asn_nodes ->
              let tail =
                List.concat
                  (List.init (n - i - 1) (fun j ->
                       Ast.Lit '.' :: [ (ignore j; fill_label) ]))
              in
              let specific =
                List.concat
                  (List.init i (fun _ -> fill_label :: [ Ast.Lit '.' ]))
                @ asn_nodes @ tail
              in
              builds := specific :: !builds;
              if i > 0 then
                builds := ((any_plus :: Ast.Lit '.' :: asn_nodes) @ tail) :: !builds)
        labels;
      List.map
        (fun body ->
          Ast.Bol :: body @ lit ("." ^ suffix) @ [ Ast.Eol ])
        !builds

let eval regex samples =
  let counts = ref { tp = 0; fp = 0; fn = 0 } in
  let distinct = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let app = apparent s in
      match Engine.exec regex s.hostname with
      | Some groups -> (
          let extracted =
            match Array.to_list groups with
            | [ Some digits ] -> int_of_string_opt digits
            | _ -> None
          in
          match (extracted, s.router_asn) with
          | Some e, Some truth when e = truth ->
              Hashtbl.replace distinct e ();
              counts := { !counts with tp = !counts.tp + 1 }
          | Some _, Some _ -> counts := { !counts with fp = !counts.fp + 1 }
          | Some _, None -> ()
          | None, _ -> if app <> None then counts := { !counts with fn = !counts.fn + 1 })
      | None -> if app <> None then counts := { !counts with fn = !counts.fn + 1 })
    samples;
  (!counts, Hashtbl.length distinct)

let learn ~suffix samples =
  let asts =
    List.concat_map (candidates_of_sample ~suffix) samples
  in
  let seen = Hashtbl.create 32 in
  let cands =
    List.filter_map
      (fun ast ->
        let src = Ast.to_string ast in
        if Hashtbl.mem seen src then None
        else begin
          Hashtbl.replace seen src ();
          Some (Engine.compile ast, src)
        end)
      asts
  in
  let scored =
    List.map
      (fun (regex, source) ->
        let counts, distinct_asns = eval regex samples in
        { regex; source; counts; distinct_asns })
      cands
  in
  List.fold_left
    (fun best cand ->
      match best with
      | Some b when atp b.counts >= atp cand.counts -> Some b
      | _ -> Some cand)
    None scored

let usable t = t.distinct_asns >= 3 && ppv t.counts >= 0.9

let extract t hostname =
  match Engine.exec t.regex hostname with
  | Some [| Some digits |] -> int_of_string_opt digits
  | _ -> None

let samples_of_routers routers ~suffix =
  List.concat_map
    (fun (r : Router.t) ->
      List.filter_map
        (fun hostname ->
          if Psl.registered_suffix hostname = Some suffix then
            Some { hostname; router_asn = r.Router.asn }
          else None)
        r.Router.hostnames)
    routers
