(** Suffix-local learned geohints (output of stage 4, §5.4).

    When an operator deviates from the reference dictionaries, the
    learner records a per-suffix override: hint string → city. Lookups
    during evaluation consult these before the reference dictionary. *)

type entry = {
  hint : string;
  hint_type : Plan.hint_type;
  city : Hoiho_geodb.City.t;
  tp : int;  (** routers RTT-consistent with the learned location *)
  fp : int;
  collides : bool;  (** the hint also exists in the reference dictionary *)
}

type t

val empty : unit -> t
val add : t -> entry -> unit
val find : t -> Plan.hint_type -> string -> entry option
val entries : t -> entry list
val size : t -> int
val is_empty : t -> bool
