(** Router-name extraction (§3.4; Luckie et al., IMC 2019) — the first
    Hoiho capability, completing the platform triple alongside ASNs
    (2020) and geolocation (this paper).

    Interfaces of the same router usually share a stable substring — the
    *router name* ("core1.ash1" in figure 1). Given alias-resolved
    routers, the learner finds a per-suffix regex whose capture is
    identical across a router's interfaces and unique to that router. *)

type counts = { tp : int; fp : int; fn : int }
(** Per multi-interface router: TP when every interface extracts the
    same name and no other router extracts it too; FP when interfaces
    disagree or two routers collide on a name; FN when the regex misses
    some interface. *)

type t = {
  regex : Hoiho_rx.Engine.t;
  source : string;
  counts : counts;
  n_labels : int;  (** how many trailing labels form the name *)
}

val atp : counts -> int
val ppv : counts -> float

val learn : suffix:string -> Hoiho_itdk.Router.t list -> t option
(** Learn from the routers (only those with ≥2 hostnames under the
    suffix train; single-interface routers participate in uniqueness
    checking). [None] when no multi-interface router exists. *)

val usable : t -> bool
(** ≥3 routers named correctly with PPV ≥ 0.8. *)

val extract : t -> string -> string option
(** The router name of a hostname under this convention. *)
