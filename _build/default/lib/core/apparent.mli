(** Stage 2: identify apparent geohints in hostnames (§5.2).

    For each hostname, every alphanumeric token before the registered
    suffix is tested against the dictionaries (IATA, ICAO, LOCODE, CLLI
    — including first-6-of-longer and split 4+2 forms — city names, and
    facility street addresses). A candidate interpretation survives when
    at least one of its dictionary locations is RTT-consistent for the
    router. Adjacent country/state tokens that match a surviving
    location are recorded as part of the expected extraction, so that
    regex evaluation can penalize conventions that drop them. *)

type span = { label : int; start : int; len : int }
(** A substring of one dot-separated label of the hostname prefix. *)

type tag = {
  hint : string;  (** the hint string; split CLLI parts concatenated *)
  hint_type : Plan.hint_type;
  spans : span list;  (** one span normally; two for split CLLI *)
  cc : (span * string) option;  (** matching country-code token, if any *)
  state : (span * string) option;
  locations : Hoiho_geodb.City.t list;  (** RTT-consistent candidates *)
}

type sample = {
  hostname : string;
  labels : string array;  (** prefix labels (suffix removed) *)
  suffix : string;
  router : Hoiho_itdk.Router.t;
  tags : tag list;  (** empty = no apparent geohint *)
}

val tag_hostname :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  suffix:string ->
  Hoiho_itdk.Router.t ->
  string ->
  sample option
(** [None] when the hostname is not under [suffix] or has no prefix. *)

val build_samples :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  suffix:string ->
  Hoiho_itdk.Router.t list ->
  sample list
(** All (hostname, router) samples of a suffix group, tagged. *)

val min_city_name_len : int
(** City-name candidates shorter than this are ignored (noise guard). *)
