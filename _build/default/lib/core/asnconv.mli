(** ASN-extraction conventions (§3.4; Luckie et al., IMC 2020).

    The Hoiho platform this paper builds on also learns regexes that
    extract the *autonomous system number* operating a router — e.g.
    "as8218" in a customer interconnection hostname under a provider's
    suffix. Training uses BGP-derived IP2AS data ({!Hoiho_itdk.Router.t}
    [asn]) the way geolocation training uses RTTs: a candidate regex is
    good when the number it extracts matches the router's known AS.

    The machinery mirrors the geolocation pipeline in miniature: tag
    apparent ASNs, build anchored per-suffix regexes from the tagged
    hostnames, evaluate TP/FP/FN, select by ATP, and classify. *)

type sample = {
  hostname : string;
  router_asn : int option;  (** from IP2AS; [None] = unknown *)
}

type counts = { tp : int; fp : int; fn : int }

type t = {
  regex : Hoiho_rx.Engine.t;
  source : string;
  counts : counts;
  distinct_asns : int;  (** distinct correctly-extracted ASNs *)
}

val atp : counts -> int
val ppv : counts -> float

val apparent : sample -> int option
(** The ASN apparently embedded in the hostname: a digit token equal to
    the router's known ASN (optionally prefixed with "as"). *)

val learn : suffix:string -> sample list -> t option
(** Learn the best ASN-extraction regex for one suffix, or [None] when
    no hostname carries an apparent ASN. *)

val usable : t -> bool
(** ≥3 distinct ASNs extracted correctly with PPV ≥ 0.9. *)

val extract : t -> string -> int option
(** Apply a learned convention to a hostname. *)

val samples_of_routers : Hoiho_itdk.Router.t list -> suffix:string -> sample list
