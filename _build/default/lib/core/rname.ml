module Ast = Hoiho_rx.Ast
module Engine = Hoiho_rx.Engine
module Strutil = Hoiho_util.Strutil
module Router = Hoiho_itdk.Router
module Psl = Hoiho_psl.Psl

type counts = { tp : int; fp : int; fn : int }

type t = {
  regex : Engine.t;
  source : string;
  counts : counts;
  n_labels : int;
}

let atp c = c.tp - (c.fp + c.fn)
let ppv c = if c.tp + c.fp = 0 then 0.0 else float_of_int c.tp /. float_of_int (c.tp + c.fp)

let prefix_labels suffix hostname =
  match Strutil.drop_suffix ~suffix hostname with
  | None | Some "" -> None
  | Some prefix -> Some (String.split_on_char '.' prefix)

(* how many trailing labels this router's hostnames share *)
let common_trailing labelss =
  match labelss with
  | [] -> 0
  | first :: rest ->
      let rev = List.rev first in
      let rev_rest = List.map List.rev rest in
      let rec count k =
        if k >= List.length rev then k
        else if
          List.for_all
            (fun other ->
              k < List.length other && List.nth other k = List.nth rev k)
            rev_rest
        then count (k + 1)
        else k
      in
      (* never absorb a hostname entirely into the name *)
      let max_k =
        List.fold_left
          (fun m l -> min m (List.length l - 1))
          (List.length rev - 1) rev_rest
      in
      min (count 0) (max 0 max_k)

(* ^.+\.((?:[^\.]+\.){k-1}[^\.]+)\.suffix$ *)
let regex_for ~suffix k =
  let fill = Ast.Rep (Ast.Cls (Ast.not_char '.'), 1, None, Ast.Greedy) in
  let rec name_labels i = if i = 0 then [] else if i = 1 then [ fill ] else (fill :: Ast.Lit '.' :: name_labels (i - 1)) in
  let body =
    [ Ast.Bol; Ast.Rep (Ast.Any, 1, None, Ast.Greedy); Ast.Lit '.';
      Ast.Grp (name_labels k) ]
    @ List.init (String.length ("." ^ suffix)) (fun i -> Ast.Lit ("." ^ suffix).[i])
    @ [ Ast.Eol ]
  in
  Engine.compile body

let extract_with regex hostname =
  match Engine.exec regex hostname with
  | Some [| Some name |] -> Some name
  | _ -> None

let eval regex routers ~suffix =
  (* per-router extractions *)
  let per_router =
    List.filter_map
      (fun (r : Router.t) ->
        let hostnames =
          List.filter (fun h -> Psl.registered_suffix h = Some suffix) r.Router.hostnames
        in
        if hostnames = [] then None
        else Some (r, List.map (extract_with regex) hostnames))
      routers
  in
  (* name -> how many routers extract it (for uniqueness) *)
  let claims = Hashtbl.create 64 in
  List.iter
    (fun (_, extractions) ->
      List.sort_uniq compare (List.filter_map Fun.id extractions)
      |> List.iter (fun name ->
             Hashtbl.replace claims name
               (1 + Option.value (Hashtbl.find_opt claims name) ~default:0)))
    per_router;
  List.fold_left
    (fun c ((_ : Router.t), extractions) ->
      if List.length extractions < 2 then c
      else
        match List.sort_uniq compare extractions with
        | [ Some name ] ->
            if Option.value (Hashtbl.find_opt claims name) ~default:0 > 1 then
              { c with fp = c.fp + 1 }
            else { c with tp = c.tp + 1 }
        | [ None ] -> { c with fn = c.fn + 1 }
        | _ -> { c with fp = c.fp + 1 })
    { tp = 0; fp = 0; fn = 0 }
    per_router

let learn ~suffix routers =
  let multi =
    List.filter_map
      (fun (r : Router.t) ->
        let labelss =
          List.filter_map (prefix_labels suffix) r.Router.hostnames
        in
        if List.length labelss >= 2 then Some (common_trailing labelss) else None)
      routers
  in
  let ks = List.sort_uniq compare (List.filter (fun k -> k > 0) multi) in
  if multi = [] then None
  else begin
    let cands =
      List.map
        (fun k ->
          let regex = regex_for ~suffix k in
          let counts = eval regex routers ~suffix in
          { regex; source = Engine.source regex; counts; n_labels = k })
        ks
    in
    List.fold_left
      (fun best cand ->
        match best with
        | Some b when atp b.counts >= atp cand.counts -> Some b
        | _ -> Some cand)
      None cands
  end

let usable t = t.counts.tp >= 3 && ppv t.counts >= 0.8

let extract t hostname = extract_with t.regex hostname
