module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Vp = Hoiho_itdk.Vp

(* discs of radius r1 around u and r2 around v intersect iff
   d(u,v) <= r1 + r2 *)
let discs_intersect (u : Vp.t) r1 (v : Vp.t) r2 =
  Coord.distance_km u.Vp.coord v.Vp.coord
  <= Lightrtt.max_distance_km ~rtt_ms:r1 +. Lightrtt.max_distance_km ~rtt_ms:r2

let vp_by_id ds =
  let tbl = Hashtbl.create 128 in
  Array.iter (fun (v : Vp.t) -> Hashtbl.replace tbl v.Vp.id v) ds.Dataset.vps;
  tbl

let compatibility ds ?(sample = 500) vp_id =
  let vps = vp_by_id ds in
  let scores = ref [] in
  let seen = ref 0 in
  (try
     Array.iter
       (fun (r : Router.t) ->
         if !seen >= sample then raise Exit;
         match List.assoc_opt vp_id r.Router.ping_rtts with
         | None -> ()
         | Some my_rtt ->
             let u = Hashtbl.find vps vp_id in
             let others =
               List.filter (fun (id, _) -> id <> vp_id) r.Router.ping_rtts
             in
             if others <> [] then begin
               incr seen;
               let ok =
                 List.filter
                   (fun (id, rtt) ->
                     match Hashtbl.find_opt vps id with
                     | Some v -> discs_intersect u my_rtt v rtt
                     | None -> false)
                   others
               in
               scores :=
                 (float_of_int (List.length ok) /. float_of_int (List.length others))
                 :: !scores
             end)
       ds.Dataset.routers
   with Exit -> ());
  Hoiho_util.Stat.mean !scores

let detect ?(threshold = 0.8) ?sample ds =
  Array.to_list ds.Dataset.vps
  |> List.filter_map (fun (v : Vp.t) ->
         if compatibility ds ?sample v.Vp.id < threshold then Some v.Vp.id
         else None)

let strip ds bad =
  let keep pairs = List.filter (fun (id, _) -> not (List.mem id bad)) pairs in
  Dataset.make ~label:ds.Dataset.label ~links:ds.Dataset.links
    ~routers:
      (Array.map
         (fun (r : Router.t) ->
           {
             r with
             Router.ping_rtts = keep r.Router.ping_rtts;
             trace_rtts = keep r.Router.trace_rtts;
           })
         ds.Dataset.routers)
    ~vps:ds.Dataset.vps ()
