module Strutil = Hoiho_util.Strutil
module Db = Hoiho_geodb.Db
module City = Hoiho_geodb.City
module Iso = Hoiho_geodb.Iso
module Router = Hoiho_itdk.Router
module Psl = Hoiho_psl.Psl

type span = { label : int; start : int; len : int }

type tag = {
  hint : string;
  hint_type : Plan.hint_type;
  spans : span list;
  cc : (span * string) option;
  state : (span * string) option;
  locations : City.t list;
}

type sample = {
  hostname : string;
  labels : string array;
  suffix : string;
  router : Router.t;
  tags : tag list;
}

let min_city_name_len = 4

(* alphanumeric tokens of a label with their offsets *)
type token = { t_label : int; t_start : int; text : string }

let tokens_of_label idx label =
  let n = String.length label in
  let out = ref [] in
  let start = ref (-1) in
  let flush stop =
    if !start >= 0 then begin
      out := { t_label = idx; t_start = !start; text = String.sub label !start (stop - !start) } :: !out;
      start := -1
    end
  in
  for i = 0 to n - 1 do
    if Strutil.is_alnum label.[i] then begin
      if !start < 0 then start := i
    end
    else flush i
  done;
  flush n;
  List.rev !out

let span_of_token tok len_override =
  { label = tok.t_label; start = tok.t_start; len = len_override }

(* the leading alphabetic run of a token, with its in-label offset: for
   "lhr15" -> "lhr"; for "100ge5" the run is "ge" at offset 3 *)
let alpha_run tok =
  let s = tok.text in
  let n = String.length s in
  let rec skip i = if i < n && Strutil.is_digit s.[i] then skip (i + 1) else i in
  let st = skip 0 in
  let rec until i = if i < n && Strutil.is_alpha s.[i] then until (i + 1) else i in
  let en = until st in
  if en > st then Some (String.sub s st (en - st), tok.t_start + st) else None

(* candidate (string, type, span list) interpretations of a token, before
   dictionary/RTT filtering *)
let candidates_of db tok next_tok =
  let out = ref [] in
  let add hint hint_type spans = out := (hint, hint_type, spans) :: !out in
  (match alpha_run tok with
  | None -> ()
  | Some (alpha, off) ->
      let n = String.length alpha in
      let span len = { label = tok.t_label; start = off; len } in
      if n = 3 then add alpha Plan.Iata [ span 3 ];
      if n = 4 then add alpha Plan.Icao [ span 4 ];
      if n = 5 then add alpha Plan.Locode [ span 5 ];
      if n >= 6 && n <= 11 then
        add (String.sub alpha 0 6) Plan.Clli [ span 6 ];
      if n >= min_city_name_len then add alpha Plan.CityName [ span n ];
      (* split CLLI: 4-letter token + adjacent 2-letter token (fig. 6e) *)
      (if n = 4 then
         match next_tok with
         | Some nt -> (
             match alpha_run nt with
             | Some (alpha2, off2) when String.length alpha2 = 2 && nt.t_label = tok.t_label ->
                 add (alpha ^ alpha2) Plan.Clli
                   [ span 4; { label = nt.t_label; start = off2; len = 2 } ]
             | _ -> ())
         | None -> ()));
  (* facility street addresses keep their digits: "529bryant" *)
  if String.exists Strutil.is_digit tok.text
     && String.exists Strutil.is_alpha tok.text
     && Db.lookup_facility db tok.text <> []
  then
    add tok.text Plan.FacilityAddr [ span_of_token tok (String.length tok.text) ];
  List.rev !out

(* find a country or state token matching one of the locations; the hint
   spans themselves are excluded *)
let find_region_tokens tokens ~exclude locations =
  let excluded tok =
    List.exists
      (fun sp ->
        sp.label = tok.t_label
        && tok.t_start < sp.start + sp.len
        && sp.start < tok.t_start + String.length tok.text)
      exclude
  in
  let cc = ref None and state = ref None in
  List.iter
    (fun tok ->
      if not (excluded tok) then
        match alpha_run tok with
        | Some (alpha, off) when String.length alpha >= 2 && String.length alpha <= 3 ->
            let sp = { label = tok.t_label; start = off; len = String.length alpha } in
            if !cc = None && Iso.is_country alpha
               && List.exists (fun c -> Dicts.cc_matches c alpha) locations
            then cc := Some (sp, alpha)
            else if !state = None
                    && List.exists (fun c -> Dicts.state_matches c alpha) locations
            then state := Some (sp, alpha)
        | _ -> ())
    tokens;
  (!cc, !state)

let tag_hostname consist db ~suffix router hostname =
  match Strutil.drop_suffix ~suffix hostname with
  | None | Some "" -> None
  | Some prefix ->
      let labels = Array.of_list (String.split_on_char '.' prefix) in
      let tokens =
        List.concat (List.mapi tokens_of_label (Array.to_list labels))
      in
      let rec with_next = function
        | [] -> []
        | [ x ] -> [ (x, None) ]
        | x :: (y :: _ as rest) -> (x, Some y) :: with_next rest
      in
      let tags = ref [] in
      List.iter
        (fun (tok, next_tok) ->
          List.iter
            (fun (hint, hint_type, spans) ->
              let locations = Dicts.lookup db hint_type hint in
              let consistent =
                List.filter (Consist.city_consistent consist router) locations
              in
              if consistent <> [] then begin
                let cc, state =
                  find_region_tokens tokens ~exclude:spans consistent
                in
                (* a matching region code narrows the candidate set *)
                let locations =
                  let narrowed =
                    List.filter
                      (fun c ->
                        (match cc with
                        | Some (_, code) -> Dicts.cc_matches c code
                        | None -> true)
                        &&
                        match state with
                        | Some (_, code) -> Dicts.state_matches c code
                        | None -> true)
                      consistent
                  in
                  if narrowed <> [] then narrowed else consistent
                in
                tags := { hint; hint_type; spans; cc; state; locations } :: !tags
              end)
            (candidates_of db tok next_tok))
        (with_next tokens);
      Some { hostname; labels; suffix; router; tags = List.rev !tags }

let build_samples consist db ~suffix routers =
  List.concat_map
    (fun router ->
      List.filter_map
        (fun hostname -> tag_hostname consist db ~suffix router hostname)
        router.Router.hostnames)
    routers
