(** Stage 4: learn geohints not in the reference dictionary (§5.4).

    Applied to NCs that extracted at least three unique RTT-consistent
    geohints with PPV > 40%. Extractions scored FP (dictionary location
    not RTT-consistent — a repurposed code like "ash") or UNK (not in
    any dictionary — an invented code like "mlanit") become learning
    candidates. Each is matched against place names with the paper's
    abbreviation rules, candidates are ranked facility → population →
    congruent routers, and the winner is adopted when its PPV is ≥ 80%,
    it beats the dictionary interpretation by more than one TP, and
    enough routers agree (three, or one when the extraction carries a
    country/state code). *)

val abbrev_matches : hint:string -> name:string -> bool
(** The paper's abbreviation rule: all characters of [hint] appear in
    [name] in order, the first characters agree, and inside any word
    after the first the word's initial must be matched before other
    characters of that word ("nyk" matches "new york"; "nwk" does not). *)

val eligible : Ncsel.t -> bool
(** ≥3 unique hints and PPV > 0.4. *)

val learn :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  Ncsel.t ->
  Learned.t
(** Learned overrides for one suffix's selected NC. Empty when the NC is
    not {!eligible} or nothing qualifies. *)

val min_contiguous_for_city_plans : int
(** City-name plans require this many contiguous matching characters. *)
