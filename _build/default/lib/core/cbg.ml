module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Vp = Hoiho_itdk.Vp

type estimate = { center : Coord.t; error_km : float; n_constraints : int }

let estimate consist router =
  match Consist.router_rtts consist router with
  | [] -> None
  | rtts ->
      (* weight each VP by the inverse of its disc radius: a 2 ms
         constraint says far more about the location than a 100 ms one *)
      let weighted =
        List.map
          (fun ((vp : Vp.t), rtt) ->
            let radius = Float.max 1.0 (Lightrtt.max_distance_km ~rtt_ms:rtt) in
            (vp.Vp.coord, radius, 1.0 /. radius))
          rtts
      in
      let wsum = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 weighted in
      let lat =
        List.fold_left (fun acc (c, _, w) -> acc +. (c.Coord.lat *. w)) 0.0 weighted
        /. wsum
      in
      let lon =
        (* weighted mean of longitudes is wrong across the antimeridian;
           the tightest constraint dominates in practice, so fold each
           longitude into the frame of the best-constrained VP *)
        let _, ref_lon =
          List.fold_left
            (fun (best_w, best_lon) (c, _, w) ->
              if w > best_w then (w, c.Coord.lon) else (best_w, best_lon))
            (neg_infinity, 0.0) weighted
        in
        let fold l =
          if l -. ref_lon > 180.0 then l -. 360.0
          else if ref_lon -. l > 180.0 then l +. 360.0
          else l
        in
        let raw =
          List.fold_left (fun acc (c, _, w) -> acc +. (fold c.Coord.lon *. w)) 0.0 weighted
          /. wsum
        in
        if raw > 180.0 then raw -. 360.0 else if raw < -180.0 then raw +. 360.0 else raw
      in
      let error_km =
        List.fold_left (fun acc (_, r, _) -> Float.min acc r) infinity weighted
      in
      Some
        {
          center = Coord.make ~lat:(Float.max (-90.) (Float.min 90. lat)) ~lon;
          error_km;
          n_constraints = List.length rtts;
        }

let shortest_ping consist router =
  match router.Router.ping_rtts with
  | [] -> None
  | _ ->
      Consist.router_rtts consist router
      |> List.fold_left
           (fun best (vp, rtt) ->
             match best with
             | Some (_, best_rtt) when best_rtt <= rtt -> best
             | _ -> Some (vp, rtt))
           None
      |> Option.map fst

let feasible consist router loc = Consist.location_consistent consist router loc

let infeasible_fraction consist pairs =
  Hoiho_util.Stat.fraction (fun (router, loc) -> not (feasible consist router loc)) pairs
