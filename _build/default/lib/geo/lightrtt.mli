(** Speed-of-light RTT constraints.

    The method's core feasibility test (§5.2): a measured round-trip time
    to a router is consistent with a candidate location only if it is no
    smaller than the theoretical best-case RTT between the vantage point
    and that location — light in fiber travels at roughly 2/3 c, and the
    signal must make the trip twice. *)

val fiber_km_per_ms : float
(** One-way propagation distance per millisecond in fiber (~100 km/ms). *)

val min_rtt_ms : Coord.t -> Coord.t -> float
(** Theoretical best-case RTT between two points, in milliseconds. *)

val max_distance_km : rtt_ms:float -> float
(** Radius of the disc an RTT constrains a target to: the farthest a
    responder can be from the vantage point given the measured RTT. *)

val consistent : ?slack_ms:float -> vp:Coord.t -> candidate:Coord.t -> float -> bool
(** [consistent ~vp ~candidate rtt_ms] is true when the measured RTT [rtt_ms] is
    at least the best-case RTT from [vp] to [candidate]. [slack_ms]
    (default 0) loosens the test to absorb measurement quantization. *)
