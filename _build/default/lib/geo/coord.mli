(** Geographic coordinates and great-circle geometry.

    Distances use the haversine formula on a spherical Earth
    (radius 6371.0088 km), which is accurate to ~0.5% — far finer than
    the speed-of-light constraints the geolocation method relies on. *)

type t = { lat : float; lon : float }
(** Decimal degrees; latitude in \[-90, 90\], longitude in \[-180, 180\]. *)

val make : lat:float -> lon:float -> t
(** Raises [Invalid_argument] when out of range. *)

val distance_km : t -> t -> float
(** Great-circle distance in kilometres. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
