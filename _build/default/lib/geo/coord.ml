type t = { lat : float; lon : float }

let earth_radius_km = 6371.0088

let make ~lat ~lon =
  if lat < -90.0 || lat > 90.0 then invalid_arg "Coord.make: latitude out of range";
  if lon < -180.0 || lon > 180.0 then invalid_arg "Coord.make: longitude out of range";
  { lat; lon }

let rad d = d *. Float.pi /. 180.0

let distance_km a b =
  let dlat = rad (b.lat -. a.lat) and dlon = rad (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (rad a.lat) *. cos (rad b.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. asin (sqrt (Float.min 1.0 h))

let equal a b = a.lat = b.lat && a.lon = b.lon
let pp fmt { lat; lon } = Format.fprintf fmt "(%.4f, %.4f)" lat lon
