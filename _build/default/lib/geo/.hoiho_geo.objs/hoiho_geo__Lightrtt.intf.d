lib/geo/lightrtt.mli: Coord
