lib/geo/lightrtt.ml: Coord
