(* c = 299792.458 km/s; in fiber the group velocity is ~2/3 c. One-way:
   199861.6 km/s ~= 199.86 km/ms. We use the conventional round figure of
   ~100 km of distance per millisecond of RTT (there and back). *)
let fiber_km_per_ms = 299792.458 /. 1000.0 *. (2.0 /. 3.0)

let min_rtt_ms a b = 2.0 *. Coord.distance_km a b /. fiber_km_per_ms

let max_distance_km ~rtt_ms = rtt_ms *. fiber_km_per_ms /. 2.0

let consistent ?(slack_ms = 0.0) ~vp ~candidate rtt_ms =
  rtt_ms +. slack_ms >= min_rtt_ms vp candidate
