(** Operator naming conventions for the synthetic topology.

    A convention is a hostname template: a dot-separated list of labels,
    each label a dash-separated list of tokens. The geohint occupies one
    token; surrounding tokens carry interface names, roles, constants,
    or junk — reproducing the hostname shapes of figures 1, 6, 12. *)

type hint_kind = Iata | Clli | Locode | CityName | FacilityAddr

type tok =
  | Iface  (** interface name with embedded digits, e.g. "xe-0-1-0" *)
  | Role of string  (** role string + one digit, e.g. "cr2" *)
  | RoleBare of string  (** role string without digits *)
  | RoleOf of string list  (** one of several role strings + digit *)
  | RoleBareOf of string list  (** one of several fixed strings *)
  | Geo  (** the geohint code *)
  | GeoDig  (** geohint code + digits, e.g. "lhr15" *)
  | GeoCompound
      (** undelimited city-id + digit + state compound, e.g. "chi2ca"
          (figure 12a's AT&T style — not parseable by the method, §7) *)
  | GeoSplitClli  (** 6-letter CLLI prefix split "asbn-va" over two tokens *)
  | Cc  (** country code of the router's city *)
  | State  (** state code *)
  | Const of string
  | Junk  (** random customer/feature token (may collide with IATA) *)
  | Num  (** pure digits *)
  | AsnTok  (** the router operator's AS number, e.g. "as6939" *)

type template = tok list list
(** Outer list: dot-separated labels; inner: dash-joined tokens. *)

type t = {
  hint_kind : hint_kind option;  (** [None]: no geohints embedded *)
  templates : template list;  (** >1 when the operator mixes formats *)
  uses_cc : bool;
  uses_state : bool;
}

val role_pool : string array
(** Role strings operators use ("cr", "gw", "bb", ...). *)

val junk_pool : string array
(** Non-geographic tokens, including the IATA collisions the paper calls
    out ("gig", "eth", "cpe") and HLOC blocklist examples. *)

val render :
  Hoiho_util.Prng.t ->
  template ->
  geo:string ->
  cc:string ->
  state:string option ->
  ?asn:int ->
  string ->
  string
(** [render rng template ~geo ~cc ~state ?asn suffix] renders one
    hostname: instantiate digits/junk, substitute the geohint, cc/state
    codes and ASN, then append the suffix. *)

val render_router :
  Hoiho_util.Prng.t ->
  template ->
  geo:string ->
  cc:string ->
  state:string option ->
  ?asn:int ->
  count:int ->
  string ->
  string list
(** Render [count] hostnames for the interfaces of one router: the
    interface-specific tokens (interface names, junk, digits) vary per
    hostname while the rest — the *router name* of Luckie et al. 2019 —
    stays fixed ("100ge1-2.core1.ash1" / "100ge10-1.core1.ash1"). *)

val geo_label_kinds : template -> bool * bool * bool
(** (has geo token, has cc token, has state token). *)
