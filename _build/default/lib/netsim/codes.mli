(** Geohint code assignment for synthetic operators.

    Given a city and a hint kind, decide what code an operator embeds:
    either the reference-dictionary code, or — when the city lacks one,
    or the operator prefers a readable mnemonic (§2, §6.2) — a custom
    abbreviation derived from the city name. *)

val abbrev3 : string -> string
(** Readable 3-letter abbreviation of a squashed city name: the first
    letter followed by subsequent consonants ("tokyo" gives "tky",
    "ashburn" gives "ash" via the consonant-sparse fallback). *)

val abbrev4 : string -> string
(** 4-letter abbreviation used for custom CLLI city parts
    ("milan" gives "miln"). *)

val prefix3 : string -> string
(** Plain 3-letter prefix abbreviation ("toronto" gives "tor"). *)

val city_abbrev : string -> string
(** Abbreviation of a (possibly multi-word) city name for city-name
    conventions: "fort collins" gives "ftcollins". *)

val code_for :
  Hoiho_util.Prng.t ->
  Hoiho_geodb.Db.t ->
  Conv.hint_kind ->
  p_dev:float ->
  Hoiho_geodb.City.t ->
  (string * bool) option
(** [code_for rng db kind ~p_dev city] returns [(code, custom)]:
    the embedded code and whether it deviates from the reference
    dictionary. [p_dev] is the probability of deviating for readability
    when the dictionary code is not a natural abbreviation of the city
    name. [None] when no code can be produced (e.g. facility kind in a
    city without facilities). *)
