(** Ground-truth bundle retained by the generator.

    Holds the operator population that produced a synthetic dataset, so
    validation can replay the paper's §6 protocol: which suffixes embed
    geohints, each operator's codebook (code → city), and which codes
    are custom. The learning pipeline never sees this. *)

type t

val make : db:Hoiho_geodb.Db.t -> Oper.t list -> t

val ops : t -> Oper.t list

val db : t -> Hoiho_geodb.Db.t
(** The dictionary the generator drew places from. When the generator
    expanded the world with synthetic towns, the learning pipeline must
    consult this dictionary (they are ordinary GeoNames-style places). *)

val find : t -> string -> Oper.t option
(** Lookup by suffix. *)

val code_city : t -> suffix:string -> string -> string option
(** [code_city t ~suffix code] is the city key the operator of [suffix]
    means by [code], if any. *)

val is_custom : t -> suffix:string -> string -> bool

val geo_suffixes : t -> string list
(** Suffixes whose operator embeds geohints (any geo kind). *)
