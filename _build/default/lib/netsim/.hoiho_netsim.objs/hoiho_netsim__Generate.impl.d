lib/netsim/generate.ml: Array Conv Hashtbl Hoiho_geo Hoiho_geodb Hoiho_itdk Hoiho_util List Oper Printf Truth
