lib/netsim/conv.ml: Hoiho_util List Option Printf String
