lib/netsim/conv.mli: Hoiho_util
