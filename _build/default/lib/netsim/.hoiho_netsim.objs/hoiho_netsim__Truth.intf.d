lib/netsim/truth.mli: Hoiho_geodb Oper
