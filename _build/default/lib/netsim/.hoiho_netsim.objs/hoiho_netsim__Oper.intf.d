lib/netsim/oper.mli: Conv Hoiho_geodb Hoiho_util
