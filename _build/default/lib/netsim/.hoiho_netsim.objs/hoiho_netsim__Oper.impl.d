lib/netsim/oper.ml: Array Codes Conv Hashtbl Hoiho_geodb Hoiho_util List Printf String
