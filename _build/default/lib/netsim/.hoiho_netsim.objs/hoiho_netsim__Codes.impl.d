lib/netsim/codes.ml: Array Buffer Conv Hoiho_geodb Hoiho_util Printf String
