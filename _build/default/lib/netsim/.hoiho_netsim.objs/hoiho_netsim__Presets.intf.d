lib/netsim/presets.mli: Generate
