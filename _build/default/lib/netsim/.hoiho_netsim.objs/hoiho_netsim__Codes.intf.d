lib/netsim/codes.mli: Conv Hoiho_geodb Hoiho_util
