lib/netsim/generate.mli: Hoiho_geodb Hoiho_itdk Hoiho_util Truth
