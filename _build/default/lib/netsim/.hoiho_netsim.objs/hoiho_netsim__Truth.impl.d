lib/netsim/truth.ml: Hashtbl Hoiho_geodb List Oper
