lib/netsim/presets.ml: Generate
