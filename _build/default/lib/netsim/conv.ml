module Prng = Hoiho_util.Prng

type hint_kind = Iata | Clli | Locode | CityName | FacilityAddr

type tok =
  | Iface
  | Role of string
  | RoleBare of string
  | RoleOf of string list
  | RoleBareOf of string list
  | Geo
  | GeoDig
  | GeoCompound
  | GeoSplitClli
  | Cc
  | State
  | Const of string
  | Junk
  | Num
  | AsnTok

type template = tok list list

type t = {
  hint_kind : hint_kind option;
  templates : template list;
  uses_cc : bool;
  uses_state : bool;
}

(* "edge" is a real role string (level3 in figure 1) but it collides
   with the town of Edge, GB (figure 6b); random operators draw from
   this pool, so it is left out to keep the chance-collision rate at the
   paper's observed level. The collision class itself stays reachable
   through the gig/eth/cpe junk tokens. *)
let role_pool =
  [|
    "cr"; "br"; "gw"; "core"; "bb"; "mpr"; "ar"; "pe"; "agg";
    "rtr"; "bbr"; "dcr"; "tr"; "cs"; "hsa"; "lsr"; "p"; "re";
  |]

let junk_pool =
  [|
    "gig"; "eth"; "cpe"; "dns"; "mail"; "adsl"; "atlas"; "voda"; "telecom";
    "netsol"; "media"; "globex"; "initech"; "acme"; "level"; "vpn"; "mgmt";
    "static"; "dyn"; "cust"; "biz"; "colo"; "host"; "node"; "wan"; "lan";
    "ipv"; "ix"; "peer"; "transit"; "lo"; "srv"; "uplink"; "access";
    "resnet"; "campus"; "backup"; "infra"; "probe"; "sensor"; "bundle";
    "trunk"; "spare"; "legacy"; "feeds"; "telco"; "fiberlink"; "darkfib";
    "wless"; "microw"; "ptp"; "ppp"; "pppoe"; "dhcp"; "nat"; "fw"; "ids";
    "noc"; "oob"; "oobm"; "console"; "term"; "dist"; "aggr"; "ethtrunk";
    "portch"; "vrrp"; "hsrp"; "mpls"; "ldp"; "bgp"; "ospf"; "isis";
  |]

let iface_patterns =
  [|
    (fun rng -> Printf.sprintf "xe-%d-%d-%d" (Prng.int rng 4) (Prng.int rng 4) (Prng.int rng 8));
    (fun rng -> Printf.sprintf "ae%d" (Prng.int rng 40));
    (fun rng -> Printf.sprintf "ge-%d-%d" (Prng.int rng 4) (Prng.int rng 8));
    (fun rng -> Printf.sprintf "so-%d-%d-%d" (Prng.int rng 2) (Prng.int rng 4) (Prng.int rng 4));
    (fun rng -> Printf.sprintf "et-%d-%d" (Prng.int rng 4) (Prng.int rng 8));
    (fun rng ->
      Printf.sprintf "hundredgige%d-%d-%d-%d" (Prng.int rng 2) (Prng.int rng 6)
        (Prng.int rng 2) (Prng.int rng 4));
    (fun rng -> Printf.sprintf "be%d" (Prng.int rng 200));
    (fun rng -> Printf.sprintf "100ge%d-%d" (1 + Prng.int rng 12) (1 + Prng.int rng 4));
    (fun rng -> Printf.sprintf "te%d-%d" (Prng.int rng 4) (1 + Prng.int rng 4));
    (fun rng -> Printf.sprintf "po%d" (1 + Prng.int rng 30));
  |]

let render_tok rng tok ~geo ~cc ~state ~asn =
  match tok with
  | Iface -> (Prng.pick rng iface_patterns) rng
  | Role r -> Printf.sprintf "%s%d" r (1 + Prng.int rng 4)
  | RoleBare r -> r
  | RoleOf rs -> Printf.sprintf "%s%d" (Prng.pick_list rng rs) (1 + Prng.int rng 4)
  | RoleBareOf rs -> Prng.pick_list rng rs
  | Geo -> geo
  | GeoDig -> Printf.sprintf "%s%d" geo (1 + Prng.int rng 20)
  | GeoCompound ->
      (* AT&T-style undelimited compound (figure 12a): city id, digit,
         then a state/country code, all glued: "chi2ca", "rd3tx" *)
      Printf.sprintf "%s%d%s" geo (Prng.int rng 10) (Option.value state ~default:cc)
  | GeoSplitClli ->
      (* caller passes the 6-letter prefix; we emit "4letters-2letters" *)
      if String.length geo >= 6 then
        Printf.sprintf "%s-%s" (String.sub geo 0 4) (String.sub geo 4 2)
      else geo
  | Cc -> cc
  | State -> Option.value state ~default:cc
  | Const s -> s
  | Junk -> Prng.pick rng junk_pool
  | Num -> string_of_int (Prng.int rng 300)
  | AsnTok -> Printf.sprintf "as%d" asn

let render rng template ~geo ~cc ~state ?(asn = 0) suffix =
  let labels =
    List.map
      (fun label ->
        String.concat "-"
          (List.map (fun tok -> render_tok rng tok ~geo ~cc ~state ~asn) label))
      template
  in
  String.concat "." (labels @ [ suffix ])

(* interface-specific tokens vary per hostname; everything else is the
   router's stable name, shared by all its interfaces (figure 1) *)
let volatile = function
  | Iface | Junk | Num -> true
  | Role _ | RoleBare _ | RoleOf _ | RoleBareOf _ | Geo | GeoDig | GeoCompound
  | GeoSplitClli | Cc | State | Const _ | AsnTok ->
      false

let render_router rng template ~geo ~cc ~state ?(asn = 0) ~count suffix =
  let stable =
    List.map
      (List.map (fun tok ->
           if volatile tok then None
           else Some (render_tok rng tok ~geo ~cc ~state ~asn)))
      template
  in
  List.init count (fun _ ->
      let labels =
        List.map2
          (fun label pre ->
            String.concat "-"
              (List.map2
                 (fun tok rendered ->
                   match rendered with
                   | Some s -> s
                   | None -> render_tok rng tok ~geo ~cc ~state ~asn)
                 label pre))
          template stable
      in
      String.concat "." (labels @ [ suffix ]))

let geo_label_kinds template =
  let has p = List.exists (List.exists p) template in
  ( has (function Geo | GeoDig | GeoSplitClli -> true | _ -> false),
    has (function Cc -> true | _ -> false),
    has (function State -> true | _ -> false) )
