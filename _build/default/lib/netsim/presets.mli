(** Ready-made generator configurations mirroring the four ITDKs of
    table 1, at roughly 1/100 of the paper's scale. [scale] multiplies
    operator counts (1.0 = default). *)

val ipv4_aug20 : ?scale:float -> unit -> Generate.config
val ipv4_mar21 : ?scale:float -> unit -> Generate.config
val ipv6_nov20 : ?scale:float -> unit -> Generate.config
val ipv6_mar21 : ?scale:float -> unit -> Generate.config

val tiny : ?seed:int -> unit -> Generate.config
(** A small configuration for unit tests: validation operators plus a
    handful of random ones. *)

val all : ?scale:float -> unit -> Generate.config list
(** The four table-1 configurations in paper order. *)
