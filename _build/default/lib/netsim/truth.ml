type t = {
  ops : Oper.t list;
  by_suffix : (string, Oper.t) Hashtbl.t;
  db : Hoiho_geodb.Db.t;
}

let make ~db ops =
  let by_suffix = Hashtbl.create (List.length ops) in
  List.iter (fun (op : Oper.t) -> Hashtbl.replace by_suffix op.Oper.suffix op) ops;
  { ops; by_suffix; db }

let ops t = t.ops
let db t = t.db
let find t suffix = Hashtbl.find_opt t.by_suffix suffix

let code_city t ~suffix code =
  match find t suffix with
  | None -> None
  | Some op -> List.assoc_opt code (Oper.codebook op)

let is_custom t ~suffix code =
  match find t suffix with
  | None -> false
  | Some op -> List.mem_assoc code (Oper.customs op)

let geo_suffixes t =
  List.filter_map
    (fun (op : Oper.t) ->
      if op.Oper.kind = Oper.NoGeo then None else Some op.Oper.suffix)
    t.ops
