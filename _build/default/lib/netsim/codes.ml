module Prng = Hoiho_util.Prng
module Strutil = Hoiho_util.Strutil
module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db

let is_vowel c = c = 'a' || c = 'e' || c = 'i' || c = 'o' || c = 'u'

(* Keep the first letter, prefer consonants left to right, then fill with
   the earliest remaining letters; emit picked letters in original order.
   "tokyo" -> "tky", "milan" -> "miln", "ashburn" -> "ash" (prefix). *)
let squeeze name n =
  let name = String.concat "" (String.split_on_char ' ' name) in
  let len = String.length name in
  if len <= n then name ^ String.make (max 0 (n - len)) 'x'
  else begin
    let used = Array.make len false in
    used.(0) <- true;
    let count = ref 1 in
    let mark pred =
      let i = ref 1 in
      while !count < n && !i < len do
        if (not used.(!i)) && pred name.[!i] then begin
          used.(!i) <- true;
          incr count
        end;
        incr i
      done
    in
    mark (fun c -> not (is_vowel c));
    mark (fun _ -> true);
    let out = Buffer.create n in
    Array.iteri (fun k u -> if u then Buffer.add_char out name.[k]) used;
    Buffer.contents out
  end

let abbrev3 name = squeeze name 3
let abbrev4 name = squeeze name 4

let prefix3 name =
  let s = String.concat "" (String.split_on_char ' ' name) in
  if String.length s <= 3 then s ^ String.make (max 0 (3 - String.length s)) 'x'
  else String.sub s 0 3

let city_abbrev name =
  match String.split_on_char ' ' name with
  | [ single ] -> single
  | first :: rest when String.length first > 0 ->
      (* "fort collins" -> "ftcollins": first word shrinks to its first
         and last letters *)
      let lead =
        if String.length first <= 2 then first
        else Printf.sprintf "%c%c" first.[0] first.[String.length first - 1]
      in
      lead ^ String.concat "" rest
  | _ -> String.concat "" (String.split_on_char ' ' name)

(* does the dictionary code read as an abbreviation of the name? *)
let readable code name =
  let squashed = String.concat "" (String.split_on_char ' ' name) in
  String.length code > 0
  && String.length squashed > 0
  && code.[0] = squashed.[0]
  && Strutil.is_subsequence code squashed

let code_for rng db kind ~p_dev city =
  let name = city.City.name in
  match kind with
  | Conv.Iata -> (
      let custom () =
        if Prng.bool rng then prefix3 name else abbrev3 name
      in
      match city.City.iata with
      | code :: _ ->
          (* unreadable codes (yyz, lax) push operators toward mnemonics;
             some deviate even from readable ones (zur instead of zrh) *)
          let dev =
            if readable code name then Prng.float rng 1.0 < p_dev *. 0.3
            else Prng.float rng 1.0 < p_dev
          in
          if dev then
            let ab = custom () in
            if ab = code then Some (code, false) else Some (ab, true)
          else Some (code, false)
      | [] -> Some (custom (), true))
  | Conv.Clli -> (
      match Db.clli_of_city db city with
      | Some prefix ->
          if Prng.float rng 1.0 < p_dev then
            let custom = abbrev4 (City.squashed city) ^ City.clli_region city in
            if custom = prefix then Some (prefix, false) else Some (custom, true)
          else Some (prefix, false)
      | None -> Some (abbrev4 (City.squashed city) ^ City.clli_region city, true))
  | Conv.Locode -> (
      match Db.locode_of_city db city with
      | Some code ->
          if Prng.float rng 1.0 < p_dev then
            let custom = city.City.cc ^ abbrev3 (City.squashed city) in
            if custom = code then Some (code, false) else Some (custom, true)
          else Some (code, false)
      | None -> Some (city.City.cc ^ abbrev3 (City.squashed city), true))
  | Conv.CityName ->
      let full = City.squashed city in
      if String.length full > 8 && Prng.float rng 1.0 < p_dev then
        (* multi-word names compress their first word ("ftcollins");
           long single words truncate ("amsterdam" -> "amste") *)
        let abbr =
          if String.contains city.City.name ' ' then city_abbrev city.City.name
          else String.sub full 0 (4 + Prng.int rng 2)
        in
        if abbr = full then Some (full, false) else Some (abbr, true)
      else Some (full, false)
  | Conv.FacilityAddr -> (
      match city.City.facilities with
      | (_, addr) :: _ -> Some (addr, false)
      | [] -> None)
