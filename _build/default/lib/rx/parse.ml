exception Err of string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> raise (Err (Printf.sprintf "expected '%c' at position %d" c st.pos))

let parse_class_body st =
  (* positioned just after '['; consumes through ']' *)
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | None -> raise (Err "unterminated character class")
    | Some ']' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | None -> raise (Err "dangling backslash in class")
        | Some c ->
            advance st;
            Buffer.add_char buf '\\';
            Buffer.add_char buf c);
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Ast.cls_of_string (Buffer.contents buf)

let parse_int st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when c >= '0' && c <= '9' ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then raise (Err "expected integer in quantifier");
  int_of_string (String.sub st.src start (st.pos - start))

let parse_brace_quant st =
  (* positioned just after '{' *)
  let min = parse_int st in
  match peek st with
  | Some '}' ->
      advance st;
      (min, Some min)
  | Some ',' -> (
      advance st;
      match peek st with
      | Some '}' ->
          advance st;
          (min, None)
      | _ ->
          let max = parse_int st in
          expect st '}';
          if max < min then raise (Err "quantifier max below min");
          (min, Some max))
  | _ -> raise (Err "malformed {n,m} quantifier")

let escaped_atom c =
  match c with
  | 'd' -> Ast.Cls Ast.digit
  | 'n' -> Ast.Lit '\n'
  | 't' -> Ast.Lit '\t'
  | c -> Ast.Lit c

let rec parse_alt st =
  let first = parse_seq st in
  let rec go acc =
    match peek st with
    | Some '|' ->
        advance st;
        go (parse_seq st :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with [ single ] -> single | many -> [ Ast.Alt many ]

and parse_seq st =
  let rec go acc =
    match peek st with
    | None | Some '|' | Some ')' -> List.rev acc
    | Some _ ->
        let item = parse_item st in
        go (item :: acc)
  in
  go []

and parse_item st =
  let atom = parse_atom st in
  match peek st with
  | Some '?' ->
      advance st;
      quantified st atom 0 (Some 1)
  | Some '*' ->
      advance st;
      quantified st atom 0 None
  | Some '+' ->
      advance st;
      quantified st atom 1 None
  | Some '{' ->
      advance st;
      let min, max = parse_brace_quant st in
      quantified st atom min max
  | _ -> atom

and quantified st atom min max =
  (* a trailing '+' makes the quantifier possessive *)
  let greed =
    match peek st with
    | Some '+' ->
        advance st;
        Ast.Possessive
    | _ -> Ast.Greedy
  in
  match atom with
  | Ast.Bol | Ast.Eol -> raise (Err "cannot quantify an anchor")
  | atom -> Ast.Rep (atom, min, max, greed)

and parse_atom st =
  match peek st with
  | None -> raise (Err "unexpected end of pattern")
  | Some '^' ->
      advance st;
      Ast.Bol
  | Some '$' ->
      advance st;
      Ast.Eol
  | Some '.' ->
      advance st;
      Ast.Any
  | Some '[' ->
      advance st;
      Ast.Cls (parse_class_body st)
  | Some '\\' -> (
      advance st;
      match peek st with
      | None -> raise (Err "dangling backslash")
      | Some c ->
          advance st;
          escaped_atom c)
  | Some '(' -> (
      advance st;
      let capturing =
        if peek st = Some '?' then begin
          advance st;
          expect st ':';
          false
        end
        else true
      in
      let inner = parse_alt st in
      expect st ')';
      if capturing then Ast.Grp inner
      else match inner with [ (Ast.Alt _ as a) ] -> a | seq -> Ast.Alt [ seq ])
  | Some (('*' | '+' | '?' | '{' | ')' | '|') as c) ->
      raise (Err (Printf.sprintf "unexpected '%c' at position %d" c st.pos))
  | Some c ->
      advance st;
      Ast.Lit c

let parse s =
  let st = { src = s; pos = 0 } in
  try
    let ast = parse_alt st in
    if st.pos < String.length s then
      Error (Printf.sprintf "trailing input at position %d" st.pos)
    else Ok ast
  with Err msg -> Error msg

let parse_exn s =
  match parse s with
  | Ok ast -> ast
  | Error msg -> invalid_arg (Printf.sprintf "Rx.Parse.parse_exn: %s in %S" msg s)
