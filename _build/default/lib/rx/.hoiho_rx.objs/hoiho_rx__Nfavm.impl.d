lib/rx/nfavm.ml: Array Ast Hashtbl List String
