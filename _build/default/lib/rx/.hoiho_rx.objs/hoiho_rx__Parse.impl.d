lib/rx/parse.ml: Ast Buffer List Printf String
