lib/rx/parse.mli: Ast
