lib/rx/engine.mli: Ast
