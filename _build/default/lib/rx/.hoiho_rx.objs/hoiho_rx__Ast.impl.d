lib/rx/ast.ml: Buffer Format List Printf String
