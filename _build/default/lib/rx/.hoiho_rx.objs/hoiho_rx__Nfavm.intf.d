lib/rx/nfavm.mli: Ast
