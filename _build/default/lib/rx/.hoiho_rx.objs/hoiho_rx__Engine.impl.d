lib/rx/engine.ml: Array Ast List Parse Printf Result String
