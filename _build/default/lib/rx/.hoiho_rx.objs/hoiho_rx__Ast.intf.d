lib/rx/ast.mli: Format
