(** Parser for the concrete regex dialect.

    Supported syntax: literals; [\\] escapes ([\\.], [\\d], [\\\\], ...);
    [.] ; [\[...\]] classes with ranges, negation, and [\\d]; [( )] capture
    groups; [(?: )] non-capturing groups; [|] alternation; anchors [^] and
    [$]; quantifiers [?], [*], [+], [{n}], [{n,}], [{n,m}]; possessive
    [*+] and [++]. *)

val parse : string -> (Ast.t, string) result
(** [parse s] returns the AST, or [Error msg] describing the first
    syntax error. *)

val parse_exn : string -> Ast.t
(** Like {!parse} but raises [Invalid_argument] on error. *)
