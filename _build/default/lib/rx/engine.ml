type prog =
  | PLit of char
  | PCls of Ast.cls
  | PAny
  | PBol
  | PEol
  | PRep of prog * int * int option * Ast.greed
  | PGrp of int * prog list
  | PAlt of prog list list

type t = { prog : prog list; ngroups : int; ast : Ast.t }

let compile ast =
  let counter = ref 0 in
  let rec seq nodes = List.map node nodes
  and node = function
    | Ast.Lit c -> PLit c
    | Ast.Cls c -> PCls c
    | Ast.Any -> PAny
    | Ast.Bol -> PBol
    | Ast.Eol -> PEol
    | Ast.Rep (n, min, max, g) -> PRep (node n, min, max, g)
    | Ast.Grp inner ->
        let idx = !counter in
        incr counter;
        (* number this group before descending so numbering is
           left-to-right outside-in, as in conventional engines *)
        PGrp (idx, seq inner)
    | Ast.Alt alts -> PAlt (List.map seq alts)
  in
  let prog = seq ast in
  { prog; ngroups = !counter; ast }

let compile_string s = Result.map compile (Parse.parse s)

let compile_exn s =
  match compile_string s with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Rx.Engine.compile_exn: %s in %S" msg s)

let ast t = t.ast
let source t = Ast.to_string t.ast
let group_count t = t.ngroups

(* width-1 atoms admit a simple possessive loop *)
let rec char_width = function
  | PLit _ | PCls _ | PAny -> true
  | PGrp (_, [ p ]) -> char_width p
  | _ -> false

let matches_char p s pos =
  pos < String.length s
  &&
  match p with
  | PLit c -> s.[pos] = c
  | PCls c -> Ast.cls_mem c s.[pos]
  | PAny -> true
  | _ -> false

let exec_at t s start =
  let n = String.length s in
  let caps = Array.make (2 * t.ngroups) (-1) in
  let rec mseq items pos k =
    match items with
    | [] -> k pos
    | it :: rest -> mnode it pos (fun pos' -> mseq rest pos' k)
  and mnode item pos k =
    match item with
    | PLit c -> pos < n && s.[pos] = c && k (pos + 1)
    | PCls cl -> pos < n && Ast.cls_mem cl s.[pos] && k (pos + 1)
    | PAny -> pos < n && k (pos + 1)
    | PBol -> pos = 0 && k pos
    | PEol -> pos = n && k pos
    | PGrp (i, inner) ->
        let s0 = caps.(2 * i) and e0 = caps.((2 * i) + 1) in
        caps.(2 * i) <- pos;
        let ok =
          mseq inner pos (fun pos' ->
              caps.((2 * i) + 1) <- pos';
              k pos')
        in
        if not ok then begin
          caps.(2 * i) <- s0;
          caps.((2 * i) + 1) <- e0
        end;
        ok
    | PAlt alts ->
        let rec try_alts = function
          | [] -> false
          | a :: rest -> mseq a pos k || try_alts rest
        in
        try_alts alts
    | PRep (p, min, max, Ast.Possessive) when char_width p ->
        (* consume maximally with no backtracking *)
        let rec eat count pos =
          let more =
            (match max with Some m -> count < m | None -> true)
            && matches_char (strip_groups p) s pos
          in
          if more then eat (count + 1) (pos + 1) else (count, pos)
        in
        let count, pos' = eat 0 pos in
        count >= min && k pos'
    | PRep (p, min, max, _) ->
        let rec go count pos =
          let try_more () =
            (match max with Some m -> count < m | None -> true)
            && mnode p pos (fun pos' ->
                   (* zero-width inner match would loop forever *)
                   pos' > pos && go (count + 1) pos')
          in
          if count < min then try_more ()
          else try_more () || k pos
        in
        go 0 pos
  and strip_groups = function PGrp (_, [ p ]) -> strip_groups p | p -> p in
  if mseq t.prog start (fun _ -> true) then Some caps else None

(* a possessive repetition wrapping a group still records captures via the
   greedy path; to keep capture semantics simple we only take the
   possessive fast path when the atom records no groups *)
let exec t s =
  let n = String.length s in
  let anchored = match t.prog with PBol :: _ -> true | _ -> false in
  let rec try_from start =
    if start > n then None
    else
      match exec_at t s start with
      | Some caps -> Some caps
      | None -> if anchored then None else try_from (start + 1)
  in
  match try_from 0 with
  | None -> None
  | Some caps ->
      Some
        (Array.init t.ngroups (fun i ->
             let st = caps.(2 * i) and en = caps.((2 * i) + 1) in
             if st < 0 || en < 0 || en < st then None
             else Some (String.sub s st (en - st))))

let exec_groups t s =
  match exec t s with
  | None -> None
  | Some arr ->
      Some (Array.to_list arr |> List.filter_map (fun x -> x))

let matches t s = exec t s <> None
