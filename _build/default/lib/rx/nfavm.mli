(** A second, independent matcher: Thompson NFA simulation (Pike-VM
    style, without captures).

    Exists for differential testing of {!Engine}: the two
    implementations share nothing beyond the AST, so agreement on
    random patterns and inputs is strong evidence both are right.
    Matching is boolean and unanchored (like [Engine.exec] on a pattern
    without [^]), linear in [length input * program size] — no
    backtracking blowup.

    Possessive quantifiers cannot be expressed in a plain NFA (they
    change the language, not just the strategy); {!compile} rejects
    patterns containing them. *)

type t

val supported : Ast.t -> bool
(** False when the pattern contains a possessive quantifier. *)

val compile : Ast.t -> t
(** Raises [Invalid_argument] on unsupported patterns. *)

val matches : t -> string -> bool
(** Unanchored: true when any substring matches (respecting any [^]/[$]
    anchors in the pattern). *)

val program_size : t -> int
(** Number of compiled instructions (for tests). *)
