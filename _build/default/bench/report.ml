(* Plain-text table rendering for the experiment harness. *)

let hr width = String.make width '-'

let section title =
  let line = hr (String.length title + 8) in
  Printf.printf "\n%s\n=== %s ===\n%s\n" line title line

let subsection title = Printf.printf "\n--- %s ---\n" title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* columns are sized to the widest cell *)
let table ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let render row =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell) row)
  in
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n" (hr (String.length (render header)));
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows

let pct n d = if d = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d

let fmt_pct n d = Printf.sprintf "%.1f%%" (pct n d)

let fmt_count_pct n d = Printf.sprintf "%d (%s)" n (fmt_pct n d)

let paper_vs name paper measured =
  Printf.printf "  %-44s paper: %-12s measured: %s\n" name paper measured
