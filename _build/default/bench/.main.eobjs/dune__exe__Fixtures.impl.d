bench/fixtures.ml: Array Hoiho_geo Hoiho_geodb Hoiho_itdk List Printf String
