bench/main.mli:
