(* Hand-built suffix groups for the figure-2 and figure-13 walkthroughs:
   small, carefully shaped hostname sets that exercise specific
   behaviours of the regex generator. *)

module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Vp = Hoiho_itdk.Vp
module Dataset = Hoiho_itdk.Dataset

let db = Db.default ()

let city ?state name cc =
  let squashed = String.concat "" (String.split_on_char ' ' name) in
  match
    List.filter
      (fun c ->
        c.City.cc = cc
        && match state with None -> true | Some st -> c.City.state = Some st)
      (Db.lookup_city_name db squashed)
  with
  | c :: _ -> c
  | [] -> failwith ("fixture city missing: " ^ name)

let vp id c =
  Vp.make ~id ~name:(Printf.sprintf "%s-%s" (City.squashed c) c.City.cc)
    ~city_key:(City.key c) ~coord:c.City.coord

let vps () =
  List.mapi vp
    [
      city "washington" "us" ~state:"dc"; city "chicago" "us" ~state:"il";
      city "los angeles" "us" ~state:"ca"; city "seattle" "us" ~state:"wa";
      city "london" "gb"; city "amsterdam" "nl"; city "frankfurt" "de";
      city "tokyo" "jp"; city "hong kong" "hk"; city "sydney" "au";
      city "sao paulo" "br"; city "new york" "us" ~state:"ny";
    ]

let sound_rtts vps (loc : Coord.t) =
  List.map
    (fun (v : Vp.t) -> (v.Vp.id, (Lightrtt.min_rtt_ms v.Vp.coord loc *. 1.35) +. 1.2))
    vps

let router vps id c hostnames =
  Router.make id ~hostnames
    ~ping_rtts:(sound_rtts vps c.City.coord)
    ~truth:
      {
        Router.city_key = City.key c;
        coord = c.City.coord;
        intended_hint = None;
        stale = false;
        hostname_hints = List.map (fun h -> (h, None)) hostnames;
      }

(* --- figure 13: an alter.net-style suffix mixing three formats --- *)

let alter_net () =
  let vps = vps () in
  let mk = router vps in
  let routers =
    [
      (* IATA format: 0.<iface>.<role>.<iata><n>.alter.net *)
      mk 0 (city "san francisco" "us" ~state:"ca") [ "0.xe-10-0-0.gw1.sfo16.alter.net" ];
      mk 1 (city "new york" "us" ~state:"ny") [ "0.ae5.br1.jfk10.alter.net" ];
      mk 2 (city "tokyo" "jp") [ "0.so-0-1-3.xt1.tko2.alter.net" ];
      mk 3 (city "washington" "us" ~state:"dc") [ "0.ae1.br2.iad8.alter.net" ];
      mk 4 (city "seattle" "us" ~state:"wa") [ "0.ae1.gw3.sea7.alter.net" ];
      mk 5 (city "amsterdam" "nl") [ "0.ae1.br2.ams3.alter.net" ];
      (* CLLI format: 0.<iface>.<clli><junk>-mse<nn>-x-ie<n>.alter.net *)
      mk 6 (city "richmond" "us" ~state:"va") [ "0.af0.rcmdva83-mse01-a-ie1.alter.net" ];
      mk 7 (city "newark" "us" ~state:"nj") [ "0.csi1.nwrknjnb-mse01-b-ie1.alter.net" ];
      mk 8 (city "seattle" "us" ~state:"wa") [ "0.af4.sttlwa22-mse02-a-ie3.alter.net" ];
      (* city-name format: <tok>-<tok>-<num>.<city>.<cc>.alter.net *)
      mk 9 (city "munich" "de") [ "ntwk-dis-00008.munich.de.alter.net" ];
      mk 10 (city "stuttgart" "de") [ "ntwk-dis-00019.stuttgart.de.alter.net" ];
      mk 11 (city "dresden" "de") [ "fa0-1-0.ckh.dresden.de.alter.net" ];
      mk 12 (city "frankfurt" "de") [ "ntwk-disy-2.frankfurt.de.alter.net" ];
    ]
  in
  (Dataset.make ~label:"alter.net fixture" ~routers:(Array.of_list routers)
     ~vps:(Array.of_list vps) (),
   routers)

(* --- figure 2: a 360.net-style suffix with two hostname shapes --- *)

let three_sixty_net () =
  let vps = vps () in
  let mk = router vps in
  let routers =
    [
      (* deep shape: <iface>.<num>.<city>-<n>.360.net *)
      mk 0 (city "beijing" "cn") [ "ae0.380.beijing-1.360.net" ];
      mk 1 (city "shanghai" "cn") [ "xe-1-0-2.377.shanghai-5.360.net" ];
      mk 2 (city "shenzhen" "cn") [ "ae3.401.shenzhen-2.360.net" ];
      mk 3 (city "guangzhou" "cn") [ "ae1.399.guangzhou-1.360.net" ];
      (* shallow shape: <city>-<n>.360.net *)
      mk 4 (city "hong kong" "hk") [ "hongkong-3.360.net" ];
      mk 5 (city "beijing" "cn") [ "beijing-7.360.net" ];
      mk 6 (city "taipei" "tw") [ "taipei-1.360.net" ];
    ]
  in
  (Dataset.make ~label:"360.net fixture" ~routers:(Array.of_list routers)
     ~vps:(Array.of_list vps) (),
   routers)
