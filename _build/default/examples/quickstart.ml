(* Quickstart: generate a small synthetic Internet, learn naming
   conventions, and geolocate hostnames with them.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A dataset: routers with hostnames and RTT measurements from
     vantage points. The "tiny" preset synthesizes one (DESIGN.md §1
     explains how this substitutes for a CAIDA ITDK). *)
  let config = Hoiho_netsim.Presets.tiny () in
  let dataset, _truth = Hoiho_netsim.Generate.generate config in
  print_endline (Hoiho_itdk.Dataset.summary dataset);

  (* 2. Run the five-stage pipeline: tag apparent geohints, generate and
     evaluate regexes, learn custom geohints, classify conventions. *)
  let pipeline = Hoiho.Pipeline.run dataset in
  let usable =
    List.filter Hoiho.Pipeline.usable pipeline.Hoiho.Pipeline.results
  in
  Printf.printf "learned usable naming conventions for %d suffixes\n\n"
    (List.length usable);

  (* 3. Inspect one suffix's convention. *)
  (match Hoiho.Pipeline.find pipeline "zayo.com" with
  | Some { nc = Some nc; learned; _ } ->
      print_endline "zayo.com naming convention:";
      List.iter
        (fun (c : Hoiho.Cand.t) ->
          Printf.printf "  %s\n    plan: %s\n" c.Hoiho.Cand.source
            (Format.asprintf "%a" Hoiho.Plan.pp c.Hoiho.Cand.plan))
        nc.Hoiho.Ncsel.cands;
      List.iter
        (fun (e : Hoiho.Learned.entry) ->
          Printf.printf "  learned geohint: %S means %s\n" e.Hoiho.Learned.hint
            (Hoiho_geodb.City.describe e.Hoiho.Learned.city))
        (Hoiho.Learned.entries learned)
  | _ -> print_endline "no convention for zayo.com");

  (* 4. Geolocate hostnames — including ones the pipeline never saw.
     Conventions are regexes: no measurement needed at lookup time. *)
  print_newline ();
  List.iter
    (fun hostname ->
      match Hoiho.Pipeline.geolocate pipeline hostname with
      | Some city ->
          Printf.printf "%-46s -> %s\n" hostname (Hoiho_geodb.City.describe city)
      | None -> Printf.printf "%-46s -> (unknown)\n" hostname)
    [
      "dns-mail.mpr2.lhr3.uk.zip.zayo.com";
      "cust-acme.mpr1.sea9.us.zip.zayo.com";
      "100ge7-2.core1.ash1.he.net";
      "ae-3.r21.mlanit02.it.bb.ntt.net";
      "no-such-convention.example.com";
    ]
