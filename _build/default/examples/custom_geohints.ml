(* The figure-8 story: operators repurpose geohints, and the learner
   works out what they meant.

   "ash" is the IATA code of Nashua, NH — but he.net uses it for its
   Ashburn, VA point of presence. The reference dictionary alone would
   misplace those routers by 700 km. This example walks the reasoning:
   the dictionary interpretation fails the speed-of-light test, the
   abbreviation matcher proposes candidate cities, and ranking by
   facility presence and population picks Ashburn.

   Run with: dune exec examples/custom_geohints.exe *)

let () =
  let db = Hoiho_geodb.Db.default () in
  let dataset, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ()) in
  let consist = Hoiho.Consist.create dataset in

  (* 1. What does the dictionary say "ash" means? *)
  print_endline "reference dictionary:";
  List.iter
    (fun city ->
      Printf.printf "  IATA ash = %s\n" (Hoiho_geodb.City.describe city))
    (Hoiho_geodb.Db.lookup_iata db "ash");

  (* 2. Find an he.net router whose hostname embeds "ash". *)
  let router =
    Array.to_list dataset.Hoiho_itdk.Dataset.routers
    |> List.find (fun (r : Hoiho_itdk.Router.t) ->
           List.exists
             (fun h ->
               Hoiho_psl.Psl.registered_suffix h = Some "he.net"
               && Hoiho_util.Strutil.split_punct h
                  |> List.exists (fun t ->
                         Hoiho_util.Strutil.strip_trailing_digits t = "ash"))
             r.Hoiho_itdk.Router.hostnames
           && r.Hoiho_itdk.Router.ping_rtts <> [])
  in
  Printf.printf "\nrouter #%d: %s\n" router.Hoiho_itdk.Router.id
    (String.concat ", " router.Hoiho_itdk.Router.hostnames);

  (* 3. Is Nashua consistent with this router's RTTs? Is Ashburn? *)
  let test name =
    match Hoiho_geodb.Db.lookup_city_name db name with
    | city :: _ ->
        Printf.printf "  %-24s RTT-consistent: %b\n"
          (Hoiho_geodb.City.describe city)
          (Hoiho.Consist.city_consistent consist router city)
    | [] -> ()
  in
  print_endline "\nspeed-of-light test against measured RTTs:";
  test "nashua";
  test "ashburn";

  (* 4. Which places could "ash" abbreviate? *)
  print_endline "\nabbreviation candidates for \"ash\":";
  Hoiho_geodb.Db.fold_cities
    (fun city () ->
      if Hoiho.Learn.abbrev_matches ~hint:"ash" ~name:city.Hoiho_geodb.City.name
      then
        Printf.printf "  %-24s population %8d  facility: %b\n"
          (Hoiho_geodb.City.describe city)
          city.Hoiho_geodb.City.population
          (city.Hoiho_geodb.City.facilities <> []))
    db ();

  (* 5. Run the full pipeline and show what was learned for he.net. *)
  let pipeline = Hoiho.Pipeline.run dataset in
  (match Hoiho.Pipeline.find pipeline "he.net" with
  | Some { learned; _ } ->
      print_endline "\nstage-4 learned geohints for he.net:";
      List.iter
        (fun (e : Hoiho.Learned.entry) ->
          Printf.printf "  %-8s -> %-24s (%d routers agree, %d disagree%s)\n"
            e.Hoiho.Learned.hint
            (Hoiho_geodb.City.describe e.Hoiho.Learned.city)
            e.Hoiho.Learned.tp e.Hoiho.Learned.fp
            (if e.Hoiho.Learned.collides then "; overrides a dictionary code"
             else ""))
        (Hoiho.Learned.entries learned)
  | None -> print_endline "he.net not found")
