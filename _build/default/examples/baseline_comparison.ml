(* Figure-9-style comparison: Hoiho vs HLOC, DRoP and undns over the
   validation suffixes, scored against ground truth with the 40 km rule.

   Run with: dune exec examples/baseline_comparison.exe *)

open Hoiho_validate.Validate

let () =
  let dataset, truth =
    Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ())
  in
  let pipeline = Hoiho.Pipeline.run dataset in
  let suffixes = Hoiho_netsim.Oper.validation_suffixes in
  let comparisons = compare_methods pipeline truth ~suffixes in
  Printf.printf "%-14s %5s | %-15s | %-15s | %-15s | %-15s\n" "suffix" "n"
    "hoiho tp/fp/fn%" "hloc" "drop" "undns";
  List.iter
    (fun (c : comparison) ->
      let cell s =
        Printf.sprintf "%3.0f/%3.0f/%3.0f" (tp_pct s) (fp_pct s) (fn_pct s)
      in
      Printf.printf "%-14s %5d | %-15s | %-15s | %-15s | %-15s\n" c.suffix c.n
        (cell c.hoiho) (cell c.hloc) (cell c.drop) (cell c.undns))
    comparisons;
  let mean get =
    List.fold_left (fun acc c -> acc +. tp_pct (get c)) 0.0 comparisons
    /. float_of_int (List.length comparisons)
  in
  Printf.printf
    "\naverage correct geolocations: hoiho %.1f%%  hloc %.1f%%  drop %.1f%%  undns %.1f%%\n"
    (mean (fun c -> c.hoiho))
    (mean (fun c -> c.hloc))
    (mean (fun c -> c.drop))
    (mean (fun c -> c.undns));
  (* aggregate PPV, as reported in §6.1 *)
  let agg get =
    List.fold_left
      (fun (tp, fp) c ->
        let s = get c in
        (tp + s.tp, fp + s.fp))
      (0, 0) comparisons
  in
  let ppv_of (tp, fp) =
    if tp + fp = 0 then 0.0 else 100.0 *. float_of_int tp /. float_of_int (tp + fp)
  in
  Printf.printf "PPV: undns %.1f%%  hoiho %.1f%%  drop %.1f%%  hloc %.1f%%\n"
    (ppv_of (agg (fun c -> c.undns)))
    (ppv_of (agg (fun c -> c.hoiho)))
    (ppv_of (agg (fun c -> c.drop)))
    (ppv_of (agg (fun c -> c.hloc)))
