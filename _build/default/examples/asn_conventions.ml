(* The other thing hostnames encode: who operates the router.

   The Hoiho platform this paper extends also learns ASN-extraction
   conventions (§3.4, IMC 2020). Providers name customer interconnection
   interfaces with the customer's AS number — "as15169-cust.gw1..." —
   and BGP-derived IP2AS data supplies the training signal the way RTTs
   do for geolocation.

   Run with: dune exec examples/asn_conventions.exe *)

module Asnconv = Hoiho.Asnconv

let () =
  let dataset, truth =
    Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ())
  in
  let groups = Hoiho_itdk.Dataset.by_suffix dataset in
  let learned =
    List.filter_map
      (fun (suffix, routers) ->
        let samples = Asnconv.samples_of_routers routers ~suffix in
        match Asnconv.learn ~suffix samples with
        | Some t when Asnconv.usable t -> Some (suffix, t)
        | _ -> None)
      groups
  in
  Printf.printf "usable ASN-extraction conventions: %d\n\n" (List.length learned);
  List.iteri
    (fun i (suffix, (t : Asnconv.t)) ->
      if i < 6 then begin
        Printf.printf "%-24s %s\n" suffix t.Asnconv.source;
        Printf.printf "%-24s %d hostnames, %d distinct customer ASNs"
          "" t.Asnconv.counts.Asnconv.tp t.Asnconv.distinct_asns;
        (match Hoiho_netsim.Truth.find truth suffix with
        | Some op ->
            Printf.printf " (operator itself is AS%d)" op.Hoiho_netsim.Oper.asn
        | None -> ());
        print_newline ()
      end)
    learned;
  (* apply one convention to a hostname the learner never saw *)
  match learned with
  | (suffix, t) :: _ ->
      let hostname = Printf.sprintf "as64500-newcustomer.gw9.zz1.%s" suffix in
      Printf.printf "\n%s\n  -> AS%s\n" hostname
        (match Asnconv.extract t hostname with
        | Some asn -> string_of_int asn
        | None -> "?")
  | [] -> ()
