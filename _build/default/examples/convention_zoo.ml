(* A tour of the diversity of naming conventions the pipeline learns:
   which dictionaries operators draw geohints from, which conventions
   also embed country or state codes, and an example regex of each kind
   (the flavor of table 4 and figure 7).

   Run with: dune exec examples/convention_zoo.exe *)

module Pipeline = Hoiho.Pipeline
module Ncsel = Hoiho.Ncsel
module Plan = Hoiho.Plan
module Cand = Hoiho.Cand

let () =
  let dataset, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ()) in
  let pipeline = Pipeline.run dataset in
  let usable = List.filter Pipeline.usable pipeline.Pipeline.results in

  (* group usable NCs by the geohint type of their first regex *)
  let by_type : (Plan.hint_type, Pipeline.suffix_result list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (r : Pipeline.suffix_result) ->
      match r.Pipeline.nc with
      | Some nc -> (
          match nc.Ncsel.cands with
          | cand :: _ -> (
              match Plan.hint_type_of cand.Cand.plan with
              | Some ht ->
                  Hashtbl.replace by_type ht
                    (r :: Option.value (Hashtbl.find_opt by_type ht) ~default:[])
              | None -> ())
          | [] -> ())
      | None -> ())
    usable;

  Printf.printf "%d usable naming conventions by geohint type:\n\n"
    (List.length usable);
  List.iter
    (fun ht ->
      match Hashtbl.find_opt by_type ht with
      | None -> ()
      | Some results ->
          let with_region =
            List.filter
              (fun (r : Pipeline.suffix_result) ->
                match r.Pipeline.nc with
                | Some nc ->
                    List.exists
                      (fun (c : Cand.t) ->
                        List.exists
                          (function Plan.Cc | Plan.State -> true | _ -> false)
                          c.Cand.plan)
                      nc.Ncsel.cands
                | None -> false)
              results
          in
          Printf.printf "%-10s %3d conventions (%d also extract a country/state code)\n"
            (Plan.hint_type_name ht) (List.length results)
            (List.length with_region);
          (* show the best example: the convention with the most TPs *)
          let best =
            List.fold_left
              (fun acc (r : Pipeline.suffix_result) ->
                match (acc, r.Pipeline.nc) with
                | None, Some _ -> Some r
                | Some (b : Pipeline.suffix_result), Some nc -> (
                    match b.Pipeline.nc with
                    | Some bnc
                      when nc.Ncsel.counts.Hoiho.Evalx.tp
                           > bnc.Ncsel.counts.Hoiho.Evalx.tp ->
                        Some r
                    | _ -> acc)
                | _ -> acc)
              None results
          in
          (match best with
          | Some ({ nc = Some nc; _ } as r) ->
              Printf.printf "  e.g. %s:\n" r.Pipeline.suffix;
              List.iter
                (fun (c : Cand.t) -> Printf.printf "       %s\n" c.Cand.source)
                nc.Ncsel.cands
          | _ -> ());
          print_newline ())
    [ Plan.Iata; Plan.CityName; Plan.Clli; Plan.Locode; Plan.FacilityAddr;
      Plan.Icao ]
