examples/custom_geohints.ml: Array Hoiho Hoiho_geodb Hoiho_itdk Hoiho_netsim Hoiho_psl Hoiho_util List Printf String
