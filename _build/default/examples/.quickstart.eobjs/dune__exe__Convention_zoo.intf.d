examples/convention_zoo.mli:
