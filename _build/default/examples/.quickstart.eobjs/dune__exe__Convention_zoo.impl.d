examples/convention_zoo.ml: Hashtbl Hoiho Hoiho_netsim List Option Printf
