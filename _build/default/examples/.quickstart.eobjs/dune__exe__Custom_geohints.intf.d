examples/custom_geohints.mli:
