examples/regex_phases.ml: Array Hoiho Hoiho_geodb Hoiho_itdk Hoiho_netsim List Printf Sys
