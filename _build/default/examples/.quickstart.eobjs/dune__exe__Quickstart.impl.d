examples/quickstart.ml: Format Hoiho Hoiho_geodb Hoiho_itdk Hoiho_netsim List Printf
