examples/asn_conventions.ml: Hoiho Hoiho_itdk Hoiho_netsim List Printf
