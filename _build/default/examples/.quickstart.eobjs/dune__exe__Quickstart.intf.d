examples/quickstart.mli:
