examples/asn_conventions.mli:
