examples/regex_phases.mli:
