examples/baseline_comparison.ml: Hoiho Hoiho_netsim Hoiho_validate List Printf
