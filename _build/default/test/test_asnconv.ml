module Asnconv = Hoiho.Asnconv

let tc = Helpers.tc

let sample hostname router_asn = { Asnconv.hostname; router_asn = Some router_asn }

let training =
  [
    sample "as8218-cust.gw1.lhr1.example.net" 8218;
    sample "as2914-peer.gw2.fra3.example.net" 2914;
    sample "as6939-colo.gw1.sea2.example.net" 6939;
    sample "as3257-host.gw3.ord1.example.net" 3257;
    (* infrastructure hostnames without ASNs *)
    sample "ae1.cr1.lhr1.example.net" 64512;
    sample "xe-0-0.cr2.fra1.example.net" 64512;
  ]

let learn () =
  match Asnconv.learn ~suffix:"example.net" training with
  | Some t -> t
  | None -> Alcotest.fail "no ASN convention learned"

let test_apparent () =
  Alcotest.(check (option int)) "prefixed" (Some 8218)
    (Asnconv.apparent (sample "as8218-cust.gw1.lhr1.example.net" 8218));
  Alcotest.(check (option int)) "bare digits" (Some 8218)
    (Asnconv.apparent (sample "8218.cust.example.net" 8218));
  Alcotest.(check (option int)) "wrong digits" None
    (Asnconv.apparent (sample "as1111-cust.example.net" 8218));
  Alcotest.(check (option int)) "no asn known" None
    (Asnconv.apparent { Asnconv.hostname = "as8218.example.net"; router_asn = None })

let test_learns_convention () =
  let t = learn () in
  Alcotest.(check int) "four TPs" 4 t.Asnconv.counts.Asnconv.tp;
  Alcotest.(check int) "no FPs" 0 t.Asnconv.counts.Asnconv.fp;
  Alcotest.(check int) "four distinct ASNs" 4 t.Asnconv.distinct_asns;
  Alcotest.(check bool) "usable" true (Asnconv.usable t);
  Alcotest.(check bool) "captures with as prefix" true
    (Hoiho_util.Strutil.is_subsequence {|as(\d+)|} t.Asnconv.source)

let test_extract () =
  let t = learn () in
  Alcotest.(check (option int)) "extract new hostname" (Some 15169)
    (Asnconv.extract t "as15169-acme.gw9.ams7.example.net");
  Alcotest.(check (option int)) "no asn" None
    (Asnconv.extract t "ae1.cr1.lhr1.example.net")

let test_no_apparent_no_convention () =
  let samples =
    [ sample "ae1.cr1.lhr1.example.net" 100; sample "xe-0.cr2.fra1.example.net" 200 ]
  in
  Alcotest.(check bool) "nothing to learn" true
    (Asnconv.learn ~suffix:"example.net" samples = None)

let test_not_usable_below_three_asns () =
  let samples =
    [ sample "as100-x.gw1.a1.example.net" 100; sample "as200-y.gw1.b1.example.net" 200 ]
  in
  match Asnconv.learn ~suffix:"example.net" samples with
  | Some t -> Alcotest.(check bool) "two ASNs not usable" false (Asnconv.usable t)
  | None -> Alcotest.fail "should still learn a regex"

let test_counts_math () =
  let c = { Asnconv.tp = 5; fp = 1; fn = 2 } in
  Alcotest.(check int) "atp" 2 (Asnconv.atp c);
  Alcotest.(check (float 1e-9)) "ppv" (5.0 /. 6.0) (Asnconv.ppv c)

let test_end_to_end_on_generated () =
  let ds, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ()) in
  let groups = Hoiho_itdk.Dataset.by_suffix ds in
  let usable =
    List.filter_map
      (fun (suffix, routers) ->
        let samples = Asnconv.samples_of_routers routers ~suffix in
        match Asnconv.learn ~suffix samples with
        | Some t when Asnconv.usable t -> Some t
        | _ -> None)
      groups
  in
  Alcotest.(check bool) "learned several usable ASN conventions" true
    (List.length usable >= 3);
  List.iter
    (fun (t : Asnconv.t) ->
      Alcotest.(check bool) "perfect precision on synthetic data" true
        (t.Asnconv.counts.Asnconv.fp = 0))
    usable

let suites =
  [
    ( "asnconv",
      [
        tc "apparent" test_apparent;
        tc "learns convention" test_learns_convention;
        tc "extract" test_extract;
        tc "no apparent, no convention" test_no_apparent_no_convention;
        tc "below three asns not usable" test_not_usable_below_three_asns;
        tc "counts math" test_counts_math;
        tc "end to end" test_end_to_end_on_generated;
      ] );
  ]
