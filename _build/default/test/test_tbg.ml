module Tbg = Hoiho.Tbg
module Consist = Hoiho.Consist
module Pipeline = Hoiho.Pipeline
module Router = Hoiho_itdk.Router
module City = Hoiho_geodb.City

let tc = Helpers.tc
let db = Helpers.db

(* an NC-learnable suffix plus one hostname-less router linked to a
   London router *)
let fixture () =
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let fra = Helpers.city "frankfurt" "de" in
  let sea = Helpers.city_st "seattle" "us" "wa" in
  let named id at code =
    Helpers.router ~id ~at ~vps
      ~hostnames:
        (List.init 2 (fun i -> Printf.sprintf "ae%d.cr1.%s%d.example.net" i code (i + 1)))
      ()
  in
  let silent = Helpers.router ~id:100 ~at:lon ~vps () in
  let far_silent = Helpers.router ~id:101 ~at:sea ~vps () in
  let routers =
    [ named 0 lon "lhr"; named 1 lon "lhr"; named 2 fra "fra";
      named 3 sea "sea"; silent; far_silent ]
  in
  (* silent sits next to a London router; far_silent is (wrongly) seen
     next to London too, but its own RTTs place it in Seattle *)
  let links = [ (0, 100); (0, 101); (2, 3) ] in
  let ds = Helpers.dataset ~links routers vps in
  let p = Pipeline.run ds in
  (ds, p)

let test_anchors () =
  let _, p = fixture () in
  let anchors = Tbg.anchors_of_pipeline p in
  Alcotest.(check int) "four NC-geolocated routers" 4 (List.length anchors);
  Alcotest.(check bool) "silent not an anchor" true
    (List.for_all (fun (a : Tbg.anchor) -> a.Tbg.router_id < 100) anchors)

let test_infer_neighbor () =
  let _, p = fixture () in
  let inferences, _ = Tbg.coverage_gain p in
  match
    List.find_opt (fun (i : Tbg.inference) -> i.Tbg.router_id = 100) inferences
  with
  | Some inf ->
      Alcotest.(check string) "inherits london" "london" inf.Tbg.city.City.name;
      Alcotest.(check int) "via the london anchor" 0 inf.Tbg.via
  | None -> Alcotest.fail "silent neighbor not geolocated"

let test_rtt_vetoes_bad_anchor () =
  (* far_silent's only anchored neighbor claims London, but its RTTs say
     Seattle: the inference must be suppressed *)
  let _, p = fixture () in
  let inferences, _ = Tbg.coverage_gain p in
  Alcotest.(check bool) "no inference for the far router" true
    (List.for_all (fun (i : Tbg.inference) -> i.Tbg.router_id <> 101) inferences)

let test_no_links_no_inferences () =
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let routers =
    [ Helpers.router ~id:0 ~at:lon ~vps ~hostnames:[ "ae1.cr1.lhr1.example.net" ] ();
      Helpers.router ~id:1 ~at:lon ~vps () ]
  in
  let ds = Helpers.dataset routers vps in
  let consist = Consist.create ds in
  Alcotest.(check int) "no adjacency, no inference" 0
    (List.length
       (Tbg.infer consist ds
          [ { Tbg.router_id = 0; city = lon } ]))

let test_generated_links_valid () =
  let ds, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ()) in
  Alcotest.(check bool) "links exist" true (Array.length ds.Hoiho_itdk.Dataset.links > 0);
  let max_id = Hoiho_itdk.Dataset.n_routers ds in
  Array.iter
    (fun (a, b) ->
      Alcotest.(check bool) "valid endpoints" true
        (a >= 0 && a < max_id && b >= 0 && b < max_id && a <> b))
    ds.Hoiho_itdk.Dataset.links

let test_links_roundtrip () =
  let ds, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:9 ()) in
  let ds2 = Hoiho_itdk.Io.of_string (Hoiho_itdk.Io.to_string ds) in
  Alcotest.(check int) "links preserved"
    (Array.length ds.Hoiho_itdk.Dataset.links)
    (Array.length ds2.Hoiho_itdk.Dataset.links)

let suites =
  [
    ( "tbg",
      [
        tc "anchors" test_anchors;
        tc "infer neighbor" test_infer_neighbor;
        tc "rtt vetoes bad anchor" test_rtt_vetoes_bad_anchor;
        tc "no links no inferences" test_no_links_no_inferences;
        tc "generated links valid" test_generated_links_valid;
        tc "links roundtrip" test_links_roundtrip;
      ] );
  ]
