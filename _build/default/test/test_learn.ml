module Apparent = Hoiho.Apparent
module Regen = Hoiho.Regen
module Ncsel = Hoiho.Ncsel
module Learn = Hoiho.Learn
module Learned = Hoiho.Learned
module Consist = Hoiho.Consist
module Plan = Hoiho.Plan

let tc = Helpers.tc
let db = Helpers.db

(* --- abbreviation rules --- *)

let test_abbrev_basic () =
  let t hint name expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %s" hint name)
      expected
      (Learn.abbrev_matches ~hint ~name)
  in
  t "ash" "ashburn" true;
  t "tky" "tokyo" true;
  t "mlan" "milan" true;
  t "lon" "london" true;
  t "ldn" "london" true;
  t "tor" "toronto" true;
  (* first character must anchor *)
  t "ash" "nashua" false;
  t "sh" "ashburn" false;
  (* subsequence in order *)
  t "tyk" "tokyo" false;
  t "xyz" "tokyo" false

let test_abbrev_multiword () =
  let t hint name expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %s" hint name)
      expected
      (Learn.abbrev_matches ~hint ~name)
  in
  (* the paper's rule: "nyk" ok for new york, "nwk" not *)
  t "nyk" "new york" true;
  t "nwk" "new york" false;
  t "ftc" "fort collins" true;
  t "kslr" "kuala selangor" true;
  t "new" "new york" true;
  t "nyc" "new york" false (* no c after york's y..k in order? y-o-r-k has no c *)

let test_abbrev_empty_and_degenerate () =
  Alcotest.(check bool) "empty hint" false (Learn.abbrev_matches ~hint:"" ~name:"london");
  Alcotest.(check bool) "empty name" false (Learn.abbrev_matches ~hint:"a" ~name:"");
  Alcotest.(check bool) "identity" true (Learn.abbrev_matches ~hint:"london" ~name:"london")

(* --- eligibility --- *)

let nc_of counts_tp unique =
  (* a synthetic NC record exercising eligibility thresholds *)
  {
    Ncsel.cands = [];
    counts = { Hoiho.Evalx.tp = counts_tp; fp = 1; fn = 0; unk = 0 };
    hits = [];
    unique_hints = unique;
  }

let test_eligible () =
  Alcotest.(check bool) "3 hints, high ppv" true (Learn.eligible (nc_of 10 3));
  Alcotest.(check bool) "2 hints" false (Learn.eligible (nc_of 10 2));
  Alcotest.(check bool) "low ppv" false (Learn.eligible (nc_of 0 3))

(* --- end-to-end learning --- *)

let build_nc sites =
  let ds, routers, _ = Helpers.suffix_fixture sites in
  let consist = Consist.create ds in
  let samples = Apparent.build_samples consist db ~suffix:"example.net" routers in
  let tagged = List.filter (fun (s : Apparent.sample) -> s.Apparent.tags <> []) samples in
  let cands = Regen.candidates ~suffix:"example.net" tagged in
  match Ncsel.build consist db cands samples with
  | Some nc -> (consist, samples, cands, nc)
  | None -> Alcotest.fail "no NC built"

let he_like_sites extra =
  [
    (Helpers.city "london" "gb", "lhr", 3);
    (Helpers.city "frankfurt" "de", "fra", 3);
    (Helpers.city_st "seattle" "us" "wa", "sea", 3);
    (Helpers.city_st "chicago" "us" "il", "ord", 3);
  ]
  @ extra

let test_learns_repurposed_code () =
  (* "ash" is Nashua's IATA code, used here for Ashburn (figure 8a) *)
  let consist, _, _, nc =
    build_nc (he_like_sites [ (Helpers.city_st "ashburn" "us" "va", "ash", 4) ])
  in
  let learned = Learn.learn consist db nc in
  match Learned.find learned Plan.Iata "ash" with
  | Some e ->
      Alcotest.(check string) "ashburn" "ashburn" e.Learned.city.Hoiho_geodb.City.name;
      Alcotest.(check bool) "collides with dictionary" true e.Learned.collides;
      Alcotest.(check bool) "enough congruent routers" true (e.Learned.tp >= 3)
  | None -> Alcotest.fail "ash not learned"

let test_learns_invented_code () =
  (* "tor" for Toronto: the dictionary places TOR in Torrington, WY *)
  let consist, _, _, nc =
    build_nc (he_like_sites [ (Helpers.city_st "toronto" "ca" "on", "tor", 4) ])
  in
  let learned = Learn.learn consist db nc in
  match Learned.find learned Plan.Iata "tor" with
  | Some e -> Alcotest.(check string) "toronto" "toronto" e.Learned.city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "tor not learned"

let test_congruence_requirement () =
  (* only two Ashburn routers and no country code: below the 3-router bar *)
  let consist, _, _, nc =
    build_nc (he_like_sites [ (Helpers.city_st "ashburn" "us" "va", "ash", 2) ])
  in
  let learned = Learn.learn consist db nc in
  Alcotest.(check bool) "not learned with 2 routers" true
    (Learned.find learned Plan.Iata "ash" = None)

let test_not_eligible_no_learning () =
  (* a single-site NC has one unique hint: stage 4 must not run *)
  let consist, _, _, nc =
    build_nc [ (Helpers.city "london" "gb", "lhr", 3) ]
  in
  let learned = Learn.learn consist db nc in
  Alcotest.(check int) "nothing learned" 0 (Learned.size learned)

let test_population_tiebreak () =
  (* "ash" matches Ashburn VA, Ashland VA, Ashland NJ, Ashburn GA; the
     facility+population ranking must pick Ashburn VA (figure 8a) *)
  let consist, _, _, nc =
    build_nc (he_like_sites [ (Helpers.city_st "ashburn" "us" "va", "ash", 4) ])
  in
  let learned = Learn.learn consist db nc in
  match Learned.find learned Plan.Iata "ash" with
  | Some e ->
      Alcotest.(check (option string)) "virginia" (Some "va")
        e.Learned.city.Hoiho_geodb.City.state
  | None -> Alcotest.fail "ash not learned"

let test_learns_custom_clli () =
  (* "mlanit" is not the CLLI prefix of Milan in the dictionary — NTT
     made it up (figure 8b) *)
  let clli_sites =
    [
      (Helpers.city_st "ashburn" "us" "va", "asbnva", 3);
      (Helpers.city_st "seattle" "us" "wa", "sttlwa", 3);
      (Helpers.city_st "chicago" "us" "il", "chcgil", 3);
      (Helpers.city "milan" "it", "mlanit", 4);
    ]
  in
  let consist, _, _, nc = build_nc clli_sites in
  let learned = Learn.learn consist db nc in
  match Learned.find learned Plan.Clli "mlanit" with
  | Some e ->
      Alcotest.(check string) "milan" "milan" e.Learned.city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "mlanit not learned"

let test_learns_custom_locode () =
  (* "jptky" is Tokuyama in the dictionary; the operator means Tokyo *)
  let locode_sites =
    [
      (Helpers.city "london" "gb", "gblon", 3);
      (Helpers.city "frankfurt" "de", "defra", 3);
      (Helpers.city_st "ashburn" "us" "va", "usqas", 3);
      (Helpers.city "tokyo" "jp", "jptky", 4);
    ]
  in
  let consist, _, _, nc = build_nc locode_sites in
  let learned = Learn.learn consist db nc in
  match Learned.find learned Plan.Locode "jptky" with
  | Some e ->
      Alcotest.(check string) "tokyo" "tokyo" e.Learned.city.Hoiho_geodb.City.name;
      Alcotest.(check bool) "collides with tokuyama's code" true e.Learned.collides
  | None -> Alcotest.fail "jptky not learned"

let test_min_contiguous_constant () =
  Alcotest.(check int) "paper value" 4 Learn.min_contiguous_for_city_plans

let suites =
  [
    ( "learn.abbrev",
      [
        tc "basic" test_abbrev_basic;
        tc "multiword" test_abbrev_multiword;
        tc "degenerate" test_abbrev_empty_and_degenerate;
      ] );
    ( "learn",
      [
        tc "eligibility" test_eligible;
        tc "learns repurposed code" test_learns_repurposed_code;
        tc "learns invented code" test_learns_invented_code;
        tc "congruence requirement" test_congruence_requirement;
        tc "not eligible, no learning" test_not_eligible_no_learning;
        tc "population tiebreak" test_population_tiebreak;
        tc "learns custom clli" test_learns_custom_clli;
        tc "learns custom locode" test_learns_custom_locode;
        tc "min contiguous constant" test_min_contiguous_constant;
      ] );
  ]
