module Ast = Hoiho_rx.Ast
module Parse = Hoiho_rx.Parse

let tc = Helpers.tc

let test_cls_of_string () =
  let c = Ast.cls_of_string "a-z" in
  Alcotest.(check bool) "m in a-z" true (Ast.cls_mem c 'm');
  Alcotest.(check bool) "5 not in a-z" false (Ast.cls_mem c '5');
  let neg = Ast.cls_of_string "^." in
  Alcotest.(check bool) "negated dot excludes dot" false (Ast.cls_mem neg '.');
  Alcotest.(check bool) "negated dot includes a" true (Ast.cls_mem neg 'a');
  let multi = Ast.cls_of_string "a-z\\d" in
  Alcotest.(check bool) "letters" true (Ast.cls_mem multi 'q');
  Alcotest.(check bool) "digits" true (Ast.cls_mem multi '7');
  Alcotest.(check bool) "dash excluded" false (Ast.cls_mem multi '-')

let test_cls_literal_dash () =
  (* a dash before the closing bracket is a literal *)
  let c = Ast.cls_of_string "a-" in
  Alcotest.(check bool) "a member" true (Ast.cls_mem c 'a');
  Alcotest.(check bool) "dash member" true (Ast.cls_mem c '-');
  Alcotest.(check bool) "b not member" false (Ast.cls_mem c 'b')

let test_helpers () =
  Alcotest.(check bool) "digit class" true (Ast.cls_mem Ast.digit '0');
  Alcotest.(check bool) "lower class" true (Ast.cls_mem Ast.lower 'z');
  Alcotest.(check bool) "not_char" false (Ast.cls_mem (Ast.not_char '.') '.');
  Alcotest.(check bool) "not_char other" true (Ast.cls_mem (Ast.not_char '.') 'x')

let test_count_groups () =
  Alcotest.(check int) "flat" 2
    (Ast.count_groups (Parse.parse_exn {|(a)(b)c|}));
  Alcotest.(check int) "nested and alternated" 3
    (Ast.count_groups (Parse.parse_exn {|((a)|x(b))|}));
  Alcotest.(check int) "inside rep" 1
    (Ast.count_groups (Parse.parse_exn {|(ab)+|}))

let test_escaping_roundtrip () =
  (* every special character must survive print -> parse -> print *)
  List.iter
    (fun c ->
      let ast = [ Ast.Lit c ] in
      let printed = Ast.to_string ast in
      let back = Parse.parse_exn printed in
      Alcotest.(check bool)
        (Printf.sprintf "literal %C roundtrips" c)
        true
        (Ast.equal ast back))
    [ '.'; '\\'; '('; ')'; '['; ']'; '{'; '}'; '*'; '+'; '?'; '^'; '$'; '|'; 'a'; '-' ]

let test_quantifier_printing () =
  let p s = Ast.to_string (Parse.parse_exn s) in
  Alcotest.(check string) "exact" "a{3}" (p "a{3}");
  Alcotest.(check string) "range" "a{2,5}" (p "a{2,5}");
  Alcotest.(check string) "open" "a{2,}" (p "a{2,}");
  Alcotest.(check string) "question from range" "a?" (p "a{0,1}");
  Alcotest.(check string) "digit shorthand" {|\d+|} (p {|\d+|});
  Alcotest.(check string) "possessive survives" "a++" (p "a++")

let suites =
  [
    ( "rx.ast",
      [
        tc "cls_of_string" test_cls_of_string;
        tc "literal dash" test_cls_literal_dash;
        tc "helper classes" test_helpers;
        tc "count groups" test_count_groups;
        tc "escaping roundtrip" test_escaping_roundtrip;
        tc "quantifier printing" test_quantifier_printing;
      ] );
  ]
