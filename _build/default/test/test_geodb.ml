module Iso = Hoiho_geodb.Iso
module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Synth = Hoiho_geodb.Synth
module Prng = Hoiho_util.Prng

let tc = Helpers.tc
let db = Helpers.db

(* --- Iso --- *)

let test_country_lookup () =
  Alcotest.(check (option string)) "us" (Some "united states") (Iso.country_name "us");
  Alcotest.(check (option string)) "gb" (Some "united kingdom") (Iso.country_name "gb");
  Alcotest.(check (option string)) "uk alias" (Some "united kingdom") (Iso.country_name "uk");
  Alcotest.(check (option string)) "unknown" None (Iso.country_name "zz")

let test_country_equiv () =
  Alcotest.(check bool) "uk=gb" true (Iso.country_equiv "uk" "gb");
  Alcotest.(check bool) "gb=uk" true (Iso.country_equiv "gb" "uk");
  Alcotest.(check bool) "us=us" true (Iso.country_equiv "us" "us");
  Alcotest.(check bool) "us<>ca" false (Iso.country_equiv "us" "ca");
  Alcotest.(check bool) "unknown" false (Iso.country_equiv "zz" "us")

let test_states () =
  Alcotest.(check (option string)) "va" (Some "virginia") (Iso.state_name ~cc:"us" "va");
  Alcotest.(check (option string)) "on" (Some "ontario") (Iso.state_name ~cc:"ca" "on");
  Alcotest.(check (option string)) "qld" (Some "queensland") (Iso.state_name ~cc:"au" "qld");
  Alcotest.(check (option string)) "en" (Some "england") (Iso.state_name ~cc:"gb" "en");
  Alcotest.(check (option string)) "no fr states" None (Iso.state_name ~cc:"fr" "id");
  Alcotest.(check bool) "is_any_state va" true (Iso.is_any_state "va");
  Alcotest.(check bool) "is_any_state zz" false (Iso.is_any_state "zz")

(* --- City --- *)

let test_squashed_key () =
  let ny = Helpers.city_st "new york" "us" "ny" in
  Alcotest.(check string) "squashed" "newyork" (City.squashed ny);
  Alcotest.(check string) "key" "newyork|us|ny" (City.key ny);
  Alcotest.(check bool) "same place" true (City.same_place ny ny)

let test_describe () =
  Alcotest.(check string) "with state" "Ashburn, VA, US"
    (City.describe (Helpers.city_st "ashburn" "us" "va"));
  Alcotest.(check string) "without state" "London, GB"
    (City.describe (Helpers.city "london" "gb"))

let test_clli_region () =
  Alcotest.(check string) "us state" "va" (City.clli_region (Helpers.city_st "ashburn" "us" "va"));
  Alcotest.(check string) "gb" "en" (City.clli_region (Helpers.city "london" "gb"));
  Alcotest.(check string) "nl" "nl" (City.clli_region (Helpers.city "amsterdam" "nl"))

let test_derived_codes () =
  let ams = Helpers.city "amsterdam" "nl" in
  Alcotest.(check string) "locode from iata" "ams" (City.derived_locode ams);
  Alcotest.(check string) "clli" "amstnl" (City.derived_clli ams);
  let haarlem = Helpers.city "haarlem" "nl" in
  Alcotest.(check string) "locode from name" "haa" (City.derived_locode haarlem);
  Alcotest.(check string) "clli from name" "haarnl" (City.derived_clli haarlem)

(* --- Db lookups --- *)

let test_iata_lookup () =
  (match Db.lookup_iata db "lhr" with
  | [ c ] -> Alcotest.(check string) "lhr is london" "london" c.City.name
  | _ -> Alcotest.fail "lhr should map to exactly london");
  (match Db.lookup_iata db "ash" with
  | [ c ] -> Alcotest.(check string) "ash is nashua" "nashua" c.City.name
  | _ -> Alcotest.fail "ash should map to nashua");
  Alcotest.(check (list string)) "no such code" []
    (List.map (fun c -> c.City.name) (Db.lookup_iata db "qqq"))

let test_iata_collision_codes_exist () =
  (* the paper's chance-collision codes are real airports in the dict *)
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " in dictionary") true (Db.lookup_iata db code <> []))
    [ "gig"; "eth"; "cpe"; "tor"; "tok"; "ldn" ]

let test_city_codes_multiple () =
  (* london is served by several codes *)
  let lon = Helpers.city "london" "gb" in
  Alcotest.(check bool) "several codes" true (List.length lon.City.iata >= 4);
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " resolves to london") true
        (List.exists (City.same_place lon) (Db.lookup_iata db code)))
    lon.City.iata

let test_clli_lookup () =
  (match Db.lookup_clli db "asbnva" with
  | [ c ] -> Alcotest.(check string) "asbnva" "ashburn" c.City.name
  | _ -> Alcotest.fail "asbnva should map to ashburn");
  match Db.lookup_clli db "londen" with
  | [ c ] -> Alcotest.(check string) "londen" "london" c.City.name
  | _ -> Alcotest.fail "londen should map to london"

let test_locode_lookup () =
  (match Db.lookup_locode db "usqas" with
  | [ c ] -> Alcotest.(check string) "usqas" "ashburn" c.City.name
  | _ -> Alcotest.fail "usqas should map to ashburn");
  match Db.lookup_locode db "jptky" with
  | [ c ] -> Alcotest.(check string) "jptky" "tokuyama" c.City.name
  | _ -> Alcotest.fail "jptky should map to tokuyama"

let test_city_name_ambiguity () =
  let washingtons = Db.lookup_city_name db "washington" in
  Alcotest.(check bool) "several washingtons" true (List.length washingtons >= 5);
  let ashburns = Db.lookup_city_name db "ashburn" in
  Alcotest.(check int) "two ashburns" 2 (List.length ashburns)

let test_facility_lookup () =
  (match Db.lookup_facility db "529bryant" with
  | [ (_, c) ] -> Alcotest.(check string) "palo alto" "palo alto" c.City.name
  | _ -> Alcotest.fail "529bryant should map to palo alto");
  match Db.lookup_facility db "1118thave" with
  | (_, c) :: _ -> Alcotest.(check string) "new york" "new york" c.City.name
  | [] -> Alcotest.fail "1118thave should map to new york"

let test_unique_code_tables () =
  (* each locode / clli prefix maps to exactly one city *)
  List.iter
    (fun c ->
      match Db.locode_of_city db c with
      | Some code ->
          Alcotest.(check int) ("locode " ^ code ^ " unique") 1
            (List.length (Db.lookup_locode db code))
      | None -> ())
    (Db.cities db);
  List.iter
    (fun c ->
      match Db.clli_of_city db c with
      | Some code ->
          Alcotest.(check int) ("clli " ^ code ^ " unique") 1
            (List.length (Db.lookup_clli db code))
      | None -> ())
    (Db.cities db)

let test_explicit_codes_win () =
  (* ashburn's explicit locode "qas" must not be displaced by a derived one *)
  Alcotest.(check (option string)) "ashburn locode" (Some "usqas")
    (Db.locode_of_city db (Helpers.city_st "ashburn" "us" "va"))

let test_find_city () =
  let c = Helpers.city_st "ashburn" "us" "va" in
  (match Db.find_city db ~key:(City.key c) with
  | Some c' -> Alcotest.check Helpers.check_city "found" c c'
  | None -> Alcotest.fail "find_city failed");
  Alcotest.(check bool) "missing key" true (Db.find_city db ~key:"atlantis|xx|" = None)

let test_db_size () =
  Alcotest.(check bool) "world dataset has 200+ cities" true (Db.size db >= 200)

let test_iata_cities_cover () =
  let pairs = Db.iata_cities db in
  Alcotest.(check bool) "many airports" true (List.length pairs > 200);
  Alcotest.(check bool) "contains lhr" true
    (List.exists (fun (code, _) -> code = "lhr") pairs)

(* --- Synth --- *)

let test_synth_expansion () =
  let rng = Prng.create 99 in
  let expanded = Synth.expand rng 100 (Db.cities db) in
  Alcotest.(check int) "adds exactly n" (Db.size db + 100) (List.length expanded);
  (* deterministic *)
  let rng2 = Prng.create 99 in
  let expanded2 = Synth.expand rng2 100 (Db.cities db) in
  Alcotest.(check (list string)) "deterministic"
    (List.map City.key expanded) (List.map City.key expanded2)

let test_synth_names_pronounceable () =
  let rng = Prng.create 7 in
  for _ = 1 to 50 do
    let name = Synth.town_name rng in
    Alcotest.(check bool) "length in 6..10" true
      (String.length name >= 6 && String.length name <= 10);
    Alcotest.(check bool) "lowercase alpha" true
      (String.for_all (fun c -> c >= 'a' && c <= 'z') name)
  done

let test_synth_db_builds () =
  let rng = Prng.create 5 in
  let expanded = Synth.expand rng 50 (Db.cities db) in
  let big = Db.of_cities expanded in
  Alcotest.(check int) "db size" (List.length expanded) (Db.size big)

let suites =
  [
    ( "geodb.iso",
      [
        tc "country lookup" test_country_lookup;
        tc "country equivalence" test_country_equiv;
        tc "states" test_states;
      ] );
    ( "geodb.city",
      [
        tc "squashed and key" test_squashed_key;
        tc "describe" test_describe;
        tc "clli region" test_clli_region;
        tc "derived codes" test_derived_codes;
      ] );
    ( "geodb.db",
      [
        tc "iata lookup" test_iata_lookup;
        tc "collision codes exist" test_iata_collision_codes_exist;
        tc "multi-code cities" test_city_codes_multiple;
        tc "clli lookup" test_clli_lookup;
        tc "locode lookup" test_locode_lookup;
        tc "city name ambiguity" test_city_name_ambiguity;
        tc "facility lookup" test_facility_lookup;
        tc "unique code tables" test_unique_code_tables;
        tc "explicit codes win" test_explicit_codes_win;
        tc "find city" test_find_city;
        tc "dataset size" test_db_size;
        tc "iata cities" test_iata_cities_cover;
      ] );
    ( "geodb.synth",
      [
        tc "expansion" test_synth_expansion;
        tc "names pronounceable" test_synth_names_pronounceable;
        tc "expanded db builds" test_synth_db_builds;
      ] );
  ]
