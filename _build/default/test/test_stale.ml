module Stale = Hoiho.Stale
module Consist = Hoiho.Consist
module Pipeline = Hoiho.Pipeline
module Router = Hoiho_itdk.Router

let tc = Helpers.tc
let db = Helpers.db

(* a fixture where one router carries a stale hostname: three interfaces
   say "lhr" (true) and one says "sea" (kept from a previous life) *)
let stale_fixture () =
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let fra = Helpers.city "frankfurt" "de" in
  let sea = Helpers.city_st "seattle" "us" "wa" in
  let normal id at code n =
    Helpers.router ~id ~at ~vps
      ~hostnames:(List.init n (fun i -> Printf.sprintf "ae%d.cr1.%s%d.example.net" i code (i + 1)))
      ()
  in
  let stale_router =
    Helpers.router ~id:99 ~at:lon ~vps
      ~hostnames:
        [ "ae0.cr1.lhr1.example.net"; "ae1.cr1.lhr1.example.net";
          "ae2.cr1.sea4.example.net" ]
      ()
  in
  let routers =
    [ normal 0 lon "lhr" 2; normal 1 lon "lhr" 2; normal 2 fra "fra" 3;
      normal 3 sea "sea" 3; normal 4 fra "fra" 2; stale_router ]
  in
  let ds = Helpers.dataset routers vps in
  (Consist.create ds, routers, stale_router)

let run_nc () =
  let consist, routers, stale_router = stale_fixture () in
  let result = Pipeline.run_suffix consist db ~suffix:"example.net" routers in
  match result.Pipeline.nc with
  | Some nc -> (nc, stale_router)
  | None -> Alcotest.fail "no NC for fixture"

let test_detects_the_stale_interface () =
  let nc, stale_router = run_nc () in
  let flags = Stale.detect nc in
  Alcotest.(check int) "exactly one flag" 1 (List.length flags);
  let flag = List.hd flags in
  Alcotest.(check string) "the sea hostname" "ae2.cr1.sea4.example.net"
    flag.Stale.hostname;
  Alcotest.(check int) "the right router" stale_router.Router.id
    flag.Stale.router.Router.id;
  match flag.Stale.believed with
  | Some city -> Alcotest.(check string) "believed london" "london" city.Hoiho_geodb.City.name
  | None -> Alcotest.fail "no believed location"

let test_no_false_flags_without_tp_sibling () =
  (* a router whose ONLY hostname is inconsistent gets no flag: it could
     be a provider-edge name, not staleness (figure 3b) *)
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let fra = Helpers.city "frankfurt" "de" in
  let normal id at code n =
    Helpers.router ~id ~at ~vps
      ~hostnames:(List.init n (fun i -> Printf.sprintf "ae%d.cr1.%s%d.example.net" i code (i + 1)))
      ()
  in
  let lone =
    Helpers.router ~id:50 ~at:lon ~vps ~hostnames:[ "ae9.cr1.sea2.example.net" ] ()
  in
  let routers =
    [ normal 0 lon "lhr" 3; normal 1 fra "fra" 3;
      normal 2 (Helpers.city_st "seattle" "us" "wa") "sea" 3; lone ]
  in
  let consist = Consist.create (Helpers.dataset routers vps) in
  let result = Pipeline.run_suffix consist db ~suffix:"example.net" routers in
  match result.Pipeline.nc with
  | Some nc ->
      Alcotest.(check bool) "lone mismatch not flagged" true
        (List.for_all
           (fun (f : Stale.flag) -> f.Stale.router.Router.id <> 50)
           (Stale.detect nc))
  | None -> Alcotest.fail "no NC"

let test_accuracy_math () =
  let a = { Stale.flagged = 10; true_stale = 8; actual_stale = 16 } in
  Alcotest.(check (float 1e-9)) "precision" 0.8 (Stale.precision a);
  Alcotest.(check (float 1e-9)) "recall" 0.5 (Stale.recall a);
  let zero = { Stale.flagged = 0; true_stale = 0; actual_stale = 0 } in
  Alcotest.(check (float 1e-9)) "zero precision" 0.0 (Stale.precision zero);
  Alcotest.(check (float 1e-9)) "zero recall" 0.0 (Stale.recall zero)

let test_end_to_end_precision () =
  (* on a generated dataset, flags overwhelmingly point at truly stale
     hostnames *)
  let ds, truth = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ()) in
  let p = Pipeline.run ~db:(Hoiho_netsim.Truth.db truth) ds in
  let a = Hoiho_validate.Analysis.stale_accuracy p in
  Alcotest.(check bool) "some flags" true (a.Stale.flagged > 0);
  Alcotest.(check bool) "precision >= 0.8" true (Stale.precision a >= 0.8)

let suites =
  [
    ( "stale",
      [
        tc "detects the stale interface" test_detects_the_stale_interface;
        tc "no false flags without tp sibling" test_no_false_flags_without_tp_sibling;
        tc "accuracy math" test_accuracy_math;
        tc "end to end precision" test_end_to_end_precision;
      ] );
  ]
