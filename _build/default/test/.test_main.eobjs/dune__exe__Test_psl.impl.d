test/test_psl.ml: Alcotest Helpers Hoiho_psl
