test/test_cbg.ml: Alcotest Helpers Hoiho Hoiho_geo Hoiho_geodb Hoiho_itdk Printf
