test/test_asnconv.ml: Alcotest Helpers Hoiho Hoiho_itdk Hoiho_netsim Hoiho_util List
