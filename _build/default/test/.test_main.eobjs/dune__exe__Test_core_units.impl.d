test/test_core_units.ml: Alcotest Helpers Hoiho Hoiho_itdk Hoiho_rx List
