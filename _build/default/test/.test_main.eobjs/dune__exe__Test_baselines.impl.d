test/test_baselines.ml: Alcotest Helpers Hoiho_baselines Hoiho_geodb Hoiho_itdk List
