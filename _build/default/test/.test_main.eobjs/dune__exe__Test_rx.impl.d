test/test_rx.ml: Alcotest Array Helpers Hoiho_rx List Option String
