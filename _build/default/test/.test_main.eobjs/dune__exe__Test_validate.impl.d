test/test_validate.ml: Alcotest Helpers Hoiho Hoiho_geodb Hoiho_itdk Hoiho_netsim Hoiho_psl Hoiho_validate Lazy List String
