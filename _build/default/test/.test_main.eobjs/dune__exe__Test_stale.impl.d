test/test_stale.ml: Alcotest Helpers Hoiho Hoiho_geodb Hoiho_itdk Hoiho_netsim Hoiho_validate List Printf
