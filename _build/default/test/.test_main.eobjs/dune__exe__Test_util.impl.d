test/test_util.ml: Alcotest Array Helpers Hoiho_util List Printf
