test/test_evalx.ml: Alcotest Helpers Hoiho Hoiho_geodb Hoiho_rx List
