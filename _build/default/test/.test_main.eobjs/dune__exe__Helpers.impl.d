test/helpers.ml: Alcotest Array Hoiho_geo Hoiho_geodb Hoiho_itdk List Printf String
