test/test_geo.ml: Alcotest Helpers Hoiho_geo Printf
