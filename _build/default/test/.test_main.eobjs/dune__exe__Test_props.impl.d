test/test_props.ml: Array Format Fun Hoiho Hoiho_geo Hoiho_itdk Hoiho_netsim Hoiho_rx Hoiho_util List Printf QCheck QCheck_alcotest String
