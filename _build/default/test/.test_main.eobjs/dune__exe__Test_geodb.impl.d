test/test_geodb.ml: Alcotest Helpers Hoiho_geodb Hoiho_util List String
