test/test_learn.ml: Alcotest Helpers Hoiho Hoiho_geodb List Printf
