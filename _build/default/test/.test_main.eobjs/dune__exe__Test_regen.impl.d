test/test_regen.ml: Alcotest Helpers Hoiho Hoiho_rx Hoiho_util List Printf String
