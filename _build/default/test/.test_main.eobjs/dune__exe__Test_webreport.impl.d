test/test_webreport.ml: Alcotest Array Filename Helpers Hoiho Hoiho_validate Lazy String Sys
