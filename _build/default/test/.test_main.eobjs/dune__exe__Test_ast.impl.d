test/test_ast.ml: Alcotest Helpers Hoiho_rx List Printf
