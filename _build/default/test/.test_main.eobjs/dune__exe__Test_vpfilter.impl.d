test/test_vpfilter.ml: Alcotest Array Helpers Hoiho Hoiho_geo Hoiho_itdk Hoiho_netsim Hoiho_validate List Printf
