test/test_pipeline.ml: Alcotest Helpers Hoiho Hoiho_geodb List
