test/test_apparent.ml: Alcotest Helpers Hoiho Hoiho_geodb Hoiho_itdk List
