test/test_tbg.ml: Alcotest Array Helpers Hoiho Hoiho_geodb Hoiho_itdk Hoiho_netsim List Printf
