test/test_itdk.ml: Alcotest Array Filename Helpers Hoiho_itdk Hoiho_netsim Hoiho_util List Sys
