test/test_netsim.ml: Alcotest Array Helpers Hoiho_geo Hoiho_geodb Hoiho_itdk Hoiho_netsim Hoiho_psl Hoiho_util List Printf String
