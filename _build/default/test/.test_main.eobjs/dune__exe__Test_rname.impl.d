test/test_rname.ml: Alcotest Helpers Hoiho Hoiho_itdk Hoiho_netsim List
