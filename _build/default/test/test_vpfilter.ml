module Vpfilter = Hoiho.Vpfilter
module Generate = Hoiho_netsim.Generate
module Presets = Hoiho_netsim.Presets
module Router = Hoiho_itdk.Router
module Lightrtt = Hoiho_geo.Lightrtt

let tc = Helpers.tc

let spoofed_config n =
  let base = Presets.tiny () in
  { base with Generate.n_spoofing_vps = n }

let test_clean_dataset_no_flags () =
  let ds, _ = Generate.generate (spoofed_config 0) in
  Alcotest.(check (list int)) "no honest VP flagged" [] (Vpfilter.detect ds)

let test_detects_spoofers () =
  let ds, _ = Generate.generate (spoofed_config 3) in
  let flagged = List.sort compare (Vpfilter.detect ds) in
  (* the generator spoofs the first n VP ids *)
  Alcotest.(check (list int)) "exactly the spoofers" [ 0; 1; 2 ] flagged

let test_compatibility_scores_separate () =
  let ds, _ = Generate.generate (spoofed_config 2) in
  let spoofer = Vpfilter.compatibility ds 0 in
  let honest = Vpfilter.compatibility ds 10 in
  Alcotest.(check bool)
    (Printf.sprintf "spoofer %.2f well below honest %.2f" spoofer honest)
    true
    (spoofer < 0.75 && honest > 0.9 && spoofer < honest -. 0.2)

let test_strip_restores_soundness () =
  let ds, _ = Generate.generate (spoofed_config 3) in
  let cleaned = Vpfilter.strip ds (Vpfilter.detect ds) in
  (* after stripping, every remaining RTT admits the true location *)
  Array.iter
    (fun (r : Router.t) ->
      match r.Router.truth with
      | None -> ()
      | Some t ->
          List.iter
            (fun (vp_id, rtt) ->
              let vp = Hoiho_itdk.Dataset.vp cleaned vp_id in
              Alcotest.(check bool) "sound after strip" true
                (rtt +. 1e-6
                >= Lightrtt.min_rtt_ms vp.Hoiho_itdk.Vp.coord t.Router.coord))
            r.Router.ping_rtts)
    cleaned.Hoiho_itdk.Dataset.routers

let test_filtering_recovers_accuracy () =
  (* spoofed RTTs make stage 2 reject true geohints; filtering recovers
     most of the lost true positives *)
  let ds, truth = Generate.generate (spoofed_config 4) in
  let db = Hoiho_netsim.Truth.db truth in
  let score dataset =
    let p = Hoiho.Pipeline.run ~db dataset in
    let gts =
      Hoiho_validate.Validate.ground_truth_hostnames dataset ~suffix:"gtt.net"
    in
    let s =
      Hoiho_validate.Validate.score
        (fun gt -> Hoiho.Pipeline.geolocate p gt.Hoiho_validate.Validate.hostname)
        gts
    in
    Hoiho_validate.Validate.tp_pct s
  in
  let dirty = score ds in
  let clean = score (Vpfilter.strip ds (Vpfilter.detect ds)) in
  Alcotest.(check bool)
    (Printf.sprintf "clean %.0f%% >= dirty %.0f%%" clean dirty)
    true (clean >= dirty);
  Alcotest.(check bool) "clean accuracy high" true (clean > 80.0)

let suites =
  [
    ( "vpfilter",
      [
        tc "clean dataset no flags" test_clean_dataset_no_flags;
        tc "detects spoofers" test_detects_spoofers;
        tc "compatibility separates" test_compatibility_scores_separate;
        tc "strip restores soundness" test_strip_restores_soundness;
        tc "filtering recovers accuracy" test_filtering_recovers_accuracy;
      ] );
  ]
