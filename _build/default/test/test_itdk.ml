module Router = Hoiho_itdk.Router
module Vp = Hoiho_itdk.Vp
module Dataset = Hoiho_itdk.Dataset
module Io = Hoiho_itdk.Io

let tc = Helpers.tc

let test_min_rtt () =
  let r = Router.make 1 ~ping_rtts:[ (0, 5.0); (1, 2.0); (2, 9.0) ] in
  Alcotest.(check (option (pair int (float 1e-9)))) "min ping" (Some (1, 2.0))
    (Router.min_ping_rtt r);
  Alcotest.(check (option (pair int (float 1e-9)))) "no trace" None
    (Router.min_trace_rtt r)

let test_has_flags () =
  let r = Router.make 2 in
  Alcotest.(check bool) "no hostname" false (Router.has_hostname r);
  Alcotest.(check bool) "no rtt" false (Router.has_rtt r);
  let r2 = Router.make 3 ~hostnames:[ "a.he.net" ] ~trace_rtts:[ (0, 1.0) ] in
  Alcotest.(check bool) "hostname" true (Router.has_hostname r2);
  Alcotest.(check bool) "trace counts as rtt" true (Router.has_rtt r2)

let test_suffixes () =
  let r =
    Router.make 4
      ~hostnames:
        [ "a.b.he.net"; "c.he.net"; "d.zayo.com"; "not-a-hostname"; "x.zzz" ]
  in
  Alcotest.(check (list string)) "distinct suffixes" [ "he.net"; "zayo.com" ]
    (Router.suffixes r)

let make_ds () =
  let vps = Helpers.std_vps () in
  let ash = Helpers.city_st "ashburn" "us" "va" in
  let lon = Helpers.city "london" "gb" in
  let routers =
    [
      Helpers.router ~id:0 ~at:ash ~vps ~hostnames:[ "r1.ash.he.net" ] ();
      Helpers.router ~id:1 ~at:lon ~vps ~hostnames:[ "r2.lon.he.net"; "x.lon.zayo.com" ] ();
      Helpers.router ~id:2 ~at:lon ~vps ();
    ]
  in
  Helpers.dataset routers vps

let test_dataset_counts () =
  let ds = make_ds () in
  Alcotest.(check int) "routers" 3 (Dataset.n_routers ds);
  Alcotest.(check int) "named" 2 (Dataset.n_with_hostname ds);
  Alcotest.(check int) "responsive" 3 (Dataset.n_responsive ds)

let test_by_suffix () =
  let ds = make_ds () in
  let groups = Dataset.by_suffix ds in
  Alcotest.(check int) "two suffixes" 2 (List.length groups);
  let he = List.assoc "he.net" groups in
  Alcotest.(check int) "he.net routers" 2 (List.length he);
  let zayo = List.assoc "zayo.com" groups in
  Alcotest.(check int) "zayo routers" 1 (List.length zayo)

let test_vp_lookup () =
  let ds = make_ds () in
  let vp = Dataset.vp ds 3 in
  Alcotest.(check int) "vp id" 3 vp.Vp.id;
  Alcotest.check_raises "unknown vp" Not_found (fun () -> ignore (Dataset.vp ds 99))

let test_summary_mentions_label () =
  let ds = make_ds () in
  Alcotest.(check bool) "label in summary" true
    (Hoiho_util.Strutil.has_prefix ~prefix:"test:" (Dataset.summary ds))

(* --- Io round-trips --- *)

let test_io_roundtrip_handmade () =
  let ds = make_ds () in
  let text = Io.to_string ds in
  let ds2 = Io.of_string text in
  Alcotest.(check string) "identical serialization" text (Io.to_string ds2)

let test_io_roundtrip_generated () =
  let ds, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ~seed:5 ()) in
  let text = Io.to_string ds in
  let ds2 = Io.of_string text in
  Alcotest.(check int) "router count" (Dataset.n_routers ds) (Dataset.n_routers ds2);
  Alcotest.(check int) "vp count"
    (Array.length ds.Dataset.vps)
    (Array.length ds2.Dataset.vps);
  Alcotest.(check string) "full fidelity" text (Io.to_string ds2)

let test_io_preserves_truth () =
  let ds = make_ds () in
  let ds2 = Io.of_string (Io.to_string ds) in
  let r0 = ds2.Dataset.routers.(0) in
  match r0.Router.truth with
  | Some t ->
      Alcotest.(check string) "city key" "ashburn|us|va" t.Router.city_key;
      Alcotest.(check int) "hostname hints" 1 (List.length t.Router.hostname_hints)
  | None -> Alcotest.fail "truth lost in round-trip"

let test_io_rejects_garbage () =
  Alcotest.(check bool) "malformed input raises" true
    (try
       ignore (Io.of_string "bogus record here\n");
       false
     with Failure _ -> true)

let test_io_file_roundtrip () =
  let ds = make_ds () in
  let path = Filename.temp_file "hoiho_test" ".itdk" in
  Io.save path ds;
  let ds2 = Io.load path in
  Sys.remove path;
  Alcotest.(check string) "file round-trip" (Io.to_string ds) (Io.to_string ds2)

let suites =
  [
    ( "itdk",
      [
        tc "min rtt" test_min_rtt;
        tc "has flags" test_has_flags;
        tc "suffixes" test_suffixes;
        tc "dataset counts" test_dataset_counts;
        tc "by_suffix" test_by_suffix;
        tc "vp lookup" test_vp_lookup;
        tc "summary" test_summary_mentions_label;
      ] );
    ( "itdk.io",
      [
        tc "roundtrip handmade" test_io_roundtrip_handmade;
        tc "roundtrip generated" test_io_roundtrip_generated;
        tc "preserves truth" test_io_preserves_truth;
        tc "rejects garbage" test_io_rejects_garbage;
        tc "file roundtrip" test_io_file_roundtrip;
      ] );
  ]
