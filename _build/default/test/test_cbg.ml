module Cbg = Hoiho.Cbg
module Consist = Hoiho.Consist
module Router = Hoiho_itdk.Router
module Coord = Hoiho_geo.Coord

let tc = Helpers.tc

let fixture at =
  let vps = Helpers.std_vps () in
  let r = Helpers.router ~id:0 ~at ~vps ~hostnames:[] () in
  let ds = Helpers.dataset [ r ] vps in
  (Consist.create ds, r)

let test_estimate_near_truth () =
  let ash = Helpers.city_st "ashburn" "us" "va" in
  let consist, r = fixture ash in
  match Cbg.estimate consist r with
  | Some est ->
      let d = Coord.distance_km est.Cbg.center ash.Hoiho_geodb.City.coord in
      Alcotest.(check bool)
        (Printf.sprintf "estimate within 500 km (got %.0f)" d)
        true (d < 500.0);
      Alcotest.(check bool) "error positive" true (est.Cbg.error_km > 0.0);
      Alcotest.(check int) "all constraints used" 8 est.Cbg.n_constraints
  | None -> Alcotest.fail "no estimate"

let test_estimate_needs_rtts () =
  let vps = Helpers.std_vps () in
  let silent = Router.make 1 in
  let ds = Helpers.dataset [ silent ] vps in
  let consist = Consist.create ds in
  Alcotest.(check bool) "no rtts, no estimate" true (Cbg.estimate consist silent = None)

let test_error_reflects_tightest_disc () =
  (* a router colocated with a VP has a very small feasible region *)
  let dc = Helpers.city_st "washington" "us" "dc" in
  let consist, r = fixture dc in
  match Cbg.estimate consist r with
  | Some est -> Alcotest.(check bool) "tight error" true (est.Cbg.error_km < 500.0)
  | None -> Alcotest.fail "no estimate"

let test_shortest_ping () =
  let lon = Helpers.city "london" "gb" in
  let consist, r = fixture lon in
  match Cbg.shortest_ping consist r with
  | Some vp ->
      Alcotest.(check string) "london vp wins" "london|gb|" vp.Hoiho_itdk.Vp.city_key
  | None -> Alcotest.fail "no shortest ping"

let test_shortest_ping_needs_ping () =
  let vps = Helpers.std_vps () in
  let r = Router.make 2 ~trace_rtts:[ (0, 50.0) ] in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  Alcotest.(check bool) "trace only, none" true (Cbg.shortest_ping consist r = None)

let test_feasible () =
  let lon = Helpers.city "london" "gb" in
  let tokyo = Helpers.city "tokyo" "jp" in
  let consist, r = fixture lon in
  Alcotest.(check bool) "truth feasible" true
    (Cbg.feasible consist r lon.Hoiho_geodb.City.coord);
  Alcotest.(check bool) "tokyo infeasible" false
    (Cbg.feasible consist r tokyo.Hoiho_geodb.City.coord)

let test_infeasible_fraction () =
  let lon = Helpers.city "london" "gb" in
  let tokyo = Helpers.city "tokyo" "jp" in
  let consist, r = fixture lon in
  let frac =
    Cbg.infeasible_fraction consist
      [ (r, lon.Hoiho_geodb.City.coord); (r, tokyo.Hoiho_geodb.City.coord) ]
  in
  Alcotest.(check (float 1e-9)) "half infeasible" 0.5 frac

let test_antimeridian_estimate () =
  (* a router near the date line must not produce a nonsense centroid *)
  let vps = Helpers.std_vps () in
  let auckland = Helpers.city "auckland" "nz" in
  let r = Helpers.router ~id:3 ~at:auckland ~vps () in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  match Cbg.estimate consist r with
  | Some est ->
      Alcotest.(check bool) "longitude in range" true
        (est.Cbg.center.Coord.lon >= -180.0 && est.Cbg.center.Coord.lon <= 180.0)
  | None -> Alcotest.fail "no estimate"

let suites =
  [
    ( "cbg",
      [
        tc "estimate near truth" test_estimate_near_truth;
        tc "estimate needs rtts" test_estimate_needs_rtts;
        tc "error reflects tightest disc" test_error_reflects_tightest_disc;
        tc "shortest ping" test_shortest_ping;
        tc "shortest ping needs ping" test_shortest_ping_needs_ping;
        tc "feasible" test_feasible;
        tc "infeasible fraction" test_infeasible_fraction;
        tc "antimeridian estimate" test_antimeridian_estimate;
      ] );
  ]
