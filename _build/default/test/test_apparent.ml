module Apparent = Hoiho.Apparent
module Consist = Hoiho.Consist
module Plan = Hoiho.Plan
module City = Hoiho_geodb.City

let tc = Helpers.tc
let db = Helpers.db

let tag_one ~at hostname =
  let vps = Helpers.std_vps () in
  let r = Helpers.router ~id:0 ~at ~vps ~hostnames:[ hostname ] () in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  match Apparent.tag_hostname consist db ~suffix:"example.net" r hostname with
  | Some sample -> sample
  | None -> Alcotest.failf "tag_hostname rejected %s" hostname

let find_tag sample hint ht =
  List.find_opt
    (fun (t : Apparent.tag) -> t.Apparent.hint = hint && t.Apparent.hint_type = ht)
    sample.Apparent.tags

let test_iata_tag () =
  let sample = tag_one ~at:(Helpers.city "london" "gb") "ae1.cr1.lhr15.example.net" in
  match find_tag sample "lhr" Plan.Iata with
  | Some tag ->
      Alcotest.(check bool) "london among locations" true
        (List.exists (fun c -> c.City.name = "london") tag.Apparent.locations);
      (match tag.Apparent.spans with
      | [ sp ] ->
          Alcotest.(check int) "geo label index" 2 sp.Apparent.label;
          Alcotest.(check int) "span length" 3 sp.Apparent.len
      | _ -> Alcotest.fail "expected a single span")
  | None -> Alcotest.fail "lhr not tagged"

let test_inconsistent_rejected () =
  (* a router in tokyo cannot plausibly be at heathrow *)
  let sample = tag_one ~at:(Helpers.city "tokyo" "jp") "ae1.cr1.lhr15.example.net" in
  Alcotest.(check bool) "lhr rejected" true (find_tag sample "lhr" Plan.Iata = None)

let test_cc_attachment () =
  let sample =
    tag_one ~at:(Helpers.city "london" "gb") "ae1.cr1.lhr15.uk.example.net"
  in
  match find_tag sample "lhr" Plan.Iata with
  | Some tag -> (
      match tag.Apparent.cc with
      | Some (_, code) -> Alcotest.(check string) "uk attached via GB equiv" "uk" code
      | None -> Alcotest.fail "cc not attached")
  | None -> Alcotest.fail "lhr not tagged"

let test_state_attachment () =
  let sample =
    tag_one ~at:(Helpers.city_st "ashburn" "us" "va") "ae1.asbnva2.va.example.net"
  in
  match find_tag sample "asbnva" Plan.Clli with
  | Some tag ->
      Alcotest.(check bool) "state attached" true (tag.Apparent.state <> None)
  | None -> Alcotest.fail "clli not tagged"

let test_clli_prefix_of_longer () =
  let sample =
    tag_one ~at:(Helpers.city_st "newark" "us" "nj") "x0.csi1.nwrknjnb.example.net"
  in
  match find_tag sample "nwrknj" Plan.Clli with
  | Some tag ->
      Alcotest.(check bool) "newark found" true
        (List.exists (fun c -> c.City.name = "newark") tag.Apparent.locations)
  | None -> Alcotest.fail "six-letter prefix of longer token not tagged"

let test_split_clli () =
  let sample =
    tag_one ~at:(Helpers.city_st "ashburn" "us" "va") "ae0.asbn1-va.example.net"
  in
  match find_tag sample "asbnva" Plan.Clli with
  | Some tag ->
      Alcotest.(check int) "two spans" 2 (List.length tag.Apparent.spans)
  | None -> Alcotest.fail "split CLLI not tagged"

let test_locode_tag () =
  let sample =
    tag_one ~at:(Helpers.city_st "ashburn" "us" "va") "ae1.usqas2.example.net"
  in
  Alcotest.(check bool) "locode tagged" true (find_tag sample "usqas" Plan.Locode <> None)

let test_city_name_tag () =
  let sample =
    tag_one ~at:(Helpers.city_st "ashburn" "us" "va") "ae1.gw1.ashburn2.example.net"
  in
  match find_tag sample "ashburn" Plan.CityName with
  | Some tag ->
      (* ambiguous name: both ashburns survive unless RTT rules one out;
         Ashburn GA is ~800 km away so the DC-area VP rejects it *)
      Alcotest.(check int) "one consistent location" 1 (List.length tag.Apparent.locations)
  | None -> Alcotest.fail "city name not tagged"

let test_facility_tag () =
  let sample =
    tag_one ~at:(Helpers.city_st "palo alto" "us" "ca") "po1.529bryant.example.net"
  in
  Alcotest.(check bool) "facility tagged" true
    (find_tag sample "529bryant" Plan.FacilityAddr <> None)

let test_chance_collisions_rejected () =
  (* gig/eth are IATA codes for Rio and Eilat; a Frankfurt router's RTTs
     exclude both (§4 challenge 5) *)
  let sample =
    tag_one ~at:(Helpers.city "frankfurt" "de") "gig-eth.cr1.fra2.example.net"
  in
  Alcotest.(check bool) "gig rejected" true (find_tag sample "gig" Plan.Iata = None);
  Alcotest.(check bool) "eth rejected" true (find_tag sample "eth" Plan.Iata = None);
  Alcotest.(check bool) "fra kept" true (find_tag sample "fra" Plan.Iata <> None)

let test_no_rtt_router_tags_everything () =
  (* with no RTT constraint every dictionary hit is apparent; the paper
     filters these later through NC evaluation *)
  let vps = Helpers.std_vps () in
  let r = Hoiho_itdk.Router.make 0 ~hostnames:[ "ae1.lhr1.example.net" ] in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  match Apparent.tag_hostname consist db ~suffix:"example.net" r "ae1.lhr1.example.net" with
  | Some sample ->
      Alcotest.(check bool) "lhr tagged without RTT" true
        (find_tag sample "lhr" Plan.Iata <> None)
  | None -> Alcotest.fail "not tagged"

let test_wrong_suffix_rejected () =
  let vps = Helpers.std_vps () in
  let r = Helpers.router ~id:0 ~at:(Helpers.city "london" "gb") ~vps () in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  Alcotest.(check bool) "other suffix" true
    (Apparent.tag_hostname consist db ~suffix:"example.net" r "ae1.lhr1.other.org" = None);
  Alcotest.(check bool) "bare suffix" true
    (Apparent.tag_hostname consist db ~suffix:"example.net" r "example.net" = None)

let test_build_samples () =
  let ds, routers, _ = Helpers.suffix_fixture [ (Helpers.city "london" "gb", "lhr", 2) ] in
  let consist = Consist.create ds in
  let samples = Apparent.build_samples consist db ~suffix:"example.net" routers in
  Alcotest.(check int) "one sample per hostname" 4 (List.length samples);
  List.iter
    (fun (s : Apparent.sample) ->
      Alcotest.(check bool) "tagged" true (s.Apparent.tags <> []))
    samples

let suites =
  [
    ( "apparent",
      [
        tc "iata tag" test_iata_tag;
        tc "inconsistent rejected" test_inconsistent_rejected;
        tc "cc attachment (uk=gb)" test_cc_attachment;
        tc "state attachment" test_state_attachment;
        tc "clli prefix of longer" test_clli_prefix_of_longer;
        tc "split clli" test_split_clli;
        tc "locode" test_locode_tag;
        tc "city name" test_city_name_tag;
        tc "facility" test_facility_tag;
        tc "chance collisions rejected" test_chance_collisions_rejected;
        tc "no rtt tags everything" test_no_rtt_router_tags_everything;
        tc "wrong suffix rejected" test_wrong_suffix_rejected;
        tc "build samples" test_build_samples;
      ] );
  ]
