(* Unit tests for the smaller core modules: decode plans, candidate
   construction, RTT-consistency context, dictionary access, and the
   phase-4/stage-5 selection rules. *)

module Plan = Hoiho.Plan
module Cand = Hoiho.Cand
module Consist = Hoiho.Consist
module Dicts = Hoiho.Dicts
module Ncsel = Hoiho.Ncsel
module Evalx = Hoiho.Evalx
module Apparent = Hoiho.Apparent
module Regen = Hoiho.Regen
module Ast = Hoiho_rx.Ast
module Router = Hoiho_itdk.Router

let tc = Helpers.tc
let db = Helpers.db

(* --- Plan --- *)

let test_plan_decode_simple () =
  let plan = [ Plan.Hint Plan.Iata; Plan.Cc ] in
  match Plan.decode plan [| Some "lhr"; Some "uk" |] with
  | Some ex ->
      Alcotest.(check string) "hint" "lhr" ex.Plan.hint;
      Alcotest.(check (option string)) "cc" (Some "uk") ex.Plan.cc;
      Alcotest.(check (option string)) "no state" None ex.Plan.state
  | None -> Alcotest.fail "decode failed"

let test_plan_decode_split_clli () =
  let plan = [ Plan.ClliA; Plan.ClliB; Plan.State ] in
  match Plan.decode plan [| Some "asbn"; Some "va"; Some "va" |] with
  | Some ex ->
      Alcotest.(check string) "concatenated" "asbnva" ex.Plan.hint;
      Alcotest.(check bool) "clli type" true (ex.Plan.hint_type = Plan.Clli)
  | None -> Alcotest.fail "decode failed"

let test_plan_decode_missing_group () =
  let plan = [ Plan.Hint Plan.Iata; Plan.Cc ] in
  Alcotest.(check bool) "unparticipating group" true
    (Plan.decode plan [| Some "lhr"; None |] = None);
  Alcotest.(check bool) "arity mismatch" true (Plan.decode plan [| Some "lhr" |] = None)

let test_plan_hint_type_of () =
  Alcotest.(check bool) "hint" true
    (Plan.hint_type_of [ Plan.Cc; Plan.Hint Plan.Locode ] = Some Plan.Locode);
  Alcotest.(check bool) "split clli" true
    (Plan.hint_type_of [ Plan.ClliA; Plan.ClliB ] = Some Plan.Clli);
  Alcotest.(check bool) "no hint" true (Plan.hint_type_of [ Plan.Cc ] = None)

let test_capture_len () =
  Alcotest.(check (option int)) "iata" (Some 3) (Plan.capture_len Plan.Iata);
  Alcotest.(check (option int)) "clli" (Some 6) (Plan.capture_len Plan.Clli);
  Alcotest.(check (option int)) "city" None (Plan.capture_len Plan.CityName)

(* --- Cand --- *)

let iata_body =
  [
    Cand.Fill Cand.Flabel; Cand.Lit ".";
    Cand.Cap (Plan.Hint Plan.Iata, [ Ast.Rep (Ast.Cls Ast.lower, 3, Some 3, Ast.Greedy) ]);
    Cand.Node (Ast.Rep (Ast.Cls Ast.digit, 1, None, Ast.Greedy));
  ]

let test_cand_build () =
  let c = Cand.build ~suffix:"example.net" iata_body in
  Alcotest.(check string) "source" {|^[^.]+\.([a-z]{3})\d+\.example\.net$|} c.Cand.source;
  Alcotest.(check int) "one-element plan" 1 (List.length c.Cand.plan);
  Alcotest.(check bool) "regex matches" true
    (Hoiho_rx.Engine.matches c.Cand.regex "cr1.lhr15.example.net")

let test_cand_analysis_regex () =
  let c = Cand.build ~suffix:"example.net" iata_body in
  let regex, groups = Cand.analysis_regex c in
  Alcotest.(check int) "two groups: filler + capture" 2 (List.length groups);
  (match groups with
  | [ `Fill 0; `Plan (Plan.Hint Plan.Iata) ] -> ()
  | _ -> Alcotest.fail "unexpected group roles");
  match Hoiho_rx.Engine.exec regex "cr1.lhr15.example.net" with
  | Some [| Some filler; Some hint |] ->
      Alcotest.(check string) "filler text" "cr1" filler;
      Alcotest.(check string) "hint text" "lhr" hint
  | _ -> Alcotest.fail "analysis regex did not match"

let test_cand_dedup () =
  let a = Cand.build ~suffix:"example.net" iata_body in
  let b = Cand.build ~suffix:"example.net" iata_body in
  let c =
    Cand.build ~suffix:"example.net" (Cand.Fill Cand.Flead :: Cand.Lit "." :: iata_body)
  in
  Alcotest.(check int) "duplicates removed" 2 (List.length (Cand.dedup [ a; b; c ]));
  Alcotest.(check bool) "structural equality" true (Cand.equal_structure a b)

(* --- Consist --- *)

let test_consist_prefers_ping () =
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let tokyo = Helpers.city "tokyo" "jp" in
  (* ping RTTs pin the router near London; a huge traceroute RTT to the
     same VP must not loosen the test *)
  let r =
    Router.make 0
      ~ping_rtts:[ (3, 1.5) ] (* VP 3 = London *)
      ~trace_rtts:[ (3, 400.0) ]
  in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  Alcotest.(check bool) "london ok" true (Consist.city_consistent consist r lon);
  Alcotest.(check bool) "tokyo excluded by ping" false
    (Consist.city_consistent consist r tokyo)

let test_consist_trace_fallback () =
  let vps = Helpers.std_vps () in
  let tokyo = Helpers.city "tokyo" "jp" in
  let r = Router.make 1 ~trace_rtts:[ (3, 400.0) ] in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  (* 400 ms from London admits nearly anywhere *)
  Alcotest.(check bool) "trace admits tokyo" true
    (Consist.city_consistent consist r tokyo)

let test_consist_vacuous_without_rtt () =
  let vps = Helpers.std_vps () in
  let r = Router.make 2 in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  Alcotest.(check bool) "no constraint, consistent" true
    (Consist.city_consistent consist r (Helpers.city "tokyo" "jp"))

(* --- Dicts --- *)

let test_dicts_length_gates () =
  Alcotest.(check bool) "iata wrong length" true (Dicts.lookup db Plan.Iata "lond" = []);
  Alcotest.(check bool) "locode wrong length" true (Dicts.lookup db Plan.Locode "gb" = []);
  Alcotest.(check bool) "clli 12 letters" true
    (Dicts.lookup db Plan.Clli "abcdefghijkl" = []);
  Alcotest.(check bool) "clli 8 letters uses prefix" true
    (Dicts.lookup db Plan.Clli "asbnvaxx" <> [])

let test_dicts_region_match () =
  let lon = Helpers.city "london" "gb" in
  Alcotest.(check bool) "uk matches gb city" true (Dicts.cc_matches lon "uk");
  Alcotest.(check bool) "fr does not" false (Dicts.cc_matches lon "fr");
  let ash = Helpers.city_st "ashburn" "us" "va" in
  Alcotest.(check bool) "state" true (Dicts.state_matches ash "va");
  Alcotest.(check bool) "region either" true (Dicts.region_matches ash "us")

(* --- Ncsel --- *)

let samples_for sites =
  let ds, routers, _ = Helpers.suffix_fixture sites in
  let consist = Consist.create ds in
  (consist, Apparent.build_samples consist db ~suffix:"example.net" routers)

let test_ncsel_prefers_fewer_regexes () =
  (* one format: the selected NC should be a single regex even though
     many candidates exist *)
  let consist, samples =
    samples_for
      [ (Helpers.city "london" "gb", "lhr", 3); (Helpers.city "frankfurt" "de", "fra", 3);
        (Helpers.city_st "seattle" "us" "wa", "sea", 3) ]
  in
  let tagged = List.filter (fun (s : Apparent.sample) -> s.Apparent.tags <> []) samples in
  let cands = Regen.candidates ~suffix:"example.net" tagged in
  match Ncsel.build consist db cands samples with
  | Some nc -> Alcotest.(check int) "single regex" 1 (List.length nc.Ncsel.cands)
  | None -> Alcotest.fail "no NC"

let test_ncsel_eval_order () =
  (* eval_nc must attribute each sample to the first matching regex *)
  let consist, samples = samples_for [ (Helpers.city "london" "gb", "lhr", 3) ] in
  let narrow = Cand.build ~suffix:"example.net" iata_body in
  let wide =
    Cand.build ~suffix:"example.net"
      [ Cand.Fill Cand.Flead; Cand.Lit ".";
        Cand.Cap (Plan.Hint Plan.Iata, [ Ast.Rep (Ast.Cls Ast.lower, 3, Some 3, Ast.Greedy) ]);
        Cand.Node (Ast.Rep (Ast.Cls Ast.digit, 1, None, Ast.Greedy)) ]
  in
  let nc = Ncsel.eval_nc consist db [ narrow; wide ] samples in
  Alcotest.(check int) "all samples matched" (List.length samples)
    (nc.Ncsel.counts.Evalx.tp)

let test_classify_thresholds () =
  let mk tp fp unique =
    {
      Ncsel.cands = [];
      counts = { Evalx.tp; fp; fn = 0; unk = 0 };
      hits = [];
      unique_hints = unique;
    }
  in
  Alcotest.(check bool) "good" true (Ncsel.classify (mk 90 5 5) = Ncsel.Good);
  Alcotest.(check bool) "promising" true (Ncsel.classify (mk 85 15 5) = Ncsel.Promising);
  Alcotest.(check bool) "poor ppv" true (Ncsel.classify (mk 70 30 5) = Ncsel.Poor);
  Alcotest.(check bool) "poor unique" true (Ncsel.classify (mk 90 0 2) = Ncsel.Poor);
  Alcotest.(check bool) "usable good" true (Ncsel.usable (mk 90 5 5));
  Alcotest.(check bool) "not usable poor" false (Ncsel.usable (mk 90 0 2))

let suites =
  [
    ( "core.plan",
      [
        tc "decode simple" test_plan_decode_simple;
        tc "decode split clli" test_plan_decode_split_clli;
        tc "decode missing group" test_plan_decode_missing_group;
        tc "hint_type_of" test_plan_hint_type_of;
        tc "capture lengths" test_capture_len;
      ] );
    ( "core.cand",
      [
        tc "build" test_cand_build;
        tc "analysis regex" test_cand_analysis_regex;
        tc "dedup" test_cand_dedup;
      ] );
    ( "core.consist",
      [
        tc "prefers ping" test_consist_prefers_ping;
        tc "trace fallback" test_consist_trace_fallback;
        tc "vacuous without rtt" test_consist_vacuous_without_rtt;
      ] );
    ( "core.dicts",
      [
        tc "length gates" test_dicts_length_gates;
        tc "region matching" test_dicts_region_match;
      ] );
    ( "core.ncsel",
      [
        tc "prefers fewer regexes" test_ncsel_prefers_fewer_regexes;
        tc "eval order" test_ncsel_eval_order;
        tc "classify thresholds" test_classify_thresholds;
      ] );
  ]
