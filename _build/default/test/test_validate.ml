module Validate = Hoiho_validate.Validate
module Analysis = Hoiho_validate.Analysis
module Pipeline = Hoiho.Pipeline
module Generate = Hoiho_netsim.Generate
module Presets = Hoiho_netsim.Presets
module City = Hoiho_geodb.City

let tc = Helpers.tc

(* one shared tiny run for the heavier checks *)
let shared = lazy (
  let ds, truth = Generate.generate (Presets.tiny ()) in
  let pipeline = Pipeline.run ds in
  (ds, truth, pipeline))

let test_scores_math () =
  let s = { Validate.tp = 6; fp = 2; fn = 2 } in
  Alcotest.(check int) "total" 10 (Validate.total s);
  Alcotest.(check (float 1e-9)) "tp pct" 60.0 (Validate.tp_pct s);
  Alcotest.(check (float 1e-9)) "fp pct" 20.0 (Validate.fp_pct s);
  Alcotest.(check (float 1e-9)) "fn pct" 20.0 (Validate.fn_pct s);
  Alcotest.(check (float 1e-9)) "ppv" 0.75 (Validate.ppv s)

let test_correct_threshold () =
  let lon = Helpers.city "london" "gb" in
  let fra = Helpers.city "frankfurt" "de" in
  Alcotest.(check bool) "same city" true
    (Validate.correct lon lon.City.coord);
  Alcotest.(check bool) "640 km away" false
    (Validate.correct lon fra.City.coord)

let test_ground_truth_hostnames () =
  let ds, _, _ = Lazy.force shared in
  let gts = Validate.ground_truth_hostnames ds ~suffix:"he.net" in
  Alcotest.(check bool) "nonempty" true (gts <> []);
  List.iter
    (fun (gt : Validate.gt_hostname) ->
      Alcotest.(check bool) "under suffix" true
        (Hoiho_psl.Psl.registered_suffix gt.Validate.hostname = Some "he.net");
      Alcotest.(check bool) "code recorded" true (gt.Validate.code <> ""))
    gts

let test_compare_methods_shape () =
  let _, truth, pipeline = Lazy.force shared in
  let suffixes = Hoiho_netsim.Oper.validation_suffixes in
  let cmps = Validate.compare_methods pipeline truth ~suffixes in
  Alcotest.(check int) "all suffixes" (List.length suffixes) (List.length cmps);
  let avg get =
    List.fold_left (fun a (c : Validate.comparison) -> a +. Validate.tp_pct (get c)) 0.0 cmps
    /. float_of_int (List.length cmps)
  in
  let hoiho = avg (fun c -> c.Validate.hoiho) in
  let hloc = avg (fun c -> c.Validate.hloc) in
  let drop = avg (fun c -> c.Validate.drop) in
  (* the paper's headline ordering must reproduce *)
  Alcotest.(check bool) "hoiho beats hloc" true (hoiho > hloc);
  Alcotest.(check bool) "hoiho beats drop" true (hoiho > drop);
  Alcotest.(check bool) "hoiho high absolute" true (hoiho > 85.0)

let test_undns_high_ppv () =
  let _, truth, pipeline = Lazy.force shared in
  let suffixes = Hoiho_netsim.Oper.validation_suffixes in
  let cmps = Validate.compare_methods pipeline truth ~suffixes in
  let agg get =
    List.fold_left
      (fun (tp, fp) (c : Validate.comparison) ->
        let s = get c in
        (tp + s.Validate.tp, fp + s.Validate.fp))
      (0, 0) cmps
  in
  let ppv (tp, fp) = if tp + fp = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fp) in
  Alcotest.(check bool) "undns ppv >= 95%" true (ppv (agg (fun c -> c.Validate.undns)) >= 0.95);
  (* and it misses far more than hoiho *)
  let fn get =
    List.fold_left (fun a (c : Validate.comparison) -> a + (get c).Validate.fn) 0 cmps
  in
  Alcotest.(check bool) "undns misses more" true
    (fn (fun c -> c.Validate.undns) > fn (fun c -> c.Validate.hoiho))

let test_check_learned () =
  let _, truth, pipeline = Lazy.force shared in
  let suffixes = Hoiho_netsim.Oper.validation_suffixes in
  let checks = Validate.check_learned pipeline truth ~suffixes in
  Alcotest.(check bool) "learned several" true (List.length checks >= 8);
  let ok = List.length (List.filter (fun (c : Validate.learned_check) -> c.Validate.ok) checks) in
  let frac = float_of_int ok /. float_of_int (List.length checks) in
  (* the paper reports 78.6%; well above half and below perfection *)
  Alcotest.(check bool) "mostly but not all correct" true (frac >= 0.6 && frac <= 1.0)

(* --- Analysis --- *)

let test_coverage () =
  let ds, _, pipeline = Lazy.force shared in
  let c = Analysis.coverage pipeline in
  Alcotest.(check int) "total" (Hoiho_itdk.Dataset.n_routers ds) c.Analysis.total;
  Alcotest.(check bool) "apparent <= named" true (c.Analysis.with_apparent <= c.Analysis.with_hostname);
  Alcotest.(check bool) "geolocated <= apparent" true (c.Analysis.geolocated <= c.Analysis.with_apparent);
  Alcotest.(check bool) "geolocated is most of apparent" true
    (float_of_int c.Analysis.geolocated /. float_of_int c.Analysis.with_apparent > 0.6)

let test_classifications () =
  let _, _, pipeline = Lazy.force shared in
  let k = Analysis.classifications pipeline in
  Alcotest.(check bool) "good NCs exist" true (k.Analysis.good > 0);
  Alcotest.(check bool) "poor NCs exist" true (k.Analysis.poor > 0)

let test_table4 () =
  let _, _, pipeline = Lazy.force shared in
  let rows, _mixed = Analysis.table4 pipeline in
  Alcotest.(check bool) "rows exist" true (rows <> []);
  let total =
    List.fold_left (fun a (r : Analysis.type_breakdown) -> a + r.Analysis.n_good + r.Analysis.n_promising) 0 rows
  in
  let k = Analysis.classifications pipeline in
  Alcotest.(check int) "rows account for all usable NCs" (k.Analysis.good + k.Analysis.promising) total

let test_fig5 () =
  let ds, _, _ = Lazy.force shared in
  let a = Analysis.fig5a ds in
  Alcotest.(check bool) "cdf monotone" true
    (List.for_all2
       (fun (_, p1, t1) (_, p2, t2) -> p2 >= p1 && t2 >= t1)
       (List.filteri (fun i _ -> i < List.length a - 1) a)
       (List.tl a));
  (* ping constrains more tightly than traceroute at every threshold *)
  List.iter (fun (_, ping, trace) ->
      Alcotest.(check bool) "ping cdf >= trace cdf" true (ping >= trace -. 1e-9)) a;
  let b = Analysis.fig5b ds in
  Alcotest.(check bool) "fig5b rows" true (b <> [])

let test_fig10_fig11 () =
  let _, truth, pipeline = Lazy.force shared in
  let a = Analysis.fig10a pipeline in
  Alcotest.(check bool) "proximities finite" true
    (List.for_all (fun x -> x >= 0.0 && x < 1000.0) a);
  let b = Analysis.fig10b pipeline in
  (* learned hints that collide with airport codes are mostly far from
     the airport (figure 10b: 93.5% beyond 1000 km) *)
  Alcotest.(check bool) "collisions are distant" true
    (List.exists (fun d -> d > 1000.0) b);
  let entries = Analysis.fig11 pipeline truth ~suffixes:Hoiho_netsim.Oper.validation_suffixes in
  Alcotest.(check bool) "fig11 entries" true (entries <> []);
  Alcotest.(check bool) "accuracy in [0,1]" true
    (let acc = Analysis.accuracy_at 10.0 entries in
     acc >= 0.0 && acc <= 1.0)

let test_table5 () =
  let _, _, pipeline = Lazy.force shared in
  let rows = Analysis.table5 ~top:10 pipeline in
  Alcotest.(check bool) "has learned 3-letter hints" true (rows <> []);
  List.iter
    (fun (r : Analysis.learned_freq) ->
      Alcotest.(check int) "3 letters" 3 (String.length r.Analysis.hint))
    rows

let test_ablation_shape () =
  let ds, _, _ = Lazy.force shared in
  let a = Analysis.ablation ds ~suffixes:Hoiho_netsim.Oper.validation_suffixes in
  (* learning geohints must improve correct geolocations (§6.1: 94.0% vs 82.4%) *)
  Alcotest.(check bool) "learning helps" true
    (a.Analysis.with_learning.Validate.tp > a.Analysis.without_learning.Validate.tp)

let suites =
  [
    ( "validate",
      [
        tc "scores math" test_scores_math;
        tc "correct threshold" test_correct_threshold;
        tc "ground truth hostnames" test_ground_truth_hostnames;
        tc "compare methods shape" test_compare_methods_shape;
        tc "undns high ppv" test_undns_high_ppv;
        tc "check learned" test_check_learned;
      ] );
    ( "analysis",
      [
        tc "coverage" test_coverage;
        tc "classifications" test_classifications;
        tc "table4" test_table4;
        tc "fig5" test_fig5;
        tc "fig10/fig11" test_fig10_fig11;
        tc "table5" test_table5;
        tc "ablation" test_ablation_shape;
      ] );
  ]
