module Conv = Hoiho_netsim.Conv
module Codes = Hoiho_netsim.Codes
module Oper = Hoiho_netsim.Oper
module Generate = Hoiho_netsim.Generate
module Presets = Hoiho_netsim.Presets
module Truth = Hoiho_netsim.Truth
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Vp = Hoiho_itdk.Vp
module Lightrtt = Hoiho_geo.Lightrtt
module Prng = Hoiho_util.Prng

let tc = Helpers.tc

(* --- Codes --- *)

let test_abbrev3 () =
  Alcotest.(check string) "tokyo" "tky" (Codes.abbrev3 "tokyo");
  Alcotest.(check string) "ashburn" "ash" (Codes.abbrev3 "ashburn");
  Alcotest.(check string) "short pads" "abx" (Codes.abbrev3 "ab")

let test_abbrev4 () =
  Alcotest.(check string) "milan" "miln" (Codes.abbrev4 "milan");
  Alcotest.(check int) "always 4" 4 (String.length (Codes.abbrev4 "manchester"))

let test_prefix3 () =
  Alcotest.(check string) "toronto" "tor" (Codes.prefix3 "toronto");
  Alcotest.(check string) "multiword" "new" (Codes.prefix3 "new york")

let test_city_abbrev () =
  Alcotest.(check string) "fort collins" "ftcollins" (Codes.city_abbrev "fort collins");
  Alcotest.(check string) "single word" "london" (Codes.city_abbrev "london")

let test_code_for_iata_standard () =
  let rng = Prng.create 1 in
  let lhr = Helpers.city "london" "gb" in
  match Codes.code_for rng Helpers.db Conv.Iata ~p_dev:0.0 lhr with
  | Some (code, custom) ->
      Alcotest.(check string) "primary code" "lon" code;
      Alcotest.(check bool) "not custom" false custom
  | None -> Alcotest.fail "no code"

let test_code_for_iata_custom_when_no_airport () =
  let rng = Prng.create 2 in
  let ash = Helpers.city_st "ashburn" "us" "va" in
  match Codes.code_for rng Helpers.db Conv.Iata ~p_dev:0.0 ash with
  | Some (code, custom) ->
      Alcotest.(check bool) "custom" true custom;
      Alcotest.(check string) "ash abbreviation" "ash" code
  | None -> Alcotest.fail "no code"

let test_code_for_facility_requires_facility () =
  let rng = Prng.create 3 in
  let haarlem = Helpers.city "haarlem" "nl" in
  Alcotest.(check bool) "no facility, no code" true
    (Codes.code_for rng Helpers.db Conv.FacilityAddr ~p_dev:0.0 haarlem = None)

(* --- Conv --- *)

let test_render_substitutes () =
  let rng = Prng.create 4 in
  let template = [ [ Conv.Iface ]; [ Conv.Role "cr" ]; [ Conv.GeoDig ]; [ Conv.Cc ] ] in
  let h = Conv.render rng template ~geo:"lhr" ~cc:"uk" ~state:None "x.net" in
  Alcotest.(check bool) "contains geo" true
    (Hoiho_util.Strutil.is_subsequence ".lhr" h);
  Alcotest.(check bool) "ends with suffix" true
    (Hoiho_util.Strutil.has_suffix ~suffix:".uk.x.net" h)

let test_render_split_clli () =
  let rng = Prng.create 5 in
  let template = [ [ Conv.GeoSplitClli ] ] in
  let h = Conv.render rng template ~geo:"asbnva" ~cc:"us" ~state:None "w.net" in
  Alcotest.(check string) "split with dash" "asbn-va.w.net" h

let test_geo_label_kinds () =
  let has_geo, has_cc, has_state =
    Conv.geo_label_kinds [ [ Conv.Iface ]; [ Conv.GeoDig ]; [ Conv.State ] ]
  in
  Alcotest.(check (triple bool bool bool)) "kinds" (true, false, true)
    (has_geo, has_cc, has_state)

(* --- Oper --- *)

let test_random_geo_shapes () =
  let rng = Prng.create 6 in
  let op = Oper.random_geo rng Helpers.db ~kind:Oper.GeoConsistent in
  Alcotest.(check bool) "has sites" true (List.length op.Oper.sites >= 3);
  Alcotest.(check bool) "has geo kind" true (op.Oper.conv.Conv.hint_kind <> None);
  let small = Oper.random_geo rng Helpers.db ~kind:Oper.GeoSmall in
  Alcotest.(check bool) "small has <=2 sites" true (List.length small.Oper.sites <= 2)

let test_codebook_and_customs () =
  let rng = Prng.create 7 in
  let op = Oper.random_geo rng Helpers.db ~kind:Oper.GeoConsistent in
  let cb = Oper.codebook op in
  Alcotest.(check bool) "codebook covers sites" true
    (List.length cb = List.length op.Oper.sites);
  List.iter
    (fun (code, _) -> Alcotest.(check bool) "codes non-empty" true (code <> ""))
    cb;
  List.iter
    (fun entry ->
      Alcotest.(check bool) "customs are in codebook" true (List.mem entry cb))
    (Oper.customs op)

let test_validation_operators () =
  let rng = Prng.create 8 in
  let ops = Oper.validation rng Helpers.db in
  Alcotest.(check int) "twelve" 12 (List.length ops);
  Alcotest.(check (list string)) "suffixes" Oper.validation_suffixes
    (List.sort compare (List.map (fun (o : Oper.t) -> o.Oper.suffix) ops));
  let he = List.find (fun (o : Oper.t) -> o.Oper.suffix = "he.net") ops in
  Alcotest.(check bool) "he.net uses ash for ashburn" true
    (List.exists
       (fun (s : Oper.site) -> s.Oper.code = "ash" && s.Oper.city.Hoiho_geodb.City.name = "ashburn")
       he.Oper.sites);
  let nys = List.find (fun (o : Oper.t) -> o.Oper.suffix = "nysernet.net") ops in
  Alcotest.(check (float 1e-9)) "nysernet unpingable" 0.0 nys.Oper.p_responsive

let test_render_router_stable_names () =
  let rng = Prng.create 11 in
  let template = [ [ Conv.Iface ]; [ Conv.Role "core" ]; [ Conv.GeoDig ] ] in
  let hostnames =
    Conv.render_router rng template ~geo:"ash" ~cc:"us" ~state:(Some "va")
      ~count:4 "he.net"
  in
  Alcotest.(check int) "four interfaces" 4 (List.length hostnames);
  let name_part h =
    match String.index_opt h '.' with
    | Some i -> String.sub h (i + 1) (String.length h - i - 1)
    | None -> h
  in
  let names = List.sort_uniq compare (List.map name_part hostnames) in
  Alcotest.(check int) "stable router name" 1 (List.length names);
  Alcotest.(check bool) "interfaces differ" true
    (List.length (List.sort_uniq compare hostnames) > 1)

let test_compound_operator () =
  let rng = Prng.create 12 in
  let op = Oper.random_compound rng Helpers.db in
  Alcotest.(check bool) "sites in small towns" true
    (List.for_all
       (fun (s : Oper.site) -> s.Oper.city.Hoiho_geodb.City.population < 500_000)
       op.Oper.sites);
  List.iter
    (fun (s : Oper.site) ->
      Alcotest.(check int) "three-letter ids" 3 (String.length s.Oper.code);
      Alcotest.(check bool) "custom" true s.Oper.custom)
    op.Oper.sites

let test_multikind_operator () =
  let rng = Prng.create 13 in
  let op = Oper.random_multikind rng Helpers.db in
  Alcotest.(check int) "two templates" 2 (List.length op.Oper.conv.Conv.templates);
  Alcotest.(check bool) "sites pinned to templates" true
    (List.for_all (fun (s : Oper.site) -> s.Oper.tpl <> None) op.Oper.sites);
  let tpls = List.sort_uniq compare (List.filter_map (fun (s : Oper.site) -> s.Oper.tpl) op.Oper.sites) in
  Alcotest.(check (list int)) "both templates used" [ 0; 1 ] tpls

(* --- Generate --- *)

let tiny () = Generate.generate (Presets.tiny ())

let test_generation_deterministic () =
  let ds1, _ = tiny () and ds2, _ = tiny () in
  Alcotest.(check string) "same output" (Hoiho_itdk.Io.to_string ds1)
    (Hoiho_itdk.Io.to_string ds2)

let test_seed_changes_output () =
  let ds1, _ = Generate.generate (Presets.tiny ~seed:1 ()) in
  let ds2, _ = Generate.generate (Presets.tiny ~seed:2 ()) in
  Alcotest.(check bool) "different" false
    (Hoiho_itdk.Io.to_string ds1 = Hoiho_itdk.Io.to_string ds2)

let test_vps_distinct_cities () =
  let ds, _ = tiny () in
  let keys = Array.to_list ds.Dataset.vps |> List.map (fun (v : Vp.t) -> v.Vp.city_key) in
  Alcotest.(check int) "distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

(* THE soundness invariant: every simulated RTT admits the true location *)
let test_rtt_soundness () =
  let ds, _ = tiny () in
  let vp id = Array.find_opt (fun (v : Vp.t) -> v.Vp.id = id) ds.Dataset.vps in
  Array.iter
    (fun (r : Router.t) ->
      match r.Router.truth with
      | None -> ()
      | Some t ->
          List.iter
            (fun (vp_id, rtt) ->
              match vp vp_id with
              | Some v ->
                  Alcotest.(check bool) "ping sound" true
                    (rtt +. 1e-6 >= Lightrtt.min_rtt_ms v.Vp.coord t.Router.coord)
              | None -> Alcotest.fail "dangling vp id")
            (r.Router.ping_rtts @ r.Router.trace_rtts))
    ds.Dataset.routers

let test_trace_rtts_exist () =
  let ds, _ = tiny () in
  Array.iter
    (fun (r : Router.t) ->
      Alcotest.(check bool) "every router traceroute-observed" true
        (r.Router.trace_rtts <> []))
    ds.Dataset.routers

let test_hostname_fraction () =
  let ds, _ = tiny () in
  let frac =
    float_of_int (Dataset.n_with_hostname ds) /. float_of_int (Dataset.n_routers ds)
  in
  Alcotest.(check bool) "near target 0.7" true (abs_float (frac -. 0.7) < 0.05)

let test_hostnames_under_operator_suffixes () =
  let ds, truth = tiny () in
  let suffixes =
    List.map (fun (o : Oper.t) -> o.Oper.suffix) (Truth.ops truth)
  in
  Array.iter
    (fun (r : Router.t) ->
      List.iter
        (fun h ->
          match Hoiho_psl.Psl.registered_suffix h with
          | Some s ->
              Alcotest.(check bool) (h ^ " under a known suffix") true
                (List.mem s suffixes)
          | None -> Alcotest.failf "hostname %s has no suffix" h)
        r.Router.hostnames)
    ds.Dataset.routers

let test_truth_lookup () =
  let _, truth = tiny () in
  Alcotest.(check bool) "he.net present" true (Truth.find truth "he.net" <> None);
  Alcotest.(check (option string)) "ash means ashburn" (Some "ashburn|us|va")
    (Truth.code_city truth ~suffix:"he.net" "ash");
  Alcotest.(check bool) "ash is custom" true (Truth.is_custom truth ~suffix:"he.net" "ash");
  Alcotest.(check bool) "geo suffixes nonempty" true (Truth.geo_suffixes truth <> [])

let test_hostname_hints_recorded () =
  let ds, _ = tiny () in
  let some_hint = ref false in
  Array.iter
    (fun (r : Router.t) ->
      match r.Router.truth with
      | Some t ->
          List.iter
            (fun (h, hint) ->
              Alcotest.(check bool) "hint hostname listed" true
                (List.mem h r.Router.hostnames);
              if hint <> None then some_hint := true)
            t.Router.hostname_hints
      | None -> ())
    ds.Dataset.routers;
  Alcotest.(check bool) "at least one embedded hint" true !some_hint

let test_customer_routers () =
  let ds, truth = tiny () in
  let ops = Truth.ops truth in
  let customers = ref 0 in
  Array.iter
    (fun (r : Router.t) ->
      match (r.Router.asn, r.Router.hostnames) with
      | Some asn, [ h ] -> (
          match Hoiho_psl.Psl.registered_suffix h with
          | Some suffix -> (
              match List.find_opt (fun (o : Oper.t) -> o.Oper.suffix = suffix) ops with
              | Some op when op.Oper.asn <> asn ->
                  incr customers;
                  (* the customer hostname embeds the customer's ASN *)
                  Alcotest.(check bool) "asn embedded" true
                    (Hoiho_util.Strutil.is_subsequence
                       (Printf.sprintf "as%d" asn) h)
              | _ -> ())
          | None -> ())
      | _ -> ())
    ds.Dataset.routers;
  Alcotest.(check bool) "customer routers exist" true (!customers > 0)

let test_router_asn_assigned () =
  let ds, truth = tiny () in
  let ops = Truth.ops truth in
  Array.iter
    (fun (r : Router.t) ->
      match r.Router.hostnames with
      | h :: _ -> (
          match Hoiho_psl.Psl.registered_suffix h with
          | Some suffix
            when List.exists (fun (o : Oper.t) -> o.Oper.suffix = suffix) ops ->
              Alcotest.(check bool) "named routers have an ASN" true
                (r.Router.asn <> None)
          | _ -> ())
      | [] -> ())
    ds.Dataset.routers

let test_presets_scale () =
  let c1 = Presets.ipv4_aug20 ~scale:0.1 () in
  let c2 = Presets.ipv4_aug20 () in
  Alcotest.(check bool) "scaled down" true
    (c1.Generate.n_nogeo < c2.Generate.n_nogeo);
  Alcotest.(check int) "four presets" 4 (List.length (Presets.all ()))

let suites =
  [
    ( "netsim.codes",
      [
        tc "abbrev3" test_abbrev3;
        tc "abbrev4" test_abbrev4;
        tc "prefix3" test_prefix3;
        tc "city abbrev" test_city_abbrev;
        tc "iata standard" test_code_for_iata_standard;
        tc "iata custom" test_code_for_iata_custom_when_no_airport;
        tc "facility requires facility" test_code_for_facility_requires_facility;
      ] );
    ( "netsim.conv",
      [
        tc "render substitutes" test_render_substitutes;
        tc "render split clli" test_render_split_clli;
        tc "geo label kinds" test_geo_label_kinds;
        tc "router names stable" test_render_router_stable_names;
      ] );
    ( "netsim.oper",
      [
        tc "random geo shapes" test_random_geo_shapes;
        tc "codebook and customs" test_codebook_and_customs;
        tc "validation operators" test_validation_operators;
        tc "compound operator" test_compound_operator;
        tc "multikind operator" test_multikind_operator;
      ] );
    ( "netsim.generate",
      [
        tc "deterministic" test_generation_deterministic;
        tc "seed changes output" test_seed_changes_output;
        tc "vps distinct" test_vps_distinct_cities;
        tc "rtt soundness" test_rtt_soundness;
        tc "trace rtts exist" test_trace_rtts_exist;
        tc "hostname fraction" test_hostname_fraction;
        tc "hostnames under suffixes" test_hostnames_under_operator_suffixes;
        tc "truth lookup" test_truth_lookup;
        tc "hostname hints recorded" test_hostname_hints_recorded;
        tc "customer routers" test_customer_routers;
        tc "router asn assigned" test_router_asn_assigned;
        tc "presets scale" test_presets_scale;
      ] );
  ]
