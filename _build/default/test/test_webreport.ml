module Webreport = Hoiho_validate.Webreport
module Pipeline = Hoiho.Pipeline

let tc = Helpers.tc

let contains needle haystack =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let pipeline =
  lazy
    (let ds, _, _ =
       Helpers.suffix_fixture
         [
           (Helpers.city "london" "gb", "lhr", 3);
           (Helpers.city "frankfurt" "de", "fra", 3);
           (Helpers.city_st "seattle" "us" "wa", "sea", 3);
           (Helpers.city_st "ashburn" "us" "va", "ash", 4);
         ]
     in
     Pipeline.run ds)

let test_page_filename () =
  Alcotest.(check string) "dots replaced" "he_net.md" (Webreport.page_filename "he.net");
  Alcotest.(check string) "multi" "ccnw_net_au.md" (Webreport.page_filename "ccnw.net.au")

let test_suffix_page_content () =
  let p = Lazy.force pipeline in
  match Pipeline.find p "example.net" with
  | Some r ->
      let page = Webreport.suffix_page p r in
      Alcotest.(check bool) "has title" true (contains "# example.net" page);
      Alcotest.(check bool) "shows a regex" true (contains "([a-z]{3})" page);
      Alcotest.(check bool) "shows the learned code" true (contains "`ash`" page);
      Alcotest.(check bool) "explains the override" true
        (contains "Ashburn, VA, US (overrides a dictionary code)" page);
      Alcotest.(check bool) "has example extractions" true
        (contains "## Example extractions" page)
  | None -> Alcotest.fail "fixture suffix missing"

let test_index_links_pages () =
  let p = Lazy.force pipeline in
  let index = Webreport.index_page p in
  Alcotest.(check bool) "links the suffix page" true
    (contains "](example_net.md)" index);
  Alcotest.(check bool) "shows classification" true (contains "good" index)

let test_write_directory () =
  let dir = Filename.temp_file "hoiho_site" "" in
  Sys.remove dir;
  let p = Lazy.force pipeline in
  let n = Webreport.write p ~dir in
  Alcotest.(check int) "one suffix page" 1 n;
  Alcotest.(check bool) "index exists" true
    (Sys.file_exists (Filename.concat dir "index.md"));
  Alcotest.(check bool) "page exists" true
    (Sys.file_exists (Filename.concat dir "example_net.md"));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let suites =
  [
    ( "webreport",
      [
        tc "page filename" test_page_filename;
        tc "suffix page content" test_suffix_page_content;
        tc "index links pages" test_index_links_pages;
        tc "write directory" test_write_directory;
      ] );
  ]
