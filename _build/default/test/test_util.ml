module Prng = Hoiho_util.Prng
module Strutil = Hoiho_util.Strutil
module Stat = Hoiho_util.Stat

let tc = Helpers.tc

(* --- Prng --- *)

let test_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Prng.bits64 a = Prng.bits64 b)

let test_split_independence () =
  let parent = Prng.create 3 in
  let child = Prng.split parent in
  (* drawing from the child must not equal continuing the parent *)
  Alcotest.(check bool) "independent streams" false
    (Prng.bits64 child = Prng.bits64 parent)

let test_int_bounds () =
  let rng = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_covers_range () =
  let rng = Prng.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int rng 5) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true s) seen

let test_float_bounds () =
  let rng = Prng.create 17 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_range_inclusive () =
  let rng = Prng.create 19 in
  let lo = ref max_int and hi = ref min_int in
  for _ = 1 to 2000 do
    let v = Prng.range rng 3 6 in
    lo := min !lo v;
    hi := max !hi v
  done;
  Alcotest.(check int) "min reached" 3 !lo;
  Alcotest.(check int) "max reached" 6 !hi

let test_weighted_respects_zero () =
  let rng = Prng.create 23 in
  for _ = 1 to 200 do
    let v = Prng.weighted rng [| ("never", 0.0); ("always", 1.0) |] in
    Alcotest.(check string) "zero weight never drawn" "always" v
  done

let test_weighted_proportions () =
  let rng = Prng.create 29 in
  let a = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.weighted rng [| ("a", 9.0); ("b", 1.0) |] = "a" then incr a
  done;
  Alcotest.(check bool) "a drawn ~90%" true (!a > 8500 && !a < 9500)

let test_shuffle_is_permutation () =
  let rng = Prng.create 31 in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_sample_distinct () =
  let rng = Prng.create 37 in
  let arr = Array.init 50 (fun i -> i) in
  let s = Prng.sample rng 10 arr in
  Alcotest.(check int) "ten elements" 10 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "all distinct" 10 (List.length uniq)

let test_gaussian_moments () =
  let rng = Prng.create 41 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Prng.gaussian rng ~mean:5.0 ~stddev:2.0) in
  let mean = Stat.mean xs in
  Alcotest.(check bool) "mean near 5" true (abs_float (mean -. 5.0) < 0.1)

let test_exponential_positive () =
  let rng = Prng.create 43 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Prng.exponential rng ~mean:3.0 > 0.0)
  done

(* --- Strutil --- *)

let test_char_classes () =
  Alcotest.(check bool) "alpha a" true (Strutil.is_alpha 'a');
  Alcotest.(check bool) "alpha Z" true (Strutil.is_alpha 'Z');
  Alcotest.(check bool) "alpha 3" false (Strutil.is_alpha '3');
  Alcotest.(check bool) "digit 3" true (Strutil.is_digit '3');
  Alcotest.(check bool) "digit -" false (Strutil.is_digit '-');
  Alcotest.(check bool) "alnum 7" true (Strutil.is_alnum '7');
  Alcotest.(check bool) "alnum ." false (Strutil.is_alnum '.')

let test_split_labels () =
  Alcotest.(check (list string)) "basic" [ "a"; "b"; "c" ] (Strutil.split_labels "a.b.c");
  Alcotest.(check (list string)) "drops empty" [ "a"; "c" ] (Strutil.split_labels "a..c");
  Alcotest.(check (list string)) "empty" [] (Strutil.split_labels "")

let test_split_punct () =
  Alcotest.(check (list string)) "mixed" [ "xe"; "0"; "0"; "ash1" ]
    (Strutil.split_punct "xe-0-0.ash1");
  Alcotest.(check (list string)) "underscores" [ "a"; "b" ] (Strutil.split_punct "a_b");
  Alcotest.(check (list string)) "none" [ "abc123" ] (Strutil.split_punct "abc123")

let test_alpha_runs () =
  Alcotest.(check (list string)) "runs" [ "ash"; "x" ] (Strutil.alpha_runs "ash1x");
  Alcotest.(check (list string)) "digits only" [] (Strutil.alpha_runs "123")

let test_strip_digits () =
  Alcotest.(check string) "trailing" "lhr" (Strutil.strip_trailing_digits "lhr15");
  Alcotest.(check string) "none" "lhr" (Strutil.strip_trailing_digits "lhr");
  Alcotest.(check string) "all digits" "" (Strutil.strip_trailing_digits "42");
  Alcotest.(check string) "leading" "ge5" (Strutil.strip_leading_digits "100ge5")

let test_suffix_ops () =
  Alcotest.(check bool) "has_suffix" true (Strutil.has_suffix ~suffix:"net" "he.net");
  Alcotest.(check bool) "not suffix" false (Strutil.has_suffix ~suffix:"com" "he.net");
  Alcotest.(check (option string)) "drop with dot" (Some "core1.ash1")
    (Strutil.drop_suffix ~suffix:"he.net" "core1.ash1.he.net");
  Alcotest.(check (option string)) "no match" None
    (Strutil.drop_suffix ~suffix:"example.com" "core1.he.net");
  Alcotest.(check bool) "has_prefix" true (Strutil.has_prefix ~prefix:"core" "core1")

let test_is_subsequence () =
  Alcotest.(check bool) "ash in ashburn" true (Strutil.is_subsequence "ash" "ashburn");
  Alcotest.(check bool) "tky in tokyo" true (Strutil.is_subsequence "tky" "tokyo");
  Alcotest.(check bool) "xyz not in tokyo" false (Strutil.is_subsequence "xyz" "tokyo");
  Alcotest.(check bool) "empty in anything" true (Strutil.is_subsequence "" "abc")

let test_longest_common_run () =
  Alcotest.(check int) "overlap" 8 (Strutil.longest_common_run "ftcollins" "fortcollins");
  Alcotest.(check int) "identical" 3 (Strutil.longest_common_run "abc" "abc");
  Alcotest.(check int) "none" 0 (Strutil.longest_common_run "abc" "xyz")

let test_chunks () =
  let chunks = Strutil.chunks_of_classes "ash1-b" in
  Alcotest.(check int) "four chunks" 4 (List.length chunks);
  (match chunks with
  | [ `Alpha "ash"; `Digit "1"; `Other "-"; `Alpha "b" ] -> ()
  | _ -> Alcotest.fail "unexpected chunk decomposition");
  Alcotest.(check int) "empty" 0 (List.length (Strutil.chunks_of_classes ""))

(* --- Stat --- *)

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stat.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stat.mean [])

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 2.0 (Stat.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "single" 5.0 (Stat.median [ 5.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stat.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p90" 90.0 (Stat.percentile 90.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stat.percentile 100.0 xs)

let test_cdf_points () =
  let pts = Stat.cdf_points [ 1.0; 2.0 ] [ 0.5; 1.5; 1.8 ] in
  Alcotest.(check int) "two points" 2 (List.length pts);
  Alcotest.(check (float 1e-9)) "cdf at 2" 1.0 (snd (List.nth pts 1))

let test_fraction_pct () =
  Alcotest.(check (float 1e-9)) "fraction" 0.5
    (Stat.fraction (fun x -> x > 1) [ 1; 2; 1; 3 ]);
  Alcotest.(check (float 1e-9)) "pct" 25.0 (Stat.pct 1 4);
  Alcotest.(check (float 1e-9)) "pct zero denom" 0.0 (Stat.pct 1 0)

let suites =
  [
    ( "util.prng",
      [
        tc "determinism" test_determinism;
        tc "seed sensitivity" test_seed_sensitivity;
        tc "split independence" test_split_independence;
        tc "int bounds" test_int_bounds;
        tc "int covers range" test_int_covers_range;
        tc "float bounds" test_float_bounds;
        tc "range inclusive" test_range_inclusive;
        tc "weighted zero" test_weighted_respects_zero;
        tc "weighted proportions" test_weighted_proportions;
        tc "shuffle permutation" test_shuffle_is_permutation;
        tc "sample distinct" test_sample_distinct;
        tc "gaussian moments" test_gaussian_moments;
        tc "exponential positive" test_exponential_positive;
      ] );
    ( "util.strutil",
      [
        tc "char classes" test_char_classes;
        tc "split labels" test_split_labels;
        tc "split punct" test_split_punct;
        tc "alpha runs" test_alpha_runs;
        tc "strip digits" test_strip_digits;
        tc "suffix ops" test_suffix_ops;
        tc "is_subsequence" test_is_subsequence;
        tc "longest common run" test_longest_common_run;
        tc "chunks of classes" test_chunks;
      ] );
    ( "util.stat",
      [
        tc "mean" test_mean;
        tc "median" test_median;
        tc "percentile" test_percentile;
        tc "cdf points" test_cdf_points;
        tc "fraction/pct" test_fraction_pct;
      ] );
  ]
