module Apparent = Hoiho.Apparent
module Regen = Hoiho.Regen
module Evalx = Hoiho.Evalx
module Cand = Hoiho.Cand
module Consist = Hoiho.Consist
module Plan = Hoiho.Plan
module Learned = Hoiho.Learned
module Ast = Hoiho_rx.Ast

let tc = Helpers.tc
let db = Helpers.db

(* a hand-built candidate: ^[^\.]+\.[^\.]+\.([a-z]{3})\d+\.example\.net$ *)
let iata_cand =
  Cand.build ~suffix:"example.net"
    [
      Cand.Fill Cand.Flabel; Cand.Lit "."; Cand.Fill Cand.Flabel; Cand.Lit ".";
      Cand.Cap (Plan.Hint Plan.Iata, [ Ast.Rep (Ast.Cls Ast.lower, 3, Some 3, Ast.Greedy) ]);
      Cand.Node (Ast.Rep (Ast.Cls Ast.digit, 1, None, Ast.Greedy));
    ]

(* same, but also captures a trailing country code *)
let iata_cc_cand =
  Cand.build ~suffix:"example.net"
    [
      Cand.Fill Cand.Flabel; Cand.Lit "."; Cand.Fill Cand.Flabel; Cand.Lit ".";
      Cand.Cap (Plan.Hint Plan.Iata, [ Ast.Rep (Ast.Cls Ast.lower, 3, Some 3, Ast.Greedy) ]);
      Cand.Node (Ast.Rep (Ast.Cls Ast.digit, 1, None, Ast.Greedy));
      Cand.Lit ".";
      Cand.Cap (Plan.Cc, [ Ast.Rep (Ast.Cls Ast.lower, 2, Some 2, Ast.Greedy) ]);
    ]

let sample_of ~at hostname =
  let vps = Helpers.std_vps () in
  let r = Helpers.router ~id:0 ~at ~vps ~hostnames:[ hostname ] () in
  let ds = Helpers.dataset [ r ] vps in
  let consist = Consist.create ds in
  match Apparent.tag_hostname consist db ~suffix:"example.net" r hostname with
  | Some s -> (consist, s)
  | None -> Alcotest.fail "fixture tagging failed"

let outcome_name = function
  | Evalx.TP -> "TP"
  | Evalx.FP -> "FP"
  | Evalx.FN -> "FN"
  | Evalx.UNK -> "UNK"
  | Evalx.Skip -> "Skip"

let check_outcome cand ~at hostname expected () =
  let consist, sample = sample_of ~at hostname in
  let hit = Evalx.eval_sample consist db cand sample in
  Alcotest.(check string) (hostname ^ " outcome") (outcome_name expected)
    (outcome_name hit.Evalx.outcome)

let lon = Helpers.city "london" "gb"
let tokyo = Helpers.city "tokyo" "jp"

let test_tp = check_outcome iata_cand ~at:lon "ae1.cr1.lhr15.example.net" Evalx.TP

let test_fp_stale =
  (* the hostname claims heathrow but the router is in tokyo *)
  check_outcome iata_cand ~at:tokyo "ae1.cr1.lhr15.example.net" Evalx.FP

let test_unk = check_outcome iata_cand ~at:lon "ae1.cr1.qqz15.example.net" Evalx.UNK

let test_fn_no_match =
  (* geohint tagged but the regex shape (needs digits) does not match *)
  check_outcome iata_cand ~at:lon "ae1.cr1.lhr.example.net" Evalx.FN

let test_skip =
  check_outcome iata_cand ~at:lon "ae1.cr1.xyz9abc.example.net" Evalx.Skip

let test_fn_missing_cc () =
  (* the apparent geohint includes "uk"; a regex that drops it is FN *)
  let consist, sample = sample_of ~at:lon "ae1.cr1.lhr15.uk.example.net" in
  let hit = Evalx.eval_sample consist db iata_cc_cand sample in
  Alcotest.(check string) "cc-capturing regex is TP" "TP" (outcome_name hit.Evalx.outcome);
  (* a regex matching the same hostname without extracting the cc *)
  let no_cc =
    Cand.build ~suffix:"example.net"
      [
        Cand.Fill Cand.Flabel; Cand.Lit "."; Cand.Fill Cand.Flabel; Cand.Lit ".";
        Cand.Cap (Plan.Hint Plan.Iata, [ Ast.Rep (Ast.Cls Ast.lower, 3, Some 3, Ast.Greedy) ]);
        Cand.Node (Ast.Rep (Ast.Cls Ast.digit, 1, None, Ast.Greedy));
        Cand.Lit "."; Cand.Fill Cand.Flabel;
      ]
  in
  let hit = Evalx.eval_sample consist db no_cc sample in
  Alcotest.(check string) "dropping the cc is FN" "FN" (outcome_name hit.Evalx.outcome)

let test_counts_and_metrics () =
  let c = Evalx.zero in
  let c = Evalx.add_outcome c Evalx.TP in
  let c = Evalx.add_outcome c Evalx.TP in
  let c = Evalx.add_outcome c Evalx.FP in
  let c = Evalx.add_outcome c Evalx.FN in
  let c = Evalx.add_outcome c Evalx.UNK in
  let c = Evalx.add_outcome c Evalx.Skip in
  Alcotest.(check int) "tp" 2 c.Evalx.tp;
  Alcotest.(check int) "atp" (-1) (Evalx.atp c);
  Alcotest.(check (float 1e-9)) "ppv" (2.0 /. 3.0) (Evalx.ppv c);
  Alcotest.(check (float 1e-9)) "empty ppv" 0.0 (Evalx.ppv Evalx.zero)

let test_eval_cand_aggregates () =
  let vps = Helpers.std_vps () in
  let fra = Helpers.city "frankfurt" "de" in
  let routers =
    [
      Helpers.router ~id:0 ~at:lon ~vps ~hostnames:[ "ae1.cr1.lhr15.example.net" ] ();
      Helpers.router ~id:1 ~at:fra ~vps ~hostnames:[ "ae1.cr1.fra2.example.net" ] ();
    ]
  in
  let ds = Helpers.dataset routers vps in
  let consist = Consist.create ds in
  let samples = Apparent.build_samples consist db ~suffix:"example.net" routers in
  let counts, hits = Evalx.eval_cand consist db iata_cand samples in
  Alcotest.(check int) "both TP" 2 counts.Evalx.tp;
  Alcotest.(check (list string)) "unique hints" [ "fra"; "lhr" ]
    (Evalx.unique_tp_hints hits)

let test_resolve_overlay () =
  let learned = Learned.empty () in
  let ashburn = Helpers.city_st "ashburn" "us" "va" in
  Learned.add learned
    { Learned.hint = "ash"; hint_type = Plan.Iata; city = ashburn; tp = 4; fp = 0; collides = true };
  let ex = { Plan.hint = "ash"; hint_type = Plan.Iata; cc = None; state = None } in
  (match Evalx.resolve db ~learned ex with
  | [ c ] -> Alcotest.check Helpers.check_city "overlay wins" ashburn c
  | _ -> Alcotest.fail "expected exactly the learned city");
  (* without the overlay, the dictionary interpretation (Nashua) rules *)
  match Evalx.resolve db ex with
  | [ c ] -> Alcotest.(check string) "dictionary" "nashua" c.Hoiho_geodb.City.name
  | _ -> Alcotest.fail "expected nashua"

let test_resolve_cc_filter () =
  (* "washington" with state=dc narrows to the capital *)
  let ex =
    { Plan.hint = "washington"; hint_type = Plan.CityName; cc = None; state = Some "dc" }
  in
  (match Evalx.resolve db ex with
  | [ c ] -> Alcotest.(check (option string)) "dc" (Some "dc") c.Hoiho_geodb.City.state
  | cities -> Alcotest.failf "expected 1 city, got %d" (List.length cities));
  (* a cc that matches nothing falls back to the unfiltered set *)
  let ex2 =
    { Plan.hint = "washington"; hint_type = Plan.CityName; cc = Some "jp"; state = None }
  in
  Alcotest.(check bool) "fallback" true (List.length (Evalx.resolve db ex2) > 1)

let suites =
  [
    ( "evalx",
      [
        tc "tp" test_tp;
        tc "fp stale" test_fp_stale;
        tc "unk" test_unk;
        tc "fn no match" test_fn_no_match;
        tc "skip" test_skip;
        tc "fn missing cc" test_fn_missing_cc;
        tc "counts and metrics" test_counts_and_metrics;
        tc "eval_cand aggregates" test_eval_cand_aggregates;
        tc "resolve overlay" test_resolve_overlay;
        tc "resolve cc filter" test_resolve_cc_filter;
      ] );
  ]
