module Apparent = Hoiho.Apparent
module Regen = Hoiho.Regen
module Cand = Hoiho.Cand
module Consist = Hoiho.Consist
module Plan = Hoiho.Plan

let tc = Helpers.tc
let db = Helpers.db

let tagged_samples routers =
  let vps = Helpers.std_vps () in
  let ds = Helpers.dataset routers vps in
  let consist = Consist.create ds in
  let samples =
    Apparent.build_samples consist db ~suffix:"example.net" routers
  in
  (consist, List.filter (fun (s : Apparent.sample) -> s.Apparent.tags <> []) samples)

let fixture sites =
  let ds, routers, _ = Helpers.suffix_fixture sites in
  let consist = Consist.create ds in
  let samples = Apparent.build_samples consist db ~suffix:"example.net" routers in
  (consist, List.filter (fun (s : Apparent.sample) -> s.Apparent.tags <> []) samples)

let contains needle haystack =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let sources cands = List.map (fun (c : Cand.t) -> c.Cand.source) cands

let test_phase1_iata_shape () =
  let _, samples = fixture [ (Helpers.city "london" "gb", "lhr", 2) ] in
  let cands = Regen.phase1 ~suffix:"example.net" samples in
  Alcotest.(check bool) "some candidates" true (cands <> []);
  Alcotest.(check bool) "a candidate captures a 3-letter code" true
    (List.exists (fun s -> contains "([a-z]{3})" s) (sources cands));
  Alcotest.(check bool) "anchored with suffix" true
    (List.for_all
       (fun s ->
         String.length s > 0 && s.[0] = '^'
         && Hoiho_util.Strutil.has_suffix ~suffix:{|example\.net$|} s)
       (sources cands))

let test_phase1_collapsed_variant () =
  let _, samples = fixture [ (Helpers.city "london" "gb", "lhr", 2) ] in
  let cands = Regen.phase1 ~suffix:"example.net" samples in
  Alcotest.(check bool) "a .+ variant exists" true
    (List.exists (fun s -> contains "^.+" s) (sources cands));
  Alcotest.(check bool) "a fully-specific variant exists" true
    (List.exists (fun s -> not (contains "^.+" s)) (sources cands))

let test_phase1_plans () =
  let _, samples = fixture [ (Helpers.city "london" "gb", "lhr", 2) ] in
  let cands = Regen.phase1 ~suffix:"example.net" samples in
  Alcotest.(check bool) "an IATA plan exists" true
    (List.exists
       (fun (c : Cand.t) -> Plan.hint_type_of c.Cand.plan = Some Plan.Iata)
       cands)

let test_phase1_city_name_plus () =
  let _, samples = fixture [ (Helpers.city_st "ashburn" "us" "va", "ashburn", 2) ] in
  let cands = Regen.phase1 ~suffix:"example.net" samples in
  Alcotest.(check bool) "city name captured with +" true
    (List.exists (fun s -> contains "([a-z]+)" s) (sources cands))

let test_phase1_deduplicates () =
  let _, samples = fixture [ (Helpers.city "london" "gb", "lhr", 3) ] in
  let cands = Regen.phase1 ~suffix:"example.net" samples in
  let srcs = sources cands in
  Alcotest.(check int) "no duplicate sources" (List.length srcs)
    (List.length (List.sort_uniq compare srcs))

let test_phase2_digit_merge () =
  (* one hostname with digits after the geo code, one without *)
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let fra = Helpers.city "frankfurt" "de" in
  let routers =
    [
      Helpers.router ~id:0 ~at:lon ~vps ~hostnames:[ "ae1.cr1.lhr15.example.net" ] ();
      Helpers.router ~id:1 ~at:fra ~vps ~hostnames:[ "ae2.cr1.fra.example.net" ] ();
    ]
  in
  let _, samples = tagged_samples routers in
  let p1 = Regen.phase1 ~suffix:"example.net" samples in
  let merged = Regen.phase2 p1 in
  Alcotest.(check bool) "a \\d* merge is produced" true
    (List.exists (fun s -> contains {|\d*|} s) (sources merged))

let test_phase2_no_spurious_merge () =
  let _, samples = fixture [ (Helpers.city "london" "gb", "lhr", 2) ] in
  let p1 = Regen.phase1 ~suffix:"example.net" samples in
  (* all geo labels have digits; removing \d+ never yields an existing
     candidate, so nothing merges *)
  Alcotest.(check (list string)) "no merges" [] (sources (Regen.phase2 p1))

let test_phase3_specializes_role_label () =
  let _, samples =
    fixture
      [ (Helpers.city "london" "gb", "lhr", 3); (Helpers.city "frankfurt" "de", "fra", 3) ]
  in
  let p1 = Regen.phase1 ~suffix:"example.net" samples in
  let p3 = Regen.phase3 samples p1 in
  (* the "cr<k>" role label should specialize from [^\.]+ to [a-z]+\d+ *)
  Alcotest.(check bool) "role label specialized" true
    (List.exists (fun s -> contains {|[a-z]+\d+|} s) (sources p3))

let test_phase3_literal_when_constant () =
  (* interface label varies but role label is literally constant *)
  let vps = Helpers.std_vps () in
  let lon = Helpers.city "london" "gb" in
  let fra = Helpers.city "frankfurt" "de" in
  let mk id at code n =
    Helpers.router ~id ~at ~vps
      ~hostnames:[ Printf.sprintf "ae%d.core.%s%d.example.net" id code n ]
      ()
  in
  let routers = [ mk 0 lon "lhr" 1; mk 1 lon "lhr" 2; mk 2 fra "fra" 1 ] in
  let _, samples = tagged_samples routers in
  let p1 = Regen.phase1 ~suffix:"example.net" samples in
  let p3 = Regen.phase3 samples p1 in
  Alcotest.(check bool) "constant label becomes literal" true
    (List.exists (fun s -> contains {|\.core\.|} s) (sources p3))

let test_candidates_pipeline () =
  let _, samples =
    fixture
      [ (Helpers.city "london" "gb", "lhr", 3); (Helpers.city "frankfurt" "de", "fra", 3) ]
  in
  let all = Regen.candidates ~suffix:"example.net" samples in
  Alcotest.(check bool) "bounded" true (List.length all <= Regen.max_candidates);
  let srcs = sources all in
  Alcotest.(check int) "deduplicated" (List.length srcs)
    (List.length (List.sort_uniq compare srcs));
  (* every candidate compiles and parses back *)
  List.iter
    (fun src ->
      match Hoiho_rx.Engine.compile_string src with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable candidate %s: %s" src e)
    srcs

let test_split_clli_candidate () =
  let vps = Helpers.std_vps () in
  let ash = Helpers.city_st "ashburn" "us" "va" in
  let routers =
    [ Helpers.router ~id:0 ~at:ash ~vps ~hostnames:[ "ae0.asbn1-va.example.net" ] () ]
  in
  let _, samples = tagged_samples routers in
  let cands = Regen.phase1 ~suffix:"example.net" samples in
  Alcotest.(check bool) "4+2 capture pair" true
    (List.exists
       (fun (c : Cand.t) ->
         List.mem Plan.ClliA c.Cand.plan && List.mem Plan.ClliB c.Cand.plan)
       cands)

let test_empty_samples () =
  Alcotest.(check (list string)) "no samples, no candidates" []
    (sources (Regen.candidates ~suffix:"example.net" []))

let suites =
  [
    ( "regen",
      [
        tc "phase1 iata shape" test_phase1_iata_shape;
        tc "phase1 collapsed variant" test_phase1_collapsed_variant;
        tc "phase1 plans" test_phase1_plans;
        tc "phase1 city name" test_phase1_city_name_plus;
        tc "phase1 dedup" test_phase1_deduplicates;
        tc "phase2 digit merge" test_phase2_digit_merge;
        tc "phase2 no spurious merge" test_phase2_no_spurious_merge;
        tc "phase3 role specialization" test_phase3_specializes_role_label;
        tc "phase3 literal constant" test_phase3_literal_when_constant;
        tc "candidates pipeline" test_candidates_pipeline;
        tc "split clli candidate" test_split_clli_candidate;
        tc "empty samples" test_empty_samples;
      ] );
  ]
