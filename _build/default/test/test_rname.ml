module Rname = Hoiho.Rname
module Router = Hoiho_itdk.Router

let tc = Helpers.tc

let router id hostnames = Router.make id ~hostnames

let training =
  [
    router 0 [ "xe-0-0.core1.ash1.example.net"; "ae5.core1.ash1.example.net" ];
    router 1 [ "xe-1-0.core2.ash1.example.net"; "ae1.core2.ash1.example.net" ];
    router 2 [ "ge-0-1.core1.lhr2.example.net"; "ae2.core1.lhr2.example.net" ];
    router 3 [ "ae9.core1.fra1.example.net"; "po1.core1.fra1.example.net" ];
    (* a single-interface router participates in uniqueness only *)
    router 4 [ "ae1.core9.sea1.example.net" ];
  ]

let learn () =
  match Rname.learn ~suffix:"example.net" training with
  | Some t -> t
  | None -> Alcotest.fail "no router-name convention learned"

let test_learns_two_label_names () =
  let t = learn () in
  Alcotest.(check int) "two trailing labels" 2 t.Rname.n_labels;
  Alcotest.(check int) "all four multi-interface routers TP" 4 t.Rname.counts.Rname.tp;
  Alcotest.(check int) "no FPs" 0 t.Rname.counts.Rname.fp;
  Alcotest.(check bool) "usable" true (Rname.usable t)

let test_extract () =
  let t = learn () in
  Alcotest.(check (option string)) "name" (Some "core1.ash1")
    (Rname.extract t "et-9-9.core1.ash1.example.net");
  Alcotest.(check (option string)) "interface varies, name stable"
    (Rname.extract t "xe-0-0.core1.ash1.example.net")
    (Rname.extract t "ae5.core1.ash1.example.net")

let test_collision_is_fp () =
  (* two routers sharing the extracted name cannot both be TP *)
  let routers =
    [
      router 0 [ "xe-0.core1.ash1.example.net"; "ae1.core1.ash1.example.net" ];
      router 1 [ "xe-1.core1.ash1.example.net"; "ae2.core1.ash1.example.net" ];
      router 2 [ "xe-0.core2.lhr1.example.net"; "ae1.core2.lhr1.example.net" ];
      router 3 [ "xe-0.core3.fra1.example.net"; "ae1.core3.fra1.example.net" ];
    ]
  in
  match Rname.learn ~suffix:"example.net" routers with
  | Some t ->
      Alcotest.(check int) "colliding routers are FPs" 2 t.Rname.counts.Rname.fp;
      Alcotest.(check int) "distinct routers are TPs" 2 t.Rname.counts.Rname.tp
  | None -> Alcotest.fail "should learn"

let test_no_multi_interface_routers () =
  let routers = [ router 0 [ "ae1.core1.ash1.example.net" ] ] in
  Alcotest.(check bool) "nothing to train on" true
    (Rname.learn ~suffix:"example.net" routers = None)

let test_never_absorbs_whole_hostname () =
  (* identical hostnames must not make the name swallow everything *)
  let routers =
    [
      router 0 [ "core1.ash1.example.net"; "core1.ash1.example.net" ];
      router 1 [ "core2.lhr1.example.net"; "core2.lhr1.example.net" ];
      router 2 [ "core3.fra1.example.net"; "core3.fra1.example.net" ];
    ]
  in
  match Rname.learn ~suffix:"example.net" routers with
  | Some t -> Alcotest.(check bool) "name shorter than hostname" true (t.Rname.n_labels <= 1)
  | None -> ()

let test_end_to_end_generated () =
  let ds, _ = Hoiho_netsim.Generate.generate (Hoiho_netsim.Presets.tiny ()) in
  let groups = Hoiho_itdk.Dataset.by_suffix ds in
  let usable =
    List.filter_map
      (fun (suffix, routers) ->
        match Rname.learn ~suffix routers with
        | Some t when Rname.usable t -> Some t
        | _ -> None)
      groups
  in
  Alcotest.(check bool) "learned several" true (List.length usable >= 5)

let suites =
  [
    ( "rname",
      [
        tc "learns two-label names" test_learns_two_label_names;
        tc "extract" test_extract;
        tc "collision is fp" test_collision_is_fp;
        tc "no multi-interface routers" test_no_multi_interface_routers;
        tc "never absorbs whole hostname" test_never_absorbs_whole_hostname;
        tc "end to end" test_end_to_end_generated;
      ] );
  ]
