module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt

let tc = Helpers.tc

let lhr = Coord.make ~lat:51.47 ~lon:(-0.45)
let jfk = Coord.make ~lat:40.64 ~lon:(-73.78)
let syd = Coord.make ~lat:(-33.95) ~lon:151.18
let nrt = Coord.make ~lat:35.76 ~lon:140.39

let test_zero_distance () =
  Alcotest.(check (float 1e-6)) "same point" 0.0 (Coord.distance_km lhr lhr)

let test_known_distances () =
  (* published great-circle distances, generous tolerance *)
  let check name a b expected tol =
    let d = Coord.distance_km a b in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.0f km (expected ~%.0f)" name d expected)
      true
      (abs_float (d -. expected) < tol)
  in
  check "LHR-JFK" lhr jfk 5540.0 60.0;
  check "SYD-NRT" syd nrt 7920.0 120.0;
  check "LHR-SYD" lhr syd 17020.0 200.0

let test_symmetry () =
  Alcotest.(check (float 1e-6)) "symmetric" (Coord.distance_km lhr jfk)
    (Coord.distance_km jfk lhr)

let test_max_half_circumference () =
  let a = Coord.make ~lat:0.0 ~lon:0.0 and b = Coord.make ~lat:0.0 ~lon:180.0 in
  let d = Coord.distance_km a b in
  Alcotest.(check bool) "about half circumference" true
    (d > 20000.0 && d < 20050.0)

let test_coord_validation () =
  Alcotest.check_raises "lat > 90" (Invalid_argument "Coord.make: latitude out of range")
    (fun () -> ignore (Coord.make ~lat:91.0 ~lon:0.0));
  Alcotest.check_raises "lon > 180" (Invalid_argument "Coord.make: longitude out of range")
    (fun () -> ignore (Coord.make ~lat:0.0 ~lon:181.0))

let test_fiber_speed () =
  (* 2/3 of c: just under 200 km per ms one-way *)
  Alcotest.(check bool) "one-way speed" true
    (Lightrtt.fiber_km_per_ms > 195.0 && Lightrtt.fiber_km_per_ms < 202.0)

let test_min_rtt_roundtrip_factor () =
  (* RTT covers the distance twice *)
  let rtt = Lightrtt.min_rtt_ms lhr jfk in
  let d = Coord.distance_km lhr jfk in
  Alcotest.(check (float 1e-6)) "2d/speed" (2.0 *. d /. Lightrtt.fiber_km_per_ms) rtt

let test_paper_rule_of_thumb () =
  (* the paper equates 16 ms with ~1600 km (~100 km per RTT-ms) *)
  let d = Lightrtt.max_distance_km ~rtt_ms:16.0 in
  Alcotest.(check bool) "16ms ~ 1600km" true (d > 1500.0 && d < 1700.0)

let test_consistency () =
  let rtt = Lightrtt.min_rtt_ms lhr jfk in
  Alcotest.(check bool) "exact best case is consistent" true
    (Lightrtt.consistent ~vp:lhr ~candidate:jfk rtt);
  Alcotest.(check bool) "below best case is not" false
    (Lightrtt.consistent ~vp:lhr ~candidate:jfk (rtt -. 1.0));
  Alcotest.(check bool) "slack absorbs small deficit" true
    (Lightrtt.consistent ~slack_ms:2.0 ~vp:lhr ~candidate:jfk (rtt -. 1.0));
  Alcotest.(check bool) "zero rtt consistent with own location" true
    (Lightrtt.consistent ~vp:lhr ~candidate:lhr 0.0)

let test_rtt_monotonic_in_distance () =
  Alcotest.(check bool) "farther location needs more time" true
    (Lightrtt.min_rtt_ms lhr syd > Lightrtt.min_rtt_ms lhr jfk)

let suites =
  [
    ( "geo.coord",
      [
        tc "zero distance" test_zero_distance;
        tc "known distances" test_known_distances;
        tc "symmetry" test_symmetry;
        tc "half circumference" test_max_half_circumference;
        tc "validation" test_coord_validation;
      ] );
    ( "geo.lightrtt",
      [
        tc "fiber speed" test_fiber_speed;
        tc "roundtrip factor" test_min_rtt_roundtrip_factor;
        tc "paper rule of thumb" test_paper_rule_of_thumb;
        tc "consistency" test_consistency;
        tc "monotonic" test_rtt_monotonic_in_distance;
      ] );
  ]
