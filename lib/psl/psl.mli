(** Public-suffix handling (§5.1.2).

    The method groups hostnames by the domain suffix under which an
    operator registers names — the effective top-level domain plus one
    label ("zayo.com", "ccnw.net.au"). This module embeds the subset of
    the Mozilla Public Suffix List needed for realistic router hostnames
    and extracts the registration suffix of a hostname. *)

val public_suffixes : string list
(** Embedded effective-TLD list (e.g. "com", "net.au", "co.uk"). *)

val is_public_suffix : string -> bool

val registered_suffix : string -> string option
(** [registered_suffix "core1.ash1.he.net"] is [Some "he.net"]. [None]
    when the hostname is itself a public suffix or has no recognized
    public suffix. Matching picks the longest public suffix, so
    ["r1.ccnw.net.au"] yields [Some "ccnw.net.au"]. The input is
    normalized first ({!Hoiho_util.Strutil.normalize_hostname}): case,
    a trailing root dot, and embedded whitespace do not change the
    answer. *)

val prefix_of : string -> string option
(** The hostname portion before the registered suffix:
    ["core1.ash1" ] for ["core1.ash1.he.net"]. [None] when there is no
    prefix or no recognized suffix. *)
