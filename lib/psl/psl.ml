module Strutil = Hoiho_util.Strutil

(* A representative subset of the Mozilla PSL: the generic TLDs plus the
   country-code suffixes under which network operators commonly register
   router hostname domains. *)
let public_suffixes =
  [
    "com"; "net"; "org"; "edu"; "gov"; "mil"; "int"; "info"; "biz";
    "cloud"; "io"; "co";
    "at"; "au"; "be"; "br"; "ca"; "ch"; "cl"; "cn"; "cz"; "de"; "dk";
    "es"; "eu"; "fi"; "fr"; "gr"; "hk"; "hu"; "id"; "ie"; "il"; "in";
    "is"; "it"; "jp"; "kr"; "lu"; "mx"; "my"; "nl"; "no"; "nz"; "pe";
    "ph"; "pl"; "pt"; "ro"; "rs"; "ru"; "se"; "sg"; "sk"; "th"; "tr";
    "tw"; "ua"; "uk"; "us"; "za";
    "com.au"; "net.au"; "org.au"; "edu.au"; "gov.au";
    "co.uk"; "net.uk"; "org.uk"; "ac.uk"; "gov.uk";
    "co.nz"; "net.nz"; "org.nz"; "ac.nz"; "govt.nz";
    "com.br"; "net.br"; "org.br";
    "co.jp"; "ne.jp"; "or.jp"; "ad.jp"; "ac.jp";
    "co.kr"; "ne.kr"; "or.kr";
    "com.cn"; "net.cn"; "org.cn";
    "com.hk"; "net.hk";
    "com.sg"; "net.sg";
    "com.tw"; "net.tw";
    "com.mx"; "net.mx";
    "com.ar"; "net.ar";
    "com.my"; "net.my";
    "co.za"; "net.za"; "org.za";
    "co.in"; "net.in";
    "co.il"; "net.il"; "org.il";
    "com.tr"; "net.tr";
    "com.pl"; "net.pl";
    "com.ru"; "net.ru";
    "co.id"; "net.id";
    "co.th"; "net.th";
    "com.ph"; "net.ph";
    "com.pe"; "net.pe";
    "com.sa"; "net.sa";
    "ac.at"; "co.at"; "or.at";
  ]

let suffix_set =
  let tbl = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace tbl s ()) public_suffixes;
  tbl

let is_public_suffix s = Hashtbl.mem suffix_set (Strutil.lowercase s)

let registered_suffix hostname =
  (* normalization (not just lowercasing) tolerates real-world PTR
     noise: trailing root dot, embedded whitespace, mixed case *)
  let lowered = Strutil.normalize_hostname hostname in
  let labels = Strutil.split_labels lowered in
  let n = List.length labels in
  (* a name that is itself a public suffix (including multi-label ones
     like "com.au") has no registered domain; checked once here — the
     scan below starts at i = 1 and so only ever sees proper suffixes *)
  if Hashtbl.mem suffix_set (Strutil.join "." labels) then None
  else
    (* find the longest public suffix that is a proper suffix of the
       name, then include one more label *)
    let rec try_at i =
      (* candidate public suffix = labels[i..] *)
      if i >= n then None
      else
        let cand = Strutil.join "." (List.filteri (fun j _ -> j >= i) labels) in
        if Hashtbl.mem suffix_set cand then
          Some (Strutil.join "." (List.filteri (fun j _ -> j >= i - 1) labels))
        else try_at (i + 1)
    in
    try_at 1

let prefix_of hostname =
  match registered_suffix hostname with
  | None -> None
  | Some suffix -> (
      match Strutil.drop_suffix ~suffix (Strutil.normalize_hostname hostname) with
      | Some "" -> None
      | other -> other)
