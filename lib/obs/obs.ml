type counter = { cname : string; ccell : int Atomic.t }
type gauge = { gname : string; gcell : int Atomic.t }

type histogram = {
  hname : string;
  hlock : Mutex.t;
  mutable vals : float array;
  mutable hlen : int;
}

(* one registry per metric kind, all guarded by a single mutex;
   registration is rare (module initialization), reads and bumps never
   touch the registry *)
let reg_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock reg_mutex;
  let m =
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None ->
        let m = make name in
        Hashtbl.replace tbl name m;
        m
  in
  Mutex.unlock reg_mutex;
  m

let counter name =
  registered counters name (fun cname -> { cname; ccell = Atomic.make 0 })

let incr c = ignore (Atomic.fetch_and_add c.ccell 1)
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.ccell n)
let count c = Atomic.get c.ccell
let set_counter c n = Atomic.set c.ccell n

let gauge name =
  registered gauges name (fun gname -> { gname; gcell = Atomic.make 0 })

let rec observe_gauge g v =
  let cur = Atomic.get g.gcell in
  if v > cur && not (Atomic.compare_and_set g.gcell cur v) then observe_gauge g v

let set_gauge g v = Atomic.set g.gcell v
let gauge_value g = Atomic.get g.gcell

let histogram name =
  registered histograms name (fun hname ->
      { hname; hlock = Mutex.create (); vals = Array.make 64 0.0; hlen = 0 })

let observe h v =
  Mutex.lock h.hlock;
  if h.hlen = Array.length h.vals then begin
    let bigger = Array.make (2 * h.hlen) 0.0 in
    Array.blit h.vals 0 bigger 0 h.hlen;
    h.vals <- bigger
  end;
  h.vals.(h.hlen) <- v;
  h.hlen <- h.hlen + 1;
  Mutex.unlock h.hlock

(* monotonic milliseconds (arbitrary epoch, differences only): a wall
   clock stepping backwards under NTP used to push negative durations
   into the histograms. OCaml's Unix module has no clock_gettime
   binding, so the CLOCK_MONOTONIC read comes from the bechamel
   monotonic-clock stub the bench harness already ships. *)
let now_ms () = Int64.to_float (Monotonic_clock.now ()) /. 1e6

(* wall-clock epoch milliseconds, kept only for values that leave the
   process as absolute times (trace anchors, emitter timestamps) *)
let epoch_ms () = Unix.gettimeofday () *. 1000.0

let time h f =
  let t0 = now_ms () in
  Fun.protect ~finally:(fun () -> observe h (now_ms () -. t0)) f

(* --- snapshots --- *)

type histo_stats = {
  n : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  total : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * histo_stats) list;
}

(* nearest-rank percentile over a sorted copy of the samples *)
let percentile sorted n p =
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 1 (min n rank) - 1)

let histo_stats h =
  Mutex.lock h.hlock;
  let n = h.hlen in
  let copy = Array.sub h.vals 0 n in
  Mutex.unlock h.hlock;
  Array.sort compare copy;
  {
    n;
    p50 = percentile copy n 50.0;
    p95 = percentile copy n 95.0;
    p99 = percentile copy n 99.0;
    max = (if n = 0 then 0.0 else copy.(n - 1));
    total = Array.fold_left ( +. ) 0.0 copy;
  }

let sorted_bindings tbl value =
  Mutex.lock reg_mutex;
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) tbl [] in
  Mutex.unlock reg_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) all
  |> List.map (fun (name, m) -> (name, value m))

let snapshot () =
  {
    counters = sorted_bindings counters count;
    gauges = sorted_bindings gauges gauge_value;
    histograms = sorted_bindings histograms histo_stats;
  }

let find_counter snap name = List.assoc_opt name snap.counters
let find_histogram snap name = List.assoc_opt name snap.histograms

let reset () =
  Mutex.lock reg_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.ccell 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.hlock;
      h.hlen <- 0;
      Mutex.unlock h.hlock)
    histograms;
  Mutex.unlock reg_mutex

(* --- JSON rendering, hand-rolled so the layer stays dependency-free --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_obj buf ~indent bindings render =
  let pad = String.make indent ' ' in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n%s\"%s\": " pad (json_escape name));
      render v)
    bindings;
  if bindings <> [] then begin
    Buffer.add_string buf "\n";
    Buffer.add_string buf (String.make (indent - 2) ' ')
  end;
  Buffer.add_string buf "}"

let to_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"counters\": ";
  json_obj buf ~indent:4 snap.counters (fun v ->
      Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ",\n  \"gauges\": ";
  json_obj buf ~indent:4 snap.gauges (fun v ->
      Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ",\n  \"histograms\": ";
  json_obj buf ~indent:4 snap.histograms (fun (s : histo_stats) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": \
            %.3f, \"max_ms\": %.3f, \"total_ms\": %.3f}"
           s.n s.p50 s.p95 s.p99 s.max s.total));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* --- OpenMetrics text exposition ---

   The same snapshot, in the Prometheus/OpenMetrics exposition format:
   counters as `<name>_total`, gauges verbatim, histograms as summaries
   (count/sum plus p50/p95 quantile samples). Metric names are the
   registry names with every non-[a-zA-Z0-9_] byte mapped to '_' and a
   "hoiho_" namespace prefix. *)

let om_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "hoiho_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let om_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.6g" v

let to_openmetrics snap =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" n v))
    snap.counters;
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" n v))
    snap.gauges;
  List.iter
    (fun (name, (s : histo_stats)) ->
      let n = om_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      Buffer.add_string buf
        (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" n (om_float s.p50));
      Buffer.add_string buf
        (Printf.sprintf "%s{quantile=\"0.95\"} %s\n" n (om_float s.p95));
      Buffer.add_string buf
        (Printf.sprintf "%s{quantile=\"0.99\"} %s\n" n (om_float s.p99));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.n);
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (om_float s.total)))
    snap.histograms;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* --- periodic exposition emitter ---

   Opt-in: a long learn run can be scraped mid-flight from a file. The
   emitter is one spare domain that rewrites [path] atomically
   (tmp + rename) every [period_s], polling its stop flag at 50 ms so
   shutdown is prompt; [stop_emitter] joins it and writes one final
   snapshot so the file always ends complete. *)

type emitter = {
  stop : bool Atomic.t;
  worker : unit Domain.t;
  epath : string;
}

(* pid-unique tmp name: two processes pointed at the same exposition
   path (or an emitter racing a final end-of-run writer) can never
   tear each other's tmp file; the rename stays the atomic commit *)
let write_file_atomic path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let write_openmetrics path = write_file_atomic path (to_openmetrics (snapshot ()))

let emit_openmetrics = write_openmetrics

let start_emitter ?(period_s = 5.0) ~path () =
  let stop = Atomic.make false in
  let worker =
    Domain.spawn (fun () ->
        let rec sleep remaining =
          if (not (Atomic.get stop)) && remaining > 0.0 then begin
            let nap = Float.min 0.05 remaining in
            Unix.sleepf nap;
            sleep (remaining -. nap)
          end
        in
        let rec loop () =
          sleep period_s;
          if not (Atomic.get stop) then begin
            (try emit_openmetrics path with Sys_error _ -> ());
            loop ()
          end
        in
        loop ())
  in
  { stop; worker; epath = path }

(* join BEFORE the final write: with the worker still running, its
   last periodic rewrite could land after (and clobber) the final
   snapshot, leaving a file missing the run's closing metrics *)
let stop_emitter e =
  Atomic.set e.stop true;
  Domain.join e.worker;
  emit_openmetrics e.epath
