(** Span-based tracing (DESIGN.md §10): hierarchical begin/end spans
    with key/value attributes, collected into a bounded lock-sharded
    ring buffer and exported as Chrome trace-event JSON (loadable in
    Perfetto / chrome://tracing) or as an indented decision-trace text.

    Overhead contract: tracing disabled costs one load of an
    [Atomic.t] per {!with_span} / {!add_attr} call site — no
    allocation, no locking, no clock read. Enabled, each completed
    span takes one monotonic-clock read at begin and one lock + ring
    store at end.

    Nesting: each domain keeps its own stack of live spans
    ({!Domain.DLS}), so synchronous callees nest under their caller
    automatically. Work fanned out over {!Hoiho_util.Pool} runs on
    other domains whose stacks are empty — the pool {!capture}s the
    submitter's context and installs it ({!with_ctx}) around each job,
    so implicit-parent spans created inside a job nest under the span
    the job was submitted from, keeping the span tree identical at
    every [HOIHO_JOBS] setting. Fan-out sites that open one span per
    job can still pass {!fanout_parent} explicitly; both roads lead to
    the same parent.

    Determinism: for a fixed-seed run, the canonical forest
    ({!canonical}) is byte-identical across jobs settings as long as
    no span was dropped ([trace.spans_dropped] = 0). Spans in the
    ["sched"] category (pool scheduling) are excluded from the
    canonical form, mirroring the pool.* counter exemption of §7. *)

type span = {
  id : int;
  parent : int option;
  name : string;
  cat : string;  (** "work" (default) or "sched" (scheduling-dependent) *)
  t_start_ns : int64;  (** monotonic; same epoch as [t_end_ns] only *)
  t_end_ns : int64;
  attrs : (string * string) list;  (** in attachment order *)
  domain : int;  (** numeric id of the domain that ran the span *)
}

(** {1 Enabling and configuration} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val configure : ?shards:int -> ?capacity:int -> unit -> unit
(** Reallocate the collector: [capacity] total completed-span slots
    (default 65536) spread over [shards] ring buffers (default 8).
    Discards previously collected spans. Only call while disabled. *)

val clear : unit -> unit
(** Drop every collected span and zero the recorded/dropped counters
    ([trace.spans_recorded], [trace.spans_dropped]). *)

(** {1 Recording} *)

type parent =
  | Stack  (** the innermost live span of the calling domain, if any *)
  | Root  (** force a root span *)
  | Span of int  (** explicit parent id, for pool fan-out *)

val with_span :
  ?cat:string ->
  ?parent:parent ->
  ?attrs:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] inside a span named [name]. The span is
    recorded when [f] returns or raises. When tracing is disabled this
    is exactly [f ()] after one atomic load. *)

val add_attr : string -> string -> unit
(** Attach a key/value pair to the calling domain's innermost live
    span. No-op when disabled or outside any span. *)

val current : unit -> int option
(** Id of the calling domain's innermost live span. *)

val fanout_parent : unit -> parent
(** The parent to pass to spans created on other domains on this
    span's behalf: [Span (current ())] when inside a span, [Root]
    otherwise. *)

type ctx
(** A captured span context: the innermost live span at capture time. *)

val capture : unit -> ctx
(** Capture the calling domain's current span context, to be installed
    around work executed later and/or elsewhere ({!with_ctx}). *)

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with [ctx] as the ambient span parent:
    spans [f] opens with [parent:Stack] and an empty local stack nest
    under the captured span. The executing domain's own live spans are
    masked for the duration, so a helping submitter's current work
    never becomes the accidental parent of another batch's job. Used
    by {!Hoiho_util.Pool} around every job. *)

val sampled : string -> bool
(** Deterministic 1-in-64 subject sampling for very hot call sites
    (e.g. {!Hoiho_rx.Engine.exec}): keyed on the subject's bytes, so
    the sampled set is a function of the inputs, never of
    scheduling. *)

(** {1 Collection and export} *)

val spans : unit -> span list
(** Completed spans, sorted by (start time, id). *)

val dropped : unit -> int
(** Spans discarded because their shard's ring was full. *)

type tree = { node : span; children : tree list }

val forest : ?include_sched:bool -> span list -> tree list
(** Parent-link reconstruction. Orphans (parent dropped or never
    recorded) surface as roots. [include_sched] defaults to [false]:
    ["sched"]-category spans are pruned (with their subtrees
    reattached to the nearest kept ancestor — scheduling spans never
    have deterministic children by construction, so in practice this
    only removes leaves). *)

val canonical : ?include_sched:bool -> span list -> string
(** A timestamp-free canonical rendering of {!forest}: every node is
    [name {k=v ...}] and siblings are sorted by their full rendered
    subtree, so two runs with the same logical structure produce
    byte-identical strings regardless of domain scheduling. *)

val render_text : ?include_sched:bool -> span list -> string
(** Human-readable indented tree with per-span durations — the
    pretty-printed decision trace behind [hoiho explain]. Sibling
    order is span start order. *)

val to_chrome_json : ?epoch_ms:float -> span list -> string
(** Chrome trace-event JSON (the ["traceEvents"] array-of-["ph":"X"]
    form), timestamps in microseconds relative to the earliest span.
    [epoch_ms] (default: wall clock now) is recorded once under
    ["otherData"] so consumers can anchor the monotonic timeline to
    wall time. The output parses with {!Hoiho_util.Json.parse}. *)
