type span = {
  id : int;
  parent : int option;
  name : string;
  cat : string;
  t_start_ns : int64;
  t_end_ns : int64;
  attrs : (string * string) list;
  domain : int;
}

(* the whole subsystem hides behind this one flag: every public entry
   point loads it first and falls through to the untraced path, so a
   disabled build pays one Atomic.get per call site *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

let c_recorded = Obs.counter "trace.spans_recorded"
let c_dropped = Obs.counter "trace.spans_dropped"

(* --- bounded lock-sharded ring collector ---

   Completed spans land in one of [shards] rings, picked by the
   recording domain's id so concurrent workers rarely contend on the
   same lock. A full ring drops the incoming span (never overwrites):
   parents complete after their children, so drop-newest sheds whole
   subtrees from the top rather than punching holes in the middle. *)

type shard = {
  lock : Mutex.t;
  mutable buf : span option array;
  mutable len : int;
}

type collector = { shards : shard array }

let make_collector ~shards ~capacity =
  let shards = max 1 shards in
  let per = max 1 ((capacity + shards - 1) / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); buf = Array.make per None; len = 0 });
  }

let collector = ref (make_collector ~shards:8 ~capacity:65536)

let configure ?(shards = 8) ?(capacity = 65536) () =
  collector := make_collector ~shards ~capacity

let clear () =
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      Array.fill sh.buf 0 (Array.length sh.buf) None;
      sh.len <- 0;
      Mutex.unlock sh.lock)
    !collector.shards;
  Obs.set_counter c_recorded 0;
  Obs.set_counter c_dropped 0

let record sp =
  let c = !collector in
  let sh = c.shards.(sp.domain mod Array.length c.shards) in
  Mutex.lock sh.lock;
  if sh.len < Array.length sh.buf then begin
    sh.buf.(sh.len) <- Some sp;
    sh.len <- sh.len + 1;
    Mutex.unlock sh.lock;
    Obs.incr c_recorded
  end
  else begin
    Mutex.unlock sh.lock;
    Obs.incr c_dropped
  end

let dropped () = Obs.count c_dropped

let spans () =
  let acc = ref [] in
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      for i = sh.len - 1 downto 0 do
        match sh.buf.(i) with Some sp -> acc := sp :: !acc | None -> ()
      done;
      Mutex.unlock sh.lock)
    !collector.shards;
  List.sort (fun a b -> compare (a.t_start_ns, a.id) (b.t_start_ns, b.id)) !acc

(* --- live spans and the per-domain stack --- *)

type live = {
  lid : int;
  lparent : int option;
  lname : string;
  lcat : string;
  lstart : int64;
  mutable lattrs : (string * string) list;  (* reversed *)
}

let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1

let stack_key : live list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* ambient parent: the span context a pool job was submitted under,
   installed by [with_ctx] on whichever domain executes the job. It is
   consulted only when the domain's own stack is empty, so synchronous
   nesting always wins. *)
let ambient_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let now_ns () = Monotonic_clock.now ()

type parent = Stack | Root | Span of int

let current () =
  if not (enabled ()) then None
  else
    match !(Domain.DLS.get stack_key) with
    | l :: _ -> Some l.lid
    | [] -> !(Domain.DLS.get ambient_key)

let fanout_parent () =
  match current () with Some id -> Span id | None -> Root

(* --- span-context propagation across pool fan-out --- *)

type ctx = int option

let capture () = current ()

let with_ctx ctx f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let amb = Domain.DLS.get ambient_key in
    let saved_stack = !stack and saved_amb = !amb in
    (* mask the executing domain's own stack: a helping submitter runs
       other batches' jobs from inside its own live spans, and those
       jobs must nest under the span they were SUBMITTED from, not
       under whatever the executor happened to be doing *)
    stack := [];
    amb := ctx;
    Fun.protect
      ~finally:(fun () ->
        stack := saved_stack;
        amb := saved_amb)
      f
  end

let domain_id () = (Domain.self () :> int)

let with_span ?(cat = "work") ?(parent = Stack) ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent_id =
      match parent with
      | Stack -> (
          match !stack with
          | l :: _ -> Some l.lid
          | [] -> !(Domain.DLS.get ambient_key))
      | Root -> None
      | Span id -> Some id
    in
    let live =
      {
        lid = fresh_id ();
        lparent = parent_id;
        lname = name;
        lcat = cat;
        lstart = now_ns ();
        lattrs = List.rev attrs;
      }
    in
    stack := live :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | l :: rest when l == live -> stack := rest
        | _ ->
            (* a callee escaped its span (e.g. an effect); drop down to
               self-repair rather than corrupt the stack *)
            stack := List.filter (fun l -> not (l == live)) !stack);
        record
          {
            id = live.lid;
            parent = live.lparent;
            name = live.lname;
            cat = live.lcat;
            t_start_ns = live.lstart;
            t_end_ns = now_ns ();
            attrs = List.rev live.lattrs;
            domain = domain_id ();
          })
      f
  end

let add_attr key value =
  if enabled () then
    match !(Domain.DLS.get stack_key) with
    | live :: _ -> live.lattrs <- (key, value) :: live.lattrs
    | [] -> ()

(* deterministic subject sampling for hot call sites: Hashtbl.hash is a
   pure function of the bytes, so the sampled set depends only on the
   inputs — never on domain scheduling *)
let sampled s = Hashtbl.hash s land 63 = 0

(* --- tree reconstruction --- *)

type tree = { node : span; children : tree list }

let forest ?(include_sched = false) (sps : span list) =
  let sps =
    if include_sched then sps else List.filter (fun s -> s.cat <> "sched") sps
  in
  let ids = Hashtbl.create (List.length sps * 2) in
  List.iter (fun s -> Hashtbl.replace ids s.id ()) sps;
  let children : (int, span list) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  (* [sps] arrives start-sorted; build child lists in reverse so each
     final list is again in start order *)
  List.iter
    (fun s ->
      match s.parent with
      | Some p when Hashtbl.mem ids p ->
          Hashtbl.replace children p (s :: Option.value (Hashtbl.find_opt children p) ~default:[])
      | _ -> roots := s :: !roots)
    (List.rev sps);
  let rec build s =
    {
      node = s;
      children =
        List.map build (Option.value (Hashtbl.find_opt children s.id) ~default:[]);
    }
  in
  List.map build !roots

(* --- canonical (timestamp-free, order-free) rendering --- *)

let canonical ?include_sched sps =
  let buf = Buffer.create 4096 in
  let rec render depth t =
    let b = Buffer.create 128 in
    Buffer.add_string b (String.make (2 * depth) ' ');
    Buffer.add_string b t.node.name;
    List.iter
      (fun (k, v) ->
        Buffer.add_string b " ";
        Buffer.add_string b k;
        Buffer.add_string b "=";
        Buffer.add_string b v)
      t.node.attrs;
    Buffer.add_char b '\n';
    let subtrees = List.sort compare (List.map (render (depth + 1)) t.children) in
    List.iter (Buffer.add_string b) subtrees;
    Buffer.contents b
  in
  let tops = List.sort compare (List.map (render 0) (forest ?include_sched sps)) in
  List.iter (Buffer.add_string buf) tops;
  Buffer.contents buf

(* --- human-readable decision trace --- *)

let render_text ?include_sched sps =
  let buf = Buffer.create 4096 in
  let rec go depth t =
    let dur_ms =
      Int64.to_float (Int64.sub t.node.t_end_ns t.node.t_start_ns) /. 1e6
    in
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_string buf t.node.name;
    Buffer.add_string buf (Printf.sprintf "  (%.3f ms)" dur_ms);
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "\n%s| %s = %s" (String.make (2 * depth) ' ') k v))
      t.node.attrs;
    Buffer.add_char buf '\n';
    List.iter (go (depth + 1)) t.children
  in
  List.iter (go 0) (forest ?include_sched sps);
  Buffer.contents buf

(* --- Chrome trace-event export ---

   Hand-rolled like Obs.to_json: hoiho_obs sits below hoiho_util in the
   dependency order, so it cannot use Hoiho_util.Json — but the output
   must (and does: bin/trace_check.ml, test_trace) parse with that
   strict parser. *)

let add_str buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Obs.json_escape s);
  Buffer.add_char buf '"'

let to_chrome_json ?epoch_ms sps =
  let epoch_ms = match epoch_ms with Some v -> v | None -> Obs.epoch_ms () in
  let t0 =
    List.fold_left
      (fun acc s -> if s.t_start_ns < acc then s.t_start_ns else acc)
      (match sps with [] -> 0L | s :: _ -> s.t_start_ns)
      sps
  in
  let us ns = Int64.to_float (Int64.sub ns t0) /. 1e3 in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  {\"name\": ";
      add_str buf s.name;
      Buffer.add_string buf ", \"cat\": ";
      add_str buf s.cat;
      Buffer.add_string buf
        (Printf.sprintf ", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {\"span_id\": %d, \"parent_id\": %s"
           (us s.t_start_ns)
           (Int64.to_float (Int64.sub s.t_end_ns s.t_start_ns) /. 1e3)
           s.domain s.id
           (match s.parent with Some p -> string_of_int p | None -> "null"));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf ", ";
          add_str buf k;
          Buffer.add_string buf ": ";
          add_str buf v)
        s.attrs;
      Buffer.add_string buf "}}")
    sps;
  Buffer.add_string buf
    (Printf.sprintf
       "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"trace_start_epoch_ms\": %.3f, \"dropped_spans\": %d}}\n"
       epoch_ms (dropped ()));
  Buffer.contents buf
