(** Sliding-window aggregates: a ring of fixed-duration buckets with
    deterministic, clock-injected rotation.

    Unlike {!Obs.histogram} (cumulative since process start), a window
    answers "what happened over the last N seconds" — the shape a
    health evaluator needs. Every operation takes the current time as
    an explicit [~now_ms] argument, so tests can drive a synthetic
    clock and replay byte-identical snapshots; the daemon passes
    {!Obs.now_ms}.

    Rotation contract (DESIGN.md §14): time is quantized into epochs
    [epoch = floor (now_ms / bucket_ms)]. A bucket slot holds the
    samples of exactly one epoch ([slot = epoch mod nbuckets]); writing
    into a slot whose stored epoch differs resets it first, so an idle
    gap longer than the window span needs no background sweeper —
    stale epochs simply fall outside the span filter at snapshot time.

    Recording is lock-sharded (each domain hashes to a shard with its
    own mutex and ring) so concurrent writers do not contend; snapshots
    merge all shards and sort the in-window samples, which makes the
    result a pure function of the recorded (value, epoch) multiset —
    independent of shard assignment, arrival order, and jobs count. *)

type t

val create : ?shards:int -> bucket_ms:float -> nbuckets:int -> unit -> t
(** A window spanning [nbuckets * bucket_ms] milliseconds. [shards]
    defaults to 8; [bucket_ms] must be positive and [nbuckets] at
    least 1. *)

val record : t -> now_ms:float -> float -> unit
(** Record one sample at time [now_ms], rotating the target bucket if
    its epoch has passed. For event-count windows (errors, sheds)
    record any value and use {!stats}.n. *)

type stats = {
  n : int;  (** samples inside the window span *)
  rate_per_s : float;  (** n / window span in seconds *)
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  sum : float;
}

val stats : t -> now_ms:float -> stats
(** Summary of every sample whose epoch lies within the window span
    ending at [now_ms]. Empty window yields all-zero stats. *)

val samples : t -> now_ms:float -> float array
(** The in-window samples themselves, sorted ascending — the
    deterministic merged view {!stats} is computed from. Used by the
    calibration-drift monitor to re-bucket served confidences. *)

val span_ms : t -> float
val bucket_ms : t -> float
val nbuckets : t -> int
