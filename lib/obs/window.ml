(* Sliding-window aggregates over a ring of epoch-stamped buckets.

   The determinism story: a sample recorded at [now_ms] lands in epoch
   [floor (now_ms / bucket_ms)] no matter which domain records it or
   which shard it hashes to, and [snapshot_samples] merges every shard
   and sorts — so the visible window state is a pure function of the
   recorded (value, now_ms) multiset. jobs=1 and jobs=4 runs that
   record the same samples at the same injected clock see identical
   stats, which is what the replay tests pin. *)

type bucket = {
  mutable bepoch : int;  (* which epoch this slot currently holds *)
  mutable bvals : float array;
  mutable blen : int;
}

type shard = { lock : Mutex.t; buckets : bucket array }

type t = {
  bucket_ms : float;
  nbuckets : int;
  shards : shard array;
}

let create ?(shards = 8) ~bucket_ms ~nbuckets () =
  if not (bucket_ms > 0.0) then invalid_arg "Window.create: bucket_ms <= 0";
  if nbuckets < 1 then invalid_arg "Window.create: nbuckets < 1";
  let shards = max 1 shards in
  let mk_shard () =
    {
      lock = Mutex.create ();
      buckets =
        Array.init nbuckets (fun _ ->
            { bepoch = min_int; bvals = Array.make 16 0.0; blen = 0 });
    }
  in
  { bucket_ms; nbuckets; shards = Array.init shards (fun _ -> mk_shard ()) }

let span_ms t = t.bucket_ms *. float_of_int t.nbuckets
let bucket_ms t = t.bucket_ms
let nbuckets t = t.nbuckets
let epoch_of t now_ms = int_of_float (Float.floor (now_ms /. t.bucket_ms))

let record t ~now_ms v =
  let epoch = epoch_of t now_ms in
  let shard =
    t.shards.((Domain.self () :> int) mod Array.length t.shards)
  in
  Mutex.lock shard.lock;
  let b = shard.buckets.(((epoch mod t.nbuckets) + t.nbuckets) mod t.nbuckets) in
  if b.bepoch <> epoch then begin
    (* lazy rotation: the slot last held a different epoch's samples —
       drop them, this slot now belongs to [epoch] *)
    b.bepoch <- epoch;
    b.blen <- 0
  end;
  if b.blen = Array.length b.bvals then begin
    let bigger = Array.make (2 * b.blen) 0.0 in
    Array.blit b.bvals 0 bigger 0 b.blen;
    b.bvals <- bigger
  end;
  b.bvals.(b.blen) <- v;
  b.blen <- b.blen + 1;
  Mutex.unlock shard.lock

(* every sample whose epoch is within [cur - nbuckets + 1, cur] *)
let samples t ~now_ms =
  let cur = epoch_of t now_ms in
  let oldest = cur - t.nbuckets + 1 in
  let acc = ref [] and total = ref 0 in
  Array.iter
    (fun shard ->
      Mutex.lock shard.lock;
      Array.iter
        (fun b ->
          if b.bepoch >= oldest && b.bepoch <= cur && b.blen > 0 then begin
            acc := Array.sub b.bvals 0 b.blen :: !acc;
            total := !total + b.blen
          end)
        shard.buckets;
      Mutex.unlock shard.lock)
    t.shards;
  let out = Array.make !total 0.0 in
  let off = ref 0 in
  List.iter
    (fun chunk ->
      Array.blit chunk 0 out !off (Array.length chunk);
      off := !off + Array.length chunk)
    !acc;
  Array.sort compare out;
  out

type stats = {
  n : int;
  rate_per_s : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  sum : float;
}

let percentile sorted n p =
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 1 (min n rank) - 1)

let stats t ~now_ms =
  let sorted = samples t ~now_ms in
  let n = Array.length sorted in
  {
    n;
    rate_per_s = float_of_int n /. (span_ms t /. 1000.0);
    p50 = percentile sorted n 50.0;
    p95 = percentile sorted n 95.0;
    p99 = percentile sorted n 99.0;
    max = (if n = 0 then 0.0 else sorted.(n - 1));
    sum = Array.fold_left ( +. ) 0.0 sorted;
  }
