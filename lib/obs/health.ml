(* SLO objectives as data, windowed measurements, burn-rate evaluation.

   Kept Json-free on purpose: lib/obs sits below lib/util in the
   dependency order, so everything here is plain records and floats;
   the serving layer (lib/net) renders states and window snapshots as
   strict JSON. *)

type state = Ok | Degraded of string list | Failing of string list

let state_to_int = function Ok -> 0 | Degraded _ -> 1 | Failing _ -> 2

let state_label = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Failing _ -> "failing"

let state_reasons = function Ok -> [] | Degraded rs | Failing rs -> rs

let render = function
  | Ok -> "ok"
  | (Degraded rs | Failing rs) as s ->
      Printf.sprintf "%s: %s" (state_label s) (String.concat "; " rs)

(* --- objectives --- *)

type objective = { metric : string; max_value : float; fail_ratio : float }

let default_objectives =
  [
    { metric = "latency_p99_ms"; max_value = 5000.0; fail_ratio = 2.0 };
    { metric = "error_rate"; max_value = 1.0; fail_ratio = 2.0 };
    { metric = "shed_rate"; max_value = 1.0; fail_ratio = 2.0 };
    { metric = "calibration_drift"; max_value = 0.5; fail_ratio = 4.0 };
  ]

let evaluate ~objectives ~measurements =
  let degraded = ref [] and failing = ref [] in
  List.iter
    (fun o ->
      match List.assoc_opt o.metric measurements with
      | None -> ()
      | Some v ->
          if o.max_value > 0.0 then begin
            let burn = v /. o.max_value in
            if burn > 1.0 then begin
              let reason =
                Printf.sprintf "%s %.3f > budget %.3f (burn %.2f)" o.metric v
                  o.max_value burn
              in
              if burn >= o.fail_ratio then failing := reason :: !failing
              else degraded := reason :: !degraded
            end
          end)
    objectives;
  match (List.rev !failing, List.rev !degraded) with
  | [], [] -> Ok
  | [], ds -> Degraded ds
  | fs, ds -> Failing (fs @ ds)

(* --- calibration drift --- *)

let drift_min_samples = 20

let decile_histogram samples =
  let masses = Array.make 10 0.0 in
  let n = Array.length samples in
  if n = 0 then masses
  else begin
    Array.iter
      (fun c ->
        let c = Float.max 0.0 (Float.min 1.0 c) in
        let i = min 9 (int_of_float (c *. 10.0)) in
        masses.(i) <- masses.(i) +. 1.0)
      samples;
    Array.map (fun m -> m /. float_of_int n) masses
  end

let drift ~expected ~observed =
  let n = min (Array.length expected) (Array.length observed) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (expected.(i) -. observed.(i))
  done;
  0.5 *. !acc

(* --- monitor --- *)

type monitor = {
  mobjectives : objective list;
  latency : Window.t;
  errors : Window.t;
  shed : Window.t;
  confidence : Window.t;
  profile : float array option Atomic.t;
}

let create_monitor ?(objectives = default_objectives) ?(bucket_ms = 5000.0)
    ?(nbuckets = 12) ?(shards = 8) () =
  let w () = Window.create ~shards ~bucket_ms ~nbuckets () in
  {
    mobjectives = objectives;
    latency = w ();
    errors = w ();
    shed = w ();
    confidence = w ();
    profile = Atomic.make None;
  }

let objectives m = m.mobjectives

let record_request m ~now_ms ~latency_ms ~status ~shed =
  Window.record m.latency ~now_ms latency_ms;
  if status >= 400 then Window.record m.errors ~now_ms 1.0;
  if shed then Window.record m.shed ~now_ms 1.0

let record_confidence m ~now_ms c = Window.record m.confidence ~now_ms c
let set_expected_profile m p = Atomic.set m.profile p
let expected_profile m = Atomic.get m.profile

let measurements m ~now_ms =
  let lat = Window.stats m.latency ~now_ms in
  let total = float_of_int (max 1 lat.Window.n) in
  let nerr = (Window.stats m.errors ~now_ms).Window.n in
  let nshed = (Window.stats m.shed ~now_ms).Window.n in
  let base =
    [
      ("latency_p50_ms", lat.Window.p50);
      ("latency_p99_ms", lat.Window.p99);
      ("error_rate", float_of_int nerr /. total);
      ("shed_rate", float_of_int nshed /. total);
    ]
  in
  match Atomic.get m.profile with
  | None -> base
  | Some expected ->
      let confs = Window.samples m.confidence ~now_ms in
      if Array.length confs < drift_min_samples then base
      else
        let observed = decile_histogram confs in
        base @ [ ("calibration_drift", drift ~expected ~observed) ]

let evaluate_monitor m ~now_ms =
  evaluate ~objectives:m.mobjectives ~measurements:(measurements m ~now_ms)

let latency_window m = m.latency
let error_window m = m.errors
let shed_window m = m.shed
let confidence_window m = m.confidence
