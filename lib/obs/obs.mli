(** Process-wide observability: named counters, high-water gauges, and
    duration histograms, collected into a registry that can be
    snapshotted and rendered as JSON.

    The layer is deliberately small and self-contained (stdlib + unix
    for the wall clock) so every library in the tree can depend on it
    without cycles.

    Thread-safety contract (see DESIGN.md §7): counters and gauges are
    [Atomic]-based and safe to bump from any domain of the work pool
    without locks; histograms take a per-histogram mutex on [observe],
    which is fine at their call rate (per pipeline stage, not per
    hostname). Metric *registration* ([counter]/[gauge]/[histogram]) is
    guarded by a registry mutex and idempotent: the same name always
    yields the same underlying cell, so modules may register at
    initialization or lazily from worker domains. *)

type counter
type gauge
type histogram

(** {1 Counters} — monotonic event counts, lock-free. *)

val counter : string -> counter
(** Register (or look up) the counter named [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set_counter : counter -> int -> unit
(** Reset hook for callers that owned ad-hoc counters before this layer
    existed (e.g. {!Hoiho_rx.Engine.reset_prefilter_stats}). *)

(** {1 Gauges} — high-water marks: [observe_gauge] keeps the maximum
    value ever reported, lock-free via compare-and-set. *)

val gauge : string -> gauge
val observe_gauge : gauge -> int -> unit

val set_gauge : gauge -> int -> unit
(** Overwrite the gauge with a current value (not a high-water mark) —
    for level-style gauges such as the health state or calibration
    drift, where the latest reading is the truth. *)

val gauge_value : gauge -> int

(** {1 Histograms} — duration samples in milliseconds with
    count/p50/p95/p99/max/total summaries. *)

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one duration (milliseconds). *)

val now_ms : unit -> float
(** Monotonic milliseconds ([CLOCK_MONOTONIC]; arbitrary epoch — use
    differences only). Immune to wall-clock steps, so histogram
    durations are never negative. *)

val epoch_ms : unit -> float
(** Wall-clock epoch milliseconds ([gettimeofday]) — only for values
    that leave the process as absolute times (JSON anchors). *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and records its wall-clock duration in [h],
    including when [f] raises. *)

(** {1 Snapshots} *)

type histo_stats = {
  n : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  total : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  histograms : (string * histo_stats) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** A consistent-enough copy of every registered metric. Counters are
    read individually (no global pause), which is exact whenever the
    process is quiescent — the intended use: snapshot after a run. *)

val find_counter : snapshot -> string -> int option
val find_histogram : snapshot -> string -> histo_stats option

val reset : unit -> unit
(** Zero every registered metric (counters, gauges and histogram
    samples). Registration survives; cells are reused. *)

val to_json : snapshot -> string
(** Render as a stable JSON object:
    [{"counters": {..}, "gauges": {..}, "histograms": {"name":
    {"count": n, "p50_ms": x, "p95_ms": x, "p99_ms": x, "max_ms": x,
    "total_ms": x}}}]. Keys are sorted, so equal snapshots render
    equal strings. *)

val to_openmetrics : snapshot -> string
(** The snapshot in OpenMetrics/Prometheus text exposition: counters
    as [hoiho_<name>_total], gauges verbatim, histograms as summaries
    with p50/p95/p99 quantile samples, terminated by [# EOF]. Names are
    sanitized (non-alphanumeric bytes become ['_']) and prefixed with
    [hoiho_]; keys are sorted, so equal snapshots render equal
    strings. *)

val json_escape : string -> string
(** RFC 8259 string-body escaping (quotes, backslash, control bytes)
    shared with {!Trace.to_chrome_json}. *)

(** {1 Periodic exposition} *)

val write_openmetrics : string -> unit
(** Write {!to_openmetrics} of a fresh {!snapshot} to a file,
    atomically (pid-unique tmp + rename). The one writer both the
    periodic emitter and end-of-run callers use, so
    [--openmetrics] with and without [--openmetrics-interval]
    produce the same final file the same way. *)

type emitter

val start_emitter : ?period_s:float -> path:string -> unit -> emitter
(** Spawn a domain that rewrites [path] (atomically: tmp + rename)
    with {!to_openmetrics} of a fresh {!snapshot} every [period_s]
    seconds (default 5.0), so long runs can be scraped from the
    file. *)

val stop_emitter : emitter -> unit
(** Stop and join the emitter, then write one final snapshot — the
    file always ends with the run's complete metrics. *)
