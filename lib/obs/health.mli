(** Runtime health: SLO objectives as data, a windowed monitor, and a
    pure evaluator producing a typed state (DESIGN.md §14).

    The evaluator is burn-rate shaped: each objective declares a budget
    ([max_value]) for one windowed metric, and the burn is the measured
    value over the budget. Burn ≤ 1 is inside budget; 1 < burn <
    [fail_ratio] is {e Degraded} (budget exceeded, not yet an
    emergency); burn ≥ [fail_ratio] is {e Failing} (the state load
    balancers act on — [/healthz] returns 503). The state carries the
    reasons verbatim so operators see {e which} objectives burned.

    Everything here is clock-injected and pure given the window
    contents: [evaluate] is a function of (objectives, measurements),
    and measurements come from {!Window} snapshots at an explicit
    [~now_ms] — tests replay the whole state machine deterministically. *)

type state = Ok | Degraded of string list | Failing of string list

val state_to_int : state -> int
(** [Ok] → 0, [Degraded] → 1, [Failing] → 2 — the [health.state]
    gauge encoding. *)

val state_label : state -> string
(** ["ok"] / ["degraded"] / ["failing"]. *)

val state_reasons : state -> string list

val render : state -> string
(** Human-readable one-liner: ["ok"], ["degraded: <r>; <r>"],
    ["failing: <r>; <r>"] — the [/healthz] body (with trailing
    newline added by the server). *)

(** {1 Objectives} *)

type objective = {
  metric : string;
      (** which measurement this budgets: ["latency_p99_ms"],
          ["error_rate"], ["shed_rate"], ["calibration_drift"] *)
  max_value : float;  (** the budget; must be positive *)
  fail_ratio : float;
      (** burn (value / max_value) at or above which the objective is
          failing rather than merely degraded; must be > 1 *)
}

val default_objectives : objective list
(** Deliberately generous budgets (p99 ≤ 5000 ms, error rate ≤ 1.0,
    shed rate ≤ 1.0, drift ≤ 0.5 with fail at 4×) so a daemon run
    without [--slo] only alarms in extremis; operators declare real
    budgets in an SLO file. *)

val evaluate :
  objectives:objective list -> measurements:(string * float) list -> state
(** Pure: fold every objective over the measurement alist. An
    objective whose metric has no measurement is skipped (not a
    failure — e.g. drift before any confidence is served). Reasons
    name the metric, measured value, budget, and burn. *)

(** {1 Monitor} — the windows a serving daemon feeds. *)

type monitor

val create_monitor :
  ?objectives:objective list ->
  ?bucket_ms:float ->
  ?nbuckets:int ->
  ?shards:int ->
  unit ->
  monitor
(** Defaults: {!default_objectives}, 12 buckets of 5000 ms (a 60 s
    window), 8 shards. *)

val objectives : monitor -> objective list

val record_request :
  monitor -> now_ms:float -> latency_ms:float -> status:int -> shed:bool -> unit
(** One served HTTP request: latency into the latency window; status ≥
    400 also into the error window; [shed] also into the shed window. *)

val record_confidence : monitor -> now_ms:float -> float -> unit
(** One served answer's confidence, for the drift comparison. *)

val set_expected_profile : monitor -> float array option -> unit
(** The model snapshot's expected confidence decile profile (10 masses
    summing to ~1), stored at save-model time. [None] disables the
    drift measurement. Swapped on hot reload. *)

val expected_profile : monitor -> float array option

val measurements : monitor -> now_ms:float -> (string * float) list
(** The windowed measurement alist the evaluator consumes:
    [latency_p50_ms], [latency_p99_ms], [error_rate], [shed_rate],
    and — when an expected profile is set and at least
    [drift_min_samples] confidences are in-window —
    [calibration_drift]. Rates are per-request over the latency
    window's count. *)

val evaluate_monitor : monitor -> now_ms:float -> state
(** [evaluate ~objectives ~measurements] at [now_ms]. *)

val latency_window : monitor -> Window.t
val error_window : monitor -> Window.t
val shed_window : monitor -> Window.t
val confidence_window : monitor -> Window.t

(** {1 Calibration drift} *)

val decile_histogram : float array -> float array
(** Bucket confidences in [0,1] into 10 decile masses normalized to
    sum 1 (all-zero for an empty input). Confidence 1.0 lands in the
    top decile. *)

val drift : expected:float array -> observed:float array -> float
(** Total-variation distance [0.5 * Σ |e_i − o_i|] between two decile
    mass vectors — 0 when identical, 1 when disjoint. *)

val drift_min_samples : int
(** In-window confidence count below which drift is not measured (too
    few samples to call a distribution shifted). *)
