module Prng = Hoiho_util.Prng
module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Synth = Hoiho_geodb.Synth

type kind = GeoConsistent | GeoSmall | GeoMixed | NoGeo

type site = {
  city : City.t;
  code : string;
  custom : bool;
  n_routers : int;
  tpl : int option; (* force a specific template for this site's hostnames *)
}

type t = {
  suffix : string;
  asn : int;
  conv : Conv.t;
  sites : site list;
  kind : kind;
  p_customer : float;
  p_embed : float;
  p_stale : float;
  p_responsive : float;
  hostnames_per_router : int * int;
}

let codebook t =
  List.filter_map
    (fun s -> if s.code = "" then None else Some (s.code, City.key s.city))
    t.sites

let customs t =
  List.filter_map
    (fun s -> if s.custom && s.code <> "" then Some (s.code, City.key s.city) else None)
    t.sites

(* --- helpers --- *)

let tlds =
  [| ".net"; ".com"; ".net"; ".com"; ".net.au"; ".co.uk"; ".de"; ".fr";
     ".it"; ".jp"; ".net.br"; ".pl"; ".cz"; ".ch"; ".at"; ".se"; ".org";
     ".nl"; ".es"; ".co.nz" |]

let brand_words =
  [| "tel"; "net"; "com"; "link"; "fiber"; "wave"; "path"; "core"; "ix";
     "band"; "line"; "grid"; "span"; "loop"; "beam" |]

let random_suffix rng =
  Synth.town_name rng ^ Prng.pick rng brand_words ^ Prng.pick rng tlds

let pick_cities rng db n pred =
  let eligible = List.filter pred (Db.cities db) in
  let weighted =
    Array.of_list
      (List.map (fun c -> (c, sqrt (float_of_int (max 1 c.City.population)))) eligible)
  in
  let chosen = Hashtbl.create n in
  let out = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length chosen < n && !attempts < n * 30 do
    incr attempts;
    let city = Prng.weighted rng weighted in
    let key = City.key city in
    if not (Hashtbl.mem chosen key) then begin
      Hashtbl.replace chosen key ();
      out := city :: !out
    end
  done;
  List.rev !out

let role rng = Prng.pick rng Conv.role_pool

(* template families; [geo_digits] controls whether the geohint token
   carries trailing digits, which most conventions do *)
let random_templates rng hint_kind ~uses_cc ~uses_state =
  let r1 = role rng and r2 = role rng in
  let geo = if Prng.float rng 1.0 < 0.75 then Conv.GeoDig else Conv.Geo in
  let tail =
    (if uses_state then [ [ Conv.State ] ] else [])
    @ (if uses_cc then [ [ Conv.Cc ] ] else [])
    @ (if Prng.float rng 1.0 < 0.3 then [ [ Conv.Const (Synth.town_name rng) ] ]
       else [])
  in
  let family = Prng.int rng 5 in
  let core =
    match (hint_kind, family) with
    | Conv.Clli, _ when Prng.float rng 1.0 < 0.2 ->
        (* windstream-style split CLLI *)
        [ [ Conv.Iface ]; [ Conv.GeoSplitClli ] ]
    | _, 0 -> [ [ Conv.Iface ]; [ Conv.Role r1 ]; [ geo ] ]
    | _, 1 -> [ [ Conv.Iface ]; [ Conv.RoleOf [ r1; r2 ] ]; [ geo ] ]
    | _, 2 -> [ [ Conv.Junk; Conv.Junk ]; [ Conv.Role r1 ]; [ geo ] ]
    | _, 3 -> [ [ Conv.Iface ]; [ Conv.Role r1; geo ] ]
    | _, _ -> [ [ Conv.Iface ]; [ geo ]; [ Conv.RoleBare r1 ] ]
  in
  [ core @ tail ]

let nogeo_templates rng =
  let r1 = role rng and r2 = role rng in
  let family = Prng.int rng 7 in
  let t =
    match family with
    | 0 -> [ [ Conv.Iface ]; [ Conv.Role r1 ]; [ Conv.Junk ] ]
    | 1 -> [ [ Conv.Junk ]; [ Conv.Num ]; [ Conv.Role r1 ] ]
    | 2 -> [ [ Conv.Junk; Conv.Num ]; [ Conv.RoleBare r1 ] ]
    | 3 -> [ [ Conv.Iface ]; [ Conv.Junk ] ]
    | 4 -> [ [ Conv.Iface ]; [ Conv.Role r1 ] ]
    | 5 -> [ [ Conv.Iface ]; [ Conv.RoleBare r1; Conv.Num ]; [ Conv.Role r2 ] ]
    | _ -> [ [ Conv.Num ]; [ Conv.Role r1 ]; [ Conv.RoleBare r2 ] ]
  in
  [ t ]

(* Convention migration (the drift axis of ROADMAP open item 2): the
   operator keeps its suffix, sites, and embedded codes but re-rolls
   its hostname templates — new roles, delimiters, field order — as
   happens after re-brandings and management-system changes. Site
   template pins are cleared: the migrated fleet renders uniformly
   under the new convention. *)
let migrate rng t =
  let templates =
    match t.conv.Conv.hint_kind with
    | None -> nogeo_templates rng
    | Some hk ->
        random_templates rng hk ~uses_cc:t.conv.Conv.uses_cc
          ~uses_state:t.conv.Conv.uses_state
  in
  {
    t with
    conv = { t.conv with Conv.templates };
    sites = List.map (fun s -> { s with tpl = None }) t.sites;
  }

let hint_kind_weights =
  [|
    (Conv.Iata, 0.47); (Conv.CityName, 0.36); (Conv.Clli, 0.12);
    (Conv.Locode, 0.03); (Conv.FacilityAddr, 0.02);
  |]

let cc_probability = function
  | Conv.Iata -> 0.24
  | Conv.CityName -> 0.03
  | Conv.Clli -> 0.05
  | Conv.Locode -> 0.0
  | Conv.FacilityAddr -> 0.0

let state_probability = function
  | Conv.Iata -> 0.02
  | Conv.CityName -> 0.04
  | Conv.Clli -> 0.02
  | Conv.Locode -> 0.0
  | Conv.FacilityAddr -> 0.5

let sites_for ?tpl rng db hint_kind cities ~p_dev =
  List.filter_map
    (fun city ->
      match Codes.code_for rng db hint_kind ~p_dev city with
      | None -> None
      | Some (code, custom) ->
          Some { city; code; custom; n_routers = 2 + Prng.int rng 3; tpl })
    cities

(* two geohint types under one suffix: template 0 carries kind A sites,
   template 1 kind B sites *)
let random_multikind rng db =
  let kind_a, kind_b =
    Prng.pick_list rng
      [ (Conv.Iata, Conv.CityName); (Conv.Clli, Conv.CityName);
        (Conv.Iata, Conv.Clli) ]
  in
  let n_a = Prng.range rng 3 8 and n_b = Prng.range rng 3 8 in
  let cities_a = pick_cities rng db n_a (fun _ -> true) in
  let cities_b = pick_cities rng db n_b (fun _ -> true) in
  let sites =
    sites_for ~tpl:0 rng db kind_a cities_a ~p_dev:0.1
    @ sites_for ~tpl:1 rng db kind_b cities_b ~p_dev:0.1
  in
  let tpl_a = List.hd (random_templates rng kind_a ~uses_cc:false ~uses_state:false) in
  let tpl_b = List.hd (random_templates rng kind_b ~uses_cc:false ~uses_state:false) in
  {
    suffix = random_suffix rng;
    asn = 1000 + Prng.int rng 64000;
    conv =
      { Conv.hint_kind = Some kind_a; templates = [ tpl_a; tpl_b ];
        uses_cc = false; uses_state = false };
    sites;
    kind = GeoConsistent;
    p_customer = 0.0;
    p_embed = 1.0;
    p_stale = 0.01;
    p_responsive = 0.85;
    hostnames_per_router = (1, 3);
  }

let random_geo rng db ~kind =
  assert (kind <> NoGeo);
  let hint_kind = Prng.weighted rng hint_kind_weights in
  let uses_cc = Prng.float rng 1.0 < cc_probability hint_kind in
  let uses_state =
    (not uses_cc) && Prng.float rng 1.0 < state_probability hint_kind
  in
  let n_sites =
    match kind with
    | GeoConsistent -> Prng.range rng 3 14
    | GeoSmall -> Prng.range rng 1 2
    | GeoMixed -> Prng.range rng 4 12
    | NoGeo -> assert false
  in
  let pred =
    match hint_kind with
    | Conv.FacilityAddr -> fun c -> c.City.facilities <> []
    | _ -> fun _ -> true
  in
  let cities = pick_cities rng db n_sites pred in
  let p_dev = if hint_kind = Conv.Iata then 0.35 else 0.12 in
  let sites = sites_for rng db hint_kind cities ~p_dev in
  let templates = random_templates rng hint_kind ~uses_cc ~uses_state in
  (* a minority of operators let hostnames go stale at a visible rate,
     which lands their NC in the "promising" PPV band (table 3) *)
  let p_stale =
    if kind = GeoConsistent && Prng.float rng 1.0 < 0.22 then
      0.10 +. Prng.float rng 0.10
    else 0.01
  in
  {
    suffix = random_suffix rng;
    asn = 1000 + Prng.int rng 64000;
    conv = { Conv.hint_kind = Some hint_kind; templates; uses_cc; uses_state };
    sites;
    kind;
    p_customer = (if Prng.float rng 1.0 < 0.3 then 0.05 +. Prng.float rng 0.1 else 0.0);
    p_embed = (match kind with GeoMixed -> 0.4 +. Prng.float rng 0.3 | _ -> 1.0);
    p_stale;
    p_responsive = 0.85;
    hostnames_per_router = (1, 3);
  }

let random_nogeo rng db =
  let n_sites = Prng.range rng 2 12 in
  let cities = pick_cities rng db n_sites (fun _ -> true) in
  let sites =
    List.map
      (fun city ->
        { city; code = ""; custom = false; n_routers = 1 + Prng.int rng 9; tpl = None })
      cities
  in
  {
    suffix = random_suffix rng;
    asn = 1000 + Prng.int rng 64000;
    conv =
      { Conv.hint_kind = None; templates = nogeo_templates rng; uses_cc = false;
        uses_state = false };
    sites;
    kind = NoGeo;
    p_customer = (if Prng.float rng 1.0 < 0.2 then 0.05 +. Prng.float rng 0.1 else 0.0);
    p_embed = 0.0;
    p_stale = 0.0;
    p_responsive = 0.85;
    hostnames_per_router = (1, 2);
  }

(* an operator whose geohints are undelimited compounds (figure 12a):
   the city id glues to a digit and the state code, so neither our
   method nor DRoP can parse it correctly — but DRoP's loose traceroute
   constraints let it accept the leading letters as an airport code
   ("chi2ca" read as Chicago for a router in Chico — Cai 2015) *)
let random_compound rng db =
  let n_sites = Prng.range rng 4 10 in
  (* regional operators: small and mid-size towns whose three-letter ids
     collide with big-city airport codes ("chi" of Chico, "ric" of
     Richardson) *)
  let cities =
    pick_cities rng db n_sites (fun c ->
        c.City.state <> None && c.City.population < 500_000)
  in
  let sites =
    List.map
      (fun city ->
        {
          city;
          code = Codes.prefix3 city.City.name;
          custom = true;
          n_routers = 2 + Prng.int rng 3;
          tpl = None;
        })
      cities
  in
  let r1 = role rng in
  {
    suffix = random_suffix rng;
    asn = 1000 + Prng.int rng 64000;
    conv =
      {
        Conv.hint_kind = Some Conv.Iata;
        templates = [ [ [ Conv.GeoCompound; Conv.RoleBare r1; Conv.Num ]; [ Conv.Const "infra" ] ] ];
        uses_cc = false;
        uses_state = false;
      };
    sites;
    kind = GeoConsistent;
    p_customer = 0.0;
    p_embed = 1.0;
    p_stale = 0.0;
    p_responsive = 0.85;
    hostnames_per_router = (1, 2);
  }

(* --- fixed validation operators (paper §6, figure 9, table 6) --- *)

let find_city db ?state name cc =
  let squashed = String.concat "" (String.split_on_char ' ' name) in
  let all = Db.lookup_city_name db squashed in
  let matching =
    List.filter
      (fun c ->
        c.City.cc = cc
        && match state with None -> true | Some st -> c.City.state = Some st)
      all
  in
  match matching with
  | c :: _ -> c
  | [] -> invalid_arg (Printf.sprintf "Oper.find_city: %s/%s not in dataset" name cc)

let us_hubs =
  [ ("new york", "ny"); ("ashburn", "va"); ("chicago", "il");
    ("dallas", "tx"); ("los angeles", "ca"); ("san jose", "ca");
    ("seattle", "wa"); ("atlanta", "ga"); ("miami", "fl");
    ("denver", "co"); ("phoenix", "az"); ("minneapolis", "mn") ]

let asia_hubs =
  [ ("tokyo", "jp"); ("singapore", "sg"); ("hong kong", "hk");
    ("seoul", "kr"); ("osaka", "jp"); ("sydney", "au") ]

let eu_city db name =
  let cc_of = function
    | "london" -> "gb" | "amsterdam" -> "nl" | "frankfurt" -> "de"
    | "paris" -> "fr" | "madrid" -> "es" | "milan" -> "it"
    | "stockholm" -> "se" | "vienna" -> "at" | "warsaw" -> "pl"
    | "zurich" -> "ch" | "brussels" -> "be" | "prague" -> "cz"
    | "dublin" -> "ie" | "marseille" -> "fr" | "budapest" -> "hu"
    | "bucharest" -> "ro" | "athens" -> "gr" | "rome" -> "it"
    | "lisbon" -> "pt" | "helsinki" -> "fi" | "oslo" -> "no"
    | "copenhagen" -> "dk" | "kyiv" -> "ua" | "riga" -> "lv"
    | "sofia" -> "bg" | "belgrade" -> "rs" | "hamburg" -> "de"
    | "munich" -> "de" | "barcelona" -> "es" | "geneva" -> "ch"
    | other -> invalid_arg ("Oper.eu_city: " ^ other)
  in
  find_city db name (cc_of name)

let site ?(n = 3) ?(custom = false) city code =
  { city; code; custom; n_routers = n; tpl = None }

(* a site using the city's reference IATA code, or a custom prefix code
   when it has none *)
let iata_site rng db ?(n = 0) city =
  let n = if n = 0 then 2 + Prng.int rng 4 else n in
  match Codes.code_for rng db Conv.Iata ~p_dev:0.0 city with
  | Some (code, custom) -> { city; code; custom; n_routers = n; tpl = None }
  | None -> assert false

let validation rng db =
  let c = find_city db in
  let iata ?n city = iata_site rng db ?n city in
  let us name st = c ~state:st name "us" in
  let mk suffix ?(asn = 0) kind hint templates ~uses_cc ~uses_state
      ?(p_customer = 0.0) ?(p_embed = 1.0) ?(p_stale = 0.01)
      ?(p_responsive = 0.85) sites =
    {
      suffix;
      asn = (if asn = 0 then 64512 + Hashtbl.hash suffix mod 1000 else asn);
      conv = { Conv.hint_kind = Some hint; templates; uses_cc; uses_state };
      sites;
      kind;
      p_customer;
      p_embed;
      p_stale;
      p_responsive;
      hostnames_per_router = (1, 3);
    }
  in
  (* --- he.net: IATA with famous custom overrides (figure 8a) --- *)
  let he =
    mk "he.net" ~asn:6939 ~p_customer:0.15 GeoConsistent Conv.Iata
      [ [ [ Conv.Junk; Conv.Junk ]; [ Conv.Iface ]; [ Conv.Role "core" ]; [ Conv.GeoDig ] ];
        [ [ Conv.Iface ]; [ Conv.Role "core" ]; [ Conv.GeoDig ] ] ]
      ~uses_cc:false ~uses_state:false
      ([ site ~n:6 ~custom:true (us "ashburn" "va") "ash";
         site ~n:4 ~custom:true (c "toronto" "ca") "tor";
         site ~n:4 ~custom:true (c "tokyo" "jp") "tok";
         site ~n:3 ~custom:true (c "london" "gb") "ldn" ]
      @ List.map (fun (n, st) -> iata (us n st))
          [ ("new york", "ny"); ("chicago", "il"); ("dallas", "tx");
            ("los angeles", "ca"); ("san jose", "ca"); ("seattle", "wa");
            ("denver", "co"); ("miami", "fl") ]
      @ List.map (fun n -> iata (eu_city db n)) [ "frankfurt"; "paris"; "amsterdam"; "stockholm" ])
  in
  (* --- gtt.net: plain IATA, role-geo joined by dash (figure 1) --- *)
  let gtt =
    mk "gtt.net" ~asn:3257 ~p_customer:0.1 GeoConsistent Conv.Iata
      [ [ [ Conv.Iface ]; [ Conv.RoleOf [ "cr"; "br" ]; Conv.GeoDig ]; [ Conv.Const "ip4" ] ] ]
      ~uses_cc:false ~uses_state:false
      (List.map (fun (n, st) -> iata (us n st)) us_hubs
      @ List.map (fun n -> iata (eu_city db n))
          [ "london"; "amsterdam"; "frankfurt"; "paris"; "madrid"; "milan"; "zurich"; "dublin" ])
  in
  (* --- zayo.com: IATA + country code (figures 1, 6a) --- *)
  let zayo =
    mk "zayo.com" ~asn:6461 GeoConsistent Conv.Iata
      [ [ [ Conv.Junk; Conv.Junk ]; [ Conv.Role "mpr" ]; [ Conv.GeoDig ]; [ Conv.Cc ];
          [ Conv.Const "zip" ] ] ]
      ~uses_cc:true ~uses_state:false
      ([ site ~n:4 ~custom:true (us "ashburn" "va") "ash";
         site ~n:3 ~custom:true (c "tokyo" "jp") "tok";
         site ~n:3 ~custom:true (c "zurich" "ch") "zur";
         site ~n:3 ~custom:true (c "washington" "us" ~state:"dc") "wdc" ]
      @ List.map (fun (n, st) -> iata (us n st))
          [ ("new york", "ny"); ("chicago", "il"); ("denver", "co");
            ("dallas", "tx"); ("seattle", "wa"); ("los angeles", "ca") ]
      @ List.map (fun n -> iata (eu_city db n))
          [ "london"; "amsterdam"; "paris"; "frankfurt"; "brussels"; "stockholm"; "dublin"; "milan" ])
  in
  (* --- ntt.net: CLLI prefixes + country code, custom CLLIs (fig 8b) --- *)
  let clli_site ?(n = 3) ?custom_code city =
    match custom_code with
    | Some code -> site ~n ~custom:true city code
    | None -> (
        match Db.clli_of_city db city with
        | Some prefix -> site ~n city prefix
        | None ->
            site ~n ~custom:true city
              (Codes.abbrev4 (City.squashed city) ^ City.clli_region city))
  in
  let ntt =
    mk "ntt.net" ~asn:2914 ~p_customer:0.1 GeoConsistent Conv.Clli
      [ [ [ Conv.Iface ]; [ Conv.Role "r" ]; [ Conv.GeoDig ]; [ Conv.Cc ];
          [ Conv.RoleBareOf [ "bb"; "ce"; "ra" ] ] ] ]
      ~uses_cc:true ~uses_state:false
      ([ clli_site ~n:4 ~custom_code:"mlanit" (c "milan" "it");
         clli_site ~n:3 ~custom_code:"mancen" (c "manchester" "gb");
         clli_site ~n:3 ~custom_code:"kslrml" (c "kuala selangor" "my") ]
      @ List.map (fun (n, st) -> clli_site ~n:3 (us n st)) us_hubs
      @ List.map (fun n -> clli_site ~n:2 (eu_city db n))
          [ "london"; "amsterdam"; "frankfurt"; "paris"; "madrid"; "vienna"; "brussels" ]
      @ List.map (fun (n, cc) -> clli_site ~n:2 (c n cc)) asia_hubs)
  in
  (* --- retn.net: IATA + cc with heavy custom usage across Europe --- *)
  let retn_cities =
    List.map (eu_city db)
      [ "london"; "amsterdam"; "frankfurt"; "paris"; "madrid"; "milan";
        "stockholm"; "vienna"; "warsaw"; "zurich"; "brussels"; "prague";
        "bucharest"; "budapest"; "athens"; "rome"; "lisbon"; "helsinki";
        "oslo"; "copenhagen"; "kyiv"; "riga"; "sofia"; "belgrade";
        "hamburg"; "munich"; "barcelona"; "geneva" ]
    @ [ c "moscow" "ru"; c "st petersburg" "ru"; c "istanbul" "tr";
        c "tallinn" "ee"; c "vilnius" "lt"; c "hong kong" "hk" ]
  in
  let retn =
    mk "retn.net" ~asn:9002 GeoConsistent Conv.Iata
      [ [ [ Conv.Iface ]; [ Conv.RoleOf [ "rt"; "gw" ] ]; [ Conv.Geo ]; [ Conv.Cc ] ] ]
      ~uses_cc:true ~uses_state:false
      (List.map
         (fun city ->
           match Codes.code_for rng db Conv.Iata ~p_dev:0.75 city with
           | Some (code, custom) -> site ~n:(2 + Prng.int rng 3) ~custom city code
           | None -> assert false)
         retn_cities)
  in
  (* --- seabone.net: custom 3-letter city abbreviations --- *)
  let seabone_cities =
    List.map (eu_city db)
      [ "london"; "amsterdam"; "frankfurt"; "paris"; "madrid"; "milan";
        "athens"; "rome"; "barcelona"; "vienna"; "marseille" ]
    @ [ c "new york" "us" ~state:"ny"; c "miami" "us" ~state:"fl";
        c "sao paulo" "br"; c "singapore" "sg" ]
  in
  let seabone =
    mk "seabone.net" ~asn:6762 GeoConsistent Conv.Iata
      [ [ [ Conv.Iface ]; [ Conv.Geo; Conv.RoleOf [ "bb"; "pe" ] ] ] ]
      ~uses_cc:false ~uses_state:false
      (List.map
         (fun city ->
           let code = Codes.prefix3 city.City.name in
           let custom =
             not (List.exists (fun i -> i = code) city.City.iata)
           in
           site ~n:(2 + Prng.int rng 3) ~custom city code)
         seabone_cities)
  in
  (* --- geant.net: abbreviated city names (R&E network) --- *)
  let geant =
    mk "geant.net" ~asn:20965 GeoConsistent Conv.CityName
      [ [ [ Conv.Iface ]; [ Conv.RoleOf [ "rt"; "mx" ] ]; [ Conv.Geo ];
          [ Conv.Cc ] ] ]
      ~uses_cc:true ~uses_state:false
      (List.map
         (fun name ->
           let city = eu_city db name in
           match Codes.code_for rng db Conv.CityName ~p_dev:0.5 city with
           | Some (code, custom) -> site ~n:2 ~custom city code
           | None -> assert false)
         [ "london"; "amsterdam"; "frankfurt"; "paris"; "madrid"; "milan";
           "vienna"; "budapest"; "prague"; "bucharest"; "athens"; "dublin";
           "brussels"; "lisbon" ])
  in
  (* --- as8218.eu: city names, small European footprint --- *)
  let as8218 =
    mk "as8218.eu" ~asn:8218 GeoConsistent Conv.CityName
      [ [ [ Conv.Iface ]; [ Conv.Role "th" ]; [ Conv.GeoDig ] ] ]
      ~uses_cc:false ~uses_state:false
      (List.map
         (fun name ->
           let city = eu_city db name in
           match Codes.code_for rng db Conv.CityName ~p_dev:0.4 city with
           | Some (code, custom) -> site ~n:3 ~custom city code
           | None -> assert false)
         [ "paris"; "london"; "amsterdam"; "frankfurt"; "marseille";
           "brussels"; "milan"; "madrid"; "vienna"; "zurich" ])
  in
  (* --- aorta.net: IATA, cable operator across Europe --- *)
  let aorta =
    mk "aorta.net" ~asn:6830 GeoConsistent Conv.Iata
      [ [ [ Conv.Junk ]; [ Conv.Iface ]; [ Conv.RoleOf [ "cr"; "ar" ] ];
          [ Conv.GeoDig ] ] ]
      ~uses_cc:false ~uses_state:false
      (List.map
         (fun name ->
           let city = eu_city db name in
           match Codes.code_for rng db Conv.Iata ~p_dev:0.5 city with
           | Some (code, custom) -> site ~n:(2 + Prng.int rng 3) ~custom city code
           | None -> assert false)
         [ "amsterdam"; "vienna"; "zurich"; "dublin"; "budapest"; "warsaw";
           "prague"; "bucharest" ])
  in
  (* --- above.net: IATA but inconsistent convention (many FNs) --- *)
  let above =
    mk "above.net" ~asn:6461 GeoMixed Conv.Iata
      [ [ [ Conv.Iface ]; [ Conv.RoleOf [ "cr"; "er" ] ]; [ Conv.GeoDig ] ];
        [ [ Conv.Junk ]; [ Conv.RoleOf [ "cr"; "er" ] ]; [ Conv.Num ] ] ]
      ~uses_cc:false ~uses_state:false ~p_embed:0.55
      (List.map (fun (n, st) -> iata ~n:3 (us n st))
         [ ("new york", "ny"); ("san jose", "ca"); ("chicago", "il");
           ("dallas", "tx"); ("seattle", "wa"); ("los angeles", "ca");
           ("denver", "co"); ("miami", "fl") ])
  in
  (* --- nysernet.net: city names; unresponsive to ping (R&E filtering) --- *)
  let nysernet =
    mk "nysernet.net" ~asn:3754 GeoConsistent Conv.CityName
      [ [ [ Conv.Iface ]; [ Conv.Geo; Conv.RoleOf [ "cr"; "idp" ] ] ] ]
      ~uses_cc:false ~uses_state:false ~p_responsive:0.0
      (List.map
         (fun (name, st) ->
           let city = us name st in
           site ~n:3 city (City.squashed city))
         [ ("new york", "ny"); ("albany", "ny"); ("syracuse", "ny");
           ("rochester", "ny"); ("buffalo", "ny") ])
  in
  (* --- tfbnw.net: IATA backbone + irregularly-named data-center codes
     in small-population towns. Some codes are ambiguous abbreviations
     that a learner resolves to the wrong (larger) place, some are not
     abbreviations at all — reproducing the mostly-wrong tfbnw row of
     table 6. --- *)
  let tfbnw =
    mk "tfbnw.net" ~asn:32934 GeoConsistent Conv.Iata
      [ [ [ Conv.Iface ]; [ Conv.RoleOf [ "bb"; "ar" ] ]; [ Conv.GeoDig ] ] ]
      ~uses_cc:false ~uses_state:false
      (List.map (fun (n, st) -> iata ~n:7 (us n st))
         [ ("new york", "ny"); ("chicago", "il"); ("dallas", "tx");
           ("los angeles", "ca"); ("seattle", "wa"); ("atlanta", "ga") ]
      @ List.map
          (fun (name, st, code) -> site ~n:3 ~custom:true (us name st) code)
          [ ("washington", "pa", "was"); ("washington", "mo", "stl");
            ("washington", "ut", "lvg"); ("springfield", "il", "spr");
            ("ashland", "va", "ald"); ("brecksville", "oh", "bkv");
            ("torrington", "wy", "dnv"); ("fort collins", "co", "ftc") ])
  in
  [ above; aorta; as8218; geant; gtt; he; ntt; nysernet; retn; seabone;
    tfbnw; zayo ]

let validation_suffixes =
  [ "above.net"; "aorta.net"; "as8218.eu"; "geant.net"; "gtt.net"; "he.net";
    "ntt.net"; "nysernet.net"; "retn.net"; "seabone.net"; "tfbnw.net";
    "zayo.com" ]
