let s scale n = max 1 (int_of_float (float_of_int n *. scale))

let ipv4_aug20 ?(scale = 1.0) () =
  {
    Generate.label = "Aug '20 IPv4";
    seed = 20200801;
    n_geo_consistent = s scale 190;
    n_geo_small = s scale 85;
    n_geo_mixed = s scale 15;
    n_multikind = s scale 10;
    n_compound = s scale 25;
    n_nogeo = s scale 950;
    n_extra_towns = 1400;
    n_spoofing_vps = 0;
    include_validation = true;
    n_vps = 106;
    hostname_fraction = 0.55;
    p_responsive_unnamed = 0.82;
  }

let ipv4_mar21 ?(scale = 1.0) () =
  {
    Generate.label = "Mar '21 IPv4";
    seed = 20210301;
    n_geo_consistent = s scale 187;
    n_geo_small = s scale 84;
    n_geo_mixed = s scale 15;
    n_multikind = s scale 10;
    n_compound = s scale 25;
    n_nogeo = s scale 940;
    n_extra_towns = 1400;
    n_spoofing_vps = 0;
    include_validation = true;
    n_vps = 100;
    hostname_fraction = 0.54;
    p_responsive_unnamed = 0.82;
  }

let ipv6_nov20 ?(scale = 1.0) () =
  {
    Generate.label = "Nov '20 IPv6";
    seed = 20201101;
    n_geo_consistent = s scale 52;
    n_geo_small = s scale 19;
    n_geo_mixed = s scale 6;
    n_multikind = s scale 3;
    n_compound = s scale 4;
    n_nogeo = s scale 76;
    n_extra_towns = 500;
    n_spoofing_vps = 0;
    include_validation = false;
    n_vps = 46;
    hostname_fraction = 0.151;
    p_responsive_unnamed = 0.46;
  }

let ipv6_mar21 ?(scale = 1.0) () =
  {
    Generate.label = "Mar '21 IPv6";
    seed = 20210302;
    n_geo_consistent = s scale 51;
    n_geo_small = s scale 18;
    n_geo_mixed = s scale 6;
    n_multikind = s scale 3;
    n_compound = s scale 4;
    n_nogeo = s scale 74;
    n_extra_towns = 500;
    n_spoofing_vps = 0;
    include_validation = false;
    n_vps = 39;
    hostname_fraction = 0.16;
    p_responsive_unnamed = 0.45;
  }

let tiny ?(seed = 42) () =
  {
    Generate.label = "tiny";
    seed;
    n_geo_consistent = 6;
    n_geo_small = 4;
    n_geo_mixed = 2;
    n_multikind = 1;
    n_compound = 1;
    n_nogeo = 10;
    n_extra_towns = 0;
    n_spoofing_vps = 0;
    include_validation = true;
    n_vps = 40;
    hostname_fraction = 0.7;
    p_responsive_unnamed = 0.8;
  }

(* the Aug '20 IPv4 ITDK the paper measures against held 2.56M routers
   (table 1); the table-1 presets above sit near 1/35 of that. [paper]
   re-expresses scale in paper units: 1.0 ≈ the full 2.56M-router
   magnitude (measured: generator scale 40 → 2.87M routers), fractions
   give proportional slices for hosts that cannot hold the whole thing
   in a bench loop. *)
let paper_generator_scale = 35.0

let paper ?(scale = 1.0) () =
  let c = ipv4_aug20 ~scale:(paper_generator_scale *. scale) () in
  {
    c with
    Generate.label = Printf.sprintf "paper IPv4 (Aug '20 ITDK, x%g)" scale;
  }

let all ?(scale = 1.0) () =
  [ ipv4_aug20 ~scale (); ipv4_mar21 ~scale (); ipv6_nov20 ~scale ();
    ipv6_mar21 ~scale () ]
