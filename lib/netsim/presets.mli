(** Ready-made generator configurations mirroring the four ITDKs of
    table 1, at roughly 1/100 of the paper's scale. [scale] multiplies
    operator counts (1.0 = default). *)

val ipv4_aug20 : ?scale:float -> unit -> Generate.config
val ipv4_mar21 : ?scale:float -> unit -> Generate.config
val ipv6_nov20 : ?scale:float -> unit -> Generate.config
val ipv6_mar21 : ?scale:float -> unit -> Generate.config

val paper : ?scale:float -> unit -> Generate.config
(** The Aug '20 IPv4 ITDK at the paper's magnitude: [scale = 1.0]
    generates ≈ 2.56 million routers (table 1), i.e. 35× the
    {!ipv4_aug20} default. Fractional scales give proportional slices
    — the perf bench picks its slice via [HOIHO_BENCH_SCALE] so small
    hosts can still run the jobs sweep. *)

val tiny : ?seed:int -> unit -> Generate.config
(** A small configuration for unit tests: validation operators plus a
    handful of random ones. *)

val all : ?scale:float -> unit -> Generate.config list
(** The four table-1 configurations in paper order. *)
