(** Synthetic ITDK assembly: operators → routers, hostnames, VPs, RTTs.

    The RTT model guarantees soundness of the speed-of-light test:
    every simulated RTT is the theoretical best-case RTT between the VP
    and the router's true location, multiplied by a path-inflation
    factor ≥ 1 and with additive access/queueing delay. Traceroute-
    observed RTTs come from fewer VPs and carry much higher inflation,
    reproducing the ping-vs-traceroute gap of figure 5. *)

type config = {
  label : string;
  seed : int;
  n_geo_consistent : int;
  n_geo_small : int;
  n_geo_mixed : int;
  n_multikind : int;  (** operators mixing two geohint types *)
  n_compound : int;
      (** AT&T-style operators with undelimited compound geohints
          (figure 12a) — embedded but unparseable *)
  n_nogeo : int;
  n_extra_towns : int;
      (** synthetic GeoNames-style towns added to the dictionary and
          available as deployment sites; keeps the VP constellation
          sparse relative to the places routers live, as in reality *)
  n_spoofing_vps : int;
      (** VPs whose access router spoofs responses, reporting 1-2 ms to
          every target (§5.1.4 — the paper discarded 7 such VPs by
          hand; {!Hoiho.Vpfilter} detects them automatically). 0 by
          default: spoofing breaks the RTT soundness invariant until
          the filter removes it. *)
  include_validation : bool;
  n_vps : int;
  hostname_fraction : float;
      (** target fraction of all routers that have hostnames *)
  p_responsive_unnamed : float;
}

val generate : config -> Hoiho_itdk.Dataset.t * Truth.t
(** Deterministic in [config.seed]. The returned {!Truth.t} carries the
    (possibly town-expanded) dictionary; run the pipeline with
    [Pipeline.run ~db:(Truth.db truth)] so it can interpret hints for
    synthetic towns. *)

val make_vps : Hoiho_util.Prng.t -> Hoiho_geodb.Db.t -> int -> Hoiho_itdk.Vp.t array
(** VPs placed in distinct population-weighted cities, named
    "iata-cc" Ark-style. *)

val router_hostnames :
  Hoiho_util.Prng.t ->
  Oper.t ->
  Oper.site ->
  (string * string option * bool) list
(** Render one router's hostnames under the operator's convention:
    (hostname, embedded geohint code, stale) per interface — stale
    names carry another site's code (§4.3). Exposed for {!Evolve},
    which re-renders individual routers when conventions migrate or
    stale names decay. *)

val fresh_router :
  Hoiho_util.Prng.t ->
  Hoiho_itdk.Vp.t array ->
  id:int ->
  Oper.t ->
  Oper.site ->
  Hoiho_itdk.Router.t
(** A complete new router at a site: hostnames, RTT observations from
    every VP, and ground truth. Exposed for {!Evolve} (site growth
    between epochs). *)
