module Prng = Hoiho_util.Prng
module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Vp = Hoiho_itdk.Vp
module Dataset = Hoiho_itdk.Dataset

type config = {
  label : string;
  seed : int;
  n_geo_consistent : int;
  n_geo_small : int;
  n_geo_mixed : int;
  n_multikind : int;
  n_compound : int;
  n_nogeo : int;
  n_extra_towns : int;
  n_spoofing_vps : int;
  include_validation : bool;
  n_vps : int;
  hostname_fraction : float;
  p_responsive_unnamed : float;
}

let make_vps rng db n =
  let candidates =
    List.filter (fun c -> c.City.iata <> [] && c.City.population > 150000) (Db.cities db)
  in
  let weighted =
    Array.of_list
      (List.map (fun c -> (c, sqrt (float_of_int c.City.population))) candidates)
  in
  let chosen = Hashtbl.create n in
  let out = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length chosen < n && !attempts < n * 60 do
    incr attempts;
    let city = Prng.weighted rng weighted in
    let key = City.key city in
    if not (Hashtbl.mem chosen key) then begin
      Hashtbl.replace chosen key ();
      out := city :: !out
    end
  done;
  let cities = Array.of_list (List.rev !out) in
  Array.mapi
    (fun id city ->
      let code = match city.City.iata with c :: _ -> c | [] -> City.squashed city in
      Vp.make ~id
        ~name:(Printf.sprintf "%s-%s" code city.City.cc)
        ~city_key:(City.key city) ~coord:city.City.coord)
    cities

(* --- RTT model --- *)

let ping_rtt rng ~vp_coord ~loc =
  let base = Lightrtt.min_rtt_ms vp_coord loc in
  (base *. (1.05 +. Prng.exponential rng ~mean:0.25))
  +. 0.3 +. Prng.float rng 2.2

let trace_rtt rng ~vp_coord ~loc =
  let base = Lightrtt.min_rtt_ms vp_coord loc in
  (base *. (1.25 +. Prng.exponential rng ~mean:0.9))
  +. 1.0 +. Prng.float rng 8.0

let ping_rtts rng vps ~loc ~responsive =
  if not responsive then []
  else begin
    (* with p=0.9 the router is reachable from (nearly) all VPs; else a
       random subset, mirroring fig. 5's 89.4% all-VP coverage *)
    let p_vp = if Prng.float rng 1.0 < 0.9 then 0.99 else 0.3 +. Prng.float rng 0.5 in
    Array.to_list vps
    |> List.filter_map (fun (vp : Vp.t) ->
           if Prng.float rng 1.0 < p_vp then
             Some (vp.Vp.id, ping_rtt rng ~vp_coord:vp.Vp.coord ~loc)
           else None)
  end

let trace_vp_count rng n_vps =
  let u = Prng.float rng 1.0 in
  let k =
    if u < 0.36 then 1
    else if u < 0.52 then 2
    else if u < 0.63 then 3
    else 3 + int_of_float (Prng.exponential rng ~mean:5.0)
  in
  max 1 (min n_vps k)

let trace_rtts rng vps ~loc =
  let n = Array.length vps in
  let k = trace_vp_count rng n in
  let ids = Array.init n (fun i -> i) in
  Prng.shuffle rng ids;
  Array.sub ids 0 k |> Array.to_list
  |> List.map (fun id ->
         let vp = vps.(id) in
         (vp.Vp.id, trace_rtt rng ~vp_coord:vp.Vp.coord ~loc))

(* --- hostname rendering for one router --- *)

(* a no-geo variant of a template: geo tokens become junk, cc/state
   tokens disappear *)
let degeo template =
  List.filter_map
    (fun label ->
      let label =
        List.filter_map
          (fun tok ->
            match tok with
            | Conv.Geo | Conv.GeoDig | Conv.GeoCompound | Conv.GeoSplitClli -> Some Conv.Junk
            | Conv.Cc | Conv.State -> None
            | other -> Some other)
          label
      in
      if label = [] then None else Some label)
    template

let router_hostnames rng (op : Oper.t) (site : Oper.site) =
  let lo, hi = op.Oper.hostnames_per_router in
  let n = Prng.range rng lo hi in
  let stale_site () =
    match List.filter (fun (s : Oper.site) -> s != site) op.Oper.sites with
    | [] -> site
    | others -> Prng.pick_list rng others
  in
  let templates = op.Oper.conv.Conv.templates in
  let template =
    match site.Oper.tpl with
    | Some i when i < List.length templates -> List.nth templates i
    | _ -> Prng.pick_list rng templates
  in
  let embed =
    op.Oper.p_embed > 0.0
    && Prng.float rng 1.0 < op.Oper.p_embed
    && site.Oper.code <> ""
    && (let has_geo, _, _ = Conv.geo_label_kinds template in
        has_geo)
  in
  let template = if embed then template else degeo template in
  let city = site.Oper.city in
  (* the router's interfaces share the stable part of the name *)
  let shared =
    Conv.render_router rng template ~geo:site.Oper.code ~cc:city.City.cc
      ~state:city.City.state ~asn:op.Oper.asn ~count:n op.Oper.suffix
  in
  List.map
    (fun hostname ->
      (* an interface may keep a hostname from a previous assignment *)
      if embed && Prng.float rng 1.0 < op.Oper.p_stale then begin
        let src = stale_site () in
        let stale_city = src.Oper.city in
        let h =
          Conv.render rng template ~geo:src.Oper.code ~cc:stale_city.City.cc
            ~state:stale_city.City.state ~asn:op.Oper.asn op.Oper.suffix
        in
        (h, Some src.Oper.code, src != site)
      end
      else (hostname, (if embed then Some site.Oper.code else None), false))
    shared

(* a customer device named under the provider's suffix (figure 3b):
   carries the customer's ASN; the hostname embeds the provider's
   geohint and the customer ASN *)
let customer_template =
  [ [ Conv.AsnTok; Conv.Junk ]; [ Conv.Role "gw" ]; [ Conv.GeoDig ] ]

let fresh_router rng vps ~id (op : Oper.t) (site : Oper.site) =
  let city = site.Oper.city in
  let loc = city.City.coord in
  let customer = Prng.float rng 1.0 < op.Oper.p_customer in
  let asn =
    if customer then 1000 + Prng.int rng 64000 else op.Oper.asn
  in
  let named =
    if customer then begin
      let hostname =
        Conv.render rng customer_template ~geo:site.Oper.code
          ~cc:city.City.cc ~state:city.City.state ~asn op.Oper.suffix
      in
      [ (hostname,
         (if site.Oper.code = "" then None else Some site.Oper.code),
         false) ]
    end
    else router_hostnames rng op site
  in
  let hostnames = List.map (fun (h, _, _) -> h) named in
  let stale = List.exists (fun (_, _, st) -> st) named in
  let hostname_hints = List.map (fun (h, hint, _) -> (h, hint)) named in
  let responsive = Prng.float rng 1.0 < op.Oper.p_responsive in
  let truth =
    {
      Router.city_key = City.key city;
      coord = loc;
      intended_hint = (if site.Oper.code = "" then None else Some site.Oper.code);
      stale;
      hostname_hints;
    }
  in
  Router.make id ~hostnames ~asn
    ~ping_rtts:(ping_rtts rng vps ~loc ~responsive)
    ~trace_rtts:(trace_rtts rng vps ~loc)
    ~truth

let routers_of_operator rng vps next_id (op : Oper.t) =
  let site_router_lists =
    List.map
      (fun (site : Oper.site) ->
        List.init site.Oper.n_routers (fun _ ->
          let id = !next_id in
          incr next_id;
          fresh_router rng vps ~id op site))
      op.Oper.sites
  in
  (* traceroute-observed adjacency: a chain within each site (PoP), and
     a backbone link between consecutive sites *)
  let links = ref [] in
  List.iter
    (fun site_routers ->
      List.iteri
        (fun i (r : Router.t) ->
          if i > 0 then
            links := ((List.nth site_routers (i - 1)).Router.id, r.Router.id) :: !links)
        site_routers)
    site_router_lists;
  let rec backbone = function
    | ({ Router.id = a; _ } :: _) :: (({ Router.id = b; _ } :: _) as next) :: rest ->
        links := (a, b) :: !links;
        backbone (next :: rest)
    | _ :: rest -> backbone rest
    | [] -> ()
  in
  backbone site_router_lists;
  (List.concat site_router_lists, List.rev !links)

let unnamed_routers rng db vps next_id n p_responsive =
  let cities = Array.of_list (Db.cities db) in
  List.init n (fun _ ->
      let id = !next_id in
      incr next_id;
      let city = Prng.pick rng cities in
      let loc = city.City.coord in
      let responsive = Prng.float rng 1.0 < p_responsive in
      let truth =
        {
          Router.city_key = City.key city;
          coord = loc;
          intended_hint = None;
          stale = false;
          hostname_hints = [];
        }
      in
      Router.make id
        ~ping_rtts:(ping_rtts rng vps ~loc ~responsive)
        ~trace_rtts:(trace_rtts rng vps ~loc)
        ~truth)

(* a VP whose access router spoofs responses: RTTs of 1-2 ms no matter
   how far the probed router is (§5.1.4) *)
let spoof_rtts rng spoofers pairs =
  List.map
    (fun (vp_id, rtt) ->
      if List.mem vp_id spoofers then (vp_id, 1.0 +. Prng.float rng 1.0)
      else (vp_id, rtt))
    pairs

let generate config =
  let rng = Prng.create config.seed in
  let db =
    if config.n_extra_towns = 0 then Db.default ()
    else
      Db.of_cities
        (Hoiho_geodb.Synth.expand (Prng.split rng) config.n_extra_towns
           (Db.cities (Db.default ())))
  in
  let vps = make_vps (Prng.split rng) db config.n_vps in
  let op_rng = Prng.split rng in
  let ops =
    (if config.include_validation then Oper.validation op_rng db else [])
    @ List.init config.n_geo_consistent (fun _ ->
          Oper.random_geo op_rng db ~kind:Oper.GeoConsistent)
    @ List.init config.n_geo_small (fun _ ->
          Oper.random_geo op_rng db ~kind:Oper.GeoSmall)
    @ List.init config.n_geo_mixed (fun _ ->
          Oper.random_geo op_rng db ~kind:Oper.GeoMixed)
    @ List.init config.n_multikind (fun _ -> Oper.random_multikind op_rng db)
    @ List.init config.n_compound (fun _ -> Oper.random_compound op_rng db)
    @ List.init config.n_nogeo (fun _ -> Oper.random_nogeo op_rng db)
  in
  let next_id = ref 0 in
  let router_rng = Prng.split rng in
  let per_op = List.map (routers_of_operator router_rng vps next_id) ops in
  let named = List.concat_map fst per_op in
  let links = List.concat_map snd per_op in
  let n_named = List.length named in
  let n_unnamed =
    let f = config.hostname_fraction in
    if f <= 0.0 || f >= 1.0 then 0
    else int_of_float (float_of_int n_named *. ((1.0 -. f) /. f))
  in
  let unnamed =
    unnamed_routers router_rng db vps next_id n_unnamed config.p_responsive_unnamed
  in
  let routers = Array.of_list (named @ unnamed) in
  let routers =
    if config.n_spoofing_vps = 0 then routers
    else begin
      let n = min config.n_spoofing_vps (Array.length vps) in
      let spoofers = List.init n (fun i -> (vps.(i)).Vp.id) in
      let spoof_rng = Prng.split rng in
      Array.map
        (fun (r : Router.t) ->
          {
            r with
            Router.ping_rtts = spoof_rtts spoof_rng spoofers r.Router.ping_rtts;
          })
        routers
    end
  in
  ( Dataset.make ~label:config.label ~links:(Array.of_list links) ~routers ~vps (),
    Truth.make ~db ops )
