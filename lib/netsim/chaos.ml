(* Seeded adversity model over a synthetic dataset.

   Real ITDK snapshots are full of operator-authored garbage: truncated
   PTR records, stray bytes, names kept from decommissioned gear, RTT
   samples lost or inflated by queueing, and alias resolution gluing the
   wrong interfaces together. The generator produces clean data by
   design; [apply] re-dirties it, deterministically from a single seed,
   so the pipeline's graceful-degradation path can be exercised and
   regression-tested.

   Determinism contract: each chaos class draws from its own split PRNG
   stream, derived from the seed in a fixed order regardless of which
   classes are enabled — so enabling one class never perturbs another's
   injections, and the same config always produces the same mutated
   dataset (and the same chaos.* counter values). *)

module Prng = Hoiho_util.Prng
module Db = Hoiho_geodb.Db
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Vp = Hoiho_itdk.Vp
module Obs = Hoiho_obs.Obs

type cls =
  | Hostname_mangle
  | Dict_dropout
  | Rtt_loss
  | Rtt_outlier
  | Rtt_negative
  | Alias_error

let all_classes =
  [ Hostname_mangle; Dict_dropout; Rtt_loss; Rtt_outlier; Rtt_negative; Alias_error ]

let class_name = function
  | Hostname_mangle -> "hostname_mangle"
  | Dict_dropout -> "dict_dropout"
  | Rtt_loss -> "rtt_loss"
  | Rtt_outlier -> "rtt_outlier"
  | Rtt_negative -> "rtt_negative"
  | Alias_error -> "alias_error"

type config = { seed : int; level : int; classes : cls list }

let config ?(level = 1) ?(classes = all_classes) seed =
  { seed; level = max 1 level; classes }

(* injection volume counters (DESIGN.md §8); process-wide like every
   Obs metric, scoped per run by Obs.reset *)
let c_mangled = Obs.counter "chaos.hostnames_mangled"
let c_dict = Obs.counter "chaos.dict_entries_dropped"
let c_rtt_drop = Obs.counter "chaos.rtts_dropped"
let c_rtt_out = Obs.counter "chaos.rtt_outliers"
let c_rtt_neg = Obs.counter "chaos.rtts_negated"
let c_alias = Obs.counter "chaos.alias_errors"

(* per-item injection probability: 8% per level, capped so even absurd
   levels leave some signal for the pipeline to chew on *)
let prob cfg = min 0.9 (0.08 *. float_of_int cfg.level)
let enabled cfg c = List.mem c cfg.classes
let fire cfg rng = Prng.float rng 1.0 < prob cfg

(* the mangle menu mirrors the PTR pathologies seen in the wild:
   truncation, control bytes, high-bit bytes, empty labels (".."),
   over-long labels, embedded whitespace *)
let mangle rng h =
  Obs.incr c_mangled;
  let n = String.length h in
  let insert_at pos s = String.sub h 0 pos ^ s ^ String.sub h pos (n - pos) in
  match Prng.int rng 6 with
  | 0 -> if n <= 1 then "" else String.sub h 0 (Prng.range rng 1 (n - 1))
  | 1 -> insert_at (Prng.int rng (n + 1)) (String.make 1 (Char.chr (Prng.int rng 32)))
  | 2 -> insert_at (Prng.int rng (n + 1)) (String.make 1 (Char.chr (128 + Prng.int rng 128)))
  | 3 -> insert_at (Prng.int rng (n + 1)) ".."
  | 4 -> String.make 255 'x' ^ "." ^ h
  | _ -> insert_at (Prng.int rng (n + 1)) " "

let mangle_hostnames cfg rng routers =
  Array.map
    (fun (r : Router.t) ->
      match r.Router.hostnames with
      | [] -> r
      | hs ->
          let hs' = List.map (fun h -> if fire cfg rng then mangle rng h else h) hs in
          { r with Router.hostnames = hs' })
    routers

let drop_dict cfg rng db =
  let kept =
    List.filter
      (fun _city ->
        if fire cfg rng then begin
          Obs.incr c_dict;
          false
        end
        else true)
      (Db.cities db)
  in
  (* an empty dictionary is not adversity, it is a config error *)
  if kept = [] then db else Db.of_cities kept

let map_rtts f (r : Router.t) =
  { r with Router.ping_rtts = f r.Router.ping_rtts; trace_rtts = f r.Router.trace_rtts }

let lose_rtts cfg rng routers =
  Array.map
    (map_rtts
       (List.filter (fun _pair ->
            if fire cfg rng then begin
              Obs.incr c_rtt_drop;
              false
            end
            else true)))
    routers

(* outliers break the generator's soundness invariant both ways: a
   queueing-delay blow-up (harmless to the speed-of-light test) and a
   spoofed too-fast response (which falsely rules out the true city) *)
let outlier_rtts cfg rng routers =
  Array.map
    (map_rtts
       (List.map (fun (vp, rtt) ->
            if fire cfg rng then begin
              Obs.incr c_rtt_out;
              if Prng.bool rng then (vp, rtt *. (10.0 +. Prng.float rng 90.0))
              else (vp, 0.1 +. Prng.float rng 0.4)
            end
            else (vp, rtt))))
    routers

let negate_rtts cfg rng routers =
  Array.map
    (map_rtts
       (List.map (fun (vp, rtt) ->
            if fire cfg rng then begin
              Obs.incr c_rtt_neg;
              (vp, -.rtt)
            end
            else (vp, rtt))))
    routers

(* alias-resolution errors take two shapes: a false alias (another
   router's hostname glued onto this one) and a dangling VP reference
   (an RTT sample pointing at a monitor the dataset does not contain —
   the shape that surfaces as Consist.Unknown_vp downstream) *)
let alias_errors cfg rng max_vp_id routers =
  let n = Array.length routers in
  Array.map
    (fun (r : Router.t) ->
      if not (fire cfg rng) then r
      else begin
        Obs.incr c_alias;
        if Prng.bool rng && n > 1 then begin
          let other = routers.(Prng.int rng n) in
          match other.Router.hostnames with
          | [] -> r
          | h :: _ -> { r with Router.hostnames = r.Router.hostnames @ [ h ] }
        end
        else
          let dangle =
            List.map (fun (vp, rtt) ->
                if Prng.bool rng then (max_vp_id + 1 + Prng.int rng 64, rtt)
                else (vp, rtt))
          in
          map_rtts dangle r
      end)
    routers

let apply cfg db (ds : Dataset.t) =
  let rng = Prng.create cfg.seed in
  (* fixed split order: streams must not depend on the enabled set *)
  let r_mangle = Prng.split rng in
  let r_dict = Prng.split rng in
  let r_loss = Prng.split rng in
  let r_out = Prng.split rng in
  let r_neg = Prng.split rng in
  let r_alias = Prng.split rng in
  let db = if enabled cfg Dict_dropout then drop_dict cfg r_dict db else db in
  let routers = ds.Dataset.routers in
  let routers =
    if enabled cfg Hostname_mangle then mangle_hostnames cfg r_mangle routers
    else routers
  in
  let routers = if enabled cfg Rtt_loss then lose_rtts cfg r_loss routers else routers in
  let routers =
    if enabled cfg Rtt_outlier then outlier_rtts cfg r_out routers else routers
  in
  let routers =
    if enabled cfg Rtt_negative then negate_rtts cfg r_neg routers else routers
  in
  let routers =
    if enabled cfg Alias_error then begin
      let max_vp_id =
        Array.fold_left (fun m (v : Vp.t) -> max m v.Vp.id) 0 ds.Dataset.vps
      in
      alias_errors cfg r_alias max_vp_id routers
    end
    else routers
  in
  ( db,
    Dataset.make ~links:ds.Dataset.links ~label:ds.Dataset.label ~routers
      ~vps:ds.Dataset.vps () )

(* --- network fault plans ---

   The serving daemon's adversity is hostile clients, not dirty
   datasets. A plan is pure data — payload bytes plus pacing — so this
   module stays socket-free and the plans stay deterministic; the net
   tests execute them against a live listener. *)

type net_fault =
  | Slow_loris
  | Torn_request
  | Oversized_hostname
  | Control_bytes
  | Garbage

let all_net_faults =
  [ Slow_loris; Torn_request; Oversized_hostname; Control_bytes; Garbage ]

let net_fault_name = function
  | Slow_loris -> "slow_loris"
  | Torn_request -> "torn_request"
  | Oversized_hostname -> "oversized_hostname"
  | Control_bytes -> "control_bytes"
  | Garbage -> "garbage"

type net_plan = {
  fault : net_fault;
  payload : string;
  chunk : int;
  pause_s : float;
  expect_response : bool;
}

let c_net = Obs.counter "chaos.net_faults"

let valid_get h =
  Printf.sprintf
    "GET /geolocate?h=%s HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n" h

let net_plan rng fault =
  Obs.incr c_net;
  match fault with
  | Slow_loris ->
      (* each chunk lands well inside the socket timeout; only the
         per-request deadline can end this client *)
      {
        fault;
        payload = valid_get "100ge1-4.core2.fra12.he.net";
        chunk = 1 + Prng.int rng 3;
        pause_s = 0.01 +. Prng.float rng 0.02;
        expect_response = true;
      }
  | Torn_request ->
      let full = valid_get "100ge12-2.core2.tok2.he.net" in
      let cut = 1 + Prng.int rng (String.length full - 1) in
      {
        fault;
        payload = String.sub full 0 cut;
        chunk = String.length full;
        pause_s = 0.0;
        expect_response = false;
      }
  | Oversized_hostname ->
      (* past Engine.max_subject_len (1024) but inside the request-line
         bound: must be rejected at the boundary with a 400 *)
      {
        fault;
        payload = valid_get (String.make (1200 + Prng.int rng 2048) 'a');
        chunk = 512;
        pause_s = 0.0;
        expect_response = true;
      }
  | Control_bytes ->
      (* a raw C0 byte in the request line (never CR/LF, which would
         just split the line): parser must answer 400 *)
      let bad = String.make 1 (Char.chr (Prng.int rng 9)) in
      {
        fault;
        payload = valid_get ("100ge1-4" ^ bad ^ ".core2.fra12.he.net");
        chunk = 256;
        pause_s = 0.0;
        expect_response = true;
      }
  | Garbage ->
      let len = 32 + Prng.int rng 224 in
      let payload = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
      { fault; payload; chunk = 64; pause_s = 0.0; expect_response = false }

let net_plans ?(n = 25) seed =
  let rng = Prng.create seed in
  let k = List.length all_net_faults in
  let rec build i acc =
    if i >= n then List.rev acc
    else build (i + 1) (net_plan rng (List.nth all_net_faults (i mod k)) :: acc)
  in
  build 0 []
