module Prng = Hoiho_util.Prng
module City = Hoiho_geodb.City
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset

type config = {
  seed : int;
  p_renumber : float;
  p_migrate : float;
  p_decay : float;
  p_add : float;
  p_remove : float;
}

let default ~seed =
  {
    seed;
    p_renumber = 0.08;
    p_migrate = 0.12;
    p_decay = 0.5;
    p_add = 0.04;
    p_remove = 0.03;
  }

(* replace a router's hostnames with a fresh rendering under [op]'s
   (possibly migrated) convention, keeping its RTT observations — the
   router did not move, only its names changed *)
let rerender rng (op : Oper.t) (site : Oper.site) (r : Router.t) =
  let named = Generate.router_hostnames rng op site in
  let hostnames = List.map (fun (h, _, _) -> h) named in
  let stale = List.exists (fun (_, _, st) -> st) named in
  let hostname_hints = List.map (fun (h, hint, _) -> (h, hint)) named in
  let truth =
    match r.Router.truth with
    | Some t -> { t with Router.stale; hostname_hints }
    | None ->
        {
          Router.city_key = City.key site.Oper.city;
          coord = site.Oper.city.City.coord;
          intended_hint =
            (if site.Oper.code = "" then None else Some site.Oper.code);
          stale;
          hostname_hints;
        }
  in
  { r with Router.hostnames; truth = Some truth }

(* which operator and site a named router belongs to, via the suffix of
   its first hostname and its ground-truth city. Customer routers named
   under the provider's suffix resolve to the provider's site. *)
let resolve truth (r : Router.t) =
  match (r.Router.truth, r.Router.hostnames) with
  | Some t, h :: _ -> (
      match Hoiho_psl.Psl.registered_suffix h with
      | None -> None
      | Some suffix -> (
          match Truth.find truth suffix with
          | None -> None
          | Some op -> (
              match
                List.find_opt
                  (fun (s : Oper.site) ->
                    City.key s.Oper.city = t.Router.city_key)
                  op.Oper.sites
              with
              | Some site -> Some (op, site)
              | None -> None)))
  | _ -> None

let epoch config (ds, truth) =
  let rng = Prng.create config.seed in
  let mig_rng = Prng.split rng in
  let host_rng = Prng.split rng in
  let add_rng = Prng.split rng in
  let db = Truth.db truth in
  (* convention migration is fleet-wide: every router of a migrated
     operator re-renders under the new templates *)
  let migrated = Hashtbl.create 8 in
  let ops =
    List.map
      (fun (op : Oper.t) ->
        if Prng.float mig_rng 1.0 < config.p_migrate then begin
          Hashtbl.replace migrated op.Oper.suffix ();
          Oper.migrate mig_rng op
        end
        else op)
      (Truth.ops truth)
  in
  let truth' = Truth.make ~db ops in
  let removed = Hashtbl.create 16 in
  let survivors =
    List.filter_map
      (fun (r : Router.t) ->
        match resolve truth' r with
        | None -> Some r (* unnamed or unresolvable: carried over as-is *)
        | Some (op, site) ->
            if Prng.float host_rng 1.0 < config.p_remove then begin
              Hashtbl.replace removed r.Router.id ();
              None
            end
            else if Hashtbl.mem migrated op.Oper.suffix then
              Some (rerender host_rng op site r)
            else if
              (match r.Router.truth with
              | Some t -> t.Router.stale
              | None -> false)
              && Prng.float host_rng 1.0 < config.p_decay
            then
              (* stale-name decay: the leftover name from a previous
                 deployment finally gets corrected *)
              Some (rerender host_rng { op with Oper.p_stale = 0.0 } site r)
            else if Prng.float host_rng 1.0 < config.p_renumber then
              Some (rerender host_rng op site r)
            else Some r)
      (Array.to_list ds.Dataset.routers)
  in
  (* site growth: new routers appended at the end of the corpus with
     fresh ids — Delta.events_between then round-trips the epoch's
     router order exactly *)
  let max_id =
    Array.fold_left
      (fun acc (r : Router.t) -> max acc r.Router.id)
      (-1) ds.Dataset.routers
  in
  let next_id = ref (max_id + 1) in
  let additions =
    List.concat_map
      (fun (op : Oper.t) ->
        List.filter_map
          (fun (site : Oper.site) ->
            if Prng.float add_rng 1.0 < config.p_add then begin
              let id = !next_id in
              incr next_id;
              Some (Generate.fresh_router add_rng ds.Dataset.vps ~id op site)
            end
            else None)
          op.Oper.sites)
      ops
  in
  let routers = Array.of_list (survivors @ additions) in
  let links =
    Array.of_list
      (List.filter
         (fun (a, b) ->
           not (Hashtbl.mem removed a || Hashtbl.mem removed b))
         (Array.to_list ds.Dataset.links))
  in
  ( Dataset.make ~links ~label:ds.Dataset.label ~routers ~vps:ds.Dataset.vps (),
    truth' )
