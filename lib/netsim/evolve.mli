(** Time-evolving corpora: advance a synthetic dataset one epoch of
    naming drift, so incremental relearn and drift detection have
    ground truth to validate against (ROADMAP open item 2, after the
    Longitudinal IP Geolocation study's churn taxonomy).

    Four drift processes, all seeded and deterministic:
    - {b convention migration} — an operator re-rolls its hostname
      templates ({!Oper.migrate}) and its whole fleet re-renders;
    - {b renumbering} — individual routers get fresh names under the
      unchanged convention;
    - {b stale-name decay} — routers whose names carry another site's
      code (§4.3) finally get corrected;
    - {b churn} — routers are retired, and sites grow new routers
      (appended at the end of the corpus, so
      {!Hoiho.Delta.events_between} replays the epoch order-exactly).

    Routers never move: RTT observations survive every rename, exactly
    as reassigning PTR records leaves latency untouched. *)

type config = {
  seed : int;
  p_renumber : float;  (** per named router: fresh names, same convention *)
  p_migrate : float;  (** per operator: convention migration *)
  p_decay : float;  (** per stale-named router: the stale name decays *)
  p_add : float;  (** per site: one new router appears *)
  p_remove : float;  (** per named router: retired *)
}

val default : seed:int -> config
(** Mild drift: renumber 8%, migrate 12% of operators, decay half the
    stale names, add per-site 4%, remove 3%. *)

val epoch :
  config ->
  Hoiho_itdk.Dataset.t * Truth.t ->
  Hoiho_itdk.Dataset.t * Truth.t
(** One epoch of drift. Deterministic in [config.seed] and the input.
    Unnamed (and otherwise unresolvable) routers carry over untouched;
    the returned {!Truth.t} reflects migrated conventions against the
    same dictionary. *)
