(** Synthetic network operators.

    Each operator owns a domain suffix, a naming convention, and a set
    of deployment sites (city + embedded geohint code + router count).
    Generators produce both a randomized population of operators with
    paper-like proportions, and the fixed "validation" operators that
    mirror the 12 suffixes used in the paper's §6 evaluation. *)

type kind =
  | GeoConsistent  (** systematically embeds geohints *)
  | GeoSmall  (** embeds geohints but at <3 distinct locations *)
  | GeoMixed  (** embeds geohints in only part of the hostnames *)
  | NoGeo  (** no geohints; tokens may collide with codes by chance *)

type site = {
  city : Hoiho_geodb.City.t;
  code : string;  (** embedded geohint; "" when the operator embeds none *)
  custom : bool;  (** code deviates from the reference dictionary *)
  n_routers : int;
  tpl : int option;
      (** pin this site's hostnames to one of the convention's templates
          (used by mixed-format operators, where CLLI backbone sites and
          city-named metro sites coexist under one suffix) *)
}

type t = {
  suffix : string;
  asn : int;  (** the operator's autonomous system number *)
  conv : Conv.t;
  sites : site list;
  kind : kind;
  p_customer : float;
      (** probability a router is a customer's device named under this
          operator's suffix (figure 3b): it carries the customer's ASN
          and an interconnection-style hostname *)
  p_embed : float;  (** probability a hostname carries the geo field *)
  p_stale : float;  (** probability a hostname carries another site's code *)
  p_responsive : float;  (** probability a router answers ping *)
  hostnames_per_router : int * int;
}

val codebook : t -> (string * string) list
(** (code, city key) for every site with a code. *)

val customs : t -> (string * string) list
(** The subset of {!codebook} whose codes deviate from the dictionary. *)

val random_geo :
  Hoiho_util.Prng.t -> Hoiho_geodb.Db.t -> kind:kind -> t
(** A randomized operator of the given kind (must not be [NoGeo]). *)

val random_multikind : Hoiho_util.Prng.t -> Hoiho_geodb.Db.t -> t
(** An operator that mixes two geohint types across its sites — e.g. an
    IATA backbone plus city-named metro routers — producing the
    mixed-type NCs of table 4 (31 of the paper's 795 good NCs). *)

val random_compound : Hoiho_util.Prng.t -> Hoiho_geodb.Db.t -> t
(** An AT&T-style operator (figure 12a) whose geohints glue a city id,
    a digit, and a state code into one undelimited token ("rd3tx"):
    ground truth records the embedded hints, but no regex-based method
    can delimit them (§7). *)

val random_nogeo : Hoiho_util.Prng.t -> Hoiho_geodb.Db.t -> t

val migrate : Hoiho_util.Prng.t -> t -> t
(** Convention migration: same suffix, sites, and codes, but freshly
    rolled hostname templates of the same hint kind (site template
    pins cleared) — the operator renamed its fleet. Used by
    {!Evolve} to generate time-evolving corpora. *)

val validation : Hoiho_util.Prng.t -> Hoiho_geodb.Db.t -> t list
(** The 12 fixed validation operators: above.net, aorta.net, as8218.eu,
    geant.net, gtt.net, he.net, ntt.net, nysernet.net, retn.net,
    seabone.net, tfbnw.net, zayo.com — with conventions shaped after the
    paper's descriptions of those networks. *)

val validation_suffixes : string list
