(** Seeded fault injection over a dataset and its dictionary.

    The generator produces clean data by construction; real ITDK input
    is not clean (§2, §6: stale, malformed, and misleading hostnames).
    [apply] re-introduces the pathologies of real snapshots —
    deterministically from one seed — so graceful degradation can be
    tested like any other behavior. See DESIGN.md §8 for the failure
    model and the degraded-result contract the pipeline upholds under
    injection. *)

type cls =
  | Hostname_mangle
      (** truncation, control and high-bit bytes, ".." empty labels,
          255-char labels, embedded whitespace *)
  | Dict_dropout  (** reference dictionary entries removed *)
  | Rtt_loss  (** RTT samples dropped (ping and traceroute) *)
  | Rtt_outlier
      (** queueing blow-ups (×10–100) and spoofed too-fast (<0.5 ms)
          responses; both violate the generator's soundness invariant *)
  | Rtt_negative  (** negated RTTs (broken clock arithmetic upstream) *)
  | Alias_error
      (** false aliases (foreign hostname attached to a router) and
          dangling VP ids (surface as {!Hoiho.Consist.Unknown_vp}) *)

val all_classes : cls list

val class_name : cls -> string
(** Stable snake_case name, e.g. for CLI/report output. *)

type config = { seed : int; level : int; classes : cls list }

val config : ?level:int -> ?classes:cls list -> int -> config
(** [config seed] enables {!all_classes} at [level] 1 (≈8% per-item
    injection probability; each level adds 8 points, capped at 90%).
    [level] is clamped to ≥ 1. *)

val apply :
  config ->
  Hoiho_geodb.Db.t ->
  Hoiho_itdk.Dataset.t ->
  Hoiho_geodb.Db.t * Hoiho_itdk.Dataset.t
(** Mutated copies of the dictionary and dataset (inputs are not
    modified). Deterministic: the same config yields byte-identical
    outputs and identical [chaos.*] counter increments; each class
    draws from its own split PRNG stream, so enabling or disabling one
    class never changes another's injections. VPs and links are left
    intact — adversity targets observations, not the measurement
    platform's own inventory. *)
