(** Seeded fault injection over a dataset and its dictionary.

    The generator produces clean data by construction; real ITDK input
    is not clean (§2, §6: stale, malformed, and misleading hostnames).
    [apply] re-introduces the pathologies of real snapshots —
    deterministically from one seed — so graceful degradation can be
    tested like any other behavior. See DESIGN.md §8 for the failure
    model and the degraded-result contract the pipeline upholds under
    injection. *)

type cls =
  | Hostname_mangle
      (** truncation, control and high-bit bytes, ".." empty labels,
          255-char labels, embedded whitespace *)
  | Dict_dropout  (** reference dictionary entries removed *)
  | Rtt_loss  (** RTT samples dropped (ping and traceroute) *)
  | Rtt_outlier
      (** queueing blow-ups (×10–100) and spoofed too-fast (<0.5 ms)
          responses; both violate the generator's soundness invariant *)
  | Rtt_negative  (** negated RTTs (broken clock arithmetic upstream) *)
  | Alias_error
      (** false aliases (foreign hostname attached to a router) and
          dangling VP ids (surface as {!Hoiho.Consist.Unknown_vp}) *)

val all_classes : cls list

val class_name : cls -> string
(** Stable snake_case name, e.g. for CLI/report output. *)

type config = { seed : int; level : int; classes : cls list }

val config : ?level:int -> ?classes:cls list -> int -> config
(** [config seed] enables {!all_classes} at [level] 1 (≈8% per-item
    injection probability; each level adds 8 points, capped at 90%).
    [level] is clamped to ≥ 1. *)

val apply :
  config ->
  Hoiho_geodb.Db.t ->
  Hoiho_itdk.Dataset.t ->
  Hoiho_geodb.Db.t * Hoiho_itdk.Dataset.t
(** Mutated copies of the dictionary and dataset (inputs are not
    modified). Deterministic: the same config yields byte-identical
    outputs and identical [chaos.*] counter increments; each class
    draws from its own split PRNG stream, so enabling or disabling one
    class never changes another's injections. VPs and links are left
    intact — adversity targets observations, not the measurement
    platform's own inventory. *)

(** {1 Network fault plans}

    The serving daemon (lib/net) faces a different adversary than the
    learning pipeline: hostile or broken HTTP clients. A {!net_plan}
    is a deterministic description of one such client — the bytes it
    writes, how it paces them, and whether it sticks around for an
    answer — generated from a seed exactly like the dataset fault
    classes above. The plans are pure data (no sockets here), so the
    net test layer can execute them against a live server and the
    contract stays testable: the server must answer, shed, or close —
    never crash, never wedge a connection past its deadline. *)

type net_fault =
  | Slow_loris
      (** a well-formed request dribbled a few bytes at a time with
          pauses: each read beats the socket timeout, only the
          per-request deadline can end it *)
  | Torn_request
      (** a prefix of a valid request, then an abrupt close *)
  | Oversized_hostname
      (** a syntactically valid request whose hostname exceeds the
          regex engine's subject bound — must 400, not crash or scan *)
  | Control_bytes
      (** raw control bytes embedded in the request line *)
  | Garbage  (** bytes that are not HTTP at all *)

val all_net_faults : net_fault list

val net_fault_name : net_fault -> string
(** Stable snake_case name, e.g. for test labels. *)

type net_plan = {
  fault : net_fault;
  payload : string;  (** the bytes this client writes *)
  chunk : int;  (** write granularity, [>= 1] *)
  pause_s : float;  (** pause between chunks *)
  expect_response : bool;
      (** whether the client waits to read a response (a torn or
          garbage client just disconnects) *)
}

val net_plans : ?n:int -> int -> net_plan list
(** [net_plans seed] is [n] (default 25) deterministic client plans
    cycling through {!all_net_faults} in order, so every class is
    covered whenever [n >= 5]. Same seed, same plans, byte for byte;
    each generated plan bumps the [chaos.net_faults] counter. *)
