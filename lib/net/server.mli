(** The `hoiho serve` network daemon: a multi-domain TCP/HTTP server
    over {!Hoiho_serve.Serve} — the snapshot apply path behind a
    socket.

    Threading model: [jobs] accept domains share one listening socket;
    each accepted connection is served to completion (keep-alive) on
    its accept domain with a per-request read deadline, so a
    slow-loris client costs at most one domain for one deadline. A
    batcher domain ({!Batcher}) coalesces concurrent lookups into
    {!Hoiho_serve.Serve.apply_batch} calls, and a housekeeping domain
    applies reload requests off the serving path.

    Endpoints:
    - [GET /geolocate?h=HOSTNAME] — one answer: [City.describe] text
      or ["-"], batched with concurrent requests.
    - [POST /batch] — newline-separated hostnames in the body; one
      [hostname<TAB>answer] line per input line, in order (["!invalid"]
      for names rejected at the boundary).
    - [GET /explain?h=HOSTNAME] — the answer plus the rendered
      decision trace of this one application (uncached).
    - [GET /metrics] — OpenMetrics exposition of the process registry.
    - [GET /healthz] — liveness ([200 ok]).
    - [POST /reload[?model=PATH]] — hot model reload, see below.
    - [POST /observe] — a body of {!Hoiho.Delta} wire events: the
      daemon applies them to its retained corpus ([corpus_path]),
      incrementally relearns only the dirty suffix groups, and swaps
      the result in with the warm cache carried over minus the dirty
      suffixes' entries ({!Hoiho_serve.Serve.rebuild}). Malformed
      bodies and unknown router ids get typed 400s; without a
      configured corpus every /observe is a 400. Observes are
      serialized; lookups keep serving the old model until the swap.

    Input boundary: every hostname is normalized exactly once, with
    {!Hoiho_util.Strutil.normalize_hostname}, at the request boundary,
    then guarded ({!Hoiho_util.Strutil.has_empty_dns_label}, the regex
    engine's {!Hoiho_rx.Engine.max_subject_len}); what passes is fed
    to the serve layer pre-normalized, so a served answer is
    byte-identical to in-process {!Hoiho.Pipeline.geolocate} on the
    same raw string.

    Hot reload: the new snapshot is decoded and a fresh
    {!Hoiho_serve.Serve.t} built off-path, then swapped in with one
    atomic store. The LRU lives inside the [Serve.t], so the swap
    also replaces the cache — stale entries (negative ones included)
    cannot survive a model change. In-flight batches finish on the
    server they started with. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port, see {!port} *)
  jobs : int;  (** accept domains; also the apply parallelism *)
  max_batch : int;  (** coalescing cap, hostnames per batch *)
  max_wait_ms : float;  (** coalescing window after the first ticket *)
  max_pending : int;  (** admission bound; beyond it requests get 503 *)
  request_timeout_s : float;  (** per-request read deadline *)
  max_body : int;  (** request body cap, bytes *)
  model_path : string option;  (** snapshot to re-read on reload *)
  corpus_path : string option;
      (** ITDK corpus backing [POST /observe]; must be the corpus the
          served model was (default-options) learned from, or the
          incremental-equivalence contract of {!Hoiho.Delta} does not
          apply. [None] disables /observe. *)
}

val default_config : config
(** 127.0.0.1:0, jobs = {!Hoiho_util.Pool.default_jobs}, max_batch 64,
    max_wait_ms 1.0, max_pending 1024, request_timeout_s 5.0,
    max_body 1 MiB, no model or corpus path. *)

type t

val start : ?config:config -> Hoiho.Learned_io.t -> t
(** Bind, listen, and spawn the accept/batcher/housekeeping domains.
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound port (the ephemeral one when [config.port] was 0). *)

val reload : t -> Hoiho.Learned_io.t -> unit
(** Swap in an already-decoded model (fresh [Serve.t], fresh cache). *)

val reload_from_path : t -> string -> (unit, string) result
(** Decode [path] off-path and swap it in; on any decode error the
    old model keeps serving and the error text is returned. *)

val request_reload : t -> unit
(** Mark a reload wanted (what a SIGHUP handler calls — async-signal
    safe: one atomic store). The housekeeping domain performs
    {!reload_from_path} with [config.model_path] shortly after. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, let in-flight requests finish,
    drain the batcher, join every domain, close the listener.
    Idempotent. *)
