(** The `hoiho serve` network daemon: a multi-domain TCP/HTTP server
    over {!Hoiho_serve.Serve} — the snapshot apply path behind a
    socket.

    Threading model: [jobs] accept domains share one listening socket;
    each accepted connection is served to completion (keep-alive) on
    its accept domain with a per-request read deadline, so a
    slow-loris client costs at most one domain for one deadline. A
    batcher domain ({!Batcher}) coalesces concurrent lookups into
    {!Hoiho_serve.Serve.apply_batch} calls, and a housekeeping domain
    applies reload requests off the serving path.

    Endpoints:
    - [GET /geolocate?h=HOSTNAME] — one answer: [City.describe] text
      or ["-"], batched with concurrent requests.
    - [POST /batch] — newline-separated hostnames in the body; one
      [hostname<TAB>answer] line per input line, in order (["!invalid"]
      for names rejected at the boundary).
    - [GET /explain?h=HOSTNAME] — the answer plus the rendered
      decision trace of this one application (uncached).
    - [GET /metrics] — OpenMetrics exposition of the process registry
      ([text/plain; version=0.0.4; charset=utf-8]).
    - [GET /healthz] — the evaluated health state (DESIGN.md §14):
      [200 ok] when every objective is within budget, [200 degraded:
      ...] when some budget is exceeded, [503 failing: ...] (naming
      the failing objectives) when an objective burns past its
      [fail_ratio].
    - [GET /debug/slo] — strict JSON: the evaluated state, each
      objective with its current value and burn rate, and the raw
      measurement vector.
    - [GET /debug/windows] — strict JSON: per-window rolling stats
      (latency, errors, shed, confidence) plus the expected and
      observed calibration deciles behind the drift measurement.
    - [POST /reload[?model=PATH]] — hot model reload, see below.
    - [POST /observe] — a body of {!Hoiho.Delta} wire events: the
      daemon applies them to its retained corpus ([corpus_path]),
      incrementally relearns only the dirty suffix groups, and swaps
      the result in with the warm cache carried over minus the dirty
      suffixes' entries ({!Hoiho_serve.Serve.rebuild}). Malformed
      bodies and unknown router ids get typed 400s; without a
      configured corpus every /observe is a 400. Observes are
      serialized; lookups keep serving the old model until the swap.

    Input boundary: every hostname is normalized exactly once, with
    {!Hoiho_util.Strutil.normalize_hostname}, at the request boundary,
    then guarded ({!Hoiho_util.Strutil.has_empty_dns_label}, the regex
    engine's {!Hoiho_rx.Engine.max_subject_len}); what passes is fed
    to the serve layer pre-normalized, so a served answer is
    byte-identical to in-process {!Hoiho.Pipeline.geolocate} on the
    same raw string.

    Hot reload: the new snapshot is decoded and a fresh
    {!Hoiho_serve.Serve.t} built off-path, then swapped in with one
    atomic store. The LRU lives inside the [Serve.t], so the swap
    also replaces the cache — stale entries (negative ones included)
    cannot survive a model change. In-flight batches finish on the
    server they started with. Every model swap also swaps the
    expected calibration profile the drift monitor compares served
    confidences against.

    Observability: every response carries an [X-Request-Id] header
    (the client's, when sane, else a generated one), which is also a
    span attribute on the per-request ["net.request"] trace span.
    With [access_log] set, every response appends one
    {!Access_log.entry} JSON line. A {!Hoiho_obs.Health.monitor}
    aggregates per-request latency/error/shed/confidence into rolling
    windows; the housekeeping domain re-evaluates it continuously and
    publishes [health.state] (0/1/2) and
    [health.calibration_drift_ppm] gauges. The observability endpoints
    themselves ([/healthz], [/metrics], [/debug/*]) are access-logged
    but excluded from the health windows — a probe seeing a 503
    {e because} the daemon is failing must not count as a fresh
    service error, or watching a failing daemon would pin it failing. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port, see {!port} *)
  jobs : int;  (** accept domains; also the apply parallelism *)
  max_batch : int;  (** coalescing cap, hostnames per batch *)
  max_wait_ms : float;  (** coalescing window after the first ticket *)
  max_pending : int;  (** admission bound; beyond it requests get 503 *)
  request_timeout_s : float;  (** per-request read deadline *)
  max_body : int;  (** request body cap, bytes *)
  model_path : string option;  (** snapshot to re-read on reload *)
  corpus_path : string option;
      (** ITDK corpus backing [POST /observe]; must be the corpus the
          served model was (default-options) learned from, or the
          incremental-equivalence contract of {!Hoiho.Delta} does not
          apply. [None] disables /observe. *)
  objectives : Hoiho_obs.Health.objective list option;
      (** SLO objectives for the health monitor (what [--slo FILE]
          supplies via {!Slo.load}); [None] uses
          {!Hoiho_obs.Health.default_objectives}, generous enough that
          a clean server evaluates [Ok]. *)
  health_bucket_ms : float;  (** health window bucket width *)
  health_nbuckets : int;
      (** health window ring length; span = bucket × ring *)
  access_log : string option;
      (** JSON-lines access log path ({!Access_log}); [None] disables.
          An unwritable path fails {!start}. *)
  access_log_max_bytes : int;  (** size-based rotation threshold *)
}

val default_config : config
(** 127.0.0.1:0, jobs = {!Hoiho_util.Pool.default_jobs}, max_batch 64,
    max_wait_ms 1.0, max_pending 1024, request_timeout_s 5.0,
    max_body 1 MiB, no model or corpus path, default objectives over a
    60 s window (5 s × 12 buckets), no access log (16 MiB rotation
    when enabled). *)

type t

val start : ?config:config -> Hoiho.Learned_io.t -> t
(** Bind, listen, and spawn the accept/batcher/housekeeping domains.
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val port : t -> int
(** The bound port (the ephemeral one when [config.port] was 0). *)

val monitor : t -> Hoiho_obs.Health.monitor
(** The live health monitor — what chaos tests feed synthetic
    latency/error samples through to drive state transitions. *)

val health : t -> Hoiho_obs.Health.state
(** Evaluate the monitor right now (what [/healthz] reports). *)

val reload : t -> Hoiho.Learned_io.t -> unit
(** Swap in an already-decoded model (fresh [Serve.t], fresh cache). *)

val reload_from_path : t -> string -> (unit, string) result
(** Decode [path] off-path and swap it in; on any decode error the
    old model keeps serving and the error text is returned. *)

val request_reload : t -> unit
(** Mark a reload wanted (what a SIGHUP handler calls — async-signal
    safe: one atomic store). The housekeeping domain performs
    {!reload_from_path} with [config.model_path] shortly after. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, let in-flight requests finish,
    drain the batcher, join every domain, close the listener.
    Idempotent. *)
