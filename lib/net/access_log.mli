(** Structured per-request access logging for the serving daemon:
    JSON-lines entries rendered with {!Hoiho_util.Json}, written
    whole-line under a mutex with flush-per-line, and rotated by size
    (DESIGN.md §14).

    The entry is plain data and {!line_of_entry} is pure — equal
    entries render equal bytes — so tests replay a request sequence
    and pin the log byte-for-byte without a daemon in the loop. The
    daemon writes one line per HTTP response, including boundary
    rejections and sheds. *)

type entry = {
  request_id : string;  (** echoed or generated [X-Request-Id] *)
  endpoint : string;  (** ["GET /geolocate"]; ["-"] for unparsable requests *)
  status : int;
  latency_us : int;  (** request wall time, microseconds *)
  batch : int;  (** hostnames submitted to the batcher (0 for non-lookup) *)
  cache_hit : bool;
      (** every submitted hostname was already cached (read-only probe,
          {!Hoiho_serve.Serve.cached}); false for non-lookup requests *)
  confidence : float option;
      (** the answer's confidence for single-hostname lookups *)
  shed : bool;  (** 503 from admission control *)
  degraded : bool;  (** health state was Degraded/Failing when served *)
}

val line_of_entry : entry -> string
(** One compact JSON object, no trailing newline. Field order is fixed
    ([request_id], [endpoint], [status], [latency_us], [batch],
    [cache_hit], [confidence], [shed], [degraded]); [confidence] is
    [null] when absent. Pure: equal entries render equal bytes. *)

(** {1 Writer} *)

type t

val create : ?max_bytes:int -> string -> (t, string) result
(** Open [path] for appending (created if missing). [max_bytes]
    (default 16 MiB) bounds the file: when a write pushes past it the
    file is rotated — renamed to [path ^ ".1"] (replacing any previous
    rotation) and reopened fresh, so the live file plus one
    predecessor is the total disk budget. Unwritable paths are
    [Error]. *)

val log : t -> entry -> unit
(** Append one line atomically with respect to other [log] calls (the
    writer mutex covers render-check-rotate-write-flush), flushing so
    a crash loses at most the in-flight line. Write failures are
    swallowed: logging must never take the serving path down. *)

val path : t -> string

val close : t -> unit
(** Flush and close. Idempotent; [log] after [close] is a no-op. *)
