(** Cross-request batching with bounded admission.

    Connection handlers submit normalized hostnames and block until
    their answers arrive; a single batcher domain coalesces everything
    queued into one {!Hoiho_serve.Serve.apply_batch}-shaped call —
    up to [max_batch] hostnames or [max_wait_ms] milliseconds after
    the first queued ticket, whichever comes first. When nothing else
    is in flight (the [more_hint] callback reports no other active
    producers) a batch closes immediately, so an isolated request pays
    no coalescing latency.

    Admission control is explicit: at most [max_pending] hostnames may
    be queued; a submission that would exceed the bound is rejected
    with [`Overloaded] — the daemon turns that into a 503 — rather
    than queued into an unbounded backlog. [net.shed] counts the
    rejected hostnames, [net.batches] / [net.batch_hostnames] the
    executed work, and the [net.batch_fill] gauge keeps the largest
    batch seen.

    The [apply] callback runs on the batcher domain. It must return
    one answer per submitted key, in order, and should never raise; if
    it does, every waiter of that batch receives [`Failed] and the
    batcher keeps running. *)

type 'a t

val create :
  ?max_batch:int ->
  ?max_wait_ms:float ->
  ?max_pending:int ->
  ?more_hint:(unit -> int) ->
  apply:(string list -> 'a list) ->
  unit ->
  'a t
(** Defaults: [max_batch] 64, [max_wait_ms] 1.0, [max_pending] 1024.
    [more_hint] (default: always 0) returns the number of producers
    currently preparing or awaiting a submission — the batcher only
    waits out the coalescing window while more tickets than it has
    already collected might still arrive. *)

val submit :
  'a t -> string list -> ('a list, [ `Overloaded | `Stopped | `Failed ]) result
(** Block until the batch containing these keys has been applied.
    Answers come back in the order the keys were given. An empty list
    returns [Ok []] immediately. *)

val pending : 'a t -> int
(** Hostnames currently queued (diagnostic). *)

val stop : 'a t -> unit
(** Drain every queued ticket, then join the batcher domain.
    Subsequent {!submit}s return [Error `Stopped]. Idempotent. *)
