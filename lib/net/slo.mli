(** SLO declaration files for the serving daemon's health monitor
    ([hoiho serve --slo FILE], DESIGN.md §14): strict JSON in,
    {!Hoiho_obs.Health.objective}s out.

    The schema, all fields optional except [objectives]:

    {v
    {
      "window_s": 60,          // sliding-window span, default 60
      "buckets": 12,           // ring buckets across the span, default 12
      "objectives": [
        {"metric": "latency_p99_ms", "max": 250},
        {"metric": "error_rate",     "max": 0.05, "fail_ratio": 3.0}
      ]
    }
    v}

    [metric] must name a measurement the monitor produces
    ({!metrics}); [max] must be positive; [fail_ratio] (default 2.0)
    must exceed 1. Parsing is strict and total: anything malformed is
    an [Error] naming the offending path, never an exception — a bad
    SLO file fails daemon startup, not the first health probe. *)

type t = {
  objectives : Hoiho_obs.Health.objective list;
  bucket_ms : float;  (** window_s × 1000 / buckets *)
  nbuckets : int;
}

val metrics : string list
(** The measurement names an objective may budget: [latency_p50_ms],
    [latency_p99_ms], [error_rate], [shed_rate], [calibration_drift]. *)

val parse : string -> (t, string) result

val load : string -> (t, string) result
(** [parse] of the file contents; unreadable files are [Error]. *)
