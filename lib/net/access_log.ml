module Json = Hoiho_util.Json

type entry = {
  request_id : string;
  endpoint : string;
  status : int;
  latency_us : int;
  batch : int;
  cache_hit : bool;
  confidence : float option;
  shed : bool;
  degraded : bool;
}

(* fixed field order: the line is part of the observable surface tests
   pin byte-for-byte *)
let line_of_entry e =
  Json.to_string
    (Json.Obj
       [
         ("request_id", Json.String e.request_id);
         ("endpoint", Json.String e.endpoint);
         ("status", Json.Int e.status);
         ("latency_us", Json.Int e.latency_us);
         ("batch", Json.Int e.batch);
         ("cache_hit", Json.Bool e.cache_hit);
         ( "confidence",
           match e.confidence with Some c -> Json.Float c | None -> Json.Null );
         ("shed", Json.Bool e.shed);
         ("degraded", Json.Bool e.degraded);
       ])

type t = {
  lpath : string;
  max_bytes : int;
  lock : Mutex.t;
  mutable oc : out_channel option;
  mutable written : int;
}

let create ?(max_bytes = 16 * 1024 * 1024) path =
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
      Ok
        {
          lpath = path;
          max_bytes = max 1024 max_bytes;
          lock = Mutex.create ();
          oc = Some oc;
          written = out_channel_length oc;
        }
  | exception Sys_error msg -> Error msg

let path t = t.lpath

(* under the writer lock: rename the full file to <path>.1 (replacing
   any previous rotation — the budget is the live file plus one
   predecessor) and start fresh *)
let rotate t oc =
  close_out_noerr oc;
  (try Sys.rename t.lpath (t.lpath ^ ".1") with Sys_error _ -> ());
  (match open_out_gen [ Open_append; Open_creat ] 0o644 t.lpath with
  | oc' ->
      t.oc <- Some oc';
      t.written <- 0
  | exception Sys_error _ -> t.oc <- None)

let log t entry =
  let line = line_of_entry entry ^ "\n" in
  Mutex.lock t.lock;
  (match t.oc with
  | None -> ()
  | Some oc ->
      if t.written > 0 && t.written + String.length line > t.max_bytes then
        rotate t oc;
      (match t.oc with
      | None -> ()
      | Some oc -> (
          (* a full disk or yanked file must never take serving down *)
          try
            output_string oc line;
            flush oc;
            t.written <- t.written + String.length line
          with Sys_error _ -> ())));
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  (match t.oc with
  | Some oc ->
      (try flush oc with Sys_error _ -> ());
      close_out_noerr oc;
      t.oc <- None
  | None -> ());
  Mutex.unlock t.lock
