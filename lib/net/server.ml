module Serve = Hoiho_serve.Serve
module Learned_io = Hoiho.Learned_io
module Delta = Hoiho.Delta
module Io = Hoiho_itdk.Io
module Dataset = Hoiho_itdk.Dataset
module City = Hoiho_geodb.City
module Strutil = Hoiho_util.Strutil
module Engine = Hoiho_rx.Engine
module Pool = Hoiho_util.Pool
module Obs = Hoiho_obs.Obs
module Trace = Hoiho_obs.Trace
module Health = Hoiho_obs.Health
module Window = Hoiho_obs.Window
module Json = Hoiho_util.Json

let c_conns = Obs.counter "net.connections"
let c_requests = Obs.counter "net.requests"
let c_ok = Obs.counter "net.responses_2xx"
let c_client_err = Obs.counter "net.responses_4xx"
let c_server_err = Obs.counter "net.responses_5xx"
let c_unavailable = Obs.counter "net.responses_503"
let c_invalid_hostnames = Obs.counter "net.invalid_hostnames"
let c_timeouts = Obs.counter "net.request_timeouts"
let c_reloads = Obs.counter "net.reloads"
let c_reload_failures = Obs.counter "net.reload_failures"
let c_observes = Obs.counter "net.observes"
let c_observe_events = Obs.counter "net.observe_events"
let c_observe_failures = Obs.counter "net.observe_failures"
let h_request = Obs.histogram "net.request_ms"

(* level gauges (set, not high-water): the current evaluated health
   state (0 ok / 1 degraded / 2 failing) and the served-confidence
   drift vs the model's stored calibration profile, in parts-per-million
   (gauges are ints; 1e6 keeps three decimals of the [0,1] distance) *)
let g_health_state = Obs.gauge "health.state"
let g_drift = Obs.gauge "health.calibration_drift_ppm"

type config = {
  host : string;
  port : int;
  jobs : int;
  max_batch : int;
  max_wait_ms : float;
  max_pending : int;
  request_timeout_s : float;
  max_body : int;
  model_path : string option;
  corpus_path : string option;
  objectives : Health.objective list option;
  health_bucket_ms : float;
  health_nbuckets : int;
  access_log : string option;
  access_log_max_bytes : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    jobs = Pool.default_jobs ();
    max_batch = 64;
    max_wait_ms = 1.0;
    max_pending = 1024;
    request_timeout_s = 5.0;
    max_body = 1 lsl 20;
    model_path = None;
    corpus_path = None;
    objectives = None;
    health_bucket_ms = 5000.0;
    health_nbuckets = 12;
    access_log = None;
    access_log_max_bytes = 16 * 1024 * 1024;
  }

type t = {
  cfg : config;
  listener : Unix.file_descr;
  bound_port : int;
  serve : Serve.t Atomic.t;
  batcher : Serve.answer Batcher.t;
  monitor : Health.monitor;
  access : Access_log.t option;
  (* the housekeeper's cached evaluation, read per request for the
     access-log degraded flag so the hot path never sorts a window *)
  health_state : int Atomic.t;
  rid_counter : int Atomic.t;
  stop_flag : bool Atomic.t;
  reload_flag : bool Atomic.t;
  (* producers currently inside a request handler; the batcher's
     coalescing hint *)
  active : int Atomic.t;
  explain_mutex : Mutex.t;
  (* serializes /observe: relearn-and-swap must see a consistent
     (corpus, model) pair. Guarded by [relearn_mutex]. *)
  relearn_mutex : Mutex.t;
  mutable corpus : Dataset.t option;
  mutable accepters : unit Domain.t list;
  mutable housekeeper : unit Domain.t option;
  mutable stopped : bool;
  stop_mutex : Mutex.t;
}

(* --- the input boundary (DESIGN.md §11) ---

   Raw bytes from the network are normalized exactly once, here, and
   guarded before they reach the serve layer: an empty or
   dot-malformed name would make label-positional methods misbehave,
   and a subject over the regex engine's bound can only ever miss.
   Everything downstream runs with [~normalized:true]. *)

let boundary raw =
  let key = Strutil.normalize_hostname raw in
  if
    key = ""
    || Strutil.has_empty_dns_label key
    || String.length key > Engine.max_subject_len
  then begin
    Obs.incr c_invalid_hostnames;
    Error `Invalid
  end
  else Ok key

let describe = function Some c -> City.describe c | None -> "-"

(* --- response vocabulary ---

   Every answered hostname renders as "GEOHINT\tCONF" with CONF to
   three decimals; negative answers are "-\t0.000", never a missing
   field, so /batch rows always have the same column count. With
   ?min_conf=X a *positive* answer scoring below X renders as the
   distinct "!low-confidence\tCONF" outcome (the score is still
   disclosed: the client asked for a floor, not secrecy). Negative
   answers stay "-": the floor suppresses uncertain claims, and "no
   geolocation" is not a claim — the CLI's --min-conf makes the same
   distinction. *)

let render_answer ?min_conf (a : Serve.answer) =
  match (a.Serve.city, min_conf) with
  | Some _, Some floor when a.Serve.confidence < floor ->
      Printf.sprintf "!low-confidence\t%.3f" a.Serve.confidence
  | _ -> Printf.sprintf "%s\t%.3f" (describe a.Serve.city) a.Serve.confidence

(* absent -> no thresholding; unparsable or out-of-range -> client
   error, distinguishable from a low-confidence answer *)
let min_conf_param req =
  match Http.query_param req "min_conf" with
  | None -> Ok None
  | Some raw -> (
      match float_of_string_opt raw with
      | Some f when f >= 0.0 && f <= 1.0 -> Ok (Some f)
      | _ -> Error `Bad_min_conf)

(* --- responses --- *)

let count_status status =
  Obs.incr c_requests;
  if status >= 200 && status < 300 then Obs.incr c_ok
  else if status = 503 then begin
    Obs.incr c_unavailable;
    Obs.incr c_server_err
  end
  else if status >= 500 then Obs.incr c_server_err
  else if status >= 400 then Obs.incr c_client_err

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

(* --- per-request context ---

   One mutable record rides through dispatch so the response writer,
   the health monitor, and the access log see one consistent story:
   which request id went out, what status, whether admission shed it,
   how many hostnames it carried, and what the answer's confidence
   was. Allocated per request; fields default to the non-lookup
   shape. *)

type req_ctx = {
  rid : string;
  endpoint : string;
  mutable status : int;
  mutable shed : bool;
  mutable batch : int;
  mutable cache_hit : bool;
  mutable confidence : float option;
}

(* a client-supplied X-Request-Id is echoed when it is sane: non-empty,
   bounded, visible ASCII only (it goes back out in a header and into
   log lines — no CR/LF smuggling, no control bytes) *)
let sane_rid s =
  let n = String.length s in
  n > 0 && n <= 128
  && String.for_all (fun c -> c > ' ' && Char.code c < 0x7f) s

let rid_of_request t req =
  match Http.header req "x-request-id" with
  | Some rid when sane_rid rid -> rid
  | _ ->
      Printf.sprintf "hoiho-%d-%d" (Unix.getpid ())
        (Atomic.fetch_and_add t.rid_counter 1)

let make_ctx ~rid ~endpoint =
  {
    rid;
    endpoint;
    status = 0;
    shed = false;
    batch = 0;
    cache_hit = false;
    confidence = None;
  }

(* every response — handlers and parse-error paths alike — goes out
   through here: the status is counted once, recorded in the ctx for
   the monitor/access log, and the request id is echoed back *)
let respond ctx fd ?(headers = []) ?content_type ~status body =
  count_status status;
  ctx.status <- status;
  write_all fd
    (Http.response
       ~headers:(("X-Request-Id", ctx.rid) :: headers)
       ?content_type ~status body)

(* --- handlers --- *)

let handle_geolocate t ctx fd req =
  match min_conf_param req with
  | Error `Bad_min_conf ->
      respond ctx fd ~status:400 "invalid min_conf (want a float in [0,1])\n"
  | Ok min_conf -> (
      match Http.query_param req "h" with
      | None -> respond ctx fd ~status:400 "missing query parameter h\n"
      | Some raw -> (
          match boundary raw with
          | Error `Invalid -> respond ctx fd ~status:400 "invalid hostname\n"
          | Ok key -> (
              ctx.batch <- 1;
              (* read-only probe, before submit: the answer below may
                 itself populate the cache *)
              ctx.cache_hit <- Serve.cached (Atomic.get t.serve) key;
              match Batcher.submit t.batcher [ key ] with
              | Ok [ answer ] ->
                  ctx.confidence <- Some answer.Serve.confidence;
                  respond ctx fd ~status:200
                    (render_answer ?min_conf answer ^ "\n")
              | Ok _ -> respond ctx fd ~status:500 "internal error\n"
              | Error `Overloaded ->
                  ctx.shed <- true;
                  respond ctx fd
                    ~headers:[ ("Retry-After", "1") ]
                    ~status:503 "overloaded, retry later\n"
              | Error (`Stopped | `Failed) ->
                  respond ctx fd ~status:503 "shutting down\n")))

let handle_batch t ctx fd req =
  match min_conf_param req with
  | Error `Bad_min_conf ->
      respond ctx fd ~status:400 "invalid min_conf (want a float in [0,1])\n"
  | Ok min_conf ->
  let lines =
    String.split_on_char '\n' req.Http.body
    |> List.map (fun l ->
           let l = String.trim l in
           l)
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then respond ctx fd ~status:400 "empty batch\n"
  else begin
    (* boundary-normalize every line once; invalid lines keep their
       slot so the response aligns line-for-line with the request *)
    let keyed = List.map (fun raw -> (raw, boundary raw)) lines in
    let keys = List.filter_map (fun (_, k) -> Result.to_option k) keyed in
    ctx.batch <- List.length keys;
    ctx.cache_hit <-
      keys <> []
      && List.for_all (Serve.cached (Atomic.get t.serve)) keys;
    let submitted =
      if keys = [] then Ok [] else Batcher.submit t.batcher keys
    in
    match submitted with
    | Error `Overloaded ->
        ctx.shed <- true;
        respond ctx fd
          ~headers:[ ("Retry-After", "1") ]
          ~status:503 "overloaded, retry later\n"
    | Error (`Stopped | `Failed) -> respond ctx fd ~status:503 "shutting down\n"
    | Ok answers ->
        let buf = Buffer.create 4096 in
        let rec render answers = function
          | [] -> ()
          | (raw, Error `Invalid) :: rest ->
              (* same column count as answered rows: the 0.000 is the
                 uniform negative-confidence placeholder *)
              Buffer.add_string buf (raw ^ "\t!invalid\t0.000\n");
              render answers rest
          | (raw, Ok _) :: rest -> (
              match answers with
              | a :: answers ->
                  Buffer.add_string buf
                    (raw ^ "\t" ^ render_answer ?min_conf a ^ "\n");
                  render answers rest
              | [] -> ())
        in
        render answers keyed;
        respond ctx fd ~status:200 (Buffer.contents buf)
  end

(* the /explain decision trace: serialize explains (the tracer is
   process-global) and render only the span tree rooted at this
   application, so concurrent traffic that records spans while tracing
   is briefly enabled cannot leak into the answer *)
let handle_explain t ctx fd req =
  match Http.query_param req "h" with
  | None -> respond ctx fd ~status:400 "missing query parameter h\n"
  | Some raw -> (
      match boundary raw with
      | Error `Invalid -> respond ctx fd ~status:400 "invalid hostname\n"
      | Ok key ->
          let answer, rendered =
            Mutex.lock t.explain_mutex;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock t.explain_mutex)
              (fun () ->
                let was = Trace.enabled () in
                Trace.set_enabled true;
                Trace.clear ();
                let answer =
                  Serve.geolocate_uncached_conf (Atomic.get t.serve) key
                in
                Trace.set_enabled was;
                let spans = Trace.spans () in
                (* keep the serve.apply root for [key] and its subtree *)
                let root =
                  List.find_opt
                    (fun (s : Trace.span) ->
                      s.Trace.name = "serve.apply"
                      && s.Trace.parent = None
                      && List.assoc_opt "hostname" s.Trace.attrs = Some key)
                    spans
                in
                let mine =
                  match root with
                  | None -> []
                  | Some root ->
                      let keep = Hashtbl.create 64 in
                      Hashtbl.add keep root.Trace.id ();
                      (* spans are sorted by start time, parents first *)
                      List.filter
                        (fun (s : Trace.span) ->
                          s.Trace.id = root.Trace.id
                          ||
                          match s.Trace.parent with
                          | Some p when Hashtbl.mem keep p ->
                              Hashtbl.add keep s.Trace.id ();
                              true
                          | _ -> false)
                        spans
                in
                (answer, Trace.render_text mine))
          in
          ctx.confidence <- Some answer.Serve.confidence;
          respond ctx fd ~status:200
            (Printf.sprintf "%s\t%s\n\n%s" key (render_answer answer) rendered))

let handle_metrics ctx fd =
  (* the Prometheus text-exposition content type — scrapers content-
     negotiate on it; the previous application/openmetrics-text value
     declared the stricter OpenMetrics dialect this exposition does not
     fully implement *)
  respond ctx fd
    ~content_type:"text/plain; version=0.0.4; charset=utf-8"
    ~status:200
    (Obs.to_openmetrics (Obs.snapshot ()))

let do_reload t path =
  match Learned_io.load path with
  | Error e ->
      Obs.incr c_reload_failures;
      Error (Learned_io.error_to_string e)
  | Ok model ->
      (* build the new server (dictionary resolution, suffix index,
         fresh LRU) before the swap: serving never blocks on a decode,
         and no cache entry learned under the old model survives *)
      Atomic.set t.serve (Serve.create model);
      (* the drift baseline follows the serving model: answers from the
         new snapshot are judged against ITS expected profile *)
      Health.set_expected_profile t.monitor model.Learned_io.calibration;
      Obs.incr c_reloads;
      Ok ()

let handle_reload t ctx fd req =
  let path =
    match Http.query_param req "model" with
    | Some p when p <> "" -> Some p
    | _ -> t.cfg.model_path
  in
  match path with
  | None -> respond ctx fd ~status:400 "no model path configured\n"
  | Some path -> (
      match do_reload t path with
      | Ok () -> respond ctx fd ~status:200 ("reloaded " ^ path ^ "\n")
      | Error msg -> respond ctx fd ~status:500 ("reload failed: " ^ msg ^ "\n"))

(* POST /observe: the streaming half of the serving story. A body of
   Delta wire events is applied to the retained corpus, only the dirty
   suffix groups are relearned against the serving model's own
   dictionary, and the result is swapped in with the warm cache carried
   over minus the dirty suffixes' entries (Serve.rebuild). The mutex
   serializes observes so every relearn sees a consistent
   (corpus, model) pair; lookups keep serving the old model
   throughout — the swap is one atomic store, exactly like /reload. *)
let handle_observe t ctx fd req =
  Mutex.lock t.relearn_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.relearn_mutex) @@ fun () ->
  match t.corpus with
  | None ->
      Obs.incr c_observe_failures;
      respond ctx fd ~status:400 "no corpus configured (start with --corpus)\n"
  | Some corpus -> (
      match Delta.events_of_string req.Http.body with
      | Error msg ->
          Obs.incr c_observe_failures;
          respond ctx fd ~status:400 ("bad events: " ^ msg ^ "\n")
      | Ok events -> (
          let model = Serve.model (Atomic.get t.serve) in
          match Delta.relearn_model ~jobs:t.cfg.jobs ~model ~corpus events with
          | Error e ->
              Obs.incr c_observe_failures;
              respond ctx fd ~status:400
                ("bad events: " ^ Delta.error_to_string e ^ "\n")
          | Ok (model', corpus', stats) ->
              t.corpus <- Some corpus';
              Atomic.set t.serve
                (Serve.rebuild ~dirty:stats.Delta.dirty (Atomic.get t.serve)
                   model');
              Health.set_expected_profile t.monitor
                model'.Learned_io.calibration;
              Obs.incr c_observes;
              Obs.add c_observe_events stats.Delta.events;
              respond ctx fd ~status:200
                (Printf.sprintf
                   "relearned: %d events, %d dirty suffixes, %d groups \
                    relearned, %d reused\n"
                   stats.Delta.events
                   (List.length stats.Delta.dirty)
                   stats.Delta.groups_relearned stats.Delta.groups_reused)))

(* --- health & debug endpoints (DESIGN.md §14) --- *)

(* fresh evaluation at the probe (the housekeeper's cached state could
   be a tick stale — a load balancer polling /healthz deserves the
   current window). The cache is refreshed as a side effect so the
   access-log degraded flag tracks the latest evaluation. *)
let evaluate_health t =
  let state = Health.evaluate_monitor t.monitor ~now_ms:(Obs.now_ms ()) in
  Atomic.set t.health_state (Health.state_to_int state);
  state

let handle_healthz t ctx fd =
  match evaluate_health t with
  | Health.Ok -> respond ctx fd ~status:200 "ok\n"
  | Health.Degraded _ as s ->
      (* degraded is a warning, not an outage: load balancers keep
         routing (200), operators see the reasons in the body *)
      respond ctx fd ~status:200 (Health.render s ^ "\n")
  | Health.Failing _ as s -> respond ctx fd ~status:503 (Health.render s ^ "\n")

let json_of_stats (s : Window.stats) =
  Json.Obj
    [
      ("n", Json.Int s.Window.n);
      ("rate_per_s", Json.Float s.Window.rate_per_s);
      ("p50", Json.Float s.Window.p50);
      ("p95", Json.Float s.Window.p95);
      ("p99", Json.Float s.Window.p99);
      ("max", Json.Float s.Window.max);
      ("sum", Json.Float s.Window.sum);
    ]

let json_of_profile masses =
  Json.List (List.map (fun m -> Json.Float m) (Array.to_list masses))

let handle_debug_slo t ctx fd =
  let now_ms = Obs.now_ms () in
  let measurements = Health.measurements t.monitor ~now_ms in
  let state =
    Health.evaluate
      ~objectives:(Health.objectives t.monitor)
      ~measurements
  in
  Atomic.set t.health_state (Health.state_to_int state);
  let objectives =
    List.map
      (fun (o : Health.objective) ->
        let value = List.assoc_opt o.Health.metric measurements in
        Json.Obj
          ([
             ("metric", Json.String o.Health.metric);
             ("max", Json.Float o.Health.max_value);
             ("fail_ratio", Json.Float o.Health.fail_ratio);
           ]
          @
          match value with
          | None -> [ ("value", Json.Null); ("burn", Json.Null) ]
          | Some v ->
              [
                ("value", Json.Float v);
                ("burn", Json.Float (v /. o.Health.max_value));
              ]))
      (Health.objectives t.monitor)
  in
  let body =
    Json.to_string
      (Json.Obj
         [
           ("state", Json.String (Health.state_label state));
           ( "reasons",
             Json.List
               (List.map
                  (fun r -> Json.String r)
                  (Health.state_reasons state)) );
           ("objectives", Json.List objectives);
           ( "measurements",
             Json.Obj
               (List.map (fun (k, v) -> (k, Json.Float v)) measurements) );
         ])
  in
  respond ctx fd ~content_type:"application/json" ~status:200 (body ^ "\n")

let handle_debug_windows t ctx fd =
  let now_ms = Obs.now_ms () in
  let m = t.monitor in
  let window w = json_of_stats (Window.stats w ~now_ms) in
  let confs = Window.samples (Health.confidence_window m) ~now_ms in
  let body =
    Json.to_string
      (Json.Obj
         [
           ( "bucket_ms",
             Json.Float (Window.bucket_ms (Health.latency_window m)) );
           ("nbuckets", Json.Int (Window.nbuckets (Health.latency_window m)));
           ( "windows",
             Json.Obj
               [
                 ("latency_ms", window (Health.latency_window m));
                 ("errors", window (Health.error_window m));
                 ("shed", window (Health.shed_window m));
                 ("confidence", window (Health.confidence_window m));
               ] );
           ( "expected_calibration",
             match Health.expected_profile m with
             | Some p -> json_of_profile p
             | None -> Json.Null );
           ( "observed_calibration",
             json_of_profile (Health.decile_histogram confs) );
         ])
  in
  respond ctx fd ~content_type:"application/json" ~status:200 (body ^ "\n")

let dispatch t ctx fd (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> handle_healthz t ctx fd
  | "GET", "/metrics" -> handle_metrics ctx fd
  | "GET", "/debug/slo" -> handle_debug_slo t ctx fd
  | "GET", "/debug/windows" -> handle_debug_windows t ctx fd
  | "GET", "/geolocate" -> handle_geolocate t ctx fd req
  | "GET", "/explain" -> handle_explain t ctx fd req
  | "POST", "/batch" -> handle_batch t ctx fd req
  | "POST", "/reload" -> handle_reload t ctx fd req
  | "POST", "/observe" -> handle_observe t ctx fd req
  | ("GET" | "POST" | "HEAD"), _ -> respond ctx fd ~status:404 "not found\n"
  | _ -> respond ctx fd ~status:405 "method not allowed\n"

(* --- per-connection loop --- *)

let handle_connection t fd =
  Obs.incr c_conns;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.request_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.request_timeout_s
   with Unix.Unix_error _ -> ());
  let limits =
    {
      Http.default_limits with
      Http.max_body = t.cfg.max_body;
      deadline_ms = t.cfg.request_timeout_s *. 1000.0;
    }
  in
  let reader = Http.reader_of_fd fd in
  (* one observation point for every response this connection produces:
     cumulative histogram, sliding health windows, and the access log
     all see the same (status, latency, flags) story *)
  let finish ?(histo = true) ctx t0 =
    let dt_ms = Obs.now_ms () -. t0 in
    (* parse-error responses keep the cumulative histogram's historical
       meaning (dispatch time of parsed requests only) but still land
       in the health windows and the log: a garbage storm must move
       error_rate *)
    if histo then Obs.observe h_request dt_ms;
    let now_ms = Obs.now_ms () in
    (* observability endpoints are excluded from the health windows:
       /healthz answering 503 *because* the daemon is failing must not
       itself count as a service error, or probing a failing daemon
       feeds the error window and pins it in Failing forever *)
    let observability =
      match ctx.endpoint with
      | "GET /healthz" | "GET /metrics" | "GET /debug/slo"
      | "GET /debug/windows" ->
          true
      | _ -> false
    in
    if not observability then
      Health.record_request t.monitor ~now_ms ~latency_ms:dt_ms
        ~status:ctx.status ~shed:ctx.shed;
    match t.access with
    | None -> ()
    | Some log ->
        Access_log.log log
          {
            Access_log.request_id = ctx.rid;
            endpoint = ctx.endpoint;
            status = ctx.status;
            latency_us = int_of_float (dt_ms *. 1000.0);
            batch = ctx.batch;
            cache_hit = ctx.cache_hit;
            confidence = ctx.confidence;
            shed = ctx.shed;
            degraded = Atomic.get t.health_state > 0;
          }
  in
  let fresh_rid () =
    Printf.sprintf "hoiho-%d-%d" (Unix.getpid ())
      (Atomic.fetch_and_add t.rid_counter 1)
  in
  let rec serve_requests () =
    if not (Atomic.get t.stop_flag) then begin
      let t0 = Obs.now_ms () in
      match Http.read_request ~limits reader with
      | Error Http.Closed -> ()
      | Error Http.Timeout ->
          (* distinguishable from an idle keep-alive close only in
             that we already read part of a request; answering 408 on
             a dead drip-feed is best-effort either way *)
          Obs.incr c_timeouts;
          let ctx = make_ctx ~rid:(fresh_rid ()) ~endpoint:"-" in
          (try respond ctx fd ~status:408 "request timeout\n" with _ -> ());
          finish ~histo:false ctx t0
      | Error (Http.Bad_request msg) ->
          let ctx = make_ctx ~rid:(fresh_rid ()) ~endpoint:"-" in
          (try respond ctx fd ~status:400 (msg ^ "\n") with _ -> ());
          finish ~histo:false ctx t0
      | Error (Http.Too_large msg) ->
          let ctx = make_ctx ~rid:(fresh_rid ()) ~endpoint:"-" in
          (try respond ctx fd ~status:413 (msg ^ "\n") with _ -> ());
          finish ~histo:false ctx t0
      | Ok req ->
          let again =
            Atomic.incr t.active;
            Fun.protect
              ~finally:(fun () -> Atomic.decr t.active)
              (fun () ->
                let t0 = Obs.now_ms () in
                let ctx =
                  make_ctx ~rid:(rid_of_request t req)
                    ~endpoint:(req.Http.meth ^ " " ^ req.Http.path)
                in
                let ok =
                  Trace.with_span "net.request" ~cat:"net"
                    ~attrs:
                      [
                        ("request_id", ctx.rid); ("endpoint", ctx.endpoint);
                      ]
                  @@ fun () ->
                  match dispatch t ctx fd req with
                  | () -> true
                  | exception _ ->
                      (try respond ctx fd ~status:500 "internal error\n"
                       with _ -> ());
                      false
                in
                finish ctx t0;
                ok && Http.keep_alive req)
          in
          if again then serve_requests ()
    end
  in
  (try serve_requests () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- accept loop (one per domain) --- *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listener ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
          (* the listener is non-blocking: several domains may race
             for the same readiness; losers get EAGAIN and re-select *)
          match Unix.accept ~cloexec:true t.listener with
          | fd, _ -> handle_connection t fd
          | exception
              Unix.Unix_error
                ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
              ())
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error (EBADF, _, _) -> Atomic.set t.stop_flag true);
      loop ()
    end
  in
  loop ()

(* --- housekeeping (reload requests from signals, health gauges) --- *)

(* periodic re-evaluation keeps the cached state and the exported
   gauges fresh even when nobody polls /healthz: an idle-but-failing
   daemon still shows health.state=2 on the next /metrics scrape *)
let update_health_gauges t =
  let now_ms = Obs.now_ms () in
  let measurements = Health.measurements t.monitor ~now_ms in
  let state =
    Health.evaluate ~objectives:(Health.objectives t.monitor) ~measurements
  in
  Atomic.set t.health_state (Health.state_to_int state);
  Obs.set_gauge g_health_state (Health.state_to_int state);
  match List.assoc_opt "calibration_drift" measurements with
  | Some d -> Obs.set_gauge g_drift (int_of_float (d *. 1e6))
  | None -> ()

let housekeeping_loop t =
  let rec loop () =
    if not (Atomic.get t.stop_flag) then begin
      if Atomic.compare_and_set t.reload_flag true false then
        (match t.cfg.model_path with
        | Some path -> ignore (do_reload t path)
        | None -> Obs.incr c_reload_failures);
      update_health_gauges t;
      Unix.sleepf 0.05;
      loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

let start ?(config = default_config) model =
  (* a peer that disconnects mid-response must surface as EPIPE on the
     write, not kill the process with the default SIGPIPE disposition *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listener = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.set_nonblock listener;
     Unix.bind listener
       (ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listener 128
   with e ->
     (try Unix.close listener with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listener with
    | ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let serve = Atomic.make (Serve.create model) in
  let active = Atomic.make 0 in
  let monitor =
    Health.create_monitor
      ?objectives:config.objectives
      ~bucket_ms:config.health_bucket_ms ~nbuckets:config.health_nbuckets ()
  in
  (* drift baseline: the served model's stored expected profile (None
     for pre-v3 snapshots — the drift measurement simply stays off) *)
  Health.set_expected_profile monitor model.Learned_io.calibration;
  let access =
    match config.access_log with
    | None -> None
    | Some path -> (
        match
          Access_log.create ~max_bytes:config.access_log_max_bytes path
        with
        | Ok log -> Some log
        | Error msg ->
            (* an unwritable log path fails the start, like an
               unbindable address: the operator asked for a log *)
            (try Unix.close listener with _ -> ());
            failwith (Printf.sprintf "access log %s: %s" path msg))
  in
  let batcher =
    Batcher.create ~max_batch:config.max_batch ~max_wait_ms:config.max_wait_ms
      ~max_pending:config.max_pending
      ~more_hint:(fun () -> Atomic.get active)
      ~apply:(fun keys ->
        let answers =
          List.map snd
            (Serve.apply_batch ~jobs:config.jobs ~normalized:true
               (Atomic.get serve) keys)
        in
        (* every served answer's confidence — cached or computed — feeds
           the drift window at one point, whatever endpoint asked *)
        let now_ms = Obs.now_ms () in
        List.iter
          (fun (a : Serve.answer) ->
            Health.record_confidence monitor ~now_ms a.Serve.confidence)
          answers;
        answers)
      ()
  in
  let t =
    {
      cfg = config;
      listener;
      bound_port;
      serve;
      batcher;
      monitor;
      access;
      health_state = Atomic.make 0;
      rid_counter = Atomic.make 0;
      stop_flag = Atomic.make false;
      reload_flag = Atomic.make false;
      active;
      explain_mutex = Mutex.create ();
      relearn_mutex = Mutex.create ();
      (* loaded before the accept domains spawn: an unreadable corpus
         fails the start, not the first /observe *)
      corpus = Option.map Io.load config.corpus_path;
      accepters = [];
      housekeeper = None;
      stopped = false;
      stop_mutex = Mutex.create ();
    }
  in
  t.accepters <-
    List.init (max 1 config.jobs) (fun _ ->
        Domain.spawn (fun () -> accept_loop t));
  t.housekeeper <- Some (Domain.spawn (fun () -> housekeeping_loop t));
  t

let port t = t.bound_port

let reload t model =
  Atomic.set t.serve (Serve.create model);
  Health.set_expected_profile t.monitor model.Learned_io.calibration;
  Obs.incr c_reloads

let monitor t = t.monitor
let health t = evaluate_health t

let reload_from_path t path = do_reload t path

let request_reload t = Atomic.set t.reload_flag true

let stop t =
  Mutex.lock t.stop_mutex;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_mutex;
  if first then begin
    Atomic.set t.stop_flag true;
    List.iter Domain.join t.accepters;
    t.accepters <- [];
    (match t.housekeeper with
    | Some d ->
        Domain.join d;
        t.housekeeper <- None
    | None -> ());
    Batcher.stop t.batcher;
    (match t.access with Some log -> Access_log.close log | None -> ());
    try Unix.close t.listener with Unix.Unix_error _ -> ()
  end
