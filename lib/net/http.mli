(** A small, hardened HTTP/1.1 subset for the serving daemon.

    The parser reads one request at a time from a buffered {!reader}
    (socket-backed in production, string-backed in tests) and enforces
    the input-boundary limits that matter once untrusted bytes arrive
    over a network: a bounded request line, bounded header count and
    size, a bounded [Content-Length] body, a rejection of raw control
    bytes in the request line, and an overall per-request deadline so a
    slow-loris client cannot pin a connection domain by trickling one
    byte per read-timeout.

    Only what the daemon needs is implemented: [GET]/[POST],
    [Content-Length] bodies (no chunked encoding — a request with
    [Transfer-Encoding] is refused), HTTP/1.0 and 1.1 with the usual
    keep-alive defaults. Responses always carry an explicit
    [Content-Length], so clients can reuse the connection. *)

type request = {
  meth : string;  (** verbatim, e.g. ["GET"] *)
  target : string;  (** raw request-target, e.g. ["/geolocate?h=x"] *)
  path : string;  (** target up to [?], percent-decoded *)
  query : (string * string) list;  (** decoded key/value pairs, in order *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
  http11 : bool;  (** false for HTTP/1.0 *)
}

type error =
  | Closed  (** peer closed before a complete request was read *)
  | Timeout  (** read timed out or the per-request deadline passed *)
  | Bad_request of string  (** malformed request → 400 *)
  | Too_large of string  (** a limit was exceeded → 413 (or 431) *)

type limits = {
  max_line : int;  (** request line and each header line, bytes *)
  max_headers : int;  (** header count *)
  max_body : int;  (** [Content-Length] bound, bytes *)
  deadline_ms : float;
      (** total wall budget for reading one request, milliseconds;
          [infinity] disables the deadline *)
}

val default_limits : limits
(** 8 KiB lines, 64 headers, 1 MiB body, 5000 ms deadline. *)

type reader

val reader_of_fd : Unix.file_descr -> reader
(** Buffered reader over a socket. The fd should carry an
    [SO_RCVTIMEO] so a single blocking read cannot outlive the
    request deadline by much; [Unix.EAGAIN]/[EWOULDBLOCK]/[ETIMEDOUT]
    surface as {!Timeout}. *)

val reader_of_string : string -> reader
(** In-memory reader for tests. *)

val read_request : ?limits:limits -> reader -> (request, error) result
(** Read and parse one request. Never raises: socket errors map to
    {!Closed} or {!Timeout}, malformed input to {!Bad_request} /
    {!Too_large}. A second call on the same reader reads the next
    pipelined/keep-alive request. Returns [Error Closed] at a clean
    end-of-stream between requests. *)

val keep_alive : request -> bool
(** HTTP/1.1 unless [Connection: close]; HTTP/1.0 only with
    [Connection: keep-alive]. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (name must be given lowercase). *)

val query_param : request -> string -> string option
(** First value of a query parameter, already percent-decoded. *)

val pct_decode : string -> string option
(** Percent-decoding with [+] as space; [None] on a malformed or
    truncated escape. *)

val pct_encode : string -> string
(** Conservative encoding for query values: alphanumerics and
    [-._~] verbatim, everything else as [%XX]. *)

val status_text : int -> string

val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  status:int ->
  string ->
  string
(** Render a full HTTP/1.1 response with [Content-Length] (and
    [Connection: close] only if the caller adds it). Body is the last
    argument; [content_type] defaults to ["text/plain; charset=utf-8"]. *)
