module Obs = Hoiho_obs.Obs

type request = {
  meth : string;
  target : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
  http11 : bool;
}

type error =
  | Closed
  | Timeout
  | Bad_request of string
  | Too_large of string

type limits = {
  max_line : int;
  max_headers : int;
  max_body : int;
  deadline_ms : float;
}

let default_limits =
  { max_line = 8192; max_headers = 64; max_body = 1 lsl 20; deadline_ms = 5000.0 }

(* --- buffered reader --- *)

type source = Fd of Unix.file_descr | Str of string

type reader = {
  src : source;
  buf : Bytes.t;
  mutable len : int;  (* valid bytes in [buf] *)
  mutable pos : int;  (* consumed prefix of the valid bytes *)
  mutable spos : int;  (* cursor into a [Str] source *)
}

let reader_of_fd fd =
  { src = Fd fd; buf = Bytes.create 8192; len = 0; pos = 0; spos = 0 }

let reader_of_string s =
  { src = Str s; buf = Bytes.create 8192; len = 0; pos = 0; spos = 0 }

exception Read_error of error

(* refill the buffer with at least one more byte; raises [Read_error]
   on timeout/close. The per-request deadline is checked here: a
   slow-loris client that keeps each single read under the socket
   timeout still cannot stretch one request past [deadline]. *)
let rec refill r ~deadline =
  if r.pos = r.len then begin
    if Obs.now_ms () > deadline then raise (Read_error Timeout);
    r.pos <- 0;
    r.len <- 0;
    match r.src with
    | Str s ->
        let remaining = String.length s - r.spos in
        if remaining <= 0 then raise (Read_error Closed);
        let n = min remaining (Bytes.length r.buf) in
        Bytes.blit_string s r.spos r.buf 0 n;
        r.spos <- r.spos + n;
        r.len <- n
    | Fd fd -> (
        match Unix.read fd r.buf 0 (Bytes.length r.buf) with
        | 0 -> raise (Read_error Closed)
        | n -> r.len <- n
        | exception Unix.Unix_error (EINTR, _, _) -> refill r ~deadline
        | exception
            Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
            raise (Read_error Timeout)
        | exception Unix.Unix_error (_, _, _) -> raise (Read_error Closed))
  end

let next_byte r ~deadline =
  refill r ~deadline;
  let c = Bytes.get r.buf r.pos in
  r.pos <- r.pos + 1;
  c

(* one line, terminated by LF (a preceding CR is stripped), bounded *)
let read_line r ~deadline ~max_line =
  let b = Buffer.create 128 in
  let rec go () =
    let c = next_byte r ~deadline in
    if c = '\n' then begin
      let s = Buffer.contents b in
      let n = String.length s in
      if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
    end
    else begin
      if Buffer.length b >= max_line then
        raise (Read_error (Too_large "line too long"));
      Buffer.add_char b c;
      go ()
    end
  in
  go ()

let read_exact r ~deadline n =
  let b = Buffer.create n in
  let rec go () =
    if Buffer.length b < n then begin
      refill r ~deadline;
      let take = min (r.len - r.pos) (n - Buffer.length b) in
      Buffer.add_subbytes b r.buf r.pos take;
      r.pos <- r.pos + take;
      go ()
    end
  in
  go ();
  Buffer.contents b

(* --- percent decoding / encoding --- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let pct_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else
      match s.[i] with
      | '%' ->
          if i + 2 >= n then None
          else (
            match (hex_val s.[i + 1], hex_val s.[i + 2]) with
            | Some hi, Some lo ->
                Buffer.add_char b (Char.chr ((hi * 16) + lo));
                go (i + 3)
            | _ -> None)
      | '+' ->
          Buffer.add_char b ' ';
          go (i + 1)
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go 0

let pct_encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '_' | '~' ->
          Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

(* decoded key/value pairs of a query string; pairs with malformed
   escapes are dropped rather than failing the whole request *)
let parse_query q =
  String.split_on_char '&' q
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           let k, v =
             match String.index_opt kv '=' with
             | Some i ->
                 ( String.sub kv 0 i,
                   String.sub kv (i + 1) (String.length kv - i - 1) )
             | None -> (kv, "")
           in
           match (pct_decode k, pct_decode v) with
           | Some k, Some v -> Some (k, v)
           | _ -> None)

(* --- request parsing --- *)

let has_ctl s = String.exists (fun c -> Char.code c < 0x20 || c = '\x7f') s

let split_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] -> Some (meth, target, version)
  | _ -> None

let lowercase_ascii_inplace = String.lowercase_ascii

let read_request ?(limits = default_limits) r =
  let deadline =
    if limits.deadline_ms = infinity then infinity
    else Obs.now_ms () +. limits.deadline_ms
  in
  match
    (* the line between keep-alive requests: a clean close here is
       [Closed], not an error worth logging *)
    let line = read_line r ~deadline ~max_line:limits.max_line in
    (* tolerate one empty line before the request line (stray CRLF
       after a previous body, as curl and some proxies emit) *)
    let line =
      if line = "" then read_line r ~deadline ~max_line:limits.max_line
      else line
    in
    if has_ctl line then raise (Read_error (Bad_request "control byte in request line"));
    let meth, target, version =
      match split_request_line line with
      | Some x -> x
      | None -> raise (Read_error (Bad_request "malformed request line"))
    in
    let http11 =
      match version with
      | "HTTP/1.1" -> true
      | "HTTP/1.0" -> false
      | _ -> raise (Read_error (Bad_request "unsupported HTTP version"))
    in
    let headers = ref [] in
    let rec read_headers n =
      let line = read_line r ~deadline ~max_line:limits.max_line in
      if line <> "" then begin
        if n >= limits.max_headers then
          raise (Read_error (Too_large "too many headers"));
        (match String.index_opt line ':' with
        | Some i when i > 0 ->
            let name = lowercase_ascii_inplace (String.sub line 0 i) in
            let value =
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            in
            headers := (name, value) :: !headers
        | _ -> raise (Read_error (Bad_request "malformed header")));
        read_headers (n + 1)
      end
    in
    read_headers 0;
    let headers = List.rev !headers in
    let find name = List.assoc_opt name headers in
    if find "transfer-encoding" <> None then
      raise (Read_error (Bad_request "transfer-encoding not supported"));
    let body =
      match find "content-length" with
      | None -> ""
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | None -> raise (Read_error (Bad_request "malformed content-length"))
          | Some n when n < 0 ->
              raise (Read_error (Bad_request "malformed content-length"))
          | Some n when n > limits.max_body ->
              raise (Read_error (Too_large "body too large"))
          | Some n -> read_exact r ~deadline n)
    in
    let path_raw, query =
      match String.index_opt target '?' with
      | Some i ->
          ( String.sub target 0 i,
            parse_query (String.sub target (i + 1) (String.length target - i - 1))
          )
      | None -> (target, [])
    in
    let path =
      match pct_decode path_raw with
      | Some p -> p
      | None -> raise (Read_error (Bad_request "malformed path escape"))
    in
    { meth; target; path; query; headers; body; http11 }
  with
  | req -> Ok req
  | exception Read_error e -> Error e

let header req name = List.assoc_opt name req.headers

let keep_alive req =
  match header req "connection" with
  | Some v -> (
      match lowercase_ascii_inplace (String.trim v) with
      | "close" -> false
      | "keep-alive" -> true
      | _ -> req.http11)
  | None -> req.http11

let query_param req name = List.assoc_opt name req.query

(* --- responses --- *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | s -> Printf.sprintf "Status %d" s

let response ?(headers = []) ?(content_type = "text/plain; charset=utf-8")
    ~status body =
  let b = Buffer.create (String.length body + 160) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  Buffer.contents b
