module Obs = Hoiho_obs.Obs

let c_batches = Obs.counter "net.batches"
let c_batched = Obs.counter "net.batch_hostnames"
let c_shed = Obs.counter "net.shed"
let g_fill = Obs.gauge "net.batch_fill"

type 'a ticket = {
  keys : string list;
  n : int;
  mutable result : 'a list option;
  mutable failed : bool;
  tm : Mutex.t;
  tcv : Condition.t;
}

type 'a t = {
  apply : string list -> 'a list;
  max_batch : int;
  max_wait_ms : float;
  max_pending : int;
  more_hint : unit -> int;
  q : 'a ticket Queue.t;
  mutable pending : int;
  mutable stopped : bool;
  qm : Mutex.t;
  qcv : Condition.t;  (* signalled on enqueue and on stop *)
  mutable worker : unit Domain.t option;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let fulfill ticket result =
  Mutex.lock ticket.tm;
  (match result with
  | Some answers -> ticket.result <- Some answers
  | None -> ticket.failed <- true);
  Condition.broadcast ticket.tcv;
  Mutex.unlock ticket.tm

(* run one collected batch: a single [apply] over the concatenation,
   answers split back per ticket in order *)
let run_batch t tickets =
  let tickets = List.rev tickets in
  let all_keys = List.concat_map (fun tk -> tk.keys) tickets in
  let total = List.length all_keys in
  Obs.incr c_batches;
  Obs.add c_batched total;
  Obs.observe_gauge g_fill total;
  match t.apply all_keys with
  | answers when List.length answers = total ->
      let rec hand answers = function
        | [] -> ()
        | tk :: rest ->
            let rec take k acc l =
              if k = 0 then (List.rev acc, l)
              else
                match l with
                | [] -> (List.rev acc, [])
                | x :: tl -> take (k - 1) (x :: acc) tl
            in
            let mine, remaining = take tk.n [] answers in
            fulfill tk (Some mine);
            hand remaining rest
      in
      hand answers tickets
  | _ | (exception _) -> List.iter (fun tk -> fulfill tk None) tickets

let worker_loop t =
  let rec next () =
    let batch =
      locked t.qm (fun () ->
          while Queue.is_empty t.q && not t.stopped do
            Condition.wait t.qcv t.qm
          done;
          if Queue.is_empty t.q then None
          else begin
            (* collect greedily, then keep the window open only while
               the batch is not full, the window has time left, and
               the hint says more producers are in flight *)
            let t0 = Obs.now_ms () in
            let collected = ref [] in
            let count = ref 0 in
            let ntickets = ref 0 in
            let drain () =
              while (not (Queue.is_empty t.q)) && !count < t.max_batch do
                let tk = Queue.pop t.q in
                collected := tk :: !collected;
                count := !count + tk.n;
                incr ntickets;
                t.pending <- t.pending - tk.n
              done
            in
            drain ();
            let rec wait_more () =
              if
                !count < t.max_batch
                && (not t.stopped)
                && Obs.now_ms () -. t0 < t.max_wait_ms
                && t.more_hint () > !ntickets
              then begin
                (* short unlock so producers can enqueue; 100 µs keeps
                   the window granular without burning the core *)
                Mutex.unlock t.qm;
                Unix.sleepf 0.0001;
                Mutex.lock t.qm;
                drain ();
                wait_more ()
              end
            in
            wait_more ();
            Some !collected
          end)
    in
    match batch with
    | Some tickets ->
        run_batch t tickets;
        next ()
    | None -> if not t.stopped then next ()
  in
  next ()

let create ?(max_batch = 64) ?(max_wait_ms = 1.0) ?(max_pending = 1024)
    ?(more_hint = fun () -> 0) ~apply () =
  let t =
    {
      apply;
      max_batch = max 1 max_batch;
      max_wait_ms = Float.max 0.0 max_wait_ms;
      max_pending = max 1 max_pending;
      more_hint;
      q = Queue.create ();
      pending = 0;
      stopped = false;
      qm = Mutex.create ();
      qcv = Condition.create ();
      worker = None;
    }
  in
  t.worker <- Some (Domain.spawn (fun () -> worker_loop t));
  t

let pending t = locked t.qm (fun () -> t.pending)

let submit t keys =
  match keys with
  | [] -> Ok []
  | _ -> (
      let n = List.length keys in
      let ticket =
        {
          keys;
          n;
          result = None;
          failed = false;
          tm = Mutex.create ();
          tcv = Condition.create ();
        }
      in
      let admitted =
        locked t.qm (fun () ->
            if t.stopped then `Stopped
            else if t.pending + n > t.max_pending then begin
              Obs.add c_shed n;
              `Overloaded
            end
            else begin
              Queue.push ticket t.q;
              t.pending <- t.pending + n;
              Condition.signal t.qcv;
              `Admitted
            end)
      in
      match admitted with
      | `Stopped -> Error `Stopped
      | `Overloaded -> Error `Overloaded
      | `Admitted ->
          Mutex.lock ticket.tm;
          while ticket.result = None && not ticket.failed do
            Condition.wait ticket.tcv ticket.tm
          done;
          Mutex.unlock ticket.tm;
          (match ticket.result with
          | Some answers -> Ok answers
          | None -> Error `Failed))

let stop t =
  let joinable =
    locked t.qm (fun () ->
        if t.stopped then None
        else begin
          t.stopped <- true;
          Condition.broadcast t.qcv;
          let w = t.worker in
          t.worker <- None;
          w
        end)
  in
  match joinable with Some d -> Domain.join d | None -> ()
