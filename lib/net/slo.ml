module Json = Hoiho_util.Json
module Health = Hoiho_obs.Health

type t = {
  objectives : Health.objective list;
  bucket_ms : float;
  nbuckets : int;
}

let metrics =
  [ "latency_p50_ms"; "latency_p99_ms"; "error_rate"; "shed_rate";
    "calibration_drift" ]

let ( let* ) r f = Result.bind r f

let as_number path = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | j -> Error (Printf.sprintf "%s: expected number, got %s" path (Json.kind j))

let objective_of_json path json =
  let* metric =
    match Json.member "metric" json with
    | Some (Json.String s) -> Ok s
    | Some j ->
        Error (Printf.sprintf "%s.metric: expected string, got %s" path
                 (Json.kind j))
    | None -> Error (path ^ ".metric: missing")
  in
  let* () =
    if List.mem metric metrics then Ok ()
    else
      Error
        (Printf.sprintf "%s.metric: unknown metric %S (known: %s)" path metric
           (String.concat ", " metrics))
  in
  let* max_value =
    match Json.member "max" json with
    | Some j -> as_number (path ^ ".max") j
    | None -> Error (path ^ ".max: missing")
  in
  let* () =
    if max_value > 0.0 then Ok ()
    else Error (Printf.sprintf "%s.max: must be positive" path)
  in
  let* fail_ratio =
    match Json.member "fail_ratio" json with
    | None -> Ok 2.0
    | Some j -> as_number (path ^ ".fail_ratio") j
  in
  let* () =
    if fail_ratio > 1.0 then Ok ()
    else Error (Printf.sprintf "%s.fail_ratio: must exceed 1" path)
  in
  Ok { Health.metric; max_value; fail_ratio }

let parse s =
  let* json = Json.parse s in
  let* window_s =
    match Json.member "window_s" json with
    | None -> Ok 60.0
    | Some j -> as_number "$.window_s" j
  in
  let* () =
    if window_s > 0.0 then Ok () else Error "$.window_s: must be positive"
  in
  let* nbuckets =
    match Json.member "buckets" json with
    | None -> Ok 12
    | Some (Json.Int n) when n >= 1 -> Ok n
    | Some j ->
        Error
          (Printf.sprintf "$.buckets: expected positive int, got %s"
             (Json.kind j))
  in
  let* items =
    match Json.member "objectives" json with
    | Some (Json.List l) -> Ok l
    | Some j ->
        Error (Printf.sprintf "$.objectives: expected list, got %s" (Json.kind j))
    | None -> Error "$.objectives: missing"
  in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
        let* o = objective_of_json (Printf.sprintf "$.objectives[%d]" i) item in
        go (i + 1) (o :: acc) rest
  in
  let* objectives = go 0 [] items in
  Ok
    {
      objectives;
      bucket_ms = window_s *. 1000.0 /. float_of_int nbuckets;
      nbuckets;
    }

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg
