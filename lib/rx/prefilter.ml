(* Literal prefiltering for the backtracking engine.

   From a pattern AST we extract a *required* literal: a contiguous run
   of characters that appears verbatim in every string the pattern
   matches. A fast substring scan for that literal then rejects most
   non-matching inputs without entering the backtracker at all, and
   when the literal sits at a statically known distance from the match
   start, its occurrences enumerate the only start offsets worth
   trying.

   Everything here computes *necessary* conditions only: a possessive
   quantifier matches a subset of what its greedy form matches, so
   greedy-based requiredness stays sound for possessive patterns. *)

type t = {
  anchored : bool;  (* pattern begins with ^ *)
  required : string;  (* "" when no literal is required *)
  offset : int option;
      (* distance from match start to [required], when every atom
         before the literal has a statically fixed width *)
}

let none = { anchored = false; required = ""; offset = None }

(* --- static widths --- *)

let rec node_width = function
  | Ast.Lit _ | Ast.Cls _ | Ast.Any -> Some 1
  | Ast.Bol | Ast.Eol -> Some 0
  | Ast.Rep (n, min, max, _) -> (
      match max with
      | Some m when m = min -> (
          match node_width n with Some w -> Some (w * min) | None -> None)
      | _ -> None)
  | Ast.Grp inner -> seq_width inner
  | Ast.Alt alts -> (
      match List.map seq_width alts with
      | [] -> Some 0
      | w :: ws -> if List.for_all (( = ) w) ws then w else None)

and seq_width nodes =
  List.fold_left
    (fun acc n ->
      match (acc, node_width n) with
      | Some a, Some w -> Some (a + w)
      | _ -> None)
    (Some 0) nodes

(* --- literal-run extraction --- *)

type walk = {
  mutable runs : (string * int option) list;
  buf : Buffer.t;
  mutable run_off : int option;  (* offset of the run being built *)
  mutable pos : int option;  (* current offset from match start *)
}

let flush w =
  if Buffer.length w.buf > 0 then begin
    w.runs <- (Buffer.contents w.buf, w.run_off) :: w.runs;
    Buffer.clear w.buf
  end

let advance w = function
  | Some d -> w.pos <- (match w.pos with Some p -> Some (p + d) | None -> None)
  | None -> w.pos <- None

let add_lit w c =
  if Buffer.length w.buf = 0 then w.run_off <- w.pos;
  Buffer.add_char w.buf c;
  advance w (Some 1)

(* repeating a fixed sub-pattern more than this many times is unrolled
   no further; runs just break there *)
let max_unroll = 8

let rec walk_node w node =
  match node with
  | Ast.Lit c -> add_lit w c
  | Ast.Cls _ | Ast.Any ->
      flush w;
      advance w (Some 1)
  | Ast.Bol | Ast.Eol -> flush w
  | Ast.Grp inner -> List.iter (walk_node w) inner
  | Ast.Alt _ ->
      (* a literal common to every branch is possible but rare in the
         generator's output; contribute nothing, advance if fixed *)
      flush w;
      advance w (node_width node)
  | Ast.Rep (n, min, max, _) -> (
      match max with
      | Some m when m = min ->
          (* exactly [min] mandatory copies, contiguous *)
          if min >= 1 && min <= max_unroll then
            for _ = 1 to min do
              walk_node w n
            done
          else begin
            flush w;
            advance w (node_width node)
          end
      | _ ->
          (* [min] mandatory copies followed by a variable tail *)
          if min >= 1 && min <= max_unroll then
            for _ = 1 to min do
              walk_node w n
            done;
          flush w;
          w.pos <- None)

let analyze (ast : Ast.t) =
  let anchored = match ast with Ast.Bol :: _ -> true | _ -> false in
  let w = { runs = []; buf = Buffer.create 16; run_off = None; pos = Some 0 } in
  List.iter (walk_node w) ast;
  flush w;
  (* longest run wins; on ties prefer one with a known offset, then the
     leftmost (runs are collected in reverse order) *)
  let best =
    List.fold_left
      (fun acc (s, off) ->
        match acc with
        | None -> Some (s, off)
        | Some (bs, boff) ->
            let better =
              String.length s > String.length bs
              || (String.length s = String.length bs && boff = None && off <> None)
            in
            if better then Some (s, off) else acc)
      None (List.rev w.runs)
  in
  match best with
  | None -> { anchored; required = ""; offset = None }
  | Some (required, offset) -> { anchored; required; offset }

(* --- fast substring scan --- *)

(* naive scan with an unsafe first-character skip loop; needles here are
   short (pattern literals), haystacks are hostnames *)
let find ~needle hay start =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then if start <= hl then max start 0 else -1
  else begin
    let c0 = String.unsafe_get needle 0 in
    let limit = hl - nl in
    let rec at i =
      if i > limit then -1
      else if String.unsafe_get hay i <> c0 then at (i + 1)
      else begin
        let rec cmp j =
          j >= nl
          || String.unsafe_get hay (i + j) = String.unsafe_get needle j
             && cmp (j + 1)
        in
        if cmp 1 then i else at (i + 1)
      end
    in
    at (max start 0)
  end

let matches_at ~needle hay i =
  let nl = String.length needle in
  i >= 0
  && i + nl <= String.length hay
  &&
  let rec cmp j =
    j >= nl
    || String.unsafe_get hay (i + j) = String.unsafe_get needle j && cmp (j + 1)
  in
  cmp 0

let contains ~needle hay = find ~needle hay 0 >= 0
