(* Literal prefiltering for the backtracking engine.

   From a pattern AST we extract *necessary* conditions — facts that
   hold of every string the pattern matches — cheap enough to check
   with plain byte scans:

   - a [required] literal: a contiguous run of characters that appears
     verbatim in every match, optionally at a statically known
     [offset] from the match start (then its occurrences enumerate the
     only start offsets worth trying);
   - [extras]: further literals that must also appear somewhere, from
     other mandatory runs and from alternations whose every branch
     shares a common substring;
   - a [tail] literal pinned at a fixed distance from the END of the
     subject, for patterns anchored with [$] (the dominant shape here:
     every learned regex ends in a literal domain suffix);
   - [needs_digit]: the pattern contains a mandatory digit-class atom,
     so a subject without any ASCII digit can never match.

   Everything here computes necessary conditions only: a possessive
   quantifier matches a subset of what its greedy form matches, so
   greedy-based requiredness stays sound for possessive patterns, and
   an unsatisfiable pattern vacuously satisfies any claim. *)

type t = {
  anchored : bool;  (* pattern begins with ^ *)
  required : string;  (* "" when no literal is required *)
  offset : int option;
      (* distance from match start to [required], when every atom
         before the literal has a statically fixed width *)
  extras : string list;
      (* other literals every match must contain somewhere (at most 2,
         longest first, none implied by [required] or [tail]) *)
  tail : (string * int) option;
      (* (lit, dist): [lit] ends exactly [dist] bytes before the end of
         the subject; only for patterns ending in $ *)
  needs_digit : bool;  (* some mandatory atom matches only digits *)
}

let none =
  {
    anchored = false;
    required = "";
    offset = None;
    extras = [];
    tail = None;
    needs_digit = false;
  }

(* --- static widths --- *)

let rec node_width = function
  | Ast.Lit _ | Ast.Cls _ | Ast.Any -> Some 1
  | Ast.Bol | Ast.Eol -> Some 0
  | Ast.Rep (n, min, max, _) -> (
      match max with
      | Some m when m = min -> (
          match node_width n with Some w -> Some (w * min) | None -> None)
      | _ -> None)
  | Ast.Grp inner -> seq_width inner
  | Ast.Alt alts -> (
      match List.map seq_width alts with
      | [] -> Some 0
      | w :: ws -> if List.for_all (( = ) w) ws then w else None)

and seq_width nodes =
  List.fold_left
    (fun acc n ->
      match (acc, node_width n) with
      | Some a, Some w -> Some (a + w)
      | _ -> None)
    (Some 0) nodes

(* --- fast substring scan --- *)

(* naive scan with an unsafe first-character skip loop; needles here are
   short (pattern literals), haystacks are hostnames *)
let find ~needle hay start =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then if start <= hl then max start 0 else -1
  else begin
    let c0 = String.unsafe_get needle 0 in
    let limit = hl - nl in
    let rec at i =
      if i > limit then -1
      else if String.unsafe_get hay i <> c0 then at (i + 1)
      else begin
        let rec cmp j =
          j >= nl
          || String.unsafe_get hay (i + j) = String.unsafe_get needle j
             && cmp (j + 1)
        in
        if cmp 1 then i else at (i + 1)
      end
    in
    at (max start 0)
  end

let matches_at ~needle hay i =
  let nl = String.length needle in
  i >= 0
  && i + nl <= String.length hay
  &&
  let rec cmp j =
    j >= nl
    || String.unsafe_get hay (i + j) = String.unsafe_get needle j && cmp (j + 1)
  in
  cmp 0

let contains ~needle hay = find ~needle hay 0 >= 0

(* --- literal-run extraction --- *)

(* a class whose every range lies in '0'..'9' matches only digits; an
   empty positive class matches nothing at all, which makes the pattern
   unsatisfiable — any claim about its matches is then vacuously true,
   but we do not claim digits for it to keep reasoning local *)
let cls_all_digits (c : Ast.cls) =
  (not c.Ast.neg)
  && c.Ast.ranges <> []
  && List.for_all (fun (lo, hi) -> lo >= '0' && hi <= '9') c.Ast.ranges

type walk = {
  mutable runs : (string * int option) list;
  buf : Buffer.t;
  mutable run_off : int option;  (* offset of the run being built *)
  mutable pos : int option;  (* current offset from match start *)
  mutable digit : bool;  (* saw a mandatory digit-only atom *)
}

let fresh_walk pos =
  { runs = []; buf = Buffer.create 16; run_off = None; pos; digit = false }

let flush w =
  if Buffer.length w.buf > 0 then begin
    w.runs <- (Buffer.contents w.buf, w.run_off) :: w.runs;
    Buffer.clear w.buf
  end

let advance w = function
  | Some d -> w.pos <- (match w.pos with Some p -> Some (p + d) | None -> None)
  | None -> w.pos <- None

let add_lit w c =
  if Buffer.length w.buf = 0 then w.run_off <- w.pos;
  Buffer.add_char w.buf c;
  advance w (Some 1)

(* repeating a fixed sub-pattern more than this many times is unrolled
   no further; runs just break there *)
let max_unroll = 8

(* literals an alternation requires: a substring common to the mandatory
   runs of EVERY branch. Candidates are substrings of the first branch's
   runs, longest first; a match through any branch contains one of that
   branch's mandatory runs, hence the common substring. Bounded work:
   literals are capped before substring enumeration. *)
let max_common_src = 24

let common_of_branches = function
  | [] | [ _ ] -> None
  | first :: rest ->
      if List.exists (fun lits -> lits = []) rest || first = [] then None
      else begin
        let cap s =
          if String.length s <= max_common_src then s
          else String.sub s 0 max_common_src
        in
        let subs =
          List.concat_map
            (fun lit ->
              let lit = cap lit in
              let n = String.length lit in
              let out = ref [] in
              for len = n downto 2 do
                for i = 0 to n - len do
                  out := String.sub lit i len :: !out
                done
              done;
              List.rev !out)
            first
          |> List.sort_uniq compare
          |> List.sort (fun a b -> compare (String.length b) (String.length a))
        in
        List.find_opt
          (fun c ->
            List.for_all
              (fun lits -> List.exists (fun l -> contains ~needle:c l) lits)
              rest)
          subs
      end

let rec walk_node w node =
  match node with
  | Ast.Lit c -> add_lit w c
  | Ast.Cls c ->
      if cls_all_digits c then w.digit <- true;
      flush w;
      advance w (Some 1)
  | Ast.Any ->
      flush w;
      advance w (Some 1)
  | Ast.Bol | Ast.Eol -> flush w
  | Ast.Grp inner -> List.iter (walk_node w) inner
  | Ast.Alt alts ->
      flush w;
      (* analyze each branch independently: a literal common to every
         branch is required by the alternation as a whole, and a digit
         mandatory in every branch is mandatory here too *)
      (match alts with
      | [] -> ()
      | _ ->
          let subs =
            List.map
              (fun branch ->
                let sw = fresh_walk None in
                List.iter (walk_node sw) branch;
                flush sw;
                sw)
              alts
          in
          if List.for_all (fun sw -> sw.digit) subs then w.digit <- true;
          (match common_of_branches (List.map (fun sw -> List.rev_map fst sw.runs) subs) with
          | Some lit -> w.runs <- (lit, None) :: w.runs
          | None -> ()));
      advance w (node_width node)
  | Ast.Rep (n, min, max, _) -> (
      match max with
      | Some m when m = min ->
          (* exactly [min] mandatory copies, contiguous *)
          if min >= 1 && min <= max_unroll then
            for _ = 1 to min do
              walk_node w n
            done
          else begin
            (if min >= 1 then
               (* not unrolled, but one mandatory copy still pins a
                  digit requirement *)
               let sw = fresh_walk None in
               walk_node sw n;
               if sw.digit then w.digit <- true);
            flush w;
            advance w (node_width node)
          end
      | _ ->
          (* [min] mandatory copies followed by a variable tail *)
          if min >= 1 && min <= max_unroll then
            for _ = 1 to min do
              walk_node w n
            done
          else if min >= 1 then begin
            let sw = fresh_walk None in
            walk_node sw n;
            if sw.digit then w.digit <- true
          end;
          flush w;
          w.pos <- None)

(* --- tail extraction --- *)

(* walk the pattern back-to-front from a trailing $, accumulating the
   statically known distance to the subject's end, and return the
   literal run nearest the end together with that distance. Zero-width
   assertions are transparent (they never move the end distance); the
   walk stops at the first variable-width construct. *)
let tail_of ast =
  match List.rev ast with
  | Ast.Eol :: rev_nodes ->
      let buf = Buffer.create 16 in
      let dist = ref 0 in
      let result = ref None in
      let finalize () =
        if !result = None && Buffer.length buf > 0 then begin
          let n = Buffer.length buf in
          (* the buffer holds the run's characters in reverse *)
          let lit = String.init n (fun i -> Buffer.nth buf (n - 1 - i)) in
          result := Some (lit, !dist)
        end
      in
      let exception Stop in
      let rec node n =
        match n with
        | Ast.Lit c -> Buffer.add_char buf c
        | Ast.Bol | Ast.Eol -> ()
        | Ast.Grp inner -> List.iter node (List.rev inner)
        | Ast.Rep (inner, min, Some m, _) when m = min && min <= max_unroll ->
            for _ = 1 to min do
              node inner
            done
        | other -> (
            match node_width other with
            | Some w ->
                if Buffer.length buf > 0 then begin
                  finalize ();
                  raise Stop
                end
                else dist := !dist + w
            | None ->
                finalize ();
                raise Stop)
      in
      (try List.iter node rev_nodes with Stop -> ());
      finalize ();
      !result
  | _ -> None

(* --- analysis --- *)

let max_extras = 2

let analyze (ast : Ast.t) =
  let anchored = match ast with Ast.Bol :: _ -> true | _ -> false in
  let w = fresh_walk (Some 0) in
  List.iter (walk_node w) ast;
  flush w;
  let runs = List.rev w.runs in
  (* longest run wins; on ties prefer one with a known offset, then the
     leftmost *)
  let best =
    List.fold_left
      (fun acc (s, off) ->
        match acc with
        | None -> Some (s, off)
        | Some (bs, boff) ->
            let better =
              String.length s > String.length bs
              || (String.length s = String.length bs && boff = None && off <> None)
            in
            if better then Some (s, off) else acc)
      None runs
  in
  let required, offset =
    match best with None -> ("", None) | Some (r, o) -> (r, o)
  in
  let tail = tail_of ast in
  let tail_lit = match tail with Some (l, _) -> l | None -> "" in
  (* a run contained in [required] or in the tail literal is implied by
     those checks already; keep the longest independent ones *)
  let extras =
    List.map fst runs
    |> List.sort_uniq compare
    |> List.filter (fun l ->
           String.length l >= 2
           && (required = "" || not (contains ~needle:l required))
           && (tail_lit = "" || not (contains ~needle:l tail_lit)))
    |> List.sort (fun a b -> compare (String.length b) (String.length a))
    |> List.filteri (fun i _ -> i < max_extras)
  in
  { anchored; required; offset; extras; tail; needs_digit = w.digit }
