(** Abstract syntax for the regex dialect used by Hoiho-generated
    naming-convention regexes (figures 7 and 13 of the paper).

    The dialect covers: anchors [^]/[$], literals, [.], character classes
    (with ranges, negation, and [\d] inside classes), capture groups,
    alternation, and the quantifiers [?], [*], [+], [{n}], [{n,m}],
    [{n,}], plus possessive variants [*+] and [++] that never give back
    characters on backtracking. *)

type greed =
  | Greedy  (** backtracking quantifier *)
  | Possessive  (** matches maximally and never backtracks *)

type cls = {
  neg : bool;  (** true for [\[^...\]] *)
  ranges : (char * char) list;  (** inclusive ranges; singletons as [(c, c)] *)
}

type node =
  | Lit of char
  | Cls of cls
  | Any  (** [.] — any character *)
  | Bol  (** [^] — start of string *)
  | Eol  (** [$] — end of string *)
  | Rep of node * int * int option * greed
      (** [Rep (n, min, max, g)]; [max = None] means unbounded *)
  | Grp of t  (** capture group; numbered left to right from 1 *)
  | Alt of t list  (** alternation of sequences *)

and t = node list
(** A regex is a sequence of nodes. *)

val cls_of_string : string -> cls
(** [cls_of_string "a-z\\d"] builds a class from the body syntax used
    between brackets. Leading [^] negates. *)

val cls_mem : cls -> char -> bool
(** Membership test honoring negation. *)

val cls_bitmap : cls -> Bytes.t
(** A 256-byte membership table ([\000] = out, [\001] = in): one
    bounds-free byte read per test on the matching hot paths, instead
    of a range-list walk. *)

val digit : cls
(** The class [\d]. *)

val lower : cls
(** The class [a-z]. *)

val not_char : char -> cls
(** [not_char c] is [\[^c\]]. *)

val count_groups : t -> int
(** Number of capture groups in left-to-right order. *)

val to_string : t -> string
(** Render back to the concrete dialect syntax; parseable by {!Parse}. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
