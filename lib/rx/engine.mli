(** Backtracking matcher with capture groups.

    Matching is exact backtracking over the AST. Possessive quantifiers
    are honored for group-free single-character atoms (literals,
    classes, [.]), which is the only way the Hoiho generator emits
    them; a possessive quantifier over a wider atom — including a
    capture group, e.g. [([a-z])++] — degrades to greedy, so any group
    it contains still records the text of its last iteration.

    Every compiled pattern carries a {!Prefilter.t}: [exec] first scans
    the input for the pattern's required literal substring and bails —
    or seeds the start offset — before entering the backtracker. The
    prefiltered search is observationally identical to the exhaustive
    one ({!exec_unfiltered} exists to check exactly that). *)

type t
(** A compiled regex. *)

val compile : Ast.t -> t

val compile_string : string -> (t, string) result
(** Parse then compile. *)

val compile_exn : string -> t
(** Like {!compile_string} but raises [Invalid_argument]. *)

val ast : t -> Ast.t
(** The AST this regex was compiled from. *)

val source : t -> string
(** Concrete syntax (via {!Ast.to_string}). *)

val group_count : t -> int

val max_subject_len : int
(** Subjects longer than this (1024 bytes — 4× the DNS name limit) are
    rejected by {!exec}, {!exec_unfiltered} and {!matches} without
    entering the backtracker, counted under [rx.oversized_inputs]. *)

val exec : t -> string -> string option array option
(** [exec re s] attempts a match. Anchors [^]/[$] bind to the string
    boundaries; an unanchored pattern may match anywhere. On success the
    array holds the text of each capture group in left-to-right order
    (index 0 is group 1); a group inside an unused alternation branch is
    [None]. Never raises: any byte sequence is a valid subject, and a
    subject over {!max_subject_len} is simply no match. *)

val exec_unfiltered : t -> string -> string option array option
(** {!exec} with the literal prefilter disabled: the backtracker is
    retried at every start offset. For differential testing and
    benchmarking; agrees with {!exec} on every input. *)

val exec_groups : t -> string -> string list option
(** Like {!exec} but returns only the captured strings of groups that
    participated, in order. *)

val matches : t -> string -> bool
(** [exec t s <> None] without materializing capture strings. *)

val prefilter : t -> Prefilter.t
(** The literal prefilter computed at compile time. *)

val prefilter_stats : unit -> int * int
(** [(calls, skips)] accumulated process-wide across all patterns:
    total prefiltered searches, and searches rejected by the literal
    scan alone (no backtracking attempted). Thread-safe. Backed by the
    {!Hoiho_obs.Obs} registry counters [rx.exec_calls] and
    [rx.prefilter_skips] (the registry also tracks
    [rx.backtrack_attempts]); this accessor remains for convenience. *)

val reset_prefilter_stats : unit -> unit
