type prog =
  | PLit of char
  | PStr of string  (* a coalesced run of literal characters *)
  | PCls of Bytes.t  (* 256-byte membership bitmap *)
  | PAny
  | PBol
  | PEol
  | PRepGreedy1 of prog * int * int option
      (* greedy repetition of a group-free width-1 atom: consume
         maximally, then retreat by plain position arithmetic *)
  | PRepPoss1 of prog * int * int option
      (* possessive repetition of a group-free width-1 atom *)
  | PRep of prog * int * int option * Ast.greed
  | PGrp of int * prog list
  | PAlt of prog list list

(* the execution form: every node is linked to its continuation at
   COMPILE time, so the matcher is one closure-free recursive function
   over pure data — no per-exec continuation closures, and [t] stays
   safely comparable with polymorphic equality (results-identity checks
   compare whole pipelines, candidates included). The continuation
   instruction is shared across alternation branches, making this a
   DAG, never a cycle. *)
type atom = ALit of char | ACls of Bytes.t | AAny

type instr =
  | IAccept
  | ILit of char * instr
  | IStr of string * instr
  | ICls of Bytes.t * instr
  | IAny of instr
  | IBol of instr
  | IEol of instr
  | IGrpStart of int * instr  (* continues into the inner chain *)
  | IGrpEnd of int * instr
  | IAlt of instr array
  | IRepG1 of atom * int * int * instr  (* max_int encodes "unbounded" *)
  | IRepP1 of atom * int * int * instr
  | IRepDyn of prog * int * int option * instr
      (* general repetition (e.g. over a capture group): rare, takes the
         closure-allocating CPS path below *)

type t = {
  prog : prog list;
  instr : instr;
  ngroups : int;
  ast : Ast.t;
  pf : Prefilter.t;
}

let compile ast =
  let counter = ref 0 in
  (* consecutive literal characters collapse into one PStr so the hot
     loop compares a substring per program node instead of entering the
     CPS matcher once per character *)
  let rec seq nodes =
    match nodes with
    | Ast.Lit a :: (Ast.Lit _ :: _ as rest0) ->
        let buf = Buffer.create 8 in
        Buffer.add_char buf a;
        let rec take = function
          | Ast.Lit c :: rest ->
              Buffer.add_char buf c;
              take rest
          | rest -> rest
        in
        let rest = take rest0 in
        let p = PStr (Buffer.contents buf) in
        p :: seq rest
    | n :: rest ->
        (* bind before consing: group numbering must be left-to-right,
           and cons arguments evaluate right-to-left *)
        let p = node n in
        p :: seq rest
    | [] -> []
  and node = function
    | Ast.Lit c -> PLit c
    | Ast.Cls c -> PCls (Ast.cls_bitmap c)
    | Ast.Any -> PAny
    | Ast.Bol -> PBol
    | Ast.Eol -> PEol
    | Ast.Rep (n, min, max, g) -> (
        match (node n, g) with
        (* width-1 group-free atoms get the closure-free paths; anything
           wrapping a capture group must take the general CPS path so
           its captures are recorded *)
        | ((PLit _ | PCls _ | PAny) as p), Ast.Greedy -> PRepGreedy1 (p, min, max)
        | ((PLit _ | PCls _ | PAny) as p), Ast.Possessive -> PRepPoss1 (p, min, max)
        | p, _ -> PRep (p, min, max, g))
    | Ast.Grp inner ->
        let idx = !counter in
        incr counter;
        (* number this group before descending so numbering is
           left-to-right outside-in, as in conventional engines *)
        PGrp (idx, seq inner)
    | Ast.Alt alts -> PAlt (List.map seq alts)
  in
  let prog = seq ast in
  let atom_of = function
    | PLit c -> ALit c
    | PCls bm -> ACls bm
    | PAny -> AAny
    | _ -> assert false (* PRepGreedy1/PRepPoss1 only wrap these *)
  in
  let bound = function Some m -> m | None -> max_int in
  let rec link items next =
    match items with [] -> next | it :: rest -> link_node it (link rest next)
  and link_node it next =
    match it with
    | PLit c -> ILit (c, next)
    | PStr s -> IStr (s, next)
    | PCls bm -> ICls (bm, next)
    | PAny -> IAny next
    | PBol -> IBol next
    | PEol -> IEol next
    | PGrp (i, inner) -> IGrpStart (i, link inner (IGrpEnd (i, next)))
    | PAlt alts -> IAlt (Array.of_list (List.map (fun a -> link a next) alts))
    | PRepGreedy1 (p, mn, mx) -> IRepG1 (atom_of p, mn, bound mx, next)
    | PRepPoss1 (p, mn, mx) -> IRepP1 (atom_of p, mn, bound mx, next)
    | PRep (p, mn, mx, _) -> IRepDyn (p, mn, mx, next)
  in
  {
    prog;
    instr = link prog IAccept;
    ngroups = !counter;
    ast;
    pf = Prefilter.analyze ast;
  }

let compile_string s = Result.map compile (Parse.parse s)

let compile_exn s =
  match compile_string s with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Rx.Engine.compile_exn: %s in %S" msg s)

let ast t = t.ast
let source t = Ast.to_string t.ast
let group_count t = t.ngroups
let prefilter t = t.pf

module Obs = Hoiho_obs.Obs

(* engine effectiveness counters, process-wide (see DESIGN.md §7):
   [rx.exec_calls] counts prefiltered searches, [rx.prefilter_skips]
   those rejected by the literal scan without running the backtracker,
   and [rx.backtrack_attempts] the start offsets retried beyond each
   search's first attempt *)
let c_calls = Obs.counter "rx.exec_calls"
let c_skips = Obs.counter "rx.prefilter_skips"
let c_backtracks = Obs.counter "rx.backtrack_attempts"
let c_oversized = Obs.counter "rx.oversized_inputs"

(* DNS caps a name at 255 octets; anything longer is garbage (or an
   attack on the backtracker) and is rejected before any matching.
   Generous headroom over the RFC limit so escaped/decorated forms
   still match. Applied identically to the prefiltered and unfiltered
   search paths, which must stay behaviorally equivalent. *)
let max_subject_len = 1024

let subject_ok s =
  String.length s <= max_subject_len
  ||
  (Obs.incr c_oversized;
   false)
let prefilter_stats () = (Obs.count c_calls, Obs.count c_skips)

let reset_prefilter_stats () =
  Obs.set_counter c_calls 0;
  Obs.set_counter c_skips 0

let matches_char p s pos =
  pos < String.length s
  &&
  match p with
  | PLit c -> String.unsafe_get s pos = c
  | PCls bm -> Bytes.unsafe_get bm (Char.code (String.unsafe_get s pos)) <> '\000'
  | PAny -> true
  | _ -> false

(* per-match scratch state: one mutable record per domain ([mstate_of]
   below), its fields overwritten per exec and its capture buffer
   re-filled for each start offset, so matching allocates nothing.
   [ncaps] is the prefix of [caps] this pattern actually uses — the
   arena array may be larger. *)
type mstate = {
  mutable str : string;
  mutable slen : int;
  mutable caps : int array;
  mutable ncaps : int;
}

let str_at s n pos lit =
  let l = String.length lit in
  pos + l <= n
  &&
  let rec cmp j =
    j >= l
    || String.unsafe_get s (pos + j) = String.unsafe_get lit j && cmp (j + 1)
  in
  cmp 0

let rec mseq st items pos k =
  match items with
  | [] -> k pos
  | it :: rest -> mnode st it pos (fun pos' -> mseq st rest pos' k)

and mnode st item pos k =
  let s = st.str and n = st.slen and caps = st.caps in
  match item with
  | PLit c -> pos < n && String.unsafe_get s pos = c && k (pos + 1)
  | PStr lit -> str_at s n pos lit && k (pos + String.length lit)
  | PCls bm ->
      pos < n
      && Bytes.unsafe_get bm (Char.code (String.unsafe_get s pos)) <> '\000'
      && k (pos + 1)
  | PAny -> pos < n && k (pos + 1)
  | PBol -> pos = 0 && k pos
  | PEol -> pos = n && k pos
  | PGrp (i, inner) ->
      let s0 = caps.(2 * i) and e0 = caps.((2 * i) + 1) in
      caps.(2 * i) <- pos;
      let ok =
        mseq st inner pos (fun pos' ->
            caps.((2 * i) + 1) <- pos';
            k pos')
      in
      if not ok then begin
        caps.(2 * i) <- s0;
        caps.((2 * i) + 1) <- e0
      end;
      ok
  | PAlt alts ->
      let rec try_alts = function
        | [] -> false
        | a :: rest -> mseq st a pos k || try_alts rest
      in
      try_alts alts
  | PRepGreedy1 (p, min, max) ->
      (* the dominant repetition shape ([a-z]+, \d+, [^.]+ over a
         hostname). The general path below allocates one closure per
         consumed character per attempt; here greediness is plain
         position arithmetic: consume maximally, then retreat one
         character at a time — zero allocation *)
      let rec eat count pos =
        let more =
          (match max with Some m -> count < m | None -> true)
          && matches_char p s pos
        in
        if more then eat (count + 1) (pos + 1) else pos
      in
      let hi = eat 0 pos in
      let lo = pos + min in
      hi >= lo
      &&
      let rec back p = k p || (p > lo && back (p - 1)) in
      back hi
  | PRepPoss1 (p, min, max) ->
      (* consume maximally with no backtracking; only for group-free
         width-1 atoms — a possessive repetition over a capture group
         must take the general path below so its captures are recorded
         (the fast path would silently leave them at (-1,-1)) *)
      let rec eat count pos =
        let more =
          (match max with Some m -> count < m | None -> true)
          && matches_char p s pos
        in
        if more then eat (count + 1) (pos + 1) else (count, pos)
      in
      let count, pos' = eat 0 pos in
      count >= min && k pos'
  | PRep (p, min, max, _) ->
      let rec go count pos =
        let try_more () =
          (match max with Some m -> count < m | None -> true)
          && mnode st p pos (fun pos' ->
                 (* zero-width inner match would loop forever *)
                 pos' > pos && go (count + 1) pos')
        in
        if count < min then try_more ()
        else try_more () || k pos
      in
      go 0 pos

(* invariant: a possessive repetition wrapping a group records captures
   via the general (greedy) path — possessiveness degrades to greedy
   there, but every group the match consumed has real offsets *)

(* --- the instruction-threaded matcher ---

   [run] interprets the compile-time-linked [instr] DAG: the
   continuation of every node is a field of the node, so the only
   runtime state is (instr, pos) on the OCaml stack. Nothing here
   allocates; only [IRepDyn] drops back to the closure CPS above.
   Behavior must stay exactly [mseq st t.prog pos (fun _ -> true)]. *)

let matches_atom a s pos =
  match a with
  | ALit c -> String.unsafe_get s pos = c
  | ACls bm -> Bytes.unsafe_get bm (Char.code (String.unsafe_get s pos)) <> '\000'
  | AAny -> true

let rec run st i pos =
  match i with
  | IAccept -> true
  | ILit (c, next) ->
      pos < st.slen && String.unsafe_get st.str pos = c && run st next (pos + 1)
  | IStr (lit, next) ->
      str_at st.str st.slen pos lit && run st next (pos + String.length lit)
  | ICls (bm, next) ->
      pos < st.slen
      && Bytes.unsafe_get bm (Char.code (String.unsafe_get st.str pos)) <> '\000'
      && run st next (pos + 1)
  | IAny next -> pos < st.slen && run st next (pos + 1)
  | IBol next -> pos = 0 && run st next pos
  | IEol next -> pos = st.slen && run st next pos
  | IGrpStart (g, next) ->
      let caps = st.caps in
      let s0 = caps.(2 * g) and e0 = caps.((2 * g) + 1) in
      caps.(2 * g) <- pos;
      let ok = run st next pos in
      if not ok then begin
        caps.(2 * g) <- s0;
        caps.((2 * g) + 1) <- e0
      end;
      ok
  | IGrpEnd (g, next) ->
      st.caps.((2 * g) + 1) <- pos;
      run st next pos
  | IAlt branches -> run_alt st branches pos 0
  | IRepG1 (a, mn, mx, next) ->
      let limit = if mx >= st.slen - pos then st.slen else pos + mx in
      let hi = run_eat st.str a limit pos in
      let lo = pos + mn in
      hi >= lo && run_back st next lo hi
  | IRepP1 (a, mn, mx, next) ->
      let limit = if mx >= st.slen - pos then st.slen else pos + mx in
      let pos' = run_eat st.str a limit pos in
      pos' - pos >= mn && run st next pos'
  | IRepDyn (p, mn, mx, next) ->
      let rec go count pos0 =
        let try_more () =
          (match mx with Some m -> count < m | None -> true)
          && mnode st p pos0 (fun pos' -> pos' > pos0 && go (count + 1) pos')
        in
        if count < mn then try_more () else try_more () || run st next pos0
      in
      go 0 pos

and run_alt st branches pos j =
  j < Array.length branches
  && (run st branches.(j) pos || run_alt st branches pos (j + 1))

and run_eat s a limit pos =
  if pos < limit && matches_atom a s pos then run_eat s a limit (pos + 1)
  else pos

and run_back st next lo p =
  run st next p || (p > lo && run_back st next lo (p - 1))

let exec_at t st start =
  Array.fill st.caps 0 st.ncaps (-1);
  run st t.instr start

let anchored t = match t.prog with PBol :: _ -> true | _ -> false

(* the unfiltered reference search: retry at every start offset *)
let try_every t st =
  let anchored = anchored t in
  let rec try_from retries start =
    if start > st.slen then (retries, false)
    else if exec_at t st start then (retries, true)
    else if anchored then (retries, false)
    else try_from (retries + 1) (start + 1)
  in
  let retries, ok = try_from 0 0 in
  Obs.add c_backtracks retries;
  ok

let has_digit s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    let c = String.unsafe_get s i in
    (c >= '0' && c <= '9') || go (i + 1)
  in
  go 0

(* the global necessary conditions — tail literal at a fixed distance
   from the subject's end, extra required literals, mandatory digit —
   hold wherever the match starts, so they run once per subject before
   any start-offset enumeration *)
let prefilter_plausible pf s slen =
  (match pf.Prefilter.tail with
  | Some (lit, dist) ->
      Prefilter.matches_at ~needle:lit s (slen - dist - String.length lit)
  | None -> true)
  && ((not pf.Prefilter.needs_digit) || has_digit s)
  && (match pf.Prefilter.extras with
     | [] -> true
     | extras -> List.for_all (fun l -> Prefilter.contains ~needle:l s) extras)

(* prefiltered search; must accept exactly the same strings, with the
   same captures, as [try_every] *)
let search t st =
  Obs.incr c_calls;
  let pf = t.pf in
  let s = st.str in
  if not (prefilter_plausible pf s st.slen) then begin
    Obs.incr c_skips;
    false
  end
  else if pf.Prefilter.required = "" then try_every t st
  else if anchored t then begin
    let plausible =
      match pf.Prefilter.offset with
      | Some d -> Prefilter.matches_at ~needle:pf.Prefilter.required s d
      | None -> Prefilter.contains ~needle:pf.Prefilter.required s
    in
    if not plausible then begin
      Obs.incr c_skips;
      false
    end
    else exec_at t st 0
  end
  else begin
    match pf.Prefilter.offset with
    | Some d -> (
        (* a match starting at p places the literal at p + d, so the
           literal's occurrences enumerate every viable start *)
        match Prefilter.find ~needle:pf.Prefilter.required s 0 with
        | -1 ->
            Obs.incr c_skips;
            false
        | first ->
            let attempts = ref 0 in
            let rec scan i =
              i >= 0
              && ((i >= d
                  &&
                  (incr attempts;
                   exec_at t st (i - d)))
                 || scan (Prefilter.find ~needle:pf.Prefilter.required s (i + 1)))
            in
            let ok = scan first in
            Obs.add c_backtracks (max 0 (!attempts - 1));
            ok)
    | None ->
        if not (Prefilter.contains ~needle:pf.Prefilter.required s) then begin
          Obs.incr c_skips;
          false
        end
        else try_every t st
  end

(* per-domain match arena: exec'ing a pattern is not re-entrant within
   one domain (no callback runs inside [search], and [extract] reads
   the captures before any further exec), so one mutable state record
   per domain serves every call — zero per-exec allocation. Each
   [exec_at] attempt re-fills the first [ncaps] capture slots, which
   doubles as the arena reset. *)
let mstate_arena : mstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { str = ""; slen = 0; caps = [||]; ncaps = 0 })

let mstate_of t s =
  let want = 2 * t.ngroups in
  let st = Domain.DLS.get mstate_arena in
  if Array.length st.caps < want then st.caps <- Array.make (max want 16) (-1);
  st.str <- s;
  st.slen <- String.length s;
  st.ncaps <- want;
  st

let extract t st =
  Array.init t.ngroups (fun i ->
      let st_i = st.caps.(2 * i) and en = st.caps.((2 * i) + 1) in
      (* the upper-bound check is defensive: no backtracker bug (or
         adversarial subject) may turn a capture into an out-of-bounds
         String.sub *)
      if st_i < 0 || en < st_i || en > st.slen then None
      else Some (String.sub st.str st_i (en - st_i)))

module Trace = Hoiho_obs.Trace

let exec_raw t s =
  let st = mstate_of t s in
  if search t st then Some (extract t st) else None

(* tracing exec is far too hot to span every call; when tracing is on,
   a deterministic 1-in-64 sample keyed on the subject's bytes (never
   on scheduling) records the regex, subject and verdict *)
let exec t s =
  if not (subject_ok s) then None
  else if Trace.enabled () && Trace.sampled s then
    Trace.with_span "rx.exec"
      ~attrs:[ ("regex", source t); ("subject", s) ]
      (fun () ->
        let r = exec_raw t s in
        Trace.add_attr "matched" (string_of_bool (r <> None));
        r)
  else exec_raw t s

let exec_unfiltered t s =
  if not (subject_ok s) then None
  else
    let st = mstate_of t s in
    if try_every t st then Some (extract t st) else None

let exec_groups t s =
  match exec t s with
  | None -> None
  | Some arr -> Some (Array.to_list arr |> List.filter_map (fun x -> x))

let matches t s =
  subject_ok s
  &&
  let st = mstate_of t s in
  search t st
