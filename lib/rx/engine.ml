type prog =
  | PLit of char
  | PCls of Ast.cls
  | PAny
  | PBol
  | PEol
  | PRep of prog * int * int option * Ast.greed
  | PGrp of int * prog list
  | PAlt of prog list list

type t = { prog : prog list; ngroups : int; ast : Ast.t; pf : Prefilter.t }

let compile ast =
  let counter = ref 0 in
  let rec seq nodes = List.map node nodes
  and node = function
    | Ast.Lit c -> PLit c
    | Ast.Cls c -> PCls c
    | Ast.Any -> PAny
    | Ast.Bol -> PBol
    | Ast.Eol -> PEol
    | Ast.Rep (n, min, max, g) -> PRep (node n, min, max, g)
    | Ast.Grp inner ->
        let idx = !counter in
        incr counter;
        (* number this group before descending so numbering is
           left-to-right outside-in, as in conventional engines *)
        PGrp (idx, seq inner)
    | Ast.Alt alts -> PAlt (List.map seq alts)
  in
  let prog = seq ast in
  { prog; ngroups = !counter; ast; pf = Prefilter.analyze ast }

let compile_string s = Result.map compile (Parse.parse s)

let compile_exn s =
  match compile_string s with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Rx.Engine.compile_exn: %s in %S" msg s)

let ast t = t.ast
let source t = Ast.to_string t.ast
let group_count t = t.ngroups
let prefilter t = t.pf

module Obs = Hoiho_obs.Obs

(* engine effectiveness counters, process-wide (see DESIGN.md §7):
   [rx.exec_calls] counts prefiltered searches, [rx.prefilter_skips]
   those rejected by the literal scan without running the backtracker,
   and [rx.backtrack_attempts] the start offsets retried beyond each
   search's first attempt *)
let c_calls = Obs.counter "rx.exec_calls"
let c_skips = Obs.counter "rx.prefilter_skips"
let c_backtracks = Obs.counter "rx.backtrack_attempts"
let c_oversized = Obs.counter "rx.oversized_inputs"

(* DNS caps a name at 255 octets; anything longer is garbage (or an
   attack on the backtracker) and is rejected before any matching.
   Generous headroom over the RFC limit so escaped/decorated forms
   still match. Applied identically to the prefiltered and unfiltered
   search paths, which must stay behaviorally equivalent. *)
let max_subject_len = 1024

let subject_ok s =
  String.length s <= max_subject_len
  ||
  (Obs.incr c_oversized;
   false)
let prefilter_stats () = (Obs.count c_calls, Obs.count c_skips)

let reset_prefilter_stats () =
  Obs.set_counter c_calls 0;
  Obs.set_counter c_skips 0

let matches_char p s pos =
  pos < String.length s
  &&
  match p with
  | PLit c -> s.[pos] = c
  | PCls c -> Ast.cls_mem c s.[pos]
  | PAny -> true
  | _ -> false

(* per-match scratch state: the capture buffer is allocated once per
   [exec] and re-filled for each start offset instead of afresh on
   every attempt *)
type mstate = { str : string; slen : int; caps : int array }

let rec mseq st items pos k =
  match items with
  | [] -> k pos
  | it :: rest -> mnode st it pos (fun pos' -> mseq st rest pos' k)

and mnode st item pos k =
  let s = st.str and n = st.slen and caps = st.caps in
  match item with
  | PLit c -> pos < n && s.[pos] = c && k (pos + 1)
  | PCls cl -> pos < n && Ast.cls_mem cl s.[pos] && k (pos + 1)
  | PAny -> pos < n && k (pos + 1)
  | PBol -> pos = 0 && k pos
  | PEol -> pos = n && k pos
  | PGrp (i, inner) ->
      let s0 = caps.(2 * i) and e0 = caps.((2 * i) + 1) in
      caps.(2 * i) <- pos;
      let ok =
        mseq st inner pos (fun pos' ->
            caps.((2 * i) + 1) <- pos';
            k pos')
      in
      if not ok then begin
        caps.(2 * i) <- s0;
        caps.((2 * i) + 1) <- e0
      end;
      ok
  | PAlt alts ->
      let rec try_alts = function
        | [] -> false
        | a :: rest -> mseq st a pos k || try_alts rest
      in
      try_alts alts
  | PRep ((PLit _ | PCls _ | PAny) as p, min, max, Ast.Possessive) ->
      (* consume maximally with no backtracking; only for group-free
         width-1 atoms — a possessive repetition over a capture group
         must take the general path below so its captures are recorded
         (the fast path would silently leave them at (-1,-1)) *)
      let rec eat count pos =
        let more =
          (match max with Some m -> count < m | None -> true)
          && matches_char p s pos
        in
        if more then eat (count + 1) (pos + 1) else (count, pos)
      in
      let count, pos' = eat 0 pos in
      count >= min && k pos'
  | PRep (p, min, max, _) ->
      let rec go count pos =
        let try_more () =
          (match max with Some m -> count < m | None -> true)
          && mnode st p pos (fun pos' ->
                 (* zero-width inner match would loop forever *)
                 pos' > pos && go (count + 1) pos')
        in
        if count < min then try_more ()
        else try_more () || k pos
      in
      go 0 pos

(* invariant: a possessive repetition wrapping a group records captures
   via the general (greedy) path — possessiveness degrades to greedy
   there, but every group the match consumed has real offsets *)

let exec_at t st start =
  Array.fill st.caps 0 (Array.length st.caps) (-1);
  mseq st t.prog start (fun _ -> true)

let anchored t = match t.prog with PBol :: _ -> true | _ -> false

(* the unfiltered reference search: retry at every start offset *)
let try_every t st =
  let anchored = anchored t in
  let rec try_from retries start =
    if start > st.slen then (retries, false)
    else if exec_at t st start then (retries, true)
    else if anchored then (retries, false)
    else try_from (retries + 1) (start + 1)
  in
  let retries, ok = try_from 0 0 in
  Obs.add c_backtracks retries;
  ok

(* prefiltered search; must accept exactly the same strings, with the
   same captures, as [try_every] *)
let search t st =
  Obs.incr c_calls;
  let pf = t.pf in
  let s = st.str in
  if pf.Prefilter.required = "" then try_every t st
  else if anchored t then begin
    let plausible =
      match pf.Prefilter.offset with
      | Some d -> Prefilter.matches_at ~needle:pf.Prefilter.required s d
      | None -> Prefilter.contains ~needle:pf.Prefilter.required s
    in
    if not plausible then begin
      Obs.incr c_skips;
      false
    end
    else exec_at t st 0
  end
  else begin
    match pf.Prefilter.offset with
    | Some d -> (
        (* a match starting at p places the literal at p + d, so the
           literal's occurrences enumerate every viable start *)
        match Prefilter.find ~needle:pf.Prefilter.required s 0 with
        | -1 ->
            Obs.incr c_skips;
            false
        | first ->
            let attempts = ref 0 in
            let rec scan i =
              i >= 0
              && ((i >= d
                  &&
                  (incr attempts;
                   exec_at t st (i - d)))
                 || scan (Prefilter.find ~needle:pf.Prefilter.required s (i + 1)))
            in
            let ok = scan first in
            Obs.add c_backtracks (max 0 (!attempts - 1));
            ok)
    | None ->
        if not (Prefilter.contains ~needle:pf.Prefilter.required s) then begin
          Obs.incr c_skips;
          false
        end
        else try_every t st
  end

let mstate_of t s = { str = s; slen = String.length s; caps = Array.make (2 * t.ngroups) (-1) }

let extract t st =
  Array.init t.ngroups (fun i ->
      let st_i = st.caps.(2 * i) and en = st.caps.((2 * i) + 1) in
      (* the upper-bound check is defensive: no backtracker bug (or
         adversarial subject) may turn a capture into an out-of-bounds
         String.sub *)
      if st_i < 0 || en < st_i || en > st.slen then None
      else Some (String.sub st.str st_i (en - st_i)))

module Trace = Hoiho_obs.Trace

let exec_raw t s =
  let st = mstate_of t s in
  if search t st then Some (extract t st) else None

(* tracing exec is far too hot to span every call; when tracing is on,
   a deterministic 1-in-64 sample keyed on the subject's bytes (never
   on scheduling) records the regex, subject and verdict *)
let exec t s =
  if not (subject_ok s) then None
  else if Trace.enabled () && Trace.sampled s then
    Trace.with_span "rx.exec"
      ~attrs:[ ("regex", source t); ("subject", s) ]
      (fun () ->
        let r = exec_raw t s in
        Trace.add_attr "matched" (string_of_bool (r <> None));
        r)
  else exec_raw t s

let exec_unfiltered t s =
  if not (subject_ok s) then None
  else
    let st = mstate_of t s in
    if try_every t st then Some (extract t st) else None

let exec_groups t s =
  match exec t s with
  | None -> None
  | Some arr -> Some (Array.to_list arr |> List.filter_map (fun x -> x))

let matches t s =
  subject_ok s
  &&
  let st = mstate_of t s in
  search t st
