type prog =
  | PLit of char
  | PCls of Ast.cls
  | PAny
  | PBol
  | PEol
  | PRep of prog * int * int option * Ast.greed
  | PGrp of int * prog list
  | PAlt of prog list list

type t = { prog : prog list; ngroups : int; ast : Ast.t; pf : Prefilter.t }

let compile ast =
  let counter = ref 0 in
  let rec seq nodes = List.map node nodes
  and node = function
    | Ast.Lit c -> PLit c
    | Ast.Cls c -> PCls c
    | Ast.Any -> PAny
    | Ast.Bol -> PBol
    | Ast.Eol -> PEol
    | Ast.Rep (n, min, max, g) -> PRep (node n, min, max, g)
    | Ast.Grp inner ->
        let idx = !counter in
        incr counter;
        (* number this group before descending so numbering is
           left-to-right outside-in, as in conventional engines *)
        PGrp (idx, seq inner)
    | Ast.Alt alts -> PAlt (List.map seq alts)
  in
  let prog = seq ast in
  { prog; ngroups = !counter; ast; pf = Prefilter.analyze ast }

let compile_string s = Result.map compile (Parse.parse s)

let compile_exn s =
  match compile_string s with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Rx.Engine.compile_exn: %s in %S" msg s)

let ast t = t.ast
let source t = Ast.to_string t.ast
let group_count t = t.ngroups
let prefilter t = t.pf

(* prefilter effectiveness counters, process-wide; [skips] counts exec
   calls rejected by the literal scan without running the backtracker *)
let stat_calls = Atomic.make 0
let stat_skips = Atomic.make 0
let prefilter_stats () = (Atomic.get stat_calls, Atomic.get stat_skips)

let reset_prefilter_stats () =
  Atomic.set stat_calls 0;
  Atomic.set stat_skips 0

(* width-1 atoms admit a simple possessive loop *)
let rec char_width = function
  | PLit _ | PCls _ | PAny -> true
  | PGrp (_, [ p ]) -> char_width p
  | _ -> false

let matches_char p s pos =
  pos < String.length s
  &&
  match p with
  | PLit c -> s.[pos] = c
  | PCls c -> Ast.cls_mem c s.[pos]
  | PAny -> true
  | _ -> false

(* per-match scratch state: the capture buffer is allocated once per
   [exec] and re-filled for each start offset instead of afresh on
   every attempt *)
type mstate = { str : string; slen : int; caps : int array }

let rec mseq st items pos k =
  match items with
  | [] -> k pos
  | it :: rest -> mnode st it pos (fun pos' -> mseq st rest pos' k)

and mnode st item pos k =
  let s = st.str and n = st.slen and caps = st.caps in
  match item with
  | PLit c -> pos < n && s.[pos] = c && k (pos + 1)
  | PCls cl -> pos < n && Ast.cls_mem cl s.[pos] && k (pos + 1)
  | PAny -> pos < n && k (pos + 1)
  | PBol -> pos = 0 && k pos
  | PEol -> pos = n && k pos
  | PGrp (i, inner) ->
      let s0 = caps.(2 * i) and e0 = caps.((2 * i) + 1) in
      caps.(2 * i) <- pos;
      let ok =
        mseq st inner pos (fun pos' ->
            caps.((2 * i) + 1) <- pos';
            k pos')
      in
      if not ok then begin
        caps.(2 * i) <- s0;
        caps.((2 * i) + 1) <- e0
      end;
      ok
  | PAlt alts ->
      let rec try_alts = function
        | [] -> false
        | a :: rest -> mseq st a pos k || try_alts rest
      in
      try_alts alts
  | PRep (p, min, max, Ast.Possessive) when char_width p ->
      (* consume maximally with no backtracking *)
      let rec eat count pos =
        let more =
          (match max with Some m -> count < m | None -> true)
          && matches_char (strip_groups p) s pos
        in
        if more then eat (count + 1) (pos + 1) else (count, pos)
      in
      let count, pos' = eat 0 pos in
      count >= min && k pos'
  | PRep (p, min, max, _) ->
      let rec go count pos =
        let try_more () =
          (match max with Some m -> count < m | None -> true)
          && mnode st p pos (fun pos' ->
                 (* zero-width inner match would loop forever *)
                 pos' > pos && go (count + 1) pos')
        in
        if count < min then try_more ()
        else try_more () || k pos
      in
      go 0 pos

and strip_groups = function PGrp (_, [ p ]) -> strip_groups p | p -> p

(* a possessive repetition wrapping a group still records captures via the
   greedy path; to keep capture semantics simple we only take the
   possessive fast path when the atom records no groups *)

let exec_at t st start =
  Array.fill st.caps 0 (Array.length st.caps) (-1);
  mseq st t.prog start (fun _ -> true)

let anchored t = match t.prog with PBol :: _ -> true | _ -> false

(* the unfiltered reference search: retry at every start offset *)
let try_every t st =
  let anchored = anchored t in
  let rec try_from start =
    if start > st.slen then false
    else if exec_at t st start then true
    else if anchored then false
    else try_from (start + 1)
  in
  try_from 0

(* prefiltered search; must accept exactly the same strings, with the
   same captures, as [try_every] *)
let search t st =
  Atomic.incr stat_calls;
  let pf = t.pf in
  let s = st.str in
  if pf.Prefilter.required = "" then try_every t st
  else if anchored t then begin
    let plausible =
      match pf.Prefilter.offset with
      | Some d -> Prefilter.matches_at ~needle:pf.Prefilter.required s d
      | None -> Prefilter.contains ~needle:pf.Prefilter.required s
    in
    if not plausible then begin
      Atomic.incr stat_skips;
      false
    end
    else exec_at t st 0
  end
  else begin
    match pf.Prefilter.offset with
    | Some d -> (
        (* a match starting at p places the literal at p + d, so the
           literal's occurrences enumerate every viable start *)
        match Prefilter.find ~needle:pf.Prefilter.required s 0 with
        | -1 ->
            Atomic.incr stat_skips;
            false
        | first ->
            let rec scan i =
              i >= 0
              && ((i >= d && exec_at t st (i - d))
                 || scan (Prefilter.find ~needle:pf.Prefilter.required s (i + 1)))
            in
            scan first)
    | None ->
        if not (Prefilter.contains ~needle:pf.Prefilter.required s) then begin
          Atomic.incr stat_skips;
          false
        end
        else try_every t st
  end

let mstate_of t s = { str = s; slen = String.length s; caps = Array.make (2 * t.ngroups) (-1) }

let extract t st =
  Array.init t.ngroups (fun i ->
      let st_i = st.caps.(2 * i) and en = st.caps.((2 * i) + 1) in
      if st_i < 0 || en < 0 || en < st_i then None
      else Some (String.sub st.str st_i (en - st_i)))

let exec t s =
  let st = mstate_of t s in
  if search t st then Some (extract t st) else None

let exec_unfiltered t s =
  let st = mstate_of t s in
  if try_every t st then Some (extract t st) else None

let exec_groups t s =
  match exec t s with
  | None -> None
  | Some arr -> Some (Array.to_list arr |> List.filter_map (fun x -> x))

let matches t s =
  let st = mstate_of t s in
  search t st
