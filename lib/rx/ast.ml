type greed = Greedy | Possessive

type cls = { neg : bool; ranges : (char * char) list }

type node =
  | Lit of char
  | Cls of cls
  | Any
  | Bol
  | Eol
  | Rep of node * int * int option * greed
  | Grp of t
  | Alt of t list

and t = node list

let cls_of_string body =
  let n = String.length body in
  let neg = n > 0 && body.[0] = '^' in
  let start = if neg then 1 else 0 in
  let ranges = ref [] in
  let i = ref start in
  let read_char () =
    (* interpret one (possibly escaped) character at !i, advancing *)
    if body.[!i] = '\\' && !i + 1 < n then begin
      let c = body.[!i + 1] in
      i := !i + 2;
      match c with
      | 'd' -> `Class ('0', '9')
      | 'n' -> `Char '\n'
      | 't' -> `Char '\t'
      | c -> `Char c
    end
    else begin
      let c = body.[!i] in
      incr i;
      `Char c
    end
  in
  while !i < n do
    match read_char () with
    | `Class (a, b) -> ranges := (a, b) :: !ranges
    | `Char a ->
        if !i + 1 < n && body.[!i] = '-' && body.[!i + 1] <> ']' then begin
          incr i;
          match read_char () with
          | `Char b -> ranges := (a, b) :: !ranges
          | `Class _ -> invalid_arg "cls_of_string: range to a class"
        end
        else ranges := (a, a) :: !ranges
  done;
  { neg; ranges = List.rev !ranges }

let cls_mem { neg; ranges } c =
  let inside = List.exists (fun (a, b) -> c >= a && c <= b) ranges in
  if neg then not inside else inside

let cls_bitmap cls =
  let b = Bytes.make 256 '\000' in
  for i = 0 to 255 do
    if cls_mem cls (Char.chr i) then Bytes.unsafe_set b i '\001'
  done;
  b

let digit = { neg = false; ranges = [ ('0', '9') ] }
let lower = { neg = false; ranges = [ ('a', 'z') ] }
let not_char c = { neg = true; ranges = [ (c, c) ] }

let rec count_groups t = List.fold_left (fun acc n -> acc + groups_in n) 0 t

and groups_in = function
  | Lit _ | Cls _ | Any | Bol | Eol -> 0
  | Rep (n, _, _, _) -> groups_in n
  | Grp inner -> 1 + count_groups inner
  | Alt alts -> List.fold_left (fun acc a -> acc + count_groups a) 0 alts

let escape_lit c =
  match c with
  | '.' | '\\' | '(' | ')' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '^'
  | '$' | '|' ->
      Printf.sprintf "\\%c" c
  | c -> String.make 1 c

let escape_in_class c =
  match c with
  | '\\' | ']' | '^' | '-' -> Printf.sprintf "\\%c" c
  | c -> String.make 1 c

let cls_to_string { neg; ranges } =
  if (not neg) && ranges = [ ('0', '9') ] then "\\d"
  else begin
    let buf = Buffer.create 8 in
    Buffer.add_char buf '[';
    if neg then Buffer.add_char buf '^';
    List.iter
      (fun (a, b) ->
        if a = b then Buffer.add_string buf (escape_in_class a)
        else if a = '0' && b = '9' then Buffer.add_string buf "\\d"
        else begin
          Buffer.add_string buf (escape_in_class a);
          Buffer.add_char buf '-';
          Buffer.add_string buf (escape_in_class b)
        end)
      ranges;
    Buffer.add_char buf ']';
    Buffer.contents buf
  end

let rec to_string t = String.concat "" (List.map node_to_string t)

and node_to_string = function
  | Lit c -> escape_lit c
  | Cls c -> cls_to_string c
  | Any -> "."
  | Bol -> "^"
  | Eol -> "$"
  | Rep (n, min, max, greed) ->
      let base = node_to_string n in
      let quant =
        match (min, max) with
        | 0, Some 1 -> "?"
        | 0, None -> "*"
        | 1, None -> "+"
        | n, Some m when n = m -> Printf.sprintf "{%d}" n
        | n, None -> Printf.sprintf "{%d,}" n
        | n, Some m -> Printf.sprintf "{%d,%d}" n m
      in
      let suffix = match greed with Greedy -> "" | Possessive -> "+" in
      base ^ quant ^ suffix
  | Grp inner -> "(" ^ to_string inner ^ ")"
  | Alt alts -> "(?:" ^ String.concat "|" (List.map to_string alts) ^ ")"

let equal (a : t) (b : t) = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)
