(** Literal prefiltering for the backtracking engine.

    [analyze] extracts from a pattern AST a literal substring that is
    *required*: it appears verbatim in every string the pattern
    matches. {!Engine.exec} scans for that literal with {!find} and
    rejects non-matching inputs without entering the backtracker; when
    the literal additionally sits at a statically known distance from
    the match start ([offset]), its occurrences enumerate the only
    start offsets the backtracker needs to try.

    All conditions computed here are necessary, never sufficient, so a
    prefiltered search accepts exactly the same strings (with the same
    captures) as an exhaustive one. Possessive quantifiers are sound:
    they match a subset of their greedy form. *)

type t = {
  anchored : bool;  (** pattern begins with [^] *)
  required : string;  (** [""] when no literal is required *)
  offset : int option;
      (** distance from match start to [required], when every atom
          before the literal has a statically fixed width *)
}

val none : t

val analyze : Ast.t -> t

val node_width : Ast.node -> int option
(** Statically known width of a node in characters, if fixed. *)

val seq_width : Ast.t -> int option

val find : needle:string -> string -> int -> int
(** [find ~needle hay start] is the index of the first occurrence of
    [needle] at or after [start], or [-1]. A manual unsafe-access scan;
    [needle] must be non-empty for a meaningful result. *)

val matches_at : needle:string -> string -> int -> bool
(** Does [needle] occur at exactly this index? *)

val contains : needle:string -> string -> bool
