(** Literal prefiltering for the backtracking engine.

    [analyze] extracts from a pattern AST several *necessary*
    conditions cheap enough to check with plain byte scans: a
    [required] literal appearing verbatim in every match (when it sits
    at a statically known distance from the match start, [offset], its
    occurrences enumerate the only start offsets the backtracker needs
    to try); further [extras] literals, including substrings common to
    every branch of an alternation; a [tail] literal pinned at a fixed
    distance from the subject's end for [$]-terminated patterns; and a
    [needs_digit] flag when some mandatory atom matches only digits.
    {!Engine.exec} checks these before entering the backtracker and
    rejects most non-matching inputs outright.

    All conditions computed here are necessary, never sufficient, so a
    prefiltered search accepts exactly the same strings (with the same
    captures) as an exhaustive one. Possessive quantifiers are sound:
    they match a subset of their greedy form. *)

type t = {
  anchored : bool;  (** pattern begins with [^] *)
  required : string;  (** [""] when no literal is required *)
  offset : int option;
      (** distance from match start to [required], when every atom
          before the literal has a statically fixed width *)
  extras : string list;
      (** other literals every match must contain somewhere (at most
          two, longest first, none implied by [required] or [tail]) *)
  tail : (string * int) option;
      (** [(lit, dist)]: [lit] ends exactly [dist] bytes before the
          subject's end; only for patterns ending in [$] *)
  needs_digit : bool;
      (** some mandatory atom matches only ASCII digits *)
}

val none : t

val analyze : Ast.t -> t

val node_width : Ast.node -> int option
(** Statically known width of a node in characters, if fixed. *)

val seq_width : Ast.t -> int option

val find : needle:string -> string -> int -> int
(** [find ~needle hay start] is the index of the first occurrence of
    [needle] at or after [start], or [-1]. A manual unsafe-access scan;
    [needle] must be non-empty for a meaningful result. *)

val matches_at : needle:string -> string -> int -> bool
(** Does [needle] occur at exactly this index? *)

val contains : needle:string -> string -> bool
