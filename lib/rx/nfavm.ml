type inst =
  | IChar of Bytes.t option  (** class membership bitmap; [None] = any char *)
  | ILit of char
  | ISplit of int * int
  | IJump of int
  | IBol
  | IEol
  | IMatch

type t = { prog : inst array; match_pc : int }

let rec node_supported = function
  | Ast.Lit _ | Ast.Cls _ | Ast.Any | Ast.Bol | Ast.Eol -> true
  | Ast.Rep (_, _, _, Ast.Possessive) -> false
  | Ast.Rep (n, _, _, Ast.Greedy) -> node_supported n
  | Ast.Grp inner -> supported inner
  | Ast.Alt alts -> List.for_all supported alts

and supported ast = List.for_all node_supported ast

(* emit instructions into a growable array so jump targets can be
   patched after their destinations are known *)
let compile ast =
  if not (supported ast) then
    invalid_arg "Nfavm.compile: possessive quantifiers are unsupported";
  let buf = ref (Array.make 64 IMatch) in
  let len = ref 0 in
  let emit inst =
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * !len) IMatch in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- inst;
    incr len;
    !len - 1
  in
  let patch idx inst = !buf.(idx) <- inst in
  let rec seq nodes = List.iter node nodes
  and node = function
    | Ast.Lit c -> ignore (emit (ILit c))
    | Ast.Cls c -> ignore (emit (IChar (Some (Ast.cls_bitmap c))))
    | Ast.Any -> ignore (emit (IChar None))
    | Ast.Bol -> ignore (emit IBol)
    | Ast.Eol -> ignore (emit IEol)
    | Ast.Grp inner -> seq inner
    | Ast.Alt alts -> alt alts
    | Ast.Rep (n, min, max, _) -> rep n min max
  and alt = function
    | [] -> ()
    | [ single ] -> seq single
    | first :: rest ->
        let split = emit (IJump (-1)) (* placeholder, becomes ISplit *) in
        seq first;
        let jump_end = emit (IJump (-1)) in
        let rest_start = !len in
        patch split (ISplit (split + 1, rest_start));
        alt rest;
        patch jump_end (IJump !len)
  and rep n min max =
    (* unroll: min mandatory copies, then (max-min) optional copies or a
       star loop *)
    for _ = 1 to min do
      node n
    done;
    match max with
    | Some m ->
        (* each optional copy: split(next, end-of-all) *)
        let skips = ref [] in
        for _ = 1 to m - min do
          let split = emit (IJump (-1)) in
          skips := split :: !skips;
          node n
        done;
        let after = !len in
        List.iter (fun s -> patch s (ISplit (s + 1, after))) !skips
    | None ->
        (* star: L: split(L+1, after); body; jump L; after: *)
        let split = emit (IJump (-1)) in
        node n;
        ignore (emit (IJump split));
        patch split (ISplit (split + 1, !len))
  in
  seq ast;
  ignore (emit IMatch);
  (* exactly one IMatch is emitted, as the last instruction *)
  { prog = Array.sub !buf 0 !len; match_pc = !len - 1 }

let program_size t = Array.length t.prog

(* Pike-style sparse thread set: a dense array of live pcs plus a
   per-pc generation stamp. Membership is one array read, clearing is a
   generation bump — no per-position allocation at all. *)
type sset = {
  dense : int array;
  stamp : int array;
  mutable gen : int;
  mutable n : int;
}

let sset_make size =
  let size = max size 1 in
  { dense = Array.make size 0; stamp = Array.make size 0; gen = 1; n = 0 }

let sset_mem s pc = Array.unsafe_get s.stamp pc = s.gen

let sset_add s pc =
  Array.unsafe_set s.stamp pc s.gen;
  Array.unsafe_set s.dense s.n pc;
  s.n <- s.n + 1

let sset_clear s =
  s.gen <- s.gen + 1;
  s.n <- 0

(* epsilon-closure insertion of a thread at [pc], honoring assertions *)
let rec add_thread prog set pos len pc =
  if pc < Array.length prog && not (sset_mem set pc) then begin
    sset_add set pc;
    match prog.(pc) with
    | ISplit (a, b) ->
        add_thread prog set pos len a;
        add_thread prog set pos len b
    | IJump a -> add_thread prog set pos len a
    | IBol -> if pos = 0 then add_thread prog set pos len (pc + 1)
    | IEol -> if pos = len then add_thread prog set pos len (pc + 1)
    | ILit _ | IChar _ | IMatch -> ()
  end

(* per-domain scratch pair: the two thread sets survive across calls
   (grown to the largest program seen on this domain) and are cleared
   by a generation bump, so [matches] allocates nothing per call.
   [matches] is not re-entrant within a domain — nothing here calls
   back into user code — and distinct domains get distinct pairs. *)
let scratch : (sset * sset) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (sset_make 1, sset_make 1))

let matches t s =
  let prog = t.prog in
  let psize = Array.length prog in
  let len = String.length s in
  let r = Domain.DLS.get scratch in
  let a, b =
    let a, _ = !r in
    if Array.length a.dense < psize then begin
      let pair = (sset_make psize, sset_make psize) in
      r := pair;
      pair
    end
    else !r
  in
  sset_clear a;
  sset_clear b;
  let current = ref a in
  let next = ref b in
  let result = ref false in
  add_thread prog !current 0 len 0;
  let pos = ref 0 in
  while (not !result) && !pos <= len do
    let cur = !current in
    (* the single IMatch pc makes acceptance one membership probe *)
    if sset_mem cur t.match_pc then result := true
    else begin
      let nxt = !next in
      sset_clear nxt;
      if !pos < len then begin
        let c = String.unsafe_get s !pos in
        for i = 0 to cur.n - 1 do
          let pc = Array.unsafe_get cur.dense i in
          match Array.unsafe_get prog pc with
          | ILit l -> if l = c then add_thread prog nxt (!pos + 1) len (pc + 1)
          | IChar None -> add_thread prog nxt (!pos + 1) len (pc + 1)
          | IChar (Some bm) ->
              if Bytes.unsafe_get bm (Char.code c) <> '\000' then
                add_thread prog nxt (!pos + 1) len (pc + 1)
          | _ -> ()
        done;
        (* unanchored search: also start a fresh attempt at pos+1 *)
        add_thread prog nxt (!pos + 1) len 0
      end;
      current := nxt;
      next := cur;
      incr pos
    end
  done;
  !result
