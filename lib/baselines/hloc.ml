module Strutil = Hoiho_util.Strutil
module Db = Hoiho_geodb.Db
module City = Hoiho_geodb.City
module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Vp = Hoiho_itdk.Vp
module Psl = Hoiho_psl.Psl

let blocklist =
  [
    "gig"; "eth"; "cpe"; "dns"; "mail"; "adsl"; "atlas"; "voda"; "telecom";
    "netsol"; "media"; "level"; "vpn"; "mgmt"; "static"; "dyn"; "cust";
    "core"; "edge"; "peer"; "transit"; "host"; "node"; "wan"; "lan"; "colo";
  ]

let vps_consulted = 3

let hint_types = [ Hoiho.Plan.Iata; Hoiho.Plan.Locode; Hoiho.Plan.Clli; Hoiho.Plan.CityName ]

(* candidate verification: only the nearest pingable VPs are consulted,
   so a distant VP can never contradict the candidate *)
let verify dataset (router : Router.t) (city : City.t) =
  match router.Router.ping_rtts with
  | [] -> None
  | rtts ->
      let with_dist =
        List.map
          (fun (vp_id, rtt) ->
            let vp = Dataset.vp dataset vp_id in
            (Coord.distance_km vp.Vp.coord city.City.coord, vp, rtt))
          rtts
      in
      let nearest =
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) with_dist
        |> List.filteri (fun i _ -> i < vps_consulted)
      in
      let ok =
        List.for_all
          (fun (_, (vp : Vp.t), rtt) ->
            rtt +. 0.5 >= Lightrtt.min_rtt_ms vp.Vp.coord city.City.coord)
          nearest
      in
      if not ok then None
      else
        (* confidence: smallest RTT among the consulted VPs *)
        Some (List.fold_left (fun acc (_, _, rtt) -> Float.min acc rtt) infinity nearest)

let infer db dataset router hostname =
  match Psl.registered_suffix hostname with
  | None -> None
  | Some suffix -> (
      match Strutil.drop_suffix ~suffix hostname with
      | None | Some "" -> None
      (* skip malformed prefixes (empty labels): keyword extraction on
         "lhr4." would still find "lhr" and misgeolocate a name that is
         not a well-formed hostname at all *)
      | Some prefix when Strutil.has_empty_dns_label prefix -> None
      | Some prefix ->
          let tokens =
            Strutil.split_punct prefix
            |> List.filter_map (fun tok ->
                   let alpha = Strutil.strip_trailing_digits (Strutil.strip_leading_digits tok) in
                   if String.length alpha >= 3 && String.for_all Strutil.is_alpha alpha
                      && not (List.mem alpha blocklist)
                   then Some alpha
                   else None)
          in
          let candidates =
            List.concat_map
              (fun tok ->
                List.concat_map
                  (fun ht -> Hoiho.Dicts.lookup db ht tok)
                  hint_types)
              tokens
          in
          let verified =
            List.filter_map
              (fun city ->
                match verify dataset router city with
                | Some confidence -> Some (confidence, city)
                | None -> None)
              candidates
          in
          (match List.sort (fun (a, _) (b, _) -> compare a b) verified with
          | (_, best) :: _ -> Some best
          | [] -> None))
