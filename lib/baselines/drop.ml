module Strutil = Hoiho_util.Strutil
module Db = Hoiho_geodb.Db
module City = Hoiho_geodb.City
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Dataset = Hoiho_itdk.Dataset
module Vp = Hoiho_itdk.Vp
module Psl = Hoiho_psl.Psl

type rule = {
  suffix : string;
  n_labels : int;
  pos_from_end : int;
  digits_after : bool;
  hint_type : Hoiho.Plan.hint_type;
}

type t = { rules : (string, rule) Hashtbl.t }

let hint_types = [ Hoiho.Plan.Iata; Hoiho.Plan.Clli; Hoiho.Plan.CityName; Hoiho.Plan.Locode ]

let prefix_labels suffix hostname =
  match Strutil.drop_suffix ~suffix hostname with
  | None | Some "" -> None
  (* a malformed prefix (empty label, e.g. "..lhr4") must be skipped:
     splitting it would yield a label array whose length can collide
     with a learned rule's shape and misgeolocate garbage *)
  | Some prefix when Strutil.has_empty_dns_label prefix -> None
  | Some prefix -> Some (Array.of_list (String.split_on_char '.' prefix))

(* delay check against traceroute-observed RTTs only, with a generous
   allowance: DRoP had no follow-up pings and its delay features
   "roughly constrained locations to within a continent" (§3.3) *)
let continental_slack_ms = 25.0

let trace_consistent dataset (r : Router.t) (city : City.t) =
  List.for_all
    (fun (vp_id, rtt) ->
      let vp = Dataset.vp dataset vp_id in
      rtt +. continental_slack_ms >= Lightrtt.min_rtt_ms vp.Vp.coord city.City.coord)
    r.Router.trace_rtts

(* DRoP interprets the leading alphabetic run of a label: it extracted
   "chi" from "chi2ca" (the Cai 2015 example) *)
let leading_alpha label =
  let n = String.length label in
  let rec until i = if i < n && Strutil.is_alpha label.[i] then until (i + 1) else i in
  String.sub label 0 (until 0)

let label_geo db hint_type label =
  let alpha = leading_alpha label in
  if alpha = "" then None
  else
    match Hoiho.Dicts.lookup db hint_type alpha with
    | [] -> None
    | cities -> Some (alpha, cities)

let learn ?(staleness = 0.0) ?(seed = 2013) db dataset =
  let rng = Hoiho_util.Prng.create seed in
  let rules = Hashtbl.create 64 in
  let groups = Dataset.by_suffix dataset in
  List.iter
    (fun (suffix, routers) ->
      let samples =
        List.concat_map
          (fun (r : Router.t) ->
            List.filter_map
              (fun h ->
                match prefix_labels suffix h with
                | Some labels when Psl.registered_suffix h = Some suffix ->
                    Some (r, labels)
                | _ -> None)
              r.Router.hostnames)
          routers
      in
      if samples <> [] then begin
        (* modal label count *)
        let counts = Hashtbl.create 8 in
        List.iter
          (fun (_, labels) ->
            let n = Array.length labels in
            Hashtbl.replace counts n
              (1 + Option.value (Hashtbl.find_opt counts n) ~default:0))
          samples;
        let n_labels, _ =
          Hashtbl.fold
            (fun n c (bn, bc) -> if c > bc then (n, c) else (bn, bc))
            counts (0, 0)
        in
        let shaped = List.filter (fun (_, ls) -> Array.length ls = n_labels) samples in
        (* best (position, hint type) by majority delay consistency *)
        let best = ref None in
        for pos = 0 to n_labels - 1 do
          List.iter
            (fun hint_type ->
              let hits = ref 0 and ok = ref 0 and digits = ref 0 in
              List.iter
                (fun ((r : Router.t), labels) ->
                  let label = labels.(n_labels - 1 - pos) in
                  match label_geo db hint_type label with
                  | None -> ()
                  | Some (alpha, cities) ->
                      incr hits;
                      if String.length label > String.length alpha then incr digits;
                      if List.exists (trace_consistent dataset r) cities then incr ok)
                shaped;
              if !hits > 0 && !ok * 2 > !hits then begin
                let score = !ok in
                match !best with
                | Some (_, _, _, best_score) when best_score >= score -> ()
                | _ ->
                    best := Some (pos, hint_type, !digits * 2 > !hits, score)
              end)
            hint_types
        done;
        match !best with
        | Some (pos_from_end, hint_type, digits_after, _) ->
            if Hoiho_util.Prng.float rng 1.0 >= staleness then
              Hashtbl.replace rules suffix
                { suffix; n_labels; pos_from_end; digits_after; hint_type }
        | None -> ()
      end)
    groups;
  { rules }

let rules t = Hashtbl.fold (fun _ r acc -> r :: acc) t.rules []
let find_rule t suffix = Hashtbl.find_opt t.rules suffix

let infer t db hostname =
  match Psl.registered_suffix hostname with
  | None -> None
  | Some suffix -> (
      match Hashtbl.find_opt t.rules suffix with
      | None -> None
      | Some rule -> (
          match prefix_labels suffix hostname with
          | Some labels when Array.length labels = rule.n_labels -> (
              let label = labels.(rule.n_labels - 1 - rule.pos_from_end) in
              let alpha = leading_alpha label in
              let has_digits = String.length label > String.length alpha in
              (* the single-sequence rule only matches the modal shape *)
              if has_digits <> rule.digits_after then None
              else if alpha = "" then None
              else
                match Hoiho.Dicts.lookup db rule.hint_type alpha with
                | [] -> None
                | cities ->
                    Some
                      (List.fold_left
                         (fun best c ->
                           if c.City.population > best.City.population then c else best)
                         (List.hd cities) cities))
          | _ -> None))
