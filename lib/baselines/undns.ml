module Strutil = Hoiho_util.Strutil
module Prng = Hoiho_util.Prng
module City = Hoiho_geodb.City
module Psl = Hoiho_psl.Psl

type t = { by_suffix : (string, (string, City.t) Hashtbl.t) Hashtbl.t }

let make ~coverage ~seed tables =
  let rng = Prng.create seed in
  let by_suffix = Hashtbl.create 16 in
  List.iter
    (fun (suffix, codes) ->
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (code, city) ->
          if Prng.float rng 1.0 < coverage then Hashtbl.replace tbl code city)
        codes;
      if Hashtbl.length tbl > 0 then Hashtbl.replace by_suffix suffix tbl)
    tables;
  { by_suffix }

let n_entries t =
  Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.by_suffix 0

let infer t hostname =
  match Psl.registered_suffix hostname with
  | None -> None
  | Some suffix -> (
      match Hashtbl.find_opt t.by_suffix suffix with
      | None -> None
      | Some tbl -> (
          match Strutil.drop_suffix ~suffix hostname with
          | None | Some "" -> None
          (* malformed prefixes (empty labels) are skipped, matching
             the other baselines: an undns rule names a well-formed
             position, not whatever tokens survive in garbage *)
          | Some prefix when Strutil.has_empty_dns_label prefix -> None
          | Some prefix ->
              let tokens = Strutil.split_punct prefix in
              let rec scan = function
                | [] -> None
                | tok :: rest -> (
                    let alpha = Strutil.strip_trailing_digits tok in
                    match Hashtbl.find_opt tbl alpha with
                    | Some city -> Some city
                    | None -> scan rest)
              in
              scan tokens))
