module Json = Hoiho_util.Json

type sample = { confidence : float; correct : bool }

type bucket = {
  lo : float;
  hi : float;
  n : int;
  mean_confidence : float;
  accuracy : float;
}

type report = {
  total : int;
  answered : int;
  brier : float;
  ece : float;
  buckets : bucket list;
}

let n_buckets = 10

(* decile index of a confidence: [i/10, (i+1)/10), last bucket closed
   at 1.0. Scores are clamped to [0,1] upstream, but clamp the index
   anyway so a stray out-of-range float cannot raise. *)
let bucket_index c =
  let i = int_of_float (c *. float_of_int n_buckets) in
  if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

let of_samples ?answered samples =
  let total = List.length samples in
  let answered = Option.value answered ~default:total in
  let counts = Array.make n_buckets 0 in
  let conf_sums = Array.make n_buckets 0.0 in
  let correct_counts = Array.make n_buckets 0 in
  let brier_sum =
    List.fold_left
      (fun acc s ->
        let i = bucket_index s.confidence in
        counts.(i) <- counts.(i) + 1;
        conf_sums.(i) <- conf_sums.(i) +. s.confidence;
        if s.correct then correct_counts.(i) <- correct_counts.(i) + 1;
        let outcome = if s.correct then 1.0 else 0.0 in
        acc +. ((s.confidence -. outcome) ** 2.0))
      0.0 samples
  in
  let buckets =
    List.init n_buckets (fun i ->
        let n = counts.(i) in
        let fn = float_of_int n in
        {
          lo = float_of_int i /. float_of_int n_buckets;
          hi = float_of_int (i + 1) /. float_of_int n_buckets;
          n;
          mean_confidence = (if n = 0 then 0.0 else conf_sums.(i) /. fn);
          accuracy =
            (if n = 0 then 0.0 else float_of_int correct_counts.(i) /. fn);
        })
  in
  let ece =
    if total = 0 then 0.0
    else
      List.fold_left
        (fun acc b ->
          acc
          +. float_of_int b.n /. float_of_int total
             *. Float.abs (b.accuracy -. b.mean_confidence))
        0.0 buckets
  in
  {
    total;
    answered;
    brier = (if total = 0 then 0.0 else brier_sum /. float_of_int total);
    ece;
    buckets;
  }

let of_pipeline (pipeline : Hoiho.Pipeline.t) ~suffixes =
  let answered = ref 0 in
  let samples =
    List.concat_map
      (fun suffix ->
        Validate.ground_truth_hostnames pipeline.Hoiho.Pipeline.dataset ~suffix
        |> List.map (fun (gt : Validate.gt_hostname) ->
               match Hoiho.Pipeline.geolocate_conf pipeline gt.Validate.hostname with
               | Some city, confidence ->
                   incr answered;
                   {
                     confidence;
                     correct = Validate.correct city gt.Validate.true_coord;
                   }
               (* an abstention IS a zero-confidence prediction: leaving
                  these out would flatter the low deciles *)
               | None, _ -> { confidence = 0.0; correct = false }))
      suffixes
  in
  of_samples ~answered:!answered samples

let monotone ?(tolerance = 0.05) report =
  let nonempty = List.filter (fun b -> b.n > 0) report.buckets in
  let rec check = function
    | a :: (b :: _ as rest) ->
        b.accuracy >= a.accuracy -. tolerance && check rest
    | _ -> true
  in
  check nonempty

let to_json report =
  Json.Obj
    [
      ("total", Json.Int report.total);
      ("answered", Json.Int report.answered);
      ("brier", Json.Float report.brier);
      ("ece", Json.Float report.ece);
      ("monotone", Json.Bool (monotone report));
      ( "buckets",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("lo", Json.Float b.lo);
                   ("hi", Json.Float b.hi);
                   ("n", Json.Int b.n);
                   ("mean_confidence", Json.Float b.mean_confidence);
                   ("accuracy", Json.Float b.accuracy);
                 ])
             report.buckets) );
    ]

let render_text report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "calibration: %d ground-truth hostnames, %d answered (%d abstained)\n"
       report.total report.answered
       (report.total - report.answered));
  Buffer.add_string buf
    (Printf.sprintf "%-12s %6s  %10s  %8s\n" "decile" "n" "mean-conf"
       "accuracy");
  List.iter
    (fun b ->
      if b.n > 0 then
        Buffer.add_string buf
          (Printf.sprintf "[%.1f,%.1f%c %6d  %10.3f  %8.3f\n" b.lo b.hi
             (if b.hi >= 1.0 then ']' else ')')
             b.n b.mean_confidence b.accuracy))
    report.buckets;
  Buffer.add_string buf
    (Printf.sprintf "Brier %.4f  ECE %.4f  monotone(tol 0.05) %b\n"
       report.brier report.ece (monotone report));
  Buffer.contents buf
