(** Ground-truth calibration of per-answer confidence scores.

    The confidence subsystem ({!Hoiho.Confidence}) promises that its
    scores mean something: a batch of answers scored 0.9 should be
    right about nine times in ten. This module measures that promise
    against generator ground truth, replaying the §6 protocol with the
    score attached: every ground-truth hostname becomes a
    (confidence, correct) sample — {b including the unanswered ones},
    which enter at (0.0, false) so abstention is scored as the
    zero-confidence prediction it is — and the samples are bucketed by
    confidence decile.

    Two scalar summaries:
    - {b Brier score}: mean squared gap between confidence and outcome
      (0 is perfect, 0.25 is what a constant 0.5 scores on a coin flip).
    - {b ECE} (expected calibration error): the bucket-weighted mean of
      |accuracy − mean confidence| — how far the reliability diagram
      sits from the diagonal.

    Everything here is deterministic: samples are bucketed by exact
    float comparison on scores that are themselves byte-identical
    across jobs settings, so a calibration report is reproducible
    bit-for-bit from (preset, seed). *)

type sample = { confidence : float; correct : bool }

type bucket = {
  lo : float;  (** inclusive lower bound of the decile *)
  hi : float;  (** exclusive upper bound (inclusive for the last) *)
  n : int;
  mean_confidence : float;  (** 0 when the bucket is empty *)
  accuracy : float;  (** fraction correct; 0 when empty *)
}

type report = {
  total : int;  (** all samples, unanswered ground truth included *)
  answered : int;  (** samples where an answer was produced *)
  brier : float;
  ece : float;
  buckets : bucket list;  (** exactly 10, in decile order *)
}

val of_samples : ?answered:int -> sample list -> report
(** Bucket and summarize. [answered] defaults to the sample count —
    pass the real count when the list mixes answers and abstentions. *)

val of_pipeline :
  Hoiho.Pipeline.t -> suffixes:string list -> report
(** The end-to-end harness: every ground-truth hostname of [suffixes]
    is scored with {!Hoiho.Pipeline.geolocate_conf}; answers become
    (confidence, within-40km) samples, abstentions (0.0, false). *)

val monotone : ?tolerance:float -> report -> bool
(** Decile accuracy is non-decreasing over the non-empty buckets, up to
    [tolerance] (default 0.05): higher-confidence buckets may not be
    meaningfully {e less} accurate than lower ones. The headline gate,
    asserted in [dune runtest] and recorded in BENCH_pipeline.json. *)

val to_json : report -> Hoiho_util.Json.t
(** Stable field order; floats print via the util printer's [%.17g]. *)

val render_text : report -> string
(** The reliability table as humans read it: one line per decile, then
    the Brier/ECE/monotonicity summary line. *)
