(** The model serving layer: high-throughput application of a decoded
    {!Hoiho.Learned_io} snapshot to hostnames, without re-learning.

    A server resolves the snapshot's dictionary once, indexes its
    suffix models, and memoizes answers — positive and negative — in a
    sharded {!Lru} cache in front of the pure apply path. Batches fan
    uncached hostnames out over the shared domain pool.

    Counters: [serve.cache_hits], [serve.cache_misses] (one per distinct
    probe), [serve.cache_evictions] (from {!Lru}), and [serve.applied]
    (hostnames answered, cached or not). {!apply_batch} wall time lands
    in the [serve.batch_ms] histogram.

    When {!Hoiho_obs.Trace} is enabled the serving path emits decision
    traces: [serve.geolocate]/[serve.cache] around the cached path,
    [serve.batch] around a batch, and per-application [serve.apply]
    with [serve.psl], [serve.cand] (regex, capture groups, decoded
    hint), and [serve.resolve] (dictionary entries consulted, collision
    losers, provenance) children — the tree [hoiho explain] renders.

    Determinism: {!apply_batch} produces results — and cache-work
    counters — identical at any [jobs] setting: the cache is probed
    sequentially once per distinct normalized hostname, only the pure
    per-miss computation is parallelized, and insertions happen in
    first-appearance order. The answers are byte-identical to
    {!Hoiho.Pipeline.geolocate} on the run the model was saved from. *)

type t

type answer = {
  city : Hoiho_geodb.City.t option;
  confidence : float;
      (** the {!Hoiho.Confidence} score of this answer, in [0,1].
          Exactly 0 when [city] is [None] — negative answers (cached
          ones included) carry an explicit 0 rather than omitting the
          field, so batch rows have a uniform shape. Byte-identical to
          {!Hoiho.Pipeline.geolocate_conf} on the run the model was
          saved from, warm or cold cache, at any [jobs] setting. *)
}

val create : ?cache_capacity:int -> ?cache_shards:int -> Hoiho.Learned_io.t -> t
(** Build a server: resolve the dictionary ({!Hoiho.Learned_io.db}),
    index suffixes, allocate the cache ([cache_capacity] entries,
    default 65536, across [cache_shards] shards, default 8).
    Raises [Invalid_argument] if two suffix models share a suffix —
    a corrupt model that {!Hoiho.Learned_io.decode} also rejects. *)

val rebuild : ?dirty:string list -> t -> Hoiho.Learned_io.t -> t
(** Swap in a new model while carrying the warm cache over — the
    incremental-relearn counterpart of {!create}. [dirty] names every
    registered suffix whose model or corpus changed (the
    {!Hoiho.Delta} dirty set): cached entries — negative answers
    included — whose key falls under a dirty suffix are evicted
    (counted under [serve.cache_invalidated]); everything else keeps
    serving warm. Soundness is the caller's contract: an entry whose
    suffix is not listed must answer identically under the new model.
    With [dirty] omitted the cache carries over untouched (a swap known
    to change nothing). For a full reload with unknown provenance use
    {!create}, which starts cold. *)

val model : t -> Hoiho.Learned_io.t

val geolocate : t -> string -> Hoiho_geodb.City.t option
(** Apply the model to one hostname, through the cache. Never raises;
    normalization matches {!Hoiho.Pipeline.geolocate} exactly. *)

val geolocate_conf : t -> string -> answer
(** {!geolocate} with the answer's confidence — the full cached
    {!answer} record. *)

val geolocate_uncached : t -> string -> Hoiho_geodb.City.t option
(** The pure apply path, bypassing the cache (still never raises). *)

val geolocate_uncached_conf : t -> string -> answer
(** {!geolocate_uncached} with the answer's confidence. *)

val apply_batch :
  ?jobs:int ->
  ?normalized:bool ->
  t ->
  string list ->
  (string * answer) list
(** Answer a batch, in input order, each hostname paired with its
    geolocation and confidence. Distinct uncached hostnames are computed in parallel
    over the shared pool ([jobs] defaults to
    {!Hoiho_util.Pool.default_jobs}); duplicates within the batch are
    computed once. [normalized] (default false) promises every
    hostname is already in {!Hoiho_util.Strutil.normalize_hostname}
    form — the network boundary normalizes exactly once and sets it,
    so hostnames are never normalized twice on the serving path. *)

val cache_length : t -> int

val cached : t -> string -> bool
(** Read-only cache probe on an already-normalized key: no recency
    promotion, no hit/miss counters. The serving daemon uses it to
    stamp access-log lines with a cache-hit flag without perturbing
    the deterministic [serve.*] counters. *)
