(** Sharded LRU cache keyed by string — the memo in front of the model
    apply path ({!Serve}).

    Keys are partitioned across independent shards by a deterministic
    FNV-1a hash, each shard guarded by its own mutex so concurrent
    domains contend only when they touch the same shard. Within a shard,
    entries live on an intrusive doubly-linked recency list: a [find]
    hit promotes the entry to most-recent, and an [add] past capacity
    evicts the least-recent entry (counted under
    [serve.cache_evictions]).

    Values are arbitrary — in particular ['v] may itself be an option,
    which is how {!Serve} caches negative answers (a hostname known to
    geolocate to nothing is a cache hit, not a recomputation).

    Determinism: shard assignment depends only on the key bytes, and
    eviction order only on the sequence of [find]/[add] calls — so a
    caller that probes and inserts in a fixed order gets identical cache
    state and eviction counts at any domain count. *)

type 'v t

val create : ?shards:int -> capacity:int -> unit -> 'v t
(** [capacity] is the total entry budget, split evenly across [shards]
    (default 8; both clamped to at least 1). *)

val shards : 'v t -> int
val capacity : 'v t -> int

val shard_of : 'v t -> string -> int
(** The shard index a key maps to — deterministic in the key bytes. *)

val find : 'v t -> string -> 'v option
(** [Some v] when cached (and promotes the entry to most-recent). *)

val mem : 'v t -> string -> bool
(** Read-only membership probe: no recency promotion, no counters —
    for observers (e.g. access-log cache-hit flags) that must not
    perturb the deterministic eviction order. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or overwrite; may evict the shard's least-recent entry. *)

val remove_matching : 'v t -> (string -> bool) -> int
(** Drop every entry whose key satisfies the predicate, returning how
    many were removed. Used by incremental model swaps to invalidate
    exactly the dirty suffixes' entries (positive and negative alike)
    while the rest of the warm cache survives. The predicate runs under
    the shard lock — keep it pure and fast. *)

val length : 'v t -> int
(** Entries currently cached, over all shards. *)

val clear : 'v t -> unit
