module Obs = Hoiho_obs.Obs

let c_evictions = Obs.counter "serve.cache_evictions"

(* intrusive doubly-linked recency list; head = most recent *)
type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v shard = {
  lock : Mutex.t;
  tbl : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  cap : int;
}

type 'v t = { shard_arr : 'v shard array }

let create ?(shards = 8) ~capacity () =
  let shards = max 1 shards in
  let capacity = max 1 capacity in
  let per_shard = max 1 ((capacity + shards - 1) / shards) in
  {
    shard_arr =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 64;
            head = None;
            tail = None;
            cap = per_shard;
          });
  }

let shards t = Array.length t.shard_arr
let capacity t = Array.length t.shard_arr * t.shard_arr.(0).cap

(* FNV-1a, 64-bit: deterministic in the key bytes alone, so shard
   placement never depends on process or domain state *)
let fnv1a key =
  let h = ref 0x4bf29ce484222325 (* FNV offset basis, truncated to 63 bits *) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let shard_of t key = fnv1a key mod Array.length t.shard_arr

let unlink s node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> s.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> s.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front s node =
  node.next <- s.head;
  (match s.head with Some h -> h.prev <- Some node | None -> s.tail <- Some node);
  s.head <- Some node

let with_lock s f =
  Mutex.lock s.lock;
  match f () with
  | v ->
      Mutex.unlock s.lock;
      v
  | exception e ->
      Mutex.unlock s.lock;
      raise e

let find t key =
  let s = t.shard_arr.(shard_of t key) in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | None -> None
      | Some node ->
          unlink s node;
          push_front s node;
          Some node.value)

(* read-only probe: no promotion, no eviction, no counters — safe for
   observers (access logging) that must not perturb the deterministic
   recency order [find]/[add] callers rely on *)
let mem t key =
  let s = t.shard_arr.(shard_of t key) in
  with_lock s (fun () -> Hashtbl.mem s.tbl key)

let add t key value =
  let s = t.shard_arr.(shard_of t key) in
  with_lock s (fun () ->
      (match Hashtbl.find_opt s.tbl key with
      | Some node ->
          node.value <- value;
          unlink s node;
          push_front s node
      | None ->
          let node = { key; value; prev = None; next = None } in
          Hashtbl.replace s.tbl key node;
          push_front s node);
      if Hashtbl.length s.tbl > s.cap then
        match s.tail with
        | Some lru ->
            unlink s lru;
            Hashtbl.remove s.tbl lru.key;
            Obs.incr c_evictions
        | None -> ())

let remove_matching t pred =
  Array.fold_left
    (fun acc s ->
      acc
      + with_lock s (fun () ->
            (* collect first: unlinking while Hashtbl.iter walks the
               table would mutate under the iterator *)
            let doomed =
              Hashtbl.fold
                (fun key node acc -> if pred key then node :: acc else acc)
                s.tbl []
            in
            List.iter
              (fun node ->
                unlink s node;
                Hashtbl.remove s.tbl node.key)
              doomed;
            List.length doomed))
    0 t.shard_arr

let length t =
  Array.fold_left
    (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.tbl))
    0 t.shard_arr

let clear t =
  Array.iter
    (fun s ->
      with_lock s (fun () ->
          Hashtbl.reset s.tbl;
          s.head <- None;
          s.tail <- None))
    t.shard_arr
