module Learned_io = Hoiho.Learned_io
module Ncsel = Hoiho.Ncsel
module Plan = Hoiho.Plan
module Evalx = Hoiho.Evalx
module Confidence = Hoiho.Confidence
module Engine = Hoiho_rx.Engine
module Pool = Hoiho_util.Pool
module Obs = Hoiho_obs.Obs
module Trace = Hoiho_obs.Trace

let c_hits = Obs.counter "serve.cache_hits"
let c_misses = Obs.counter "serve.cache_misses"
let c_applied = Obs.counter "serve.applied"
let c_invalidated = Obs.counter "serve.cache_invalidated"
let h_batch = Obs.histogram "serve.batch_ms"

type answer = { city : Hoiho_geodb.City.t option; confidence : float }

type t = {
  model : Learned_io.t;
  db : Hoiho_geodb.Db.t;
  by_suffix : (string, Learned_io.suffix_model) Hashtbl.t;
  cache : answer Lru.t;
}

(* negative answers carry an explicit confidence of 0.0 — cached
   entries, batch rows, and cold-path answers all share one shape *)
let no_answer = { city = None; confidence = Confidence.none }

let index_model model =
  let by_suffix = Hashtbl.create 64 in
  List.iter
    (fun (sm : Learned_io.suffix_model) ->
      (* duplicate suffixes are a corrupt model: silently keeping the
         first (the old behavior) served answers from an arbitrary half
         of the snapshot. Learned_io.decode now rejects them with a
         typed Schema error; a hand-assembled model gets the same
         refusal here. *)
      if Hashtbl.mem by_suffix sm.Learned_io.suffix then
        invalid_arg
          (Printf.sprintf "Serve.create: duplicate suffix model %S"
             sm.Learned_io.suffix);
      Hashtbl.add by_suffix sm.Learned_io.suffix sm)
    model.Learned_io.suffixes;
  by_suffix

let create ?(cache_capacity = 65536) ?(cache_shards = 8) model =
  {
    model;
    db = Learned_io.db model;
    by_suffix = index_model model;
    cache = Lru.create ~shards:cache_shards ~capacity:cache_capacity ();
  }

(* Incremental swap: reuse the warm cache, evicting only the entries an
   incremental relearn could have changed. Cached answers — negative
   ones included — are keyed by normalized hostname and determined by
   that hostname's registered suffix's model, so an entry is stale
   exactly when its suffix is dirty. Keys with no registered suffix
   always answer [None] under every model and survive too. The
   bugfix this encodes: a full-cache carry-over used to keep serving
   cached negatives for hostnames that the new model *can* now answer
   (unknown in epoch 1, named in epoch 2). *)
let rebuild ?(dirty = []) t model =
  if dirty <> [] then begin
    let dirty_tbl = Hashtbl.create (List.length dirty) in
    List.iter (fun s -> Hashtbl.replace dirty_tbl s ()) dirty;
    let stale key =
      match Hoiho_psl.Psl.registered_suffix key with
      | Some s -> Hashtbl.mem dirty_tbl s
      | None -> false
    in
    Obs.add c_invalidated (Lru.remove_matching t.cache stale)
  end;
  { model; db = Learned_io.db model; by_suffix = index_model model; cache = t.cache }

let model t = t.model

let usable = function
  | Ncsel.Good | Ncsel.Promising -> true
  | Ncsel.Poor -> false

(* decision-trace attrs, same vocabulary as Pipeline.geolocate *)
let trace_groups groups =
  String.concat ","
    (List.map (function Some g -> g | None -> "-") (Array.to_list groups))

let trace_resolve_result cities provenance confidence =
  Trace.add_attr "provenance" (Evalx.provenance_name provenance);
  (match cities with
  | [] -> Trace.add_attr "resolved" "none"
  | best :: losers ->
      Trace.add_attr "resolved" (Hoiho_geodb.City.describe best);
      if losers <> [] then
        Trace.add_attr "collision_losers"
          (String.concat " | "
             (List.map (Confidence.describe_loser ~best) losers)));
  Trace.add_attr "confidence" (Printf.sprintf "%.3f" confidence)

(* the apply path, on an already-normalized hostname: a step-for-step
   mirror of Pipeline.geolocate, so a served answer is byte-identical to
   the in-process one on the run the model was saved from. The spans it
   emits are the serving half of the decision trace: "serve.apply" wraps
   the call; "serve.psl", one "serve.cand" per regex tried, and
   "serve.resolve" record the split, captures, and dictionary
   consultation that [hoiho explain] pretty-prints. *)
let apply_norm ?parent t hostname =
  try
    Trace.with_span ?parent "serve.apply" ~attrs:[ ("hostname", hostname) ]
    @@ fun () ->
    let answer =
      match
        Trace.with_span "serve.psl" (fun () ->
            let s = Hoiho_psl.Psl.registered_suffix hostname in
            Trace.add_attr "suffix" (Option.value s ~default:"-");
            s)
      with
      | None -> no_answer
      | Some suffix -> (
          match Hashtbl.find_opt t.by_suffix suffix with
          | Some sm when usable sm.Learned_io.classification ->
              (* spans for successive candidates must be siblings, so
                 the recursion steps OUTSIDE the current span before
                 trying the next regex *)
              let try_cand (c : Learned_io.cand) =
                Trace.with_span "serve.cand"
                  ~attrs:[ ("regex", c.Learned_io.source) ]
                @@ fun () ->
                match Engine.exec c.Learned_io.regex hostname with
                | None ->
                    Trace.add_attr "matched" "false";
                    `Next
                | Some groups -> (
                    Trace.add_attr "matched" "true";
                    Trace.add_attr "groups" (trace_groups groups);
                    match Plan.decode c.Learned_io.plan groups with
                    | None ->
                        Trace.add_attr "decoded" "false";
                        `Next
                    | Some ex ->
                        Trace.add_attr "hint" ex.Plan.hint;
                        Trace.add_attr "hint_type"
                          (Plan.hint_type_name ex.Plan.hint_type);
                        Trace.with_span "serve.resolve"
                        @@ fun () ->
                        let cities, provenance =
                          Evalx.resolve_explained t.db
                            ~learned:sm.Learned_io.learned ex
                        in
                        (* the same Confidence.of_resolution call, on
                           the same inputs, as Pipeline.geolocate_conf:
                           served scores are byte-identical to
                           in-process ones *)
                        let confidence =
                          Confidence.of_resolution
                            ~stats:sm.Learned_io.stats
                            ~learned:sm.Learned_io.learned ex
                            (cities, provenance)
                        in
                        trace_resolve_result cities provenance confidence;
                        `Done
                          (match cities with
                          | best :: _ -> { city = Some best; confidence }
                          | [] -> no_answer))
              in
              let rec first = function
                | [] -> no_answer
                | c :: rest -> (
                    match try_cand c with
                    | `Done answer -> answer
                    | `Next -> first rest)
              in
              first sm.Learned_io.cands
          | _ -> no_answer)
    in
    Trace.add_attr "answer"
      (match answer.city with
      | Some c -> Hoiho_geodb.City.describe c
      | None -> "none");
    answer
  with _ -> no_answer

let geolocate_uncached_conf t hostname =
  Obs.incr c_applied;
  apply_norm t (Hoiho_util.Strutil.normalize_hostname hostname)

let geolocate_uncached t hostname = (geolocate_uncached_conf t hostname).city

let geolocate_conf t hostname =
  Obs.incr c_applied;
  let key = Hoiho_util.Strutil.normalize_hostname hostname in
  Trace.with_span "serve.geolocate" ~attrs:[ ("hostname", key) ]
  @@ fun () ->
  let probe () =
    Trace.with_span "serve.cache" @@ fun () ->
    let r = Lru.find t.cache key in
    Trace.add_attr "outcome" (match r with Some _ -> "hit" | None -> "miss");
    r
  in
  match probe () with
  | Some answer ->
      Obs.incr c_hits;
      answer
  | None ->
      Obs.incr c_misses;
      let answer = apply_norm t key in
      Lru.add t.cache key answer;
      answer

let geolocate t hostname = (geolocate_conf t hostname).city

let apply_batch ?jobs ?(normalized = false) t hostnames =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  (* [normalized] callers (the network daemon) have already run
     Strutil.normalize_hostname at their input boundary — exactly once
     per hostname, per the serving contract *)
  let keys =
    if normalized then hostnames
    else List.map Hoiho_util.Strutil.normalize_hostname hostnames
  in
  Trace.with_span "serve.batch"
    ~attrs:[ ("hostnames", string_of_int (List.length keys)) ]
  @@ fun () ->
  Obs.time h_batch
  @@ fun () ->
  (* per-miss serve.apply spans run on pool domains; the explicit parent
     keeps them under this batch at every jobs setting *)
  let parent = Trace.fanout_parent () in
  Obs.add c_applied (List.length keys);
  (* one sequential cache probe per distinct key, in first-appearance
     order: hit/miss counts and eviction order are then functions of the
     batch contents alone, not of scheduling *)
  let answers : (string, answer) Hashtbl.t =
    Hashtbl.create (List.length keys)
  in
  let misses = ref [] in
  List.iter
    (fun key ->
      if not (Hashtbl.mem answers key) then
        match Lru.find t.cache key with
        | Some answer ->
            Obs.incr c_hits;
            Hashtbl.replace answers key answer
        | None ->
            Obs.incr c_misses;
            Hashtbl.replace answers key no_answer;
            misses := key :: !misses)
    keys;
  let misses = Array.of_list (List.rev !misses) in
  let n_misses = Array.length misses in
  (* the per-miss computation is pure (~1µs each after the exec-path
     allocation work); fanning each miss out as its own pool job costs
     more in queue traffic than the work saves, which is how the cold
     path used to run SLOWER in parallel. Batch the misses into chunks
     of at least [min_chunk] and stay sequential below one chunk's
     worth — the pool then only ever sees jobs big enough to pay for
     themselves. *)
  let min_chunk = 64 in
  let computed = Array.make n_misses None in
  let compute i =
    let key = misses.(i) in
    computed.(i) <- Some (apply_norm ~parent t key)
  in
  if jobs <= 1 || n_misses <= min_chunk then
    for i = 0 to n_misses - 1 do compute i done
  else begin
    let chunk = max min_chunk (n_misses / (jobs * 4)) in
    Pool.parallel_for (Pool.get jobs) ~chunk n_misses compute
  end;
  Trace.add_attr "misses" (string_of_int n_misses);
  (* inserts stay sequential and in first-appearance order, so cache
     contents and eviction order are jobs-invariant *)
  Array.iteri
    (fun i answer_opt ->
      let key = misses.(i) in
      let answer = Option.get answer_opt in
      Hashtbl.replace answers key answer;
      Lru.add t.cache key answer)
    computed;
  List.map2 (fun hostname key -> (hostname, Hashtbl.find answers key)) hostnames keys

let cache_length t = Lru.length t.cache
let cached t key = Lru.mem t.cache key
