module Learned_io = Hoiho.Learned_io
module Ncsel = Hoiho.Ncsel
module Plan = Hoiho.Plan
module Evalx = Hoiho.Evalx
module Engine = Hoiho_rx.Engine
module Pool = Hoiho_util.Pool
module Obs = Hoiho_obs.Obs

let c_hits = Obs.counter "serve.cache_hits"
let c_misses = Obs.counter "serve.cache_misses"
let c_applied = Obs.counter "serve.applied"

type t = {
  model : Learned_io.t;
  db : Hoiho_geodb.Db.t;
  by_suffix : (string, Learned_io.suffix_model) Hashtbl.t;
  cache : Hoiho_geodb.City.t option Lru.t;
}

let create ?(cache_capacity = 65536) ?(cache_shards = 8) model =
  let by_suffix = Hashtbl.create 64 in
  List.iter
    (fun (sm : Learned_io.suffix_model) ->
      if not (Hashtbl.mem by_suffix sm.Learned_io.suffix) then
        Hashtbl.add by_suffix sm.Learned_io.suffix sm)
    model.Learned_io.suffixes;
  {
    model;
    db = Learned_io.db model;
    by_suffix;
    cache = Lru.create ~shards:cache_shards ~capacity:cache_capacity ();
  }

let model t = t.model

let usable = function
  | Ncsel.Good | Ncsel.Promising -> true
  | Ncsel.Poor -> false

(* the apply path, on an already-normalized hostname: a step-for-step
   mirror of Pipeline.geolocate, so a served answer is byte-identical to
   the in-process one on the run the model was saved from *)
let apply_norm t hostname =
  try
    match Hoiho_psl.Psl.registered_suffix hostname with
    | None -> None
    | Some suffix -> (
        match Hashtbl.find_opt t.by_suffix suffix with
        | Some sm when usable sm.Learned_io.classification ->
            let rec first = function
              | [] -> None
              | (c : Learned_io.cand) :: rest -> (
                  match Engine.exec c.Learned_io.regex hostname with
                  | None -> first rest
                  | Some groups -> (
                      match Plan.decode c.Learned_io.plan groups with
                      | None -> first rest
                      | Some ex -> (
                          match
                            Evalx.resolve t.db ~learned:sm.Learned_io.learned ex
                          with
                          | best :: _ -> Some best
                          | [] -> None)))
            in
            first sm.Learned_io.cands
        | _ -> None)
  with _ -> None

let geolocate_uncached t hostname =
  Obs.incr c_applied;
  apply_norm t (Hoiho_util.Strutil.normalize_hostname hostname)

let geolocate t hostname =
  Obs.incr c_applied;
  let key = Hoiho_util.Strutil.normalize_hostname hostname in
  match Lru.find t.cache key with
  | Some answer ->
      Obs.incr c_hits;
      answer
  | None ->
      Obs.incr c_misses;
      let answer = apply_norm t key in
      Lru.add t.cache key answer;
      answer

let apply_batch ?jobs t hostnames =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let keys = List.map Hoiho_util.Strutil.normalize_hostname hostnames in
  Obs.add c_applied (List.length keys);
  (* one sequential cache probe per distinct key, in first-appearance
     order: hit/miss counts and eviction order are then functions of the
     batch contents alone, not of scheduling *)
  let answers : (string, Hoiho_geodb.City.t option) Hashtbl.t =
    Hashtbl.create (List.length keys)
  in
  let misses = ref [] in
  List.iter
    (fun key ->
      if not (Hashtbl.mem answers key) then
        match Lru.find t.cache key with
        | Some answer ->
            Obs.incr c_hits;
            Hashtbl.replace answers key answer
        | None ->
            Obs.incr c_misses;
            Hashtbl.replace answers key None;
            misses := key :: !misses)
    keys;
  let misses = List.rev !misses in
  (* the per-miss computation is pure; fan it out *)
  let computed =
    let f key = (key, apply_norm t key) in
    if jobs <= 1 then List.map f misses
    else Pool.parallel_map (Pool.get jobs) f misses
  in
  List.iter
    (fun (key, answer) ->
      Hashtbl.replace answers key answer;
      Lru.add t.cache key answer)
    computed;
  List.map2 (fun hostname key -> (hostname, Hashtbl.find answers key)) hostnames keys

let cache_length t = Lru.length t.cache
