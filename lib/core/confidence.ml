module City = Hoiho_geodb.City
module Router = Hoiho_itdk.Router

type suffix_stats = {
  tp : int;
  fp : int;
  fn : int;
  unk : int;
  rtt_agreement : float;
}

let no_stats = { tp = 0; fp = 0; fn = 0; unk = 0; rtt_agreement = 1.0 }

(* Agreement between the two RTT channels over the NC's TP hits: a TP
   location was consistent under the preferred channel (ping when
   present); count how often the traceroute channel, where it also
   measured the router, admits the same location. Routers with a single
   channel have nothing to disagree about and are left out; no
   dual-channel TP at all means full agreement by convention. *)
let stats_of_nc consist (nc : Ncsel.t) =
  let both = ref 0 and agree = ref 0 in
  List.iter
    (fun (h : Evalx.hit) ->
      match (h.Evalx.outcome, h.Evalx.location) with
      | Evalx.TP, Some city ->
          let r = h.Evalx.sample.Apparent.router in
          if r.Router.ping_rtts <> [] && r.Router.trace_rtts <> [] then begin
            incr both;
            if
              Consist.channel_consistent consist r Consist.Trace
                city.City.coord
            then incr agree
          end
      | _ -> ())
    nc.Ncsel.hits;
  let c = nc.Ncsel.counts in
  {
    tp = c.Evalx.tp;
    fp = c.Evalx.fp;
    fn = c.Evalx.fn;
    unk = c.Evalx.unk;
    rtt_agreement =
      (if !both = 0 then 1.0 else float_of_int !agree /. float_of_int !both);
  }

type signals = {
  stats : suffix_stats;
  collisions : int;
  provenance : Evalx.provenance;
  overlay : Learned.entry option;
}

let none = 0.0

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

(* Laplace-smoothed precision: (tp+1)/(tp+fp+2). Never 0 or 1 on finite
   evidence, and defined at tp = fp = 0 (the 0.5 prior). *)
let smoothed_ppv tp fp =
  float_of_int (tp + 1) /. float_of_int (tp + fp + 2)

(* shrink toward the 0.5 prior by evidence volume: with n = tp+fp
   observations the smoothed PPV only moves the score by n/(n+k) of its
   distance from 0.5 — a 4-sample convention cannot claim 0.95 *)
let support_k = 8.0

let shrunk_ppv tp fp =
  let n = float_of_int (tp + fp) in
  0.5 +. (n /. (n +. support_k)) *. (smoothed_ppv tp fp -. 0.5)

(* full cross-channel disagreement costs 15 points, not everything:
   the trace channel is the looser one (figure 5), so its veto is
   evidence of trouble, not proof *)
let agreement_factor a = 0.85 +. (0.15 *. clamp01 a)

(* each collision loser dilutes the claim: the answer is the
   population-ranked head of a contested lookup, not a unique match *)
let collision_factor losers =
  1.0 /. (1.0 +. (0.25 *. float_of_int (max 0 losers)))

(* A learned-overlay answer carries its own per-hint evidence, but its
   hits already shaped the suffix-level PPV — multiplying a second
   absolute precision in would double-count the penalty (measured: it
   pinned clean small-support hints near 0.55 while they ran ~100%
   correct). So the factor is the hint's purity RELATIVE to a clean
   record of the same size: fp-free hints cost nothing, impure ones pay
   the smoothed ratio. A hint that also exists in the reference
   dictionary was overridden on RTT evidence and keeps a flat haircut
   for the ambiguity. *)
let overlay_factor = function
  | None -> 1.0
  | Some (e : Learned.entry) ->
      smoothed_ppv e.Learned.tp e.Learned.fp
      /. smoothed_ppv (e.Learned.tp + e.Learned.fp) 0
      *. if e.Learned.collides then 0.9 else 1.0

let score s =
  clamp01
    (shrunk_ppv s.stats.tp s.stats.fp
    *. agreement_factor s.stats.rtt_agreement
    *. collision_factor s.collisions
    *. overlay_factor s.overlay)

(* The expected confidence-decile profile of a model: what distribution
   of per-answer confidences this model should produce on traffic shaped
   like its training corpus. Per suffix, the tp+fp answered-positive
   mass sits at the suffix's typical positive score (support × agreement
   — the collision/overlay factors are per-answer and average near 1),
   and the fn+unk mass sits at 0.0, the uniform confidence of a negative
   answer. Pure arithmetic over the stats in list order, so a batch
   learn and an incremental relearn that produce byte-identical suffix
   lists produce bit-identical profiles (the Delta equivalence
   contract). *)
let expected_profile stats_list =
  let masses = Array.make 10 0.0 in
  let total = ref 0.0 in
  List.iter
    (fun s ->
      let pos = float_of_int (s.tp + s.fp) in
      let neg = float_of_int (s.fn + s.unk) in
      if pos > 0.0 then begin
        let c = clamp01 (shrunk_ppv s.tp s.fp *. agreement_factor s.rtt_agreement) in
        let i = min 9 (int_of_float (c *. 10.0)) in
        masses.(i) <- masses.(i) +. pos
      end;
      if neg > 0.0 then masses.(0) <- masses.(0) +. neg;
      total := !total +. pos +. neg)
    stats_list;
  if !total <= 0.0 then begin
    (* an evidence-free model can only answer negatives *)
    masses.(0) <- 1.0;
    masses
  end
  else Array.map (fun m -> m /. !total) masses

let of_resolution ~stats ~learned (ex : Plan.extraction) (cities, provenance) =
  match cities with
  | [] -> none
  | _best :: losers ->
      let overlay =
        match provenance with
        | Evalx.Overlay -> Learned.find learned ex.Plan.hint_type ex.Plan.hint
        | Evalx.Dictionary -> None
      in
      score
        { stats; collisions = List.length losers; provenance; overlay }

let describe_loser ~(best : City.t) (loser : City.t) =
  Printf.sprintf "%s (support %d, -%d vs winner)" (City.describe loser)
    loser.City.population
    (best.City.population - loser.City.population)
