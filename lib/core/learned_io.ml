module Json = Hoiho_util.Json
module City = Hoiho_geodb.City
module Db = Hoiho_geodb.Db
module Engine = Hoiho_rx.Engine

(* v2 added the per-suffix confidence stats block; v3 adds the expected
   calibration profile the serving drift monitor compares live traffic
   against (DESIGN.md §14). v1/v2 snapshots still decode: neutral stats
   for v1, no stored profile (drift monitoring disabled) below v3. *)
let format_version = 3
let oldest_readable_version = 1

type cand = { source : string; plan : Plan.t; regex : Engine.t }

type suffix_model = {
  suffix : string;
  classification : Ncsel.classification;
  cands : cand list;
  learned : Learned.t;
  stats : Confidence.suffix_stats;
}

type dictionary = Default | Embedded of City.t list

type t = {
  dictionary : dictionary;
  suffixes : suffix_model list;
  calibration : float array option;
  metrics : Json.t;
}

type error =
  | Syntax of string
  | Unknown_version of int
  | Schema of { path : string; expected : string; got : string }

let error_to_string = function
  | Syntax msg -> "syntax error: " ^ msg
  | Unknown_version v ->
      Printf.sprintf
        "unknown format version %d (this build reads versions %d-%d)" v
        oldest_readable_version format_version
  | Schema { path; expected; got } ->
      Printf.sprintf "schema error at %s: expected %s, got %s" path expected got

(* --- wire names --- *)

let hint_type_wire = function
  | Plan.Iata -> "iata"
  | Plan.Icao -> "icao"
  | Plan.Locode -> "locode"
  | Plan.Clli -> "clli"
  | Plan.CityName -> "cityname"
  | Plan.FacilityAddr -> "facility"

let hint_type_of_wire = function
  | "iata" -> Some Plan.Iata
  | "icao" -> Some Plan.Icao
  | "locode" -> Some Plan.Locode
  | "clli" -> Some Plan.Clli
  | "cityname" -> Some Plan.CityName
  | "facility" -> Some Plan.FacilityAddr
  | _ -> None

let elem_wire = function
  | Plan.Hint ht -> hint_type_wire ht
  | Plan.ClliA -> "clli_a"
  | Plan.ClliB -> "clli_b"
  | Plan.Cc -> "cc"
  | Plan.State -> "state"

let elem_of_wire = function
  | "clli_a" -> Some Plan.ClliA
  | "clli_b" -> Some Plan.ClliB
  | "cc" -> Some Plan.Cc
  | "state" -> Some Plan.State
  | s -> Option.map (fun ht -> Plan.Hint ht) (hint_type_of_wire s)

let classification_wire = function
  | Ncsel.Good -> "good"
  | Ncsel.Promising -> "promising"
  | Ncsel.Poor -> "poor"

let classification_of_wire = function
  | "good" -> Some Ncsel.Good
  | "promising" -> Some Ncsel.Promising
  | "poor" -> Some Ncsel.Poor
  | _ -> None

(* --- encoding --- *)

let opt_field name = function
  | None -> []
  | Some s -> [ (name, Json.String s) ]

let city_to_json (c : City.t) =
  Json.Obj
    ([
       ("name", Json.String c.City.name);
       ("cc", Json.String c.City.cc);
     ]
    @ opt_field "state" c.City.state
    @ [
        ("lat", Json.Float c.City.coord.Hoiho_geo.Coord.lat);
        ("lon", Json.Float c.City.coord.Hoiho_geo.Coord.lon);
        ("pop", Json.Int c.City.population);
        ("iata", Json.List (List.map (fun s -> Json.String s) c.City.iata));
        ("icao", Json.List (List.map (fun s -> Json.String s) c.City.icao));
      ]
    @ opt_field "locode" c.City.locode
    @ opt_field "clli" c.City.clli
    @ [
        ( "facilities",
          Json.List
            (List.map
               (fun (name, addr) ->
                 Json.List [ Json.String name; Json.String addr ])
               c.City.facilities) );
      ])

let entry_to_json (e : Learned.entry) =
  Json.Obj
    [
      ("hint", Json.String e.Learned.hint);
      ("type", Json.String (hint_type_wire e.Learned.hint_type));
      ("city", city_to_json e.Learned.city);
      ("tp", Json.Int e.Learned.tp);
      ("fp", Json.Int e.Learned.fp);
      ("collides", Json.Bool e.Learned.collides);
    ]

let cand_to_json c =
  Json.Obj
    [
      ("source", Json.String c.source);
      ("plan", Json.List (List.map (fun e -> Json.String (elem_wire e)) c.plan));
    ]

(* stable order regardless of Hashtbl iteration *)
let sorted_entries learned =
  List.sort
    (fun (a : Learned.entry) (b : Learned.entry) ->
      compare
        (a.Learned.hint_type, a.Learned.hint)
        (b.Learned.hint_type, b.Learned.hint))
    (Learned.entries learned)

let stats_to_json (s : Confidence.suffix_stats) =
  Json.Obj
    [
      ("tp", Json.Int s.Confidence.tp);
      ("fp", Json.Int s.Confidence.fp);
      ("fn", Json.Int s.Confidence.fn);
      ("unk", Json.Int s.Confidence.unk);
      ("rtt_agreement", Json.Float s.Confidence.rtt_agreement);
    ]

let suffix_to_json sm =
  Json.Obj
    [
      ("suffix", Json.String sm.suffix);
      ("classification", Json.String (classification_wire sm.classification));
      ("cands", Json.List (List.map cand_to_json sm.cands));
      ("learned", Json.List (List.map entry_to_json (sorted_entries sm.learned)));
      ("stats", stats_to_json sm.stats);
    ]

let to_json t =
  let dictionary =
    match t.dictionary with
    | Default -> Json.Obj [ ("provenance", Json.String "default") ]
    | Embedded cities ->
        Json.Obj
          [
            ("provenance", Json.String "embedded");
            ("cities", Json.List (List.map city_to_json cities));
          ]
  in
  Json.Obj
    ([
       ("format_version", Json.Int format_version);
       ("generator", Json.String "hoiho");
       ("dictionary", dictionary);
       ("suffixes", Json.List (List.map suffix_to_json t.suffixes));
     ]
    @ (match t.calibration with
      | None -> []
      | Some masses ->
          [
            ( "calibration",
              Json.List
                (List.map (fun m -> Json.Float m) (Array.to_list masses)) );
          ])
    @ [ ("metrics", t.metrics) ])

let encode t = Json.to_string (to_json t)

(* --- decoding --- *)

(* decode combinators: thread a path for error messages, short-circuit
   with result. Exceptions cannot escape: every leaf produces a typed
   error, and [decode] additionally fences the whole walk. *)

let ( let* ) r f = Result.bind r f

let schema path expected got = Error (Schema { path; expected; got })

let field path name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> (
      match json with
      | Json.Obj _ -> schema (path ^ "." ^ name) "present field" "absent"
      | j -> schema path "object" (Json.kind j))

let opt_string_field path name json =
  match Json.member name json with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some j -> schema (path ^ "." ^ name) "string" (Json.kind j)

let as_string path = function
  | Json.String s -> Ok s
  | j -> schema path "string" (Json.kind j)

let as_int path = function
  | Json.Int i -> Ok i
  | j -> schema path "int" (Json.kind j)

let as_bool path = function
  | Json.Bool b -> Ok b
  | j -> schema path "bool" (Json.kind j)

let as_float path = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | j -> schema path "number" (Json.kind j)

let as_list path = function
  | Json.List l -> Ok l
  | j -> schema path "list" (Json.kind j)

let string_field path name json =
  let* v = field path name json in
  as_string (path ^ "." ^ name) v

let int_field path name json =
  let* v = field path name json in
  as_int (path ^ "." ^ name) v

let map_items path f items =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
        let* v = f (Printf.sprintf "%s[%d]" path i) item in
        go (i + 1) (v :: acc) rest
  in
  go 0 [] items

let string_list path json =
  let* items = as_list path json in
  map_items path as_string items

let city_of_json path json =
  let* name = string_field path "name" json in
  let* cc = string_field path "cc" json in
  let* state = opt_string_field path "state" json in
  let* lat = Result.bind (field path "lat" json) (as_float (path ^ ".lat")) in
  let* lon = Result.bind (field path "lon" json) (as_float (path ^ ".lon")) in
  let* pop = int_field path "pop" json in
  let* iata = Result.bind (field path "iata" json) (string_list (path ^ ".iata")) in
  let* icao = Result.bind (field path "icao" json) (string_list (path ^ ".icao")) in
  let* locode = opt_string_field path "locode" json in
  let* clli = opt_string_field path "clli" json in
  let* fac_items =
    Result.bind (field path "facilities" json) (as_list (path ^ ".facilities"))
  in
  let* facilities =
    map_items (path ^ ".facilities")
      (fun p item ->
        let* pair = as_list p item in
        match pair with
        | [ a; b ] ->
            let* name = as_string (p ^ "[0]") a in
            let* addr = as_string (p ^ "[1]") b in
            Ok (name, addr)
        | l -> schema p "2-element list" (Printf.sprintf "%d-element list" (List.length l)))
      fac_items
  in
  match Hoiho_geo.Coord.make ~lat ~lon with
  | coord ->
      Ok
        {
          City.name;
          cc;
          state;
          coord;
          population = pop;
          iata;
          icao;
          locode;
          clli;
          facilities;
        }
  | exception Invalid_argument _ ->
      schema path "coordinates in range" (Printf.sprintf "(%g, %g)" lat lon)

let entry_of_json path json =
  let* hint = string_field path "hint" json in
  let* ht_name = string_field path "type" json in
  let* hint_type =
    match hint_type_of_wire ht_name with
    | Some ht -> Ok ht
    | None -> schema (path ^ ".type") "geohint type name" (Printf.sprintf "%S" ht_name)
  in
  let* city = Result.bind (field path "city" json) (city_of_json (path ^ ".city")) in
  let* tp = int_field path "tp" json in
  let* fp = int_field path "fp" json in
  let* collides = Result.bind (field path "collides" json) (as_bool (path ^ ".collides")) in
  Ok { Learned.hint; hint_type; city; tp; fp; collides }

let cand_of_json path json =
  let* source = string_field path "source" json in
  let* plan_items = Result.bind (field path "plan" json) (as_list (path ^ ".plan")) in
  let* plan =
    map_items (path ^ ".plan")
      (fun p item ->
        let* name = as_string p item in
        match elem_of_wire name with
        | Some e -> Ok e
        | None -> schema p "plan element name" (Printf.sprintf "%S" name))
      plan_items
  in
  match Engine.compile_string source with
  | Error msg -> schema (path ^ ".source") "compilable regex" msg
  | Ok regex ->
      if Engine.group_count regex <> List.length plan then
        schema path
          (Printf.sprintf "plan of %d element(s) matching the regex's capture groups"
             (Engine.group_count regex))
          (Printf.sprintf "%d element(s)" (List.length plan))
      else Ok { source; plan; regex }

let stats_of_json path json =
  let* tp = int_field path "tp" json in
  let* fp = int_field path "fp" json in
  let* fn = int_field path "fn" json in
  let* unk = int_field path "unk" json in
  let* rtt_agreement =
    Result.bind
      (field path "rtt_agreement" json)
      (as_float (path ^ ".rtt_agreement"))
  in
  if rtt_agreement < 0.0 || rtt_agreement > 1.0 then
    schema (path ^ ".rtt_agreement") "float in [0,1]"
      (Printf.sprintf "%g" rtt_agreement)
  else Ok { Confidence.tp; fp; fn; unk; rtt_agreement }

let suffix_of_json ~version path json =
  let* suffix = string_field path "suffix" json in
  let* cls_name = string_field path "classification" json in
  let* classification =
    match classification_of_wire cls_name with
    | Some c -> Ok c
    | None ->
        schema (path ^ ".classification") "good|promising|poor"
          (Printf.sprintf "%S" cls_name)
  in
  let* cand_items = Result.bind (field path "cands" json) (as_list (path ^ ".cands")) in
  let* cands = map_items (path ^ ".cands") cand_of_json cand_items in
  let* entry_items =
    Result.bind (field path "learned" json) (as_list (path ^ ".learned"))
  in
  let* entries = map_items (path ^ ".learned") entry_of_json entry_items in
  let learned = Learned.empty () in
  List.iter (Learned.add learned) entries;
  (* v1 predates the stats block: decode with the neutral stats, so old
     snapshots keep serving (their answers score from the 0.5 prior) *)
  let* stats =
    if version < 2 then Ok Confidence.no_stats
    else Result.bind (field path "stats" json) (stats_of_json (path ^ ".stats"))
  in
  Ok { suffix; classification; cands; learned; stats }

let of_json json =
  let* version = int_field "$" "format_version" json in
  if version < oldest_readable_version || version > format_version then
    Error (Unknown_version version)
  else
    let* dict_json = field "$" "dictionary" json in
    let* provenance = string_field "$.dictionary" "provenance" dict_json in
    let* dictionary =
      match provenance with
      | "default" -> Ok Default
      | "embedded" ->
          let* city_items =
            Result.bind
              (field "$.dictionary" "cities" dict_json)
              (as_list "$.dictionary.cities")
          in
          let* cities = map_items "$.dictionary.cities" city_of_json city_items in
          Ok (Embedded cities)
      | other ->
          schema "$.dictionary.provenance" "default|embedded"
            (Printf.sprintf "%S" other)
    in
    let* suffix_items =
      Result.bind (field "$" "suffixes" json) (as_list "$.suffixes")
    in
    let* suffixes =
      map_items "$.suffixes" (suffix_of_json ~version) suffix_items
    in
    (* duplicate suffixes are a corrupt snapshot: a server indexing
       by suffix would silently drop one model's regexes and learned
       hints, and which half survives would depend on load order *)
    let* () =
      let seen = Hashtbl.create 16 in
      let rec unique i = function
        | [] -> Ok ()
        | sm :: rest ->
            if Hashtbl.mem seen sm.suffix then
              schema
                (Printf.sprintf "$.suffixes[%d].suffix" i)
                "unique suffix"
                (Printf.sprintf "duplicate %S" sm.suffix)
            else begin
              Hashtbl.add seen sm.suffix ();
              unique (i + 1) rest
            end
      in
      unique 0 suffixes
    in
    (* v3 added the expected calibration profile; below v3 (or absent —
       the field is optional even in v3) drift monitoring is simply
       disabled, but a present profile must be well-formed: exactly 10
       decile masses, each in [0,1] *)
    let* calibration =
      match Json.member "calibration" json with
      | None -> Ok None
      | Some j ->
          let* items = as_list "$.calibration" j in
          let* masses =
            map_items "$.calibration"
              (fun p item ->
                let* m = as_float p item in
                if m < 0.0 || m > 1.0 then
                  schema p "decile mass in [0,1]" (Printf.sprintf "%g" m)
                else Ok m)
              items
          in
          if List.length masses <> 10 then
            schema "$.calibration" "10 decile masses"
              (Printf.sprintf "%d element(s)" (List.length masses))
          else Ok (Some (Array.of_list masses))
    in
    let metrics =
      match Json.member "metrics" json with Some m -> m | None -> Json.Obj []
    in
    Ok { dictionary; suffixes; calibration; metrics }

let decode s =
  match Json.parse s with
  | Error msg -> Error (Syntax msg)
  | Ok json -> (
      (* the walk above is total, but fence it anyway: a decode must
         never raise, whatever the input *)
      try of_json json
      with e -> Error (Syntax ("unexpected decoder failure: " ^ Printexc.to_string e)))

(* --- pipeline extraction / files --- *)

let suffix_model_of_result (r : Pipeline.suffix_result) =
  match (r.Pipeline.nc, r.Pipeline.classification) with
  | Some nc, Some classification ->
      Some
        {
          suffix = r.Pipeline.suffix;
          classification;
          cands =
            List.map
              (fun (c : Cand.t) ->
                {
                  source = c.Cand.source;
                  plan = c.Cand.plan;
                  regex = c.Cand.regex;
                })
              nc.Ncsel.cands;
          learned = r.Pipeline.learned;
          stats =
            Option.value r.Pipeline.stats ~default:Confidence.no_stats;
        }
  | _ -> None

let of_pipeline (p : Pipeline.t) =
  let suffixes = List.filter_map suffix_model_of_result p.Pipeline.results in
  let dictionary =
    (* Db.default is memoized, so physical equality identifies it *)
    if p.Pipeline.db == Db.default () then Default
    else Embedded (Db.cities p.Pipeline.db)
  in
  let metrics =
    match Json.parse (Hoiho_obs.Obs.to_json p.Pipeline.metrics) with
    | Ok j -> j
    | Error _ -> Json.Obj []
  in
  let calibration =
    Some (Confidence.expected_profile (List.map (fun sm -> sm.stats) suffixes))
  in
  { dictionary; suffixes; calibration; metrics }

let db t =
  match t.dictionary with
  | Default -> Db.default ()
  | Embedded cities -> Db.of_cities cities

let save path t =
  let oc = open_out path in
  output_string oc (encode t);
  output_char oc '\n';
  close_out oc

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> decode s
  | exception Sys_error msg -> Error (Syntax msg)

(* --- equality (for round-trip properties) --- *)

let equal_cand a b = a.source = b.source && a.plan = b.plan

let equal_suffix a b =
  a.suffix = b.suffix
  && a.classification = b.classification
  && List.equal equal_cand a.cands b.cands
  && sorted_entries a.learned = sorted_entries b.learned
  && a.stats = b.stats

let equal a b =
  (match (a.dictionary, b.dictionary) with
  | Default, Default -> true
  | Embedded ca, Embedded cb -> ca = cb
  | _ -> false)
  && List.equal equal_suffix a.suffixes b.suffixes
  && Option.equal (fun x y -> x = y) a.calibration b.calibration
  && Json.equal a.metrics b.metrics
