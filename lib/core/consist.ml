module Coord = Hoiho_geo.Coord
module Lightrtt = Hoiho_geo.Lightrtt
module Router = Hoiho_itdk.Router
module Vp = Hoiho_itdk.Vp
module Dataset = Hoiho_itdk.Dataset

(* measured RTTs are quantized/jittered; allow a small slack so a router
   colocated with a VP is not rejected by sub-ms noise *)
let slack_ms = 0.5

(* Read-only after construction: [t] is shared across the pool's
   domains during a parallel pipeline run, so nothing here may mutate
   shared state after [create] returns. The best-case-RTT memo is
   per-domain (Domain.DLS): each domain fills its own table, which
   costs some duplicated haversines but needs no locking on the
   hottest read path in the system. *)
type t = {
  dataset : Dataset.t;
  vp_by_id : Vp.t array;
  min_rtt_cache : (int * float * float, float) Hashtbl.t Domain.DLS.key;
}

exception Unknown_vp of int

let () =
  Printexc.register_printer (function
    | Unknown_vp id -> Some (Printf.sprintf "Hoiho.Consist.Unknown_vp(%d)" id)
    | _ -> None)

let create dataset =
  let max_id =
    Array.fold_left (fun m (v : Vp.t) -> max m v.Vp.id) 0 dataset.Dataset.vps
  in
  let vp_by_id =
    if Array.length dataset.Dataset.vps = 0 then [||]
    else begin
      let vp_by_id = Array.make (max_id + 1) dataset.Dataset.vps.(0) in
      Array.iter (fun (v : Vp.t) -> vp_by_id.(v.Vp.id) <- v) dataset.Dataset.vps;
      vp_by_id
    end
  in
  {
    dataset;
    vp_by_id;
    min_rtt_cache = Domain.DLS.new_key (fun () -> Hashtbl.create 65536);
  }

let dataset t = t.dataset

(* [vp_by_id] is a dense table seeded with vps.(0) as filler, so a hole
   (an id inside the range that no VP carries) holds a VP whose own id
   disagrees with the slot — both out-of-range and dangling ids get the
   same descriptive, deterministic error instead of a bare
   Invalid_argument from Array indexing *)
let vp_of t id =
  if id < 0 || id >= Array.length t.vp_by_id then raise (Unknown_vp id)
  else
    let v = t.vp_by_id.(id) in
    if v.Vp.id <> id then raise (Unknown_vp id);
    v

let router_rtts t (r : Router.t) =
  let pairs = if r.Router.ping_rtts <> [] then r.Router.ping_rtts else r.Router.trace_rtts in
  List.map (fun (id, rtt) -> (vp_of t id, rtt)) pairs

let best_case t vp_id (loc : Coord.t) =
  let cache = Domain.DLS.get t.min_rtt_cache in
  let key = (vp_id, loc.Coord.lat, loc.Coord.lon) in
  match Hashtbl.find_opt cache key with
  | Some v -> v
  | None ->
      let v = Lightrtt.min_rtt_ms (vp_of t vp_id).Vp.coord loc in
      Hashtbl.replace cache key v;
      v

let location_consistent t (r : Router.t) loc =
  let check (vp_id, rtt) = rtt +. slack_ms >= best_case t vp_id loc in
  let pairs = if r.Router.ping_rtts <> [] then r.Router.ping_rtts else r.Router.trace_rtts in
  List.for_all check pairs

type channel = Ping | Trace

let channel_consistent t (r : Router.t) channel loc =
  let check (vp_id, rtt) = rtt +. slack_ms >= best_case t vp_id loc in
  let pairs =
    match channel with
    | Ping -> r.Router.ping_rtts
    | Trace -> r.Router.trace_rtts
  in
  List.for_all check pairs

let city_consistent t r (city : Hoiho_geodb.City.t) =
  location_consistent t r city.Hoiho_geodb.City.coord

let closest_vp_rtt _t (r : Router.t) =
  match Router.min_ping_rtt r with Some (_, rtt) -> Some rtt | None -> None
