(** Per-answer confidence scoring (DESIGN.md §13).

    A geolocation answer is the convention's *claim*; this module grades
    how much that claim deserves to be believed, in [0,1], from signals
    the pipeline already computes but used to collapse early:

    - convention support: the final NC's TP/FP counts under the suffix
      (a convention proven right 400 times out of 410 outranks one
      proven right 4 times out of 5);
    - RTT-channel agreement: the fraction of TP answers that are also
      consistent under the traceroute channel when the ping channel
      decided (disagreement between the two measurement frameworks is
      the HLOC-style distrust signal);
    - dictionary collision pressure: how many dictionary entries lost
      to the answered city for the same hint (a contested hint is a
      guess ranked by population, not an identification);
    - provenance: a learned-overlay entry brings its own per-hint
      support, a plain dictionary answer does not.

    Determinism contract: the score is pure arithmetic over these
    signals — no wall clock, no randomness, no Hashtbl iteration — so
    it is byte-identical across [jobs] settings, across warm and cold
    caches, and across the in-process and served paths. The per-suffix
    stats ride inside the model snapshot ({!Learned_io} format v2,
    [%.17g] float round-trip), so a served answer carries the exact
    float the training run would have produced. *)

type suffix_stats = {
  tp : int;  (** final-NC true positives (after reselect) *)
  fp : int;
  fn : int;
  unk : int;
  rtt_agreement : float;
      (** fraction of TP hits whose location the traceroute channel
          also admits, among routers measured on both channels; 1.0
          when no router has both (nothing to disagree) *)
}

val no_stats : suffix_stats
(** The neutral element: zero counts, full agreement. Used for format-v1
    snapshots (which predate per-suffix stats) — scores computed from it
    shrink toward the 0.5 prior instead of pretending support. *)

val stats_of_nc : Consist.t -> Ncsel.t -> suffix_stats
(** Learn-time digest of a suffix's final NC: the counts, plus the
    RTT-channel agreement over its TP hits. Computed once per suffix at
    the end of {!Pipeline.run_suffix}. *)

type signals = {
  stats : suffix_stats;
  collisions : int;  (** dictionary entries that lost to the answer *)
  provenance : Evalx.provenance;
  overlay : Learned.entry option;
      (** the overlay entry that supplied the answer, when
          [provenance = Overlay] *)
}

val score : signals -> float
(** Combine the signals into [0,1]:

    [score = support · agreement · collision · overlay]

    where [support] is the suffix PPV, Laplace-smoothed and shrunk
    toward 0.5 by sample count ([(n/(n+8)) · (ppv₊ − ½) + ½]);
    [agreement] maps RTT-channel agreement into [0.85,1]; [collision]
    is [1/(1 + L/4)] for [L] losers; and [overlay] applies the same
    smoothed-PPV treatment to the overlay entry's own tp/fp (with a
    flat 0.9 haircut when the learned hint collides with the reference
    dictionary), or 1 for dictionary answers. Always in [0,1]. *)

val of_resolution :
  stats:suffix_stats ->
  learned:Learned.t ->
  Plan.extraction ->
  Hoiho_geodb.City.t list * Evalx.provenance ->
  float
(** The confidence of one resolved answer, from exactly what
    {!Evalx.resolve_explained} returned for it. 0 when the city list is
    empty (no answer ⇒ no confidence) — the same convention gives
    negative cache entries and unanswerable hostnames a uniform 0.
    Both {!Pipeline.geolocate_conf} and the serving path call this with
    identical inputs; that shared call site is the byte-identity
    argument. *)

val none : float
(** 0., the confidence of an absent answer. *)

val expected_profile : suffix_stats list -> float array
(** The confidence-decile profile (10 masses summing to 1; index [i]
    covers confidences in [[i/10, (i+1)/10)], with 1.0 in the top
    decile) this model is expected to produce on traffic shaped like
    its training corpus: per suffix, [tp+fp] mass at the suffix's
    typical positive score ([shrunk PPV × agreement]) and [fn+unk]
    mass at 0.0 (the negative-answer confidence). An evidence-free
    list puts all mass at decile 0. Pure arithmetic in list order —
    byte-identical suffix lists yield bit-identical profiles, so
    {!Learned_io.of_pipeline} and {!Delta.relearn_model} agree — the
    baseline the serving daemon's calibration-drift monitor compares
    live traffic against (DESIGN.md §14). *)

val describe_loser :
  best:Hoiho_geodb.City.t -> Hoiho_geodb.City.t -> string
(** Decision-trace rendering of one collision loser: the city plus the
    support margin it lost by (dictionary support is population — the
    ranking key of {!Hoiho_geodb.Db} lookups), so [hoiho explain] shows
    *why* the winner won, not just who lost. *)
