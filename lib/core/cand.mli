(** Candidate regexes under construction.

    The generation phases manipulate regexes as component lists rather
    than strings: literals, fixed pattern nodes, capture groups
    annotated with plan elements, and *fillers* — unconstrained holes
    ([^\.]+, .+, [^-]+) that phase 3 later specializes using the strings
    they actually matched. *)

type filler =
  | Flabel  (** [^\.]+ — one whole dot-separated label *)
  | Flead  (** .+ — collapses a run of leading labels (at most one) *)
  | Fdash  (** [^-]+ — a dash-delimited field *)

type comp =
  | Lit of string  (** literal text (escaped on compile) *)
  | Node of Hoiho_rx.Ast.node  (** fixed pattern piece, e.g. \d+ *)
  | Fill of filler
  | Cap of Plan.elem * Hoiho_rx.Ast.node list  (** capture group *)

type t = {
  body : comp list;  (** pattern for the hostname prefix *)
  suffix : string;  (** the literal domain suffix *)
  plan : Plan.t;
  regex : Hoiho_rx.Engine.t;  (** compiled pattern including anchors/suffix *)
  source : string;  (** concrete syntax, for display and deduplication *)
}

val build : suffix:string -> comp list -> t
(** Compile components into an anchored regex ending in the literal
    suffix; derives the plan from the [Cap] components in order. *)

val source_of : suffix:string -> comp list -> string
(** The concrete syntax [build] would give this body, without
    compiling it. *)

val build_many : ?jobs:int -> suffix:string -> comp list list -> t list
(** Batched compilation: deduplicates bodies on their rendered source
    (keeping first occurrences, like {!dedup}) before compiling, and
    fans the distinct compiles out over the shared pool when
    [jobs > 1]. Equivalent to [dedup (List.map (build ~suffix) bodies)]
    at a fraction of the compile work. *)

val analysis_regex :
  t -> Hoiho_rx.Engine.t * [ `Fill of int | `Plan of Plan.elem ] list
(** A variant where every filler is additionally captured, for phase 3:
    returns the compiled regex and, per capture group in order, whether
    it is a filler (identified by component index) or a plan element. *)

val equal_structure : t -> t -> bool
(** Equality on [source] (same concrete pattern and suffix). *)

val dedup : t list -> t list
(** Remove structural duplicates, keeping first occurrences. *)

val pp : Format.formatter -> t -> unit
