(** Phase 4 and stage 5: assemble regexes into naming conventions (NCs),
    rank them, and classify the winner (§5.3 appendix A, §5.5).

    An NC is an ordered list of regexes; a hostname's outcome comes from
    the first regex that matches it. Set building is greedy: seed with a
    high-ATP regex, repeatedly add the regex that most improves ATP,
    subject to each member extracting ≥3 unique geohints and the PPV not
    dropping more than 10 points below the seed's. The final selection
    prefers an NC with fewer regexes when it is within 3 TPs of the
    best. *)

type classification = Good | Promising | Poor

type t = {
  cands : Cand.t list;  (** member regexes, in application order *)
  counts : Evalx.counts;
  hits : Evalx.hit list;  (** one per sample, from the first matching regex *)
  unique_hints : int;  (** distinct TP hint strings *)
}

val eval_nc :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  ?learned:Learned.t ->
  Cand.t list ->
  Apparent.sample list ->
  t

val build :
  ?jobs:int ->
  Consist.t ->
  Hoiho_geodb.Db.t ->
  ?learned:Learned.t ->
  Cand.t list ->
  Apparent.sample list ->
  t option
(** Full phase 4 + final selection. [None] when no candidate matches
    anything. Candidates with an identical (regex source, plan) pair
    are evaluated once. [jobs] (default {!Hoiho_util.Pool.default_jobs})
    fans the per-candidate evaluation out over a domain pool; results
    are independent of [jobs]. *)

val classify : t -> classification
(** good: ≥3 unique hints and PPV ≥ 0.9; promising: ≥3 and PPV ≥ 0.8;
    poor otherwise. *)

val usable : t -> bool
(** good or promising. *)

val seed_count : int
(** Number of top-ranked candidates used as set-building seeds. *)
