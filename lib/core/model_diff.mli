(** Typed diff between two model snapshots: which naming conventions
    were added, dropped, or changed, how the learned-geohint overlay
    churned, and how per-suffix support moved — the drift signal the
    Longitudinal IP Geolocation study shows models must track. Produced
    by [hoiho diff-model] and by the relearn paths to summarize what an
    event stream actually changed. *)

type status = Added | Dropped | Changed

type entry_change = {
  hint : string;
  hint_type : Plan.hint_type;
  before : Learned.entry option;  (** [None] when the hint is new *)
  after : Learned.entry option;  (** [None] when the hint was dropped *)
}
(** One learned-overlay entry, keyed by (hint_type, hint), that differs
    between the two snapshots. Identical entries are not reported. *)

type suffix_diff = {
  suffix : string;
  status : status;
  classification_before : Ncsel.classification option;
  classification_after : Ncsel.classification option;
  cands_before : string list;  (** regex sources, application order *)
  cands_after : string list;
  cands_changed : bool;
      (** the (source, plan) candidate lists differ; always [false] for
          [Added]/[Dropped] (there is nothing to compare against) *)
  hints : entry_change list;  (** in (hint_type, hint) order *)
  support_before : int;  (** sum of TP counts across learned entries *)
  support_after : int;
}

type t = {
  suffixes_before : int;
  suffixes_after : int;
  unchanged : int;
  dictionary_changed : bool;
  diffs : suffix_diff list;  (** sorted by suffix *)
}

val diff : Learned_io.t -> Learned_io.t -> t
(** [diff before after]. A suffix counts as changed when its
    classification, its (source, plan) candidates, or its learned
    entries (compared in stable sorted order) differ; metrics blocks
    are ignored — two learns of the same corpus diff empty. *)

val is_empty : t -> bool
(** No per-suffix diffs and an unchanged dictionary. *)

val to_json : t -> Hoiho_util.Json.t
(** Deterministic JSON view (suffixes and hints in sorted order; cities
    identified by {!Hoiho_geodb.City.key}). *)

val encode : t -> string
(** Stable compact rendering of {!to_json}: equal diffs encode to
    equal bytes. *)

val render_text : t -> string
(** Human view, one suffix per stanza: a header line with totals, then
    [+]/[-]/[~] lines per added/dropped/changed suffix with support and
    hint-churn detail. Ends with a newline. Deterministic — the golden
    drift corpus pins this output. *)
