module Ast = Hoiho_rx.Ast
module Engine = Hoiho_rx.Engine

type filler = Flabel | Flead | Fdash

type comp =
  | Lit of string
  | Node of Ast.node
  | Fill of filler
  | Cap of Plan.elem * Ast.node list

type t = {
  body : comp list;
  suffix : string;
  plan : Plan.t;
  regex : Engine.t;
  source : string;
}

let lit_nodes s = List.init (String.length s) (fun i -> Ast.Lit s.[i])

let filler_node = function
  | Flabel -> Ast.Rep (Ast.Cls (Ast.not_char '.'), 1, None, Ast.Greedy)
  | Flead -> Ast.Rep (Ast.Any, 1, None, Ast.Greedy)
  | Fdash -> Ast.Rep (Ast.Cls (Ast.not_char '-'), 1, None, Ast.Greedy)

let ast_of ~capture_fillers ~suffix body =
  let nodes =
    List.concat_map
      (fun comp ->
        match comp with
        | Lit s -> lit_nodes s
        | Node n -> [ n ]
        | Fill f ->
            if capture_fillers then [ Ast.Grp [ filler_node f ] ]
            else [ filler_node f ]
        | Cap (_, inner) -> [ Ast.Grp inner ])
      body
  in
  (Ast.Bol :: nodes) @ lit_nodes ("." ^ suffix) @ [ Ast.Eol ]

let plan_of body =
  List.filter_map (function Cap (elem, _) -> Some elem | _ -> None) body

let build ~suffix body =
  let ast = ast_of ~capture_fillers:false ~suffix body in
  let regex = Engine.compile ast in
  { body; suffix; plan = plan_of body; regex; source = Ast.to_string ast }

let source_of ~suffix body = Ast.to_string (ast_of ~capture_fillers:false ~suffix body)

let build_many ?(jobs = 1) ~suffix bodies =
  (* rendering a body's source is cheap; compiling it (prefilter
     analysis, class bitmaps) is not. Deduplicate on the rendered
     source BEFORE compiling — the generation phases emit the same
     pattern from many samples — then fan the distinct compiles out
     over the shared pool. Keeps first occurrences in order, exactly
     like [dedup] over per-body [build] results. *)
  let seen = Hashtbl.create 64 in
  let distinct =
    List.filter
      (fun body ->
        let src = source_of ~suffix body in
        if Hashtbl.mem seen src then false
        else begin
          Hashtbl.replace seen src ();
          true
        end)
      bodies
  in
  if jobs <= 1 then List.map (build ~suffix) distinct
  else Hoiho_util.Pool.parallel_map (Hoiho_util.Pool.get jobs) (build ~suffix) distinct

let analysis_regex t =
  let ast = ast_of ~capture_fillers:true ~suffix:t.suffix t.body in
  let regex = Engine.compile ast in
  (* group order follows component order; map each to its role *)
  let groups =
    List.mapi (fun i c -> (i, c)) t.body
    |> List.filter_map (fun (i, c) ->
           match c with
           | Fill _ -> Some (`Fill i)
           | Cap (elem, _) -> Some (`Plan elem)
           | Lit _ | Node _ -> None)
  in
  (regex, groups)

let equal_structure a b = a.source = b.source

let dedup cands =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c.source then false
      else begin
        Hashtbl.replace seen c.source ();
        true
      end)
    cands

let pp fmt t = Format.fprintf fmt "%s [%a]" t.source Plan.pp t.plan
