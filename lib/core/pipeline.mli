(** End-to-end orchestration of the five-stage method (figure 4) over a
    router-level dataset: group routers by domain suffix, tag apparent
    geohints, generate and evaluate regexes, learn operator geohints,
    re-select, and classify the per-suffix naming convention. *)

type degradation = {
  stage : string;
      (** which stage failed: "apparent", "regen", "ncsel", "learn",
          "reselect", or "suffix" for failures outside any stage *)
  error : string;  (** [Printexc.to_string] of the captured exception *)
}

type suffix_result = {
  suffix : string;
  n_routers : int;
  n_samples : int;  (** hostnames under this suffix *)
  n_tagged : int;  (** hostnames with an apparent geohint *)
  n_tagged_routers : int;
  nc : Ncsel.t option;  (** best NC after learned-geohint refinement *)
  learned : Learned.t;
  classification : Ncsel.classification option;
  stats : Confidence.suffix_stats option;
      (** confidence signals digested from the final NC ([Some] exactly
          when [nc] is): support counts and RTT-channel agreement,
          carried into snapshots so served answers score identically *)
  degraded : degradation option;
      (** [Some _] when a stage raised: the group learned nothing
          ([nc = None], zero sample counts) but the run carried on —
          one poisoned suffix cannot abort the others. [None] on every
          clean run. Counted under [pipeline.suffix_degraded], and
          deterministic: the same dataset degrades the same suffixes
          with the same stage/error at any [jobs] setting. *)
}

type t = {
  dataset : Hoiho_itdk.Dataset.t;
  consist : Consist.t;
  db : Hoiho_geodb.Db.t;
  results : suffix_result list;
  metrics : Hoiho_obs.Obs.snapshot;
      (** observability snapshot taken when the run finished: per-stage
          durations, rx/ncsel/pool counters (see DESIGN.md §7). The
          registry is process-wide and cumulative; call
          {!Hoiho_obs.Obs.reset} before [run] to scope the snapshot to
          this run alone. *)
}

val run :
  ?db:Hoiho_geodb.Db.t ->
  ?learn_geohints:bool ->
  ?min_samples:int ->
  ?jobs:int ->
  Hoiho_itdk.Dataset.t ->
  t
(** [learn_geohints:false] disables stage 4 (used by the ablation
    experiment). [min_samples] (default 1) skips suffixes with fewer
    tagged hostnames. [jobs] (default {!Hoiho_util.Pool.default_jobs},
    i.e. the [HOIHO_JOBS] env var or cores − 1) fans the independent
    suffix groups — and candidate evaluation within each — out over a
    shared domain pool. Results are deterministic: any [jobs] value
    produces results identical to [jobs:1]. *)

val run_groups :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  ?learn_geohints:bool ->
  ?min_samples:int ->
  ?jobs:int ->
  (string * Hoiho_itdk.Router.t list) list ->
  suffix_result list
(** Run the per-suffix pipeline over an explicit list of suffix groups,
    returning results in input-group order. This is the fan-out core of
    {!run}, exposed so {!Delta.relearn} can drive it over just the
    dirty groups: given the same [consist]/[db]/options, each group's
    result depends only on that group's routers (the per-suffix stages
    never look across groups), so recomputing a subset yields results
    byte-identical to the corresponding slice of a full {!run}.
    Deterministic across [jobs] like {!run}. *)

val run_suffix :
  Consist.t ->
  Hoiho_geodb.Db.t ->
  ?learn_geohints:bool ->
  ?jobs:int ->
  suffix:string ->
  Hoiho_itdk.Router.t list ->
  suffix_result
(** The per-suffix pipeline, exposed for examples and tests. *)

val usable : suffix_result -> bool
(** Classified good or promising. *)

val find : t -> string -> suffix_result option

val geolocate : t -> string -> Hoiho_geodb.City.t option
(** Apply the learned conventions to one hostname: locate its suffix's
    usable NC, run its regexes, and decode the extraction through the
    learned overlay and reference dictionary. The hostname is
    normalized once at entry
    ({!Hoiho_util.Strutil.normalize_hostname}), so mixed-case, a
    trailing root dot, and stray whitespace geolocate the same as the
    canonical lowercase form — and the function never raises, whatever
    bytes the hostname contains. The result is the
    convention's *claim*; no RTT check is applied (regexes are usable
    offline — the paper's motivation for learning regexes at all). *)

val geolocate_conf : t -> string -> Hoiho_geodb.City.t option * float
(** {!geolocate} plus the answer's {!Confidence} score in [0,1]
    (0 exactly when the answer is [None]). Same never-raise contract;
    the score is deterministic across [jobs] settings and byte-identical
    to what {!Hoiho_serve} computes from this run's snapshot. *)

val geolocated_routers : t -> suffix_result -> int
(** Routers of a suffix with at least one TP hostname under the NC. *)
