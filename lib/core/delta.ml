module Dataset = Hoiho_itdk.Dataset
module Router = Hoiho_itdk.Router
module Json = Hoiho_util.Json
module Obs = Hoiho_obs.Obs
module Trace = Hoiho_obs.Trace

(* relearn observability: all four counters are deterministic functions
   of (prior corpus, event stream) — the same stream dirties the same
   suffixes and relearns the same groups at any [jobs] setting — so the
   equivalence tests can assert on them. Only the duration histogram is
   wall-clock. *)
let c_events = Obs.counter "relearn.events"
let c_dirty = Obs.counter "relearn.dirty_suffixes"
let c_relearned = Obs.counter "relearn.groups_relearned"
let c_reused = Obs.counter "relearn.groups_reused"
let h_run = Obs.histogram "relearn.run_ms"

type event =
  | Upsert of Router.t
  | Remove of int
  | Add_hostname of { router : int; hostname : string }
  | Remove_hostname of { router : int; hostname : string }
  | Set_hostnames of { router : int; hostnames : string list }
  | Set_rtts of {
      router : int;
      ping : (int * float) list;
      trace : (int * float) list;
    }

type error = Unknown_router of { event : int; id : int }

let error_to_string = function
  | Unknown_router { event; id } ->
      Printf.sprintf "event %d: unknown router id %d" event id

type stats = {
  events : int;
  dirty : string list;
  groups_relearned : int;
  groups_reused : int;
}

exception Err of error

(* The dirty set is conservative on purpose: a touched router marks the
   registered suffixes of its hostnames both before and after the
   change, so a hostname moving between suffixes dirties the group it
   left as well as the one it joined. Structural no-ops (an event that
   leaves the router bit-identical) mark nothing — replaying the same
   observation must not trigger a relearn. *)
let apply (ds : Dataset.t) events =
  let tbl = Hashtbl.create (Array.length ds.Dataset.routers) in
  Array.iter (fun (r : Router.t) -> Hashtbl.replace tbl r.Router.id r)
    ds.Dataset.routers;
  let order =
    ref (List.map (fun (r : Router.t) -> r.Router.id)
           (Array.to_list ds.Dataset.routers))
  in
  let dirty = Hashtbl.create 16 in
  let mark (r : Router.t) =
    List.iter (fun s -> Hashtbl.replace dirty s ()) (Router.suffixes r)
  in
  let get i id =
    match Hashtbl.find_opt tbl id with
    | Some r -> r
    | None -> raise (Err (Unknown_router { event = i; id }))
  in
  (* replace-in-place for an existing id; a structural no-op neither
     rewrites the table nor dirties anything *)
  let update (old : Router.t) (r : Router.t) =
    if old <> r then begin
      mark old;
      mark r;
      Hashtbl.replace tbl r.Router.id r
    end
  in
  let step i = function
    | Upsert r -> (
        match Hashtbl.find_opt tbl r.Router.id with
        | Some old -> update old r
        | None ->
            mark r;
            Hashtbl.replace tbl r.Router.id r;
            order := !order @ [ r.Router.id ])
    | Remove id ->
        let old = get i id in
        mark old;
        Hashtbl.remove tbl id;
        order := List.filter (fun x -> x <> id) !order
    | Add_hostname { router; hostname } ->
        let old = get i router in
        if not (List.mem hostname old.Router.hostnames) then
          update old
            { old with Router.hostnames = old.Router.hostnames @ [ hostname ] }
    | Remove_hostname { router; hostname } ->
        let old = get i router in
        if List.mem hostname old.Router.hostnames then
          update old
            {
              old with
              Router.hostnames =
                List.filter (fun h -> h <> hostname) old.Router.hostnames;
            }
    | Set_hostnames { router; hostnames } ->
        let old = get i router in
        update old { old with Router.hostnames = hostnames }
    | Set_rtts { router; ping; trace } ->
        let old = get i router in
        update old { old with Router.ping_rtts = ping; Router.trace_rtts = trace }
  in
  match List.iteri step events with
  | () ->
      let routers = Array.of_list (List.map (Hashtbl.find tbl) !order) in
      let links =
        Array.of_list
          (List.filter
             (fun (a, b) -> Hashtbl.mem tbl a && Hashtbl.mem tbl b)
             (Array.to_list ds.Dataset.links))
      in
      let ds' =
        Dataset.make ~links ~label:ds.Dataset.label ~routers ~vps:ds.Dataset.vps
          ()
      in
      let dirty = List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) dirty []) in
      Ok (ds', dirty)
  | exception Err e -> Error e

(* Diff two corpora into an event stream that [apply old] replays into
   [new]: removals first (old array order), then per new-array-order a
   minimal event for each changed router — [Set_hostnames]/[Set_rtts]
   when only that field moved, a full [Upsert] otherwise. When new
   routers appear at the end of the array (the netsim Evolve contract),
   replaying reproduces the new router order exactly. *)
let events_between (old_ds : Dataset.t) (new_ds : Dataset.t) =
  let old_tbl = Hashtbl.create (Array.length old_ds.Dataset.routers) in
  Array.iter (fun (r : Router.t) -> Hashtbl.replace old_tbl r.Router.id r)
    old_ds.Dataset.routers;
  let new_tbl = Hashtbl.create (Array.length new_ds.Dataset.routers) in
  Array.iter (fun (r : Router.t) -> Hashtbl.replace new_tbl r.Router.id r)
    new_ds.Dataset.routers;
  let removes =
    List.filter_map
      (fun (r : Router.t) ->
        if Hashtbl.mem new_tbl r.Router.id then None else Some (Remove r.Router.id))
      (Array.to_list old_ds.Dataset.routers)
  in
  let changes =
    List.filter_map
      (fun (r : Router.t) ->
        match Hashtbl.find_opt old_tbl r.Router.id with
        | None -> Some (Upsert r)
        | Some o when o = r -> None
        | Some o ->
            if { o with Router.hostnames = r.Router.hostnames } = r then
              Some
                (Set_hostnames
                   { router = r.Router.id; hostnames = r.Router.hostnames })
            else if
              {
                o with
                Router.ping_rtts = r.Router.ping_rtts;
                Router.trace_rtts = r.Router.trace_rtts;
              }
              = r
            then
              Some
                (Set_rtts
                   {
                     router = r.Router.id;
                     ping = r.Router.ping_rtts;
                     trace = r.Router.trace_rtts;
                   })
            else Some (Upsert r))
      (Array.to_list new_ds.Dataset.routers)
  in
  removes @ changes

(* ---- wire format ----------------------------------------------------
   A JSON list of objects discriminated by "op". Only observable fields
   travel: an upsert carries hostnames, ASN, and RTTs — never the
   generator's ground truth, which is unavailable at observation time
   by construction (§4 challenge 2). Decoding is strict and total;
   errors name the offending event index. *)

let rtts_to_json l =
  Json.List
    (List.map (fun (vp, ms) -> Json.List [ Json.Int vp; Json.Float ms ]) l)

let event_to_json = function
  | Upsert r ->
      Json.Obj
        ([
           ("op", Json.String "upsert");
           ("id", Json.Int r.Router.id);
           ( "hostnames",
             Json.List (List.map (fun h -> Json.String h) r.Router.hostnames) );
         ]
        @ (match r.Router.asn with
          | Some a -> [ ("asn", Json.Int a) ]
          | None -> [])
        @ [
            ("ping", rtts_to_json r.Router.ping_rtts);
            ("trace", rtts_to_json r.Router.trace_rtts);
          ])
  | Remove id -> Json.Obj [ ("op", Json.String "remove"); ("id", Json.Int id) ]
  | Add_hostname { router; hostname } ->
      Json.Obj
        [
          ("op", Json.String "add_hostname");
          ("id", Json.Int router);
          ("hostname", Json.String hostname);
        ]
  | Remove_hostname { router; hostname } ->
      Json.Obj
        [
          ("op", Json.String "remove_hostname");
          ("id", Json.Int router);
          ("hostname", Json.String hostname);
        ]
  | Set_hostnames { router; hostnames } ->
      Json.Obj
        [
          ("op", Json.String "set_hostnames");
          ("id", Json.Int router);
          ("hostnames", Json.List (List.map (fun h -> Json.String h) hostnames));
        ]
  | Set_rtts { router; ping; trace } ->
      Json.Obj
        [
          ("op", Json.String "set_rtts");
          ("id", Json.Int router);
          ("ping", rtts_to_json ping);
          ("trace", rtts_to_json trace);
        ]

let events_to_string events =
  Json.to_string (Json.List (List.map event_to_json events))

exception Decode of string

let fail i fmt = Printf.ksprintf (fun m -> raise (Decode (Printf.sprintf "event %d: %s" i m))) fmt

let int_field i name j =
  match Json.member name j with
  | Some (Json.Int n) -> n
  | Some v -> fail i "%s: expected int, got %s" name (Json.kind v)
  | None -> fail i "missing %s" name

let string_field i name j =
  match Json.member name j with
  | Some (Json.String s) -> s
  | Some v -> fail i "%s: expected string, got %s" name (Json.kind v)
  | None -> fail i "missing %s" name

let hostnames_field i name j =
  match Json.member name j with
  | Some (Json.List l) ->
      List.map
        (function
          | Json.String s -> s
          | v -> fail i "%s: expected string, got %s" name (Json.kind v))
        l
  | Some v -> fail i "%s: expected list, got %s" name (Json.kind v)
  | None -> fail i "missing %s" name

let rtts_field i name j =
  match Json.member name j with
  | None -> []
  | Some (Json.List l) ->
      List.map
        (function
          | Json.List [ Json.Int vp; Json.Float ms ] -> (vp, ms)
          | Json.List [ Json.Int vp; Json.Int ms ] -> (vp, float_of_int ms)
          | v -> fail i "%s: expected [vp, ms] pair, got %s" name (Json.kind v))
        l
  | Some v -> fail i "%s: expected list, got %s" name (Json.kind v)

let event_of_json i j =
  match j with
  | Json.Obj _ -> (
      let id () = int_field i "id" j in
      match string_field i "op" j with
      | "upsert" ->
          let asn =
            match Json.member "asn" j with
            | Some (Json.Int a) -> Some a
            | Some v -> fail i "asn: expected int, got %s" (Json.kind v)
            | None -> None
          in
          Upsert
            (Router.make ?asn
               ~hostnames:(hostnames_field i "hostnames" j)
               ~ping_rtts:(rtts_field i "ping" j)
               ~trace_rtts:(rtts_field i "trace" j)
               (id ()))
      | "remove" -> Remove (id ())
      | "add_hostname" ->
          Add_hostname { router = id (); hostname = string_field i "hostname" j }
      | "remove_hostname" ->
          Remove_hostname
            { router = id (); hostname = string_field i "hostname" j }
      | "set_hostnames" ->
          Set_hostnames
            { router = id (); hostnames = hostnames_field i "hostnames" j }
      | "set_rtts" ->
          Set_rtts
            {
              router = id ();
              ping = rtts_field i "ping" j;
              trace = rtts_field i "trace" j;
            }
      | op -> fail i "unknown op %S" op)
  | v -> fail i "expected object, got %s" (Json.kind v)

let events_of_string s =
  match Json.parse s with
  | Error e -> Error ("events: " ^ e)
  | Ok (Json.List items) -> (
      match List.mapi event_of_json items with
      | events -> Ok events
      | exception Decode m -> Error m)
  | Ok v -> Error ("events: expected a list, got " ^ Json.kind v)

(* ---- incremental relearn ------------------------------------------- *)

let bump_counters stats =
  Obs.add c_events stats.events;
  Obs.add c_dirty (List.length stats.dirty);
  Obs.add c_relearned stats.groups_relearned;
  Obs.add c_reused stats.groups_reused

let recompute consist db ?learn_geohints ?min_samples ?jobs todo =
  Trace.with_span "relearn.run"
    ~attrs:[ ("dirty_groups", string_of_int (List.length todo)) ]
  @@ fun () ->
  Obs.time h_run (fun () ->
      Pipeline.run_groups consist db ?learn_geohints ?min_samples ?jobs todo)

let index_results results =
  let tbl = Hashtbl.create (List.length results + 1) in
  List.iter
    (fun (r : Pipeline.suffix_result) ->
      Hashtbl.replace tbl r.Pipeline.suffix r)
    results;
  tbl

let relearn ?learn_geohints ?min_samples ?jobs ~(prior : Pipeline.t) events =
  match apply prior.Pipeline.dataset events with
  | Error e -> Error e
  | Ok (ds, dirty) ->
      let db = prior.Pipeline.db in
      let consist = Consist.create ds in
      let groups = Dataset.by_suffix ds in
      let dirty_set = Hashtbl.create 16 in
      List.iter (fun s -> Hashtbl.replace dirty_set s ()) dirty;
      let prior_by_suffix = index_results prior.Pipeline.results in
      (* a suffix with no prior result cannot be reused; with a
         conservative dirty set this only happens for suffixes the
         events introduced, which are already dirty *)
      let is_dirty s =
        Hashtbl.mem dirty_set s || not (Hashtbl.mem prior_by_suffix s)
      in
      let todo = List.filter (fun (s, _) -> is_dirty s) groups in
      let fresh_by_suffix =
        index_results
          (recompute consist db ?learn_geohints ?min_samples ?jobs todo)
      in
      let results =
        List.map
          (fun (s, _) ->
            if is_dirty s then Hashtbl.find fresh_by_suffix s
            else Hashtbl.find prior_by_suffix s)
          groups
      in
      let stats =
        {
          events = List.length events;
          dirty;
          groups_relearned = List.length todo;
          groups_reused = List.length groups - List.length todo;
        }
      in
      bump_counters stats;
      Ok
        ( {
            Pipeline.dataset = ds;
            consist;
            db;
            results;
            metrics = Obs.snapshot ();
          },
          stats )

let relearn_model ?jobs ~(model : Learned_io.t) ~(corpus : Dataset.t) events =
  match apply corpus events with
  | Error e -> Error e
  | Ok (ds, dirty) ->
      let db = Learned_io.db model in
      let consist = Consist.create ds in
      let groups = Dataset.by_suffix ds in
      let dirty_set = Hashtbl.create 16 in
      List.iter (fun s -> Hashtbl.replace dirty_set s ()) dirty;
      let prior_by_suffix =
        Hashtbl.create (List.length model.Learned_io.suffixes + 1)
      in
      List.iter
        (fun (sm : Learned_io.suffix_model) ->
          Hashtbl.replace prior_by_suffix sm.Learned_io.suffix sm)
        model.Learned_io.suffixes;
      let todo = List.filter (fun (s, _) -> Hashtbl.mem dirty_set s) groups in
      let fresh_by_suffix = index_results (recompute consist db ?jobs todo) in
      (* assemble in by_suffix order — the order of_pipeline would emit
         for a batch learn of the final corpus. A clean suffix absent
         from the model stays absent: the batch learn it came from
         produced no servable NC for it, and its group is unchanged. *)
      let suffixes =
        List.filter_map
          (fun (s, _) ->
            if Hashtbl.mem dirty_set s then
              Learned_io.suffix_model_of_result (Hashtbl.find fresh_by_suffix s)
            else Hashtbl.find_opt prior_by_suffix s)
          groups
      in
      let model' =
        {
          model with
          Learned_io.suffixes;
          (* recomputed from the spliced suffix list, exactly as
             of_pipeline would from a batch learn of the final corpus —
             pure arithmetic in list order, so the byte-identity
             contract extends to the stored profile *)
          Learned_io.calibration =
            Some
              (Confidence.expected_profile
                 (List.map
                    (fun (sm : Learned_io.suffix_model) -> sm.Learned_io.stats)
                    suffixes));
          Learned_io.metrics = Json.Obj [];
        }
      in
      let stats =
        {
          events = List.length events;
          dirty;
          groups_relearned = List.length todo;
          groups_reused = List.length groups - List.length todo;
        }
      in
      bump_counters stats;
      Ok (model', ds, stats)
